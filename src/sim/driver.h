#ifndef PARDB_SIM_DRIVER_H_
#define PARDB_SIM_DRIVER_H_

#include <cstdint>
#include <string>

#include <array>

#include "core/engine.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/serve/hub.h"
#include "obs/txnlife.h"
#include "sim/workload.h"

namespace pardb::sim {

struct SimOptions {
  core::EngineOptions engine;
  WorkloadOptions workload;
  // Closed-loop multiprogramming level: this many transactions are live at
  // all times (a commit admits the next one), modeling the paper's rising
  // concurrency (§1).
  std::uint32_t concurrency = 8;
  std::uint64_t total_txns = 200;
  std::uint64_t max_steps = 50'000'000;
  std::uint64_t seed = 1;
  Value initial_value = 100;
  // Record the history and verify conflict-serializability at the end.
  bool check_serializability = true;

  // Observability hooks, all optional and borrowed (must outlive the run).
  // With `metrics` set, the engine runs fully probed and its end-of-run
  // aggregates are exported into the registry under pardb_* names.
  obs::MetricsRegistry* metrics = nullptr;
  obs::LabelSet metric_labels;
  core::TraceSink* trace = nullptr;
  obs::DeadlockDumpSink* forensics = nullptr;
  // Clock behind the phase timers; null = monotonic wall clock.
  const obs::Clock* clock = nullptr;
  // Live introspection rendezvous (borrowed, must outlive the run): the
  // loop publishes waits-for snapshots as shard 0 every
  // `hub_snapshot_period` steps (and once at the end), tracks preemption
  // lineage into `metrics` when set, and routes deadlock dumps into the
  // hub's ring alongside any `forensics` sink.
  obs::LiveHub* hub = nullptr;
  std::uint64_t hub_snapshot_period = 512;  // rounded up to a power of two
  // Per-transaction lifecycle timelines (DESIGN D13): stamped in the engine,
  // ledgered per rollback cause, digested to the hub at snapshot cadence.
  // Off only for overhead measurements — the report's per-cause ledger and
  // the /debug/txn endpoints are empty without it.
  bool txnlife = true;
  // Decision journal (DESIGN D14): every schedule-relevant decision logged
  // plus an epoch checksum chain at engine.journal_epoch_steps cadence.
  // Off only for overhead measurements.
  bool journal = true;
  // Non-empty: record with an unbounded ring and write the journal binary
  // to this path at the end (the `pardb journal` recording mode).
  std::string journal_out;
  // Test hook: perturb the state digest of this epoch ordinal (~0 = off),
  // simulating an ω-order drift for the bisection tests.
  std::uint64_t journal_perturb_epoch = ~0ULL;
};

struct SimReport {
  core::EngineMetrics metrics;
  // Per-rollback lost-progress percentiles (bounded sample).
  core::CostDistribution rollback_costs;
  std::uint64_t committed = 0;
  // False when max_steps ran out before total_txns committed. The paper
  // predicts this is possible under the unconstrained min-cost policy
  // (potentially infinite mutual preemption, Figure 2).
  bool completed = true;
  bool serializable = true;
  // wasted_ops / (ops_executed): fraction of executed work thrown away by
  // rollbacks — the paper's "loss of progress".
  double wasted_fraction = 0.0;
  // commits per executed op: throughput in the discrete-event model.
  double goodput = 0.0;
  double deadlocks_per_txn = 0.0;
  std::uint64_t max_preemptions_single_txn = 0;
  // High-water mark of programs generated but not yet admitted to the
  // engine. The closed loop generates lazily (WorkloadGenerator::Next at
  // each admission), so this is 1 — nothing is batch-materialized. Kept
  // out of ToString (golden-string compared); the CLI stats line shows it.
  std::uint64_t peak_materialized_programs = 0;
  // Wasted-work ledger from the lifecycle book: steps executed and then
  // rolled back, attributed to the decision that caused the loss, and the
  // rollback event count per cause. All zero when SimOptions::txnlife is
  // off. Kept out of ToString (golden-string compared); the partial-vs-
  // total bench reports these per policy.
  std::array<std::uint64_t, obs::kNumRollbackCauses> wasted_by_cause{};
  std::array<std::uint64_t, obs::kNumRollbackCauses> rollbacks_by_cause{};
  // Decision-journal epoch checksum chain (one value per stamped epoch)
  // and totals. Kept out of ToString (golden-string compared) — the chain
  // is what the determinism tests compare across schedulers and workers.
  std::vector<std::uint64_t> journal_chain;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_dropped = 0;

  std::string ToString() const;
};

// Runs a closed-loop simulation: `concurrency` transactions live at all
// times until `total_txns` committed. Deterministic per (options, seed).
Result<SimReport> RunSimulation(const SimOptions& options);

}  // namespace pardb::sim

#endif  // PARDB_SIM_DRIVER_H_

#include "sim/driver.h"

#include <algorithm>
#include <sstream>

#include "common/bits.h"
#include "core/metrics_export.h"
#include "obs/metric_names.h"

namespace pardb::sim {

std::string SimReport::ToString() const {
  std::ostringstream os;
  os << "committed=" << committed << (completed ? "" : " (INCOMPLETE)")
     << " ops=" << metrics.ops_executed
     << " deadlocks=" << metrics.deadlocks << " rollbacks="
     << metrics.rollbacks << " (partial=" << metrics.partial_rollbacks
     << ", total=" << metrics.total_rollbacks << ")"
     << " wasted_ops=" << metrics.wasted_ops << " wasted_frac="
     << wasted_fraction << " goodput=" << goodput
     << " serializable=" << (serializable ? "yes" : "NO");
  return os.str();
}

Result<SimReport> RunSimulation(const SimOptions& options) {
  storage::EntityStore store;
  store.CreateMany(options.workload.num_entities, options.initial_value);

  analysis::HistoryRecorder recorder;
  core::Engine engine(&store, options.engine,
                      options.check_serializability ? &recorder : nullptr);
  // Pre-size the txn-indexed tables for the whole run so admission never
  // pays a rehash or reallocation mid-flight.
  engine.ReserveTxns(options.total_txns);
  obs::EngineProbe probe;
  if (options.metrics != nullptr) {
    probe = obs::MakeEngineProbe(options.metrics, options.metric_labels,
                                 options.clock);
    engine.set_probe(&probe);
  }
  if (options.trace != nullptr) engine.set_trace(options.trace);
  obs::LineageTracker lineage;
  if (options.metrics != nullptr) {
    lineage.AttachMetrics(options.metrics, options.metric_labels);
  }
  engine.set_lineage(&lineage);
  obs::TxnLifeBook txnlife(obs::TxnLifeBook::Options{
      /*ring_capacity=*/4096, /*wall_sample_period=*/64, options.clock});
  if (options.txnlife) {
    if (options.metrics != nullptr) {
      txnlife.AttachMetrics(options.metrics, options.metric_labels);
    }
    engine.set_txnlife(&txnlife);
  }
  // Recording mode keeps every record so the written file is complete.
  obs::DecisionJournal journal(obs::DecisionJournal::Options{
      /*ring_capacity=*/options.journal_out.empty() ? std::size_t{65536}
                                                    : std::size_t{0}});
  if (options.journal) {
    journal.set_perturb_epoch_for_test(options.journal_perturb_epoch);
    if (options.metrics != nullptr) {
      journal.AttachMetrics(options.metrics, options.metric_labels);
    }
    engine.set_journal(&journal);
  }
  obs::DeadlockDumpSink* hub_sink =
      options.hub != nullptr ? options.hub->MakeDeadlockSink(0) : nullptr;
  obs::FanOutDeadlockSink fanout(options.forensics, hub_sink);
  if (options.forensics != nullptr && hub_sink != nullptr) {
    engine.set_forensics(&fanout);
  } else if (options.forensics != nullptr) {
    engine.set_forensics(options.forensics);
  } else if (hub_sink != nullptr) {
    engine.set_forensics(hub_sink);
  }
  if (options.hub != nullptr) {
    options.hub->SetPhase(obs::RunPhase::kRunning);
  }
  // Rounded up to a power of two so any requested cadence yields a valid
  // mask (period - 1 alone silently misfires for non-powers-of-two).
  const std::uint64_t snap_mask =
      RoundUpPowerOfTwo(options.hub_snapshot_period == 0
                            ? 512
                            : options.hub_snapshot_period) -
      1;
  WorkloadGenerator gen(options.workload, options.seed);

  std::uint64_t spawned = 0;
  std::vector<TxnId> all_txns;
  // Programs are generated one admission at a time (gen.Next inside
  // SpawnOne), never batch-materialized: at most one exists outside the
  // engine at any moment.
  std::uint64_t peak_materialized = 0;
  core::EngineMetricsExporter exporter;
  auto SpawnOne = [&]() -> Status {
    auto program = gen.Next();
    if (!program.ok()) return program.status();
    peak_materialized = std::max<std::uint64_t>(peak_materialized, 1);
    auto id = engine.Spawn(std::move(program).value());
    if (!id.ok()) return id.status();
    all_txns.push_back(id.value());
    ++spawned;
    return Status::OK();
  };

  const std::uint64_t initial =
      std::min<std::uint64_t>(options.concurrency, options.total_txns);
  for (std::uint64_t i = 0; i < initial; ++i) {
    PARDB_RETURN_IF_ERROR(SpawnOne());
  }

  std::uint64_t steps = 0;
  bool completed = true;
  while (engine.metrics().commits < options.total_txns) {
    if (++steps > options.max_steps) {
      completed = false;  // e.g. min-cost mutual-preemption livelock
      break;
    }
    // Keep the multiprogramming level topped up.
    while (spawned < options.total_txns &&
           spawned - engine.metrics().commits < options.concurrency) {
      PARDB_RETURN_IF_ERROR(SpawnOne());
    }
    auto stepped = engine.StepAny();
    if (!stepped.ok()) return stepped.status();
    if (!stepped.value().has_value()) {
      return Status::Internal("simulation stalled:\n" + engine.DumpState());
    }
    if (options.hub != nullptr && (steps & snap_mask) == 0) {
      options.hub->PublishSnapshot(engine.SnapshotWaitsFor());
      if (options.txnlife) options.hub->PublishTxnLife(txnlife.Digest(0));
      if (options.journal) options.hub->PublishJournal(journal.Digest(0));
      // Live scraping: publish the engine aggregates (including new
      // rollback-cost samples) at the snapshot cadence so /metrics shows
      // histogram quantiles mid-run. Delta export — the final export
      // below still lands on the exact totals.
      if (options.metrics != nullptr) {
        exporter.Export(engine, options.metrics, options.metric_labels);
      }
    }
  }
  if (options.hub != nullptr) {
    options.hub->PublishSnapshot(engine.SnapshotWaitsFor());
    if (options.txnlife) options.hub->PublishTxnLife(txnlife.Digest(0));
    if (options.journal) options.hub->PublishJournal(journal.Digest(0));
    options.hub->SetPhase(obs::RunPhase::kDone);
  }

  SimReport report;
  report.metrics = engine.metrics();
  report.rollback_costs = engine.RollbackCostDistribution();
  report.committed = engine.metrics().commits;
  report.completed = completed;
  if (options.check_serializability) {
    report.serializable = recorder.IsConflictSerializable();
  }
  report.wasted_fraction =
      SafeRatio(report.metrics.wasted_ops, report.metrics.ops_executed);
  report.goodput = SafeRatio(report.committed, report.metrics.ops_executed);
  report.deadlocks_per_txn =
      SafeRatio(report.metrics.deadlocks, report.committed);
  for (TxnId t : all_txns) {
    report.max_preemptions_single_txn = std::max(
        report.max_preemptions_single_txn, engine.PreemptionCountOf(t));
  }
  report.peak_materialized_programs = peak_materialized;
  report.wasted_by_cause = txnlife.wasted_by_cause();
  report.rollbacks_by_cause = txnlife.rollbacks_by_cause();
  if (options.journal) {
    report.journal_chain = journal.ChainValues();
    report.journal_records = journal.total_records();
    report.journal_dropped = journal.dropped_records();
    if (!options.journal_out.empty()) {
      PARDB_RETURN_IF_ERROR(
          journal.WriteFile(options.journal_out, /*shard=*/0, options.seed));
    }
  }
  if (options.metrics != nullptr) {
    exporter.Export(engine, options.metrics, options.metric_labels);
    options.metrics->GetCounter(obs::kTraceDroppedTotal, options.metric_labels)
        ->Inc(core::TraceDropped(options.trace));
  }
  return report;
}

}  // namespace pardb::sim

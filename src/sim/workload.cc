#include "sim/workload.h"

#include <algorithm>
#include <set>

namespace pardb::sim {

std::string_view WritePatternName(WritePattern p) {
  switch (p) {
    case WritePattern::kScattered:
      return "scattered";
    case WritePattern::kClustered:
      return "clustered";
    case WritePattern::kThreePhase:
      return "three-phase";
  }
  return "unknown";
}

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options,
                                     std::uint64_t seed)
    : options_(options),
      rng_(seed),
      zipf_(options.entity_universe.empty() ? options.num_entities
                                            : options.entity_universe.size(),
            options.zipf_theta) {}

Result<txn::Program> WorkloadGenerator::Next() {
  const WorkloadOptions& o = options_;
  if (o.min_locks == 0 || o.max_locks < o.min_locks) {
    return Status::InvalidArgument("invalid lock count range");
  }
  // Template mode: once the pool is full, stamp renamed instances instead
  // of drawing from the rng (see WorkloadOptions::num_templates).
  if (o.num_templates > 0 && sequence_ >= o.num_templates) {
    const txn::Program& t = templates_[sequence_ % o.num_templates];
    return t.WithName("txn-" + std::to_string(sequence_++));
  }
  const std::uint64_t universe =
      o.entity_universe.empty() ? o.num_entities : o.entity_universe.size();
  const std::uint32_t k = static_cast<std::uint32_t>(
      o.min_locks + rng_.Uniform(o.max_locks - o.min_locks + 1));

  // Distinct entities (Zipfian with rejection of duplicates).
  std::vector<EntityId> entities;
  std::set<std::uint64_t> seen;
  while (entities.size() < k && seen.size() < universe) {
    std::uint64_t e = zipf_.Next(rng_);
    if (seen.insert(e).second) {
      entities.push_back(o.entity_universe.empty() ? EntityId(e)
                                                   : o.entity_universe[e]);
    }
  }
  if (o.sorted_entities) std::sort(entities.begin(), entities.end());

  std::vector<bool> shared(entities.size());
  for (std::size_t i = 0; i < entities.size(); ++i) {
    shared[i] = rng_.Bernoulli(o.shared_fraction);
  }

  // Access ops per entity. Variable v_i accumulates entity i's value.
  const auto n = static_cast<std::uint32_t>(entities.size());
  txn::ProgramBuilder b("txn-" + std::to_string(sequence_++), n);

  struct Access {
    std::size_t entity_index;
    int step;  // 0 = read, 1 = compute, 2 = write (reads only for shared)
  };
  // slots[i] = access ops placed between lock i and lock i+1 (slot n-1 is
  // after the last lock).
  std::vector<std::vector<Access>> slots(n);

  for (std::size_t i = 0; i < entities.size(); ++i) {
    const std::uint32_t reps = std::max<std::uint32_t>(1, o.ops_per_entity);
    // Choose a slot for each access group, >= the entity's lock position.
    std::vector<std::size_t> positions;
    for (std::uint32_t r = 0; r < reps; ++r) {
      switch (o.pattern) {
        case WritePattern::kScattered:
          positions.push_back(i + rng_.Uniform(n - i));
          break;
        case WritePattern::kClustered:
          positions.push_back(i);
          break;
        case WritePattern::kThreePhase:
          positions.push_back(n - 1);
          break;
      }
    }
    std::sort(positions.begin(), positions.end());
    for (std::size_t p : positions) {
      slots[p].push_back(Access{i, 0});
      if (!shared[i]) {
        slots[p].push_back(Access{i, 1});
        slots[p].push_back(Access{i, 2});
      }
    }
  }

  for (std::size_t i = 0; i < entities.size(); ++i) {
    if (shared[i]) {
      b.LockShared(entities[i]);
    } else {
      b.LockExclusive(entities[i]);
    }
    for (const Access& a : slots[i]) {
      const auto var = static_cast<txn::VarId>(a.entity_index);
      switch (a.step) {
        case 0:
          b.Read(entities[a.entity_index], var);
          break;
        case 1:
          b.Compute(var, txn::Operand::Var(var), txn::ArithOp::kAdd,
                    txn::Operand::Imm(1));
          break;
        case 2:
          b.WriteVar(entities[a.entity_index], var);
          break;
      }
    }
  }
  b.Commit();
  auto built = std::move(b).Build();
  if (built.ok() && options_.num_templates > 0) {
    templates_.push_back(built.value());
  }
  return built;
}

}  // namespace pardb::sim

#include "sim/scenario.h"

#include <cassert>

namespace pardb::sim {

namespace {

using core::EngineOptions;
using core::StepOutcome;
using txn::ArithOp;
using txn::Operand;
using txn::ProgramBuilder;

// Filler op advancing the state index by one without touching entities.
void AddFiller(ProgramBuilder& b, int count) {
  for (int i = 0; i < count; ++i) {
    b.Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(1));
  }
}

// The figure scenarios reproduce the paper's exact concurrency graphs,
// which assume its §2 grant rule: compatibility with current holders only
// and waits-for arcs from holders alone.
EngineOptions PaperModel(EngineOptions options) {
  options.lock_options.fifo_fairness = false;
  options.lock_options.wait_edge_policy = lock::WaitEdgePolicy::kHoldersOnly;
  return options;
}

}  // namespace

ScenarioRunner::ScenarioRunner(core::EngineOptions options)
    : engine_(std::make_unique<core::Engine>(&store_, options, &recorder_)) {}

EntityId ScenarioRunner::AddEntity(const std::string& name, Value initial) {
  auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  EntityId id(next_entity_++);
  Status s = store_.Create(id, initial);
  assert(s.ok());
  (void)s;
  names_[name] = id;
  return id;
}

EntityId ScenarioRunner::entity(const std::string& name) const {
  auto it = names_.find(name);
  return it == names_.end() ? EntityId() : it->second;
}

Result<TxnId> ScenarioRunner::Spawn(txn::Program program) {
  return engine_->Spawn(std::move(program));
}

Result<core::StepOutcome> ScenarioRunner::StepOne(TxnId txn) {
  return engine_->StepTxn(txn);
}

Status ScenarioRunner::StepUntilPc(TxnId txn, StateIndex pc) {
  int guard = 1000000;
  while (engine_->StateIndexOf(txn) < pc) {
    if (--guard < 0) return Status::Internal("StepUntilPc did not converge");
    auto r = engine_->StepTxn(txn);
    if (!r.ok()) return r.status();
    if (r.value() != StepOutcome::kExecuted) {
      return Status::FailedPrecondition(
          "transaction blocked/finished before reaching target pc");
    }
  }
  return Status::OK();
}

Result<core::StepOutcome> ScenarioRunner::StepUntilBlocked(TxnId txn,
                                                           int limit) {
  for (int i = 0; i < limit; ++i) {
    auto r = engine_->StepTxn(txn);
    if (!r.ok()) return r;
    if (r.value() != StepOutcome::kExecuted) return r;
  }
  return Status::Internal("StepUntilBlocked did not converge");
}

Status ScenarioRunner::FinishAll(std::uint64_t max_steps) {
  return engine_->RunToCompletion(max_steps);
}

// --------------------------------------------------------------------------
// Figure 1
// --------------------------------------------------------------------------

Result<core::StepOutcome> Figure1Scenario::TriggerDeadlock() {
  return runner->StepOne(t2);
}

Result<Figure1Scenario> BuildFigure1(core::EngineOptions options,
                                     obs::TxnLifeBook* txnlife) {
  options = PaperModel(options);
  Figure1Scenario fig;
  fig.runner = std::make_unique<ScenarioRunner>(options);
  ScenarioRunner& r = *fig.runner;
  if (txnlife != nullptr) r.engine().set_txnlife(txnlife);

  const EntityId h1 = r.AddEntity("h1");
  const EntityId h2 = r.AddEntity("h2");
  const EntityId h3 = r.AddEntity("h3");
  const EntityId h4 = r.AddEntity("h4");
  fig.b = r.AddEntity("b");
  fig.c = r.AddEntity("c");
  fig.e = r.AddEntity("e");
  fig.f = r.AddEntity("f");

  // T2: locks f from state 4 (used by the Figure 2 continuation), b on the
  // transition from state 8, and requests e from state 12.
  ProgramBuilder b2("T2", 1);
  b2.LockExclusive(h2);       // op 0
  AddFiller(b2, 3);           // ops 1..3
  b2.LockExclusive(fig.f);    // op 4 — "T2 holds a lock on f requested
                              // from its state 4" (Figure 2)
  AddFiller(b2, 3);           // ops 5..7
  b2.LockExclusive(fig.b);    // op 8
  AddFiller(b2, 3);           // ops 9..11
  b2.LockExclusive(fig.e);    // op 12 — the request that closes the cycle
  b2.WriteImm(fig.b, 20);
  b2.WriteImm(fig.e, 21);
  b2.Commit();

  // T3: locks c from state 5, requests b from state 11, and (Figure 2)
  // requests f from state 14.
  ProgramBuilder b3("T3", 1);
  b3.LockExclusive(h3);       // op 0
  AddFiller(b3, 4);           // 1..4
  b3.LockExclusive(fig.c);    // op 5
  AddFiller(b3, 5);           // 6..10
  b3.LockExclusive(fig.b);    // op 11
  AddFiller(b3, 2);           // 12..13
  b3.LockExclusive(fig.f);    // op 14 — "T3 requests entity f from its
                              // 14th state" (Figure 2)
  b3.WriteImm(fig.c, 30);
  b3.Commit();

  // T4: locks e from state 10, requests c from state 15.
  ProgramBuilder b4("T4", 1);
  b4.LockExclusive(h4);       // op 0
  AddFiller(b4, 9);           // 1..9
  b4.LockExclusive(fig.e);    // op 10
  AddFiller(b4, 4);           // 11..14
  b4.LockExclusive(fig.c);    // op 15
  b4.WriteImm(fig.e, 40);
  b4.Commit();

  // T1: requests b from state 3.
  ProgramBuilder b1("T1", 1);
  b1.LockExclusive(h1);       // op 0
  AddFiller(b1, 2);           // 1..2
  b1.LockExclusive(fig.b);    // op 3
  b1.WriteImm(fig.b, 10);
  b1.Commit();

  auto p1 = std::move(b1).Build();
  auto p2 = std::move(b2).Build();
  auto p3 = std::move(b3).Build();
  auto p4 = std::move(b4).Build();
  if (!p1.ok()) return p1.status();
  if (!p2.ok()) return p2.status();
  if (!p3.ok()) return p3.status();
  if (!p4.ok()) return p4.status();

  // Spawn in name order so entry timestamps follow transaction numbers.
  PARDB_ASSIGN_OR_RETURN(fig.t1, r.Spawn(std::move(p1).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t2, r.Spawn(std::move(p2).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t3, r.Spawn(std::move(p3).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t4, r.Spawn(std::move(p4).value()));

  // Interleaving: T2 acquires b and stops just before requesting e; T1
  // queues on b first (so it is granted b after T2's rollback, as in
  // Figure 1(b)); then T3 queues on b; T4 queues on c.
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t2, 12));
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t1, 3));
  auto blocked1 = r.StepOne(fig.t1);
  if (!blocked1.ok()) return blocked1.status();
  if (blocked1.value() != StepOutcome::kBlocked) {
    return Status::Internal("T1 should block on b");
  }
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t3, 11));
  auto blocked3 = r.StepOne(fig.t3);
  if (!blocked3.ok()) return blocked3.status();
  if (blocked3.value() != StepOutcome::kBlocked) {
    return Status::Internal("T3 should block on b");
  }
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t4, 15));
  auto blocked4 = r.StepOne(fig.t4);
  if (!blocked4.ok()) return blocked4.status();
  if (blocked4.value() != StepOutcome::kBlocked) {
    return Status::Internal("T4 should block on c");
  }
  return fig;
}

// --------------------------------------------------------------------------
// Figure 2
// --------------------------------------------------------------------------

Result<Figure2Outcome> RunFigure2MutualPreemption(core::EngineOptions options,
                                                  int rounds,
                                                  obs::LineageTracker* lineage,
                                                  obs::TxnLifeBook* txnlife) {
  Figure2Outcome out;
  auto fig = BuildFigure1(options, txnlife);
  if (!fig.ok()) return fig.status();
  out.t1 = fig->t1;
  out.t2 = fig->t2;
  out.t3 = fig->t3;
  out.t4 = fig->t4;
  ScenarioRunner& r = *fig->runner;
  core::Engine& eng = r.engine();
  if (lineage != nullptr) eng.set_lineage(lineage);

  auto LastVictims = [&]() -> std::vector<TxnId> {
    if (eng.deadlock_events().empty()) return {};
    return eng.deadlock_events().back().victims;
  };
  auto FinishBroken = [&](Status* status) {
    out.pattern_sustained = false;
    *status = r.FinishAll();
    out.all_committed = status->ok() && eng.AllCommitted();
  };

  // Deadlock 1: the Figure 1(a) cycle.
  auto trig = fig->TriggerDeadlock();
  if (!trig.ok()) return trig.status();
  out.victims = LastVictims();
  if (out.victims != std::vector<TxnId>{fig->t2}) {
    // A different victim (e.g. the ordered policy preempting T4): the
    // alternation never starts; everything simply commits.
    Status s;
    FinishBroken(&s);
    if (!s.ok()) return s;
    out.runner = std::move(fig->runner);
    return out;
  }

  // T2 re-requests b (now held by T1, with T3 queued ahead of T2).
  auto w2 = r.StepOne(fig->t2);
  if (!w2.ok()) return w2.status();
  // T1 executes to completion, handing b to T3 ("T1, T5 and T6
  // subsequently execute to completion").
  auto done1 = r.StepUntilBlocked(fig->t1);
  if (!done1.ok()) return done1.status();
  if (done1.value() != core::StepOutcome::kCommitted) {
    return Status::Internal("T1 failed to commit in the Figure 2 prologue");
  }
  // Deadlock 2: T3 runs up to its 14th state and requests f, which T2 has
  // held since its state 4.
  auto o3 = r.StepUntilBlocked(fig->t3);
  if (!o3.ok()) return o3.status();
  auto v2 = LastVictims();
  out.victims.insert(out.victims.end(), v2.begin(), v2.end());
  if (v2 != std::vector<TxnId>{fig->t3}) {
    Status s;
    FinishBroken(&s);
    if (!s.ok()) return s;
    out.runner = std::move(fig->runner);
    return out;
  }

  // The alternation: each iteration recreates the exact Figure 1(a)
  // configuration (T2 holds b waiting for e; T3 holds c waiting for b; T4
  // holds e waiting for c) and resolves it the same way, forever.
  out.pattern_sustained = true;
  for (int round = 0; round < rounds; ++round) {
    auto w3 = r.StepOne(fig->t3);  // T3 re-requests b (held by T2)
    if (!w3.ok()) return w3.status();
    auto o2 = r.StepUntilBlocked(fig->t2);  // T2 reaches e: deadlock 1 again
    if (!o2.ok()) return o2.status();
    if (LastVictims() != std::vector<TxnId>{fig->t2}) {
      out.pattern_sustained = false;
      break;
    }
    out.victims.push_back(fig->t2);
    ++out.recurrences;
    auto w2b = r.StepOne(fig->t2);  // T2 re-requests b (held by T3)
    if (!w2b.ok()) return w2b.status();
    auto o3b = r.StepUntilBlocked(fig->t3);  // T3 reaches f: deadlock 2 again
    if (!o3b.ok()) return o3b.status();
    if (LastVictims() != std::vector<TxnId>{fig->t3}) {
      out.pattern_sustained = false;
      break;
    }
    out.victims.push_back(fig->t3);
  }
  out.all_committed = eng.AllCommitted();
  out.runner = std::move(fig->runner);
  return out;
}

// --------------------------------------------------------------------------
// Figure 3
// --------------------------------------------------------------------------

Result<Figure3aScenario> BuildFigure3a(core::EngineOptions options) {
  options = PaperModel(options);
  Figure3aScenario fig;
  fig.runner = std::make_unique<ScenarioRunner>(options);
  ScenarioRunner& r = *fig.runner;
  fig.a = r.AddEntity("a");
  fig.c = r.AddEntity("c");

  ProgramBuilder b1("T1", 1);
  b1.LockExclusive(fig.a).LockShared(fig.c);
  b1.WriteImm(fig.a, 1).Commit();
  ProgramBuilder b2("T2", 1);
  b2.LockShared(fig.c).LockShared(fig.a);
  b2.Read(fig.a, 0).Commit();
  ProgramBuilder b3("T3", 1);
  b3.LockExclusive(fig.c);
  b3.WriteImm(fig.c, 3).Commit();

  auto p1 = std::move(b1).Build();
  auto p2 = std::move(b2).Build();
  auto p3 = std::move(b3).Build();
  if (!p1.ok()) return p1.status();
  if (!p2.ok()) return p2.status();
  if (!p3.ok()) return p3.status();
  PARDB_ASSIGN_OR_RETURN(fig.t1, r.Spawn(std::move(p1).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t2, r.Spawn(std::move(p2).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t3, r.Spawn(std::move(p3).value()));

  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t1, 2));  // holds a(X), c(S)
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t2, 1));  // holds c(S)
  auto w2 = r.StepOne(fig.t2);                      // waits for a
  if (!w2.ok()) return w2.status();
  if (w2.value() != StepOutcome::kBlocked) {
    return Status::Internal("T2 should block on a");
  }
  auto w3 = r.StepOne(fig.t3);  // X request on c: waits for T1 and T2
  if (!w3.ok()) return w3.status();
  if (w3.value() != StepOutcome::kBlocked) {
    return Status::Internal("T3 should block on c");
  }
  return fig;
}

Result<core::StepOutcome> Figure3bScenario::TriggerDeadlock() {
  return runner->StepOne(t1);
}

Result<Figure3bScenario> BuildFigure3b(core::EngineOptions options) {
  options = PaperModel(options);
  Figure3bScenario fig;
  fig.runner = std::make_unique<ScenarioRunner>(options);
  ScenarioRunner& r = *fig.runner;
  fig.a = r.AddEntity("a");
  fig.b = r.AddEntity("b");
  fig.e = r.AddEntity("e");

  ProgramBuilder b1("T1", 1);
  b1.LockExclusive(fig.a);  // op 0
  AddFiller(b1, 3);         // costs: T1 rollback over a is 4+ states
  b1.LockExclusive(fig.e);  // trigger op (pc 4)
  b1.WriteImm(fig.a, 1).Commit();

  ProgramBuilder b2("T2", 1);
  b2.LockShared(fig.e);      // op 0
  b2.LockExclusive(fig.b);   // op 1
  AddFiller(b2, 1);
  b2.LockShared(fig.a);      // op 3 — waits for T1
  b2.Read(fig.a, 0).Commit();

  ProgramBuilder b3("T3", 1);
  b3.LockShared(fig.e);   // op 0
  b3.LockShared(fig.b);   // op 1 — waits for T2
  b3.Read(fig.b, 0).Commit();

  auto p1 = std::move(b1).Build();
  auto p2 = std::move(b2).Build();
  auto p3 = std::move(b3).Build();
  if (!p1.ok()) return p1.status();
  if (!p2.ok()) return p2.status();
  if (!p3.ok()) return p3.status();
  PARDB_ASSIGN_OR_RETURN(fig.t1, r.Spawn(std::move(p1).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t2, r.Spawn(std::move(p2).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t3, r.Spawn(std::move(p3).value()));

  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t1, 4));  // holds a
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t2, 3));  // holds e(S), b(X)
  auto w2 = r.StepOne(fig.t2);
  if (!w2.ok()) return w2.status();
  if (w2.value() != StepOutcome::kBlocked) {
    return Status::Internal("T2 should block on a");
  }
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t3, 1));  // holds e(S)
  auto w3 = r.StepOne(fig.t3);
  if (!w3.ok()) return w3.status();
  if (w3.value() != StepOutcome::kBlocked) {
    return Status::Internal("T3 should block on b");
  }
  return fig;
}

Result<core::StepOutcome> Figure3cScenario::TriggerDeadlock() {
  return runner->StepOne(t1);
}

Result<Figure3cScenario> BuildFigure3c(core::EngineOptions options) {
  options = PaperModel(options);
  Figure3cScenario fig;
  fig.runner = std::make_unique<ScenarioRunner>(options);
  ScenarioRunner& r = *fig.runner;
  fig.x = r.AddEntity("x");
  fig.y = r.AddEntity("y");
  fig.f = r.AddEntity("f");

  ProgramBuilder b1("T1", 1);
  b1.LockExclusive(fig.x);  // op 0
  b1.LockExclusive(fig.y);  // op 1
  AddFiller(b1, 6);         // make T1's rollback expensive
  b1.LockExclusive(fig.f);  // trigger op (pc 8)
  b1.WriteImm(fig.x, 1).Commit();

  ProgramBuilder b2("T2", 1);
  b2.LockShared(fig.f);      // op 0
  b2.LockExclusive(fig.x);   // op 1 — waits for T1
  b2.Read(fig.f, 0).Commit();

  ProgramBuilder b3("T3", 1);
  b3.LockShared(fig.f);      // op 0
  b3.LockExclusive(fig.y);   // op 1 — waits for T1
  b3.Read(fig.f, 0).Commit();

  auto p1 = std::move(b1).Build();
  auto p2 = std::move(b2).Build();
  auto p3 = std::move(b3).Build();
  if (!p1.ok()) return p1.status();
  if (!p2.ok()) return p2.status();
  if (!p3.ok()) return p3.status();
  PARDB_ASSIGN_OR_RETURN(fig.t1, r.Spawn(std::move(p1).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t2, r.Spawn(std::move(p2).value()));
  PARDB_ASSIGN_OR_RETURN(fig.t3, r.Spawn(std::move(p3).value()));

  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t1, 8));  // holds x, y
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t2, 1));  // holds f(S)
  auto w2 = r.StepOne(fig.t2);
  if (!w2.ok()) return w2.status();
  if (w2.value() != StepOutcome::kBlocked) {
    return Status::Internal("T2 should block on x");
  }
  PARDB_RETURN_IF_ERROR(r.StepUntilPc(fig.t3, 1));  // holds f(S)
  auto w3 = r.StepOne(fig.t3);
  if (!w3.ok()) return w3.status();
  if (w3.value() != StepOutcome::kBlocked) {
    return Status::Internal("T3 should block on y");
  }
  return fig;
}

// --------------------------------------------------------------------------
// Figures 4 and 5
// --------------------------------------------------------------------------

txn::Program MakeFigure4Program(const std::vector<EntityId>& entities,
                                bool omit_second_var_write) {
  assert(entities.size() >= 6);
  const txn::VarId v0 = 0, v1 = 1, k = 2;
  ProgramBuilder b(omit_second_var_write ? "fig4-without-CK" : "fig4-T1", 3);
  b.LockExclusive(entities[0]);             // lock state 0; lock index -> 1
  b.Read(entities[0], v0);
  b.WriteVar(entities[0], v0);              // E0 first write @1 (u=0)
  b.LockExclusive(entities[1]);             // lock state 1; -> 2
  b.Read(entities[1], v1);
  b.WriteVar(entities[1], v1);              // E1 first write @2 (u=1)
  b.LockExclusive(entities[2]);             // lock state 2; -> 3
  b.WriteVar(entities[0], v0);              // E0 again @3: destroys 1..2
  b.Compute(k, txn::Operand::Var(k), ArithOp::kAdd,
            txn::Operand::Imm(1));          // K first write @3 (u=2)
  b.LockExclusive(entities[3]);             // lock state 3; -> 4
  b.WriteVar(entities[1], v1);              // E1 again @4: destroys 2..3
  b.LockExclusive(entities[4]);             // lock state 4; -> 5
  b.LockExclusive(entities[5]);             // lock state 5; -> 6
  if (!omit_second_var_write) {
    b.Compute(k, txn::Operand::Var(k), ArithOp::kAdd,
              txn::Operand::Imm(1));        // "C <- K" @6: destroys 3..5
  }
  b.WriteImm(entities[5], 1);               // E5 first write @6 (u=5)
  b.Commit();
  auto p = std::move(b).Build();
  assert(p.ok());
  return std::move(p).value();
}

txn::Program MakeFigure5Program(const std::vector<EntityId>& entities) {
  assert(entities.size() >= 6);
  const txn::VarId v0 = 0, v1 = 1, k = 2;
  ProgramBuilder b("fig5-T2", 3);
  // Identical operation multiset, clustered per object: consecutive writes
  // to the same object share a lock index, so no chord spans any state.
  b.LockExclusive(entities[0]);
  b.Read(entities[0], v0);
  b.WriteVar(entities[0], v0);
  b.WriteVar(entities[0], v0);
  b.LockExclusive(entities[1]);
  b.Read(entities[1], v1);
  b.WriteVar(entities[1], v1);
  b.WriteVar(entities[1], v1);
  b.LockExclusive(entities[2]);
  b.Compute(k, txn::Operand::Var(k), ArithOp::kAdd, txn::Operand::Imm(1));
  b.Compute(k, txn::Operand::Var(k), ArithOp::kAdd, txn::Operand::Imm(1));
  b.LockExclusive(entities[3]);
  b.LockExclusive(entities[4]);
  b.LockExclusive(entities[5]);
  b.WriteImm(entities[5], 1);
  b.Commit();
  auto p = std::move(b).Build();
  assert(p.ok());
  return std::move(p).value();
}

}  // namespace pardb::sim

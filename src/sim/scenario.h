#ifndef PARDB_SIM_SCENARIO_H_
#define PARDB_SIM_SCENARIO_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"

namespace pardb::sim {

// Drives an Engine along a scripted interleaving, entity by entity and
// transaction by transaction — how the paper's worked figures are
// reproduced exactly (state indices and all).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(core::EngineOptions options);

  // Registers a named entity (created on first use).
  EntityId AddEntity(const std::string& name, Value initial = 0);
  EntityId entity(const std::string& name) const;

  Result<TxnId> Spawn(txn::Program program);

  // Executes exactly one op of txn.
  Result<core::StepOutcome> StepOne(TxnId txn);
  // Steps txn until its program counter reaches `pc` (all ops must
  // complete without blocking).
  Status StepUntilPc(TxnId txn, StateIndex pc);
  // Steps txn until it blocks, rolls back, or commits; returns the final
  // outcome.
  Result<core::StepOutcome> StepUntilBlocked(TxnId txn, int limit = 100000);
  // Runs every transaction to completion with the engine scheduler.
  Status FinishAll(std::uint64_t max_steps = 1'000'000);

  core::Engine& engine() { return *engine_; }
  storage::EntityStore& store() { return store_; }
  analysis::HistoryRecorder& recorder() { return recorder_; }

 private:
  storage::EntityStore store_;
  analysis::HistoryRecorder recorder_;
  std::unique_ptr<core::Engine> engine_;
  std::map<std::string, EntityId> names_;
  std::uint64_t next_entity_ = 0;
};

// ---------------------------------------------------------------------------
// Paper Figure 1(a) — the exclusive-lock deadlock with rollback costs
// 4 (T2), 6 (T3) and 5 (T4).
//
//   T2 locked b on the transition from its 8th state and requests e from
//   state 12; T3 locked c from state 5 and requests b from state 11; T4
//   locked e from state 10 and requests c from state 15; T1 waits for b
//   (requested from its state 3). Stepping T2 once (TriggerDeadlock) makes
//   it request e, closing the cycle T2 -> T3 -> T4 -> T2.
// ---------------------------------------------------------------------------
struct Figure1Scenario {
  std::unique_ptr<ScenarioRunner> runner;
  TxnId t1, t2, t3, t4;
  EntityId b, c, e, f;

  // Steps T2 so it requests e and the deadlock is detected and resolved.
  Result<core::StepOutcome> TriggerDeadlock();
};

// `options` should use exclusive-lock-only semantics; the victim policy
// under test decides the outcome (the paper uses min-cost). `txnlife`
// (optional, borrowed) is attached before the transactions spawn, so the
// book sees the full admit-to-resolution lifecycle.
Result<Figure1Scenario> BuildFigure1(core::EngineOptions options,
                                     obs::TxnLifeBook* txnlife = nullptr);

// ---------------------------------------------------------------------------
// Paper Figure 2 — potentially infinite mutual preemption.
//
// Continues the Figure 1 scenario after T2's rollback exactly as the paper
// describes: T1 runs to completion, T3 acquires b and requests f (held by
// T2 since its state 4), producing a second deadlock whose resolution
// recreates the Figure 1(a) configuration of T2, T3 and T4 — and so on,
// indefinitely, under the unconstrained min-cost policy. Under the
// Theorem 2 ordered policy the very first resolution preempts a younger
// transaction instead and every transaction commits.
// ---------------------------------------------------------------------------
struct Figure2Outcome {
  std::unique_ptr<ScenarioRunner> runner;
  TxnId t1, t2, t3, t4;
  // Victim of each deadlock resolution, in order.
  std::vector<TxnId> victims;
  // Number of times the exact Figure 1(a) configuration recurred after the
  // initial occurrence.
  int recurrences = 0;
  // True when the adversarial schedule kept the T2/T3 alternation going
  // for every requested round (min-cost); false when a resolution broke
  // the pattern (ordered policy), in which case the scenario was simply
  // run to completion.
  bool pattern_sustained = false;
  bool all_committed = false;
};

// Runs the alternation for `rounds` rounds (each round = two deadlocks)
// under `options`' victim policy. `lineage` and `txnlife` (optional,
// borrowed) are attached to the engine before the first deadlock, so the
// preemption chains behind pardb_preemption_chain_len and the D13
// wasted-work ledger can be asserted against the paper's exact Figure 2
// schedule.
Result<Figure2Outcome> RunFigure2MutualPreemption(
    core::EngineOptions options, int rounds,
    obs::LineageTracker* lineage = nullptr,
    obs::TxnLifeBook* txnlife = nullptr);

// ---------------------------------------------------------------------------
// Paper Figure 3 — concurrency graphs with shared and exclusive locks.
// ---------------------------------------------------------------------------

// 3(a): acyclic but not a forest. T1 X-holds a and S-holds c; T2 S-holds c
// and waits for a; T3 X-requests c and waits for both T1 and T2. No
// deadlock.
struct Figure3aScenario {
  std::unique_ptr<ScenarioRunner> runner;
  TxnId t1, t2, t3;
  EntityId a, c;
};
Result<Figure3aScenario> BuildFigure3a(core::EngineOptions options);

// 3(b): one request closes two cycles; {T1} and {T2} are both cuts.
// T2 S-holds e then waits for a (X-held by T1); T3 S-holds e then waits
// for b (X-held by T2); T1's X request on e closes
// T1->T2->T1 and T1->T2->T3->T1.
struct Figure3bScenario {
  std::unique_ptr<ScenarioRunner> runner;
  TxnId t1, t2, t3;
  EntityId a, b, e;
  Result<core::StepOutcome> TriggerDeadlock();  // T1 requests e
};
Result<Figure3bScenario> BuildFigure3b(core::EngineOptions options);

// 3(c): T1's X request on f (S-held by T2 and T3) closes two cycles whose
// only single-vertex cut is {T1}; otherwise both T2 and T3 must roll back.
// T2 waits for x (X-held by T1); T3 waits for y (X-held by T1).
struct Figure3cScenario {
  std::unique_ptr<ScenarioRunner> runner;
  TxnId t1, t2, t3;
  EntityId x, y, f;
  Result<core::StepOutcome> TriggerDeadlock();  // T1 requests f
};
Result<Figure3cScenario> BuildFigure3c(core::EngineOptions options);

// ---------------------------------------------------------------------------
// Paper Figures 4 and 5 — transaction structure and well-defined states.
// ---------------------------------------------------------------------------

// A 6-lock transaction with scattered writes whose interior lock states are
// all undefined (Figure 4's T_1). When `omit_second_var_write` is true the
// C <- K-style op is deleted, making lock states 4 and 5 well-defined —
// the paper's point that one write can destroy many states.
txn::Program MakeFigure4Program(const std::vector<EntityId>& entities,
                                bool omit_second_var_write);

// The same operations clustered per entity (Figure 5's T_2): every lock
// state is well-defined.
txn::Program MakeFigure5Program(const std::vector<EntityId>& entities);

}  // namespace pardb::sim

#endif  // PARDB_SIM_SCENARIO_H_

#ifndef PARDB_SIM_WORKLOAD_H_
#define PARDB_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/types.h"
#include "txn/program.h"

namespace pardb::sim {

// Where a transaction's reads/writes sit relative to its lock requests —
// the structural property §5 of the paper connects to rollback efficiency.
enum class WritePattern {
  // Writes to an entity are spread over the lock states after its lock
  // (paper Figure 4's T_1: many undefined states).
  kScattered,
  // All accesses to an entity immediately follow its lock request (paper
  // Figure 5's T_2: maximally clustered writes, many well-defined states).
  kClustered,
  // Acquisition phase (all locks), then update phase, then release (§5's
  // three-phase structure; with the last-lock declaration no history is
  // recorded at all).
  kThreePhase,
};

std::string_view WritePatternName(WritePattern p);

struct WorkloadOptions {
  std::uint64_t num_entities = 64;
  // When non-empty, programs draw their entities from this pool instead of
  // the dense range [0, num_entities). Lets a caller carve the database
  // into locality domains (e.g. par::RunSharded generates mostly
  // shard-local transactions from per-shard pools). Zipf skew applies to
  // the pool's index order. Programs lock at most pool-size entities even
  // if min_locks asks for more.
  std::vector<EntityId> entity_universe;
  // Zipfian skew over entities; 0 = uniform.
  double zipf_theta = 0.0;
  std::uint32_t min_locks = 2;
  std::uint32_t max_locks = 6;
  // Probability that a lock is shared (read-only access to that entity).
  double shared_fraction = 0.0;
  // Access operations generated per locked entity (each is read + compute +
  // write for X locks, read for S locks).
  std::uint32_t ops_per_entity = 2;
  WritePattern pattern = WritePattern::kScattered;
  // When true, each transaction locks its entities in ascending id order —
  // the hierarchical-order discipline that makes deadlock impossible
  // (useful as a control).
  bool sorted_entities = false;
  // When > 0, only the first num_templates programs are drawn from the
  // rng; every later program is a renamed copy of template
  // (sequence % num_templates). Models a parameterized-statement OLTP mix:
  // after the first cycle the engine's compile cache serves every
  // admission from an existing entry. 0 = every program unique.
  std::uint32_t num_templates = 0;
};

// Deterministic generator of random transaction programs. Two generators
// with the same options and seed produce identical program sequences.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadOptions& options, std::uint64_t seed);

  // Generates the next program; `sequence` numbers names txn-0, txn-1, ...
  Result<txn::Program> Next();

  const WorkloadOptions& options() const { return options_; }

 private:
  WorkloadOptions options_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::uint64_t sequence_ = 0;
  // First num_templates programs, kept for cycling (empty when 0). Rng
  // draws stop once the pool is full, so a templated stream's tail costs
  // no randomness — determinism is unaffected by how far it runs.
  std::vector<txn::Program> templates_;
};

}  // namespace pardb::sim

#endif  // PARDB_SIM_WORKLOAD_H_

#ifndef PARDB_STORAGE_ENTITY_STORE_H_
#define PARDB_STORAGE_ENTITY_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace pardb::storage {

// A versioned value as stored in the database.
struct VersionedValue {
  Value value = 0;
  // Monotonically increasing per entity; bumped on every Publish. Version 0
  // is the initial value. Versions let the serializability checker order
  // reads against writes without timestamps.
  std::uint64_t version = 0;
};

// The set of global data entities (paper §2). Holds only *global* values:
// under the paper's deferred-update discipline a transaction works on local
// copies (owned by its RollbackStrategy) and publishes the final value of an
// exclusively locked entity only when unlocking it. Because two-phase
// transactions are never rolled back after their first unlock, a rollback
// never needs to undo a global value — Restore is provided only for test
// harnesses that reset the database between runs.
//
// Storage is split by id shape. Entities created densely from id 0 — the
// only pattern the drivers and benches use — live in a flat vector indexed
// by id, so the per-op Get/Publish on the engine hot path is an array load
// instead of a hash probe. Ids that arrive out of order fall back to a
// hash map; the flat prefix only ever grows when the next contiguous id is
// created, so every id below flat_.size() is guaranteed present.
class EntityStore {
 public:
  EntityStore() = default;

  EntityStore(const EntityStore&) = delete;
  EntityStore& operator=(const EntityStore&) = delete;

  // Registers a new entity with an initial value (version 0).
  Status Create(EntityId id, Value initial);

  // Convenience: creates entities E0..E{n-1} with the given initial value.
  // Returns their ids in order.
  std::vector<EntityId> CreateMany(std::uint64_t n, Value initial = 0);

  bool Contains(EntityId id) const {
    return id.value() < flat_.size() || sparse_.count(id) > 0;
  }
  std::size_t size() const { return flat_.size() + sparse_.size(); }

  // Every id below this bound exists (dense prefix). Lets callers verify
  // "all of this program's entities exist" with one comparison against the
  // program's statically known max id.
  std::uint64_t contiguous_prefix() const { return flat_.size(); }

  // Current global value (what a transaction sees when it locks the entity).
  Result<VersionedValue> Get(EntityId id) const;

  // Publishes a new global value (unlock of an exclusively locked entity).
  // Bumps the version. Fails with NotFound for unknown entities.
  Result<std::uint64_t> Publish(EntityId id, Value value);

  // Test/benchmark helper: overwrite without bumping the version.
  Status ResetValue(EntityId id, Value value);

  // Snapshot of all (id, value) pairs, ordered by id; for whole-database
  // comparisons in tests.
  std::vector<std::pair<EntityId, Value>> Snapshot() const;

 private:
  // Flat dense prefix: ids [0, flat_.size()) are all present.
  std::vector<VersionedValue> flat_;
  // Everything created out of contiguous order.
  std::unordered_map<EntityId, VersionedValue> sparse_;
  std::uint64_t next_auto_id_ = 0;
};

}  // namespace pardb::storage

#endif  // PARDB_STORAGE_ENTITY_STORE_H_

#include "storage/entity_store.h"

#include <algorithm>
#include <sstream>

namespace pardb::storage {

namespace {
std::string EntityName(EntityId id) {
  std::ostringstream os;
  os << id;
  return os.str();
}
}  // namespace

Status EntityStore::Create(EntityId id, Value initial) {
  if (!id.valid()) {
    return Status::InvalidArgument("cannot create entity with invalid id");
  }
  auto [it, inserted] = map_.emplace(id, VersionedValue{initial, 0});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("entity " + EntityName(id) +
                                 " already exists");
  }
  next_auto_id_ = std::max(next_auto_id_, id.value() + 1);
  return Status::OK();
}

std::vector<EntityId> EntityStore::CreateMany(std::uint64_t n, Value initial) {
  std::vector<EntityId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EntityId id(next_auto_id_);
    // Create() advances next_auto_id_ past id.
    Status s = Create(id, initial);
    (void)s;  // cannot fail: id is fresh by construction
    ids.push_back(id);
  }
  return ids;
}

bool EntityStore::Contains(EntityId id) const {
  return map_.find(id) != map_.end();
}

Result<VersionedValue> EntityStore::Get(EntityId id) const {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("entity " + EntityName(id) + " does not exist");
  }
  return it->second;
}

Result<std::uint64_t> EntityStore::Publish(EntityId id, Value value) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("entity " + EntityName(id) + " does not exist");
  }
  it->second.value = value;
  ++it->second.version;
  return it->second.version;
}

Status EntityStore::ResetValue(EntityId id, Value value) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("entity " + EntityName(id) + " does not exist");
  }
  it->second.value = value;
  return Status::OK();
}

std::vector<std::pair<EntityId, Value>> EntityStore::Snapshot() const {
  std::vector<std::pair<EntityId, Value>> out;
  out.reserve(map_.size());
  for (const auto& [id, vv] : map_) out.emplace_back(id, vv.value);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace pardb::storage

#include "storage/entity_store.h"

#include <algorithm>
#include <sstream>

namespace pardb::storage {

namespace {
std::string EntityName(EntityId id) {
  std::ostringstream os;
  os << id;
  return os.str();
}
}  // namespace

Status EntityStore::Create(EntityId id, Value initial) {
  if (!id.valid()) {
    return Status::InvalidArgument("cannot create entity with invalid id");
  }
  if (id.value() < flat_.size()) {
    return Status::AlreadyExists("entity " + EntityName(id) +
                                 " already exists");
  }
  if (id.value() == flat_.size() && sparse_.empty()) {
    // The common case: dense creation from 0 extends the flat prefix.
    // Guarded on an empty sparse side so the prefix never grows into an id
    // that already exists there.
    flat_.push_back(VersionedValue{initial, 0});
  } else {
    auto [it, inserted] = sparse_.emplace(id, VersionedValue{initial, 0});
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("entity " + EntityName(id) +
                                   " already exists");
    }
  }
  next_auto_id_ = std::max(next_auto_id_, id.value() + 1);
  return Status::OK();
}

std::vector<EntityId> EntityStore::CreateMany(std::uint64_t n, Value initial) {
  std::vector<EntityId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EntityId id(next_auto_id_);
    // Create() advances next_auto_id_ past id.
    Status s = Create(id, initial);
    (void)s;  // cannot fail: id is fresh by construction
    ids.push_back(id);
  }
  return ids;
}

Result<VersionedValue> EntityStore::Get(EntityId id) const {
  if (id.value() < flat_.size()) return flat_[id.value()];
  auto it = sparse_.find(id);
  if (it == sparse_.end()) {
    return Status::NotFound("entity " + EntityName(id) + " does not exist");
  }
  return it->second;
}

Result<std::uint64_t> EntityStore::Publish(EntityId id, Value value) {
  VersionedValue* vv = nullptr;
  if (id.value() < flat_.size()) {
    vv = &flat_[id.value()];
  } else {
    auto it = sparse_.find(id);
    if (it == sparse_.end()) {
      return Status::NotFound("entity " + EntityName(id) + " does not exist");
    }
    vv = &it->second;
  }
  vv->value = value;
  ++vv->version;
  return vv->version;
}

Status EntityStore::ResetValue(EntityId id, Value value) {
  if (id.value() < flat_.size()) {
    flat_[id.value()].value = value;
    return Status::OK();
  }
  auto it = sparse_.find(id);
  if (it == sparse_.end()) {
    return Status::NotFound("entity " + EntityName(id) + " does not exist");
  }
  it->second.value = value;
  return Status::OK();
}

std::vector<std::pair<EntityId, Value>> EntityStore::Snapshot() const {
  std::vector<std::pair<EntityId, Value>> out;
  out.reserve(size());
  for (std::size_t i = 0; i < flat_.size(); ++i) {
    out.emplace_back(EntityId(i), flat_[i].value);
  }
  for (const auto& [id, vv] : sparse_) out.emplace_back(id, vv.value);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace pardb::storage

#include "dist/distributed.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/history.h"
#include "storage/entity_store.h"

namespace pardb::dist {

std::uint32_t SiteOfEntity(EntityId entity, std::uint32_t num_sites) {
  if (num_sites == 0) return 0;
  // Fibonacci hash so consecutive ids spread over sites.
  return static_cast<std::uint32_t>((entity.value() * 0x9e3779b97f4a7c15ULL) >>
                                    32) %
         num_sites;
}

std::string DistReport::ToString() const {
  std::ostringstream os;
  os << "committed=" << committed << (completed ? "" : " (INCOMPLETE)")
     << " deadlocks=" << metrics.deadlocks << " (local=" << deadlocks_local
     << ", multi-site=" << deadlocks_multi_site << ")"
     << " wounds=" << metrics.wounds << " deaths=" << metrics.deaths
     << " rollbacks=" << metrics.rollbacks << " wasted=" << metrics.wasted_ops
     << " serializable=" << (serializable ? "yes" : "NO");
  return os.str();
}

Result<DistReport> RunDistributed(const DistOptions& options) {
  storage::EntityStore store;
  store.CreateMany(options.workload.num_entities, 100);

  analysis::HistoryRecorder recorder;
  core::Engine engine(&store, options.engine, &recorder);
  sim::WorkloadGenerator gen(options.workload, options.seed);

  std::uint64_t spawned = 0;
  bool completed = true;
  std::uint64_t steps = 0;
  while (engine.metrics().commits < options.total_txns) {
    if (++steps > options.max_steps) {
      completed = false;
      break;
    }
    while (spawned < options.total_txns &&
           spawned - engine.metrics().commits < options.concurrency) {
      auto program = gen.Next();
      if (!program.ok()) return program.status();
      auto id = engine.Spawn(std::move(program).value());
      if (!id.ok()) return id.status();
      ++spawned;
    }
    auto stepped = engine.StepAny();
    if (!stepped.ok()) return stepped.status();
    if (!stepped.value().has_value()) {
      return Status::Internal("distributed simulation stalled:\n" +
                              engine.DumpState());
    }
  }

  DistReport report;
  report.metrics = engine.metrics();
  report.committed = engine.metrics().commits;
  report.completed = completed;
  report.serializable = recorder.IsConflictSerializable();
  // SafeRatio keeps both fractions finite for workloads that commit
  // nothing or execute zero ops (total_txns == 0, max_steps == 0).
  report.wasted_fraction =
      SafeRatio(report.metrics.wasted_ops, report.metrics.ops_executed);
  report.goodput = SafeRatio(report.committed, report.metrics.ops_executed);

  // Site analysis of detected deadlocks (§3.3): which could a per-site
  // detector have found without any cross-site communication?
  for (const auto& ev : engine.deadlock_events()) {
    std::set<std::uint32_t> sites;
    for (EntityId e : ev.cycle_entities) {
      sites.insert(SiteOfEntity(e, options.num_sites));
    }
    if (sites.size() <= 1) {
      ++report.deadlocks_local;
    } else {
      ++report.deadlocks_multi_site;
    }
    report.max_sites_in_deadlock = std::max(
        report.max_sites_in_deadlock, static_cast<std::uint32_t>(sites.size()));
  }
  report.multi_site_fraction =
      SafeRatio(report.deadlocks_multi_site,
                report.deadlocks_local + report.deadlocks_multi_site);
  return report;
}

}  // namespace pardb::dist

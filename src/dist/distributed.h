#ifndef PARDB_DIST_DISTRIBUTED_H_
#define PARDB_DIST_DISTRIBUTED_H_

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "sim/workload.h"

namespace pardb::dist {

// §3.3 of the paper: in a distributed database the concurrency graph is
// scattered over sites, so cycle detection requires cross-site
// communication, while deadlocks confined to one site remain cheap. This
// module partitions entities over sites by hash, runs workloads under
// either global detection or a timestamp prevention scheme (wound-wait /
// wait-die, both using the configured *partial* rollback machinery), and
// reports how many deadlocks a per-site detector could have handled alone.

// Hash partition of entities over sites.
std::uint32_t SiteOfEntity(EntityId entity, std::uint32_t num_sites);

struct DistOptions {
  std::uint32_t num_sites = 4;
  // engine.handling selects the scheme; engine.strategy the rollback
  // extent (the paper's point: prevention schemes benefit from partial
  // rollback exactly like detection does).
  core::EngineOptions engine;
  sim::WorkloadOptions workload;
  std::uint32_t concurrency = 8;
  std::uint64_t total_txns = 200;
  std::uint64_t max_steps = 20'000'000;
  std::uint64_t seed = 1;
};

struct DistReport {
  core::EngineMetrics metrics;
  std::uint64_t committed = 0;
  bool completed = true;
  bool serializable = true;

  // Detection-mode site analysis: a deadlock is *local* when every entity
  // on its cycle lives on one site (a per-site detector finds it without
  // communication) and *multi-site* otherwise.
  std::uint64_t deadlocks_local = 0;
  std::uint64_t deadlocks_multi_site = 0;
  double multi_site_fraction = 0.0;
  // Sites spanned by the widest deadlock observed.
  std::uint32_t max_sites_in_deadlock = 0;

  double wasted_fraction = 0.0;
  double goodput = 0.0;

  std::string ToString() const;
};

// Runs the closed-loop workload (as sim::RunSimulation) with site
// accounting. Deterministic per (options, seed).
Result<DistReport> RunDistributed(const DistOptions& options);

}  // namespace pardb::dist

#endif  // PARDB_DIST_DISTRIBUTED_H_

#ifndef PARDB_OBS_TXNLIFE_H_
#define PARDB_OBS_TXNLIFE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace pardb::obs {

// ---------------------------------------------------------------------------
// Per-transaction lifecycle timelines (DESIGN D13).
//
// Every transaction carries a compact timeline record stamped at admit,
// first step, each block/wake, each rollback (tagged with the decision that
// caused the loss and the causing transaction/cycle) and commit — in
// virtual step time always, in wall time on a sampled subset of events.
// The records power the wasted-work ledger (pardb_wasted_steps_total by
// cause — the first direct measurement of the paper's partial-vs-total
// claim), the end-to-end latency histograms (queue wait / lock wait /
// execution / rollback-redo components, p50/p99/p999), and the live
// /debug/txn and /debug/slowest endpoints.
//
// Timeline data NEVER enters the deterministic byte-compared reports:
// books hang off engines through the same borrowed-observer pattern as
// traces and lineage, and everything they publish flows through the
// metrics registry or the LiveHub.
// ---------------------------------------------------------------------------

// Why a transaction lost executed work. The taxonomy covers every rollback
// call site in the engine plus the coordinator's distributed aborts.
enum class RollbackCause : std::uint8_t {
  kDeadlockVictim = 0,  // detection preempted a cycle holder (min cost, §3.1)
  kOmegaPreemption,     // the Theorem 2 ω-ordered policy overrode min-cost
  kSelfRollback,        // the requester itself was the cheapest victim
  kWoundWait,           // an older requester wounded this holder
  kWaitDie,             // this younger requester died on conflict
  kTimeout,             // the wait expired
  kTwoPCAbort,          // coordinator-applied distributed partial rollback
};

inline constexpr std::size_t kNumRollbackCauses = 7;

// Canonical label value for {cause="..."} metric instances and JSON.
std::string_view RollbackCauseName(RollbackCause cause);

// One timeline event. `wall_ns` is 0 unless the event was wall-sampled
// (admit/commit always are; interior events every wall_sample_period-th).
struct TxnLifeEvent {
  enum class Kind : std::uint8_t {
    kAdmit,
    kFirstStep,
    kBlock,
    kWake,
    kRollback,
    kCommit,
  };

  Kind kind = Kind::kAdmit;
  RollbackCause cause = RollbackCause::kDeadlockVictim;  // kRollback only
  std::uint64_t txn = 0;      // local TxnId value
  std::uint64_t step = 0;     // engine step counter at emission
  std::uint64_t wall_ns = 0;  // sampled wall clock, 0 = not sampled
  std::uint64_t detail = 0;   // entity (block), cost (rollback), pc (commit)
  std::uint64_t causing = 0;  // causing TxnId value + 1, 0 = none
  std::uint64_t cycle = 0;    // deadlock ordinal + 1, 0 = none
};

std::string_view TxnLifeEventKindName(TxnLifeEvent::Kind kind);

// Timeline summary of one transaction, the unit the hub publishes and the
// debug endpoints serialize. `events` holds the ring-retained window for
// this transaction (possibly empty once evicted).
struct TxnTimelineRecord {
  static constexpr std::uint64_t kUnset = ~0ULL;

  std::uint64_t txn = 0;
  std::uint32_t shard = 0;
  bool committed = false;
  std::uint64_t admit_step = kUnset;
  std::uint64_t first_step = kUnset;
  std::uint64_t commit_step = kUnset;
  std::uint64_t admit_ns = 0;
  std::uint64_t commit_ns = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t lock_wait_steps = 0;
  std::uint64_t exec_steps = 0;  // ops executed, redo included
  std::uint64_t redo_steps = 0;  // sum of rollback costs (lost then redone)
  std::uint64_t blocks = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t e2e_steps = 0;  // commit_step - admit_step, 0 while open
  std::vector<TxnLifeEvent> events;
};

// What a shard publishes to the LiveHub at snapshot cadence: the ledger
// totals plus a bounded set of full records (top-k slowest committed and
// the most recently admitted), with per-record events recovered from the
// ring in one pass.
struct TxnLifeDigest {
  std::uint32_t shard = 0;
  std::uint64_t txns = 0;       // records in the book
  std::uint64_t committed = 0;  // of which committed
  std::uint64_t steps_executed = 0;
  std::uint64_t wasted_steps = 0;
  std::uint64_t total_events = 0;
  std::uint64_t dropped_events = 0;
  std::array<std::uint64_t, kNumRollbackCauses> wasted_by_cause{};
  std::array<std::uint64_t, kNumRollbackCauses> rollbacks_by_cause{};
  std::vector<TxnTimelineRecord> slowest;  // descending e2e_steps
  std::vector<TxnTimelineRecord> recent;   // ascending txn id
};

// Per-engine lifecycle book. Single-threaded by design, like the engine
// that feeds it (the same discipline as LineageTracker): one book per
// engine/shard, written only by that shard's thread. Live visibility goes
// through attached metrics (lock-free registry objects) and through
// Digest(), which the shard thread materializes and hands to the hub.
//
// Storage is structure-of-arrays over dense local txn ids (the engine
// assigns them sequentially) plus one bounded event ring shared by all
// transactions; ring eviction is counted, mirroring RingTrace.
class TxnLifeBook {
 public:
  struct Options {
    std::size_t ring_capacity = 4096;      // timeline events retained
    std::uint64_t wall_sample_period = 64; // interior-event wall sampling
    const Clock* clock = nullptr;          // null = monotonic wall clock
  };

  TxnLifeBook() : TxnLifeBook(Options{}) {}
  explicit TxnLifeBook(Options options);

  // Engine hooks -----------------------------------------------------------

  void OnAdmit(TxnId txn, std::uint64_t step);
  // Called once per executed op; stamps the first step and counts work.
  void OnStep(TxnId txn, std::uint64_t step);
  void OnBlock(TxnId txn, std::uint64_t step, EntityId entity);
  void OnWake(TxnId txn, std::uint64_t step);
  void OnRollback(TxnId txn, std::uint64_t step, RollbackCause cause,
                  TxnId causing, std::uint64_t cycle, std::uint64_t cost);
  void OnCommit(TxnId txn, std::uint64_t step, StateIndex pc);

  // Driver-side stamp: wall nanoseconds the program spent in the admission
  // queue before Spawn (measured by the queue, carried to the book on the
  // shard thread — no cross-thread engine reads).
  void RecordQueueWait(TxnId txn, std::uint64_t wait_ns);

  // Registers the ledger metric set in `registry` (wasted-steps and
  // rollback counters per cause — eagerly, so every cause series exists at
  // 0 —, the rework-ratio gauge, the latency component histograms and the
  // dropped-events counter). Updates happen inline at stamp time; there is
  // no separate export step. The registry must outlive the book.
  void AttachMetrics(MetricsRegistry* registry, const LabelSet& labels = {});

  // Ledger introspection ---------------------------------------------------

  const std::array<std::uint64_t, kNumRollbackCauses>& wasted_by_cause()
      const {
    return wasted_by_cause_;
  }
  const std::array<std::uint64_t, kNumRollbackCauses>& rollbacks_by_cause()
      const {
    return rollbacks_by_cause_;
  }
  std::uint64_t wasted_steps() const { return wasted_steps_; }
  std::uint64_t steps_executed() const { return steps_executed_; }
  std::uint64_t txns() const { return admitted_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t total_events() const { return total_events_; }
  // Events evicted from the ring because it was full.
  std::uint64_t dropped_events() const { return dropped_events_; }

  // Timeline materialization (shard thread only) ---------------------------

  bool Has(TxnId txn) const;
  // Full record with its ring-retained events.
  TxnTimelineRecord RecordOf(TxnId txn, std::uint32_t shard = 0) const;
  TxnLifeDigest Digest(std::uint32_t shard, std::size_t top_k = 64,
                       std::size_t recent = 128) const;

 private:
  struct Columns {
    // Parallel per-txn columns, indexed by local txn id.
    std::vector<std::uint64_t> admit_step;
    std::vector<std::uint64_t> first_step;
    std::vector<std::uint64_t> commit_step;
    std::vector<std::uint64_t> admit_ns;
    std::vector<std::uint64_t> commit_ns;
    std::vector<std::uint64_t> queue_wait_ns;
    std::vector<std::uint64_t> lock_wait_steps;
    std::vector<std::uint64_t> block_since;  // kUnset when not blocked
    std::vector<std::uint64_t> exec_steps;
    std::vector<std::uint64_t> redo_steps;
    std::vector<std::uint32_t> blocks;
    std::vector<std::uint32_t> rollbacks;
  };

  bool Known(TxnId txn) const {
    return txn.valid() && txn.value() < cols_.admit_step.size() &&
           cols_.admit_step[txn.value()] != TxnTimelineRecord::kUnset;
  }
  void EnsureRow(std::uint64_t id);
  void PushEvent(TxnLifeEvent event, bool always_wall);
  std::uint64_t SampledWall(bool always) const;
  void UpdateReworkGauge();
  TxnTimelineRecord SummaryOf(std::uint64_t id, std::uint32_t shard) const;

  Options options_;
  const Clock* clock_;
  Columns cols_;

  // Bounded event ring (oldest evicted first).
  std::vector<TxnLifeEvent> ring_;
  std::size_t ring_head_ = 0;  // index of the oldest retained event
  std::uint64_t total_events_ = 0;
  std::uint64_t dropped_events_ = 0;

  // Ledger.
  std::uint64_t admitted_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t steps_executed_ = 0;
  std::uint64_t wasted_steps_ = 0;
  std::array<std::uint64_t, kNumRollbackCauses> wasted_by_cause_{};
  std::array<std::uint64_t, kNumRollbackCauses> rollbacks_by_cause_{};

  // Attached registry objects (all may be null).
  std::array<Counter*, kNumRollbackCauses> wasted_counters_{};
  std::array<Counter*, kNumRollbackCauses> cause_counters_{};
  Gauge* rework_ppm_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Histogram* e2e_steps_hist_ = nullptr;
  Histogram* lock_wait_hist_ = nullptr;
  Histogram* exec_hist_ = nullptr;
  Histogram* redo_hist_ = nullptr;
  Histogram* queue_wait_hist_ = nullptr;
};

// JSON rendering for the live endpoints -------------------------------------

// One record as a JSON object (timeline events included). Pinned by
// tools/txnlife_schema.json.
std::string TxnTimelineToJson(const TxnTimelineRecord& record);

// /debug/slowest?k= : top-k committed transactions by end-to-end steps
// across all published shard digests, slowest first.
std::string SlowestTxnsJson(const std::vector<TxnLifeDigest>& digests,
                            std::size_t k);

// /debug/txn?id= : every published record whose local txn id equals `id`
// (one per shard at most), plus the ledger context of each owning shard.
std::string TxnByIdJson(const std::vector<TxnLifeDigest>& digests,
                        std::uint64_t id);

}  // namespace pardb::obs

#endif  // PARDB_OBS_TXNLIFE_H_

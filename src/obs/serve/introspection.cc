#include "obs/serve/introspection.h"

#include <sstream>

#include "obs/forensics.h"

namespace pardb::obs {

void InstallIntrospectionRoutes(HttpServer* server, LiveHub* hub) {
  server->Route("/", [](const HttpRequest&) {
    return HttpResponse::Text(
        "pardb live introspection\n"
        "  /metrics                 Prometheus text exposition\n"
        "  /healthz                 run phase + uptime JSON\n"
        "  /debug/waits-for         waits-for snapshots "
        "(?format=json|dot&scope=shards|global)\n"
        "  /debug/deadlocks         recent deadlock forensics "
        "(?format=json|dot)\n");
  });

  server->Route("/metrics", [hub](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = hub->MergedMetrics().ToPrometheus();
    return r;
  });

  server->Route("/healthz", [hub, server](const HttpRequest&) {
    std::ostringstream os;
    os << "{\"phase\":\"" << RunPhaseName(hub->phase())
       << "\",\"uptime_seconds\":" << hub->UptimeSeconds()
       << ",\"shards\":" << hub->Snapshots().size()
       << ",\"deadlocks_seen\":" << hub->deadlocks_seen()
       << ",\"requests_served\":" << server->requests_served() << "}\n";
    return HttpResponse::Json(os.str());
  });

  server->Route("/debug/waits-for", [hub](const HttpRequest& req) {
    const std::string scope = req.QueryOr("scope", "shards");
    std::vector<WaitsForSnapshot> snaps;
    if (scope == "global") {
      // The union-of-forests view a locks-mode run publishes at merge
      // cadence; an empty document until (or unless) one has been merged.
      if (auto snap = hub->GlobalSnapshot()) snaps.push_back(*std::move(snap));
    } else if (scope == "shards") {
      snaps = hub->Snapshots();
    } else {
      HttpResponse r;
      r.status = 400;
      r.body = "unknown scope '" + scope + "' (want shards or global)\n";
      return r;
    }
    const std::string format = req.QueryOr("format", "json");
    if (format == "dot") {
      return HttpResponse::Text(WaitsForSnapshotsToDot(snaps));
    }
    if (format == "json") {
      return HttpResponse::Json(WaitsForSnapshotsToJson(
          snaps, std::string(RunPhaseName(hub->phase()))));
    }
    HttpResponse r;
    r.status = 400;
    r.body = "unknown format '" + format + "' (want json or dot)\n";
    return r;
  });

  server->Route("/debug/deadlocks", [hub](const HttpRequest& req) {
    const std::vector<ShardDeadlockDump> dumps = hub->RecentDeadlocks();
    const std::string format = req.QueryOr("format", "json");
    if (format == "dot") {
      if (dumps.empty()) return HttpResponse::Text("// no deadlocks seen\n");
      return HttpResponse::Text(DeadlockDumpToDot(dumps.back().dump));
    }
    if (format == "json") {
      return HttpResponse::Json(DeadlockDumpsToJson(dumps));
    }
    HttpResponse r;
    r.status = 400;
    r.body = "unknown format '" + format + "' (want json or dot)\n";
    return r;
  });
}

}  // namespace pardb::obs

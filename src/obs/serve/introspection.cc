#include "obs/serve/introspection.h"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/forensics.h"
#include "obs/journal.h"
#include "obs/txnlife.h"

namespace pardb::obs {

namespace {

// One SSE frame. The data payload may span lines (the snapshot JSON is
// pretty-printed), so every line gets its own `data:` field, per the spec.
std::string SseEvent(const std::string& event, const std::string& payload) {
  std::ostringstream os;
  os << "event: " << event << "\n";
  std::size_t pos = 0;
  while (pos <= payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    os << "data: " << payload.substr(pos, nl - pos) << "\n";
    pos = nl + 1;
  }
  os << "\n";
  return os.str();
}

// Strictly parsed non-negative integer query parameter; false on junk.
bool ParseUint(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

void InstallIntrospectionRoutes(HttpServer* server, LiveHub* hub) {
  server->Route("/", [](const HttpRequest&) {
    return HttpResponse::Text(
        "pardb live introspection\n"
        "  /metrics                 Prometheus text exposition\n"
        "  /healthz                 run phase + uptime JSON\n"
        "  /debug/waits-for         waits-for snapshots "
        "(?format=json|dot&scope=shards|global; ?stream=sse subscribes to "
        "snapshot updates)\n"
        "  /debug/deadlocks         recent deadlock forensics "
        "(?format=json|dot)\n"
        "  /debug/txn               lifecycle timeline of one transaction "
        "(?id=N)\n"
        "  /debug/slowest           slowest committed transactions by "
        "end-to-end steps (?k=10)\n"
        "  /debug/journal           decision-journal tail + epoch checksum "
        "chain (?shard=N; omit for all shards)\n");
  });

  server->Route("/metrics", [hub](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = hub->MergedMetrics().ToPrometheus();
    return r;
  });

  server->Route("/healthz", [hub, server](const HttpRequest& req) {
    // ?plain=1: the one-word liveness probe (what the CI smoke curl greps),
    // kept alongside the JSON body so scripts needn't parse anything.
    if (req.QueryOr("plain", "") == "1") {
      return HttpResponse::Text("ok\n");
    }
    const RunInfo info = hub->GetRunInfo();
    std::ostringstream os;
    os << "{\"phase\":\"" << RunPhaseName(hub->phase())
       << "\",\"build_id\":\""
       << (info.build_id.empty() ? "unknown" : info.build_id)
       << "\",\"seed\":" << info.seed << ",\"shard_count\":"
       << (info.shards != 0 ? info.shards : hub->Snapshots().size())
       << ",\"scheduler\":\""
       << (info.scheduler.empty() ? "unknown" : info.scheduler)
       << "\",\"mode\":\"" << (info.mode.empty() ? "unknown" : info.mode)
       << "\",\"uptime_seconds\":" << hub->UptimeSeconds()
       << ",\"shards\":" << hub->Snapshots().size()
       << ",\"deadlocks_seen\":" << hub->deadlocks_seen()
       << ",\"requests_served\":" << server->requests_served() << "}\n";
    return HttpResponse::Json(os.str());
  });

  server->Route("/debug/waits-for", [hub](const HttpRequest& req) {
    const std::string scope = req.QueryOr("scope", "shards");
    std::vector<WaitsForSnapshot> snaps;
    if (scope == "global") {
      // The union-of-forests view a locks-mode run publishes at merge
      // cadence; an empty document until (or unless) one has been merged.
      if (auto snap = hub->GlobalSnapshot()) snaps.push_back(*std::move(snap));
    } else if (scope == "shards") {
      snaps = hub->Snapshots();
    } else {
      HttpResponse r;
      r.status = 400;
      r.body = "unknown scope '" + scope + "' (want shards or global)\n";
      return r;
    }
    const std::string format = req.QueryOr("format", "json");
    if (format == "dot") {
      return HttpResponse::Text(WaitsForSnapshotsToDot(snaps));
    }
    if (format == "json") {
      return HttpResponse::Json(WaitsForSnapshotsToJson(
          snaps, std::string(RunPhaseName(hub->phase()))));
    }
    HttpResponse r;
    r.status = 400;
    r.body = "unknown format '" + format + "' (want json or dot)\n";
    return r;
  });

  // SSE subscription: one `snapshot` event per hub publication epoch. The
  // hub bumps snapshot_version() on every publish, so the stream polls the
  // version (cheap atomic read, no hub lock) and only serializes + sends
  // when something actually changed — a burst of per-shard publications
  // coalesces into one event. `max_events` bounds the stream (tests); 0
  // streams until the client disconnects or the server stops.
  server->RouteStream(
      "/debug/waits-for",
      [hub](const HttpRequest& req, const HttpServer::StreamWriter& write,
            const std::atomic<bool>& stopping) {
        std::uint64_t max_events = 0;
        ParseUint(req.QueryOr("max_events", ""), &max_events);
        const std::string phase_scope = req.QueryOr("scope", "shards");
        std::uint64_t sent = 0;
        std::uint64_t last_version = 0;
        bool first = true;
        while (!stopping.load(std::memory_order_acquire)) {
          const std::uint64_t version = hub->snapshot_version();
          if (first || version != last_version) {
            first = false;
            last_version = version;
            std::vector<WaitsForSnapshot> snaps;
            if (phase_scope == "global") {
              if (auto snap = hub->GlobalSnapshot()) {
                snaps.push_back(*std::move(snap));
              }
            } else {
              snaps = hub->Snapshots();
            }
            const std::string payload = WaitsForSnapshotsToJson(
                snaps, std::string(RunPhaseName(hub->phase())));
            if (!write(SseEvent("snapshot", payload))) return;
            if (max_events != 0 && ++sent >= max_events) return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
      });

  server->Route("/debug/txn", [hub](const HttpRequest& req) {
    std::uint64_t id = 0;
    if (!ParseUint(req.QueryOr("id", ""), &id)) {
      HttpResponse r;
      r.status = 400;
      r.body = "missing or malformed id (want /debug/txn?id=N)\n";
      return r;
    }
    return HttpResponse::Json(TxnByIdJson(hub->TxnLifeDigests(), id));
  });

  server->Route("/debug/slowest", [hub](const HttpRequest& req) {
    std::uint64_t k = 10;
    const std::string k_s = req.QueryOr("k", "10");
    if (!ParseUint(k_s, &k)) {
      HttpResponse r;
      r.status = 400;
      r.body = "malformed k (want /debug/slowest?k=N)\n";
      return r;
    }
    return HttpResponse::Json(
        SlowestTxnsJson(hub->TxnLifeDigests(), static_cast<std::size_t>(k)));
  });

  server->Route("/debug/journal", [hub](const HttpRequest& req) {
    const std::vector<JournalDigest> digests = hub->JournalDigests();
    const std::string shard_s = req.QueryOr("shard", "");
    if (shard_s.empty()) {
      std::ostringstream os;
      os << "[";
      for (std::size_t i = 0; i < digests.size(); ++i) {
        if (i > 0) os << ",";
        os << JournalTailJson(digests[i]);
      }
      os << "]\n";
      return HttpResponse::Json(os.str());
    }
    std::uint64_t shard = 0;
    if (!ParseUint(shard_s, &shard)) {
      HttpResponse r;
      r.status = 400;
      r.body = "malformed shard (want /debug/journal?shard=N)\n";
      return r;
    }
    for (const JournalDigest& d : digests) {
      if (d.shard == shard) return HttpResponse::Json(JournalTailJson(d));
    }
    HttpResponse r;
    r.status = 404;
    r.body = "no journal published for shard " + shard_s + "\n";
    return r;
  });

  server->Route("/debug/deadlocks", [hub](const HttpRequest& req) {
    const std::vector<ShardDeadlockDump> dumps = hub->RecentDeadlocks();
    const std::string format = req.QueryOr("format", "json");
    if (format == "dot") {
      if (dumps.empty()) return HttpResponse::Text("// no deadlocks seen\n");
      return HttpResponse::Text(DeadlockDumpToDot(dumps.back().dump));
    }
    if (format == "json") {
      return HttpResponse::Json(DeadlockDumpsToJson(dumps));
    }
    HttpResponse r;
    r.status = 400;
    r.body = "unknown format '" + format + "' (want json or dot)\n";
    return r;
  });
}

}  // namespace pardb::obs

#ifndef PARDB_OBS_SERVE_INTROSPECTION_H_
#define PARDB_OBS_SERVE_INTROSPECTION_H_

#include <cstdint>
#include <string>

#include "obs/serve/http_server.h"
#include "obs/serve/hub.h"

namespace pardb::obs {

// Wires the live introspection endpoints onto `server`, all reading from
// `hub` (borrowed; must outlive the server):
//
//   GET /metrics                  Prometheus text, merged across every
//                                 registered registry + hub gauges
//                                 (pardb_shard_load_skew, step EWMAs)
//   GET /healthz                  {"phase","uptime_seconds","shards",
//                                  "deadlocks_seen","requests_served"} JSON
//   GET /debug/waits-for          per-shard waits-for snapshots;
//                                 ?format=json (default) | dot;
//                                 ?stream=sse subscribes: one SSE
//                                 `snapshot` event per hub publication
//                                 epoch (?max_events=N bounds the stream)
//   GET /debug/deadlocks          ring of the last K forensic dumps
//                                 (cycle arcs, costs, victims) as JSON;
//                                 ?format=dot renders the newest dump
//   GET /debug/txn?id=N           lifecycle timeline of transaction N
//                                 across published shard digests (D13)
//   GET /debug/slowest?k=K        top-K committed transactions by
//                                 end-to-end steps, slowest first
//   GET /                         plain-text index of the endpoints
//
// Call before HttpServer::Start(); handlers run on the server thread and
// touch only hub-synchronized state.
void InstallIntrospectionRoutes(HttpServer* server, LiveHub* hub);

}  // namespace pardb::obs

#endif  // PARDB_OBS_SERVE_INTROSPECTION_H_

#include "obs/serve/http_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace pardb::obs {

namespace {

// Accept-loop poll granularity: the upper bound on Stop() latency.
constexpr int kPollMillis = 50;

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexVal(s[i + 1]);
      const int lo = HexVal(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

// Writes the whole response, riding out signal interruptions. A client
// that disconnects mid-response must cost at most the truncated write:
// MSG_NOSIGNAL (or SO_NOSIGPIPE where that's the spelling) turns the
// would-be fatal SIGPIPE into an EPIPE return, and EINTR is retried
// instead of abandoning a response a signal happened to interrupt.
// Returns false once the peer is gone (the SSE loop's exit signal).
bool WriteAll(int fd, const std::string& data) {
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
#endif
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, kSendFlags);
    if (n < 0 && errno == EINTR) continue;  // interrupted, not gone: retry
    if (n <= 0) return false;  // peer went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::map<std::string, std::string> ParseQueryString(const std::string& qs) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < qs.size()) {
    std::size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    const std::string pair = qs.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) out[UrlDecode(pair)] = "";
    } else {
      out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

HttpResponse HttpResponse::Json(std::string body) {
  HttpResponse r;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Text(std::string body) {
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::NotFound(const std::string& path) {
  HttpResponse r;
  r.status = 404;
  r.body = "no such endpoint: " + path + "\n";
  return r;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

void HttpServer::RouteStream(const std::string& path, StreamHandler handler) {
  stream_routes_[path] = std::move(handler);
}

Status HttpServer::Start(std::uint16_t port) {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot bind 127.0.0.1:" +
                                   std::to_string(port) + ": " +
                                   std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // No new stream threads can appear after the accept thread exits; each
  // live one sees stopping_ within its ~100ms pacing and winds down.
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (std::thread& t : stream_threads_) {
      if (t.joinable()) t.join();
    }
    stream_threads_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    if (!HandleConnection(conn)) ::close(conn);
  }
}

bool HttpServer::HandleConnection(int fd) {
  // Read until the end of the header block (or 16 KiB — introspection
  // requests are one line). A short poll keeps a stalled client from
  // wedging the accept loop.
  std::string raw;
  char buf[2048];
  while (raw.size() < 16384 && raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 1000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t eol = raw.find('\n');
  if (eol == std::string::npos) return false;

  std::istringstream line(raw.substr(0, eol));
  std::string method, target, version;
  line >> method >> target >> version;

  HttpResponse resp;
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
  } else {
    std::string path = target;
    std::string qs;
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      path = target.substr(0, qmark);
      qs = target.substr(qmark + 1);
    }
    HttpRequest req;
    req.method = method;
    req.path = path;
    req.query = ParseQueryString(qs);
    if (auto st = stream_routes_.find(path);
        st != stream_routes_.end() && req.QueryOr("stream", "") == "sse") {
      // Hand the connection to a stream thread: headers now, then the
      // handler paces itself against the hub until the client leaves or
      // Stop() flips stopping_. The thread owns (and closes) the fd.
      requests_.fetch_add(1, std::memory_order_relaxed);
      const StreamHandler* handler = &st->second;  // map entry outlives threads
      std::lock_guard<std::mutex> lock(stream_mu_);
      stream_threads_.emplace_back([this, fd, req = std::move(req), handler] {
        if (WriteAll(fd,
                     "HTTP/1.0 200 OK\r\n"
                     "Content-Type: text/event-stream\r\n"
                     "Cache-Control: no-cache\r\n"
                     "Connection: close\r\n\r\n")) {
          (*handler)(
              req, [fd](const std::string& chunk) { return WriteAll(fd, chunk); },
              stopping_);
        }
        ::close(fd);
      });
      return true;
    }
    auto it = routes_.find(path);
    if (it == routes_.end()) {
      resp = HttpResponse::NotFound(path);
    } else {
      resp = it->second(req);
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::ostringstream out;
  out << "HTTP/1.0 " << resp.status << " " << StatusText(resp.status)
      << "\r\n"
      << "Content-Type: " << resp.content_type << "\r\n"
      << "Content-Length: " << resp.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << resp.body;
  WriteAll(fd, out.str());
  return false;
}

}  // namespace pardb::obs

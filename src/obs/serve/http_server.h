#ifndef PARDB_OBS_SERVE_HTTP_SERVER_H_
#define PARDB_OBS_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pardb::obs {

// One parsed request. Only what the introspection endpoints need: method,
// path, and the decoded query parameters. Headers and bodies are ignored.
struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/debug/waits-for"
  std::map<std::string, std::string> query;  // {"format":"dot"}

  std::string QueryOr(const std::string& key, const std::string& fallback) const {
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Json(std::string body);
  static HttpResponse Text(std::string body);
  static HttpResponse NotFound(const std::string& path);
};

// Minimal dependency-free HTTP/1.0 server for live introspection: a
// blocking accept loop (poll + accept, so shutdown never races a wakeup)
// on one background thread, handling one request at a time. Exactly what a
// /metrics scrape needs, and nothing the TSan par suite could trip over:
// routes are frozen before Start(), handlers run only on the server
// thread, and every shared structure they read is internally synchronized
// (registry snapshots, the live hub's mutex).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Streaming handler: invoked after the response headers have gone out
  // (200, text/event-stream, no Content-Length). `write` appends raw bytes
  // to the open connection and returns false once the client disconnected;
  // `stopping` flips true when Stop() was called. The handler owns its
  // pacing and MUST observe both signals at least every ~100ms so shutdown
  // stays prompt — the server joins every stream thread in Stop().
  using StreamWriter = std::function<bool(const std::string&)>;
  using StreamHandler = std::function<void(
      const HttpRequest&, const StreamWriter&, const std::atomic<bool>&)>;

  // Registers a handler for an exact path. Must be called before Start().
  void Route(const std::string& path, Handler handler);

  // Registers a streaming (Server-Sent Events) handler for an exact path.
  // A request for the path is handed to it only when its query string has
  // stream=sse; anything else falls through to the regular Route handler.
  // Each live stream runs on its own detached-until-Stop thread, so a
  // long-lived subscriber never blocks the accept loop (and a /metrics
  // scrape proceeds mid-stream). Must be called before Start().
  void RouteStream(const std::string& path, StreamHandler handler);

  // Binds 127.0.0.1:`port` (0 = ephemeral) and spawns the accept thread.
  // InvalidArgument/Internal on socket errors (port in use, etc.).
  Status Start(std::uint16_t port);

  // The bound port (useful after Start(0)). 0 when not running.
  std::uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  // Stops accepting, closes the socket and joins the thread. Idempotent.
  void Stop();

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  // Returns true when the connection was handed off to a stream thread
  // (which then owns and closes the fd); false when the caller must close.
  bool HandleConnection(int fd);

  std::map<std::string, Handler> routes_;
  std::map<std::string, StreamHandler> stream_routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  // Live (and finished-but-unjoined) stream threads; spawned only by the
  // accept thread, joined in Stop() after the accept thread exits.
  std::mutex stream_mu_;
  std::vector<std::thread> stream_threads_;
};

// Decodes "a=1&b=x%2Fy" into a map (exposed for tests).
std::map<std::string, std::string> ParseQueryString(const std::string& qs);

}  // namespace pardb::obs

#endif  // PARDB_OBS_SERVE_HTTP_SERVER_H_

#ifndef PARDB_OBS_SERVE_HUB_H_
#define PARDB_OBS_SERVE_HUB_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"
#include "obs/forensics.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/txnlife.h"

namespace pardb::obs {

// Coarse run phase for /healthz.
enum class RunPhase { kIdle, kGenerating, kRunning, kAggregating, kDone };
std::string_view RunPhaseName(RunPhase phase);

// Static run metadata surfaced by /healthz: what is this process running?
// Set once by the driver before the run starts (safe concurrently with the
// server thread only through the hub's SetRunInfo/GetRunInfo).
struct RunInfo {
  std::string build_id;    // compiler + build date, or a caller override
  std::uint64_t seed = 0;
  std::uint32_t shards = 0;
  std::string scheduler;   // "time-slice" / "run-to-completion" / "sim"
  std::string mode;        // "sim" / "parallel" / "serve"
};

// Rendezvous between an in-flight run and the introspection server.
//
// Producers (the sim driver's loop, each shard's thread in the sharded
// driver) push point-in-time state in; the HTTP handlers, running on the
// server thread, read it out. Every cross-thread structure is either
// internally synchronized (MetricsRegistry, atomics) or guarded by the
// hub mutex (snapshots, the deadlock ring). Shard engines are never
// touched from the serving thread — they publish copies at their own step
// boundaries, which is what keeps snapshots consistent without a global
// stop.
class LiveHub {
 public:
  explicit LiveHub(const Clock* clock = nullptr,
                   std::size_t max_deadlocks = 32);

  // Run lifecycle ----------------------------------------------------------

  void SetPhase(RunPhase phase);
  RunPhase phase() const;
  // Seconds since construction (the serving process's uptime).
  double UptimeSeconds() const;

  // Metrics ----------------------------------------------------------------

  // Registers a live registry (one per shard; also the hub's own). Borrowed:
  // must outlive the hub or the hub must be discarded with the run. Safe
  // only between runs (before the pool starts / after it joins).
  void AddRegistry(const MetricsRegistry* registry);
  // Same, but the hub takes ownership: the registry lives as long as the
  // hub, so /metrics keeps serving a finished run's final values after the
  // driver's own state is gone. Returns the registry for the run to write.
  MetricsRegistry* AddOwnedRegistry(std::unique_ptr<MetricsRegistry> registry);
  void ClearRegistries();

  // Snapshot of every registered registry merged into one document (shard
  // labels preserved), plus the hub's own gauges (load skew, per-shard step
  // EWMAs) refreshed at call time. This is the /metrics body.
  RegistrySnapshot MergedMetrics() const;

  // Waits-for snapshots ----------------------------------------------------

  // Publishes `snap` as shard `snap.shard`'s latest state (replacing any
  // previous one). Called from the owning shard's thread.
  void PublishSnapshot(WaitsForSnapshot snap);
  // Latest snapshot of every shard that published one, in shard order.
  std::vector<WaitsForSnapshot> Snapshots() const;

  // The cross-shard union view (/debug/waits-for?scope=global): the merged
  // waits-for graph the xshard coordinator detects global cycles on.
  // Published from the driver's coordinate phase at merge cadence.
  void PublishGlobalSnapshot(WaitsForSnapshot snap);
  // Latest published union view; has_value() only when a locks-mode run
  // has published one.
  std::optional<WaitsForSnapshot> GlobalSnapshot() const;

  // Transaction-lifecycle digests ------------------------------------------

  // Publishes `digest` as shard `digest.shard`'s latest lifecycle digest
  // (replacing any previous one). Called from the owning shard's thread at
  // snapshot cadence; powers /debug/txn and /debug/slowest.
  void PublishTxnLife(TxnLifeDigest digest);
  // Latest digest of every shard that published one, in shard order.
  std::vector<TxnLifeDigest> TxnLifeDigests() const;

  // Decision-journal digests ------------------------------------------------

  // Publishes `digest` as shard `digest.shard`'s latest journal digest
  // (replacing any previous one). Called from the owning shard's thread at
  // snapshot cadence; powers /debug/journal.
  void PublishJournal(JournalDigest digest);
  // Latest digest of every shard that published one, in shard order.
  std::vector<JournalDigest> JournalDigests() const;

  // Run metadata for /healthz (build id, seed, shard count, scheduler).
  void SetRunInfo(RunInfo info);
  RunInfo GetRunInfo() const;

  // Monotonic counter bumped on every waits-for or lifecycle publish. The
  // SSE stream polls it to detect fresh state without holding the hub lock.
  std::uint64_t snapshot_version() const {
    return snapshot_version_.load(std::memory_order_acquire);
  }

  // Deadlock ring ----------------------------------------------------------

  // A DeadlockDumpSink that records into this hub's ring, tagged with
  // `shard`. The returned sink is owned by the hub and thread-safe (each
  // shard installs its own wrapper; the ring is shared).
  DeadlockDumpSink* MakeDeadlockSink(std::uint32_t shard);
  // Last `max_deadlocks` dumps across all shards, oldest first.
  std::vector<ShardDeadlockDump> RecentDeadlocks() const;
  std::uint64_t deadlocks_seen() const {
    return deadlocks_seen_.load(std::memory_order_relaxed);
  }

  // Load skew --------------------------------------------------------------

  // Feeds one sampled step duration for `shard` into its EWMA (alpha=1/8;
  // the first sample initializes). Called from the shard's own thread;
  // slots are per-shard atomics.
  void RecordShardStep(std::uint32_t shard, std::uint64_t ns);
  // max/mean over the per-shard step-time EWMAs; 0 while fewer than one
  // shard has reported, 1.0 = perfectly balanced.
  double LoadSkew() const;
  // EWMA of `shard`, 0 when it has not reported.
  std::uint64_t ShardStepEwmaNs(std::uint32_t shard) const;
  std::size_t num_shard_slots() const { return kMaxShards; }

  // The hub's own registry (skew gauges live here; also handy for callers
  // that want run-level metrics served without a shard registry).
  MetricsRegistry* hub_registry() { return &hub_registry_; }

 private:
  class RingSink final : public DeadlockDumpSink {
   public:
    RingSink(LiveHub* hub, std::uint32_t shard) : hub_(hub), shard_(shard) {}
    void OnDeadlock(const DeadlockDump& dump) override;

   private:
    LiveHub* hub_;
    std::uint32_t shard_;
  };

  static constexpr std::size_t kMaxShards = 64;

  void RecordDeadlock(std::uint32_t shard, const DeadlockDump& dump);
  void RefreshSkewGauges() const;

  const Clock* clock_;
  std::uint64_t start_nanos_;
  std::size_t max_deadlocks_;
  std::atomic<int> phase_{static_cast<int>(RunPhase::kIdle)};

  mutable std::mutex mu_;
  std::vector<const MetricsRegistry*> registries_;
  std::vector<std::unique_ptr<MetricsRegistry>> owned_registries_;
  std::vector<WaitsForSnapshot> snapshots_;  // latest per shard, shard order
  std::optional<WaitsForSnapshot> global_snapshot_;  // latest union view
  std::vector<TxnLifeDigest> txnlife_;       // latest per shard, shard order
  std::vector<JournalDigest> journals_;      // latest per shard, shard order
  RunInfo run_info_;
  std::atomic<std::uint64_t> snapshot_version_{0};
  std::deque<ShardDeadlockDump> deadlocks_;
  std::vector<std::unique_ptr<RingSink>> sinks_;
  std::atomic<std::uint64_t> deadlocks_seen_{0};

  std::atomic<std::uint64_t> step_ewma_ns_[kMaxShards] = {};

  mutable MetricsRegistry hub_registry_;
};

}  // namespace pardb::obs

#endif  // PARDB_OBS_SERVE_HUB_H_

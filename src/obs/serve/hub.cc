#include "obs/serve/hub.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"

namespace pardb::obs {

std::string_view RunPhaseName(RunPhase phase) {
  switch (phase) {
    case RunPhase::kIdle:
      return "idle";
    case RunPhase::kGenerating:
      return "generating";
    case RunPhase::kRunning:
      return "running";
    case RunPhase::kAggregating:
      return "aggregating";
    case RunPhase::kDone:
      return "done";
  }
  return "unknown";
}

LiveHub::LiveHub(const Clock* clock, std::size_t max_deadlocks)
    : clock_(clock != nullptr ? clock : MonotonicClock::Global()),
      start_nanos_(clock_->NowNanos()),
      max_deadlocks_(max_deadlocks) {}

void LiveHub::SetPhase(RunPhase phase) {
  phase_.store(static_cast<int>(phase), std::memory_order_release);
}

RunPhase LiveHub::phase() const {
  return static_cast<RunPhase>(phase_.load(std::memory_order_acquire));
}

double LiveHub::UptimeSeconds() const {
  return static_cast<double>(clock_->NowNanos() - start_nanos_) * 1e-9;
}

void LiveHub::AddRegistry(const MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registries_.push_back(registry);
}

MetricsRegistry* LiveHub::AddOwnedRegistry(
    std::unique_ptr<MetricsRegistry> registry) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry* raw = registry.get();
  owned_registries_.push_back(std::move(registry));
  registries_.push_back(raw);
  return raw;
}

void LiveHub::ClearRegistries() {
  std::lock_guard<std::mutex> lock(mu_);
  registries_.clear();
  owned_registries_.clear();
}

RegistrySnapshot LiveHub::MergedMetrics() const {
  RefreshSkewGauges();
  RegistrySnapshot out = hub_registry_.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricsRegistry* r : registries_) {
    out.MergeFrom(r->Snapshot());
  }
  return out;
}

void LiveHub::PublishSnapshot(WaitsForSnapshot snap) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool replaced = false;
    for (WaitsForSnapshot& existing : snapshots_) {
      if (existing.shard == snap.shard) {
        existing = std::move(snap);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      snapshots_.push_back(std::move(snap));
      std::sort(snapshots_.begin(), snapshots_.end(),
                [](const WaitsForSnapshot& a, const WaitsForSnapshot& b) {
                  return a.shard < b.shard;
                });
    }
  }
  snapshot_version_.fetch_add(1, std::memory_order_release);
}

std::vector<WaitsForSnapshot> LiveHub::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

void LiveHub::PublishGlobalSnapshot(WaitsForSnapshot snap) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    global_snapshot_ = std::move(snap);
  }
  snapshot_version_.fetch_add(1, std::memory_order_release);
}

std::optional<WaitsForSnapshot> LiveHub::GlobalSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_snapshot_;
}

void LiveHub::PublishTxnLife(TxnLifeDigest digest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool replaced = false;
    for (TxnLifeDigest& existing : txnlife_) {
      if (existing.shard == digest.shard) {
        existing = std::move(digest);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      txnlife_.push_back(std::move(digest));
      std::sort(txnlife_.begin(), txnlife_.end(),
                [](const TxnLifeDigest& a, const TxnLifeDigest& b) {
                  return a.shard < b.shard;
                });
    }
  }
  snapshot_version_.fetch_add(1, std::memory_order_release);
}

std::vector<TxnLifeDigest> LiveHub::TxnLifeDigests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txnlife_;
}

void LiveHub::PublishJournal(JournalDigest digest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool replaced = false;
    for (JournalDigest& existing : journals_) {
      if (existing.shard == digest.shard) {
        existing = std::move(digest);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      journals_.push_back(std::move(digest));
      std::sort(journals_.begin(), journals_.end(),
                [](const JournalDigest& a, const JournalDigest& b) {
                  return a.shard < b.shard;
                });
    }
  }
  snapshot_version_.fetch_add(1, std::memory_order_release);
}

std::vector<JournalDigest> LiveHub::JournalDigests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journals_;
}

void LiveHub::SetRunInfo(RunInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  run_info_ = std::move(info);
}

RunInfo LiveHub::GetRunInfo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_info_;
}

DeadlockDumpSink* LiveHub::MakeDeadlockSink(std::uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::make_unique<RingSink>(this, shard));
  return sinks_.back().get();
}

void LiveHub::RingSink::OnDeadlock(const DeadlockDump& dump) {
  hub_->RecordDeadlock(shard_, dump);
}

void LiveHub::RecordDeadlock(std::uint32_t shard, const DeadlockDump& dump) {
  deadlocks_seen_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  deadlocks_.push_back(ShardDeadlockDump{shard, dump});
  while (deadlocks_.size() > max_deadlocks_) deadlocks_.pop_front();
}

std::vector<ShardDeadlockDump> LiveHub::RecentDeadlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ShardDeadlockDump>(deadlocks_.begin(), deadlocks_.end());
}

void LiveHub::RecordShardStep(std::uint32_t shard, std::uint64_t ns) {
  if (shard >= kMaxShards) return;
  std::atomic<std::uint64_t>& slot = step_ewma_ns_[shard];
  const std::uint64_t cur = slot.load(std::memory_order_relaxed);
  // First sample initializes the EWMA exactly (0 is the empty sentinel), so
  // a hand-built timing set produces a hand-computable skew.
  const std::uint64_t next =
      cur == 0 ? ns
               : static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(cur) +
                     (static_cast<std::int64_t>(ns) -
                      static_cast<std::int64_t>(cur)) /
                         8);
  slot.store(next == 0 ? 1 : next, std::memory_order_relaxed);
}

std::uint64_t LiveHub::ShardStepEwmaNs(std::uint32_t shard) const {
  if (shard >= kMaxShards) return 0;
  return step_ewma_ns_[shard].load(std::memory_order_relaxed);
}

double LiveHub::LoadSkew() const {
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::size_t n = 0;
  for (std::size_t s = 0; s < kMaxShards; ++s) {
    const std::uint64_t v = step_ewma_ns_[s].load(std::memory_order_relaxed);
    if (v == 0) continue;
    max = std::max(max, v);
    sum += v;
    ++n;
  }
  if (n == 0 || sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(n);
  return static_cast<double>(max) / mean;
}

void LiveHub::RefreshSkewGauges() const {
  hub_registry_.GetGauge(kShardLoadSkew)
      ->Set(static_cast<std::int64_t>(std::llround(LoadSkew() * 1000.0)));
  for (std::size_t s = 0; s < kMaxShards; ++s) {
    const std::uint64_t v = step_ewma_ns_[s].load(std::memory_order_relaxed);
    if (v == 0) continue;
    hub_registry_
        .GetGauge(kShardStepEwmaNs, {{kShardLabel, std::to_string(s)}})
        ->Set(static_cast<std::int64_t>(v));
  }
}

}  // namespace pardb::obs

#ifndef PARDB_OBS_PHASE_TIMER_H_
#define PARDB_OBS_PHASE_TIMER_H_

#include <cstdint>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace pardb::obs {

// RAII phase timer: records elapsed nanoseconds into a histogram when the
// scope exits. A null histogram disables the timer entirely — the clock is
// never read — so uninstrumented runs pay one branch per scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, const Clock* clock = nullptr)
      : hist_(hist),
        clock_(clock != nullptr ? clock : MonotonicClock::Global()),
        start_(hist != nullptr ? clock_->NowNanos() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  // Records now instead of at destruction; subsequent Stop()s are no-ops.
  void Stop() {
    if (hist_ == nullptr) return;
    hist_->Record(clock_->NowNanos() - start_);
    hist_ = nullptr;
  }

  // Abandons the measurement without recording.
  void Cancel() { hist_ = nullptr; }

 private:
  Histogram* hist_;
  const Clock* clock_;
  std::uint64_t start_;
};

}  // namespace pardb::obs

#endif  // PARDB_OBS_PHASE_TIMER_H_

#include "obs/txnlife.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/bits.h"
#include "obs/metric_names.h"

namespace pardb::obs {

namespace {

constexpr std::uint64_t kUnset = TxnTimelineRecord::kUnset;

void AppendStepOrNull(std::ostringstream& os, const char* key,
                      std::uint64_t v) {
  os << "\"" << key << "\":";
  if (v == kUnset) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

std::string_view RollbackCauseName(RollbackCause cause) {
  switch (cause) {
    case RollbackCause::kDeadlockVictim:
      return "deadlock_victim";
    case RollbackCause::kOmegaPreemption:
      return "omega_preemption";
    case RollbackCause::kSelfRollback:
      return "self_rollback";
    case RollbackCause::kWoundWait:
      return "wound_wait";
    case RollbackCause::kWaitDie:
      return "wait_die";
    case RollbackCause::kTimeout:
      return "timeout";
    case RollbackCause::kTwoPCAbort:
      return "twopc_abort";
  }
  return "unknown";
}

std::string_view TxnLifeEventKindName(TxnLifeEvent::Kind kind) {
  switch (kind) {
    case TxnLifeEvent::Kind::kAdmit:
      return "admit";
    case TxnLifeEvent::Kind::kFirstStep:
      return "first_step";
    case TxnLifeEvent::Kind::kBlock:
      return "block";
    case TxnLifeEvent::Kind::kWake:
      return "wake";
    case TxnLifeEvent::Kind::kRollback:
      return "rollback";
    case TxnLifeEvent::Kind::kCommit:
      return "commit";
  }
  return "unknown";
}

TxnLifeBook::TxnLifeBook(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Global()) {
  if (options_.wall_sample_period == 0) options_.wall_sample_period = 1;
  options_.wall_sample_period =
      RoundUpPowerOfTwo(options_.wall_sample_period);
  ring_.reserve(std::min<std::size_t>(options_.ring_capacity, 4096));
}

void TxnLifeBook::EnsureRow(std::uint64_t id) {
  if (id < cols_.admit_step.size()) return;
  const std::size_t n = id + 1;
  cols_.admit_step.resize(n, kUnset);
  cols_.first_step.resize(n, kUnset);
  cols_.commit_step.resize(n, kUnset);
  cols_.admit_ns.resize(n, 0);
  cols_.commit_ns.resize(n, 0);
  cols_.queue_wait_ns.resize(n, 0);
  cols_.lock_wait_steps.resize(n, 0);
  cols_.block_since.resize(n, kUnset);
  cols_.exec_steps.resize(n, 0);
  cols_.redo_steps.resize(n, 0);
  cols_.blocks.resize(n, 0);
  cols_.rollbacks.resize(n, 0);
}

std::uint64_t TxnLifeBook::SampledWall(bool always) const {
  if (always || (total_events_ & (options_.wall_sample_period - 1)) == 0) {
    return clock_->NowNanos();
  }
  return 0;
}

void TxnLifeBook::PushEvent(TxnLifeEvent event, bool always_wall) {
  event.wall_ns = SampledWall(always_wall);
  ++total_events_;
  if (options_.ring_capacity == 0) {
    ++dropped_events_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
    return;
  }
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(event);
    return;
  }
  ring_[ring_head_] = event;
  ring_head_ = (ring_head_ + 1) % options_.ring_capacity;
  ++dropped_events_;
  if (dropped_counter_ != nullptr) dropped_counter_->Inc();
}

void TxnLifeBook::OnAdmit(TxnId txn, std::uint64_t step) {
  if (!txn.valid()) return;
  EnsureRow(txn.value());
  cols_.admit_step[txn.value()] = step;
  cols_.admit_ns[txn.value()] = clock_->NowNanos();
  ++admitted_;
  TxnLifeEvent e;
  e.kind = TxnLifeEvent::Kind::kAdmit;
  e.txn = txn.value();
  e.step = step;
  PushEvent(e, /*always_wall=*/true);
}

void TxnLifeBook::OnStep(TxnId txn, std::uint64_t step) {
  if (!Known(txn)) return;
  const std::uint64_t id = txn.value();
  ++cols_.exec_steps[id];
  ++steps_executed_;
  if (cols_.first_step[id] == kUnset) {
    cols_.first_step[id] = step;
    TxnLifeEvent e;
    e.kind = TxnLifeEvent::Kind::kFirstStep;
    e.txn = id;
    e.step = step;
    PushEvent(e, /*always_wall=*/false);
  }
}

void TxnLifeBook::OnBlock(TxnId txn, std::uint64_t step, EntityId entity) {
  if (!Known(txn)) return;
  const std::uint64_t id = txn.value();
  ++cols_.blocks[id];
  cols_.block_since[id] = step;
  TxnLifeEvent e;
  e.kind = TxnLifeEvent::Kind::kBlock;
  e.txn = id;
  e.step = step;
  e.detail = entity.valid() ? entity.value() : 0;
  PushEvent(e, /*always_wall=*/false);
}

void TxnLifeBook::OnWake(TxnId txn, std::uint64_t step) {
  if (!Known(txn)) return;
  const std::uint64_t id = txn.value();
  if (cols_.block_since[id] != kUnset) {
    cols_.lock_wait_steps[id] += step - cols_.block_since[id];
    cols_.block_since[id] = kUnset;
  }
  TxnLifeEvent e;
  e.kind = TxnLifeEvent::Kind::kWake;
  e.txn = id;
  e.step = step;
  PushEvent(e, /*always_wall=*/false);
}

void TxnLifeBook::OnRollback(TxnId txn, std::uint64_t step,
                             RollbackCause cause, TxnId causing,
                             std::uint64_t cycle, std::uint64_t cost) {
  if (!Known(txn)) return;
  const std::uint64_t id = txn.value();
  ++cols_.rollbacks[id];
  cols_.redo_steps[id] += cost;
  // A rollback cancels any pending wait; the time blocked still counts as
  // lock wait (it ended in a rollback instead of a grant).
  if (cols_.block_since[id] != kUnset) {
    cols_.lock_wait_steps[id] += step - cols_.block_since[id];
    cols_.block_since[id] = kUnset;
  }
  const auto c = static_cast<std::size_t>(cause);
  wasted_steps_ += cost;
  wasted_by_cause_[c] += cost;
  ++rollbacks_by_cause_[c];
  if (wasted_counters_[c] != nullptr) wasted_counters_[c]->Inc(cost);
  if (cause_counters_[c] != nullptr) cause_counters_[c]->Inc();
  UpdateReworkGauge();
  TxnLifeEvent e;
  e.kind = TxnLifeEvent::Kind::kRollback;
  e.cause = cause;
  e.txn = id;
  e.step = step;
  e.detail = cost;
  e.causing = causing.valid() ? causing.value() + 1 : 0;
  e.cycle = cycle;
  PushEvent(e, /*always_wall=*/false);
}

void TxnLifeBook::OnCommit(TxnId txn, std::uint64_t step, StateIndex pc) {
  if (!Known(txn)) return;
  const std::uint64_t id = txn.value();
  cols_.commit_step[id] = step;
  cols_.commit_ns[id] = clock_->NowNanos();
  cols_.block_since[id] = kUnset;
  ++committed_;
  UpdateReworkGauge();
  if (e2e_steps_hist_ != nullptr) {
    e2e_steps_hist_->Record(step - cols_.admit_step[id]);
  }
  if (lock_wait_hist_ != nullptr) {
    lock_wait_hist_->Record(cols_.lock_wait_steps[id]);
  }
  if (exec_hist_ != nullptr) exec_hist_->Record(cols_.exec_steps[id]);
  if (redo_hist_ != nullptr) redo_hist_->Record(cols_.redo_steps[id]);
  TxnLifeEvent e;
  e.kind = TxnLifeEvent::Kind::kCommit;
  e.txn = id;
  e.step = step;
  e.detail = pc;
  PushEvent(e, /*always_wall=*/true);
}

void TxnLifeBook::RecordQueueWait(TxnId txn, std::uint64_t wait_ns) {
  if (!Known(txn)) return;
  cols_.queue_wait_ns[txn.value()] = wait_ns;
  if (queue_wait_hist_ != nullptr) queue_wait_hist_->Record(wait_ns);
}

void TxnLifeBook::UpdateReworkGauge() {
  if (rework_ppm_ == nullptr) return;
  const std::uint64_t ppm =
      steps_executed_ == 0 ? 0 : wasted_steps_ * 1'000'000 / steps_executed_;
  rework_ppm_->Set(static_cast<std::int64_t>(ppm));
}

void TxnLifeBook::AttachMetrics(MetricsRegistry* registry,
                                const LabelSet& labels) {
  for (std::size_t c = 0; c < kNumRollbackCauses; ++c) {
    LabelSet with_cause = labels;
    with_cause.emplace_back(
        kCauseLabel,
        std::string(RollbackCauseName(static_cast<RollbackCause>(c))));
    wasted_counters_[c] = registry->GetCounter(kWastedStepsTotal, with_cause);
    cause_counters_[c] =
        registry->GetCounter(kRollbackCauseTotal, with_cause);
    if (wasted_counters_[c] != nullptr && wasted_by_cause_[c] > 0) {
      wasted_counters_[c]->Inc(wasted_by_cause_[c]);
    }
    if (cause_counters_[c] != nullptr && rollbacks_by_cause_[c] > 0) {
      cause_counters_[c]->Inc(rollbacks_by_cause_[c]);
    }
  }
  rework_ppm_ = registry->GetGauge(kReworkRatioPpm, labels);
  UpdateReworkGauge();
  dropped_counter_ = registry->GetCounter(kTxnlifeDroppedTotal, labels);
  if (dropped_counter_ != nullptr && dropped_events_ > 0) {
    dropped_counter_->Inc(dropped_events_);
  }
  e2e_steps_hist_ = registry->GetHistogram(kTxnE2eSteps, labels);
  lock_wait_hist_ = registry->GetHistogram(kTxnLockWaitSteps, labels);
  exec_hist_ = registry->GetHistogram(kTxnExecSteps, labels);
  redo_hist_ = registry->GetHistogram(kTxnRedoSteps, labels);
  queue_wait_hist_ = registry->GetHistogram(kTxnQueueWaitNs, labels);
}

bool TxnLifeBook::Has(TxnId txn) const { return Known(txn); }

TxnTimelineRecord TxnLifeBook::SummaryOf(std::uint64_t id,
                                         std::uint32_t shard) const {
  TxnTimelineRecord r;
  r.txn = id;
  r.shard = shard;
  r.admit_step = cols_.admit_step[id];
  r.first_step = cols_.first_step[id];
  r.commit_step = cols_.commit_step[id];
  r.admit_ns = cols_.admit_ns[id];
  r.commit_ns = cols_.commit_ns[id];
  r.queue_wait_ns = cols_.queue_wait_ns[id];
  r.lock_wait_steps = cols_.lock_wait_steps[id];
  r.exec_steps = cols_.exec_steps[id];
  r.redo_steps = cols_.redo_steps[id];
  r.blocks = cols_.blocks[id];
  r.rollbacks = cols_.rollbacks[id];
  r.committed = r.commit_step != kUnset;
  if (r.committed && r.admit_step != kUnset) {
    r.e2e_steps = r.commit_step - r.admit_step;
  }
  return r;
}

TxnTimelineRecord TxnLifeBook::RecordOf(TxnId txn,
                                        std::uint32_t shard) const {
  if (!Known(txn)) return TxnTimelineRecord{};
  TxnTimelineRecord r = SummaryOf(txn.value(), shard);
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const TxnLifeEvent& e = ring_[(ring_head_ + i) % n];
    if (e.txn == r.txn) r.events.push_back(e);
  }
  return r;
}

TxnLifeDigest TxnLifeBook::Digest(std::uint32_t shard, std::size_t top_k,
                                  std::size_t recent) const {
  TxnLifeDigest d;
  d.shard = shard;
  d.txns = admitted_;
  d.committed = committed_;
  d.steps_executed = steps_executed_;
  d.wasted_steps = wasted_steps_;
  d.total_events = total_events_;
  d.dropped_events = dropped_events_;
  d.wasted_by_cause = wasted_by_cause_;
  d.rollbacks_by_cause = rollbacks_by_cause_;

  const std::uint64_t rows = cols_.admit_step.size();
  // Top-k committed by end-to-end steps.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> closed;  // (e2e, id)
  closed.reserve(committed_);
  for (std::uint64_t id = 0; id < rows; ++id) {
    if (cols_.admit_step[id] == kUnset) continue;
    if (cols_.commit_step[id] == kUnset) continue;
    closed.emplace_back(cols_.commit_step[id] - cols_.admit_step[id], id);
  }
  const std::size_t k = std::min(top_k, closed.size());
  std::partial_sort(closed.begin(), closed.begin() + k, closed.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // stable tie-break by id
                    });
  closed.resize(k);

  // Most recently admitted rows (ids are dense, so the tail of the table).
  std::vector<std::uint64_t> recent_ids;
  for (std::uint64_t id = rows; id-- > 0 && recent_ids.size() < recent;) {
    if (cols_.admit_step[id] != kUnset) recent_ids.push_back(id);
  }
  std::reverse(recent_ids.begin(), recent_ids.end());

  std::unordered_map<std::uint64_t, std::vector<TxnLifeEvent>> events;
  for (const auto& [e2e, id] : closed) {
    (void)e2e;
    events.emplace(id, std::vector<TxnLifeEvent>{});
  }
  for (std::uint64_t id : recent_ids) {
    events.emplace(id, std::vector<TxnLifeEvent>{});
  }
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const TxnLifeEvent& e = ring_[(ring_head_ + i) % n];
    auto it = events.find(e.txn);
    if (it != events.end()) it->second.push_back(e);
  }

  auto Materialize = [&](std::uint64_t id) {
    TxnTimelineRecord r = SummaryOf(id, shard);
    auto it = events.find(id);
    if (it != events.end()) r.events = it->second;
    return r;
  };
  d.slowest.reserve(closed.size());
  for (const auto& [e2e, id] : closed) {
    (void)e2e;
    d.slowest.push_back(Materialize(id));
  }
  d.recent.reserve(recent_ids.size());
  for (std::uint64_t id : recent_ids) d.recent.push_back(Materialize(id));
  return d;
}

// JSON rendering ------------------------------------------------------------

std::string TxnTimelineToJson(const TxnTimelineRecord& r) {
  std::ostringstream os;
  os << "{\"txn\":" << r.txn << ",\"shard\":" << r.shard
     << ",\"committed\":" << (r.committed ? "true" : "false") << ",";
  AppendStepOrNull(os, "admit_step", r.admit_step);
  os << ",";
  AppendStepOrNull(os, "first_step", r.first_step);
  os << ",";
  AppendStepOrNull(os, "commit_step", r.commit_step);
  os << ",\"e2e_steps\":" << r.e2e_steps
     << ",\"queue_wait_ns\":" << r.queue_wait_ns
     << ",\"lock_wait_steps\":" << r.lock_wait_steps
     << ",\"exec_steps\":" << r.exec_steps
     << ",\"redo_steps\":" << r.redo_steps << ",\"blocks\":" << r.blocks
     << ",\"rollbacks\":" << r.rollbacks << ",\"admit_ns\":" << r.admit_ns
     << ",\"commit_ns\":" << r.commit_ns << ",\"events\":[";
  bool first = true;
  for (const TxnLifeEvent& e : r.events) {
    os << (first ? "" : ",") << "{\"kind\":\""
       << TxnLifeEventKindName(e.kind) << "\",\"step\":" << e.step
       << ",\"wall_ns\":" << e.wall_ns;
    if (e.kind == TxnLifeEvent::Kind::kRollback) {
      os << ",\"cause\":\"" << RollbackCauseName(e.cause) << "\",\"cost\":"
         << e.detail << ",\"causing_txn\":";
      if (e.causing == 0) {
        os << "null";
      } else {
        os << e.causing - 1;
      }
      os << ",\"cycle\":";
      if (e.cycle == 0) {
        os << "null";
      } else {
        os << e.cycle - 1;
      }
    } else if (e.kind == TxnLifeEvent::Kind::kBlock) {
      os << ",\"entity\":" << e.detail;
    } else if (e.kind == TxnLifeEvent::Kind::kCommit) {
      os << ",\"pc\":" << e.detail;
    }
    os << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string SlowestTxnsJson(const std::vector<TxnLifeDigest>& digests,
                            std::size_t k) {
  // Merge every shard's slowest list and re-rank globally.
  std::vector<const TxnTimelineRecord*> all;
  for (const TxnLifeDigest& d : digests) {
    for (const TxnTimelineRecord& r : d.slowest) all.push_back(&r);
  }
  std::sort(all.begin(), all.end(),
            [](const TxnTimelineRecord* a, const TxnTimelineRecord* b) {
              if (a->e2e_steps != b->e2e_steps) {
                return a->e2e_steps > b->e2e_steps;
              }
              if (a->shard != b->shard) return a->shard < b->shard;
              return a->txn < b->txn;
            });
  if (all.size() > k) all.resize(k);
  std::ostringstream os;
  os << "{\"k\":" << k << ",\"count\":" << all.size() << ",\"txns\":[";
  bool first = true;
  for (const TxnTimelineRecord* r : all) {
    os << (first ? "" : ",\n ") << TxnTimelineToJson(*r);
    first = false;
  }
  os << "]}\n";
  return os.str();
}

std::string TxnByIdJson(const std::vector<TxnLifeDigest>& digests,
                        std::uint64_t id) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"matches\":[";
  bool first = true;
  for (const TxnLifeDigest& d : digests) {
    const TxnTimelineRecord* found = nullptr;
    for (const TxnTimelineRecord& r : d.slowest) {
      if (r.txn == id) {
        found = &r;
        break;
      }
    }
    if (found == nullptr) {
      for (const TxnTimelineRecord& r : d.recent) {
        if (r.txn == id) {
          found = &r;
          break;
        }
      }
    }
    if (found != nullptr) {
      os << (first ? "" : ",\n ") << TxnTimelineToJson(*found);
      first = false;
    }
  }
  os << "],\"shards\":[";
  bool sf = true;
  for (const TxnLifeDigest& d : digests) {
    os << (sf ? "" : ",") << "{\"shard\":" << d.shard << ",\"txns\":"
       << d.txns << ",\"committed\":" << d.committed << ",\"wasted_steps\":"
       << d.wasted_steps << ",\"dropped_events\":" << d.dropped_events
       << "}";
    sf = false;
  }
  os << "]}\n";
  return os.str();
}

}  // namespace pardb::obs

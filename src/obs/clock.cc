#include "obs/clock.h"

#include <chrono>

namespace pardb::obs {

std::uint64_t MonotonicClock::NowNanos() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const MonotonicClock* MonotonicClock::Global() {
  static const MonotonicClock clock;
  return &clock;
}

}  // namespace pardb::obs

#ifndef PARDB_OBS_CLOCK_H_
#define PARDB_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace pardb::obs {

// Time source for phase timers. Virtual so the deterministic simulation can
// substitute a manually advanced clock: a test that wants exact latency
// histograms installs a ManualClock and advances it between operations,
// while production instrumentation reads the monotonic hardware clock.
class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic nanoseconds since an arbitrary epoch.
  virtual std::uint64_t NowNanos() const = 0;
};

// Wall-progress clock backed by std::chrono::steady_clock.
class MonotonicClock final : public Clock {
 public:
  std::uint64_t NowNanos() const override;

  // Process-wide instance; the default for every timer whose probe does not
  // supply a clock.
  static const MonotonicClock* Global();
};

// Deterministic clock for tests and the simulation: time moves only when
// told to. Thread-safe (atomic), so a sharded run can share one instance.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_nanos = 0) : now_(start_nanos) {}

  std::uint64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceNanos(std::uint64_t delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void SetNanos(std::uint64_t t) {
    now_.store(t, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace pardb::obs

#endif  // PARDB_OBS_CLOCK_H_

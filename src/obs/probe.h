#ifndef PARDB_OBS_PROBE_H_
#define PARDB_OBS_PROBE_H_

#include "obs/clock.h"
#include "obs/metrics.h"

namespace pardb::obs {

// Instrumentation points the lock manager fires. All members may be null
// (the default), which disables the corresponding measurement; the lock
// manager only checks pointers, it never touches a registry.
struct LockProbe {
  Counter* requests = nullptr;          // pardb_lock_requests_total
  Counter* grants_immediate = nullptr;  // granted without queueing
  Counter* queued = nullptr;            // requests that had to wait
  Counter* grants_on_release = nullptr;  // grants from release/cancel/downgrade
  Counter* cancels = nullptr;           // waits cancelled by rollback
  Gauge* max_queue_depth = nullptr;     // high-water mark over all entities
};

// Instrumentation points the engine fires, plus the lock probe it hands to
// its lock manager. Null members disable the measurement; a null clock
// means MonotonicClock::Global().
struct EngineProbe {
  const Clock* clock = nullptr;

  // Phase latency histograms (nanoseconds).
  Histogram* detection_ns = nullptr;      // one cycle-enumeration round
  Histogram* rollback_apply_ns = nullptr;  // one RollbackTxn application
  Histogram* lock_op_ns = nullptr;        // one lock-manager Request (sampled)

  // Lock-wait duration in *engine steps* — deterministic, derived from the
  // logical clock, so the deterministic sim produces stable values.
  Histogram* lock_wait_steps = nullptr;

  // Victim selection split: how often deadlock resolution hit the requester
  // itself vs. preempted another transaction.
  Counter* victims_requester = nullptr;
  Counter* victims_preempted = nullptr;

  LockProbe lock;

  const Clock* EffectiveClock() const {
    return clock != nullptr ? clock : MonotonicClock::Global();
  }
};

// Registers the canonical pardb_* metric set in `registry` (with `labels`
// on every instance, e.g. {{"shard","3"}}) and returns a probe pointing at
// it. The registry must outlive every component holding the probe.
EngineProbe MakeEngineProbe(MetricsRegistry* registry,
                            const LabelSet& labels = {},
                            const Clock* clock = nullptr);

// The lock-only subset, for code that owns a bare LockManager.
LockProbe MakeLockProbe(MetricsRegistry* registry, const LabelSet& labels = {});

}  // namespace pardb::obs

#endif  // PARDB_OBS_PROBE_H_

#ifndef PARDB_OBS_FORENSICS_H_
#define PARDB_OBS_FORENSICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace pardb::obs {

// One transaction on a detected cycle, with the paper's §3.1 cost model:
// cost = current state index minus the rollback target's state index.
struct DeadlockParticipant {
  TxnId txn;
  Timestamp entry = 0;  // ω-order position (Theorem 2's total order)
  std::uint64_t cost = 0;        // what its rollback strategy would pay
  std::uint64_t ideal_cost = 0;  // what exact restoration would pay
  LockIndex target = 0;          // lock state a rollback would restore
  bool is_requester = false;
  bool is_victim = false;
};

// One waits-for arc on the cycle: `waiter` waits for `holder` because of
// `entity`.
struct WaitsForArc {
  TxnId waiter;
  TxnId holder;
  EntityId entity;
};

// Everything known about one detected deadlock at resolution time — the
// forensic record behind the DOT dump.
struct DeadlockDump {
  std::uint64_t step = 0;  // engine step at detection
  TxnId requester;
  EntityId requested_entity;
  std::size_t num_cycles = 0;        // simple cycles through the requester
  std::vector<WaitsForArc> arcs;     // arcs of the first cycle found
  std::vector<DeadlockParticipant> participants;  // §3.1 candidates
  std::vector<TxnId> victims;        // chosen set (vertex cuts: several)
  std::string policy;                // victim policy name
};

// Renders the dump as Graphviz DOT: cycle members as nodes annotated with
// ω-order and rollback costs, victims filled red, the requester boxed, and
// waits-for arcs labeled with the contended entity. Deterministic output.
std::string DeadlockDumpToDot(const DeadlockDump& dump);

// Receiver for forensic dumps; the engine calls OnDeadlock once per
// resolved deadlock when a sink is installed.
class DeadlockDumpSink {
 public:
  virtual ~DeadlockDumpSink() = default;
  virtual void OnDeadlock(const DeadlockDump& dump) = 0;
};

// Keeps the first `max_dumps` dumps in memory (tests, report assembly).
class CollectingDeadlockSink final : public DeadlockDumpSink {
 public:
  explicit CollectingDeadlockSink(std::size_t max_dumps = 256)
      : max_dumps_(max_dumps) {}

  void OnDeadlock(const DeadlockDump& dump) override;

  const std::vector<DeadlockDump>& dumps() const { return dumps_; }
  std::uint64_t total_seen() const { return total_seen_; }

 private:
  std::size_t max_dumps_;
  std::vector<DeadlockDump> dumps_;
  std::uint64_t total_seen_ = 0;
};

// Forwards each dump to two sinks (either may be null). The engine accepts
// a single sink; drivers that feed both a collecting sink and the live
// hub's ring install one of these.
class FanOutDeadlockSink final : public DeadlockDumpSink {
 public:
  FanOutDeadlockSink() = default;
  FanOutDeadlockSink(DeadlockDumpSink* first, DeadlockDumpSink* second)
      : first_(first), second_(second) {}

  void set_first(DeadlockDumpSink* s) { first_ = s; }
  void set_second(DeadlockDumpSink* s) { second_ = s; }

  void OnDeadlock(const DeadlockDump& dump) override {
    if (first_ != nullptr) first_->OnDeadlock(dump);
    if (second_ != nullptr) second_->OnDeadlock(dump);
  }

 private:
  DeadlockDumpSink* first_ = nullptr;
  DeadlockDumpSink* second_ = nullptr;
};

// Writes each dump as DOT to `<prefix><n>.dot` (n counts from 0), up to
// `max_files` files.
class DotFileDeadlockSink final : public DeadlockDumpSink {
 public:
  explicit DotFileDeadlockSink(std::string prefix, std::size_t max_files = 64)
      : prefix_(std::move(prefix)), max_files_(max_files) {}

  void OnDeadlock(const DeadlockDump& dump) override;

  std::size_t files_written() const { return next_; }

 private:
  std::string prefix_;
  std::size_t max_files_;
  std::size_t next_ = 0;
};

}  // namespace pardb::obs

#endif  // PARDB_OBS_FORENSICS_H_

#ifndef PARDB_OBS_JOURNAL_H_
#define PARDB_OBS_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/txnlife.h"

namespace pardb::obs {

// ---------------------------------------------------------------------------
// Deterministic decision journal (DESIGN D14).
//
// A per-engine flight recorder: a compact, allocation-light binary log of
// every schedule-relevant decision (admit, grant, block, cycle detected,
// victim chosen with its §3.1 cost, rollback span, sub-txn hold/release,
// commit) plus an FNV-1a-chained sequence of *epoch checksums* — digests of
// lock-table state, live set and ω-order stamped at deterministic step
// boundaries (and at 2PC epochs on the cross-shard coordinator). Two runs
// of the same seed must produce byte-identical journals; when they do not,
// checksum bisection narrows the break to the first divergent epoch and a
// record-level diff pins the exact first divergent decision.
//
// Journal data NEVER enters the deterministic byte-compared reports: the
// journal hangs off the engine through the same borrowed-observer pattern
// as traces, lineage and lifecycle books, and everything it publishes flows
// through the metrics registry, the LiveHub, or side files.
// ---------------------------------------------------------------------------

// FNV-1a 64-bit, the chain primitive. Folding a 64-bit word mixes each of
// its 8 bytes (little-endian) so the digest matches a byte-wise FNV-1a over
// the serialized record stream.
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t FnvMix64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

// What kind of schedule-relevant decision a record captures.
enum class JournalKind : std::uint8_t {
  kAdmit = 0,    // txn entered the live set (ω position assigned)
  kGrant,        // lock granted (a = entity; aux bit0 exclusive, bit1 upgrade)
  kBlock,        // lock request queued (a = entity)
  kCycle,        // deadlock cycle detected (txn = requester, a = entity,
                 // b = deadlock ordinal)
  kVictim,       // victim chosen (a = rollback target, b = cost; aux bit0 set
                 // when the ω-order constrained the pick away from plain
                 // min-cost, bit1 when the victim is the requester itself;
                 // aux2 = candidate count)
  kRollback,     // rollback span applied (a = target state, b = cost,
                 // aux = RollbackCause, aux2 bit0 = total rollback)
  kHold,         // sub-txn reached its hold point (a = pc)
  kRelease,      // sub-txn hold released
  kCommit,       // txn committed (a = final pc)
};

inline constexpr std::size_t kNumJournalKinds = 9;

std::string_view JournalKindName(JournalKind kind);

// One decision record: 32 bytes, fixed layout, trivially copyable — the
// unit of both the in-memory ring and the on-disk journal file.
struct JournalRecord {
  std::uint32_t txn = 0;   // local TxnId value (truncated; ids are dense)
  std::uint8_t kind = 0;   // JournalKind
  std::uint8_t aux = 0;    // kind-specific flag byte (see JournalKind)
  std::uint16_t aux2 = 0;  // kind-specific small count
  std::uint64_t step = 0;  // engine step counter at the decision
  std::uint64_t a = 0;     // kind-specific (entity / target / pc)
  std::uint64_t b = 0;     // kind-specific (cost / ordinal)

  friend bool operator==(const JournalRecord& x, const JournalRecord& y) {
    return x.txn == y.txn && x.kind == y.kind && x.aux == y.aux &&
           x.aux2 == y.aux2 && x.step == y.step && x.a == y.a && x.b == y.b;
  }
  friend bool operator!=(const JournalRecord& x, const JournalRecord& y) {
    return !(x == y);
  }
};
static_assert(sizeof(JournalRecord) == 32, "journal record layout drifted");

// Why an epoch checksum was stamped.
enum class EpochKind : std::uint8_t {
  kStep = 0,  // engine step counter crossed a period boundary
  kTwoPC,     // cross-shard coordinator global lock point (2PC epoch)
};

// One link of the checksum chain. `chain` folds the previous link, the
// state digest and the digest of all records appended since the previous
// stamp — so the first index where two runs' chains differ IS the first
// divergent epoch, and equality at any index certifies the whole prefix.
struct EpochStamp {
  std::uint64_t epoch = 0;          // ordinal in this journal (0-based)
  std::uint64_t step = 0;           // engine step at the stamp
  std::uint64_t state_digest = 0;   // lock table + live set + ω-order
  std::uint64_t record_digest = 0;  // records since the previous stamp
  std::uint64_t chain = 0;          // FNV(prev chain, kind, state, records)
  std::uint64_t record_count = 0;   // cumulative records at stamp time
  std::uint8_t kind = 0;            // EpochKind
  std::uint8_t pad[7] = {};

  friend bool operator==(const EpochStamp& x, const EpochStamp& y) {
    return x.epoch == y.epoch && x.step == y.step &&
           x.state_digest == y.state_digest &&
           x.record_digest == y.record_digest && x.chain == y.chain &&
           x.record_count == y.record_count && x.kind == y.kind;
  }
};
static_assert(sizeof(EpochStamp) == 56, "epoch stamp layout drifted");

// What a shard publishes to the LiveHub at snapshot cadence: totals, the
// chain head, a bounded tail of recent records and recent stamps — enough
// for /debug/journal without copying the whole ring.
struct JournalDigest {
  std::uint32_t shard = 0;
  std::uint64_t records = 0;  // total appended
  std::uint64_t dropped = 0;  // evicted from the bounded ring
  std::uint64_t bytes = 0;    // bytes logged (records + stamps)
  std::uint64_t epochs = 0;   // stamps taken
  std::uint64_t chain = kFnvOffsetBasis;  // latest chain value
  std::vector<JournalRecord> tail;        // newest-last
  std::vector<EpochStamp> recent_stamps;  // newest-last
};

// Per-engine decision journal. Single-threaded by design, like the engine
// that feeds it (the TxnLifeBook discipline): one journal per engine/shard,
// written only by that shard's thread. Appends are branch-light stores into
// a preallocated ring; the chain is updated only at epoch stamps.
class DecisionJournal {
 public:
  struct Options {
    // Records retained in memory. 0 = unbounded (recording mode — the CLI
    // uses this so journal files are complete); bounded rings count
    // evictions in dropped_records().
    std::size_t ring_capacity = 65536;
  };

  DecisionJournal() : DecisionJournal(Options{}) {}
  explicit DecisionJournal(Options options);

  DecisionJournal(const DecisionJournal&) = delete;
  DecisionJournal& operator=(const DecisionJournal&) = delete;

  // Engine hooks -----------------------------------------------------------

  void OnAdmit(TxnId txn, std::uint64_t step);
  void OnGrant(TxnId txn, std::uint64_t step, EntityId entity, bool exclusive,
               bool upgrade);
  void OnBlock(TxnId txn, std::uint64_t step, EntityId entity);
  void OnCycle(TxnId requester, std::uint64_t step, EntityId entity,
               std::uint64_t deadlock_ordinal);
  void OnVictim(TxnId victim, std::uint64_t step, std::uint64_t target,
                std::uint64_t cost, bool omega_constrained, bool is_requester,
                std::size_t candidates);
  void OnRollback(TxnId txn, std::uint64_t step, std::uint64_t target,
                  std::uint64_t cost, RollbackCause cause, bool total);
  void OnHold(TxnId txn, std::uint64_t step, std::uint64_t pc);
  void OnRelease(TxnId txn, std::uint64_t step);
  void OnCommit(TxnId txn, std::uint64_t step, std::uint64_t pc);

  // Epoch checksum stamp. `state_digest` is the caller's deterministic
  // digest of lock-table state, live set and ω-order (Engine::StateDigest,
  // or the fold of every shard's digest for 2PC epochs). Extends the chain
  // by one link.
  void StampEpoch(std::uint64_t step, std::uint64_t state_digest,
                  EpochKind kind = EpochKind::kStep);

  // Test hook: XOR a constant into the state digest of epoch ordinal
  // `epoch` (simulating a perturbed ω-order) so the chain — and every later
  // link — flips at exactly that epoch. ~0 disables.
  void set_perturb_epoch_for_test(std::uint64_t epoch) {
    perturb_epoch_ = epoch;
  }

  // Registers pardb_journal_* series in `registry` (records, epochs,
  // dropped, bytes). Updates happen inline at append time; the registry
  // must outlive the journal.
  void AttachMetrics(MetricsRegistry* registry, const LabelSet& labels = {});

  // Introspection ----------------------------------------------------------

  std::uint64_t total_records() const { return total_records_; }
  std::uint64_t dropped_records() const { return dropped_records_; }
  std::uint64_t bytes_logged() const { return bytes_; }
  std::uint64_t chain() const { return chain_; }
  const std::vector<EpochStamp>& stamps() const { return stamps_; }
  // Chain values only, in epoch order (what determinism tests compare).
  std::vector<std::uint64_t> ChainValues() const;
  // Retained records, oldest first. Copies out of the ring.
  std::vector<JournalRecord> RetainedRecords() const;

  JournalDigest Digest(std::uint32_t shard, std::size_t tail = 64,
                       std::size_t recent_stamps = 8) const;

  // Writes the journal (header, stamps, retained records) to `path`.
  Status WriteFile(const std::string& path, std::uint32_t shard,
                   std::uint64_t seed) const;

 private:
  void Append(const JournalRecord& r);

  Options options_;
  std::vector<JournalRecord> ring_;
  std::size_t ring_head_ = 0;  // oldest retained record when ring is full
  std::uint64_t total_records_ = 0;
  std::uint64_t dropped_records_ = 0;
  std::uint64_t bytes_ = 0;

  std::vector<EpochStamp> stamps_;
  std::uint64_t chain_ = kFnvOffsetBasis;
  std::uint64_t pending_digest_ = kFnvOffsetBasis;  // records since stamp
  std::uint64_t perturb_epoch_ = ~0ULL;

  Counter* records_counter_ = nullptr;
  Counter* epochs_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* bytes_counter_ = nullptr;
};

// On-disk journal, as loaded back for diffing -------------------------------

struct JournalData {
  std::uint32_t shard = 0;
  std::uint64_t seed = 0;
  // Global ordinal of the first retained record (> 0 when the ring dropped).
  std::uint64_t base_ordinal = 0;
  std::uint64_t total_records = 0;
  std::uint64_t dropped = 0;
  std::vector<EpochStamp> stamps;
  std::vector<JournalRecord> records;  // retained, oldest first
};

Result<JournalData> ReadJournalFile(const std::string& path);

// First-divergence diagnosis ------------------------------------------------

inline constexpr std::size_t kNoDivergence = ~static_cast<std::size_t>(0);

// Binary search for the first index where the two chains differ. Valid
// because chains are cumulative: links equal at i certify the prefix, links
// unequal at i stay unequal at every j > i. Returns kNoDivergence when one
// chain is a prefix of the other and `min(size)` indices all match — unless
// the sizes differ, in which case the shorter length is returned (the first
// epoch present on one side only).
std::size_t FirstDivergentEpoch(const std::vector<EpochStamp>& a,
                                const std::vector<EpochStamp>& b);

struct DivergenceReport {
  bool diverged = false;
  bool state_only = false;  // digests differ but retained records match
  bool truncated = false;   // divergent range partly evicted from a ring
  std::uint64_t epoch = 0;  // first divergent epoch ordinal
  std::uint64_t step_a = 0;
  std::uint64_t step_b = 0;
  std::uint64_t record_ordinal = 0;  // global ordinal of the first
                                     // divergent record (when !state_only)
  bool has_record_a = false;
  bool has_record_b = false;
  JournalRecord record_a;
  JournalRecord record_b;
  std::vector<JournalRecord> context;  // shared records just before the break
  std::uint64_t state_a = 0;
  std::uint64_t state_b = 0;
  std::uint64_t chain_a = 0;
  std::uint64_t chain_b = 0;
};

// Chain bisection to the first divergent epoch, then record-level diff
// inside it. `a` and `b` must come from runs of the same workload.
DivergenceReport DiffJournals(const JournalData& a, const JournalData& b);

// Rendering -----------------------------------------------------------------

// One record, human-readable: "step 412 T9 victim target=3 cost=4 ...".
std::string RenderJournalRecord(const JournalRecord& record);

// Human-readable first-divergence report (epoch, shard, txn, event, both
// sides' context). `label_a`/`label_b` name the two runs.
std::string RenderDivergence(const DivergenceReport& report,
                             std::uint32_t shard, const std::string& label_a,
                             const std::string& label_b);

// One-paragraph per-journal summary for `pardb journal` / diff headers.
std::string SummarizeJournal(const JournalData& data,
                             const std::string& label);

// /debug/journal?shard= payload: totals, chain head, record tail and
// recent stamps of one shard's published digest.
std::string JournalTailJson(const JournalDigest& digest);

}  // namespace pardb::obs

#endif  // PARDB_OBS_JOURNAL_H_

#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace pardb::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u0020";  // control chars never appear in metric names
    } else {
      out.push_back(c);
    }
  }
  return out;
}

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

bool SameIdentity(const MetricSnapshot& a, const MetricSnapshot& b) {
  return a.name == b.name && a.labels == b.labels && a.kind == b.kind;
}

bool IdentityLess(const MetricSnapshot& a, const MetricSnapshot& b) {
  if (a.name != b.name) return a.name < b.name;
  if (a.labels != b.labels) return a.labels < b.labels;
  return a.kind < b.kind;
}

void AddInto(MetricSnapshot& into, const MetricSnapshot& from) {
  into.counter += from.counter;
  into.gauge += from.gauge;
  if (into.kind == MetricSnapshot::Kind::kHistogram) {
    if (into.hist.bounds.empty()) {
      into.hist = from.hist;
    } else {
      into.hist.MergeFrom(from.hist);
    }
  }
}

const char* KindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

void Gauge::SetMax(std::int64_t v) {
  std::int64_t cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::DefaultBounds() {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(38);
  for (int i = 0; i <= 37; ++i) bounds.push_back(1ULL << i);
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Record(std::uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < v &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t HistogramSnapshot::Quantile(std::uint64_t p) const {
  return QuantilePerMille(p * 10);
}

std::uint64_t HistogramSnapshot::QuantilePerMille(std::uint64_t pm) const {
  if (count == 0) return 0;
  // Nearest rank, as in core::ComputeCostDistribution: the per-mille-PM
  // sample has rank ceil(count * PM / 1000), clamped to [1, count].
  const std::uint64_t rank =
      std::min<std::uint64_t>(count, std::max<std::uint64_t>(
                                         1, (count * pm + 999) / 1000));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) {
      // The overflow bucket has no upper bound; the observed max is the
      // tightest truthful answer. For regular buckets, the max also tightens
      // the bound when the rank falls in the top bucket.
      if (i >= bounds.size()) return max;
      return std::min(bounds[i], max);
    }
  }
  return max;
}

bool HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  return true;
}

std::string MetricKey(const std::string& name, const LabelSet& labels) {
  std::ostringstream os;
  os << name << "{";
  bool first = true;
  for (const auto& [k, v] : SortedLabels(labels)) {
    if (!first) os << ",";
    first = false;
    os << k << "=\"" << v << "\"";
  }
  os << "}";
  return os.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[MetricKey(name, labels)];
  if (e.counter == nullptr) {
    if (e.gauge != nullptr || e.hist != nullptr) return nullptr;
    e.name = name;
    e.labels = SortedLabels(labels);
    e.kind = MetricSnapshot::Kind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[MetricKey(name, labels)];
  if (e.gauge == nullptr) {
    if (e.counter != nullptr || e.hist != nullptr) return nullptr;
    e.name = name;
    e.labels = SortedLabels(labels);
    e.kind = MetricSnapshot::Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[MetricKey(name, labels)];
  if (e.hist == nullptr) {
    if (e.counter != nullptr || e.gauge != nullptr) return nullptr;
    e.name = name;
    e.labels = SortedLabels(labels);
    e.kind = MetricSnapshot::Kind::kHistogram;
    e.hist = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultBounds() : std::move(bounds));
  }
  return e.hist.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  out.metrics.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    (void)key;
    MetricSnapshot m;
    m.name = e.name;
    m.labels = e.labels;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        m.counter = e.counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        m.gauge = e.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        m.hist = e.hist->Snapshot();
        break;
    }
    out.metrics.push_back(std::move(m));
  }
  std::sort(out.metrics.begin(), out.metrics.end(), IdentityLess);
  return out;
}

void RegistrySnapshot::MergeFrom(const RegistrySnapshot& other) {
  for (const MetricSnapshot& m : other.metrics) {
    auto it = std::lower_bound(metrics.begin(), metrics.end(), m,
                               IdentityLess);
    if (it != metrics.end() && SameIdentity(*it, m)) {
      AddInto(*it, m);
    } else {
      metrics.insert(it, m);
    }
  }
}

RegistrySnapshot RegistrySnapshot::WithoutLabel(const std::string& key) const {
  RegistrySnapshot out;
  for (const MetricSnapshot& m : metrics) {
    MetricSnapshot stripped = m;
    stripped.labels.erase(
        std::remove_if(stripped.labels.begin(), stripped.labels.end(),
                       [&key](const auto& kv) { return kv.first == key; }),
        stripped.labels.end());
    RegistrySnapshot one;
    one.metrics.push_back(std::move(stripped));
    out.MergeFrom(one);
  }
  return out;
}

const MetricSnapshot* RegistrySnapshot::Find(const std::string& name,
                                             const LabelSet& labels) const {
  const LabelSet sorted = SortedLabels(labels);
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.labels == sorted) return &m;
  }
  return nullptr;
}

std::string RegistrySnapshot::ToJson(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << pad << "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    os << (first ? "" : ",") << "\n" << pad << " {\"name\":\""
       << JsonEscape(m.name) << "\",\"labels\":{";
    bool lf = true;
    for (const auto& [k, v] : m.labels) {
      os << (lf ? "" : ",") << "\"" << JsonEscape(k) << "\":\""
         << JsonEscape(v) << "\"";
      lf = false;
    }
    os << "},\"type\":\"" << KindName(m.kind) << "\",";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "\"value\":" << m.counter;
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "\"value\":" << m.gauge;
        break;
      case MetricSnapshot::Kind::kHistogram: {
        os << "\"count\":" << m.hist.count << ",\"sum\":" << m.hist.sum
           << ",\"max\":" << m.hist.max << ",\"p50\":" << m.hist.Quantile(50)
           << ",\"p95\":" << m.hist.Quantile(95)
           << ",\"p99\":" << m.hist.Quantile(99)
           << ",\"p999\":" << m.hist.QuantilePerMille(999)
           << ",\"buckets\":[";
        // Only non-empty buckets: the bound table is long and mostly zeros.
        bool bf = true;
        for (std::size_t i = 0; i < m.hist.counts.size(); ++i) {
          if (m.hist.counts[i] == 0) continue;
          os << (bf ? "" : ",") << "[";
          if (i < m.hist.bounds.size()) {
            os << m.hist.bounds[i];
          } else {
            os << "null";  // overflow bucket
          }
          os << "," << m.hist.counts[i] << "]";
          bf = false;
        }
        os << "]";
        break;
      }
    }
    os << "}";
    first = false;
  }
  os << "\n" << pad << "]}";
  return os.str();
}

std::string RegistrySnapshot::ToPrometheus() const {
  std::ostringstream os;
  std::string last_typed;
  auto Labels = [](const LabelSet& labels, const std::string& extra_key = "",
                   const std::string& extra_val = "") {
    std::ostringstream ls;
    bool first = true;
    for (const auto& [k, v] : labels) {
      ls << (first ? "{" : ",") << k << "=\"" << v << "\"";
      first = false;
    }
    if (!extra_key.empty()) {
      ls << (first ? "{" : ",") << extra_key << "=\"" << extra_val << "\"";
      first = false;
    }
    if (!first) ls << "}";
    return ls.str();
  };
  for (const MetricSnapshot& m : metrics) {
    if (m.name != last_typed) {
      os << "# TYPE " << m.name << " " << KindName(m.kind) << "\n";
      last_typed = m.name;
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << m.name << Labels(m.labels) << " " << m.counter << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << m.name << Labels(m.labels) << " " << m.gauge << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.hist.counts.size(); ++i) {
          cum += m.hist.counts[i];
          // Skip interior zero-delta buckets but always write the last.
          if (m.hist.counts[i] == 0 && i + 1 < m.hist.counts.size()) continue;
          const std::string le =
              i < m.hist.bounds.size() ? std::to_string(m.hist.bounds[i])
                                       : "+Inf";
          os << m.name << "_bucket" << Labels(m.labels, "le", le) << " "
             << cum << "\n";
        }
        os << m.name << "_sum" << Labels(m.labels) << " " << m.hist.sum
           << "\n";
        os << m.name << "_count" << Labels(m.labels) << " " << m.hist.count
           << "\n";
        os << m.name << Labels(m.labels, "quantile", "0.5") << " "
           << m.hist.Quantile(50) << "\n";
        os << m.name << Labels(m.labels, "quantile", "0.99") << " "
           << m.hist.Quantile(99) << "\n";
        os << m.name << Labels(m.labels, "quantile", "0.999") << " "
           << m.hist.QuantilePerMille(999) << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace pardb::obs

#ifndef PARDB_OBS_METRIC_NAMES_H_
#define PARDB_OBS_METRIC_NAMES_H_

namespace pardb::obs {

// Canonical pardb_* metric names. Every producer (probe registration,
// end-of-run export, the sharded driver, the live introspection hub) and
// every consumer (file writers, the HTTP /metrics endpoint, schemas and
// tests) must spell names through these constants so the Prometheus
// exposition cannot drift between the file export and the server.

// Engine aggregate counters (core::ExportEngineMetrics).
inline constexpr char kStepsTotal[] = "pardb_steps_total";
inline constexpr char kOpsExecutedTotal[] = "pardb_ops_executed_total";
inline constexpr char kCommitsTotal[] = "pardb_commits_total";
inline constexpr char kLockWaitsTotal[] = "pardb_lock_waits_total";
inline constexpr char kDeadlocksTotal[] = "pardb_deadlocks_total";
inline constexpr char kRollbacksTotal[] = "pardb_rollbacks_total";
inline constexpr char kPartialRollbacksTotal[] = "pardb_partial_rollbacks_total";
inline constexpr char kTotalRollbacksTotal[] = "pardb_total_rollbacks_total";
inline constexpr char kPreemptionsTotal[] = "pardb_preemptions_total";
inline constexpr char kWoundsTotal[] = "pardb_wounds_total";
inline constexpr char kDeathsTotal[] = "pardb_deaths_total";
inline constexpr char kTimeoutsTotal[] = "pardb_timeouts_total";
inline constexpr char kWastedOpsTotal[] = "pardb_wasted_ops_total";
inline constexpr char kIdealWastedOpsTotal[] = "pardb_ideal_wasted_ops_total";
inline constexpr char kCyclesFoundTotal[] = "pardb_cycles_found_total";
inline constexpr char kPeriodicScansTotal[] = "pardb_periodic_scans_total";
// Compiled-program admission (DESIGN D16): distinct programs lowered to
// µop streams, admissions served from the compile cache, and µop bytes
// resident. All three are deterministic functions of the admitted
// program sequence and are exported even at zero so dashboards can tell
// "cache never hits" from "series missing".
inline constexpr char kProgramCompileTotal[] = "pardb_program_compile_total";
inline constexpr char kProgramCacheHitsTotal[] =
    "pardb_program_cache_hits_total";
inline constexpr char kCompiledBytesTotal[] = "pardb_compiled_bytes_total";

// Engine aggregate gauges.
inline constexpr char kMaxEntityCopies[] = "pardb_max_entity_copies";
inline constexpr char kMaxVarCopies[] = "pardb_max_var_copies";
inline constexpr char kLiveTxns[] = "pardb_live_txns";
inline constexpr char kWaitingTxns[] = "pardb_waiting_txns";

// Engine histograms.
inline constexpr char kRollbackCostOps[] = "pardb_rollback_cost_ops";

// Probe-registered live metrics (obs::MakeEngineProbe / MakeLockProbe).
inline constexpr char kDetectionNs[] = "pardb_detection_ns";
inline constexpr char kRollbackApplyNs[] = "pardb_rollback_apply_ns";
inline constexpr char kLockOpNs[] = "pardb_lock_op_ns";
inline constexpr char kLockWaitSteps[] = "pardb_lock_wait_steps";
inline constexpr char kVictimsRequesterTotal[] = "pardb_victims_requester_total";
inline constexpr char kVictimsPreemptedTotal[] = "pardb_victims_preempted_total";
inline constexpr char kLockRequestsTotal[] = "pardb_lock_requests_total";
inline constexpr char kLockGrantsImmediateTotal[] =
    "pardb_lock_grants_immediate_total";
inline constexpr char kLockQueuedTotal[] = "pardb_lock_queued_total";
inline constexpr char kLockGrantsOnReleaseTotal[] =
    "pardb_lock_grants_on_release_total";
inline constexpr char kLockCancelsTotal[] = "pardb_lock_cancels_total";
inline constexpr char kLockMaxQueueDepth[] = "pardb_lock_max_queue_depth";

// Sharded driver / live hub.
inline constexpr char kShardStepNs[] = "pardb_shard_step_ns";
// Per-shard EWMA of the sampled step time (gauge, nanoseconds).
inline constexpr char kShardStepEwmaNs[] = "pardb_shard_step_ewma_ns";
// max/mean of the per-shard step-time EWMAs, scaled by 1000 (gauge; 1000 =
// perfectly balanced). The ROADMAP work-stealing item's input signal.
inline constexpr char kShardLoadSkew[] = "pardb_shard_load_skew";

// Work-stealing scheduler (par::RunSharded on par::StealingPool).
// Quanta executed on a worker other than the one that queued them.
inline constexpr char kStealsTotal[] = "pardb_steals_total";
// Per-worker busy/wall fraction scaled by 1000 (gauge; labeled by worker).
inline constexpr char kWorkerUtilization[] = "pardb_worker_utilization";
// Engine steps per scheduler quantum (histogram; shows adaptive shrink).
inline constexpr char kQuantumSteps[] = "pardb_quantum_steps";

// Admission pipeline (par::RunSharded streaming phase 1).
// Wall seconds per driver phase, scaled by 1000 (gauge; labeled
// {phase="generate"|"execute"|"aggregate"}; generate and execute overlap
// in pipelined mode, so their sum may exceed the run's wall time).
inline constexpr char kPhaseSeconds[] = "pardb_phase_seconds";
// Programs materialized but not yet admitted, per shard (gauge).
inline constexpr char kAdmissionQueueDepth[] = "pardb_admission_queue_depth";
// Producer pushes that found a full queue and had to wait (backpressure).
inline constexpr char kAdmissionBlockedTotal[] =
    "pardb_admission_blocked_total";
// Deterministic lower bound on the fraction of generation work overlapped
// with execution, scaled by 1000 (gauge; 0 in batch mode — see DESIGN D11).
inline constexpr char kOverlapFraction[] = "pardb_overlap_fraction";

// Preemption lineage (obs::LineageTracker).
// High-water mark of any live transaction's preemption chain depth.
inline constexpr char kPreemptionChainLen[] = "pardb_preemption_chain_len";
// Times the Theorem 2 ω-ordered policy overrode the unconstrained min-cost
// victim choice (the cure for Figure 2's infinite mutual preemption).
inline constexpr char kOmegaInterventionsTotal[] =
    "pardb_omega_interventions_total";
// Preemption events recorded into lineage chains.
inline constexpr char kLineageEventsTotal[] = "pardb_lineage_events_total";

// Cross-shard coordination (par::XShardMode::kLocks; see DESIGN D12).
inline constexpr char kXShardGlobalTxnsTotal[] = "pardb_xshard_global_txns_total";
inline constexpr char kXShardSubTxnsTotal[] = "pardb_xshard_sub_txns_total";
inline constexpr char kXShardGlobalCommitsTotal[] =
    "pardb_xshard_global_commits_total";
// Union-of-forests merges, cycles found only in the union, and globals
// removed by distributed partial rollback.
inline constexpr char kXShardMergesTotal[] = "pardb_xshard_merges_total";
inline constexpr char kXShardGlobalCyclesTotal[] =
    "pardb_xshard_global_cycles_total";
inline constexpr char kXShardDistributedRollbacksTotal[] =
    "pardb_xshard_distributed_rollbacks_total";
inline constexpr char kXShardOmegaExclusionsTotal[] =
    "pardb_xshard_omega_exclusions_total";
// 2PC accounting: per-shard prepare/resolve exchanges, total simulated
// coordinator<->shard messages, and wall-clock phase timers (histograms,
// nanoseconds; never part of the deterministic report).
inline constexpr char kXShardPreparesTotal[] = "pardb_xshard_prepares_total";
inline constexpr char kXShardResolvesTotal[] = "pardb_xshard_resolves_total";
inline constexpr char kXShardMessagesTotal[] = "pardb_xshard_messages_total";
inline constexpr char kXShardPrepareNs[] = "pardb_xshard_prepare_ns";
inline constexpr char kXShardResolveNs[] = "pardb_xshard_resolve_ns";
// Driver epochs run (gauge).
inline constexpr char kXShardEpochs[] = "pardb_xshard_epochs";

// Trace pipeline.
inline constexpr char kTraceDroppedTotal[] = "pardb_trace_dropped_total";

// Transaction lifecycle timelines (obs::TxnLifeBook; see DESIGN D13).
// Steps executed and then rolled back, attributed to the decision that
// caused the loss (labeled {cause="deadlock_victim"|...}).
inline constexpr char kWastedStepsTotal[] = "pardb_wasted_steps_total";
// Rollback events per cause (same label set as the wasted-steps counter).
inline constexpr char kRollbackCauseTotal[] = "pardb_rollback_cause_total";
// wasted / executed steps, parts-per-million (gauge; the paper's "loss of
// progress" as a live ratio).
inline constexpr char kReworkRatioPpm[] = "pardb_rework_ratio_ppm";
// End-to-end latency components, recorded once per commit. Step-valued
// histograms except queue wait, which is wall nanoseconds sampled on the
// admission queue (wall data never enters the deterministic report).
inline constexpr char kTxnE2eSteps[] = "pardb_txn_e2e_steps";
inline constexpr char kTxnLockWaitSteps[] = "pardb_txn_lock_wait_steps";
inline constexpr char kTxnExecSteps[] = "pardb_txn_exec_steps";
inline constexpr char kTxnRedoSteps[] = "pardb_txn_redo_steps";
inline constexpr char kTxnQueueWaitNs[] = "pardb_txn_queue_wait_ns";
// Timeline events evicted from a book's bounded ring (mirrors
// pardb_trace_dropped_total; asserted 0 in the CI observability smoke).
inline constexpr char kTxnlifeDroppedTotal[] = "pardb_txnlife_dropped_total";

// Decision journal (obs::DecisionJournal; see DESIGN D14).
// Decision records appended across all shards.
inline constexpr char kJournalRecordsTotal[] = "pardb_journal_records_total";
// Epoch checksum stamps taken (chain links).
inline constexpr char kJournalEpochsTotal[] = "pardb_journal_epochs_total";
// Records evicted from a journal's bounded ring (mirrors
// pardb_trace_dropped_total; asserted 0 in the CI observability smoke).
inline constexpr char kJournalDroppedTotal[] = "pardb_journal_dropped_total";
// Bytes logged (records + epoch stamps).
inline constexpr char kJournalBytesTotal[] = "pardb_journal_bytes_total";

// Label keys.
inline constexpr char kShardLabel[] = "shard";
inline constexpr char kWorkerLabel[] = "worker";
inline constexpr char kPhaseLabel[] = "phase";
inline constexpr char kCauseLabel[] = "cause";

}  // namespace pardb::obs

#endif  // PARDB_OBS_METRIC_NAMES_H_

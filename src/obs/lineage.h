#ifndef PARDB_OBS_LINEAGE_H_
#define PARDB_OBS_LINEAGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace pardb::obs {

// One preemption: `aggressor`'s conflict rolled `victim` back to lock state
// `target`, destroying `cost` operations of progress.
struct PreemptionEvent {
  std::uint64_t step = 0;
  TxnId victim;
  TxnId aggressor;
  LockIndex target = 0;
  std::uint64_t cost = 0;
  // victim's chain depth after this event (see below).
  std::uint64_t chain_len = 0;
};

// Rollback-lineage tracker: chains preemption events into per-transaction
// lineage records, making the paper's Figure 2 phenomenon — potentially
// infinite mutual preemption under the unconstrained min-cost policy —
// directly observable while a run is in flight.
//
// Chain semantics: when A preempts B, B's new chain depth is
// max(B's depth, A's depth) + 1 (the aggressor hands its own preemption
// history on, and the victim keeps its own). A requester rolling *itself*
// back counts too, with the holder it was waiting on as the aggressor —
// the Figure 2 alternation is exactly such self-rollbacks, T2 and T3
// knocking each other out in turn, so the chain depth grows without
// bound — the signal pardb_preemption_chain_len surfaces. Under the Theorem 2 ω-ordered policy the chain is bounded by
// the number of transactions ordered after the first aggressor, and every
// time the ordered policy overrides the pure min-cost choice the tracker
// counts an ω-intervention (pardb_omega_interventions_total).
//
// Single-threaded by design, like the engine that feeds it: one tracker per
// engine/shard, written only by that shard's thread. Live visibility
// happens through the attached metrics (atomic counters/gauges, safe to
// read from the serving thread) and through WaitsForSnapshot, which the
// shard thread itself materializes.
class LineageTracker {
 public:
  // Keep at most this many events per victim (the chain depth keeps
  // counting past the cap; only the event log is bounded).
  explicit LineageTracker(std::size_t max_events_per_txn = 64)
      : max_events_per_txn_(max_events_per_txn) {}

  // Registers the lineage metric set in `registry` (gauge
  // pardb_preemption_chain_len as a high-water mark, counters
  // pardb_omega_interventions_total and pardb_lineage_events_total). The
  // registry must outlive the tracker. Optional: a detached tracker still
  // records lineage for snapshots/tests.
  void AttachMetrics(MetricsRegistry* registry, const LabelSet& labels = {});

  // Engine hooks -----------------------------------------------------------

  void OnPreemption(std::uint64_t step, TxnId victim, TxnId aggressor,
                    LockIndex target, std::uint64_t cost);
  // The ω-ordered victim policy chose differently than unconstrained
  // min-cost would have (Theorem 2's cure actively intervening).
  void OnOmegaIntervention();
  // Commit retires the transaction's lineage record (its chain ends).
  void OnCommit(TxnId txn);

  // Introspection ----------------------------------------------------------

  std::uint64_t ChainLenOf(TxnId txn) const;
  const std::vector<PreemptionEvent>* EventsOf(TxnId txn) const;
  // Largest chain depth ever observed (survives commits/retirements).
  std::uint64_t max_chain_len() const { return max_chain_len_; }
  std::uint64_t omega_interventions() const { return omega_interventions_; }
  std::uint64_t total_events() const { return total_events_; }

 private:
  struct Record {
    std::uint64_t chain_len = 0;
    std::vector<PreemptionEvent> events;
  };

  std::size_t max_events_per_txn_;
  std::unordered_map<TxnId, Record> records_;
  std::uint64_t max_chain_len_ = 0;
  std::uint64_t omega_interventions_ = 0;
  std::uint64_t total_events_ = 0;

  Gauge* chain_len_gauge_ = nullptr;       // may be null
  Counter* omega_counter_ = nullptr;       // may be null
  Counter* events_counter_ = nullptr;      // may be null
};

}  // namespace pardb::obs

#endif  // PARDB_OBS_LINEAGE_H_

#include "obs/forensics.h"

#include <fstream>
#include <sstream>

namespace pardb::obs {

std::string DeadlockDumpToDot(const DeadlockDump& dump) {
  std::ostringstream os;
  os << "digraph deadlock_step" << dump.step << " {\n";
  os << "  rankdir=LR;\n";
  os << "  labelloc=t;\n";
  os << "  label=\"deadlock @ step " << dump.step << "  requester T"
     << dump.requester.value() << " on E" << dump.requested_entity.value()
     << "\\npolicy=" << dump.policy << "  cycles=" << dump.num_cycles
     << "\";\n";
  for (const DeadlockParticipant& p : dump.participants) {
    os << "  T" << p.txn.value() << " [shape="
       << (p.is_requester ? "box" : "ellipse");
    if (p.is_victim) os << ",style=filled,fillcolor=salmon";
    os << ",label=\"T" << p.txn.value() << "\\n\xCF\x89=" << p.entry
       << "  cost=" << p.cost;
    if (p.ideal_cost != p.cost) os << " (ideal " << p.ideal_cost << ")";
    os << "\\ntarget=L" << p.target;
    if (p.is_requester) os << "\\nrequester";
    if (p.is_victim) os << "\\nVICTIM";
    os << "\"];\n";
  }
  for (const WaitsForArc& a : dump.arcs) {
    os << "  T" << a.waiter.value() << " -> T" << a.holder.value()
       << " [label=\"E" << a.entity.value() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

void CollectingDeadlockSink::OnDeadlock(const DeadlockDump& dump) {
  ++total_seen_;
  if (dumps_.size() < max_dumps_) dumps_.push_back(dump);
}

void DotFileDeadlockSink::OnDeadlock(const DeadlockDump& dump) {
  if (next_ >= max_files_) return;
  std::ofstream out(prefix_ + std::to_string(next_) + ".dot");
  if (!out) return;
  out << DeadlockDumpToDot(dump);
  ++next_;
}

}  // namespace pardb::obs

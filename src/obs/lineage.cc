#include "obs/lineage.h"

#include <algorithm>

#include "obs/metric_names.h"

namespace pardb::obs {

void LineageTracker::AttachMetrics(MetricsRegistry* registry,
                                   const LabelSet& labels) {
  chain_len_gauge_ = registry->GetGauge(kPreemptionChainLen, labels);
  omega_counter_ = registry->GetCounter(kOmegaInterventionsTotal, labels);
  events_counter_ = registry->GetCounter(kLineageEventsTotal, labels);
}

void LineageTracker::OnPreemption(std::uint64_t step, TxnId victim,
                                  TxnId aggressor, LockIndex target,
                                  std::uint64_t cost) {
  // The aggressor hands its chain on: a victim preempted by a transaction
  // that was itself preempted sits deeper in the lineage.
  const std::uint64_t aggressor_chain = ChainLenOf(aggressor);
  Record& rec = records_[victim];
  rec.chain_len = std::max(rec.chain_len, aggressor_chain) + 1;

  PreemptionEvent ev;
  ev.step = step;
  ev.victim = victim;
  ev.aggressor = aggressor;
  ev.target = target;
  ev.cost = cost;
  ev.chain_len = rec.chain_len;
  if (rec.events.size() < max_events_per_txn_) {
    rec.events.push_back(ev);
  }

  ++total_events_;
  max_chain_len_ = std::max(max_chain_len_, rec.chain_len);
  if (chain_len_gauge_ != nullptr) {
    chain_len_gauge_->SetMax(static_cast<std::int64_t>(rec.chain_len));
  }
  if (events_counter_ != nullptr) events_counter_->Inc();
}

void LineageTracker::OnOmegaIntervention() {
  ++omega_interventions_;
  if (omega_counter_ != nullptr) omega_counter_->Inc();
}

void LineageTracker::OnCommit(TxnId txn) { records_.erase(txn); }

std::uint64_t LineageTracker::ChainLenOf(TxnId txn) const {
  auto it = records_.find(txn);
  return it == records_.end() ? 0 : it->second.chain_len;
}

const std::vector<PreemptionEvent>* LineageTracker::EventsOf(TxnId txn) const {
  auto it = records_.find(txn);
  return it == records_.end() ? nullptr : &it->second.events;
}

}  // namespace pardb::obs

#include "obs/snapshot.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace pardb::obs {

namespace {

bool ArcLess(const WaitsForArc& a, const WaitsForArc& b) {
  if (a.waiter != b.waiter) return a.waiter < b.waiter;
  if (a.holder != b.holder) return a.holder < b.holder;
  return a.entity < b.entity;
}

void AppendLockRef(std::ostringstream& os, const LockGrantRef& l) {
  os << "{\"entity\":" << l.entity.value() << ",\"mode\":\"" << l.mode
     << "\"}";
}

}  // namespace

std::string WaitsForGraphToDot(const std::string& graph_name,
                               std::vector<WaitsForDotNode> nodes,
                               std::vector<WaitsForArc> arcs) {
  std::sort(nodes.begin(), nodes.end(),
            [](const WaitsForDotNode& a, const WaitsForDotNode& b) {
              return a.txn < b.txn;
            });
  std::sort(arcs.begin(), arcs.end(), ArcLess);
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n";
  for (const WaitsForDotNode& n : nodes) {
    os << "  T" << n.txn.value() << " [label=\"T" << n.txn.value()
       << "\\n\xCF\x89=" << n.entry << "\"];\n";
  }
  for (const WaitsForArc& a : arcs) {
    os << "  T" << a.waiter.value() << " -> T" << a.holder.value()
       << " [label=\"E" << a.entity.value() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string DeadlockDumpToCycleDot(const DeadlockDump& dump) {
  std::vector<WaitsForDotNode> nodes;
  for (const DeadlockParticipant& p : dump.participants) {
    nodes.push_back(WaitsForDotNode{p.txn, p.entry});
  }
  return WaitsForGraphToDot("waits_for_cycle", std::move(nodes), dump.arcs);
}

std::string SnapshotCycleDot(const WaitsForSnapshot& snapshot) {
  std::vector<WaitsForDotNode> nodes;
  for (const TxnSnapshot& t : snapshot.txns) {
    nodes.push_back(WaitsForDotNode{t.txn, t.entry});
  }
  return WaitsForGraphToDot("waits_for_cycle", std::move(nodes),
                            snapshot.arcs);
}

WaitsForSnapshot WaitsForSnapshot::Restricted(
    const std::vector<TxnId>& members) const {
  const std::set<TxnId> keep(members.begin(), members.end());
  WaitsForSnapshot out;
  out.shard = shard;
  out.step = step;
  out.commits = commits;
  out.acyclic = acyclic;
  out.forest = forest;
  for (const TxnSnapshot& t : txns) {
    if (keep.count(t.txn)) out.txns.push_back(t);
  }
  for (const WaitsForArc& a : arcs) {
    if (keep.count(a.waiter) && keep.count(a.holder)) out.arcs.push_back(a);
  }
  return out;
}

std::string WaitsForSnapshot::ToDot() const {
  std::ostringstream os;
  os << "digraph waits_for_shard" << shard << " {\n";
  os << "  rankdir=LR;\n";
  os << "  labelloc=t;\n";
  os << "  label=\"waits-for @ step " << step << "  shard " << shard
     << "  commits=" << commits << "\\nacyclic=" << (acyclic ? "yes" : "no")
     << " forest=" << (forest ? "yes" : "no") << "\";\n";
  for (const TxnSnapshot& t : txns) {
    os << "  T" << t.txn.value() << " [shape="
       << (t.status == "waiting" ? "box" : "ellipse") << ",label=\"T"
       << t.txn.value() << "\\n\xCF\x89=" << t.entry << "  s=" << t.state_index
       << " L=" << t.lock_count;
    if (t.preemptions > 0) {
      os << "\\npreempted=" << t.preemptions << " chain=" << t.chain_len;
    }
    if (t.has_request) {
      os << "\\nwants E" << t.requested.entity.value() << "/"
         << t.requested.mode;
    }
    os << "\"];\n";
  }
  std::vector<WaitsForArc> sorted = arcs;
  std::sort(sorted.begin(), sorted.end(), ArcLess);
  for (const WaitsForArc& a : sorted) {
    os << "  T" << a.waiter.value() << " -> T" << a.holder.value()
       << " [label=\"E" << a.entity.value() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string WaitsForSnapshot::ToJson(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << pad << "{\"shard\":" << shard << ",\"step\":" << step
     << ",\"commits\":" << commits << ",\"acyclic\":"
     << (acyclic ? "true" : "false") << ",\"forest\":"
     << (forest ? "true" : "false") << ",\n"
     << pad << " \"txns\":[";
  bool first = true;
  for (const TxnSnapshot& t : txns) {
    os << (first ? "" : ",") << "\n" << pad << "  {\"txn\":" << t.txn.value()
       << ",\"omega\":" << t.entry << ",\"status\":\"" << t.status
       << "\",\"state_index\":" << t.state_index
       << ",\"lock_count\":" << t.lock_count
       << ",\"preemptions\":" << t.preemptions
       << ",\"chain_len\":" << t.chain_len << ",\"held\":[";
    bool hf = true;
    for (const LockGrantRef& l : t.held) {
      if (!hf) os << ",";
      AppendLockRef(os, l);
      hf = false;
    }
    os << "]";
    if (t.has_request) {
      os << ",\"requested\":";
      AppendLockRef(os, t.requested);
    }
    os << "}";
    first = false;
  }
  os << "\n" << pad << " ],\n" << pad << " \"arcs\":[";
  std::vector<WaitsForArc> sorted = arcs;
  std::sort(sorted.begin(), sorted.end(), ArcLess);
  first = true;
  for (const WaitsForArc& a : sorted) {
    os << (first ? "" : ",") << "\n" << pad << "  {\"waiter\":"
       << a.waiter.value() << ",\"holder\":" << a.holder.value()
       << ",\"entity\":" << a.entity.value() << "}";
    first = false;
  }
  os << "\n" << pad << " ]}";
  return os.str();
}

std::string WaitsForSnapshotsToJson(const std::vector<WaitsForSnapshot>& snaps,
                                    const std::string& phase) {
  std::ostringstream os;
  os << "{\"phase\":\"" << phase << "\",\"num_shards\":" << snaps.size()
     << ",\n \"shards\":[";
  bool first = true;
  for (const WaitsForSnapshot& s : snaps) {
    os << (first ? "" : ",") << "\n" << s.ToJson(2);
    first = false;
  }
  os << "\n ]}\n";
  return os.str();
}

std::string WaitsForSnapshotsToDot(
    const std::vector<WaitsForSnapshot>& snaps) {
  if (snaps.size() == 1) return snaps.front().ToDot();
  std::ostringstream os;
  os << "digraph waits_for {\n";
  os << "  rankdir=LR;\n";
  for (const WaitsForSnapshot& s : snaps) {
    os << "  subgraph cluster_shard" << s.shard << " {\n";
    os << "    label=\"shard " << s.shard << " @ step " << s.step
       << "  acyclic=" << (s.acyclic ? "yes" : "no")
       << " forest=" << (s.forest ? "yes" : "no") << "\";\n";
    for (const TxnSnapshot& t : s.txns) {
      os << "    T" << t.txn.value() << " [label=\"T" << t.txn.value()
         << "\\n\xCF\x89=" << t.entry << "\"];\n";
    }
    std::vector<WaitsForArc> sorted = s.arcs;
    std::sort(sorted.begin(), sorted.end(), ArcLess);
    for (const WaitsForArc& a : sorted) {
      os << "    T" << a.waiter.value() << " -> T" << a.holder.value()
         << " [label=\"E" << a.entity.value() << "\"];\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

std::string DeadlockDumpsToJson(const std::vector<ShardDeadlockDump>& dumps) {
  std::ostringstream os;
  os << "{\"count\":" << dumps.size() << ",\"deadlocks\":[";
  bool first = true;
  for (const ShardDeadlockDump& sd : dumps) {
    const DeadlockDump& d = sd.dump;
    os << (first ? "" : ",") << "\n {\"shard\":" << sd.shard
       << ",\"step\":" << d.step << ",\"requester\":" << d.requester.value()
       << ",\"requested_entity\":" << d.requested_entity.value()
       << ",\"num_cycles\":" << d.num_cycles << ",\"policy\":\"" << d.policy
       << "\",\n  \"participants\":[";
    bool pf = true;
    for (const DeadlockParticipant& p : d.participants) {
      os << (pf ? "" : ",") << "\n   {\"txn\":" << p.txn.value()
         << ",\"omega\":" << p.entry << ",\"cost\":" << p.cost
         << ",\"ideal_cost\":" << p.ideal_cost << ",\"target\":" << p.target
         << ",\"is_requester\":" << (p.is_requester ? "true" : "false")
         << ",\"is_victim\":" << (p.is_victim ? "true" : "false") << "}";
      pf = false;
    }
    os << "],\n  \"arcs\":[";
    bool af = true;
    for (const WaitsForArc& a : d.arcs) {
      os << (af ? "" : ",") << "{\"waiter\":" << a.waiter.value()
         << ",\"holder\":" << a.holder.value() << ",\"entity\":"
         << a.entity.value() << "}";
      af = false;
    }
    os << "],\"victims\":[";
    bool vf = true;
    for (TxnId v : d.victims) {
      os << (vf ? "" : ",") << v.value();
      vf = false;
    }
    os << "]}";
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace pardb::obs

#include "obs/probe.h"

namespace pardb::obs {

LockProbe MakeLockProbe(MetricsRegistry* registry, const LabelSet& labels) {
  LockProbe p;
  p.requests = registry->GetCounter("pardb_lock_requests_total", labels);
  p.grants_immediate =
      registry->GetCounter("pardb_lock_grants_immediate_total", labels);
  p.queued = registry->GetCounter("pardb_lock_queued_total", labels);
  p.grants_on_release =
      registry->GetCounter("pardb_lock_grants_on_release_total", labels);
  p.cancels = registry->GetCounter("pardb_lock_cancels_total", labels);
  p.max_queue_depth =
      registry->GetGauge("pardb_lock_max_queue_depth", labels);
  return p;
}

EngineProbe MakeEngineProbe(MetricsRegistry* registry, const LabelSet& labels,
                            const Clock* clock) {
  EngineProbe p;
  p.clock = clock;
  p.detection_ns = registry->GetHistogram("pardb_detection_ns", labels);
  p.rollback_apply_ns =
      registry->GetHistogram("pardb_rollback_apply_ns", labels);
  p.lock_op_ns = registry->GetHistogram("pardb_lock_op_ns", labels);
  p.lock_wait_steps = registry->GetHistogram("pardb_lock_wait_steps", labels);
  p.victims_requester =
      registry->GetCounter("pardb_victims_requester_total", labels);
  p.victims_preempted =
      registry->GetCounter("pardb_victims_preempted_total", labels);
  p.lock = MakeLockProbe(registry, labels);
  return p;
}

}  // namespace pardb::obs

#include "obs/probe.h"

#include "obs/metric_names.h"

namespace pardb::obs {

LockProbe MakeLockProbe(MetricsRegistry* registry, const LabelSet& labels) {
  LockProbe p;
  p.requests = registry->GetCounter(kLockRequestsTotal, labels);
  p.grants_immediate =
      registry->GetCounter(kLockGrantsImmediateTotal, labels);
  p.queued = registry->GetCounter(kLockQueuedTotal, labels);
  p.grants_on_release =
      registry->GetCounter(kLockGrantsOnReleaseTotal, labels);
  p.cancels = registry->GetCounter(kLockCancelsTotal, labels);
  p.max_queue_depth = registry->GetGauge(kLockMaxQueueDepth, labels);
  return p;
}

EngineProbe MakeEngineProbe(MetricsRegistry* registry, const LabelSet& labels,
                            const Clock* clock) {
  EngineProbe p;
  p.clock = clock;
  p.detection_ns = registry->GetHistogram(kDetectionNs, labels);
  p.rollback_apply_ns = registry->GetHistogram(kRollbackApplyNs, labels);
  p.lock_op_ns = registry->GetHistogram(kLockOpNs, labels);
  p.lock_wait_steps = registry->GetHistogram(kLockWaitSteps, labels);
  p.victims_requester = registry->GetCounter(kVictimsRequesterTotal, labels);
  p.victims_preempted = registry->GetCounter(kVictimsPreemptedTotal, labels);
  p.lock = MakeLockProbe(registry, labels);
  return p;
}

}  // namespace pardb::obs

#include "obs/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/metric_names.h"

namespace pardb::obs {

namespace {

constexpr char kJournalMagic[8] = {'P', 'D', 'B', 'J', 'R', 'N', 'L', '1'};
constexpr std::uint32_t kJournalVersion = 1;

// The XOR the ω-perturbation test hook folds into a stamp's state digest.
constexpr std::uint64_t kPerturbMask = 0x9e3779b97f4a7c15ULL;

std::uint64_t DigestRecord(std::uint64_t h, const JournalRecord& r) {
  h = FnvMix64(h, (static_cast<std::uint64_t>(r.txn) << 32) |
                      (static_cast<std::uint64_t>(r.kind) << 24) |
                      (static_cast<std::uint64_t>(r.aux) << 16) | r.aux2);
  h = FnvMix64(h, r.step);
  h = FnvMix64(h, r.a);
  h = FnvMix64(h, r.b);
  return h;
}

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t shard;
  std::uint64_t seed;
  std::uint64_t base_ordinal;
  std::uint64_t total_records;
  std::uint64_t dropped;
  std::uint64_t stamp_count;
  std::uint64_t record_count;
};
static_assert(sizeof(FileHeader) == 64, "journal file header layout drifted");

}  // namespace

std::string_view JournalKindName(JournalKind kind) {
  switch (kind) {
    case JournalKind::kAdmit:
      return "admit";
    case JournalKind::kGrant:
      return "grant";
    case JournalKind::kBlock:
      return "block";
    case JournalKind::kCycle:
      return "cycle";
    case JournalKind::kVictim:
      return "victim";
    case JournalKind::kRollback:
      return "rollback";
    case JournalKind::kHold:
      return "hold";
    case JournalKind::kRelease:
      return "release";
    case JournalKind::kCommit:
      return "commit";
  }
  return "unknown";
}

DecisionJournal::DecisionJournal(Options options) : options_(options) {
  if (options_.ring_capacity != 0) {
    ring_.reserve(options_.ring_capacity);
  }
}

void DecisionJournal::Append(const JournalRecord& r) {
  if (options_.ring_capacity == 0 || ring_.size() < options_.ring_capacity) {
    ring_.push_back(r);
  } else {
    ring_[ring_head_] = r;
    ring_head_ = (ring_head_ + 1) % options_.ring_capacity;
    ++dropped_records_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
  }
  ++total_records_;
  bytes_ += sizeof(JournalRecord);
  pending_digest_ = DigestRecord(pending_digest_, r);
  if (records_counter_ != nullptr) records_counter_->Inc();
  if (bytes_counter_ != nullptr) bytes_counter_->Inc(sizeof(JournalRecord));
}

void DecisionJournal::OnAdmit(TxnId txn, std::uint64_t step) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kAdmit);
  r.step = step;
  Append(r);
}

void DecisionJournal::OnGrant(TxnId txn, std::uint64_t step, EntityId entity,
                              bool exclusive, bool upgrade) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kGrant);
  r.aux = static_cast<std::uint8_t>((exclusive ? 1 : 0) | (upgrade ? 2 : 0));
  r.step = step;
  r.a = entity.value();
  Append(r);
}

void DecisionJournal::OnBlock(TxnId txn, std::uint64_t step, EntityId entity) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kBlock);
  r.step = step;
  r.a = entity.value();
  Append(r);
}

void DecisionJournal::OnCycle(TxnId requester, std::uint64_t step,
                              EntityId entity,
                              std::uint64_t deadlock_ordinal) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(requester.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kCycle);
  r.step = step;
  r.a = entity.valid() ? entity.value() : 0;
  r.b = deadlock_ordinal;
  Append(r);
}

void DecisionJournal::OnVictim(TxnId victim, std::uint64_t step,
                               std::uint64_t target, std::uint64_t cost,
                               bool omega_constrained, bool is_requester,
                               std::size_t candidates) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(victim.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kVictim);
  r.aux = static_cast<std::uint8_t>((omega_constrained ? 1 : 0) |
                                    (is_requester ? 2 : 0));
  r.aux2 = static_cast<std::uint16_t>(
      std::min<std::size_t>(candidates, 0xffff));
  r.step = step;
  r.a = target;
  r.b = cost;
  Append(r);
}

void DecisionJournal::OnRollback(TxnId txn, std::uint64_t step,
                                 std::uint64_t target, std::uint64_t cost,
                                 RollbackCause cause, bool total) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kRollback);
  r.aux = static_cast<std::uint8_t>(cause);
  r.aux2 = total ? 1 : 0;
  r.step = step;
  r.a = target;
  r.b = cost;
  Append(r);
}

void DecisionJournal::OnHold(TxnId txn, std::uint64_t step, std::uint64_t pc) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kHold);
  r.step = step;
  r.a = pc;
  Append(r);
}

void DecisionJournal::OnRelease(TxnId txn, std::uint64_t step) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kRelease);
  r.step = step;
  Append(r);
}

void DecisionJournal::OnCommit(TxnId txn, std::uint64_t step,
                               std::uint64_t pc) {
  JournalRecord r;
  r.txn = static_cast<std::uint32_t>(txn.value());
  r.kind = static_cast<std::uint8_t>(JournalKind::kCommit);
  r.step = step;
  r.a = pc;
  Append(r);
}

void DecisionJournal::StampEpoch(std::uint64_t step,
                                 std::uint64_t state_digest, EpochKind kind) {
  EpochStamp s;
  s.epoch = stamps_.size();
  s.step = step;
  s.state_digest =
      s.epoch == perturb_epoch_ ? (state_digest ^ kPerturbMask) : state_digest;
  s.record_digest = pending_digest_;
  s.record_count = total_records_;
  s.kind = static_cast<std::uint8_t>(kind);
  std::uint64_t c = FnvMix64(chain_, static_cast<std::uint64_t>(s.kind));
  c = FnvMix64(c, s.state_digest);
  c = FnvMix64(c, s.record_digest);
  s.chain = c;
  chain_ = c;
  pending_digest_ = kFnvOffsetBasis;
  stamps_.push_back(s);
  bytes_ += sizeof(EpochStamp);
  if (epochs_counter_ != nullptr) epochs_counter_->Inc();
  if (bytes_counter_ != nullptr) bytes_counter_->Inc(sizeof(EpochStamp));
}

void DecisionJournal::AttachMetrics(MetricsRegistry* registry,
                                    const LabelSet& labels) {
  records_counter_ = registry->GetCounter(kJournalRecordsTotal, labels);
  epochs_counter_ = registry->GetCounter(kJournalEpochsTotal, labels);
  dropped_counter_ = registry->GetCounter(kJournalDroppedTotal, labels);
  bytes_counter_ = registry->GetCounter(kJournalBytesTotal, labels);
}

std::vector<std::uint64_t> DecisionJournal::ChainValues() const {
  std::vector<std::uint64_t> out;
  out.reserve(stamps_.size());
  for (const EpochStamp& s : stamps_) out.push_back(s.chain);
  return out;
}

std::vector<JournalRecord> DecisionJournal::RetainedRecords() const {
  std::vector<JournalRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

JournalDigest DecisionJournal::Digest(std::uint32_t shard, std::size_t tail,
                                      std::size_t recent_stamps) const {
  JournalDigest d;
  d.shard = shard;
  d.records = total_records_;
  d.dropped = dropped_records_;
  d.bytes = bytes_;
  d.epochs = stamps_.size();
  d.chain = chain_;
  const std::size_t n = std::min(tail, ring_.size());
  d.tail.reserve(n);
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    d.tail.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  const std::size_t m = std::min(recent_stamps, stamps_.size());
  d.recent_stamps.assign(stamps_.end() - static_cast<std::ptrdiff_t>(m),
                         stamps_.end());
  return d;
}

Status DecisionJournal::WriteFile(const std::string& path, std::uint32_t shard,
                                  std::uint64_t seed) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open journal file for write: " + path);
  }
  FileHeader h;
  std::memcpy(h.magic, kJournalMagic, sizeof(h.magic));
  h.version = kJournalVersion;
  h.shard = shard;
  h.seed = seed;
  h.base_ordinal = total_records_ - ring_.size();
  h.total_records = total_records_;
  h.dropped = dropped_records_;
  h.stamp_count = stamps_.size();
  h.record_count = ring_.size();
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  if (ok && !stamps_.empty()) {
    ok = std::fwrite(stamps_.data(), sizeof(EpochStamp), stamps_.size(), f) ==
         stamps_.size();
  }
  if (ok) {
    // Unroll the ring so records land oldest-first.
    for (std::size_t i = 0; ok && i < ring_.size(); ++i) {
      const JournalRecord& r = ring_[(ring_head_ + i) % ring_.size()];
      ok = std::fwrite(&r, sizeof(JournalRecord), 1, f) == 1;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::Internal("short write to journal file: " + path);
  return Status::OK();
}

Result<JournalData> ReadJournalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open journal file: " + path);
  }
  FileHeader h;
  if (std::fread(&h, sizeof(h), 1, f) != 1) {
    std::fclose(f);
    return Status::Internal("truncated journal header: " + path);
  }
  if (std::memcmp(h.magic, kJournalMagic, sizeof(h.magic)) != 0 ||
      h.version != kJournalVersion) {
    std::fclose(f);
    return Status::InvalidArgument("not a pardb journal file: " + path);
  }
  JournalData d;
  d.shard = h.shard;
  d.seed = h.seed;
  d.base_ordinal = h.base_ordinal;
  d.total_records = h.total_records;
  d.dropped = h.dropped;
  d.stamps.resize(h.stamp_count);
  d.records.resize(h.record_count);
  bool ok = true;
  if (h.stamp_count != 0) {
    ok = std::fread(d.stamps.data(), sizeof(EpochStamp), h.stamp_count, f) ==
         h.stamp_count;
  }
  if (ok && h.record_count != 0) {
    ok = std::fread(d.records.data(), sizeof(JournalRecord), h.record_count,
                    f) == h.record_count;
  }
  std::fclose(f);
  if (!ok) return Status::Internal("truncated journal body: " + path);
  return d;
}

std::size_t FirstDivergentEpoch(const std::vector<EpochStamp>& a,
                                const std::vector<EpochStamp>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  // Bisection over the cumulative chain: equal at mid certifies the whole
  // prefix, unequal at mid means the break is at mid or earlier.
  std::size_t lo = 0, hi = common;  // invariant: break index in [lo, hi]
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (a[mid].chain == b[mid].chain) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < common) return lo;
  return a.size() == b.size() ? kNoDivergence : common;
}

DivergenceReport DiffJournals(const JournalData& a, const JournalData& b) {
  DivergenceReport rep;
  const std::size_t epoch = FirstDivergentEpoch(a.stamps, b.stamps);
  if (epoch == kNoDivergence) {
    // Chains agree in full; any residual divergence lives in records
    // appended after the last stamp.
    const std::uint64_t stamped = a.stamps.empty()
                                      ? 0
                                      : a.stamps.back().record_count;
    const std::uint64_t from = std::max(
        {stamped, a.base_ordinal, b.base_ordinal});
    const std::uint64_t end_a = a.base_ordinal + a.records.size();
    const std::uint64_t end_b = b.base_ordinal + b.records.size();
    for (std::uint64_t o = from; o < std::max(end_a, end_b); ++o) {
      const bool in_a = o < end_a;
      const bool in_b = o < end_b;
      if (in_a && in_b &&
          a.records[o - a.base_ordinal] == b.records[o - b.base_ordinal]) {
        continue;
      }
      rep.diverged = true;
      rep.epoch = a.stamps.size();  // past the last stamped epoch
      rep.record_ordinal = o;
      rep.has_record_a = in_a;
      rep.has_record_b = in_b;
      if (in_a) rep.record_a = a.records[o - a.base_ordinal];
      if (in_b) rep.record_b = b.records[o - b.base_ordinal];
      for (std::uint64_t c = o > 3 ? o - 3 : 0; c < o; ++c) {
        if (c >= a.base_ordinal && c < end_a) {
          rep.context.push_back(a.records[c - a.base_ordinal]);
        }
      }
      return rep;
    }
    return rep;  // identical
  }

  rep.diverged = true;
  rep.epoch = epoch;
  const bool stamp_a = epoch < a.stamps.size();
  const bool stamp_b = epoch < b.stamps.size();
  if (stamp_a) {
    rep.step_a = a.stamps[epoch].step;
    rep.state_a = a.stamps[epoch].state_digest;
    rep.chain_a = a.stamps[epoch].chain;
  }
  if (stamp_b) {
    rep.step_b = b.stamps[epoch].step;
    rep.state_b = b.stamps[epoch].state_digest;
    rep.chain_b = b.stamps[epoch].chain;
  }

  // Record range of the divergent epoch: (previous stamp, this stamp].
  const std::uint64_t from_ord =
      epoch == 0 ? 0 : a.stamps[epoch - 1].record_count;
  const std::uint64_t to_a =
      stamp_a ? a.stamps[epoch].record_count
              : a.base_ordinal + a.records.size();
  const std::uint64_t to_b =
      stamp_b ? b.stamps[epoch].record_count
              : b.base_ordinal + b.records.size();
  if (from_ord < a.base_ordinal || from_ord < b.base_ordinal) {
    rep.truncated = true;  // ring evicted part of the divergent epoch
  }
  const std::uint64_t scan_from =
      std::max({from_ord, a.base_ordinal, b.base_ordinal});
  for (std::uint64_t o = scan_from; o < std::max(to_a, to_b); ++o) {
    const bool in_a = o < to_a && o < a.base_ordinal + a.records.size();
    const bool in_b = o < to_b && o < b.base_ordinal + b.records.size();
    if (in_a && in_b &&
        a.records[o - a.base_ordinal] == b.records[o - b.base_ordinal]) {
      continue;
    }
    if (!in_a && !in_b) break;
    rep.record_ordinal = o;
    rep.has_record_a = in_a;
    rep.has_record_b = in_b;
    if (in_a) rep.record_a = a.records[o - a.base_ordinal];
    if (in_b) rep.record_b = b.records[o - b.base_ordinal];
    for (std::uint64_t c = o > 3 ? o - 3 : 0; c < o; ++c) {
      if (c >= a.base_ordinal && c < a.base_ordinal + a.records.size()) {
        rep.context.push_back(a.records[c - a.base_ordinal]);
      }
    }
    return rep;
  }
  // Every retained record in the epoch matches: the chains split on the
  // state digest alone (e.g. a perturbed ω-order with identical decisions).
  rep.state_only = true;
  return rep;
}

std::string RenderJournalRecord(const JournalRecord& record) {
  std::ostringstream os;
  const JournalKind kind = static_cast<JournalKind>(record.kind);
  os << "step " << record.step << " T" << record.txn << " "
     << JournalKindName(kind);
  switch (kind) {
    case JournalKind::kAdmit:
      break;
    case JournalKind::kGrant:
      os << " E" << record.a << ((record.aux & 1) != 0 ? " X" : " S");
      if ((record.aux & 2) != 0) os << " upgrade";
      break;
    case JournalKind::kBlock:
      os << " E" << record.a;
      break;
    case JournalKind::kCycle:
      os << " at E" << record.a << " deadlock#" << record.b;
      break;
    case JournalKind::kVictim:
      os << " target=" << record.a << " cost=" << record.b << " candidates="
         << record.aux2;
      if ((record.aux & 1) != 0) os << " omega-constrained";
      if ((record.aux & 2) != 0) os << " self";
      break;
    case JournalKind::kRollback:
      os << " to=" << record.a << " cost=" << record.b << " cause="
         << RollbackCauseName(static_cast<RollbackCause>(record.aux))
         << (record.aux2 != 0 ? " total" : " partial");
      break;
    case JournalKind::kHold:
      os << " pc=" << record.a;
      break;
    case JournalKind::kRelease:
      break;
    case JournalKind::kCommit:
      os << " pc=" << record.a;
      break;
  }
  return os.str();
}

namespace {

void HexU64(std::ostringstream& os, std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  os << buf;
}

}  // namespace

std::string RenderDivergence(const DivergenceReport& report,
                             std::uint32_t shard, const std::string& label_a,
                             const std::string& label_b) {
  std::ostringstream os;
  if (!report.diverged) {
    os << "shard " << shard << ": journals identical (" << label_a << " == "
       << label_b << ")\n";
    return os.str();
  }
  os << "shard " << shard << ": FIRST DIVERGENCE at epoch " << report.epoch
     << "\n";
  os << "  step: " << label_a << "=" << report.step_a << "  " << label_b
     << "=" << report.step_b << "\n";
  os << "  chain: " << label_a << "=";
  HexU64(os, report.chain_a);
  os << "  " << label_b << "=";
  HexU64(os, report.chain_b);
  os << "\n";
  if (report.state_only) {
    os << "  decisions identical through the epoch; state digest differs ("
       << label_a << "=";
    HexU64(os, report.state_a);
    os << ", " << label_b << "=";
    HexU64(os, report.state_b);
    os << ")\n  -> lock-table / live-set / omega-order drift without a "
          "divergent decision record\n";
    return os.str();
  }
  if (report.truncated) {
    os << "  (warning: ring evicted part of the divergent epoch; first "
          "retained mismatch shown)\n";
  }
  if (!report.context.empty()) {
    os << "  shared context before the break:\n";
    for (const JournalRecord& r : report.context) {
      os << "    " << RenderJournalRecord(r) << "\n";
    }
  }
  os << "  first divergent decision (record #" << report.record_ordinal
     << "):\n";
  os << "    " << label_a << ": "
     << (report.has_record_a ? RenderJournalRecord(report.record_a)
                             : std::string("<no record — run ended>"))
     << "\n";
  os << "    " << label_b << ": "
     << (report.has_record_b ? RenderJournalRecord(report.record_b)
                             : std::string("<no record — run ended>"))
     << "\n";
  return os.str();
}

std::string SummarizeJournal(const JournalData& data,
                             const std::string& label) {
  std::ostringstream os;
  os << label << ": shard " << data.shard << " seed " << data.seed << " — "
     << data.total_records << " records (" << data.dropped << " dropped), "
     << data.stamps.size() << " epochs, chain head ";
  HexU64(os, data.stamps.empty() ? kFnvOffsetBasis
                                 : data.stamps.back().chain);
  os << "\n";
  return os.str();
}

namespace {

void RecordJson(std::ostringstream& os, const JournalRecord& r) {
  os << "{\"txn\":" << r.txn << ",\"kind\":\""
     << JournalKindName(static_cast<JournalKind>(r.kind)) << "\",\"step\":"
     << r.step << ",\"a\":" << r.a << ",\"b\":" << r.b << ",\"aux\":"
     << static_cast<unsigned>(r.aux) << ",\"aux2\":" << r.aux2
     << ",\"text\":\"" << RenderJournalRecord(r) << "\"}";
}

}  // namespace

std::string JournalTailJson(const JournalDigest& digest) {
  std::ostringstream os;
  os << "{\"shard\":" << digest.shard << ",\"records\":" << digest.records
     << ",\"dropped\":" << digest.dropped << ",\"bytes\":" << digest.bytes
     << ",\"epochs\":" << digest.epochs << ",\"chain\":\"";
  HexU64(os, digest.chain);
  os << "\",\"tail\":[";
  for (std::size_t i = 0; i < digest.tail.size(); ++i) {
    if (i != 0) os << ",";
    RecordJson(os, digest.tail[i]);
  }
  os << "],\"stamps\":[";
  for (std::size_t i = 0; i < digest.recent_stamps.size(); ++i) {
    const EpochStamp& s = digest.recent_stamps[i];
    if (i != 0) os << ",";
    os << "{\"epoch\":" << s.epoch << ",\"step\":" << s.step
       << ",\"kind\":\""
       << (static_cast<EpochKind>(s.kind) == EpochKind::kTwoPC ? "twopc"
                                                               : "step")
       << "\",\"chain\":\"";
    HexU64(os, s.chain);
    os << "\",\"state\":\"";
    HexU64(os, s.state_digest);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace pardb::obs

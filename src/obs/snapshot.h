#ifndef PARDB_OBS_SNAPSHOT_H_
#define PARDB_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/forensics.h"

namespace pardb::obs {

// Point-in-time waits-for snapshots — the live analogue of the post-mortem
// DeadlockDump. The engine materializes one under its own step boundary
// (single-threaded, so the graph, lock table and transaction states are
// mutually consistent without a global stop); the sharded driver publishes
// one per shard into the live hub, where the HTTP server reads them.
//
// The obs library sits below lock/, so lock modes appear here as their
// exposition letters ('S'/'X').

// One lock a transaction holds (or requests).
struct LockGrantRef {
  EntityId entity;
  char mode = 'X';  // 'S' or 'X'
};

// One live transaction's visible state at the snapshot instant.
struct TxnSnapshot {
  TxnId txn;
  Timestamp entry = 0;  // ω-order position (Theorem 2)
  // "ready" | "waiting" | "committed" (committed txns are normally retired
  // from snapshots; the string keeps the JSON self-describing).
  std::string status;
  StateIndex state_index = 0;  // program counter, the paper's state number
  LockIndex lock_count = 0;    // granted lock requests (current lock state)
  std::uint64_t preemptions = 0;  // times rolled back as someone's victim
  std::uint64_t chain_len = 0;    // preemption-lineage depth (see lineage.h)
  std::vector<LockGrantRef> held;       // entity-id order
  bool has_request = false;
  LockGrantRef requested;  // valid when has_request
};

// The full waits-for state of one engine (one shard) at one instant.
struct WaitsForSnapshot {
  std::uint32_t shard = 0;
  std::uint64_t step = 0;     // engine step counter at the snapshot
  std::uint64_t commits = 0;  // commits so far
  std::vector<TxnSnapshot> txns;   // live transactions, id order
  std::vector<WaitsForArc> arcs;   // every waits-for arc, sorted
  // Theorem 1 structure flags, computed from the graph at snapshot time.
  // Under continuous detection a published snapshot is always acyclic
  // (cycles are resolved within the step that creates them), and with
  // exclusive locks only it is a forest.
  bool acyclic = true;
  bool forest = true;

  // Sub-snapshot restricted to `members` and the arcs among them (used to
  // compare the live view of a deadlock cycle against its forensic dump).
  WaitsForSnapshot Restricted(const std::vector<TxnId>& members) const;

  // Graphviz DOT of this shard's graph: nodes annotated with ω-order,
  // state/lock indices and lineage; arcs labeled with the contended entity.
  std::string ToDot() const;

  // Object fragment used by WaitsForSnapshotsToJson; also valid standalone.
  std::string ToJson(int indent = 0) const;
};

// The canonical rendering of a waits-for graph as DOT. Both the live
// snapshot path and the post-mortem forensics path (DeadlockDumpToCycleDot)
// funnel through this, so a live `/debug/waits-for` capture of a deadlock
// instant byte-matches the forensic record of the same instant.
//
// `graph_name` is the DOT identifier; each node is "T<id>" labeled with its
// ω position; arcs are labeled with the entity. Nodes and arcs are emitted
// in sorted order for deterministic output.
struct WaitsForDotNode {
  TxnId txn;
  Timestamp entry = 0;
};
std::string WaitsForGraphToDot(const std::string& graph_name,
                               std::vector<WaitsForDotNode> nodes,
                               std::vector<WaitsForArc> arcs);

// Renders the *graph portion* of a forensic dump (cycle members + cycle
// arcs, ω annotations only) through WaitsForGraphToDot. A live snapshot of
// the same instant restricted to the cycle members renders byte-identically
// via WaitsForSnapshot::Restricted().CycleDot().
std::string DeadlockDumpToCycleDot(const DeadlockDump& dump);

// The snapshot-side counterpart of DeadlockDumpToCycleDot: same renderer,
// same graph name, nodes from the snapshot's transactions.
std::string SnapshotCycleDot(const WaitsForSnapshot& snapshot);

// Multi-shard aggregation: the /debug/waits-for document.
// {"phase":...,"shards":[{...}, ...]} — `phase` is the run phase string the
// hub reports (also on /healthz).
std::string WaitsForSnapshotsToJson(const std::vector<WaitsForSnapshot>& snaps,
                                    const std::string& phase);
// One DOT document with a cluster subgraph per shard.
std::string WaitsForSnapshotsToDot(const std::vector<WaitsForSnapshot>& snaps);

// /debug/deadlocks document: ring of recent dumps, newest last, each with
// cycle arcs, per-participant costs and the chosen victims.
struct ShardDeadlockDump {
  std::uint32_t shard = 0;
  DeadlockDump dump;
};
std::string DeadlockDumpsToJson(const std::vector<ShardDeadlockDump>& dumps);

}  // namespace pardb::obs

#endif  // PARDB_OBS_SNAPSHOT_H_

#ifndef PARDB_OBS_METRICS_H_
#define PARDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pardb::obs {

// Label dimensions attached to a metric instance, e.g. {{"shard","3"}}.
// Kept sorted by key by the registry so equal label sets compare equal.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count. Updates are single relaxed atomic
// increments — safe from any thread, no locks on the hot path.
class Counter {
 public:
  void Inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Point-in-time signed value (queue depths, high-water marks).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  // Raises the gauge to v if v is larger (high-water mark semantics).
  void SetMax(std::int64_t v);
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Copyable point-in-time view of a Histogram, and the unit of merging:
// per-shard snapshots with identical bounds add bucket-wise, so a merged
// snapshot is exactly the histogram of the pooled samples.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;  // ascending inclusive upper bounds
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  // Nearest-rank quantile over the buckets, following the
  // core::ComputeCostDistribution convention: the percentile-P value is the
  // P-th nearest-rank sample, here resolved to the inclusive upper bound of
  // the bucket containing rank ceil(count*P/100) (clamped to the observed
  // max, which is exact for the top of the distribution). 0 when empty.
  std::uint64_t Quantile(std::uint64_t p) const;

  // Same nearest-rank convention at per-mille resolution (p999 = 999):
  // rank ceil(count * pm / 1000). Quantile(p) == QuantilePerMille(p * 10).
  std::uint64_t QuantilePerMille(std::uint64_t pm) const;

  // Bucket-wise sum. Returns false (and leaves *this untouched) when the
  // bound vectors differ.
  bool MergeFrom(const HistogramSnapshot& other);
};

// Fixed-bucket latency histogram. Recording is lock-free: one relaxed
// atomic increment per bucket plus count/sum/max updates. Bucket bounds are
// immutable after construction.
class Histogram {
 public:
  // `bounds` must be strictly ascending; values above the last bound land
  // in an implicit overflow bucket (whose quantile reports the true max).
  explicit Histogram(std::vector<std::uint64_t> bounds = DefaultBounds());

  void Record(std::uint64_t v);

  HistogramSnapshot Snapshot() const;

  // Powers of two from 1ns to ~137s — fine enough for sub-microsecond
  // lock operations and wide enough for whole-phase timings. Also serves
  // step-valued histograms (small integers sit on exact bounds).
  static std::vector<std::uint64_t> DefaultBounds();

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// One exported metric with its identity.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  LabelSet labels;
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  HistogramSnapshot hist;
};

// Value-semantic dump of a registry: what reports carry, what writers
// serialize, and what the sharded driver merges.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by (name, labels)

  // Combines `other` into *this: metrics with identical (name, labels,
  // kind) sum (counters/gauges add, histograms merge bucket-wise); new
  // identities are inserted in sorted position.
  void MergeFrom(const RegistrySnapshot& other);

  // Copy with label `key` removed from every metric; entries that collide
  // after the removal are summed. Used to fold per-shard metrics
  // ({"shard","k"}) into the cross-shard aggregate.
  RegistrySnapshot WithoutLabel(const std::string& key) const;

  const MetricSnapshot* Find(const std::string& name,
                             const LabelSet& labels = {}) const;

  // {"metrics":[{"name":...,"labels":{...},"type":...,...}]} with
  // histograms carrying count/sum/max/p50/p95/p99/p999 and the bucket table.
  std::string ToJson(int indent = 0) const;

  // Prometheus text exposition (counters, gauges, and histograms as
  // cumulative _bucket/_sum/_count series plus summary-style
  // {quantile="0.5"|"0.99"|"0.999"} lines so percentiles are grep-able on a
  // live scrape without bucket arithmetic).
  std::string ToPrometheus() const;
};

// Named metric store. Registration (GetX) takes a mutex and returns a
// stable pointer; the returned objects are updated lock-free. Metrics are
// identified by (name, labels); repeated GetX calls with the same identity
// return the same object. A name must keep one kind: a kind-mismatched
// lookup returns nullptr.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name, const LabelSet& labels = {},
                          std::vector<std::uint64_t> bounds = {});

  RegistrySnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keyed by name + rendered labels
};

// Canonical "name{k=v,...}" rendering shared by the registry key and the
// writers. Labels are sorted by key.
std::string MetricKey(const std::string& name, const LabelSet& labels);

}  // namespace pardb::obs

#endif  // PARDB_OBS_METRICS_H_

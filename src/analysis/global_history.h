#ifndef PARDB_ANALYSIS_GLOBAL_HISTORY_H_
#define PARDB_ANALYSIS_GLOBAL_HISTORY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/history.h"
#include "common/types.h"

namespace pardb::analysis {

// Conflict-serializability of the *merged* committed projection of several
// engines (the sharded driver's global invariant). Each shard's
// HistoryRecorder exports its committed log; the caller renames every
// transaction into one global key space — the per-shard slices of a
// cross-shard transaction all map to GlobalKey(seq), so their accesses
// fuse into a single node of the precedence graph — and this class checks
// the union.
//
// The check is strictly stronger than the conjunction of the per-shard
// checks in two ways:
//  * a precedence cycle may close only across shards (shard A orders
//    global G before local L, shard B orders a transaction after G, ...);
//  * two engines publishing the *same* (entity, version) pair is replica
//    divergence — two stores evolved the same entity independently, so no
//    single serial history over one database can explain the merged log.
//    The legacy coordinator-replica execution mode fails exactly this way
//    (its coordinator writes entities that home shards also write), which
//    is the regression witness for the global-serializability hole.
class GlobalHistory {
 public:
  // Key for a transaction local to one shard.
  static std::uint64_t LocalKey(std::uint32_t shard, TxnId txn) {
    return (1ull << 63) | (static_cast<std::uint64_t>(shard) << 48) |
           txn.value();
  }
  // Key shared by every slice of cross-shard transaction `seq`.
  static std::uint64_t GlobalKey(std::uint64_t seq) { return seq; }

  // Appends `events` to the transaction `key`'s merged log. Slices of one
  // global transaction Add under the same key (their entity sets are
  // disjoint, so order between shards does not matter).
  void Add(std::uint64_t key, const std::vector<AccessEvent>& events);

  // True iff no two keys published the same (entity, version) and the
  // merged precedence graph is acyclic.
  bool IsConflictSerializable() const;

  // True when two keys published the same (entity, version) — divergent
  // per-shard replicas of one entity.
  bool HasReplicaDivergence() const;

  // A witness cycle of merged keys when the precedence graph is cyclic;
  // empty otherwise (divergence does not produce a cycle witness).
  std::vector<std::uint64_t> WitnessCycle() const;

  std::size_t size() const { return logs_.size(); }

 private:
  std::map<std::uint64_t, std::vector<std::uint64_t>> BuildPrecedence(
      bool* divergence) const;

  std::map<std::uint64_t, std::vector<AccessEvent>> logs_;
};

}  // namespace pardb::analysis

#endif  // PARDB_ANALYSIS_GLOBAL_HISTORY_H_

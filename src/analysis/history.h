#ifndef PARDB_ANALYSIS_HISTORY_H_
#define PARDB_ANALYSIS_HISTORY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace pardb::analysis {

// One read or publish performed by a transaction. `state` is the
// transaction's state index (program counter) at the time, so a partial
// rollback can erase exactly the undone suffix.
struct AccessEvent {
  EntityId entity;
  std::uint64_t version;  // version read, or the new version published
  StateIndex state;
  bool is_write;
};

// Records the interleaved execution produced by an Engine and checks the
// committed projection for conflict-serializability. The paper (§2) claims
// rollbacks never interfere with the serializability guarantee of two-phase
// locking; the property tests assert it on every random run.
class HistoryRecorder {
 public:
  HistoryRecorder() = default;

  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  void OnBegin(TxnId txn, Timestamp entry);
  // Read of `version` of `entity` (the current global version; local
  // copies always mirror some global version plus own writes).
  void OnRead(TxnId txn, EntityId entity, std::uint64_t version,
              StateIndex state);
  // Publish of a new global version at unlock/commit time.
  void OnPublish(TxnId txn, EntityId entity, std::uint64_t version,
                 StateIndex state);
  // Partial (or total) rollback: erase the transaction's events with state
  // index >= `target_state`. Publishes are never erased — a two-phase
  // transaction cannot be rolled back after its first unlock.
  void OnRollback(TxnId txn, StateIndex target_state);
  void OnCommit(TxnId txn);

  std::size_t committed_count() const { return committed_.size(); }

  // One committed transaction's access log, exported for cross-engine
  // merging (GlobalHistory fuses several recorders' logs under renamed
  // keys to check *global* conflict-serializability).
  struct CommittedTxn {
    TxnId txn;
    Timestamp entry = 0;
    std::vector<AccessEvent> events;
  };
  // The committed projection in txn-id order.
  std::vector<CommittedTxn> CommittedLog() const;

  // True iff the committed projection is conflict-serializable (its
  // precedence graph is acyclic).
  bool IsConflictSerializable() const;

  // A witness cycle of transaction ids when not serializable; empty
  // otherwise.
  std::vector<TxnId> WitnessCycle() const;

  // A serial order consistent with the precedence graph (topological
  // order), when one exists.
  Result<std::vector<TxnId>> SerialOrder() const;

 private:
  struct TxnLog {
    Timestamp entry = 0;
    std::vector<AccessEvent> events;
  };

  // Precedence edges of the committed projection: w->w, w->r and r->w
  // conflicts ordered by version. Returns adjacency keyed by committed
  // txn id value.
  std::map<std::uint64_t, std::vector<std::uint64_t>> BuildPrecedence() const;

  std::unordered_map<TxnId, TxnLog> active_;
  // Append-only commit log (commit order, not txn order): OnCommit sits on
  // every transaction's completion path, so it must not pay a tree insert.
  // Readers sort on demand.
  std::vector<std::pair<TxnId, TxnLog>> committed_;
};

}  // namespace pardb::analysis

#endif  // PARDB_ANALYSIS_HISTORY_H_

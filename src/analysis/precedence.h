#ifndef PARDB_ANALYSIS_PRECEDENCE_H_
#define PARDB_ANALYSIS_PRECEDENCE_H_

#include <cstdint>
#include <map>
#include <vector>

namespace pardb::analysis::precedence {

// One access in a flattened committed projection: transaction `key` read or
// published `version` of `entity`. The flat form lets the precedence builder
// run off a single sort instead of nested ordered maps — the end-of-run
// serializability check used to dominate short benchmark runs (DESIGN D15).
struct FlatAccess {
  std::uint64_t key;
  std::uint64_t entity;
  std::uint64_t version;
  bool is_write;
};

// Which transaction wins when two events publish the same (entity, version).
// kMaxKey reproduces HistoryRecorder's historical last-assignment-wins over
// ascending-key iteration; kMinKey reproduces GlobalHistory's
// first-emplace-wins. A correct single-store history never has duplicate
// writers, but the tie-break must stay bit-compatible with the old code.
enum class WriterTieBreak { kMinKey, kMaxKey };

// Builds the conflict-precedence adjacency (w->w, w->r, r->w ordered by
// version) over `accesses`, with every key in `keys` present as a vertex
// even when isolated. Adjacency lists come back sorted and deduplicated —
// the same canonical form the map-based builders produced. When
// `divergence` is non-null it is set iff two distinct keys published the
// same version of the same entity (replica divergence, GlobalHistory §D12).
std::map<std::uint64_t, std::vector<std::uint64_t>> BuildPrecedenceFlat(
    std::vector<FlatAccess>&& accesses, const std::vector<std::uint64_t>& keys,
    WriterTieBreak tie_break, bool* divergence);

// Iterative 3-colour DFS over the canonical adjacency; returns one cycle's
// vertices (stack order) or empty when acyclic. Visits vertices in key
// order and neighbours in sorted order, matching the map-based walker.
std::vector<std::uint64_t> FindCycleFlat(
    const std::map<std::uint64_t, std::vector<std::uint64_t>>& g);

}  // namespace pardb::analysis::precedence

#endif  // PARDB_ANALYSIS_PRECEDENCE_H_

#include "analysis/history.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace pardb::analysis {

void HistoryRecorder::OnBegin(TxnId txn, Timestamp entry) {
  active_[txn] = TxnLog{entry, {}};
}

void HistoryRecorder::OnRead(TxnId txn, EntityId entity, std::uint64_t version,
                             StateIndex state) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  it->second.events.push_back(AccessEvent{entity, version, state, false});
}

void HistoryRecorder::OnPublish(TxnId txn, EntityId entity,
                                std::uint64_t version, StateIndex state) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  it->second.events.push_back(AccessEvent{entity, version, state, true});
}

void HistoryRecorder::OnRollback(TxnId txn, StateIndex target_state) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  auto& events = it->second.events;
  // Publishes cannot be rolled back (two-phase rule); only reads are
  // dropped.
  events.erase(std::remove_if(events.begin(), events.end(),
                              [target_state](const AccessEvent& e) {
                                assert(!e.is_write ||
                                       e.state < target_state);
                                return e.state >= target_state;
                              }),
               events.end());
}

void HistoryRecorder::OnCommit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  committed_[txn] = std::move(it->second);
  active_.erase(it);
}

std::vector<HistoryRecorder::CommittedTxn> HistoryRecorder::CommittedLog()
    const {
  std::vector<CommittedTxn> out;
  out.reserve(committed_.size());
  for (const auto& [txn, log] : committed_) {
    out.push_back(CommittedTxn{txn, log.entry, log.events});
  }
  return out;
}

std::map<std::uint64_t, std::vector<std::uint64_t>>
HistoryRecorder::BuildPrecedence() const {
  // Per entity: committed publishes ordered by version, and committed reads
  // keyed by the version they saw.
  struct EntityAccesses {
    std::map<std::uint64_t, std::uint64_t> writers;          // version -> txn
    std::map<std::uint64_t, std::set<std::uint64_t>> readers;  // version seen
  };
  std::map<EntityId, EntityAccesses> per_entity;
  for (const auto& [txn, log] : committed_) {
    for (const AccessEvent& e : log.events) {
      auto& ea = per_entity[e.entity];
      if (e.is_write) {
        ea.writers[e.version] = txn.value();
      } else {
        ea.readers[e.version].insert(txn.value());
      }
    }
  }

  std::map<std::uint64_t, std::vector<std::uint64_t>> out;
  for (const auto& [txn, log] : committed_) {
    (void)log;
    out.try_emplace(txn.value());
  }
  auto AddEdge = [&out](std::uint64_t a, std::uint64_t b) {
    if (a == b) return;
    out[a].push_back(b);
  };

  for (const auto& [entity, ea] : per_entity) {
    (void)entity;
    // w(v) -> w(v') for consecutive committed publish versions.
    std::uint64_t prev_writer = 0;
    bool has_prev = false;
    for (const auto& [version, writer] : ea.writers) {
      (void)version;
      if (has_prev) AddEdge(prev_writer, writer);
      prev_writer = writer;
      has_prev = true;
    }
    for (const auto& [version, readers] : ea.readers) {
      // writer(version) -> reader (version 0 is the initial value, no
      // writer).
      auto wit = ea.writers.find(version);
      for (std::uint64_t r : readers) {
        if (wit != ea.writers.end()) AddEdge(wit->second, r);
        // reader -> first writer of a later version.
        auto nit = ea.writers.upper_bound(version);
        if (nit != ea.writers.end()) AddEdge(r, nit->second);
      }
    }
  }
  // Deduplicate adjacency lists.
  for (auto& [v, nbrs] : out) {
    (void)v;
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return out;
}

namespace {

// Returns a cycle (as vertex list) in `g`, or empty when acyclic.
std::vector<std::uint64_t> FindCycle(
    const std::map<std::uint64_t, std::vector<std::uint64_t>>& g) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::uint64_t, Color> color;
  for (const auto& [v, _] : g) color[v] = Color::kWhite;

  struct Frame {
    std::uint64_t v;
    std::size_t next = 0;
  };
  for (const auto& [root, _] : g) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nbrs = g.at(f.v);
      if (f.next < nbrs.size()) {
        std::uint64_t u = nbrs[f.next++];
        auto cit = color.find(u);
        if (cit == color.end()) continue;
        if (cit->second == Color::kGray) {
          // Extract the cycle from the stack.
          std::vector<std::uint64_t> cycle;
          bool in_cycle = false;
          for (const Frame& fr : stack) {
            if (fr.v == u) in_cycle = true;
            if (in_cycle) cycle.push_back(fr.v);
          }
          return cycle;
        }
        if (cit->second == Color::kWhite) {
          cit->second = Color::kGray;
          stack.push_back(Frame{u, 0});
        }
      } else {
        color[f.v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

bool HistoryRecorder::IsConflictSerializable() const {
  return FindCycle(BuildPrecedence()).empty();
}

std::vector<TxnId> HistoryRecorder::WitnessCycle() const {
  std::vector<TxnId> out;
  for (std::uint64_t v : FindCycle(BuildPrecedence())) out.push_back(TxnId(v));
  return out;
}

Result<std::vector<TxnId>> HistoryRecorder::SerialOrder() const {
  auto g = BuildPrecedence();
  // Kahn topological sort, smallest id first for determinism.
  std::map<std::uint64_t, std::size_t> indeg;
  for (const auto& [v, _] : g) indeg[v] = 0;
  for (const auto& [v, nbrs] : g) {
    (void)v;
    for (std::uint64_t u : nbrs) ++indeg[u];
  }
  std::set<std::uint64_t> ready;
  for (const auto& [v, d] : indeg) {
    if (d == 0) ready.insert(v);
  }
  std::vector<TxnId> order;
  while (!ready.empty()) {
    std::uint64_t v = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(TxnId(v));
    for (std::uint64_t u : g.at(v)) {
      if (--indeg[u] == 0) ready.insert(u);
    }
  }
  if (order.size() != g.size()) {
    return Status::FailedPrecondition(
        "history is not conflict-serializable; no serial order exists");
  }
  return order;
}

}  // namespace pardb::analysis

#include "analysis/history.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "analysis/precedence.h"

namespace pardb::analysis {

void HistoryRecorder::OnBegin(TxnId txn, Timestamp entry) {
  active_[txn] = TxnLog{entry, {}};
}

void HistoryRecorder::OnRead(TxnId txn, EntityId entity, std::uint64_t version,
                             StateIndex state) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  it->second.events.push_back(AccessEvent{entity, version, state, false});
}

void HistoryRecorder::OnPublish(TxnId txn, EntityId entity,
                                std::uint64_t version, StateIndex state) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  it->second.events.push_back(AccessEvent{entity, version, state, true});
}

void HistoryRecorder::OnRollback(TxnId txn, StateIndex target_state) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  auto& events = it->second.events;
  // Publishes cannot be rolled back (two-phase rule); only reads are
  // dropped.
  events.erase(std::remove_if(events.begin(), events.end(),
                              [target_state](const AccessEvent& e) {
                                assert(!e.is_write ||
                                       e.state < target_state);
                                return e.state >= target_state;
                              }),
               events.end());
}

void HistoryRecorder::OnCommit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  committed_.emplace_back(txn, std::move(it->second));
  active_.erase(it);
}

std::vector<HistoryRecorder::CommittedTxn> HistoryRecorder::CommittedLog()
    const {
  std::vector<CommittedTxn> out;
  out.reserve(committed_.size());
  for (const auto& [txn, log] : committed_) {
    out.push_back(CommittedTxn{txn, log.entry, log.events});
  }
  std::sort(out.begin(), out.end(),
            [](const CommittedTxn& a, const CommittedTxn& b) {
              return a.txn < b.txn;
            });
  return out;
}

std::map<std::uint64_t, std::vector<std::uint64_t>>
HistoryRecorder::BuildPrecedence() const {
  // Flatten the committed projection and let the shared single-sort
  // builder do the rest. kMaxKey reproduces the historical
  // last-assignment-wins on duplicate publishes (committed_ used to be a
  // txn-ordered map, so the largest txn id won).
  std::size_t total = 0;
  for (const auto& [txn, log] : committed_) {
    (void)txn;
    total += log.events.size();
  }
  std::vector<precedence::FlatAccess> acc;
  acc.reserve(total);
  std::vector<std::uint64_t> keys;
  keys.reserve(committed_.size());
  for (const auto& [txn, log] : committed_) {
    keys.push_back(txn.value());
    for (const AccessEvent& e : log.events) {
      acc.push_back(precedence::FlatAccess{txn.value(), e.entity.value(),
                                           e.version, e.is_write});
    }
  }
  return precedence::BuildPrecedenceFlat(std::move(acc), keys,
                                         precedence::WriterTieBreak::kMaxKey,
                                         nullptr);
}

bool HistoryRecorder::IsConflictSerializable() const {
  return precedence::FindCycleFlat(BuildPrecedence()).empty();
}

std::vector<TxnId> HistoryRecorder::WitnessCycle() const {
  std::vector<TxnId> out;
  for (std::uint64_t v : precedence::FindCycleFlat(BuildPrecedence())) {
    out.push_back(TxnId(v));
  }
  return out;
}

Result<std::vector<TxnId>> HistoryRecorder::SerialOrder() const {
  auto g = BuildPrecedence();
  // Kahn topological sort, smallest id first for determinism.
  std::map<std::uint64_t, std::size_t> indeg;
  for (const auto& [v, _] : g) indeg[v] = 0;
  for (const auto& [v, nbrs] : g) {
    (void)v;
    for (std::uint64_t u : nbrs) ++indeg[u];
  }
  std::set<std::uint64_t> ready;
  for (const auto& [v, d] : indeg) {
    if (d == 0) ready.insert(v);
  }
  std::vector<TxnId> order;
  while (!ready.empty()) {
    std::uint64_t v = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(TxnId(v));
    for (std::uint64_t u : g.at(v)) {
      if (--indeg[u] == 0) ready.insert(u);
    }
  }
  if (order.size() != g.size()) {
    return Status::FailedPrecondition(
        "history is not conflict-serializable; no serial order exists");
  }
  return order;
}

}  // namespace pardb::analysis

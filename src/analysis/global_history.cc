#include "analysis/global_history.h"

#include <algorithm>
#include <set>

namespace pardb::analysis {

void GlobalHistory::Add(std::uint64_t key,
                        const std::vector<AccessEvent>& events) {
  auto& log = logs_[key];
  log.insert(log.end(), events.begin(), events.end());
}

std::map<std::uint64_t, std::vector<std::uint64_t>>
GlobalHistory::BuildPrecedence(bool* divergence) const {
  *divergence = false;
  struct EntityAccesses {
    std::map<std::uint64_t, std::uint64_t> writers;            // version -> key
    std::map<std::uint64_t, std::set<std::uint64_t>> readers;  // version seen
  };
  std::map<EntityId, EntityAccesses> per_entity;
  for (const auto& [key, events] : logs_) {
    for (const AccessEvent& e : events) {
      auto& ea = per_entity[e.entity];
      if (e.is_write) {
        auto [it, inserted] = ea.writers.try_emplace(e.version, key);
        // Two distinct merged transactions publishing the same version of
        // the same entity means two stores evolved it independently.
        if (!inserted && it->second != key) *divergence = true;
      } else {
        ea.readers[e.version].insert(key);
      }
    }
  }

  std::map<std::uint64_t, std::vector<std::uint64_t>> out;
  for (const auto& [key, events] : logs_) {
    (void)events;
    out.try_emplace(key);
  }
  auto AddEdge = [&out](std::uint64_t a, std::uint64_t b) {
    if (a == b) return;
    out[a].push_back(b);
  };
  for (const auto& [entity, ea] : per_entity) {
    (void)entity;
    std::uint64_t prev_writer = 0;
    bool has_prev = false;
    for (const auto& [version, writer] : ea.writers) {
      (void)version;
      if (has_prev) AddEdge(prev_writer, writer);
      prev_writer = writer;
      has_prev = true;
    }
    for (const auto& [version, readers] : ea.readers) {
      auto wit = ea.writers.find(version);
      for (std::uint64_t r : readers) {
        if (wit != ea.writers.end()) AddEdge(wit->second, r);
        auto nit = ea.writers.upper_bound(version);
        if (nit != ea.writers.end()) AddEdge(r, nit->second);
      }
    }
  }
  for (auto& [v, nbrs] : out) {
    (void)v;
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return out;
}

namespace {

// Iterative 3-color DFS; returns a cycle's vertices or empty when acyclic
// (the HistoryRecorder convention).
std::vector<std::uint64_t> FindCycle(
    const std::map<std::uint64_t, std::vector<std::uint64_t>>& g) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::uint64_t, Color> color;
  for (const auto& [v, _] : g) color[v] = Color::kWhite;
  struct Frame {
    std::uint64_t v;
    std::size_t next = 0;
  };
  for (const auto& [root, _] : g) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nbrs = g.at(f.v);
      if (f.next < nbrs.size()) {
        std::uint64_t u = nbrs[f.next++];
        auto cit = color.find(u);
        if (cit == color.end()) continue;
        if (cit->second == Color::kGray) {
          std::vector<std::uint64_t> cycle;
          bool in_cycle = false;
          for (const Frame& fr : stack) {
            if (fr.v == u) in_cycle = true;
            if (in_cycle) cycle.push_back(fr.v);
          }
          return cycle;
        }
        if (cit->second == Color::kWhite) {
          cit->second = Color::kGray;
          stack.push_back(Frame{u, 0});
        }
      } else {
        color[f.v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

bool GlobalHistory::IsConflictSerializable() const {
  bool divergence = false;
  auto g = BuildPrecedence(&divergence);
  return !divergence && FindCycle(g).empty();
}

bool GlobalHistory::HasReplicaDivergence() const {
  bool divergence = false;
  BuildPrecedence(&divergence);
  return divergence;
}

std::vector<std::uint64_t> GlobalHistory::WitnessCycle() const {
  bool divergence = false;
  return FindCycle(BuildPrecedence(&divergence));
}

}  // namespace pardb::analysis

#include "analysis/global_history.h"

#include <algorithm>

#include "analysis/precedence.h"

namespace pardb::analysis {

void GlobalHistory::Add(std::uint64_t key,
                        const std::vector<AccessEvent>& events) {
  auto& log = logs_[key];
  log.insert(log.end(), events.begin(), events.end());
}

std::map<std::uint64_t, std::vector<std::uint64_t>>
GlobalHistory::BuildPrecedence(bool* divergence) const {
  // Flatten the merged logs and defer to the shared single-sort builder.
  // kMinKey reproduces the historical first-emplace-wins on duplicate
  // publishes (logs_ iterates keys ascending, so the smallest key won);
  // the duplicate itself is what `divergence` reports.
  std::size_t total = 0;
  for (const auto& [key, events] : logs_) {
    (void)key;
    total += events.size();
  }
  std::vector<precedence::FlatAccess> acc;
  acc.reserve(total);
  std::vector<std::uint64_t> keys;
  keys.reserve(logs_.size());
  for (const auto& [key, events] : logs_) {
    keys.push_back(key);
    for (const AccessEvent& e : events) {
      acc.push_back(
          precedence::FlatAccess{key, e.entity.value(), e.version, e.is_write});
    }
  }
  return precedence::BuildPrecedenceFlat(
      std::move(acc), keys, precedence::WriterTieBreak::kMinKey, divergence);
}

bool GlobalHistory::IsConflictSerializable() const {
  bool divergence = false;
  auto g = BuildPrecedence(&divergence);
  return !divergence && precedence::FindCycleFlat(g).empty();
}

bool GlobalHistory::HasReplicaDivergence() const {
  bool divergence = false;
  BuildPrecedence(&divergence);
  return divergence;
}

std::vector<std::uint64_t> GlobalHistory::WitnessCycle() const {
  bool divergence = false;
  return precedence::FindCycleFlat(BuildPrecedence(&divergence));
}

}  // namespace pardb::analysis

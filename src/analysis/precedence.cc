#include "analysis/precedence.h"

#include <algorithm>
#include <cstddef>

namespace pardb::analysis::precedence {

namespace {

// Orders accesses so one pass can group by entity, then walk versions
// ascending within the entity. Writes sort before reads at the same
// version only by the tie field below; the builder separates them itself.
bool AccessLess(const FlatAccess& a, const FlatAccess& b) {
  if (a.entity != b.entity) return a.entity < b.entity;
  if (a.version != b.version) return a.version < b.version;
  if (a.is_write != b.is_write) return a.is_write;  // writes first
  return a.key < b.key;
}

}  // namespace

std::map<std::uint64_t, std::vector<std::uint64_t>> BuildPrecedenceFlat(
    std::vector<FlatAccess>&& accesses, const std::vector<std::uint64_t>& keys,
    WriterTieBreak tie_break, bool* divergence) {
  if (divergence != nullptr) *divergence = false;
  std::sort(accesses.begin(), accesses.end(), AccessLess);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  auto AddEdge = [&edges](std::uint64_t a, std::uint64_t b) {
    if (a != b) edges.emplace_back(a, b);
  };

  // version -> winning writer key for the current entity, versions ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> writers;

  std::size_t i = 0;
  while (i < accesses.size()) {
    const std::uint64_t entity = accesses[i].entity;
    std::size_t j = i;
    while (j < accesses.size() && accesses[j].entity == entity) ++j;

    // Collect this entity's writers, resolving duplicate publishes of one
    // version by the caller's tie-break (sorted by key, so front = min,
    // back = max within a version group).
    writers.clear();
    for (std::size_t k = i; k < j; ++k) {
      if (!accesses[k].is_write) continue;
      if (!writers.empty() && writers.back().first == accesses[k].version) {
        if (writers.back().second != accesses[k].key) {
          if (divergence != nullptr) *divergence = true;
          if (tie_break == WriterTieBreak::kMaxKey) {
            writers.back().second = accesses[k].key;
          }
        }
        continue;
      }
      writers.emplace_back(accesses[k].version, accesses[k].key);
    }

    // w(v) -> w(v') for consecutive committed versions.
    for (std::size_t w = 1; w < writers.size(); ++w) {
      AddEdge(writers[w - 1].second, writers[w].second);
    }

    // writer(v) -> reader and reader -> first writer past v.
    for (std::size_t k = i; k < j; ++k) {
      if (accesses[k].is_write) continue;
      const std::uint64_t v = accesses[k].version;
      const std::uint64_t r = accesses[k].key;
      auto wit = std::lower_bound(
          writers.begin(), writers.end(), v,
          [](const auto& p, std::uint64_t ver) { return p.first < ver; });
      if (wit != writers.end() && wit->first == v) AddEdge(wit->second, r);
      auto nit = std::upper_bound(
          writers.begin(), writers.end(), v,
          [](std::uint64_t ver, const auto& p) { return ver < p.first; });
      if (nit != writers.end()) AddEdge(r, nit->second);
    }
    i = j;
  }

  // Canonical form: sorted, deduplicated adjacency — exactly what the
  // map-of-set builders emitted after their per-vertex sort+unique.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::map<std::uint64_t, std::vector<std::uint64_t>> out;
  for (std::uint64_t k : keys) out.try_emplace(k);
  for (const auto& [a, b] : edges) out[a].push_back(b);
  return out;
}

std::vector<std::uint64_t> FindCycleFlat(
    const std::map<std::uint64_t, std::vector<std::uint64_t>>& g) {
  // Dense mirror of the graph: rank-indexed colours and adjacency pointers
  // so the DFS does no tree lookups. Key order (= map order) and sorted
  // neighbour order reproduce the original walker's visit sequence.
  std::vector<std::uint64_t> keys;
  std::vector<const std::vector<std::uint64_t>*> nbrs;
  keys.reserve(g.size());
  nbrs.reserve(g.size());
  for (const auto& [v, adj] : g) {
    keys.push_back(v);
    nbrs.push_back(&adj);
  }
  enum : unsigned char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<unsigned char> color(keys.size(), kWhite);
  auto RankOf = [&keys](std::uint64_t v) -> std::size_t {
    auto it = std::lower_bound(keys.begin(), keys.end(), v);
    if (it == keys.end() || *it != v) return keys.size();  // not a vertex
    return static_cast<std::size_t>(it - keys.begin());
  };

  struct Frame {
    std::size_t rank;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (std::size_t root = 0; root < keys.size(); ++root) {
    if (color[root] != kWhite) continue;
    stack.clear();
    stack.push_back(Frame{root, 0});
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<std::uint64_t>& adj = *nbrs[f.rank];
      if (f.next < adj.size()) {
        const std::size_t u = RankOf(adj[f.next++]);
        if (u == keys.size()) continue;
        if (color[u] == kGray) {
          std::vector<std::uint64_t> cycle;
          bool in_cycle = false;
          for (const Frame& fr : stack) {
            if (fr.rank == u) in_cycle = true;
            if (in_cycle) cycle.push_back(keys[fr.rank]);
          }
          return cycle;
        }
        if (color[u] == kWhite) {
          color[u] = kGray;
          stack.push_back(Frame{u, 0});
        }
      } else {
        color[f.rank] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace pardb::analysis::precedence

#include "rollback/total_restart.h"

#include <algorithm>

namespace pardb::rollback {

TotalRestartStrategy::TotalRestartStrategy(const txn::Program& program)
    : initial_vars_(program.initial_vars()), vars_(program.initial_vars()) {}

void TotalRestartStrategy::OnLockGranted(LockIndex /*lock_state*/,
                                         EntityId entity, lock::LockMode mode,
                                         Value global_value,
                                         bool /*is_upgrade*/) {
  if (mode == lock::LockMode::kExclusive) {
    copies_[entity] = EntityCopy{global_value, true};
    std::size_t n = 0;
    for (const auto& [e, c] : copies_) {
      (void)e;
      if (c.exclusive) ++n;
    }
    peak_entity_copies_ = std::max(peak_entity_copies_, n);
  } else {
    copies_[entity] = EntityCopy{global_value, false};
  }
}

void TotalRestartStrategy::OnEntityWrite(EntityId entity, Value value,
                                         LockIndex /*lock_index*/) {
  auto it = copies_.find(entity);
  if (it != copies_.end()) it->second.value = value;
}

void TotalRestartStrategy::OnVarWrite(txn::VarId var, Value value,
                                      LockIndex /*lock_index*/) {
  if (var < vars_.size()) vars_[var] = value;
}

Value TotalRestartStrategy::VarValue(txn::VarId var) const {
  return var < vars_.size() ? vars_[var] : 0;
}

std::optional<Value> TotalRestartStrategy::LocalValue(EntityId entity) const {
  auto it = copies_.find(entity);
  if (it == copies_.end() || !it->second.exclusive) return std::nullopt;
  return it->second.value;
}

std::optional<Value> TotalRestartStrategy::OnUnlock(EntityId entity) {
  unlocked_ = true;
  auto it = copies_.find(entity);
  if (it == copies_.end()) return std::nullopt;
  std::optional<Value> publish;
  if (it->second.exclusive) publish = it->second.value;
  copies_.erase(it);
  return publish;
}

LockIndex TotalRestartStrategy::LatestRestorableAtOrBefore(
    LockIndex /*target*/) const {
  return 0;
}

Result<RestoreResult> TotalRestartStrategy::RestoreTo(LockIndex target) {
  if (unlocked_) {
    return Status::FailedPrecondition(
        "rollback after unlock is not permitted (two-phase rule)");
  }
  if (target != 0) {
    return Status::InvalidArgument(
        "total restart can only restore lock state 0");
  }
  RestoreResult result;
  for (const auto& [e, c] : copies_) {
    (void)c;
    result.dropped_entities.push_back(e);
  }
  copies_.clear();
  vars_ = initial_vars_;
  return result;
}

SpaceStats TotalRestartStrategy::Space() const {
  SpaceStats s;
  for (const auto& [e, c] : copies_) {
    (void)e;
    if (c.exclusive) ++s.entity_copies;
  }
  // One saved copy of the initial local variables suffices for restart.
  s.var_copies = initial_vars_.size();
  s.peak_entity_copies = peak_entity_copies_;
  s.peak_var_copies = initial_vars_.size();
  return s;
}

}  // namespace pardb::rollback

#ifndef PARDB_ROLLBACK_STRATEGY_H_
#define PARDB_ROLLBACK_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_mode.h"
#include "txn/program.h"

namespace pardb::rollback {

// Storage accounting for the paper's space-overhead comparison (Theorem 3
// and §4's "no more storage overhead than total removal" claim).
struct SpaceStats {
  // Live value copies of global entities (MCS: stack elements including the
  // saved global value; single-copy strategies: one per X-held entity).
  std::size_t entity_copies = 0;
  // Live value copies of local variables (MCS stacks; single-copy: the
  // saved initial values).
  std::size_t var_copies = 0;
  // Bookkeeping entries that are not value copies (SDG write log/coverage).
  std::size_t metadata_entries = 0;
  std::size_t peak_entity_copies = 0;
  std::size_t peak_var_copies = 0;
};

// What a RestoreTo() performed, for the engine's bookkeeping.
struct RestoreResult {
  // Entities whose tracked local state was dropped because their lock state
  // index is >= the restore target (the engine releases/downgrades the
  // corresponding locks).
  std::vector<EntityId> dropped_entities;
};

// Per-transaction value-history tracker and restorer: the paper's §4
// "implementation of rollback". One instance per running transaction.
//
// Lock-state indexing convention (see DESIGN.md): the transaction's k-th
// granted lock request (k = 1, 2, ...) creates lock state k-1 — the
// transaction state immediately preceding that request. An operation
// executed between granted request k and request k+1 has lock index k.
// Rolling back to lock state q undoes every granted request with lock state
// index >= q and restores all values to their content immediately before
// request q+1 executed.
//
// Protocol (driven by the Engine):
//   OnLockGranted(q, e, mode, global, upgrade)   after each grant
//   OnEntityWrite / OnVarWrite / ReadVar / LocalValue   during execution
//   OnLastLockGranted()   optionally, when the program's final lock request
//       is granted — the transaction can never be rolled back afterwards
//       (it will never wait again), so history recording stops (§5).
//   OnUnlock(e)   entering the shrinking phase; rollback is impossible from
//       then on and RestoreTo must not be called.
class RollbackStrategy {
 public:
  virtual ~RollbackStrategy() = default;

  virtual std::string_view name() const = 0;

  // Called when lock request with lock state `lock_state` is granted.
  // `global_value` is the entity's current global value (the value the
  // paper's model guarantees stays unchanged until this transaction
  // unlocks). `is_upgrade` marks an S->X upgrade of an already-held entity.
  virtual void OnLockGranted(LockIndex lock_state, EntityId entity,
                             lock::LockMode mode, Value global_value,
                             bool is_upgrade) = 0;

  // Write of `value` to an X-held entity by an operation with lock index
  // `lock_index`.
  virtual void OnEntityWrite(EntityId entity, Value value,
                             LockIndex lock_index) = 0;

  // Write to a local variable (kCompute destinations and kRead
  // destinations both count — any operation that destroys the previous
  // variable value).
  virtual void OnVarWrite(txn::VarId var, Value value,
                          LockIndex lock_index) = 0;

  // Current value of a local variable.
  virtual Value VarValue(txn::VarId var) const = 0;

  // Current local value of an X-held entity; nullopt when the strategy
  // holds no copy (S-held or unknown), in which case the caller reads the
  // global value.
  virtual std::optional<Value> LocalValue(EntityId entity) const = 0;

  // Entity is being unlocked. For X-held entities returns the final local
  // value to publish as the new global value; nullopt for S-held. Frees any
  // history kept for the entity.
  virtual std::optional<Value> OnUnlock(EntityId entity) = 0;

  // The program's last lock request was granted: monitoring may stop.
  virtual void OnLastLockGranted() = 0;

  // Greatest lock state index <= target that this strategy can restore
  // exactly. MCS restores everything (returns target); total restart only
  // state 0; SDG the latest *well-defined* state (Theorem 4).
  virtual LockIndex LatestRestorableAtOrBefore(LockIndex target) const = 0;

  // Restores all tracked values to lock state `target`. `target` must be a
  // value previously returned by LatestRestorableAtOrBefore. Fails with
  // FailedPrecondition when called after OnUnlock, or InvalidArgument for
  // unrestorable targets.
  virtual Result<RestoreResult> RestoreTo(LockIndex target) = 0;

  virtual SpaceStats Space() const = 0;
};

// Which strategy an Engine equips its transactions with.
enum class StrategyKind {
  kTotalRestart,  // baseline: remove-and-restart (roll back to state 0)
  kMcs,           // multi-lock copy strategy (§4, Theorem 3)
  kSdg,           // state-dependency graph, single copy per entity (§4)
};

std::string_view StrategyKindName(StrategyKind kind);

// Creates a fresh tracker for one transaction running `program`. `arena`
// (optional, borrowed, must outlive the strategy) backs MCS savepoint
// storage so a warm engine's grant path stays heap-allocation-free; other
// strategies currently ignore it.
std::unique_ptr<RollbackStrategy> MakeStrategy(StrategyKind kind,
                                               const txn::Program& program,
                                               Arena* arena = nullptr);

}  // namespace pardb::rollback

#endif  // PARDB_ROLLBACK_STRATEGY_H_

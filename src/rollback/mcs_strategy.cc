#include "rollback/mcs_strategy.h"

#include <algorithm>
#include <cassert>

namespace pardb::rollback {

McsStrategy::McsStrategy(const txn::Program& program) {
  var_stacks_.reserve(program.num_vars());
  const auto& init = program.initial_vars();
  for (txn::VarId v = 0; v < program.num_vars(); ++v) {
    Stack s;
    s.lock_state = 0;
    s.elems.push_back(Element{init[v], 0});
    var_stacks_.push_back(std::move(s));
  }
  UpdatePeaks();
}

void McsStrategy::OnLockGranted(LockIndex lock_state, EntityId entity,
                                lock::LockMode mode, Value global_value,
                                bool is_upgrade) {
  if (mode == lock::LockMode::kShared) {
    shared_held_[entity] = lock_state;
    return;
  }
  // A stack is associated with the lock state immediately preceding the
  // exclusive lock request; its first element holds the global value. The
  // element index equals the lock state, so no later pop (to q >= this
  // lock state) removes it.
  Stack s;
  s.lock_state = lock_state;
  s.elems.push_back(Element{global_value, lock_state});
  if (is_upgrade) {
    auto sit = shared_held_.find(entity);
    if (sit != shared_held_.end()) {
      s.shared_lock_state = sit->second;
      shared_held_.erase(sit);
    }
  }
  entity_stacks_[entity] = std::move(s);
  UpdatePeaks();
}

void McsStrategy::RecordWrite(std::vector<Element>& elems, Value value,
                              LockIndex lock_index) {
  assert(!elems.empty());
  if (!monitoring_) {
    // Past the last lock request no rollback can occur; keep only the
    // current value (§5's declaration optimisation).
    elems.back().value = value;
    return;
  }
  if (lock_index > elems.back().index) {
    elems.push_back(Element{value, lock_index});
  } else {
    // Same lock state writes overwrite in place (only the last write before
    // a lock state is part of that state).
    elems.back().value = value;
  }
}

void McsStrategy::OnEntityWrite(EntityId entity, Value value,
                                LockIndex lock_index) {
  auto it = entity_stacks_.find(entity);
  if (it == entity_stacks_.end()) return;  // engine validates X-held
  RecordWrite(it->second.elems, value, lock_index);
  UpdatePeaks();
}

void McsStrategy::OnVarWrite(txn::VarId var, Value value,
                             LockIndex lock_index) {
  if (var >= var_stacks_.size()) return;
  RecordWrite(var_stacks_[var].elems, value, lock_index);
  UpdatePeaks();
}

Value McsStrategy::VarValue(txn::VarId var) const {
  if (var >= var_stacks_.size()) return 0;
  return var_stacks_[var].elems.back().value;
}

std::optional<Value> McsStrategy::LocalValue(EntityId entity) const {
  auto it = entity_stacks_.find(entity);
  if (it == entity_stacks_.end()) return std::nullopt;
  return it->second.elems.back().value;
}

std::optional<Value> McsStrategy::OnUnlock(EntityId entity) {
  unlocked_ = true;
  shared_held_.erase(entity);
  auto it = entity_stacks_.find(entity);
  if (it == entity_stacks_.end()) return std::nullopt;
  // The top of the stack is copied out as the new global value and the
  // stack is returned to free storage (paper §4).
  Value publish = it->second.elems.back().value;
  entity_stacks_.erase(it);
  return publish;
}

LockIndex McsStrategy::LatestRestorableAtOrBefore(LockIndex target) const {
  return target;  // every lock state is restorable under MCS
}

Result<RestoreResult> McsStrategy::RestoreTo(LockIndex target) {
  if (unlocked_) {
    return Status::FailedPrecondition(
        "rollback after unlock is not permitted (two-phase rule)");
  }
  RestoreResult result;
  // Step 2: delete each stack with lock state index >= target (their lock
  // requests are undone and the entities released).
  for (auto it = entity_stacks_.begin(); it != entity_stacks_.end();) {
    if (it->second.lock_state >= target) {
      // Upgraded entities whose original shared request survives the
      // rollback revert to shared tracking (the engine downgrades the
      // lock); otherwise the entity is fully released.
      if (it->second.shared_lock_state &&
          *it->second.shared_lock_state < target) {
        shared_held_[it->first] = *it->second.shared_lock_state;
      } else {
        result.dropped_entities.push_back(it->first);
      }
      it = entity_stacks_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = shared_held_.begin(); it != shared_held_.end();) {
    if (it->second >= target) {
      result.dropped_entities.push_back(it->first);
      it = shared_held_.erase(it);
    } else {
      ++it;
    }
  }
  // Step 3: on surviving stacks pop every element produced at a lock index
  // greater than the target state.
  auto Rewind = [target](Stack& s) {
    while (s.elems.size() > 1 && s.elems.back().index > target) {
      s.elems.pop_back();
    }
  };
  for (auto& [e, s] : entity_stacks_) {
    (void)e;
    Rewind(s);
  }
  for (Stack& s : var_stacks_) Rewind(s);
  std::sort(result.dropped_entities.begin(), result.dropped_entities.end());
  return result;
}

SpaceStats McsStrategy::Space() const {
  SpaceStats s;
  for (const auto& [e, st] : entity_stacks_) {
    (void)e;
    s.entity_copies += st.elems.size();
  }
  for (const Stack& st : var_stacks_) s.var_copies += st.elems.size();
  s.peak_entity_copies = peak_entity_copies_;
  s.peak_var_copies = peak_var_copies_;
  return s;
}

std::size_t McsStrategy::StackDepth(EntityId entity) const {
  auto it = entity_stacks_.find(entity);
  return it == entity_stacks_.end() ? 0 : it->second.elems.size();
}

void McsStrategy::UpdatePeaks() {
  std::size_t e = 0;
  for (const auto& [id, st] : entity_stacks_) {
    (void)id;
    e += st.elems.size();
  }
  std::size_t v = 0;
  for (const Stack& st : var_stacks_) v += st.elems.size();
  peak_entity_copies_ = std::max(peak_entity_copies_, e);
  peak_var_copies_ = std::max(peak_var_copies_, v);
}

}  // namespace pardb::rollback

#include "rollback/mcs_strategy.h"

#include <algorithm>
#include <cassert>
#include <new>

namespace pardb::rollback {

McsStrategy::McsStrategy(const txn::Program& program, Arena* arena)
    : arena_(arena) {
  entity_stacks_.set_arena(arena_);
  shared_held_.set_arena(arena_);
  var_stacks_.set_arena(arena_);
  var_stacks_.reserve(program.num_vars());
  const auto& init = program.initial_vars();
  for (txn::VarId v = 0; v < program.num_vars(); ++v) {
    VarStack s;
    s.cap = 2;
    s.elems = AllocElems(s.cap);
    s.elems[0] = Element{init[v], 0};
    s.size = 1;
    var_stacks_.push_back(s);
  }
  cur_var_copies_ = peak_var_copies_ = program.num_vars();
}

McsStrategy::~McsStrategy() {
  for (XStack& s : entity_stacks_) FreeElems(s.elems, s.cap);
  for (VarStack& s : var_stacks_) FreeElems(s.elems, s.cap);
}

McsStrategy::Element* McsStrategy::AllocElems(std::uint32_t cap) {
  const std::size_t bytes = std::size_t{cap} * sizeof(Element);
  if (arena_ != nullptr) {
    void* block = arena_->TryAllocate(bytes);
    if (block == nullptr) throw std::bad_alloc();
    return static_cast<Element*>(block);
  }
  return static_cast<Element*>(::operator new(bytes));
}

void McsStrategy::FreeElems(Element* p, std::uint32_t cap) {
  if (p == nullptr) return;
  if (arena_ != nullptr) {
    arena_->FreeBlock(p, std::size_t{cap} * sizeof(Element));
  } else {
    ::operator delete(p);
  }
}

McsStrategy::XStack* McsStrategy::FindStack(EntityId entity) {
  for (XStack& s : entity_stacks_) {
    if (s.entity == entity) return &s;
    if (entity < s.entity) break;  // sorted by id
  }
  return nullptr;
}

const McsStrategy::XStack* McsStrategy::FindStack(EntityId entity) const {
  return const_cast<McsStrategy*>(this)->FindStack(entity);
}

std::size_t McsStrategy::SharedIndex(EntityId entity) const {
  for (std::size_t i = 0; i < shared_held_.size(); ++i) {
    if (shared_held_[i].entity == entity) return i;
    if (entity < shared_held_[i].entity) break;
  }
  return shared_held_.size();
}

void McsStrategy::InsertShared(EntityId entity, LockIndex lock_state) {
  std::size_t at = 0;
  while (at < shared_held_.size() && shared_held_[at].entity < entity) ++at;
  if (at < shared_held_.size() && shared_held_[at].entity == entity) {
    shared_held_[at].lock_state = lock_state;
    return;
  }
  shared_held_.insert_at(at, SharedRec{entity, lock_state});
}

void McsStrategy::OnLockGranted(LockIndex lock_state, EntityId entity,
                                lock::LockMode mode, Value global_value,
                                bool is_upgrade) {
  if (mode == lock::LockMode::kShared) {
    InsertShared(entity, lock_state);
    return;
  }
  // A stack is associated with the lock state immediately preceding the
  // exclusive lock request; its first element holds the global value. The
  // element index equals the lock state, so no later pop (to q >= this
  // lock state) removes it.
  XStack s;
  s.entity = entity;
  s.lock_state = lock_state;
  s.shared_lock_state = 0;
  s.has_shared = false;
  s.cap = 2;
  s.elems = AllocElems(s.cap);
  s.elems[0] = Element{global_value, lock_state};
  s.size = 1;
  if (is_upgrade) {
    const std::size_t si = SharedIndex(entity);
    if (si < shared_held_.size()) {
      s.shared_lock_state = shared_held_[si].lock_state;
      s.has_shared = true;
      shared_held_.erase_at(si);
    }
  }
  std::size_t at = 0;
  while (at < entity_stacks_.size() && entity_stacks_[at].entity < entity) {
    ++at;
  }
  entity_stacks_.insert_at(at, s);
  ++cur_entity_copies_;
  if (cur_entity_copies_ > peak_entity_copies_) {
    peak_entity_copies_ = cur_entity_copies_;
  }
}

template <typename S>
bool McsStrategy::RecordWrite(S& s, Value value, LockIndex lock_index) {
  assert(s.size > 0);
  if (!monitoring_) {
    // Past the last lock request no rollback can occur; keep only the
    // current value (§5's declaration optimisation).
    s.elems[s.size - 1].value = value;
    return false;
  }
  if (lock_index > s.elems[s.size - 1].index) {
    if (s.size == s.cap) {
      const std::uint32_t new_cap = s.cap * 2;
      Element* fresh = AllocElems(new_cap);
      std::copy(s.elems, s.elems + s.size, fresh);
      FreeElems(s.elems, s.cap);
      s.elems = fresh;
      s.cap = new_cap;
    }
    s.elems[s.size++] = Element{value, lock_index};
    return true;
  }
  // Same lock state writes overwrite in place (only the last write before
  // a lock state is part of that state).
  s.elems[s.size - 1].value = value;
  return false;
}

void McsStrategy::OnEntityWrite(EntityId entity, Value value,
                                LockIndex lock_index) {
  XStack* s = FindStack(entity);
  if (s == nullptr) return;  // engine validates X-held
  if (RecordWrite(*s, value, lock_index)) {
    ++cur_entity_copies_;
    if (cur_entity_copies_ > peak_entity_copies_) {
      peak_entity_copies_ = cur_entity_copies_;
    }
  }
}

void McsStrategy::OnVarWrite(txn::VarId var, Value value,
                             LockIndex lock_index) {
  if (var >= var_stacks_.size()) return;
  if (RecordWrite(var_stacks_[var], value, lock_index)) {
    ++cur_var_copies_;
    if (cur_var_copies_ > peak_var_copies_) {
      peak_var_copies_ = cur_var_copies_;
    }
  }
}

Value McsStrategy::VarValue(txn::VarId var) const {
  if (var >= var_stacks_.size()) return 0;
  const VarStack& s = var_stacks_[var];
  return s.elems[s.size - 1].value;
}

std::optional<Value> McsStrategy::LocalValue(EntityId entity) const {
  const XStack* s = FindStack(entity);
  if (s == nullptr) return std::nullopt;
  return s->elems[s->size - 1].value;
}

std::optional<Value> McsStrategy::OnUnlock(EntityId entity) {
  unlocked_ = true;
  const std::size_t si = SharedIndex(entity);
  if (si < shared_held_.size()) shared_held_.erase_at(si);
  std::size_t at = 0;
  while (at < entity_stacks_.size() && entity_stacks_[at].entity < entity) {
    ++at;
  }
  if (at == entity_stacks_.size() || entity_stacks_[at].entity != entity) {
    return std::nullopt;
  }
  // The top of the stack is copied out as the new global value and the
  // stack is returned to free storage (paper §4).
  XStack& s = entity_stacks_[at];
  Value publish = s.elems[s.size - 1].value;
  cur_entity_copies_ -= s.size;
  FreeElems(s.elems, s.cap);
  entity_stacks_.erase_at(at);
  return publish;
}

LockIndex McsStrategy::LatestRestorableAtOrBefore(LockIndex target) const {
  return target;  // every lock state is restorable under MCS
}

Result<RestoreResult> McsStrategy::RestoreTo(LockIndex target) {
  if (unlocked_) {
    return Status::FailedPrecondition(
        "rollback after unlock is not permitted (two-phase rule)");
  }
  RestoreResult result;
  // Step 2: delete each stack with lock state index >= target (their lock
  // requests are undone and the entities released).
  for (std::size_t i = 0; i < entity_stacks_.size();) {
    XStack& s = entity_stacks_[i];
    if (s.lock_state >= target) {
      // Upgraded entities whose original shared request survives the
      // rollback revert to shared tracking (the engine downgrades the
      // lock); otherwise the entity is fully released.
      if (s.has_shared && s.shared_lock_state < target) {
        InsertShared(s.entity, s.shared_lock_state);
      } else {
        result.dropped_entities.push_back(s.entity);
      }
      cur_entity_copies_ -= s.size;
      FreeElems(s.elems, s.cap);
      entity_stacks_.erase_at(i);
    } else {
      ++i;
    }
  }
  for (std::size_t i = 0; i < shared_held_.size();) {
    if (shared_held_[i].lock_state >= target) {
      result.dropped_entities.push_back(shared_held_[i].entity);
      shared_held_.erase_at(i);
    } else {
      ++i;
    }
  }
  // Step 3: on surviving stacks pop every element produced at a lock index
  // greater than the target state.
  auto Rewind = [target](auto& s, std::size_t& copies) {
    while (s.size > 1 && s.elems[s.size - 1].index > target) {
      --s.size;
      --copies;
    }
  };
  for (XStack& s : entity_stacks_) Rewind(s, cur_entity_copies_);
  for (VarStack& s : var_stacks_) Rewind(s, cur_var_copies_);
  std::sort(result.dropped_entities.begin(), result.dropped_entities.end());
  return result;
}

SpaceStats McsStrategy::Space() const {
  SpaceStats s;
  s.entity_copies = cur_entity_copies_;
  s.var_copies = cur_var_copies_;
  s.peak_entity_copies = peak_entity_copies_;
  s.peak_var_copies = peak_var_copies_;
  return s;
}

std::size_t McsStrategy::StackDepth(EntityId entity) const {
  const XStack* s = FindStack(entity);
  return s == nullptr ? 0 : s->size;
}

}  // namespace pardb::rollback

#ifndef PARDB_ROLLBACK_SDG_H_
#define PARDB_ROLLBACK_SDG_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/undirected.h"
#include "txn/program.h"

namespace pardb::rollback {

// The paper's state-dependency graph (§4): vertices are the lock states
// 0..p of one transaction, connected in a path (consecutive lock states),
// plus one chord {u, m} per write operation, where m is the write's lock
// index and u is the written object's *index of restorability* — the last
// lock state at which the object's pre-first-write value was still intact
// (u = first write's lock index - 1; see DESIGN.md for the convention).
//
// Theorem 4 / Corollary 1: a lock state q is *well-defined* (recreatable
// from the single local copy kept per object) iff no chord straddles it,
// i.e. there is no recorded write with u < q < m — equivalently, q is an
// articulation point of the graph (or one of the trivial endpoints).
//
// This class implements the query with interval coverage counts, which is
// exactly equivalent to the articulation-point formulation (cross-checked
// in tests via ToUndirectedGraph()).
class StateDependencyGraph {
 public:
  StateDependencyGraph() = default;

  // Notes that lock state `q` now exists (monotone; called at each granted
  // lock request with q = its lock state index).
  void AddLockState(LockIndex q);

  // Records a write at lock index `m` to an object whose index of
  // restorability is `u` (u <= m). Writes must be recorded in execution
  // order, so m is non-decreasing across calls.
  void RecordWrite(LockIndex u, LockIndex m);

  // Undoes every write recorded at a lock index > q and forgets lock
  // states > q (rollback support).
  void RewindTo(LockIndex q);

  // True iff lock state q can be recreated. States that do not exist yet
  // are reported as not well-defined.
  bool IsWellDefined(LockIndex q) const;

  // Greatest well-defined lock state <= target. Lock state 0 is always
  // well-defined (no writes precede the first lock request), so the result
  // is always valid.
  LockIndex LatestWellDefinedAtOrBefore(LockIndex target) const;

  // All well-defined lock states, ascending.
  std::vector<LockIndex> WellDefinedStates() const;

  // Number of existing lock states (vertices 0..NumLockStates()-1).
  std::size_t NumLockStates() const { return num_states_; }
  std::size_t NumRecordedWrites() const { return write_log_.size(); }

  // Exports the literal paper graph: path edges between consecutive lock
  // states plus one chord per recorded write. Used for cross-validation
  // against ArticulationPoints() and for rendering Figures 4 and 5.
  graph::UndirectedGraph ToUndirectedGraph() const;

 private:
  struct WriteRecord {
    LockIndex u;
    LockIndex m;
  };

  std::size_t num_states_ = 0;  // lock states 0..num_states_-1 exist
  std::vector<WriteRecord> write_log_;  // m non-decreasing
  // covered_[q] = number of chords with u < q < m.
  std::vector<std::uint32_t> covered_;
};

// Builds the state-dependency graph a transaction running `program` alone
// to completion would have at its final lock state: lock indices are
// assigned statically (every lock request granted immediately), and every
// kWrite (to its entity) and kCompute/kRead (to its destination variable)
// records a write. This is how the paper analyses transaction *structure*
// (Figures 4 and 5) independently of any interleaving.
StateDependencyGraph BuildSdgForProgram(const txn::Program& program);

}  // namespace pardb::rollback

#endif  // PARDB_ROLLBACK_SDG_H_

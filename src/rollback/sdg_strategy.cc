#include "rollback/sdg_strategy.h"

#include <algorithm>
#include <cassert>

namespace pardb::rollback {

SdgStrategy::SdgStrategy(const txn::Program& program) {
  const auto& init = program.initial_vars();
  vars_.reserve(init.size());
  for (Value v : init) vars_.push_back(VarEntry{v, v, {}});
}

void SdgStrategy::OnLockGranted(LockIndex lock_state, EntityId entity,
                                lock::LockMode mode, Value global_value,
                                bool is_upgrade) {
  sdg_.AddLockState(lock_state);
  const bool exclusive = mode == lock::LockMode::kExclusive;
  std::optional<LockIndex> shared_state;
  if (is_upgrade) {
    auto it = entities_.find(entity);
    if (it != entities_.end()) shared_state = it->second.lock_state;
  }
  // For upgrades the new entry's lock state is the upgrade's: writes become
  // possible only now.
  entities_[entity] = EntityEntry{lock_state,   global_value, global_value,
                                  exclusive,    {},           shared_state};
  if (exclusive) {
    std::size_t n = 0;
    for (const auto& [e, ent] : entities_) {
      (void)e;
      if (ent.exclusive) ++n;
    }
    peak_entity_copies_ = std::max(peak_entity_copies_, n);
  }
}

void SdgStrategy::OnEntityWrite(EntityId entity, Value value,
                                LockIndex lock_index) {
  auto it = entities_.find(entity);
  if (it == entities_.end() || !it->second.exclusive) return;
  EntityEntry& e = it->second;
  e.current = value;
  if (!monitoring_) return;
  const LockIndex u =
      e.write_indices.empty() ? (lock_index == 0 ? 0 : lock_index - 1)
                              : (e.write_indices.front() == 0
                                     ? 0
                                     : e.write_indices.front() - 1);
  e.write_indices.push_back(lock_index);
  sdg_.RecordWrite(u, lock_index);
}

void SdgStrategy::OnVarWrite(txn::VarId var, Value value,
                             LockIndex lock_index) {
  if (var >= vars_.size()) return;
  VarEntry& v = vars_[var];
  v.current = value;
  if (!monitoring_) return;
  const LockIndex u =
      v.write_indices.empty()
          ? (lock_index == 0 ? 0 : lock_index - 1)
          : (v.write_indices.front() == 0 ? 0 : v.write_indices.front() - 1);
  v.write_indices.push_back(lock_index);
  sdg_.RecordWrite(u, lock_index);
}

Value SdgStrategy::VarValue(txn::VarId var) const {
  return var < vars_.size() ? vars_[var].current : 0;
}

std::optional<Value> SdgStrategy::LocalValue(EntityId entity) const {
  auto it = entities_.find(entity);
  if (it == entities_.end() || !it->second.exclusive) return std::nullopt;
  return it->second.current;
}

std::optional<Value> SdgStrategy::OnUnlock(EntityId entity) {
  unlocked_ = true;
  auto it = entities_.find(entity);
  if (it == entities_.end()) return std::nullopt;
  std::optional<Value> publish;
  if (it->second.exclusive) publish = it->second.current;
  entities_.erase(it);
  return publish;
}

LockIndex SdgStrategy::LatestRestorableAtOrBefore(LockIndex target) const {
  return sdg_.LatestWellDefinedAtOrBefore(target);
}

Result<RestoreResult> SdgStrategy::RestoreTo(LockIndex target) {
  if (unlocked_) {
    return Status::FailedPrecondition(
        "rollback after unlock is not permitted (two-phase rule)");
  }
  if (!sdg_.IsWellDefined(target)) {
    return Status::InvalidArgument(
        "lock state " + std::to_string(target) +
        " is not well-defined; only well-defined states are restorable "
        "under the single-copy strategy");
  }
  RestoreResult result;
  for (auto it = entities_.begin(); it != entities_.end();) {
    EntityEntry& e = it->second;
    if (e.lock_state >= target) {
      if (e.shared_lock_state && *e.shared_lock_state < target) {
        // Rollback undoes the upgrade but not the original shared request:
        // revert to shared tracking (the engine downgrades the lock).
        e.lock_state = *e.shared_lock_state;
        e.exclusive = false;
        e.current = e.global;
        e.write_indices.clear();
        e.shared_lock_state.reset();
        ++it;
        continue;
      }
      result.dropped_entities.push_back(it->first);
      it = entities_.erase(it);
      continue;
    }
    // Kept entity: because target is well-defined, either every write
    // happened after it (value reverts to the untouched global copy) or
    // every write happened at or before it (the single local copy is
    // already the value at the target state).
    while (!e.write_indices.empty() && e.write_indices.back() > target) {
      e.write_indices.pop_back();
    }
    if (e.write_indices.empty()) {
      e.current = e.global;
    }
    ++it;
  }
  for (VarEntry& v : vars_) {
    const bool had_writes = !v.write_indices.empty();
    while (!v.write_indices.empty() && v.write_indices.back() > target) {
      v.write_indices.pop_back();
    }
    if (had_writes && v.write_indices.empty()) {
      v.current = v.initial;
    }
  }
  sdg_.RewindTo(target);
  std::sort(result.dropped_entities.begin(), result.dropped_entities.end());
  return result;
}

SpaceStats SdgStrategy::Space() const {
  SpaceStats s;
  for (const auto& [e, ent] : entities_) {
    (void)e;
    if (ent.exclusive) ++s.entity_copies;  // the single local copy
  }
  s.var_copies = vars_.size();  // saved initial values, as in total restart
  s.metadata_entries = sdg_.NumRecordedWrites();
  s.peak_entity_copies = peak_entity_copies_;
  s.peak_var_copies = vars_.size();
  return s;
}

}  // namespace pardb::rollback

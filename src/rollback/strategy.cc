#include "rollback/strategy.h"

#include "rollback/mcs_strategy.h"
#include "rollback/sdg_strategy.h"
#include "rollback/total_restart.h"

namespace pardb::rollback {

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kTotalRestart:
      return "total-restart";
    case StrategyKind::kMcs:
      return "mcs";
    case StrategyKind::kSdg:
      return "sdg";
  }
  return "unknown";
}

std::unique_ptr<RollbackStrategy> MakeStrategy(StrategyKind kind,
                                               const txn::Program& program,
                                               Arena* arena) {
  switch (kind) {
    case StrategyKind::kTotalRestart:
      return std::make_unique<TotalRestartStrategy>(program);
    case StrategyKind::kMcs:
      return std::make_unique<McsStrategy>(program, arena);
    case StrategyKind::kSdg:
      return std::make_unique<SdgStrategy>(program);
  }
  return nullptr;
}

}  // namespace pardb::rollback

#ifndef PARDB_ROLLBACK_SDG_STRATEGY_H_
#define PARDB_ROLLBACK_SDG_STRATEGY_H_

#include <map>
#include <vector>

#include "rollback/sdg.h"
#include "rollback/strategy.h"

namespace pardb::rollback {

// The paper's state-dependency-graph implementation of partial rollback
// (§4): exactly one local copy per exclusively locked entity (the same
// storage a total-restart system already keeps) plus a small graph over
// lock states recording which states each write destroyed. Rollback can
// target any *well-defined* lock state; when the ideal target is undefined
// the strategy falls back to the latest well-defined state of smaller
// index, trading rollback precision for MCS's quadratic copy overhead.
class SdgStrategy final : public RollbackStrategy {
 public:
  explicit SdgStrategy(const txn::Program& program);

  std::string_view name() const override { return "sdg"; }

  void OnLockGranted(LockIndex lock_state, EntityId entity,
                     lock::LockMode mode, Value global_value,
                     bool is_upgrade) override;
  void OnEntityWrite(EntityId entity, Value value,
                     LockIndex lock_index) override;
  void OnVarWrite(txn::VarId var, Value value, LockIndex lock_index) override;
  Value VarValue(txn::VarId var) const override;
  std::optional<Value> LocalValue(EntityId entity) const override;
  std::optional<Value> OnUnlock(EntityId entity) override;
  void OnLastLockGranted() override { monitoring_ = false; }
  LockIndex LatestRestorableAtOrBefore(LockIndex target) const override;
  Result<RestoreResult> RestoreTo(LockIndex target) override;
  SpaceStats Space() const override;

  // The live state-dependency graph (for tests and figure rendering).
  const StateDependencyGraph& sdg() const { return sdg_; }

 private:
  struct EntityEntry {
    LockIndex lock_state;       // lock state of the latest lock request
    Value global;               // mirror of the database's global value
    Value current;              // the single local copy
    bool exclusive;
    std::vector<LockIndex> write_indices;  // ascending
    // For S->X upgrades: lock state of the original shared request, so a
    // rollback past the upgrade can revert to shared tracking.
    std::optional<LockIndex> shared_lock_state;
  };
  struct VarEntry {
    Value initial;
    Value current;
    std::vector<LockIndex> write_indices;  // ascending
  };

  std::map<EntityId, EntityEntry> entities_;
  std::vector<VarEntry> vars_;
  StateDependencyGraph sdg_;
  bool unlocked_ = false;
  bool monitoring_ = true;
  std::size_t peak_entity_copies_ = 0;
};

}  // namespace pardb::rollback

#endif  // PARDB_ROLLBACK_SDG_STRATEGY_H_

#ifndef PARDB_ROLLBACK_MCS_STRATEGY_H_
#define PARDB_ROLLBACK_MCS_STRATEGY_H_

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "rollback/strategy.h"

namespace pardb::rollback {

// The paper's multi-lock copy strategy (§4): a value stack per exclusively
// locked entity (created at its lock state, seeded with the saved global
// value) and a value stack per local variable (seeded with its initial
// value at index 0). Each stack element carries the lock index of the write
// that produced it; a write pushes a new element when its lock index
// exceeds the top's, otherwise it overwrites the top in place.
//
// Rollback to lock state q (paper §4's five-step procedure):
//   * delete every entity stack whose lock state index is >= q (those
//     entities are released);
//   * on every remaining stack, pop elements with lock index > q;
//   * local variables and kept entities then expose exactly their values at
//     lock state q.
//
// Every lock state is restorable — maximum rollback precision — at the
// worst-case space cost of Theorem 3: n(n+1)/2 entity copies and n*|L|
// variable copies for n held locks (bound attained only when monitoring
// stops at the last lock request; see EXPERIMENTS.md E6).
//
// Storage is data-oriented (DESIGN D15): stacks are trivially copyable
// records in sorted inline-capacity vectors, and element buffers are
// slices carved from the engine's arena when one is attached (heap
// otherwise). Entity buffers are returned to the arena's free lists at
// unlock/rollback, so the steady-state grant path of a warm engine
// performs zero heap allocations.
class McsStrategy final : public RollbackStrategy {
 public:
  explicit McsStrategy(const txn::Program& program, Arena* arena = nullptr);
  ~McsStrategy() override;

  std::string_view name() const override { return "mcs"; }

  void OnLockGranted(LockIndex lock_state, EntityId entity,
                     lock::LockMode mode, Value global_value,
                     bool is_upgrade) override;
  void OnEntityWrite(EntityId entity, Value value,
                     LockIndex lock_index) override;
  void OnVarWrite(txn::VarId var, Value value, LockIndex lock_index) override;
  Value VarValue(txn::VarId var) const override;
  std::optional<Value> LocalValue(EntityId entity) const override;
  std::optional<Value> OnUnlock(EntityId entity) override;
  void OnLastLockGranted() override { monitoring_ = false; }
  LockIndex LatestRestorableAtOrBefore(LockIndex target) const override;
  Result<RestoreResult> RestoreTo(LockIndex target) override;
  SpaceStats Space() const override;

  // Introspection for Theorem 3 tests: current stack depth for an entity
  // (0 when untracked).
  std::size_t StackDepth(EntityId entity) const;

 private:
  struct Element {
    Value value;
    LockIndex index;
  };
  // A value stack. `elems` is a buffer owned by the strategy (arena block
  // when attached); keeping the record trivially copyable lets the sorted
  // stack list live in a SmallVec and move with memmove.
  struct XStack {
    EntityId entity;
    LockIndex lock_state;  // index of the lock state this stack belongs to
    // For S->X upgrades: lock state of the original shared request. A
    // rollback past the upgrade but not past the shared request downgrades
    // the entity back to shared tracking.
    LockIndex shared_lock_state;
    bool has_shared;
    Element* elems;
    std::uint32_t size;
    std::uint32_t cap;
  };
  struct SharedRec {
    EntityId entity;
    LockIndex lock_state;
  };
  struct VarStack {
    Element* elems;
    std::uint32_t size;
    std::uint32_t cap;
  };
  static_assert(std::is_trivially_copyable_v<XStack>);
  static_assert(std::is_trivially_copyable_v<SharedRec>);

  Element* AllocElems(std::uint32_t cap);
  void FreeElems(Element* p, std::uint32_t cap);
  // Returns true when the write pushed a new element (vs overwriting the
  // top in place) so callers can maintain the copy counters incrementally.
  template <typename S>
  bool RecordWrite(S& s, Value value, LockIndex lock_index);
  XStack* FindStack(EntityId entity);
  const XStack* FindStack(EntityId entity) const;
  void InsertShared(EntityId entity, LockIndex lock_state);
  // Index of entity in shared_held_, or shared_held_.size().
  std::size_t SharedIndex(EntityId entity) const;

  Arena* arena_ = nullptr;
  SmallVec<XStack, 4> entity_stacks_;   // X-held entities, sorted by id
  SmallVec<SharedRec, 4> shared_held_;  // S-held, sorted by id
  SmallVec<VarStack, 4> var_stacks_;    // one per local variable
  bool unlocked_ = false;
  bool monitoring_ = true;
  // Live element totals, maintained incrementally (a full stack walk per
  // write was the old Theorem-3 bookkeeping's hottest line).
  std::size_t cur_entity_copies_ = 0;
  std::size_t cur_var_copies_ = 0;
  std::size_t peak_entity_copies_ = 0;
  std::size_t peak_var_copies_ = 0;
};

}  // namespace pardb::rollback

#endif  // PARDB_ROLLBACK_MCS_STRATEGY_H_

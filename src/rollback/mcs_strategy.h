#ifndef PARDB_ROLLBACK_MCS_STRATEGY_H_
#define PARDB_ROLLBACK_MCS_STRATEGY_H_

#include <map>
#include <vector>

#include "rollback/strategy.h"

namespace pardb::rollback {

// The paper's multi-lock copy strategy (§4): a value stack per exclusively
// locked entity (created at its lock state, seeded with the saved global
// value) and a value stack per local variable (seeded with its initial
// value at index 0). Each stack element carries the lock index of the write
// that produced it; a write pushes a new element when its lock index
// exceeds the top's, otherwise it overwrites the top in place.
//
// Rollback to lock state q (paper §4's five-step procedure):
//   * delete every entity stack whose lock state index is >= q (those
//     entities are released);
//   * on every remaining stack, pop elements with lock index > q;
//   * local variables and kept entities then expose exactly their values at
//     lock state q.
//
// Every lock state is restorable — maximum rollback precision — at the
// worst-case space cost of Theorem 3: n(n+1)/2 entity copies and n*|L|
// variable copies for n held locks (bound attained only when monitoring
// stops at the last lock request; see EXPERIMENTS.md E6).
class McsStrategy final : public RollbackStrategy {
 public:
  explicit McsStrategy(const txn::Program& program);

  std::string_view name() const override { return "mcs"; }

  void OnLockGranted(LockIndex lock_state, EntityId entity,
                     lock::LockMode mode, Value global_value,
                     bool is_upgrade) override;
  void OnEntityWrite(EntityId entity, Value value,
                     LockIndex lock_index) override;
  void OnVarWrite(txn::VarId var, Value value, LockIndex lock_index) override;
  Value VarValue(txn::VarId var) const override;
  std::optional<Value> LocalValue(EntityId entity) const override;
  std::optional<Value> OnUnlock(EntityId entity) override;
  void OnLastLockGranted() override { monitoring_ = false; }
  LockIndex LatestRestorableAtOrBefore(LockIndex target) const override;
  Result<RestoreResult> RestoreTo(LockIndex target) override;
  SpaceStats Space() const override;

  // Introspection for Theorem 3 tests: current stack depth for an entity
  // (0 when untracked).
  std::size_t StackDepth(EntityId entity) const;

 private:
  struct Element {
    Value value;
    LockIndex index;
  };
  struct Stack {
    LockIndex lock_state;  // index of the lock state this stack belongs to
    std::vector<Element> elems;
    // For S->X upgrades: lock state of the original shared request. A
    // rollback past the upgrade but not past the shared request downgrades
    // the entity back to shared tracking.
    std::optional<LockIndex> shared_lock_state;
  };

  void RecordWrite(std::vector<Element>& elems, Value value,
                   LockIndex lock_index);
  void UpdatePeaks();

  std::map<EntityId, Stack> entity_stacks_;  // X-held entities only
  std::map<EntityId, LockIndex> shared_held_;  // S-held: lock state only
  std::vector<Stack> var_stacks_;            // one per local variable
  bool unlocked_ = false;
  bool monitoring_ = true;
  std::size_t peak_entity_copies_ = 0;
  std::size_t peak_var_copies_ = 0;
};

}  // namespace pardb::rollback

#endif  // PARDB_ROLLBACK_MCS_STRATEGY_H_

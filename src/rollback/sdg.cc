#include "rollback/sdg.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace pardb::rollback {

void StateDependencyGraph::AddLockState(LockIndex q) {
  if (q + 1 > num_states_) num_states_ = q + 1;
  if (covered_.size() < num_states_) covered_.resize(num_states_, 0);
}

void StateDependencyGraph::RecordWrite(LockIndex u, LockIndex m) {
  assert(u <= m);
  assert(write_log_.empty() || write_log_.back().m <= m);
  write_log_.push_back(WriteRecord{u, m});
  if (m > 0 && covered_.size() < m) covered_.resize(m, 0);
  for (LockIndex q = u + 1; q < m; ++q) ++covered_[q];
}

void StateDependencyGraph::RewindTo(LockIndex q) {
  while (!write_log_.empty() && write_log_.back().m > q) {
    const WriteRecord& w = write_log_.back();
    for (LockIndex i = w.u + 1; i < w.m; ++i) --covered_[i];
    write_log_.pop_back();
  }
  if (num_states_ > q + 1) num_states_ = q + 1;
}

bool StateDependencyGraph::IsWellDefined(LockIndex q) const {
  // q == num_states_ is the transaction's current point — trivially
  // recreatable (nothing to undo). Larger indices do not exist.
  if (q > num_states_) return false;
  if (q == num_states_) return true;
  if (q >= covered_.size()) return true;
  return covered_[q] == 0;
}

LockIndex StateDependencyGraph::LatestWellDefinedAtOrBefore(
    LockIndex target) const {
  LockIndex q = std::min<LockIndex>(target, num_states_);
  for (;; --q) {
    if (IsWellDefined(q) || q == 0) return q;
  }
}

std::vector<LockIndex> StateDependencyGraph::WellDefinedStates() const {
  std::vector<LockIndex> out;
  for (LockIndex q = 0; q < num_states_; ++q) {
    if (IsWellDefined(q)) out.push_back(q);
  }
  return out;
}

graph::UndirectedGraph StateDependencyGraph::ToUndirectedGraph() const {
  graph::UndirectedGraph g;
  for (LockIndex q = 0; q < num_states_; ++q) {
    g.AddVertex(q);
    if (q > 0) g.AddEdge(q - 1, q);
  }
  for (const WriteRecord& w : write_log_) {
    // Chords may reference lock index m == num_states_ (writes after the
    // most recent lock state); clamp to the existing vertex range so the
    // exported figure matches the paper's drawings, while the coverage
    // structure retains the full interval.
    LockIndex m = std::min<LockIndex>(w.m, num_states_ ? num_states_ - 1 : 0);
    if (w.u != m) g.AddEdge(w.u, m);
  }
  return g;
}

StateDependencyGraph BuildSdgForProgram(const txn::Program& program) {
  StateDependencyGraph sdg;
  sdg.AddLockState(0);
  LockIndex lock_index = 0;
  // first_write[key] = lock index of the key's first write; the index of
  // restorability is first_write - 1.
  std::unordered_map<std::uint64_t, LockIndex> first_write;

  auto Record = [&](std::uint64_t key, LockIndex m) {
    auto [it, inserted] = first_write.emplace(key, m);
    const LockIndex u = it->second == 0 ? 0 : it->second - 1;
    (void)inserted;
    sdg.RecordWrite(u, m);
  };

  for (const txn::Op& op : program.ops()) {
    switch (op.code) {
      case txn::OpCode::kLockShared:
      case txn::OpCode::kLockExclusive:
        sdg.AddLockState(lock_index);
        ++lock_index;
        break;
      case txn::OpCode::kWrite:
        Record(op.entity.value() << 1, lock_index);
        break;
      case txn::OpCode::kCompute:
      case txn::OpCode::kRead:
        Record((static_cast<std::uint64_t>(op.dst) << 1) | 1, lock_index);
        break;
      case txn::OpCode::kUnlock:
      case txn::OpCode::kCommit:
        break;
    }
  }
  return sdg;
}

}  // namespace pardb::rollback

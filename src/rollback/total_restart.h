#ifndef PARDB_ROLLBACK_TOTAL_RESTART_H_
#define PARDB_ROLLBACK_TOTAL_RESTART_H_

#include <map>
#include <vector>

#include "rollback/strategy.h"

namespace pardb::rollback {

// The classical remove-and-restart baseline (paper §1, [7,10]): one local
// copy per exclusively locked entity, and the only restorable state is the
// initial one. Rollback releases every lock and restarts the transaction
// from the beginning — the degenerate extreme of the paper's partial
// rollback operation.
class TotalRestartStrategy final : public RollbackStrategy {
 public:
  explicit TotalRestartStrategy(const txn::Program& program);

  std::string_view name() const override { return "total-restart"; }

  void OnLockGranted(LockIndex lock_state, EntityId entity,
                     lock::LockMode mode, Value global_value,
                     bool is_upgrade) override;
  void OnEntityWrite(EntityId entity, Value value,
                     LockIndex lock_index) override;
  void OnVarWrite(txn::VarId var, Value value, LockIndex lock_index) override;
  Value VarValue(txn::VarId var) const override;
  std::optional<Value> LocalValue(EntityId entity) const override;
  std::optional<Value> OnUnlock(EntityId entity) override;
  void OnLastLockGranted() override {}
  LockIndex LatestRestorableAtOrBefore(LockIndex target) const override;
  Result<RestoreResult> RestoreTo(LockIndex target) override;
  SpaceStats Space() const override;

 private:
  struct EntityCopy {
    Value value;
    bool exclusive;
  };

  std::vector<Value> initial_vars_;
  std::vector<Value> vars_;
  std::map<EntityId, EntityCopy> copies_;  // X-held local copies (+S marker)
  bool unlocked_ = false;
  std::size_t peak_entity_copies_ = 0;
};

}  // namespace pardb::rollback

#endif  // PARDB_ROLLBACK_TOTAL_RESTART_H_

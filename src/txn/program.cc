#include "txn/program.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace pardb::txn {

std::string_view OpCodeName(OpCode code) {
  switch (code) {
    case OpCode::kLockShared:
      return "LS";
    case OpCode::kLockExclusive:
      return "LX";
    case OpCode::kUnlock:
      return "UN";
    case OpCode::kRead:
      return "RD";
    case OpCode::kWrite:
      return "WR";
    case OpCode::kCompute:
      return "CP";
    case OpCode::kCommit:
      return "CM";
  }
  return "??";
}

namespace {

std::string OperandString(const Operand& o) {
  if (o.kind == Operand::Kind::kImm) return std::to_string(o.imm);
  return "v" + std::to_string(o.var);
}

char ArithChar(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return '+';
    case ArithOp::kSub:
      return '-';
    case ArithOp::kMul:
      return '*';
  }
  return '?';
}

}  // namespace

std::string Op::ToString() const {
  std::ostringstream os;
  os << OpCodeName(code);
  switch (code) {
    case OpCode::kLockShared:
    case OpCode::kLockExclusive:
    case OpCode::kUnlock:
      os << " " << entity;
      break;
    case OpCode::kRead:
      os << " v" << dst << " <- " << entity;
      break;
    case OpCode::kWrite:
      os << " " << entity << " <- " << OperandString(a);
      break;
    case OpCode::kCompute:
      os << " v" << dst << " <- " << OperandString(a) << " " << ArithChar(arith)
         << " " << OperandString(b);
      break;
    case OpCode::kCommit:
      break;
  }
  return os.str();
}

std::optional<std::size_t> Program::LastLockRequestPosition() const {
  if (lock_positions_.empty()) return std::nullopt;
  return lock_positions_.back();
}

std::uint64_t Program::WriteSpreadScore() const {
  // Lock index of each op = number of lock requests strictly before it.
  std::uint64_t score = 0;
  std::unordered_map<std::uint64_t, std::pair<LockIndex, LockIndex>> spans;
  LockIndex lock_index = 0;
  for (const Op& op : ops_) {
    if (op.code == OpCode::kLockShared || op.code == OpCode::kLockExclusive) {
      ++lock_index;
      continue;
    }
    std::uint64_t key;
    if (op.code == OpCode::kWrite) {
      key = op.entity.value() << 1;
    } else if (op.code == OpCode::kCompute) {
      key = (static_cast<std::uint64_t>(op.dst) << 1) | 1;
    } else {
      continue;
    }
    auto [it, inserted] = spans.emplace(key, std::make_pair(lock_index, lock_index));
    if (!inserted) it->second.second = lock_index;
  }
  for (const auto& [key, span] : spans) {
    (void)key;
    score += span.second - span.first;
  }
  return score;
}

bool Program::IsThreePhase() const {
  // Phases: 0 = acquisition (locks + anything non-write before first lock),
  // 1 = update, 2 = release.
  int phase = 0;
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kLockShared:
      case OpCode::kLockExclusive:
        if (phase != 0) return false;
        break;
      case OpCode::kRead:
      case OpCode::kWrite:
      case OpCode::kCompute:
        if (phase == 2) return false;
        phase = 1;
        break;
      case OpCode::kUnlock:
      case OpCode::kCommit:
        phase = 2;
        break;
    }
  }
  return true;
}

std::size_t Program::CountOps(OpCode code) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [code](const Op& op) { return op.code == code; }));
}

std::string Program::ToString() const {
  std::ostringstream os;
  os << "program \"" << name_ << "\" (" << ops_.size() << " ops, "
     << lock_positions_.size() << " lock requests)\n";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    os << "  [" << i << "] " << ops_[i].ToString() << "\n";
  }
  return os.str();
}

Program Program::WithName(std::string name) const {
  Program copy = *this;
  copy.name_ = std::move(name);
  return copy;
}

ProgramBuilder::ProgramBuilder(std::string name, std::uint32_t num_vars)
    : name_(std::move(name)),
      num_vars_(num_vars),
      initial_vars_(num_vars, 0) {
  // Typical generated programs run a few dozen ops; one up-front block
  // avoids the doubling-realloc ladder on every Build.
  ops_.reserve(32);
}

ProgramBuilder& ProgramBuilder::InitVar(VarId var, Value initial) {
  if (var >= num_vars_) {
    num_vars_ = var + 1;
    initial_vars_.resize(num_vars_, 0);
  }
  initial_vars_[var] = initial;
  return *this;
}

ProgramBuilder& ProgramBuilder::LockShared(EntityId e) {
  ops_.push_back(Op{OpCode::kLockShared, e, 0, {}, {}, ArithOp::kAdd});
  return *this;
}

ProgramBuilder& ProgramBuilder::LockExclusive(EntityId e) {
  ops_.push_back(Op{OpCode::kLockExclusive, e, 0, {}, {}, ArithOp::kAdd});
  return *this;
}

ProgramBuilder& ProgramBuilder::Unlock(EntityId e) {
  ops_.push_back(Op{OpCode::kUnlock, e, 0, {}, {}, ArithOp::kAdd});
  return *this;
}

ProgramBuilder& ProgramBuilder::Read(EntityId e, VarId dst) {
  ops_.push_back(Op{OpCode::kRead, e, dst, {}, {}, ArithOp::kAdd});
  return *this;
}

ProgramBuilder& ProgramBuilder::Write(EntityId e, Operand src) {
  ops_.push_back(Op{OpCode::kWrite, e, 0, src, {}, ArithOp::kAdd});
  return *this;
}

ProgramBuilder& ProgramBuilder::Compute(VarId dst, Operand a, ArithOp op,
                                        Operand b) {
  ops_.push_back(Op{OpCode::kCompute, EntityId(), dst, a, b, op});
  return *this;
}

ProgramBuilder& ProgramBuilder::Commit() {
  ops_.push_back(Op{OpCode::kCommit, EntityId(), 0, {}, {}, ArithOp::kAdd});
  return *this;
}

Result<Program> ProgramBuilder::Build() {
  // Static validation of protocol rules.
  std::map<EntityId, lock::LockMode> held;
  bool unlocked_any = false;
  bool saw_lock = false;
  bool committed = false;
  std::vector<std::size_t> lock_positions;
  std::uint64_t max_entity_bound = 0;

  auto CheckVar = [this](VarId v) { return v < num_vars_; };
  auto CheckOperand = [&](const Operand& o) {
    return o.kind == Operand::Kind::kImm || CheckVar(o.var);
  };

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    // Built lazily: the happy path validates millions of ops and must not
    // pay for error-message formatting.
    auto where = [&]() {
      return " at op " + std::to_string(i) + " (" + op.ToString() + ") in \"" +
             name_ + "\"";
    };
    if (committed) {
      return Status::InvalidArgument("operation after commit" + where());
    }
    switch (op.code) {
      case OpCode::kLockShared:
      case OpCode::kLockExclusive:
      case OpCode::kUnlock:
      case OpCode::kRead:
      case OpCode::kWrite:
        max_entity_bound = std::max(max_entity_bound, op.entity.value() + 1);
        break;
      default:
        break;
    }
    switch (op.code) {
      case OpCode::kLockShared:
      case OpCode::kLockExclusive: {
        if (unlocked_any) {
          return Status::ProtocolViolation(
              "two-phase rule violated: lock request after unlock" + where());
        }
        auto it = held.find(op.entity);
        if (it != held.end()) {
          const bool upgrade = it->second == lock::LockMode::kShared &&
                               op.code == OpCode::kLockExclusive;
          if (!upgrade) {
            return Status::ProtocolViolation(
                "entity already locked in equal or stronger mode" + where());
          }
        }
        held[op.entity] = op.code == OpCode::kLockShared
                              ? lock::LockMode::kShared
                              : lock::LockMode::kExclusive;
        lock_positions.push_back(i);
        saw_lock = true;
        break;
      }
      case OpCode::kUnlock: {
        if (held.erase(op.entity) == 0) {
          return Status::ProtocolViolation("unlock of entity not held" +
                                           where());
        }
        unlocked_any = true;
        break;
      }
      case OpCode::kRead: {
        if (!held.count(op.entity)) {
          return Status::ProtocolViolation("read without a lock" + where());
        }
        if (!CheckVar(op.dst)) {
          return Status::InvalidArgument("read destination var out of range" +
                                         where());
        }
        break;
      }
      case OpCode::kWrite: {
        auto it = held.find(op.entity);
        if (it == held.end() || it->second != lock::LockMode::kExclusive) {
          return Status::ProtocolViolation(
              "write without an exclusive lock" + where());
        }
        if (!saw_lock) {
          return Status::ProtocolViolation(
              "write before the first lock request" + where());
        }
        if (!CheckOperand(op.a)) {
          return Status::InvalidArgument("write operand var out of range" +
                                         where());
        }
        break;
      }
      case OpCode::kCompute: {
        if (!saw_lock) {
          return Status::ProtocolViolation(
              "local-variable write before the first lock request" + where());
        }
        if (!CheckVar(op.dst) || !CheckOperand(op.a) || !CheckOperand(op.b)) {
          return Status::InvalidArgument("compute var out of range" + where());
        }
        break;
      }
      case OpCode::kCommit: {
        committed = true;
        break;
      }
    }
  }

  Program p;
  p.name_ = std::move(name_);
  p.ops_ = std::move(ops_);
  p.num_vars_ = num_vars_;
  p.initial_vars_ = std::move(initial_vars_);
  p.lock_positions_ = std::move(lock_positions);
  p.max_entity_bound_ = max_entity_bound;
  return p;
}

}  // namespace pardb::txn

#ifndef PARDB_TXN_PROGRAM_IO_H_
#define PARDB_TXN_PROGRAM_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "txn/program.h"

namespace pardb::txn {

// Plain-text program format, one operation per line; '#' starts a comment.
//
//   program transfer      # optional; names the program
//   var v0 = 10           # declares a local with an initial value
//   lockx E0              # exclusive lock request
//   locks E1              # shared lock request
//   read E0 v0            # v0 <- E0
//   write E0 v0           # E0 <- v0      (operand: vN or integer literal)
//   add v0 v0 5           # v0 <- v0 + 5  (also: sub, mul)
//   unlock E0
//   commit
//
// Entities are written E<N>, variables v<N>. Variables may be declared
// implicitly by use; `var` lines additionally set initial values. The
// parser reports the offending line on error, and the result is validated
// by ProgramBuilder (two-phase rule, lock requirements, ...).
Result<Program> ParseProgram(std::string_view text);

// Formats a program in the same syntax; ParseProgram(FormatProgram(p))
// reproduces p operation-for-operation.
std::string FormatProgram(const Program& program);

}  // namespace pardb::txn

#endif  // PARDB_TXN_PROGRAM_IO_H_

#include "txn/optimizer.h"

#include <cstdint>
#include <map>
#include <vector>

namespace pardb::txn {

namespace {

// Object key an op primarily touches (for the scheduler's affinity
// preference): entities in the low space, variables tagged high.
std::uint64_t ObjectKeyOf(const Op& op) {
  switch (op.code) {
    case OpCode::kRead:
    case OpCode::kWrite:
    case OpCode::kUnlock:
    case OpCode::kLockShared:
    case OpCode::kLockExclusive:
      return op.entity.value() << 1;
    case OpCode::kCompute:
      return (static_cast<std::uint64_t>(op.dst) << 1) | 1;
    case OpCode::kCommit:
      return ~0ULL;
  }
  return ~0ULL;
}

bool IsLockOp(const Op& op) {
  return op.code == OpCode::kLockShared || op.code == OpCode::kLockExclusive;
}

// Variables an op reads or writes (conservatively: sharing any variable
// orders two ops).
void CollectVars(const Op& op, std::vector<VarId>* out) {
  out->clear();
  switch (op.code) {
    case OpCode::kRead:
      out->push_back(op.dst);
      break;
    case OpCode::kWrite:
      if (op.a.kind == Operand::Kind::kVar) out->push_back(op.a.var);
      break;
    case OpCode::kCompute:
      out->push_back(op.dst);
      if (op.a.kind == Operand::Kind::kVar) out->push_back(op.a.var);
      if (op.b.kind == Operand::Kind::kVar) out->push_back(op.b.var);
      break;
    default:
      break;
  }
}

}  // namespace

Result<Program> ClusterWrites(const Program& program) {
  const auto& ops = program.ops();
  const std::size_t n = ops.size();

  // Dependency edges as adjacency + indegree, built from "last op that
  // touched this object" chains.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  auto AddEdge = [&](std::size_t from, std::size_t to) {
    succ[from].push_back(to);
    ++indeg[to];
  };

  std::map<std::uint64_t, std::size_t> last_entity_op;  // entity -> op index
  std::map<VarId, std::size_t> last_var_op;
  std::size_t last_lock_op = SIZE_MAX;
  std::size_t first_lock_op = SIZE_MAX;
  std::vector<VarId> vars;

  for (std::size_t i = 0; i < n; ++i) {
    const Op& op = ops[i];
    // Per-entity program order.
    if (op.entity.valid() &&
        (IsLockOp(op) || op.code == OpCode::kUnlock ||
         op.code == OpCode::kRead || op.code == OpCode::kWrite)) {
      auto it = last_entity_op.find(op.entity.value());
      if (it != last_entity_op.end()) AddEdge(it->second, i);
      last_entity_op[op.entity.value()] = i;
    }
    // Per-variable program order.
    CollectVars(op, &vars);
    for (VarId v : vars) {
      auto it = last_var_op.find(v);
      if (it != last_var_op.end() && it->second != i) AddEdge(it->second, i);
      last_var_op[v] = i;
    }
    if (IsLockOp(op)) {
      // Locks keep their acquisition order.
      if (last_lock_op != SIZE_MAX) AddEdge(last_lock_op, i);
      if (first_lock_op == SIZE_MAX) first_lock_op = i;
      last_lock_op = i;
    } else if (op.code != OpCode::kCommit && first_lock_op != SIZE_MAX &&
               i > first_lock_op) {
      // No data/lock op may drift before the first lock request (§4's
      // no-writes-before-first-lock assumption and read-under-lock).
      AddEdge(first_lock_op, i);
    }
    if (op.code == OpCode::kUnlock && last_lock_op != SIZE_MAX &&
        !IsLockOp(ops[i])) {
      // Two-phase rule: every unlock stays after the final lock request.
      if (last_lock_op != i) AddEdge(last_lock_op, i);
    }
  }
  // The two-phase edge above used the running `last_lock_op`; unlocks that
  // appeared before later lock requests in the op list cannot exist in a
  // valid program, so the chain is sound. Commit (if present) goes last.
  std::size_t commit_op = SIZE_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].code == OpCode::kCommit) commit_op = i;
  }
  if (commit_op != SIZE_MAX) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i != commit_op) AddEdge(i, commit_op);
    }
  }

  // Greedy list scheduling: emit ready non-lock ops eagerly (preferring the
  // object of the previously emitted op, then original order); emit the
  // next lock request only when nothing else is ready.
  std::vector<bool> scheduled(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::uint64_t last_object = ~0ULL;
  for (std::size_t emitted = 0; emitted < n; ++emitted) {
    std::size_t pick = SIZE_MAX;
    bool pick_is_lock = true;
    bool pick_matches = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (scheduled[i] || indeg[i] != 0) continue;
      const bool is_lock = IsLockOp(ops[i]);
      const bool matches = !is_lock && ObjectKeyOf(ops[i]) == last_object;
      // Preference: affinity non-lock > other non-lock > lock; ties by
      // original position.
      const bool better =
          pick == SIZE_MAX || (matches && !pick_matches) ||
          (matches == pick_matches && !is_lock && pick_is_lock);
      if (better) {
        pick = i;
        pick_is_lock = is_lock;
        pick_matches = matches;
      }
    }
    if (pick == SIZE_MAX) {
      return Status::Internal("dependency cycle in transaction optimizer");
    }
    scheduled[pick] = true;
    order.push_back(pick);
    last_object = ObjectKeyOf(ops[pick]);
    for (std::size_t s : succ[pick]) --indeg[s];
  }

  // Rebuild through the validating builder.
  ProgramBuilder b(program.name() + "+clustered", program.num_vars());
  for (VarId v = 0; v < program.num_vars(); ++v) {
    b.InitVar(v, program.initial_vars()[v]);
  }
  for (std::size_t i : order) {
    const Op& op = ops[i];
    switch (op.code) {
      case OpCode::kLockShared:
        b.LockShared(op.entity);
        break;
      case OpCode::kLockExclusive:
        b.LockExclusive(op.entity);
        break;
      case OpCode::kUnlock:
        b.Unlock(op.entity);
        break;
      case OpCode::kRead:
        b.Read(op.entity, op.dst);
        break;
      case OpCode::kWrite:
        b.Write(op.entity, op.a);
        break;
      case OpCode::kCompute:
        b.Compute(op.dst, op.a, op.arith, op.b);
        break;
      case OpCode::kCommit:
        b.Commit();
        break;
    }
  }
  return b.Build();
}

}  // namespace pardb::txn

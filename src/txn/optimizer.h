#ifndef PARDB_TXN_OPTIMIZER_H_
#define PARDB_TXN_OPTIMIZER_H_

#include "common/result.h"
#include "txn/program.h"

namespace pardb::txn {

// The paper's §5 closing suggestion, implemented: "possibilities for the
// optimization of transactions intended to run in such systems, perhaps at
// the time of their compilation".
//
// ClusterWrites reorders a program's operations — preserving its meaning —
// so that each object's accesses sit as close to its lock request as
// possible and writes to the same object are adjacent. That is exactly the
// structure Figures 4/5 show to maximise well-defined lock states, so
// single-copy (SDG) rollback loses no extra progress and MCS keeps fewer
// copies.
//
// Semantics preservation (solo execution is bit-identical, concurrent
// executions remain 2PL-valid):
//  * the relative order of operations touching the same entity is kept;
//  * the relative order of operations sharing a local variable is kept;
//  * lock requests keep their original acquisition order (so the workload's
//    deadlock characteristics are comparable);
//  * no read/write/compute moves before the first lock request, no lock
//    request moves after an unlock, commit stays last.
//
// Within those constraints, a greedy list scheduler emits ready non-lock
// operations eagerly — preferring the object it just touched — and delays
// each subsequent lock request until nothing else can run.
Result<Program> ClusterWrites(const Program& program);

}  // namespace pardb::txn

#endif  // PARDB_TXN_OPTIMIZER_H_

#include "txn/compiled.h"

#include <algorithm>

namespace pardb::txn {

namespace {

// 64-bit multiply-fold mix (wyhash-style): one 128-bit multiply per block
// instead of FNV's byte-at-a-time dependency chain — the admission path
// hashes a whole program in a few dozen cycles.
std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  const unsigned __int128 m =
      static_cast<unsigned __int128>(h ^ v) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint64_t>(m) ^ static_cast<std::uint64_t>(m >> 64);
}

// The active payload of an operand: the var id or the immediate, selected
// by the kind (which is hashed/compared separately, so the inactive field
// never influences identity).
std::uint64_t OperandWord(const Operand& o) {
  return o.kind == Operand::Kind::kVar ? o.var
                                       : static_cast<std::uint64_t>(o.imm);
}

// Content hash of the executable part of a program: the op sequence plus
// the var-frame width. Names and initial var values are excluded —
// initial values live in the rollback strategy (built per instance from
// the Program), never in the µop stream.
std::uint64_t HashProgram(const Program& p) {
  std::uint64_t h = MixHash(0x243f6a8885a308d3ULL, p.num_vars());
  for (const Op& op : p.ops()) {
    const std::uint64_t packed =
        static_cast<std::uint64_t>(op.code) |
        (static_cast<std::uint64_t>(op.a.kind) << 8) |
        (static_cast<std::uint64_t>(op.b.kind) << 16) |
        (static_cast<std::uint64_t>(op.arith) << 24) |
        (static_cast<std::uint64_t>(op.dst) << 32);
    h = MixHash(h, packed);
    h = MixHash(h, op.entity.value());
    h = MixHash(h, OperandWord(op.a));
    h = MixHash(h, OperandWord(op.b));
  }
  return h;
}

bool SameOperand(const Operand& x, const Operand& y) {
  return x.kind == y.kind && OperandWord(x) == OperandWord(y);
}

// Executable-content equality, the collision guard behind HashProgram:
// exactly the fields the hash consumes.
bool SameExecutableContent(const Program& a, const Program& b) {
  if (a.num_vars() != b.num_vars() || a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Op& x = a.op(i);
    const Op& y = b.op(i);
    if (x.code != y.code || x.entity != y.entity || x.dst != y.dst ||
        x.arith != y.arith || !SameOperand(x.a, y.a) ||
        !SameOperand(x.b, y.b)) {
      return false;
    }
  }
  return true;
}

// Lowers one operand into the packed (value, flag) form.
std::int64_t LowerOperand(const Operand& o, std::uint8_t var_flag,
                          std::uint8_t* flags) {
  if (o.kind == Operand::Kind::kVar) {
    *flags |= var_flag;
    return static_cast<std::int64_t>(o.var);
  }
  return o.imm;
}

}  // namespace

std::shared_ptr<const CompiledProgram> CompiledProgram::Compile(
    const Program& program) {
  // dst is packed to 16 bits and the pc to 32; programs beyond either bound
  // run interpreted (none exist in practice — the bail-out is a guard, not
  // a code path workloads reach).
  if (program.num_vars() > 0xFFFF) return nullptr;
  if (program.size() >= 0xFFFFFFFFull) return nullptr;

  auto compiled = std::make_shared<CompiledProgram>(Private{});
  compiled->uops_.reserve(program.size());

  const auto last_lock = program.LastLockRequestPosition();
  std::uint32_t lock_count = 0;
  // Entities with an earlier shared lock: a later LX on one of them is the
  // S->X upgrade (the builder's protocol validation makes this the only
  // legal re-lock, and two-phase means no lock follows an unlock — so the
  // flag computed here matches what the lock manager reports at runtime in
  // every interleaving, including re-execution after partial rollback).
  std::vector<std::uint64_t> shared_held;

  for (std::size_t i = 0; i < program.size(); ++i) {
    const Op& op = program.op(i);
    MicroOp u{};
    u.lock_index = lock_count;
    switch (op.code) {
      case OpCode::kLockShared:
      case OpCode::kLockExclusive: {
        const bool exclusive = op.code == OpCode::kLockExclusive;
        u.code = static_cast<std::uint8_t>(exclusive
                                               ? MicroOpCode::kLockExclusive
                                               : MicroOpCode::kLockShared);
        u.entity = op.entity.value();
        if (exclusive &&
            std::find(shared_held.begin(), shared_held.end(),
                      op.entity.value()) != shared_held.end()) {
          u.flags |= kMicroFlagUpgrade;
        }
        if (!exclusive) shared_held.push_back(op.entity.value());
        if (last_lock.has_value() && *last_lock == i) {
          u.flags |= kMicroFlagLastLock;
        }
        ++lock_count;
        break;
      }
      case OpCode::kUnlock:
        u.code = static_cast<std::uint8_t>(MicroOpCode::kUnlock);
        u.entity = op.entity.value();
        break;
      case OpCode::kRead:
        u.code = static_cast<std::uint8_t>(MicroOpCode::kRead);
        u.entity = op.entity.value();
        u.dst = static_cast<std::uint16_t>(op.dst);
        break;
      case OpCode::kWrite:
        u.code = static_cast<std::uint8_t>(MicroOpCode::kWrite);
        u.entity = op.entity.value();
        u.a = LowerOperand(op.a, kMicroFlagAVar, &u.flags);
        break;
      case OpCode::kCompute: {
        u.dst = static_cast<std::uint16_t>(op.dst);
        if (op.a.kind == Operand::Kind::kImm &&
            op.b.kind == Operand::Kind::kImm) {
          // Constant fold: the result is known now; emit a plain load.
          Value v = 0;
          switch (op.arith) {
            case ArithOp::kAdd:
              v = op.a.imm + op.b.imm;
              break;
            case ArithOp::kSub:
              v = op.a.imm - op.b.imm;
              break;
            case ArithOp::kMul:
              v = op.a.imm * op.b.imm;
              break;
          }
          u.code = static_cast<std::uint8_t>(MicroOpCode::kLoadImm);
          u.a = v;
          break;
        }
        switch (op.arith) {
          case ArithOp::kAdd:
            u.code = static_cast<std::uint8_t>(MicroOpCode::kComputeAdd);
            break;
          case ArithOp::kSub:
            u.code = static_cast<std::uint8_t>(MicroOpCode::kComputeSub);
            break;
          case ArithOp::kMul:
            u.code = static_cast<std::uint8_t>(MicroOpCode::kComputeMul);
            break;
        }
        u.a = LowerOperand(op.a, kMicroFlagAVar, &u.flags);
        u.b = LowerOperand(op.b, kMicroFlagBVar, &u.flags);
        break;
      }
      case OpCode::kCommit:
        u.code = static_cast<std::uint8_t>(MicroOpCode::kCommit);
        break;
    }
    compiled->uops_.push_back(u);
  }
  return compiled;
}

void CompileCache::GrowTable() {
  const std::size_t new_size = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<Slot> fresh(new_size);
  const std::size_t mask = new_size - 1;
  for (Slot& s : slots_) {
    if (s.src == nullptr) continue;
    std::size_t i = s.hash & mask;
    while (fresh[i].src != nullptr) i = (i + 1) & mask;
    fresh[i] = std::move(s);
  }
  slots_ = std::move(fresh);
}

std::shared_ptr<const CompiledProgram> CompileCache::Get(
    const std::shared_ptr<const Program>& program) {
  // Grow at 3/4 load, before probing, so the insert below always finds an
  // empty slot.
  if ((entries_ + 1) * 4 > slots_.size() * 3) GrowTable();
  const std::uint64_t h = HashProgram(*program);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = h & mask;
  while (slots_[i].src != nullptr) {
    if (slots_[i].hash == h &&
        SameExecutableContent(*slots_[i].src, *program)) {
      ++stats_.hits;
      return slots_[i].compiled;
    }
    i = (i + 1) & mask;
  }
  ++stats_.compiles;
  auto compiled = CompiledProgram::Compile(*program);
  if (compiled != nullptr) stats_.compiled_bytes += compiled->byte_size();
  slots_[i].hash = h;
  slots_[i].src = program;
  slots_[i].compiled = compiled;
  ++entries_;
  return compiled;
}

}  // namespace pardb::txn

#include "txn/program_io.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace pardb::txn {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // comment until end of line
    tokens.push_back(tok);
  }
  return tokens;
}

Status LineError(std::size_t lineno, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                 msg);
}

bool ParseUint(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseEntity(const std::string& s, EntityId* out) {
  if (s.size() < 2 || (s[0] != 'E' && s[0] != 'e')) return false;
  std::uint64_t v;
  if (!ParseUint(s.substr(1), &v)) return false;
  *out = EntityId(v);
  return true;
}

bool ParseVar(const std::string& s, VarId* out) {
  if (s.size() < 2 || (s[0] != 'v' && s[0] != 'V')) return false;
  std::uint64_t v;
  if (!ParseUint(s.substr(1), &v)) return false;
  *out = static_cast<VarId>(v);
  return true;
}

bool ParseOperand(const std::string& s, Operand* out) {
  VarId var;
  if (ParseVar(s, &var)) {
    *out = Operand::Var(var);
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  const long long imm = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = Operand::Imm(imm);
  return true;
}

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  std::string name = "program";
  std::map<VarId, Value> initials;
  VarId max_var = 0;
  bool any_var = false;

  struct PendingOp {
    std::string keyword;
    std::vector<std::string> args;
    std::size_t lineno;
  };
  std::vector<PendingOp> pending;

  auto NoteVar = [&](VarId v) {
    max_var = std::max(max_var, v);
    any_var = true;
  };

  std::istringstream input{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(input, line)) {
    ++lineno;
    auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string op = tokens[0];
    std::vector<std::string> args(tokens.begin() + 1, tokens.end());
    if (op == "program") {
      if (args.size() != 1) return LineError(lineno, "program expects a name");
      name = args[0];
      continue;
    }
    if (op == "var") {
      // var v0 = 10   |   var v0 10
      if (args.size() == 3 && args[1] == "=") args.erase(args.begin() + 1);
      if (args.size() != 2) {
        return LineError(lineno, "var expects: var vN [=] value");
      }
      VarId v;
      if (!ParseVar(args[0], &v)) {
        return LineError(lineno, "bad variable \"" + args[0] + "\"");
      }
      char* end = nullptr;
      const long long init = std::strtoll(args[1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return LineError(lineno, "bad initial value \"" + args[1] + "\"");
      }
      initials[v] = init;
      NoteVar(v);
      continue;
    }
    // Remember ops; vars must be sized before building.
    for (const std::string& a : args) {
      VarId v;
      if (ParseVar(a, &v)) NoteVar(v);
    }
    pending.push_back(PendingOp{op, std::move(args), lineno});
  }

  ProgramBuilder b(name, any_var ? max_var + 1 : 0);
  for (const auto& [v, init] : initials) b.InitVar(v, init);

  for (const PendingOp& p : pending) {
    const auto n = p.args.size();
    EntityId entity;
    VarId var;
    Operand a, bb;
    if (p.keyword == "lockx" || p.keyword == "locks" ||
        p.keyword == "unlock") {
      if (n != 1 || !ParseEntity(p.args[0], &entity)) {
        return LineError(p.lineno, p.keyword + " expects an entity (E<N>)");
      }
      if (p.keyword == "lockx") {
        b.LockExclusive(entity);
      } else if (p.keyword == "locks") {
        b.LockShared(entity);
      } else {
        b.Unlock(entity);
      }
    } else if (p.keyword == "read") {
      if (n != 2 || !ParseEntity(p.args[0], &entity) ||
          !ParseVar(p.args[1], &var)) {
        return LineError(p.lineno, "read expects: read E<N> v<N>");
      }
      b.Read(entity, var);
    } else if (p.keyword == "write") {
      if (n != 2 || !ParseEntity(p.args[0], &entity) ||
          !ParseOperand(p.args[1], &a)) {
        return LineError(p.lineno, "write expects: write E<N> (v<N>|imm)");
      }
      b.Write(entity, a);
    } else if (p.keyword == "add" || p.keyword == "sub" ||
               p.keyword == "mul") {
      if (n != 3 || !ParseVar(p.args[0], &var) ||
          !ParseOperand(p.args[1], &a) || !ParseOperand(p.args[2], &bb)) {
        return LineError(p.lineno,
                         p.keyword + " expects: " + p.keyword +
                             " v<N> (v<N>|imm) (v<N>|imm)");
      }
      const ArithOp arith = p.keyword == "add"   ? ArithOp::kAdd
                            : p.keyword == "sub" ? ArithOp::kSub
                                                 : ArithOp::kMul;
      b.Compute(var, a, arith, bb);
    } else if (p.keyword == "commit") {
      if (n != 0) return LineError(p.lineno, "commit takes no arguments");
      b.Commit();
    } else {
      return LineError(p.lineno, "unknown operation \"" + p.keyword + "\"");
    }
  }
  return b.Build();
}

std::string FormatProgram(const Program& program) {
  std::ostringstream os;
  os << "program " << program.name() << "\n";
  const auto& init = program.initial_vars();
  for (VarId v = 0; v < program.num_vars(); ++v) {
    os << "var v" << v << " = " << init[v] << "\n";
  }
  auto OperandText = [](const Operand& o) {
    if (o.kind == Operand::Kind::kVar) return "v" + std::to_string(o.var);
    return std::to_string(o.imm);
  };
  for (const Op& op : program.ops()) {
    switch (op.code) {
      case OpCode::kLockExclusive:
        os << "lockx E" << op.entity.value() << "\n";
        break;
      case OpCode::kLockShared:
        os << "locks E" << op.entity.value() << "\n";
        break;
      case OpCode::kUnlock:
        os << "unlock E" << op.entity.value() << "\n";
        break;
      case OpCode::kRead:
        os << "read E" << op.entity.value() << " v" << op.dst << "\n";
        break;
      case OpCode::kWrite:
        os << "write E" << op.entity.value() << " " << OperandText(op.a)
           << "\n";
        break;
      case OpCode::kCompute: {
        const char* kw = op.arith == ArithOp::kAdd   ? "add"
                         : op.arith == ArithOp::kSub ? "sub"
                                                     : "mul";
        os << kw << " v" << op.dst << " " << OperandText(op.a) << " "
           << OperandText(op.b) << "\n";
        break;
      }
      case OpCode::kCommit:
        os << "commit\n";
        break;
    }
  }
  return os.str();
}

}  // namespace pardb::txn

#ifndef PARDB_TXN_PROGRAM_H_
#define PARDB_TXN_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_mode.h"

namespace pardb::txn {

// Index of a local variable within a transaction's frame (paper §2: each
// transaction has local variables L_i with value ranges).
using VarId = std::uint32_t;

// Atomic operations of the transaction model (§2). Programs are
// straight-line: a transaction is exactly the paper's "sequence of atomic
// operations", so the state index of a running transaction equals its
// program counter and rollback is a program-counter reset plus value
// restoration.
enum class OpCode {
  kLockShared,     // LS(entity)
  kLockExclusive,  // LX(entity); on an entity held in S this is an upgrade
  kUnlock,         // publish (if X) and release; enters the shrinking phase
  kRead,           // var <- entity  (requires S or X lock)
  kWrite,          // entity <- operand (requires X lock)
  kCompute,        // var <- operand (arith) operand
  kCommit,         // publish + release everything; must be the last op
};

std::string_view OpCodeName(OpCode code);

// A value source: immediate constant or local variable.
struct Operand {
  enum class Kind { kImm, kVar };
  Kind kind = Kind::kImm;
  Value imm = 0;
  VarId var = 0;

  static Operand Imm(Value v) { return Operand{Kind::kImm, v, 0}; }
  static Operand Var(VarId v) { return Operand{Kind::kVar, 0, v}; }
};

enum class ArithOp { kAdd, kSub, kMul };

struct Op {
  OpCode code;
  EntityId entity;  // lock/unlock/read/write target
  VarId dst = 0;    // kRead / kCompute destination
  Operand a;        // kWrite source; kCompute left operand
  Operand b;        // kCompute right operand
  ArithOp arith = ArithOp::kAdd;

  std::string ToString() const;
};

// An immutable, validated transaction program. Build with ProgramBuilder.
class Program {
 public:
  Program() = default;

  const std::string& name() const { return name_; }
  std::size_t size() const { return ops_.size(); }
  const Op& op(std::size_t i) const { return ops_[i]; }
  const std::vector<Op>& ops() const { return ops_; }
  std::uint32_t num_vars() const { return num_vars_; }
  const std::vector<Value>& initial_vars() const { return initial_vars_; }

  // Program positions of lock requests, in order. Lock request k+1 sits at
  // LockRequestPositions()[k]; the paper's lock state with lock index k is
  // the transaction state immediately before executing it, so the *state
  // index* of lock state k is LockRequestPositions()[k].
  const std::vector<std::size_t>& LockRequestPositions() const {
    return lock_positions_;
  }
  std::size_t NumLockRequests() const { return lock_positions_.size(); }

  // Position of the last lock request, or nullopt for lock-free programs.
  // Models the paper's §5 "declare the execution of the last lock request":
  // once this request is granted the transaction can never again be rolled
  // back, so rollback monitoring may stop.
  std::optional<std::size_t> LastLockRequestPosition() const;

  // Structure metrics (paper §5) -------------------------------------------

  // Total over entities and local variables of (lock index of last write -
  // lock index of first write). 0 means perfectly clustered writes — the
  // paper's recommendation; large values mean writes straddle many lock
  // states and destroy them for single-copy rollback.
  std::uint64_t WriteSpreadScore() const;

  // True when the program has the paper's three distinct phases: all lock
  // requests first (acquisition), then reads/writes/computes (update), then
  // unlocks/commit (release).
  bool IsThreePhase() const;

  std::size_t CountOps(OpCode code) const;

  // One past the largest entity id any op references (0 for entity-free
  // programs). Computed once at Build time so admission can validate
  // "every referenced entity exists" against a dense store prefix with a
  // single comparison instead of a per-op lookup.
  std::uint64_t MaxEntityBound() const { return max_entity_bound_; }

  std::string ToString() const;

  // Copy of this program under a different name. Ops, variables and lock
  // positions are identical, so the compile cache (which excludes names
  // from program identity) serves every renamed instance from one entry —
  // how workload templates model parameterized OLTP statements.
  Program WithName(std::string name) const;

 private:
  friend class ProgramBuilder;

  std::string name_;
  std::vector<Op> ops_;
  std::uint32_t num_vars_ = 0;
  std::vector<Value> initial_vars_;
  std::vector<std::size_t> lock_positions_;
  std::uint64_t max_entity_bound_ = 0;
};

// Builder with full static validation of the paper's protocol rules:
//  * two-phase: no lock request after the first unlock;
//  * reads need a held S or X lock, writes a held X lock;
//  * re-locking a held entity is only legal as an S->X upgrade;
//  * no write (entity or local variable) before the first lock request
//    (paper §4 convenience assumption);
//  * kCommit, if present, must be the final op. Programs without kCommit
//    are implicitly committed by the engine after the last op.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name, std::uint32_t num_vars = 0);

  // Declares local variables with initial values (var ids are dense from 0).
  ProgramBuilder& InitVar(VarId var, Value initial);

  ProgramBuilder& LockShared(EntityId e);
  ProgramBuilder& LockExclusive(EntityId e);
  ProgramBuilder& Unlock(EntityId e);
  ProgramBuilder& Read(EntityId e, VarId dst);
  ProgramBuilder& Write(EntityId e, Operand src);
  ProgramBuilder& WriteImm(EntityId e, Value v) {
    return Write(e, Operand::Imm(v));
  }
  ProgramBuilder& WriteVar(EntityId e, VarId v) {
    return Write(e, Operand::Var(v));
  }
  ProgramBuilder& Compute(VarId dst, Operand a, ArithOp op, Operand b);
  ProgramBuilder& Commit();

  // Validates and produces the program.
  Result<Program> Build();

 private:
  std::string name_;
  std::uint32_t num_vars_;
  std::vector<Value> initial_vars_;
  std::vector<Op> ops_;
};

}  // namespace pardb::txn

#endif  // PARDB_TXN_PROGRAM_H_

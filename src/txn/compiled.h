#ifndef PARDB_TXN_COMPILED_H_
#define PARDB_TXN_COMPILED_H_

// Ahead-of-time compiled transaction programs (DESIGN D16).
//
// The engine used to re-decode the AoS `Op` vector on every step: an OpCode
// switch, two Operand kind branches, an ArithOp switch, a lock-position
// vector walk for the §5 last-lock check, and a granted-count read to name
// the current lock index. Programs are straight-line (§2: the state index
// IS the program counter, rollback is a pc reset), so every one of those
// decisions is static: at admission each program is lowered exactly once
// into a flat array of 32-byte µops with
//   * a single fused opcode byte (arith folded into the opcode, both-imm
//     computes folded into a load of the precomputed result),
//   * pre-resolved raw entity ids and pre-folded immediates,
//   * the lock index every strategy callback needs, pre-annotated per op
//     (a static count of lock requests before the op — invariant under
//     partial rollback, because rollback truncates `granted` to the same
//     prefix it resets the pc to),
//   * the upgrade and §5 last-lock-request flags precomputed on lock ops.
//
// A CompileCache keyed by the executable op content (names excluded: two
// programs with identical op sequences execute identically) makes repeated
// workload templates compile once and share one immutable µop stream.

#include <cstdint>
#include <memory>
#include <vector>

#include "txn/program.h"

namespace pardb::txn {

// Fused opcodes: ArithOp is folded into the code byte and constant
// computes are folded away entirely, so the executor switches exactly once
// per op with no secondary decode.
enum class MicroOpCode : std::uint8_t {
  kLockShared = 0,
  kLockExclusive,
  kUnlock,
  kRead,
  kWrite,
  kComputeAdd,
  kComputeSub,
  kComputeMul,
  kLoadImm,  // var <- precomputed constant (both-imm compute, folded)
  kCommit,
};

// MicroOp::flags bits.
inline constexpr std::uint8_t kMicroFlagAVar = 1;      // a is a VarId
inline constexpr std::uint8_t kMicroFlagBVar = 2;      // b is a VarId
inline constexpr std::uint8_t kMicroFlagUpgrade = 4;   // lock op: S->X upgrade
inline constexpr std::uint8_t kMicroFlagLastLock = 8;  // §5 last lock request

// One decoded op, packed to 32 bytes so two µops share a cache line and a
// typical workload program (6-20 ops) spans 3-10 lines fetched linearly.
struct MicroOp {
  std::uint8_t code;        // MicroOpCode
  std::uint8_t flags;       // kMicroFlag*
  std::uint16_t dst;        // kRead/kCompute*/kLoadImm destination var
  std::uint32_t lock_index; // lock requests granted before this op
  std::uint64_t entity;     // raw entity id (lock/unlock/read/write)
  std::int64_t a;           // immediate value or VarId (kMicroFlagAVar)
  std::int64_t b;           // immediate value or VarId (kMicroFlagBVar)
};
static_assert(sizeof(MicroOp) == 32, "MicroOp must stay cache-line packed");

// An immutable compiled program: the µop stream plus the source metadata
// the engine still needs at admission. Shared (via shared_ptr) between the
// cache and every running instance; never mutated after Compile.
class CompiledProgram {
 public:
  // Passkey: construction goes through Compile, but make_shared needs a
  // public constructor to fold object and control block into one block.
  struct Private {
    explicit Private() = default;
  };
  explicit CompiledProgram(Private) {}

  // Lowers `program` or returns nullptr when it cannot be represented
  // (destination vars beyond uint16, or sizes beyond uint32 — such programs
  // simply run on the interpreted fallback path).
  static std::shared_ptr<const CompiledProgram> Compile(
      const Program& program);

  const MicroOp* uops() const { return uops_.data(); }
  std::size_t size() const { return uops_.size(); }
  std::size_t byte_size() const { return uops_.size() * sizeof(MicroOp); }

 private:
  std::vector<MicroOp> uops_;
};

// Per-engine compile cache (engines are single-threaded; no locking).
// Keyed by the executable content of the op sequence — program names are
// deliberately excluded, so a workload emitting "txn-0", "txn-1", ... over
// repeated templates still hits. Initial var values are also excluded:
// they live in the per-instance rollback strategy, never in the µop
// stream, so programs differing only in seed values share one compilation.
//
// Open-addressed flat table probed by a block-mixed hash of the op fields;
// a lookup materializes no key bytes, so the admission path costs one
// pass over the ops plus a probe — no allocation on hit, and on miss only
// the compiled program itself (plus amortized table growth).
class CompileCache {
 public:
  struct Stats {
    std::uint64_t compiles = 0;      // distinct programs lowered
    std::uint64_t hits = 0;          // admissions served from the cache
    std::uint64_t compiled_bytes = 0;  // total µop bytes resident
  };

  // Returns the compiled form of `program`, compiling on first sight.
  // Returns nullptr (and caches the negative result) for programs the
  // compiler rejects. The cache retains `program` as the collision guard
  // for its slot, so entries pin their source programs alive.
  std::shared_ptr<const CompiledProgram> Get(
      const std::shared_ptr<const Program>& program);

  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::shared_ptr<const Program> src;  // nullptr marks an empty slot
    std::shared_ptr<const CompiledProgram> compiled;
  };

  void GrowTable();

  std::vector<Slot> slots_;  // power-of-two size; linear probing
  std::size_t entries_ = 0;
  Stats stats_;
};

}  // namespace pardb::txn

#endif  // PARDB_TXN_COMPILED_H_

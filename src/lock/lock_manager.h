#ifndef PARDB_LOCK_LOCK_MANAGER_H_
#define PARDB_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_mode.h"
#include "obs/probe.h"

namespace pardb::lock {

// The answer to a lock request (paper §2 rules 1-2: grant when available,
// otherwise make the requester wait). Rule 3 — deadlock intervention — is
// the Engine's job, fed by `blockers`.
struct RequestOutcome {
  bool granted = false;
  // When not granted: the transactions this request now waits for. Under
  // WaitEdgePolicy::kHoldersOnly these are the incompatible holders (the
  // paper's model); under kHoldersAndQueue, incompatible queued waiters
  // ahead of the request are included as well.
  std::vector<TxnId> blockers;
  // True when the request upgrades a held shared lock to exclusive.
  bool is_upgrade = false;
};

// The allocation-free answer of LockManager::TryRequest: the grant/wait
// decision without the blocker list (which the hot path never reads).
struct RequestResult {
  bool granted = false;
  bool is_upgrade = false;
};

// A lock grant performed while processing a release; the Engine resumes
// these transactions.
struct Grant {
  TxnId txn;
  EntityId entity;
  LockMode mode;
  bool was_upgrade = false;
};

// The pending request of a waiting transaction.
struct PendingRequest {
  EntityId entity;
  LockMode mode;
  bool is_upgrade = false;
};

// Which arcs the waits-for graph should contain for a waiting request.
enum class WaitEdgePolicy {
  // Arcs only from current incompatible holders — the paper's concurrency
  // graph G(T) (§3.0). Complete for deadlock detection when shared
  // requests may bypass the queue (see Options::fifo_fairness).
  kHoldersOnly,
  // Arcs from incompatible holders and from incompatible waiters queued
  // ahead. Required for completeness when fifo_fairness forces compatible
  // requests to queue behind incompatible ones.
  kHoldersAndQueue,
};

// Table of entity locks with FIFO wait queues.
//
// Grant discipline:
//  * a request is granted immediately iff it is compatible with every
//    current holder and no incompatible request waits ahead of it
//    (with fifo_fairness, *any* waiting request ahead blocks it);
//  * an upgrade (X requested while holding S) is granted immediately iff
//    the requester is the sole holder; otherwise it waits at the front of
//    the queue;
//  * on release, the queue head is granted while grantable (a run of
//    compatible shared requests is granted together).
//
// The manager is a passive table: it never sleeps or spins. Blocking is
// represented by queue membership; the Engine owns scheduling.
//
// Layout (DESIGN D15): entity ids index a flat slot vector through a
// dense-id remap assigned at first touch, with an intrusive free list
// recycling slots whose holder set and queue are both empty; holder and
// waiter lists are inline-capacity vectors spilling into a per-manager
// arena, so steady-state lock operations perform no hashing and no heap
// allocation. Holder lists are kept in grant order internally; every
// snapshot/export site (Holders, HeldBy, StateDigest, ToString) sorts at
// emission, which is what keeps DOT/JSON/digest output byte-identical to
// the ordered-map layout this replaced.
class LockManager {
 public:
  struct Options {
    // false (paper model): a shared request compatible with all holders is
    // granted even when exclusive requests wait in the queue (writers can
    // starve; the paper explicitly leaves fairness out of scope).
    // true: strict FIFO — nothing bypasses the queue.
    bool fifo_fairness = false;
    WaitEdgePolicy wait_edge_policy = WaitEdgePolicy::kHoldersOnly;
  };

  LockManager() : LockManager(Options{}) {}
  explicit LockManager(Options options) : options_(options) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  const Options& options() const { return options_; }

  // Installs telemetry counters (nullptr to detach). Not owned; must
  // outlive the manager or be detached first. Counter updates are
  // accumulated locally and pushed by FlushProbe — detaching flushes.
  void set_probe(const obs::LockProbe* probe) {
    if (probe == nullptr) FlushProbe();
    probe_ = probe;
  }

  // Pushes the locally batched counter deltas into the probe's atomics.
  // The engine calls this at quantum boundaries; totals observed after a
  // flush are identical to what per-operation updates would have produced.
  void FlushProbe();

  // Pre-sizes the entity-slot remap for `n` dense entity ids (capacity
  // hint only; the table grows on first touch regardless).
  void ReserveEntities(std::size_t n);
  // Pre-sizes per-transaction state for `n` dense transaction ids.
  void ReserveTxns(std::size_t n);

  // Requests `mode` on `entity` for `txn`. Errors:
  //  * FailedPrecondition — txn is already waiting for some entity;
  //  * ProtocolViolation — txn already holds an equal-or-stronger lock.
  Result<RequestOutcome> Request(TxnId txn, EntityId entity, LockMode mode);

  // Hot-path variant of Request: identical state transition, but the
  // blocker list is not materialized (no allocation on the wait path).
  // Callers that need the blockers read them afterwards via
  // AppendBlockersOf, which reproduces the same sorted-unique list.
  Result<RequestResult> TryRequest(TxnId txn, EntityId entity, LockMode mode);

  // Removes txn's pending wait (victim rollback cancels its request).
  // NotFound when txn is not waiting for `entity`. Cancelling can unblock
  // requests queued behind the cancelled one; they are granted and
  // appended to *out.
  Status CancelWaitInto(TxnId txn, EntityId entity, std::vector<Grant>* out);
  Result<std::vector<Grant>> CancelWait(TxnId txn, EntityId entity);

  // Releases txn's held lock on `entity` and appends newly grantable
  // waiters to *out. NotFound when the lock is not held.
  Status ReleaseInto(TxnId txn, EntityId entity, std::vector<Grant>* out);
  Result<std::vector<Grant>> Release(TxnId txn, EntityId entity);

  // Downgrades txn's exclusive lock on `entity` to shared (a rollback that
  // undoes an S->X upgrade but keeps the original shared request). Grants
  // newly compatible waiters. NotFound when no exclusive lock is held.
  Status DowngradeInto(TxnId txn, EntityId entity, std::vector<Grant>* out);
  Result<std::vector<Grant>> Downgrade(TxnId txn, EntityId entity);

  // Releases every lock txn holds (commit or total removal) and cancels
  // its pending wait if any. Returns all grants performed.
  std::vector<Grant> ReleaseAll(TxnId txn);

  // Introspection -----------------------------------------------------------

  // Current holders of entity with their modes, ordered by txn id.
  std::vector<std::pair<TxnId, LockMode>> Holders(EntityId entity) const;
  // Waiting transactions on entity in queue order.
  std::vector<std::pair<TxnId, LockMode>> WaitQueue(EntityId entity) const;
  std::optional<LockMode> HeldMode(TxnId txn, EntityId entity) const;
  bool IsWaiting(TxnId txn) const;
  std::optional<PendingRequest> Waiting(TxnId txn) const;
  // Entities txn currently holds, with modes, ordered by entity id.
  std::vector<std::pair<EntityId, LockMode>> HeldBy(TxnId txn) const;
  std::size_t HeldCount(TxnId txn) const;
  // Transactions currently blocked in some wait queue (the live gauge
  // pardb_waiting_txns reads this).
  std::size_t WaitingCount() const { return waiting_count_; }

  // True when any transaction waits on `entity` — the allocation-free
  // fast-path guard for waits-for edge refresh.
  bool HasWaiters(EntityId entity) const {
    const EntityState* es = SlotFor(entity);
    return es != nullptr && !es->queue.empty();
  }

  // Invokes fn(TxnId, LockMode) for each waiter of `entity` in queue
  // order, without materializing a vector.
  template <typename Fn>
  void ForEachWaiter(EntityId entity, Fn&& fn) const {
    const EntityState* es = SlotFor(entity);
    if (es == nullptr) return;
    for (const Waiter& w : es->queue) fn(w.txn, w.mode);
  }

  // Blockers of txn's pending request under the configured edge policy.
  // Empty when txn is not waiting (or is waiting purely on queue order
  // under kHoldersOnly).
  std::vector<TxnId> BlockersOf(TxnId txn) const;
  // Appends the same blockers to *out (sorted, deduplicated) without
  // allocating when out has capacity.
  void AppendBlockersOf(TxnId txn, std::vector<TxnId>* out) const;

  // Appends every entity txn holds to *out (unsorted; callers needing the
  // HeldBy order sort the appended range by entity id).
  void AppendHeldEntities(TxnId txn, std::vector<EntityId>* out) const;

  // Deterministic FNV digest of the whole lock table: holders (with modes,
  // in txn order) and wait queues (in queue order) of every entity.
  // Per-entity digests are XOR-combined so slot order cannot leak into
  // the result. Feeds the decision journal's epoch checksums (DESIGN D14).
  std::uint64_t StateDigest() const;

  // Debug dump of the whole lock table.
  std::string ToString() const;

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct HolderEntry {
    TxnId txn;
    LockMode mode;
  };

  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool is_upgrade;
  };

  struct EntityState {
    EntityId entity;  // back-pointer; invalid while the slot is free
    std::uint32_t next_free = kNoSlot;  // intrusive free-list link
    SmallVec<HolderEntry, 4> holders;   // grant order; sorted at emission
    SmallVec<Waiter, 4> queue;          // FIFO order

    const HolderEntry* FindHolder(TxnId txn) const {
      for (const HolderEntry& h : holders) {
        if (h.txn == txn) return &h;
      }
      return nullptr;
    }
    HolderEntry* FindHolder(TxnId txn) {
      for (HolderEntry& h : holders) {
        if (h.txn == txn) return &h;
      }
      return nullptr;
    }
  };

  struct HeldEntry {
    EntityId entity;
    LockMode mode;
  };

  // Per-transaction lock state, direct-indexed by dense txn id.
  struct TxnState {
    SmallVec<HeldEntry, 8> held;  // grant order; sorted at emission
    EntityId waiting_for;         // invalid when not waiting

    const HeldEntry* FindHeld(EntityId entity) const {
      for (const HeldEntry& h : held) {
        if (h.entity == entity) return &h;
      }
      return nullptr;
    }
    HeldEntry* FindHeld(EntityId entity) {
      for (HeldEntry& h : held) {
        if (h.entity == entity) return &h;
      }
      return nullptr;
    }
  };

  // Slot accessors: SlotFor returns nullptr when the entity has no live
  // slot; EnsureSlot admits the entity into the dense remap (recycling a
  // free slot when one exists).
  const EntityState* SlotFor(EntityId entity) const {
    const std::uint64_t v = entity.value();
    if (v >= slot_of_.size() || slot_of_[v] == kNoSlot) return nullptr;
    return &slots_[slot_of_[v]];
  }
  EntityState* SlotFor(EntityId entity) {
    const std::uint64_t v = entity.value();
    if (v >= slot_of_.size() || slot_of_[v] == kNoSlot) return nullptr;
    return &slots_[slot_of_[v]];
  }
  EntityState& EnsureSlot(EntityId entity);
  // Returns es's slot to the free list when it holds nothing and nobody
  // waits (keeping allocated spill capacity for reuse).
  void MaybeFreeSlot(EntityState& es);

  const TxnState* StateFor(TxnId txn) const {
    const std::uint64_t v = txn.value();
    return v < txn_state_.size() ? &txn_state_[v] : nullptr;
  }
  TxnState* StateFor(TxnId txn) {
    const std::uint64_t v = txn.value();
    return v < txn_state_.size() ? &txn_state_[v] : nullptr;
  }
  TxnState& EnsureTxn(TxnId txn);

  // Sets holder `txn` to `mode`, inserting or overwriting (an upgrade
  // rewrites the shared entry in place, preserving grant order).
  static void UpsertHolder(EntityState& es, TxnId txn, LockMode mode);
  void UpsertHeld(TxnId txn, EntityId entity, LockMode mode);
  void EraseHeld(TxnId txn, EntityId entity);

  // True when `w` can be granted right now given holders and the queue
  // segment ahead of it. `position` is w's index in the queue (or the
  // would-be index for a new request = queue size).
  bool Grantable(const EntityState& es, const Waiter& w,
                 std::size_t position) const;

  // Grants the longest grantable prefix of the queue; appends to out.
  void ProcessQueue(EntityState& es, std::vector<Grant>* out);

  // Appends blockers (sorted, deduplicated) to *out.
  void AppendBlockers(const EntityState& es, const Waiter& w,
                      std::size_t position, std::vector<TxnId>* out) const;

  Options options_;
  const obs::LockProbe* probe_ = nullptr;  // may be null

  // Locally batched probe counters, pushed by FlushProbe (tentpole (d):
  // no atomic ops on the per-step path).
  struct ProbeDelta {
    std::uint64_t requests = 0;
    std::uint64_t grants_immediate = 0;
    std::uint64_t queued = 0;
    std::uint64_t grants_on_release = 0;
    std::uint64_t cancels = 0;
    std::int64_t max_queue_depth = 0;  // local high-water mark
  };
  ProbeDelta delta_;

  Arena arena_;
  std::vector<EntityState> slots_;
  std::vector<std::uint32_t> slot_of_;  // entity id -> slot index
  std::uint32_t free_head_ = kNoSlot;
  std::vector<TxnState> txn_state_;  // txn id -> lock state
  std::size_t waiting_count_ = 0;
};

}  // namespace pardb::lock

#endif  // PARDB_LOCK_LOCK_MANAGER_H_

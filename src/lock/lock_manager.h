#ifndef PARDB_LOCK_LOCK_MANAGER_H_
#define PARDB_LOCK_LOCK_MANAGER_H_

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_mode.h"
#include "obs/probe.h"

namespace pardb::lock {

// The answer to a lock request (paper §2 rules 1-2: grant when available,
// otherwise make the requester wait). Rule 3 — deadlock intervention — is
// the Engine's job, fed by `blockers`.
struct RequestOutcome {
  bool granted = false;
  // When not granted: the transactions this request now waits for. Under
  // WaitEdgePolicy::kHoldersOnly these are the incompatible holders (the
  // paper's model); under kHoldersAndQueue, incompatible queued waiters
  // ahead of the request are included as well.
  std::vector<TxnId> blockers;
  // True when the request upgrades a held shared lock to exclusive.
  bool is_upgrade = false;
};

// A lock grant performed while processing a release; the Engine resumes
// these transactions.
struct Grant {
  TxnId txn;
  EntityId entity;
  LockMode mode;
  bool was_upgrade = false;
};

// The pending request of a waiting transaction.
struct PendingRequest {
  EntityId entity;
  LockMode mode;
  bool is_upgrade = false;
};

// Which arcs the waits-for graph should contain for a waiting request.
enum class WaitEdgePolicy {
  // Arcs only from current incompatible holders — the paper's concurrency
  // graph G(T) (§3.0). Complete for deadlock detection when shared
  // requests may bypass the queue (see Options::fifo_fairness).
  kHoldersOnly,
  // Arcs from incompatible holders and from incompatible waiters queued
  // ahead. Required for completeness when fifo_fairness forces compatible
  // requests to queue behind incompatible ones.
  kHoldersAndQueue,
};

// Table of entity locks with FIFO wait queues.
//
// Grant discipline:
//  * a request is granted immediately iff it is compatible with every
//    current holder and no incompatible request waits ahead of it
//    (with fifo_fairness, *any* waiting request ahead blocks it);
//  * an upgrade (X requested while holding S) is granted immediately iff
//    the requester is the sole holder; otherwise it waits at the front of
//    the queue;
//  * on release, the queue head is granted while grantable (a run of
//    compatible shared requests is granted together).
//
// The manager is a passive table: it never sleeps or spins. Blocking is
// represented by queue membership; the Engine owns scheduling.
class LockManager {
 public:
  struct Options {
    // false (paper model): a shared request compatible with all holders is
    // granted even when exclusive requests wait in the queue (writers can
    // starve; the paper explicitly leaves fairness out of scope).
    // true: strict FIFO — nothing bypasses the queue.
    bool fifo_fairness = false;
    WaitEdgePolicy wait_edge_policy = WaitEdgePolicy::kHoldersOnly;
  };

  LockManager() : LockManager(Options{}) {}
  explicit LockManager(Options options) : options_(options) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  const Options& options() const { return options_; }

  // Installs telemetry counters (nullptr to detach). Not owned; must
  // outlive the manager or be detached first.
  void set_probe(const obs::LockProbe* probe) { probe_ = probe; }

  // Requests `mode` on `entity` for `txn`. Errors:
  //  * FailedPrecondition — txn is already waiting for some entity;
  //  * ProtocolViolation — txn already holds an equal-or-stronger lock.
  Result<RequestOutcome> Request(TxnId txn, EntityId entity, LockMode mode);

  // Removes txn's pending wait (victim rollback cancels its request).
  // NotFound when txn is not waiting for `entity`. Cancelling can unblock
  // requests queued behind the cancelled one; they are granted and
  // returned.
  Result<std::vector<Grant>> CancelWait(TxnId txn, EntityId entity);

  // Releases txn's held lock on `entity` and grants newly grantable
  // waiters. NotFound when the lock is not held.
  Result<std::vector<Grant>> Release(TxnId txn, EntityId entity);

  // Downgrades txn's exclusive lock on `entity` to shared (a rollback that
  // undoes an S->X upgrade but keeps the original shared request). Grants
  // newly compatible waiters. NotFound when no exclusive lock is held.
  Result<std::vector<Grant>> Downgrade(TxnId txn, EntityId entity);

  // Releases every lock txn holds (commit or total removal) and cancels
  // its pending wait if any. Returns all grants performed.
  std::vector<Grant> ReleaseAll(TxnId txn);

  // Introspection -----------------------------------------------------------

  // Current holders of entity with their modes, ordered by txn id.
  std::vector<std::pair<TxnId, LockMode>> Holders(EntityId entity) const;
  // Waiting transactions on entity in queue order.
  std::vector<std::pair<TxnId, LockMode>> WaitQueue(EntityId entity) const;
  std::optional<LockMode> HeldMode(TxnId txn, EntityId entity) const;
  bool IsWaiting(TxnId txn) const;
  std::optional<PendingRequest> Waiting(TxnId txn) const;
  // Entities txn currently holds, with modes, ordered by entity id.
  std::vector<std::pair<EntityId, LockMode>> HeldBy(TxnId txn) const;
  std::size_t HeldCount(TxnId txn) const;
  // Transactions currently blocked in some wait queue (the live gauge
  // pardb_waiting_txns reads this).
  std::size_t WaitingCount() const { return waiting_.size(); }

  // Blockers of txn's pending request under the configured edge policy.
  // Empty when txn is not waiting (or is waiting purely on queue order
  // under kHoldersOnly).
  std::vector<TxnId> BlockersOf(TxnId txn) const;

  // Deterministic FNV digest of the whole lock table: holders (with modes)
  // and wait queues (in queue order) of every entity. Per-entity digests
  // are XOR-combined so the unordered table iteration cannot leak its
  // order into the result. Feeds the decision journal's epoch checksums
  // (DESIGN D14).
  std::uint64_t StateDigest() const;

  // Debug dump of the whole lock table.
  std::string ToString() const;

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool is_upgrade;
  };

  struct EntityState {
    std::map<TxnId, LockMode> holders;
    std::deque<Waiter> queue;
  };

  // True when `w` can be granted right now given holders and the queue
  // segment ahead of it. `position` is w's index in the queue (or the
  // would-be index for a new request = queue size).
  bool Grantable(const EntityState& es, const Waiter& w,
                 std::size_t position) const;

  // Grants the longest grantable prefix of the queue; appends to out.
  void ProcessQueue(EntityId entity, EntityState& es, std::vector<Grant>* out);

  std::vector<TxnId> ComputeBlockers(const EntityState& es, const Waiter& w,
                                     std::size_t position) const;

  Options options_;
  const obs::LockProbe* probe_ = nullptr;  // may be null
  std::unordered_map<EntityId, EntityState> table_;
  std::unordered_map<TxnId, std::map<EntityId, LockMode>> held_;
  std::unordered_map<TxnId, EntityId> waiting_;
};

}  // namespace pardb::lock

#endif  // PARDB_LOCK_LOCK_MANAGER_H_

#include "lock/lock_manager.h"

#include <algorithm>
#include <sstream>

#include "obs/journal.h"

namespace pardb::lock {

namespace {

std::string Describe(TxnId txn, EntityId entity) {
  std::ostringstream os;
  os << txn << "/" << entity;
  return os.str();
}

}  // namespace

void LockManager::FlushProbe() {
  if (probe_ == nullptr) return;
  if (probe_->requests != nullptr && delta_.requests != 0) {
    probe_->requests->Inc(delta_.requests);
  }
  if (probe_->grants_immediate != nullptr && delta_.grants_immediate != 0) {
    probe_->grants_immediate->Inc(delta_.grants_immediate);
  }
  if (probe_->queued != nullptr && delta_.queued != 0) {
    probe_->queued->Inc(delta_.queued);
  }
  if (probe_->grants_on_release != nullptr &&
      delta_.grants_on_release != 0) {
    probe_->grants_on_release->Inc(delta_.grants_on_release);
  }
  if (probe_->cancels != nullptr && delta_.cancels != 0) {
    probe_->cancels->Inc(delta_.cancels);
  }
  if (probe_->max_queue_depth != nullptr && delta_.max_queue_depth != 0) {
    // The local value is a monotone high-water mark; SetMax is idempotent,
    // so re-pushing it every flush is correct.
    probe_->max_queue_depth->SetMax(delta_.max_queue_depth);
  }
  delta_.requests = 0;
  delta_.grants_immediate = 0;
  delta_.queued = 0;
  delta_.grants_on_release = 0;
  delta_.cancels = 0;
}

void LockManager::ReserveEntities(std::size_t n) {
  if (slot_of_.size() < n) slot_of_.resize(n, kNoSlot);
  slots_.reserve(n);
}

void LockManager::ReserveTxns(std::size_t n) {
  if (txn_state_.size() >= n) return;
  const std::size_t old = txn_state_.size();
  txn_state_.resize(n);
  for (std::size_t i = old; i < n; ++i) {
    txn_state_[i].held.set_arena(&arena_);
  }
}

LockManager::EntityState& LockManager::EnsureSlot(EntityId entity) {
  const std::uint64_t v = entity.value();
  if (v >= slot_of_.size()) slot_of_.resize(v + 1, kNoSlot);
  std::uint32_t s = slot_of_[v];
  if (s != kNoSlot) return slots_[s];
  if (free_head_ != kNoSlot) {
    s = free_head_;
    free_head_ = slots_[s].next_free;
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_[s].holders.set_arena(&arena_);
    slots_[s].queue.set_arena(&arena_);
  }
  slots_[s].entity = entity;
  slots_[s].next_free = kNoSlot;
  slot_of_[v] = s;
  return slots_[s];
}

void LockManager::MaybeFreeSlot(EntityState& es) {
  if (!es.holders.empty() || !es.queue.empty()) return;
  const std::uint32_t s =
      static_cast<std::uint32_t>(&es - slots_.data());
  slot_of_[es.entity.value()] = kNoSlot;
  es.entity = EntityId();
  es.next_free = free_head_;
  free_head_ = s;
}

LockManager::TxnState& LockManager::EnsureTxn(TxnId txn) {
  const std::uint64_t v = txn.value();
  if (v >= txn_state_.size()) ReserveTxns(v + 1);
  return txn_state_[v];
}

void LockManager::UpsertHolder(EntityState& es, TxnId txn, LockMode mode) {
  if (HolderEntry* h = es.FindHolder(txn)) {
    h->mode = mode;
    return;
  }
  es.holders.push_back(HolderEntry{txn, mode});
}

void LockManager::UpsertHeld(TxnId txn, EntityId entity, LockMode mode) {
  TxnState& ts = EnsureTxn(txn);
  if (HeldEntry* h = ts.FindHeld(entity)) {
    h->mode = mode;
    return;
  }
  ts.held.push_back(HeldEntry{entity, mode});
}

void LockManager::EraseHeld(TxnId txn, EntityId entity) {
  TxnState* ts = StateFor(txn);
  if (ts == nullptr) return;
  for (std::size_t i = 0; i < ts->held.size(); ++i) {
    if (ts->held[i].entity == entity) {
      ts->held.erase_at(i);
      return;
    }
  }
}

bool LockManager::Grantable(const EntityState& es, const Waiter& w,
                            std::size_t position) const {
  // Upgrades are grantable iff the requester is the sole holder.
  if (w.is_upgrade) {
    return es.holders.size() == 1 && es.holders[0].txn == w.txn;
  }
  for (const HolderEntry& h : es.holders) {
    if (h.txn == w.txn) continue;  // cannot happen for non-upgrades
    if (!Compatible(h.mode, w.mode)) return false;
  }
  // Queue discipline: under fifo_fairness nothing passes a waiter; in the
  // paper model a compatible request passes waiting incompatible ones.
  const std::size_t ahead = std::min(position, es.queue.size());
  for (std::size_t i = 0; i < ahead; ++i) {
    const Waiter& q = es.queue[i];
    if (options_.fifo_fairness) return false;
    // Shared bypass: S may pass X waiters; but an X request never passes
    // anyone (it is incompatible with whatever the waiter ahead wants or
    // holds ambitions for).
    if (w.mode == LockMode::kExclusive) return false;
    if (q.mode == LockMode::kShared) {
      // Two shared requests queued: if the one ahead is not grantable the
      // entity has an X holder, so neither is this one; conservatively
      // keep order.
      return false;
    }
    // q wants X, w wants S: bypass allowed in the paper model.
  }
  return true;
}

void LockManager::AppendBlockers(const EntityState& es, const Waiter& w,
                                 std::size_t position,
                                 std::vector<TxnId>* out) const {
  const std::size_t base = out->size();
  for (const HolderEntry& h : es.holders) {
    if (h.txn == w.txn) continue;
    if (w.is_upgrade || !Compatible(h.mode, w.mode)) out->push_back(h.txn);
  }
  if (options_.wait_edge_policy == WaitEdgePolicy::kHoldersAndQueue) {
    const std::size_t ahead = std::min(position, es.queue.size());
    for (std::size_t i = 0; i < ahead; ++i) {
      const Waiter& q = es.queue[i];
      if (q.txn == w.txn) continue;
      if (!Compatible(q.mode, w.mode) || !Compatible(w.mode, q.mode)) {
        out->push_back(q.txn);
      } else if (options_.fifo_fairness) {
        out->push_back(q.txn);
      }
    }
  }
  std::sort(out->begin() + base, out->end());
  out->erase(std::unique(out->begin() + base, out->end()), out->end());
}

Result<RequestOutcome> LockManager::Request(TxnId txn, EntityId entity,
                                            LockMode mode) {
  auto r = TryRequest(txn, entity, mode);
  if (!r.ok()) return r.status();
  RequestOutcome out;
  out.granted = r.value().granted;
  out.is_upgrade = r.value().is_upgrade;
  if (!out.granted) AppendBlockersOf(txn, &out.blockers);
  return out;
}

Result<RequestResult> LockManager::TryRequest(TxnId txn, EntityId entity,
                                              LockMode mode) {
  if (IsWaiting(txn)) {
    return Status::FailedPrecondition(
        "transaction already waiting; one pending request at a time (" +
        Describe(txn, entity) + ")");
  }
  EntityState& es = EnsureSlot(entity);
  bool is_upgrade = false;
  if (const HolderEntry* h = es.FindHolder(txn)) {
    if (h->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::ProtocolViolation(
          "lock already held in equal or stronger mode (" +
          Describe(txn, entity) + ")");
    }
    is_upgrade = true;  // holds S, wants X
  }

  if (probe_ != nullptr) ++delta_.requests;
  Waiter w{txn, mode, is_upgrade};
  if (Grantable(es, w, es.queue.size())) {
    UpsertHolder(es, txn, mode);
    UpsertHeld(txn, entity, mode);
    if (probe_ != nullptr) ++delta_.grants_immediate;
    return RequestResult{true, is_upgrade};
  }

  // Enqueue: upgrades go to the front so the shrinking holder set reaches
  // them first; everything else is FIFO.
  if (is_upgrade) {
    es.queue.insert_at(0, w);
  } else {
    es.queue.push_back(w);
  }
  EnsureTxn(txn).waiting_for = entity;
  ++waiting_count_;
  if (probe_ != nullptr) {
    ++delta_.queued;
    delta_.max_queue_depth = std::max(
        delta_.max_queue_depth, static_cast<std::int64_t>(es.queue.size()));
  }
  return RequestResult{false, is_upgrade};
}

Status LockManager::CancelWaitInto(TxnId txn, EntityId entity,
                                   std::vector<Grant>* out) {
  TxnState* ts = StateFor(txn);
  if (ts == nullptr || ts->waiting_for != entity) {
    return Status::NotFound("transaction is not waiting for entity (" +
                            Describe(txn, entity) + ")");
  }
  EntityState* es = SlotFor(entity);
  std::size_t qpos = es == nullptr ? 0 : es->queue.size();
  if (es != nullptr) {
    for (std::size_t i = 0; i < es->queue.size(); ++i) {
      if (es->queue[i].txn == txn) {
        qpos = i;
        break;
      }
    }
  }
  if (es == nullptr || qpos == es->queue.size()) {
    return Status::Internal("waiting_ and queue out of sync for " +
                            Describe(txn, entity));
  }
  es->queue.erase_at(qpos);
  ts->waiting_for = EntityId();
  --waiting_count_;
  if (probe_ != nullptr) ++delta_.cancels;
  ProcessQueue(*es, out);
  MaybeFreeSlot(*es);
  return Status::OK();
}

Result<std::vector<Grant>> LockManager::CancelWait(TxnId txn,
                                                   EntityId entity) {
  std::vector<Grant> grants;
  PARDB_RETURN_IF_ERROR(CancelWaitInto(txn, entity, &grants));
  return grants;
}

Status LockManager::ReleaseInto(TxnId txn, EntityId entity,
                                std::vector<Grant>* out) {
  EntityState* es = SlotFor(entity);
  if (es == nullptr) {
    return Status::NotFound("lock not held (" + Describe(txn, entity) + ")");
  }
  bool erased = false;
  for (std::size_t i = 0; i < es->holders.size(); ++i) {
    if (es->holders[i].txn == txn) {
      es->holders.erase_at(i);
      erased = true;
      break;
    }
  }
  if (!erased) {
    return Status::NotFound("lock not held (" + Describe(txn, entity) + ")");
  }
  EraseHeld(txn, entity);
  // If txn released the shared lock backing its own queued upgrade, the
  // upgrade degenerates to a plain request (otherwise it could never be
  // granted: upgrades require being the sole holder).
  for (Waiter& w : es->queue) {
    if (w.txn == txn && w.is_upgrade) w.is_upgrade = false;
  }
  ProcessQueue(*es, out);
  MaybeFreeSlot(*es);
  return Status::OK();
}

Result<std::vector<Grant>> LockManager::Release(TxnId txn, EntityId entity) {
  std::vector<Grant> grants;
  PARDB_RETURN_IF_ERROR(ReleaseInto(txn, entity, &grants));
  return grants;
}

Status LockManager::DowngradeInto(TxnId txn, EntityId entity,
                                  std::vector<Grant>* out) {
  EntityState* es = SlotFor(entity);
  if (es == nullptr) {
    return Status::NotFound("lock not held (" + Describe(txn, entity) + ")");
  }
  HolderEntry* h = es->FindHolder(txn);
  if (h == nullptr || h->mode != LockMode::kExclusive) {
    return Status::NotFound("exclusive lock not held (" +
                            Describe(txn, entity) + ")");
  }
  h->mode = LockMode::kShared;
  UpsertHeld(txn, entity, LockMode::kShared);
  ProcessQueue(*es, out);
  return Status::OK();
}

Result<std::vector<Grant>> LockManager::Downgrade(TxnId txn,
                                                  EntityId entity) {
  std::vector<Grant> grants;
  PARDB_RETURN_IF_ERROR(DowngradeInto(txn, entity, &grants));
  return grants;
}

std::vector<Grant> LockManager::ReleaseAll(TxnId txn) {
  std::vector<Grant> grants;
  // Copy up front: releases mutate the per-transaction state (and granting
  // a waiter can grow txn_state_, invalidating pointers into it).
  EntityId pending;
  std::vector<EntityId> entities;
  if (const TxnState* ts = StateFor(txn)) {
    pending = ts->waiting_for;
    entities.reserve(ts->held.size());
    for (const HeldEntry& h : ts->held) entities.push_back(h.entity);
  }
  if (pending.valid()) {
    (void)CancelWaitInto(txn, pending, &grants);
  }
  // Entity-id order, matching the ordered-map layout this replaced.
  std::sort(entities.begin(), entities.end());
  for (EntityId e : entities) {
    (void)ReleaseInto(txn, e, &grants);
  }
  return grants;
}

void LockManager::ProcessQueue(EntityState& es, std::vector<Grant>* out) {
  const std::size_t before = out->size();
  const EntityId entity = es.entity;
  bool progressed = true;
  while (progressed && !es.queue.empty()) {
    progressed = false;
    Waiter head = es.queue[0];
    if (Grantable(es, head, 0)) {
      es.queue.erase_at(0);
      txn_state_[head.txn.value()].waiting_for = EntityId();
      --waiting_count_;
      UpsertHolder(es, head.txn, head.mode);
      UpsertHeld(head.txn, entity, head.mode);
      out->push_back(Grant{head.txn, entity, head.mode, head.is_upgrade});
      progressed = true;
      continue;
    }
    // Paper model: a shared request deeper in the queue may bypass a
    // blocked exclusive head.
    if (!options_.fifo_fairness) {
      for (std::size_t i = 1; i < es.queue.size(); ++i) {
        Waiter w = es.queue[i];
        if (w.mode == LockMode::kShared && !w.is_upgrade &&
            Grantable(es, w, i)) {
          es.queue.erase_at(i);
          txn_state_[w.txn.value()].waiting_for = EntityId();
          --waiting_count_;
          UpsertHolder(es, w.txn, w.mode);
          UpsertHeld(w.txn, entity, w.mode);
          out->push_back(Grant{w.txn, entity, w.mode, false});
          progressed = true;
          break;
        }
      }
    }
  }
  if (probe_ != nullptr && out->size() > before) {
    delta_.grants_on_release += out->size() - before;
  }
}

std::vector<std::pair<TxnId, LockMode>> LockManager::Holders(
    EntityId entity) const {
  std::vector<std::pair<TxnId, LockMode>> out;
  const EntityState* es = SlotFor(entity);
  if (es == nullptr) return out;
  out.reserve(es->holders.size());
  for (const HolderEntry& h : es->holders) out.emplace_back(h.txn, h.mode);
  // Holders live in grant order internally; the public contract (and every
  // DOT/JSON consumer) is txn-id order, applied here at the emission site.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<TxnId, LockMode>> LockManager::WaitQueue(
    EntityId entity) const {
  std::vector<std::pair<TxnId, LockMode>> out;
  const EntityState* es = SlotFor(entity);
  if (es == nullptr) return out;
  out.reserve(es->queue.size());
  for (const Waiter& w : es->queue) out.emplace_back(w.txn, w.mode);
  return out;
}

std::optional<LockMode> LockManager::HeldMode(TxnId txn,
                                              EntityId entity) const {
  const EntityState* es = SlotFor(entity);
  if (es == nullptr) return std::nullopt;
  const HolderEntry* h = es->FindHolder(txn);
  if (h == nullptr) return std::nullopt;
  return h->mode;
}

bool LockManager::IsWaiting(TxnId txn) const {
  const TxnState* ts = StateFor(txn);
  return ts != nullptr && ts->waiting_for.valid();
}

std::optional<PendingRequest> LockManager::Waiting(TxnId txn) const {
  const TxnState* ts = StateFor(txn);
  if (ts == nullptr || !ts->waiting_for.valid()) return std::nullopt;
  const EntityState* es = SlotFor(ts->waiting_for);
  if (es == nullptr) return std::nullopt;
  for (const Waiter& w : es->queue) {
    if (w.txn == txn) {
      return PendingRequest{ts->waiting_for, w.mode, w.is_upgrade};
    }
  }
  return std::nullopt;
}

std::vector<std::pair<EntityId, LockMode>> LockManager::HeldBy(
    TxnId txn) const {
  std::vector<std::pair<EntityId, LockMode>> out;
  const TxnState* ts = StateFor(txn);
  if (ts == nullptr) return out;
  out.reserve(ts->held.size());
  for (const HeldEntry& h : ts->held) out.emplace_back(h.entity, h.mode);
  // Entity-id order at the emission site (see Holders).
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t LockManager::HeldCount(TxnId txn) const {
  const TxnState* ts = StateFor(txn);
  return ts == nullptr ? 0 : ts->held.size();
}

void LockManager::AppendHeldEntities(TxnId txn,
                                     std::vector<EntityId>* out) const {
  const TxnState* ts = StateFor(txn);
  if (ts == nullptr) return;
  for (const HeldEntry& h : ts->held) out->push_back(h.entity);
}

void LockManager::AppendBlockersOf(TxnId txn,
                                   std::vector<TxnId>* out) const {
  const TxnState* ts = StateFor(txn);
  if (ts == nullptr || !ts->waiting_for.valid()) return;
  const EntityState* es = SlotFor(ts->waiting_for);
  if (es == nullptr) return;
  for (std::size_t i = 0; i < es->queue.size(); ++i) {
    if (es->queue[i].txn == txn) {
      AppendBlockers(*es, es->queue[i], i, out);
      return;
    }
  }
}

std::vector<TxnId> LockManager::BlockersOf(TxnId txn) const {
  std::vector<TxnId> blockers;
  AppendBlockersOf(txn, &blockers);
  return blockers;
}

std::uint64_t LockManager::StateDigest() const {
  // Per-entity digests are order-independent-combined with XOR, so neither
  // slot order nor the internal grant-order holder layout can leak into
  // the result: holders are digested in txn order (sorted at this emission
  // site) and the queue in FIFO order, exactly as the ordered-map layout
  // digested them.
  std::uint64_t digest = 0;
  std::vector<HolderEntry> sorted;
  for (const EntityState& es : slots_) {
    if (!es.entity.valid()) continue;  // free slot
    if (es.holders.empty() && es.queue.empty()) continue;
    std::uint64_t h = obs::FnvMix64(obs::kFnvOffsetBasis, es.entity.value());
    sorted.assign(es.holders.begin(), es.holders.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const HolderEntry& a, const HolderEntry& b) {
                return a.txn < b.txn;
              });
    for (const HolderEntry& he : sorted) {
      h = obs::FnvMix64(h, he.txn.value());
      h = obs::FnvMix64(h, static_cast<std::uint64_t>(he.mode) + 1);
    }
    h = obs::FnvMix64(h, 0x51);  // holders/queue separator
    for (const Waiter& w : es.queue) {
      h = obs::FnvMix64(h, w.txn.value());
      h = obs::FnvMix64(h, (static_cast<std::uint64_t>(w.mode) << 1) |
                               (w.is_upgrade ? 1 : 0));
    }
    digest ^= h;
  }
  return digest;
}

std::string LockManager::ToString() const {
  std::ostringstream os;
  // Deterministic dump: sort entities.
  std::vector<const EntityState*> live;
  live.reserve(slots_.size());
  for (const EntityState& es : slots_) {
    if (!es.entity.valid()) continue;
    if (es.holders.empty() && es.queue.empty()) continue;
    live.push_back(&es);
  }
  std::sort(live.begin(), live.end(),
            [](const EntityState* a, const EntityState* b) {
              return a->entity < b->entity;
            });
  std::vector<std::pair<TxnId, LockMode>> holders;
  for (const EntityState* es : live) {
    holders.clear();
    for (const HolderEntry& h : es->holders) {
      holders.emplace_back(h.txn, h.mode);
    }
    std::sort(holders.begin(), holders.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    os << es->entity << ": holders{";
    bool first = true;
    for (const auto& [t, m] : holders) {
      if (!first) os << ", ";
      first = false;
      os << t << ":" << m;
    }
    os << "} queue[";
    first = true;
    for (const Waiter& w : es->queue) {
      if (!first) os << ", ";
      first = false;
      os << w.txn << ":" << w.mode << (w.is_upgrade ? "^" : "");
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace pardb::lock

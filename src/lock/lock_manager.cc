#include "lock/lock_manager.h"

#include <algorithm>
#include <sstream>

#include "obs/journal.h"

namespace pardb::lock {

namespace {

std::string Describe(TxnId txn, EntityId entity) {
  std::ostringstream os;
  os << txn << "/" << entity;
  return os.str();
}

}  // namespace

bool LockManager::Grantable(const EntityState& es, const Waiter& w,
                            std::size_t position) const {
  // Upgrades are grantable iff the requester is the sole holder.
  if (w.is_upgrade) {
    return es.holders.size() == 1 && es.holders.count(w.txn) == 1;
  }
  for (const auto& [holder, mode] : es.holders) {
    if (holder == w.txn) continue;  // cannot happen for non-upgrades
    if (!Compatible(mode, w.mode)) return false;
  }
  // Queue discipline: under fifo_fairness nothing passes a waiter; in the
  // paper model a compatible request passes waiting incompatible ones.
  const std::size_t ahead = std::min(position, es.queue.size());
  for (std::size_t i = 0; i < ahead; ++i) {
    const Waiter& q = es.queue[i];
    if (options_.fifo_fairness) return false;
    // Shared bypass: S may pass X waiters; but an X request never passes
    // anyone (it is incompatible with whatever the waiter ahead wants or
    // holds ambitions for).
    if (w.mode == LockMode::kExclusive) return false;
    if (q.mode == LockMode::kShared) {
      // Two shared requests queued: if the one ahead is not grantable the
      // entity has an X holder, so neither is this one; conservatively
      // keep order.
      return false;
    }
    // q wants X, w wants S: bypass allowed in the paper model.
  }
  return true;
}

std::vector<TxnId> LockManager::ComputeBlockers(const EntityState& es,
                                                const Waiter& w,
                                                std::size_t position) const {
  std::vector<TxnId> blockers;
  for (const auto& [holder, mode] : es.holders) {
    if (holder == w.txn) continue;
    if (w.is_upgrade || !Compatible(mode, w.mode)) blockers.push_back(holder);
  }
  if (options_.wait_edge_policy == WaitEdgePolicy::kHoldersAndQueue) {
    const std::size_t ahead = std::min(position, es.queue.size());
    for (std::size_t i = 0; i < ahead; ++i) {
      const Waiter& q = es.queue[i];
      if (q.txn == w.txn) continue;
      if (!Compatible(q.mode, w.mode) || !Compatible(w.mode, q.mode)) {
        blockers.push_back(q.txn);
      } else if (options_.fifo_fairness) {
        blockers.push_back(q.txn);
      }
    }
  }
  std::sort(blockers.begin(), blockers.end());
  blockers.erase(std::unique(blockers.begin(), blockers.end()),
                 blockers.end());
  return blockers;
}

Result<RequestOutcome> LockManager::Request(TxnId txn, EntityId entity,
                                            LockMode mode) {
  if (waiting_.count(txn)) {
    return Status::FailedPrecondition(
        "transaction already waiting; one pending request at a time (" +
        Describe(txn, entity) + ")");
  }
  EntityState& es = table_[entity];
  bool is_upgrade = false;
  auto hit = es.holders.find(txn);
  if (hit != es.holders.end()) {
    if (hit->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::ProtocolViolation(
          "lock already held in equal or stronger mode (" +
          Describe(txn, entity) + ")");
    }
    is_upgrade = true;  // holds S, wants X
  }

  if (probe_ != nullptr && probe_->requests != nullptr) {
    probe_->requests->Inc();
  }
  Waiter w{txn, mode, is_upgrade};
  if (Grantable(es, w, es.queue.size())) {
    es.holders[txn] = mode;
    held_[txn][entity] = mode;
    if (probe_ != nullptr && probe_->grants_immediate != nullptr) {
      probe_->grants_immediate->Inc();
    }
    return RequestOutcome{true, {}, is_upgrade};
  }

  // Enqueue: upgrades go to the front so the shrinking holder set reaches
  // them first; everything else is FIFO.
  std::size_t position;
  if (is_upgrade) {
    es.queue.push_front(w);
    position = 0;
  } else {
    es.queue.push_back(w);
    position = es.queue.size() - 1;
  }
  waiting_[txn] = entity;
  if (probe_ != nullptr) {
    if (probe_->queued != nullptr) probe_->queued->Inc();
    if (probe_->max_queue_depth != nullptr) {
      probe_->max_queue_depth->SetMax(
          static_cast<std::int64_t>(es.queue.size()));
    }
  }
  return RequestOutcome{false, ComputeBlockers(es, w, position), is_upgrade};
}

Result<std::vector<Grant>> LockManager::CancelWait(TxnId txn,
                                                   EntityId entity) {
  auto wit = waiting_.find(txn);
  if (wit == waiting_.end() || wit->second != entity) {
    return Status::NotFound("transaction is not waiting for entity (" +
                            Describe(txn, entity) + ")");
  }
  EntityState& es = table_[entity];
  auto qit = std::find_if(es.queue.begin(), es.queue.end(),
                          [txn](const Waiter& w) { return w.txn == txn; });
  if (qit == es.queue.end()) {
    return Status::Internal("waiting_ and queue out of sync for " +
                            Describe(txn, entity));
  }
  es.queue.erase(qit);
  waiting_.erase(wit);
  if (probe_ != nullptr && probe_->cancels != nullptr) {
    probe_->cancels->Inc();
  }
  std::vector<Grant> grants;
  ProcessQueue(entity, es, &grants);
  return grants;
}

Result<std::vector<Grant>> LockManager::Release(TxnId txn, EntityId entity) {
  EntityState* es = nullptr;
  auto tit = table_.find(entity);
  if (tit != table_.end()) es = &tit->second;
  if (es == nullptr || es->holders.erase(txn) == 0) {
    return Status::NotFound("lock not held (" + Describe(txn, entity) + ")");
  }
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    hit->second.erase(entity);
    if (hit->second.empty()) held_.erase(hit);
  }
  // If txn released the shared lock backing its own queued upgrade, the
  // upgrade degenerates to a plain request (otherwise it could never be
  // granted: upgrades require being the sole holder).
  for (Waiter& w : es->queue) {
    if (w.txn == txn && w.is_upgrade) w.is_upgrade = false;
  }
  std::vector<Grant> grants;
  ProcessQueue(entity, *es, &grants);
  return grants;
}

Result<std::vector<Grant>> LockManager::Downgrade(TxnId txn,
                                                  EntityId entity) {
  auto tit = table_.find(entity);
  if (tit == table_.end()) {
    return Status::NotFound("lock not held (" + Describe(txn, entity) + ")");
  }
  auto hit = tit->second.holders.find(txn);
  if (hit == tit->second.holders.end() ||
      hit->second != LockMode::kExclusive) {
    return Status::NotFound("exclusive lock not held (" +
                            Describe(txn, entity) + ")");
  }
  hit->second = LockMode::kShared;
  held_[txn][entity] = LockMode::kShared;
  std::vector<Grant> grants;
  ProcessQueue(entity, tit->second, &grants);
  return grants;
}

std::vector<Grant> LockManager::ReleaseAll(TxnId txn) {
  std::vector<Grant> grants;
  auto wit = waiting_.find(txn);
  if (wit != waiting_.end()) {
    auto r = CancelWait(txn, wit->second);
    if (r.ok()) {
      grants.insert(grants.end(), r.value().begin(), r.value().end());
    }
  }
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    // Copy: Release mutates held_.
    std::vector<EntityId> entities;
    entities.reserve(hit->second.size());
    for (const auto& [e, _] : hit->second) entities.push_back(e);
    for (EntityId e : entities) {
      auto r = Release(txn, e);
      if (r.ok()) {
        grants.insert(grants.end(), r.value().begin(), r.value().end());
      }
    }
  }
  return grants;
}

void LockManager::ProcessQueue(EntityId entity, EntityState& es,
                               std::vector<Grant>* out) {
  const std::size_t before = out->size();
  bool progressed = true;
  while (progressed && !es.queue.empty()) {
    progressed = false;
    Waiter head = es.queue.front();
    if (Grantable(es, head, 0)) {
      es.queue.pop_front();
      waiting_.erase(head.txn);
      es.holders[head.txn] = head.mode;
      held_[head.txn][entity] = head.mode;
      out->push_back(Grant{head.txn, entity, head.mode, head.is_upgrade});
      progressed = true;
      continue;
    }
    // Paper model: a shared request deeper in the queue may bypass a
    // blocked exclusive head.
    if (!options_.fifo_fairness) {
      for (std::size_t i = 1; i < es.queue.size(); ++i) {
        Waiter w = es.queue[i];
        if (w.mode == LockMode::kShared && !w.is_upgrade &&
            Grantable(es, w, i)) {
          es.queue.erase(es.queue.begin() + static_cast<std::ptrdiff_t>(i));
          waiting_.erase(w.txn);
          es.holders[w.txn] = w.mode;
          held_[w.txn][entity] = w.mode;
          out->push_back(Grant{w.txn, entity, w.mode, false});
          progressed = true;
          break;
        }
      }
    }
  }
  if (probe_ != nullptr && probe_->grants_on_release != nullptr &&
      out->size() > before) {
    probe_->grants_on_release->Inc(out->size() - before);
  }
}

std::vector<std::pair<TxnId, LockMode>> LockManager::Holders(
    EntityId entity) const {
  std::vector<std::pair<TxnId, LockMode>> out;
  auto it = table_.find(entity);
  if (it == table_.end()) return out;
  out.assign(it->second.holders.begin(), it->second.holders.end());
  return out;
}

std::vector<std::pair<TxnId, LockMode>> LockManager::WaitQueue(
    EntityId entity) const {
  std::vector<std::pair<TxnId, LockMode>> out;
  auto it = table_.find(entity);
  if (it == table_.end()) return out;
  for (const Waiter& w : it->second.queue) out.emplace_back(w.txn, w.mode);
  return out;
}

std::optional<LockMode> LockManager::HeldMode(TxnId txn,
                                              EntityId entity) const {
  auto it = table_.find(entity);
  if (it == table_.end()) return std::nullopt;
  auto hit = it->second.holders.find(txn);
  if (hit == it->second.holders.end()) return std::nullopt;
  return hit->second;
}

bool LockManager::IsWaiting(TxnId txn) const { return waiting_.count(txn); }

std::optional<PendingRequest> LockManager::Waiting(TxnId txn) const {
  auto wit = waiting_.find(txn);
  if (wit == waiting_.end()) return std::nullopt;
  auto tit = table_.find(wit->second);
  if (tit == table_.end()) return std::nullopt;
  for (const Waiter& w : tit->second.queue) {
    if (w.txn == txn) {
      return PendingRequest{wit->second, w.mode, w.is_upgrade};
    }
  }
  return std::nullopt;
}

std::vector<std::pair<EntityId, LockMode>> LockManager::HeldBy(
    TxnId txn) const {
  std::vector<std::pair<EntityId, LockMode>> out;
  auto it = held_.find(txn);
  if (it == held_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::size_t LockManager::HeldCount(TxnId txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

std::vector<TxnId> LockManager::BlockersOf(TxnId txn) const {
  auto wit = waiting_.find(txn);
  if (wit == waiting_.end()) return {};
  auto tit = table_.find(wit->second);
  if (tit == table_.end()) return {};
  const EntityState& es = tit->second;
  for (std::size_t i = 0; i < es.queue.size(); ++i) {
    if (es.queue[i].txn == txn) {
      return ComputeBlockers(es, es.queue[i], i);
    }
  }
  return {};
}

std::uint64_t LockManager::StateDigest() const {
  // Per-entity digests are order-independent-combined with XOR because the
  // table iterates in hash order; within an entity, holders (std::map,
  // txn-ordered) and the queue (FIFO order) are deterministic sequences.
  std::uint64_t digest = 0;
  for (const auto& [e, es] : table_) {
    if (es.holders.empty() && es.queue.empty()) continue;
    std::uint64_t h = obs::FnvMix64(obs::kFnvOffsetBasis, e.value());
    for (const auto& [t, m] : es.holders) {
      h = obs::FnvMix64(h, t.value());
      h = obs::FnvMix64(h, static_cast<std::uint64_t>(m) + 1);
    }
    h = obs::FnvMix64(h, 0x51);  // holders/queue separator
    for (const Waiter& w : es.queue) {
      h = obs::FnvMix64(h, w.txn.value());
      h = obs::FnvMix64(h, (static_cast<std::uint64_t>(w.mode) << 1) |
                               (w.is_upgrade ? 1 : 0));
    }
    digest ^= h;
  }
  return digest;
}

std::string LockManager::ToString() const {
  std::ostringstream os;
  // Deterministic dump: sort entities.
  std::vector<EntityId> entities;
  entities.reserve(table_.size());
  for (const auto& [e, _] : table_) entities.push_back(e);
  std::sort(entities.begin(), entities.end());
  for (EntityId e : entities) {
    const EntityState& es = table_.at(e);
    if (es.holders.empty() && es.queue.empty()) continue;
    os << e << ": holders{";
    bool first = true;
    for (const auto& [t, m] : es.holders) {
      if (!first) os << ", ";
      first = false;
      os << t << ":" << m;
    }
    os << "} queue[";
    first = true;
    for (const Waiter& w : es.queue) {
      if (!first) os << ", ";
      first = false;
      os << w.txn << ":" << w.mode << (w.is_upgrade ? "^" : "");
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace pardb::lock

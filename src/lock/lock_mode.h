#ifndef PARDB_LOCK_LOCK_MODE_H_
#define PARDB_LOCK_LOCK_MODE_H_

#include <ostream>
#include <string_view>

namespace pardb::lock {

// Lock modes of the paper (§2): shared locks (LS) for transactions that
// will only read an entity, exclusive locks (LX) for transactions that may
// read and update it.
enum class LockMode { kShared, kExclusive };

// Classic S/X compatibility: only S/S coexists.
constexpr bool Compatible(LockMode held, LockMode requested) {
  return held == LockMode::kShared && requested == LockMode::kShared;
}

constexpr std::string_view LockModeName(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

inline std::ostream& operator<<(std::ostream& os, LockMode m) {
  return os << LockModeName(m);
}

}  // namespace pardb::lock

#endif  // PARDB_LOCK_LOCK_MODE_H_

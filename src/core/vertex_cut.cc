#include "core/vertex_cut.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

namespace pardb::core {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

// Greedy weighted hitting set: repeatedly pick the member covering the most
// uncovered cycles per unit cost.
VertexCutResult Greedy(const std::vector<std::vector<std::size_t>>& cycles,
                       const std::vector<std::uint64_t>& costs) {
  VertexCutResult result;
  result.exact = false;
  std::vector<bool> covered(cycles.size(), false);
  std::size_t remaining = cycles.size();
  std::set<std::size_t> chosen;
  while (remaining > 0) {
    std::size_t best = SIZE_MAX;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i < cycles.size(); ++i) {
      if (covered[i]) continue;
      for (std::size_t m : cycles[i]) {
        if (chosen.count(m)) continue;
        std::size_t gain = 0;
        for (std::size_t j = 0; j < cycles.size(); ++j) {
          if (!covered[j] &&
              std::find(cycles[j].begin(), cycles[j].end(), m) !=
                  cycles[j].end()) {
            ++gain;
          }
        }
        const double denom = static_cast<double>(costs[m]) + 1.0;
        const double ratio = static_cast<double>(gain) / denom;
        if (ratio > best_ratio || (ratio == best_ratio && m < best)) {
          best_ratio = ratio;
          best = m;
        }
      }
    }
    if (best == SIZE_MAX) break;  // no coverable cycle left (empty cycle?)
    chosen.insert(best);
    result.total_cost += costs[best];
    for (std::size_t j = 0; j < cycles.size(); ++j) {
      if (!covered[j] && std::find(cycles[j].begin(), cycles[j].end(), best) !=
                             cycles[j].end()) {
        covered[j] = true;
        --remaining;
      }
    }
  }
  result.members.assign(chosen.begin(), chosen.end());
  return result;
}

// Exact branch and bound on the first uncovered cycle.
void Branch(const std::vector<std::vector<std::size_t>>& cycles,
            const std::vector<std::uint64_t>& costs,
            std::set<std::size_t>& chosen, std::uint64_t cost_so_far,
            std::uint64_t& best_cost, std::set<std::size_t>& best_set) {
  if (cost_so_far >= best_cost) return;
  // Find the first cycle not hit by `chosen`.
  const std::vector<std::size_t>* open = nullptr;
  for (const auto& cycle : cycles) {
    bool hit = false;
    for (std::size_t m : cycle) {
      if (chosen.count(m)) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      open = &cycle;
      break;
    }
  }
  if (open == nullptr) {
    best_cost = cost_so_far;
    best_set = chosen;
    return;
  }
  for (std::size_t m : *open) {
    if (chosen.count(m)) continue;
    chosen.insert(m);
    Branch(cycles, costs, chosen, cost_so_far + costs[m], best_cost, best_set);
    chosen.erase(m);
  }
}

}  // namespace

VertexCutResult SolveVertexCut(
    const std::vector<std::vector<std::size_t>>& cycles,
    const std::vector<std::uint64_t>& costs, std::size_t exact_limit) {
  VertexCutResult result;
  if (cycles.empty()) return result;

  std::set<std::size_t> distinct;
  for (const auto& c : cycles) distinct.insert(c.begin(), c.end());
  for (std::size_t m : distinct) {
    assert(m < costs.size());
    (void)m;
  }

  if (distinct.size() > exact_limit) return Greedy(cycles, costs);

  // Seed the bound with the greedy solution, then branch.
  VertexCutResult greedy = Greedy(cycles, costs);
  std::uint64_t best_cost = greedy.members.empty() ? kInf : greedy.total_cost;
  std::set<std::size_t> best_set(greedy.members.begin(),
                                 greedy.members.end());
  std::set<std::size_t> chosen;
  Branch(cycles, costs, chosen, 0, best_cost, best_set);

  result.members.assign(best_set.begin(), best_set.end());
  result.total_cost = best_cost == kInf ? 0 : best_cost;
  result.exact = true;
  return result;
}

}  // namespace pardb::core

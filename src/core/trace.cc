#include "core/trace.h"

#include <sstream>

namespace pardb::core {

std::string_view TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kSpawn:
      return "spawn";
    case TraceEvent::Kind::kLockGranted:
      return "grant";
    case TraceEvent::Kind::kBlocked:
      return "block";
    case TraceEvent::Kind::kDeadlock:
      return "deadlock";
    case TraceEvent::Kind::kRollback:
      return "rollback";
    case TraceEvent::Kind::kWound:
      return "wound";
    case TraceEvent::Kind::kDeath:
      return "death";
    case TraceEvent::Kind::kTimeout:
      return "timeout";
    case TraceEvent::Kind::kCommit:
      return "commit";
  }
  return "unknown";
}

std::string TraceEvent::ToString() const {
  std::ostringstream os;
  os << "[" << step << "] " << TraceEventKindName(kind) << " " << txn
     << " pc=" << pc;
  switch (kind) {
    case Kind::kLockGranted:
    case Kind::kBlocked:
    case Kind::kDeadlock:
      os << " entity=" << entity;
      break;
    case Kind::kRollback:
    case Kind::kWound:
    case Kind::kDeath:
    case Kind::kTimeout:
      os << " -> lock state " << target << " (cost " << cost << ")";
      break;
    default:
      break;
  }
  return os.str();
}

void RingTrace::OnEvent(const TraceEvent& event) {
  ++total_;
  const auto idx = static_cast<std::size_t>(event.kind);
  if (idx < sizeof(counts_) / sizeof(counts_[0])) ++counts_[idx];
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::uint64_t RingTrace::CountOf(TraceEvent::Kind kind) const {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= sizeof(counts_) / sizeof(counts_[0])) return 0;
  return counts_[idx];
}

std::string RingTrace::ToString() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) os << e.ToString() << "\n";
  return os.str();
}

std::uint64_t TraceDropped(const TraceSink* sink) {
  const auto* ring = dynamic_cast<const RingTrace*>(sink);
  return ring != nullptr ? ring->dropped_events() : 0;
}

}  // namespace pardb::core

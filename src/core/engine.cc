#include "core/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>
#include <sstream>

#include "common/bits.h"
#include "common/logging.h"
#include "core/vertex_cut.h"
#include "obs/phase_timer.h"

namespace pardb::core {

std::string_view DeadlockHandlingName(DeadlockHandling handling) {
  switch (handling) {
    case DeadlockHandling::kDetection:
      return "detection";
    case DeadlockHandling::kWoundWait:
      return "wound-wait";
    case DeadlockHandling::kWaitDie:
      return "wait-die";
    case DeadlockHandling::kTimeout:
      return "timeout";
  }
  return "unknown";
}

Engine::Engine(storage::EntityStore* store, EngineOptions options,
               analysis::HistoryRecorder* recorder)
    : store_(store),
      options_(options),
      recorder_(recorder),
      locks_(options.lock_options),
      rng_(options.seed) {
  if (options_.journal_epoch_steps != 0) {
    journal_epoch_mask_ = RoundUpPowerOfTwo(options_.journal_epoch_steps) - 1;
  }
  // Entities are known up front (stores are populated before engines run);
  // pre-sizing the slot remap keeps first-touch admission off the fast
  // path.
  locks_.ReserveEntities(store_->size());
}

void Engine::ReserveTxns(std::size_t n) {
  txns_.reserve(n);
  cold_.reserve(n);
  live_next_.reserve(n);
  live_prev_.reserve(n);
  locks_.ReserveTxns(n);
}

const FastMod& Engine::FastModFor(std::size_t bound) {
  if (bound >= fastmod_.size()) fastmod_.resize(bound + 1);
  FastMod& fm = fastmod_[bound];
  if (fm.n == 0) fm.Init(bound);
  return fm;
}

void Engine::MarkReadyDirty(const TxnContext& ctx) {
  const std::uint64_t v = ctx.id.value();
  const std::size_t w = static_cast<std::size_t>(v >> 6);
  if (w >= ready_bits_.size()) ready_bits_.resize(w + 1, 0);
  const std::uint64_t mask = std::uint64_t{1} << (v & 63);
  const bool want = ctx.status == TxnStatus::kReady && !ctx.backoff;
  if (want != ((ready_bits_[w] & mask) != 0)) {
    ready_bits_[w] ^= mask;
    if (want) {
      ++ready_count_;
      if (w < ready_lo_) ready_lo_ = w;
    } else {
      --ready_count_;
    }
  }
}

std::uint64_t Engine::SelectKthReady(std::size_t k) {
  while (ready_lo_ < ready_bits_.size() && ready_bits_[ready_lo_] == 0) {
    ++ready_lo_;
  }
  for (std::size_t w = ready_lo_; w < ready_bits_.size(); ++w) {
    std::uint64_t word = ready_bits_[w];
    const std::size_t pc = static_cast<std::size_t>(std::popcount(word));
    if (k >= pc) {
      k -= pc;
      continue;
    }
    while (k--) word &= word - 1;  // drop the k lowest set bits
    return (static_cast<std::uint64_t>(w) << 6) +
           static_cast<std::uint64_t>(std::countr_zero(word));
  }
  assert(false && "SelectKthReady past population");
  return kNoneIdx;
}

void Engine::LiveInsert(std::uint64_t v) {
  if (live_next_.size() <= v) {
    live_next_.resize(v + 1, kNoneIdx);
    live_prev_.resize(v + 1, kNoneIdx);
  }
  live_next_[v] = kNoneIdx;
  live_prev_[v] = live_tail_;
  if (live_tail_ != kNoneIdx) {
    live_next_[live_tail_] = v;
  } else {
    live_head_ = v;
  }
  live_tail_ = v;
  ++live_count_;
}

void Engine::LiveRemove(std::uint64_t v) {
  const std::uint64_t prev = live_prev_[v];
  const std::uint64_t next = live_next_[v];
  if (prev != kNoneIdx) {
    live_next_[prev] = next;
  } else {
    live_head_ = next;
  }
  if (next != kNoneIdx) {
    live_prev_[next] = prev;
  } else {
    live_tail_ = prev;
  }
  live_next_[v] = kNoneIdx;
  live_prev_[v] = kNoneIdx;
  --live_count_;
}

Result<TxnId> Engine::Spawn(txn::Program program) {
  return Spawn(std::make_shared<const txn::Program>(std::move(program)));
}

Result<TxnId> Engine::Spawn(std::shared_ptr<const txn::Program> program) {
  if (program == nullptr) {
    return Status::InvalidArgument("null program");
  }
  // Every entity the program touches must exist. Dense stores answer this
  // with one comparison against the program's statically known id bound;
  // only programs reaching past the dense prefix pay the per-op scan.
  if (program->MaxEntityBound() > store_->contiguous_prefix()) {
    for (const txn::Op& op : program->ops()) {
      switch (op.code) {
        case txn::OpCode::kLockShared:
        case txn::OpCode::kLockExclusive:
        case txn::OpCode::kUnlock:
        case txn::OpCode::kRead:
        case txn::OpCode::kWrite:
          if (!store_->Contains(op.entity)) {
            return Status::NotFound("program \"" + program->name() +
                                    "\" references a nonexistent entity");
          }
          break;
        default:
          break;
      }
    }
  }
  TxnId id(next_txn_++);
  TxnCold cold;
  cold.strategy =
      rollback::MakeStrategy(options_.strategy, *program, &txn_arena_);
  if (options_.compile_programs) {
    // Lower (or fetch) the µop stream; nullptr keeps this transaction on
    // the interpreted fallback. Cache telemetry is a pure function of the
    // admitted program sequence, so mirroring it into the metrics here
    // keeps the counters deterministic.
    cold.compiled = compile_cache_.Get(program);
    const txn::CompileCache::Stats& cs = compile_cache_.stats();
    metrics_.programs_compiled = cs.compiles;
    metrics_.compile_cache_hits = cs.hits;
    metrics_.compiled_bytes = cs.compiled_bytes;
  }
  TxnContext ctx;
  ctx.id = id;
  ctx.entry = clock_++;
  ctx.uops = cold.compiled != nullptr ? cold.compiled->uops() : nullptr;
  ctx.size = static_cast<std::uint32_t>(program->size());
  ctx.strategy = cold.strategy.get();
  cold.program = std::move(program);
  ctx.granted.set_arena(&txn_arena_);
  if (recorder_ != nullptr) recorder_->OnBegin(id, ctx.entry);
  txns_.push_back(std::move(ctx));  // index == id (dense admission ids)
  cold_.push_back(std::move(cold));
  LiveInsert(id.value());
  MarkReadyDirty(txns_.back());
  Emit(TraceEvent::Kind::kSpawn, txns_.back());
  if (txnlife_ != nullptr) txnlife_->OnAdmit(id, metrics_.steps);
  if (journal_ != nullptr) journal_->OnAdmit(id, metrics_.steps);
  return id;
}

Result<TxnId> Engine::SpawnSub(txn::Program program, std::size_t hold_pc) {
  auto id = Spawn(std::move(program));
  if (!id.ok()) return id.status();
  TxnContext* ctx = Find(id.value());
  ColdOf(*ctx).hold_pc = hold_pc;
  ++holds_active_;
  MarkReadyDirty(*ctx);
  ctx->seal_deferred = true;
  if (journal_ != nullptr) journal_->OnHold(ctx->id, metrics_.steps, hold_pc);
  return id;
}

bool Engine::AtHold(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  if (ctx == nullptr || ctx->status != TxnStatus::kReady) return false;
  const std::size_t hold_pc = ColdOf(*ctx).hold_pc;
  return hold_pc != kNoHold && ctx->pc >= hold_pc;
}

Status Engine::ReleaseHold(TxnId txn) {
  TxnContext* ctx = Find(txn);
  if (ctx == nullptr) return Status::NotFound("unknown transaction");
  TxnCold& cold = ColdOf(*ctx);
  if (cold.hold_pc != kNoHold && holds_active_ > 0) --holds_active_;
  cold.hold_pc = kNoHold;
  MarkReadyDirty(*ctx);
  if (journal_ != nullptr) journal_->OnRelease(ctx->id, metrics_.steps);
  if (ctx->seal_deferred) {
    ctx->seal_deferred = false;
    // Apply the deferred §5 seal now that the sub has passed its last lock
    // request and can no longer be a (distributed) rollback victim.
    if (options_.use_last_lock_declaration &&
        options_.handling == DeadlockHandling::kDetection) {
      auto last = cold.program->LastLockRequestPosition();
      if (last.has_value() && ctx->pc > *last) {
        ctx->strategy->OnLastLockGranted();
      }
    }
  }
  return Status::OK();
}

Result<VictimCandidate> Engine::PlanConflictRelease(
    TxnId txn,
    const std::vector<std::pair<EntityId, lock::LockMode>>& conflicts) const {
  const TxnContext* ctx = Find(txn);
  if (ctx == nullptr) return Status::NotFound("unknown transaction");
  return MakeCandidate(*ctx, conflicts, /*is_requester=*/false);
}

Status Engine::ApplyExternalRollback(TxnId txn, LockIndex target,
                                     std::uint64_t cost,
                                     std::uint64_t ideal_cost) {
  TxnContext* victim = Find(txn);
  if (victim == nullptr) return Status::NotFound("unknown transaction");
  if (victim->status == TxnStatus::kCommitted) {
    return Status::FailedPrecondition(
        "cannot roll back a committed transaction");
  }
  metrics_.wasted_ops += cost;
  metrics_.ideal_wasted_ops += ideal_cost;
  ++metrics_.preemptions;
  ++ColdOf(*victim).preempted;
  if (txnlife_ != nullptr) {
    // The coordinator's victim decision resolves a *global* cycle this
    // shard cannot see; the causing transaction is unknown here.
    txnlife_->OnRollback(victim->id, metrics_.steps,
                         obs::RollbackCause::kTwoPCAbort, TxnId(),
                         /*cycle=*/0, cost);
  }
  if (journal_ != nullptr) {
    journal_->OnRollback(victim->id, metrics_.steps, target, cost,
                         obs::RollbackCause::kTwoPCAbort, target == 0);
  }
  return RollbackTxn(*victim, target);
}

Status Engine::SetBackoff(TxnId txn, bool on) {
  TxnContext* ctx = Find(txn);
  if (ctx == nullptr) return Status::NotFound("unknown transaction");
  if (on && ctx->status == TxnStatus::kCommitted) {
    return Status::FailedPrecondition(
        "cannot back off a committed transaction");
  }
  ctx->backoff = on;
  MarkReadyDirty(*ctx);
  return Status::OK();
}

Engine::TxnContext* Engine::Find(TxnId txn) {
  const std::uint64_t v = txn.value();
  return v < txns_.size() ? &txns_[v] : nullptr;
}

const Engine::TxnContext* Engine::Find(TxnId txn) const {
  const std::uint64_t v = txn.value();
  return v < txns_.size() ? &txns_[v] : nullptr;
}

Value Engine::EvalOperand(const TxnContext& ctx, const txn::Operand& o) const {
  if (o.kind == txn::Operand::Kind::kImm) return o.imm;
  return ctx.strategy->VarValue(o.var);
}

Result<Value> Engine::ReadEntityValue(const TxnContext& ctx,
                                      EntityId entity) const {
  if (auto local = ctx.strategy->LocalValue(entity)) return *local;
  auto global = store_->Get(entity);
  if (!global.ok()) return global.status();
  return global.value().value;
}

Result<StepOutcome> Engine::StepTxn(TxnId txn) {
  TxnContext* ctx = Find(txn);
  if (ctx == nullptr) {
    return Status::NotFound("unknown transaction");
  }
  if (ctx->status != TxnStatus::kReady) return StepOutcome::kIdle;
  ++metrics_.steps;
  MaybeStampJournalEpoch();
  return ExecuteOp(*ctx);
}

Result<StepOutcome> Engine::ExecuteOp(TxnContext& ctx) {
  if (ctx.uops == nullptr) return ExecuteOpInterpreted(ctx);
  if (ctx.pc >= ctx.size) {
    // Implicit commit for programs without a kCommit op.
    PARDB_RETURN_IF_ERROR(ExecuteCommit(ctx));
    return StepOutcome::kCommitted;
  }
  // One fused dispatch per op: the µop carries the pre-resolved entity,
  // folded immediates and the static lock index (== granted.size() here,
  // an invariant partial rollback preserves because it truncates `granted`
  // to the same prefix it resets the pc to).
  const txn::MicroOp& u = ctx.uops[ctx.pc];
  switch (static_cast<txn::MicroOpCode>(u.code)) {
    case txn::MicroOpCode::kLockShared:
      return ExecuteLock(ctx, EntityId(u.entity), lock::LockMode::kShared);
    case txn::MicroOpCode::kLockExclusive:
      return ExecuteLock(ctx, EntityId(u.entity), lock::LockMode::kExclusive);
    case txn::MicroOpCode::kRead: {
      const EntityId entity(u.entity);
      Value v;
      if (auto local = ctx.strategy->LocalValue(entity)) {
        v = *local;
      } else {
        auto global = store_->Get(entity);
        if (!global.ok()) return global.status();
        v = global.value().value;
      }
      if (recorder_ != nullptr) {
        auto global = store_->Get(entity);
        if (!global.ok()) return global.status();
        recorder_->OnRead(ctx.id, entity, global.value().version, ctx.pc);
      }
      ctx.strategy->OnVarWrite(u.dst, v, u.lock_index);
      break;
    }
    case txn::MicroOpCode::kWrite: {
      const Value v = (u.flags & txn::kMicroFlagAVar) != 0
                          ? ctx.strategy->VarValue(
                                static_cast<txn::VarId>(u.a))
                          : u.a;
      ctx.strategy->OnEntityWrite(EntityId(u.entity), v, u.lock_index);
      break;
    }
    case txn::MicroOpCode::kComputeAdd:
    case txn::MicroOpCode::kComputeSub:
    case txn::MicroOpCode::kComputeMul: {
      const Value a = (u.flags & txn::kMicroFlagAVar) != 0
                          ? ctx.strategy->VarValue(
                                static_cast<txn::VarId>(u.a))
                          : u.a;
      const Value b = (u.flags & txn::kMicroFlagBVar) != 0
                          ? ctx.strategy->VarValue(
                                static_cast<txn::VarId>(u.b))
                          : u.b;
      Value v;
      switch (static_cast<txn::MicroOpCode>(u.code)) {
        case txn::MicroOpCode::kComputeSub:
          v = a - b;
          break;
        case txn::MicroOpCode::kComputeMul:
          v = a * b;
          break;
        default:
          v = a + b;
          break;
      }
      ctx.strategy->OnVarWrite(u.dst, v, u.lock_index);
      break;
    }
    case txn::MicroOpCode::kLoadImm:
      ctx.strategy->OnVarWrite(u.dst, u.a, u.lock_index);
      break;
    case txn::MicroOpCode::kUnlock:
      PARDB_RETURN_IF_ERROR(ExecuteUnlockOne(ctx, EntityId(u.entity)));
      ctx.in_shrinking_phase = true;
      break;
    case txn::MicroOpCode::kCommit:
      PARDB_RETURN_IF_ERROR(ExecuteCommit(ctx));
      return StepOutcome::kCommitted;
  }
  ++ctx.pc;
  ++metrics_.ops_executed;
  if (txnlife_ != nullptr) txnlife_->OnStep(ctx.id, metrics_.steps);
  return StepOutcome::kExecuted;
}

Result<StepOutcome> Engine::ExecuteOpInterpreted(TxnContext& ctx) {
  const txn::Program& program = *ColdOf(ctx).program;
  if (ctx.pc >= program.size()) {
    // Implicit commit for programs without a kCommit op.
    PARDB_RETURN_IF_ERROR(ExecuteCommit(ctx));
    return StepOutcome::kCommitted;
  }
  const txn::Op& op = program.op(ctx.pc);
  const LockIndex lock_index = ctx.granted.size();
  switch (op.code) {
    case txn::OpCode::kLockShared:
    case txn::OpCode::kLockExclusive:
      return ExecuteLock(ctx, op.entity,
                         op.code == txn::OpCode::kLockShared
                             ? lock::LockMode::kShared
                             : lock::LockMode::kExclusive);
    case txn::OpCode::kRead: {
      auto global = store_->Get(op.entity);
      if (!global.ok()) return global.status();
      auto value = ReadEntityValue(ctx, op.entity);
      if (!value.ok()) return value.status();
      if (recorder_ != nullptr) {
        recorder_->OnRead(ctx.id, op.entity, global.value().version, ctx.pc);
      }
      ctx.strategy->OnVarWrite(op.dst, value.value(), lock_index);
      ++ctx.pc;
      ++metrics_.ops_executed;
      if (txnlife_ != nullptr) txnlife_->OnStep(ctx.id, metrics_.steps);
      return StepOutcome::kExecuted;
    }
    case txn::OpCode::kWrite: {
      ctx.strategy->OnEntityWrite(op.entity, EvalOperand(ctx, op.a),
                                  lock_index);
      ++ctx.pc;
      ++metrics_.ops_executed;
      if (txnlife_ != nullptr) txnlife_->OnStep(ctx.id, metrics_.steps);
      return StepOutcome::kExecuted;
    }
    case txn::OpCode::kCompute: {
      const Value a = EvalOperand(ctx, op.a);
      const Value b = EvalOperand(ctx, op.b);
      Value v = 0;
      switch (op.arith) {
        case txn::ArithOp::kAdd:
          v = a + b;
          break;
        case txn::ArithOp::kSub:
          v = a - b;
          break;
        case txn::ArithOp::kMul:
          v = a * b;
          break;
      }
      ctx.strategy->OnVarWrite(op.dst, v, lock_index);
      ++ctx.pc;
      ++metrics_.ops_executed;
      if (txnlife_ != nullptr) txnlife_->OnStep(ctx.id, metrics_.steps);
      return StepOutcome::kExecuted;
    }
    case txn::OpCode::kUnlock: {
      PARDB_RETURN_IF_ERROR(ExecuteUnlockOne(ctx, op.entity));
      ctx.in_shrinking_phase = true;
      ++ctx.pc;
      ++metrics_.ops_executed;
      if (txnlife_ != nullptr) txnlife_->OnStep(ctx.id, metrics_.steps);
      return StepOutcome::kExecuted;
    }
    case txn::OpCode::kCommit: {
      PARDB_RETURN_IF_ERROR(ExecuteCommit(ctx));
      return StepOutcome::kCommitted;
    }
  }
  return Status::Internal("unhandled opcode");
}

Result<StepOutcome> Engine::ExecuteLock(TxnContext& ctx, EntityId entity,
                                        lock::LockMode mode) {
  // Sampled lock-op timing (1 in 16): frequent enough for a stable
  // distribution, rare enough that clock reads stay off the hot path.
  const bool time_op = probe_ != nullptr && probe_->lock_op_ns != nullptr &&
                       (lock_op_counter_++ & 0xF) == 0;
  const std::uint64_t op_start =
      time_op ? probe_->EffectiveClock()->NowNanos() : 0;
  auto outcome = locks_.TryRequest(ctx.id, entity, mode);
  if (time_op) {
    probe_->lock_op_ns->Record(probe_->EffectiveClock()->NowNanos() -
                               op_start);
  }
  if (!outcome.ok()) return outcome.status();
  if (outcome.value().granted) {
    PARDB_RETURN_IF_ERROR(
        RegisterGrant(ctx, entity, mode, outcome.value().is_upgrade));
    // An immediate grant (e.g. a shared request bypassing queued exclusive
    // waiters) makes this transaction a blocker of those waiters: the
    // waits-for arcs must reflect it or a later cycle through them goes
    // undetected. The grant itself cannot close a cycle — the grantee is
    // not waiting — so refreshing the arcs suffices.
    RefreshWaitEdges(entity);
    return StepOutcome::kExecuted;
  }
  // Wait response (§2 rule 2): record arcs, then keep the system
  // deadlock-free (§2 rule 3) by the configured means.
  ctx.status = TxnStatus::kWaiting;
  MarkReadyDirty(ctx);
  ctx.wait_since = metrics_.steps;
  ++metrics_.lock_waits;
  Emit(TraceEvent::Kind::kBlocked, ctx, entity);
  if (txnlife_ != nullptr) txnlife_->OnBlock(ctx.id, metrics_.steps, entity);
  if (journal_ != nullptr) journal_->OnBlock(ctx.id, metrics_.steps, entity);
  RefreshWaitEdges(entity);
  switch (options_.handling) {
    case DeadlockHandling::kDetection: {
      if (options_.detection_mode == DetectionMode::kPeriodic) {
        break;  // cycles accumulate until the next PeriodicScan
      }
      auto self_rolled = DetectAndResolve(ctx, entity);
      if (!self_rolled.ok()) return self_rolled.status();
      if (self_rolled.value()) return StepOutcome::kRolledBack;
      break;
    }
    case DeadlockHandling::kWoundWait: {
      PARDB_RETURN_IF_ERROR(HandleWoundWait(ctx, entity, mode));
      break;
    }
    case DeadlockHandling::kWaitDie: {
      auto died = HandleWaitDie(ctx, entity);
      if (!died.ok()) return died.status();
      if (died.value()) return StepOutcome::kRolledBack;
      break;
    }
    case DeadlockHandling::kTimeout:
      break;  // nothing now; StepAny expires stale waits
  }
  if (ctx.status == TxnStatus::kReady) {
    // A victim's released locks were granted to this requester during
    // resolution; the lock op completed after all.
    return StepOutcome::kExecuted;
  }
  return StepOutcome::kBlocked;
}

Status Engine::RegisterGrant(TxnContext& ctx, EntityId entity,
                             lock::LockMode mode, bool is_upgrade) {
  if (ctx.status == TxnStatus::kWaiting) {
    if (probe_ != nullptr && probe_->lock_wait_steps != nullptr) {
      // Wait duration in engine steps — deterministic, unlike wall time.
      probe_->lock_wait_steps->Record(metrics_.steps - ctx.wait_since);
    }
    if (txnlife_ != nullptr) txnlife_->OnWake(ctx.id, metrics_.steps);
  }
  const LockIndex lock_state = ctx.granted.size();
  ctx.granted.push_back(LockRecord{entity, mode, is_upgrade, ctx.pc});
  auto global = store_->Get(entity);
  if (!global.ok()) return global.status();
  ctx.strategy->OnLockGranted(lock_state, entity, mode, global.value().value,
                              is_upgrade);
  // The §5 "stop monitoring after the last lock request" optimisation is
  // only sound under detection: there a transaction past its final lock
  // request can never become a rollback victim. The prevention schemes
  // wound *running* holders, so their history must stay live. The compiled
  // stream carries the answer as a flag on the lock µop (ctx.pc still
  // names the request being granted here); the fallback walks the program.
  if (options_.use_last_lock_declaration &&
      options_.handling == DeadlockHandling::kDetection &&
      !ctx.seal_deferred) {
    if (ctx.uops != nullptr) {
      if ((ctx.uops[ctx.pc].flags & txn::kMicroFlagLastLock) != 0) {
        ctx.strategy->OnLastLockGranted();
      }
    } else {
      auto last = ColdOf(ctx).program->LastLockRequestPosition();
      if (last.has_value() && *last == ctx.pc) {
        ctx.strategy->OnLastLockGranted();
      }
    }
  }
  ++ctx.pc;
  ctx.status = TxnStatus::kReady;
  MarkReadyDirty(ctx);
  ++metrics_.ops_executed;
  Emit(TraceEvent::Kind::kLockGranted, ctx, entity);
  if (txnlife_ != nullptr) txnlife_->OnStep(ctx.id, metrics_.steps);
  if (journal_ != nullptr) {
    journal_->OnGrant(ctx.id, metrics_.steps, entity,
                      mode == lock::LockMode::kExclusive, is_upgrade);
  }
  return Status::OK();
}

Status Engine::HandleGrant(const lock::Grant& g) {
  TxnContext* ctx = Find(g.txn);
  if (ctx == nullptr) {
    return Status::Internal("grant for unknown transaction");
  }
  return RegisterGrant(*ctx, g.entity, g.mode, g.was_upgrade);
}

Status Engine::ExecuteUnlockOne(TxnContext& ctx, EntityId entity) {
  std::optional<Value> publish = ctx.strategy->OnUnlock(entity);
  if (publish.has_value()) {
    auto version = store_->Publish(entity, *publish);
    if (!version.ok()) return version.status();
    if (recorder_ != nullptr) {
      recorder_->OnPublish(ctx.id, entity, version.value(), ctx.pc);
    }
  }
  scratch_grants_.clear();
  PARDB_RETURN_IF_ERROR(locks_.ReleaseInto(ctx.id, entity, &scratch_grants_));
  for (const lock::Grant& g : scratch_grants_) {
    PARDB_RETURN_IF_ERROR(HandleGrant(g));
  }
  RefreshWaitEdges(entity);
  return Status::OK();
}

Status Engine::ExecuteCommit(TxnContext& ctx) {
  SampleSpace(ctx);
  // Release everything still held (publishing X-held final values), in
  // entity order for determinism.
  scratch_held_.clear();
  locks_.AppendHeldEntities(ctx.id, &scratch_held_);
  std::sort(scratch_held_.begin(), scratch_held_.end());
  for (std::size_t i = 0; i < scratch_held_.size(); ++i) {
    PARDB_RETURN_IF_ERROR(ExecuteUnlockOne(ctx, scratch_held_[i]));
  }
  ctx.status = TxnStatus::kCommitted;
  MarkReadyDirty(ctx);
  ctx.pc = ctx.size;
  LiveRemove(ctx.id.value());
  waits_for_.RemoveVertex(ctx.id.value());
  if (recorder_ != nullptr) recorder_->OnCommit(ctx.id);
  if (lineage_ != nullptr) lineage_->OnCommit(ctx.id);
  Emit(TraceEvent::Kind::kCommit, ctx);
  if (txnlife_ != nullptr) txnlife_->OnCommit(ctx.id, metrics_.steps, ctx.pc);
  if (journal_ != nullptr) journal_->OnCommit(ctx.id, metrics_.steps, ctx.pc);
  ++metrics_.commits;
  ++metrics_.ops_executed;  // the commit itself
  // Commits are the natural flush cadence for batched telemetry: rare
  // enough to stay off the per-step path, frequent enough that registry
  // readers are never more than one transaction behind.
  FlushProbes();
  return Status::OK();
}

void Engine::RefreshWaitEdges(EntityId entity) {
  const graph::EdgeLabel label = entity.value();
  const bool has_waiters = locks_.HasWaiters(entity);
  // Fast path: nothing waits and no stale arcs carry this label — the
  // overwhelmingly common case for an uncontended grant or release.
  if (!has_waiters && !waits_for_.HasEdgesLabeled(label)) return;
  waits_for_.RemoveEdgesLabeled(label);
  if (!has_waiters) return;
  locks_.ForEachWaiter(entity, [&](TxnId waiter, lock::LockMode) {
    scratch_blockers_.clear();
    locks_.AppendBlockersOf(waiter, &scratch_blockers_);
    for (TxnId blocker : scratch_blockers_) {
      waits_for_.AddEdge(blocker.value(), waiter.value(), label);
    }
  });
}

Result<VictimCandidate> Engine::MakeCandidate(
    const TxnContext& member,
    const std::vector<std::pair<EntityId, lock::LockMode>>& conflicts,
    bool is_requester) const {
  VictimCandidate c;
  c.txn = member.id;
  c.entry = member.entry;
  c.is_requester = is_requester;
  // §3.1: the rollback target is the state of highest index in which the
  // member holds no lock that conflicts with another deadlocked
  // transaction. Holding lock state k means requests 1..k survive, so the
  // target is the minimum lock state over first-conflicting requests.
  //
  // Under queue-aware wait edges an arc can also represent queue order (the
  // member is an incompatible *waiter* ahead of the blocked transaction
  // without holding the entity). Such conflicts impose no lock-state
  // constraint: cancelling the member's pending request (which every
  // rollback does — it re-queues at the tail afterwards) already removes
  // the arc. A candidate whose conflicts are all queue arcs therefore has
  // target == granted.size() and cost 0.
  LockIndex ideal = member.granted.size();
  for (const auto& [entity, waiter_mode] : conflicts) {
    for (LockIndex k = 0; k < member.granted.size(); ++k) {
      const LockRecord& r = member.granted[k];
      if (r.entity != entity) continue;
      const bool conflicting = r.mode == lock::LockMode::kExclusive ||
                               waiter_mode == lock::LockMode::kExclusive;
      if (conflicting) {
        ideal = std::min(ideal, k);
        break;
      }
    }
  }
  c.ideal_target = ideal;
  c.actual_target = member.strategy->LatestRestorableAtOrBefore(ideal);
  auto StateIndexOfTarget = [&member](LockIndex target) -> std::size_t {
    return target < member.granted.size()
               ? member.granted[target].op_index
               : static_cast<std::size_t>(member.pc);
  };
  c.cost = member.pc - StateIndexOfTarget(c.actual_target);
  c.ideal_cost = member.pc - StateIndexOfTarget(c.ideal_target);
  return c;
}

Result<bool> Engine::DetectAndResolve(TxnContext& requester,
                                      EntityId entity) {
  bool requester_rolled_back = false;
  // A wait can close several cycles with shared locks; resolving one round
  // of victims may still leave cycles when enumeration was capped, so loop
  // until the graph is clean or the requester itself was rolled back.
  for (int round = 0; round < 64; ++round) {
    if (requester_rolled_back) break;
    std::vector<graph::Cycle> cycles;
    {
      obs::ScopedTimer detect_timer(
          probe_ != nullptr ? probe_->detection_ns : nullptr,
          probe_ != nullptr ? probe_->clock : nullptr);
      waits_for_.EnumerateCyclesThrough(
          requester.id.value(), options_.max_cycles_per_deadlock,
          [&cycles](const graph::Cycle& c) {
            cycles.push_back(c);
            return true;
          });
    }
    if (cycles.empty()) break;
    ++metrics_.deadlocks;
    metrics_.cycles_found += cycles.size();
    Emit(TraceEvent::Kind::kDeadlock, requester, entity);
    if (journal_ != nullptr) {
      journal_->OnCycle(requester.id, metrics_.steps, entity,
                        metrics_.deadlocks);
    }

    // Conflicts per member: the entities on its outgoing arcs within the
    // cycles, with the pending mode of the waiting successor.
    std::map<TxnId, std::vector<std::pair<EntityId, lock::LockMode>>>
        conflicts;
    for (const graph::Cycle& cycle : cycles) {
      for (const graph::Edge& e : cycle.edges) {
        TxnId holder(e.from);
        TxnId waiter(e.to);
        auto pending = locks_.Waiting(waiter);
        if (!pending.has_value()) {
          return Status::Internal("cycle contains a non-waiting transaction");
        }
        conflicts[holder].emplace_back(EntityId(e.label), pending->mode);
      }
    }

    std::vector<VictimCandidate> candidates;
    for (const auto& [txn, conf] : conflicts) {
      const TxnContext* member = Find(txn);
      if (member == nullptr) {
        return Status::Internal("cycle contains an unknown transaction");
      }
      auto cand = MakeCandidate(*member, conf, txn == requester.id);
      if (!cand.ok()) return cand.status();
      candidates.push_back(cand.value());
    }

    // Choose victims.
    std::vector<const VictimCandidate*> victims;
    bool omega_intervened = false;
    const bool cost_based =
        options_.victim_policy == VictimPolicyKind::kMinCost ||
        options_.victim_policy == VictimPolicyKind::kMinCostOrdered;
    if (cycles.size() > 1 && options_.optimize_vertex_cut && cost_based) {
      // §3.2: find a minimum-cost vertex cut among the cycles (all pass
      // through the requester, which is itself a 1-element cut).
      std::vector<const VictimCandidate*> eligible;
      for (const VictimCandidate& c : candidates) {
        if (options_.victim_policy == VictimPolicyKind::kMinCost ||
            (!c.is_requester && c.entry > requester.entry)) {
          eligible.push_back(&c);
        }
      }
      std::map<TxnId, std::size_t> index;
      for (std::size_t i = 0; i < eligible.size(); ++i) {
        index[eligible[i]->txn] = i;
      }
      std::vector<std::vector<std::size_t>> cycle_sets;
      bool coverable = true;
      for (const graph::Cycle& cycle : cycles) {
        std::vector<std::size_t> members;
        for (graph::VertexId v : cycle.vertices) {
          auto it = index.find(TxnId(v));
          if (it != index.end()) members.push_back(it->second);
        }
        if (members.empty()) {
          coverable = false;
          break;
        }
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        cycle_sets.push_back(std::move(members));
      }
      if (!coverable) {
        // Some cycle has no eligible member: the requester (on every
        // cycle) is the only safe choice.
        for (const VictimCandidate& c : candidates) {
          if (c.is_requester) victims.push_back(&c);
        }
      } else {
        std::vector<std::uint64_t> costs;
        costs.reserve(eligible.size());
        for (const VictimCandidate* c : eligible) costs.push_back(c->cost);
        VertexCutResult cut =
            SolveVertexCut(cycle_sets, costs, options_.exact_cut_limit);
        for (std::size_t m : cut.members) victims.push_back(eligible[m]);
      }
    } else if (cycles.size() > 1 &&
               (options_.victim_policy == VictimPolicyKind::kRequester ||
                !options_.optimize_vertex_cut)) {
      // The requester lies on every cycle closed by its own wait (§3.2), so
      // rolling it back is always a complete, if unoptimised, resolution.
      for (const VictimCandidate& c : candidates) {
        if (c.is_requester) victims.push_back(&c);
      }
    } else if (cycles.size() > 1) {
      // Non-cost policies over multiple cycles: repeatedly apply the policy
      // to the members of the first uncovered cycle.
      std::set<TxnId> chosen;
      for (const graph::Cycle& cycle : cycles) {
        bool hit = false;
        for (graph::VertexId v : cycle.vertices) {
          if (chosen.count(TxnId(v))) {
            hit = true;
            break;
          }
        }
        if (hit) continue;
        std::vector<VictimCandidate> members;
        for (const VictimCandidate& c : candidates) {
          if (cycle.Contains(c.txn.value())) members.push_back(c);
        }
        if (members.empty()) continue;
        const VictimCandidate& pick =
            ChooseVictim(options_.victim_policy, members, requester.entry);
        chosen.insert(pick.txn);
      }
      for (const VictimCandidate& c : candidates) {
        if (chosen.count(c.txn)) victims.push_back(&c);
      }
    } else {
      const VictimCandidate& pick =
          ChooseVictim(options_.victim_policy, candidates, requester.entry);
      if ((lineage_ != nullptr || txnlife_ != nullptr ||
           journal_ != nullptr) &&
          options_.victim_policy == VictimPolicyKind::kMinCostOrdered) {
        // Theorem 2 actively intervening: the ω-ordered policy rejected the
        // transaction pure min-cost would have sacrificed. Observation
        // only — the pick itself is never altered by any observer.
        const VictimCandidate& unordered = ChooseVictim(
            VictimPolicyKind::kMinCost, candidates, requester.entry);
        if (unordered.txn != pick.txn) {
          omega_intervened = true;
          if (lineage_ != nullptr) lineage_->OnOmegaIntervention();
        }
      }
      const VictimCandidate* chosen = &pick;
      if (options_.debug_flip_victim_deadlock != 0 && candidates.size() > 1 &&
          ++debug_flip_opportunities_ == options_.debug_flip_victim_deadlock) {
        // Test-only divergence injection: trade the pick for any other
        // candidate so exactly one decision differs from a clean run. The
        // ordinal counts *flippable* single-cycle deadlocks (>= 2
        // candidates), not raw deadlocks — multi-cycle resolutions take the
        // branches above, and firing on a deadlock that lands there would
        // silently inject nothing.
        for (const VictimCandidate& c : candidates) {
          if (c.txn != pick.txn) {
            chosen = &c;
            break;
          }
        }
      }
      victims.push_back(chosen);
    }

    if (victims.empty()) {
      return Status::Internal("deadlock resolution chose no victim");
    }

    // Forensics: full dump of the cycle before any rollback mutates it.
    if (forensics_ != nullptr) {
      obs::DeadlockDump dump;
      dump.step = metrics_.steps;
      dump.requester = requester.id;
      dump.requested_entity = entity;
      dump.num_cycles = cycles.size();
      dump.policy = std::string(VictimPolicyKindName(options_.victim_policy));
      for (const graph::Edge& e : cycles.front().edges) {
        // Edge e: blocker (from) -> waiter (to); the forensic arc reads
        // "waiter waits for holder".
        dump.arcs.push_back(
            obs::WaitsForArc{TxnId(e.to), TxnId(e.from), EntityId(e.label)});
      }
      for (const VictimCandidate& c : candidates) {
        obs::DeadlockParticipant p;
        p.txn = c.txn;
        p.entry = c.entry;
        p.cost = c.cost;
        p.ideal_cost = c.ideal_cost;
        p.target = c.actual_target;
        p.is_requester = c.is_requester;
        for (const VictimCandidate* v : victims) {
          if (v->txn == c.txn) p.is_victim = true;
        }
        dump.participants.push_back(std::move(p));
      }
      for (const VictimCandidate* v : victims) dump.victims.push_back(v->txn);
      forensics_->OnDeadlock(dump);
    }

    // Record the event before mutating state.
    if (deadlock_events_.size() < options_.max_recorded_events) {
      DeadlockEvent ev;
      ev.requester = requester.id;
      ev.requested_entity = entity;
      ev.num_cycles = cycles.size();
      for (graph::VertexId v : cycles.front().vertices) {
        ev.cycle_txns.push_back(TxnId(v));
      }
      for (const graph::Edge& e : cycles.front().edges) {
        ev.cycle_entities.push_back(EntityId(e.label));
      }
      ev.candidates = candidates;
      for (const VictimCandidate* v : victims) {
        ev.victims.push_back(v->txn);
        ev.total_cost += v->cost;
        ev.total_ideal_cost += v->ideal_cost;
      }
      deadlock_events_.push_back(std::move(ev));
    }

    for (const VictimCandidate* v : victims) {
      TxnContext* victim = Find(v->txn);
      if (victim == nullptr) {
        return Status::Internal("victim vanished");
      }
      metrics_.wasted_ops += v->cost;
      metrics_.ideal_wasted_ops += v->ideal_cost;
      // Whose conflict knocked this victim out: the requester for a
      // preemption; for a requester self-rollback, the holder it waited on.
      TxnId causing = requester.id;
      if (!v->is_requester) {
        ++metrics_.preemptions;
        ++ColdOf(*victim).preempted;
        if (probe_ != nullptr && probe_->victims_preempted != nullptr) {
          probe_->victims_preempted->Inc();
        }
        if (lineage_ != nullptr) {
          lineage_->OnPreemption(metrics_.steps, victim->id, requester.id,
                                 v->actual_target, v->cost);
        }
      } else {
        requester_rolled_back = true;
        if (probe_ != nullptr && probe_->victims_requester != nullptr) {
          probe_->victims_requester->Inc();
        }
        // A requester self-rollback is still a preemption in the
        // Figure 2 sense — the holder it was waiting on knocked it out.
        // Recording that holder as the aggressor lets the chain depth
        // keep growing across the paper's mutual T2/T3 alternation,
        // which is self-rollbacks all the way down.
        for (const graph::Edge& e : cycles.front().edges) {
          if (TxnId(e.to) == requester.id) {
            causing = TxnId(e.from);
            break;
          }
        }
        if (lineage_ != nullptr) {
          lineage_->OnPreemption(metrics_.steps, victim->id, causing,
                                 v->actual_target, v->cost);
        }
      }
      const obs::RollbackCause cause =
          v->is_requester ? obs::RollbackCause::kSelfRollback
          : omega_intervened ? obs::RollbackCause::kOmegaPreemption
                             : obs::RollbackCause::kDeadlockVictim;
      if (txnlife_ != nullptr) {
        // metrics_.deadlocks is the 1-based ordinal of this deadlock, which
        // is exactly the book's cycle encoding (0 = none).
        txnlife_->OnRollback(victim->id, metrics_.steps, cause, causing,
                             metrics_.deadlocks, v->cost);
      }
      if (journal_ != nullptr) {
        journal_->OnVictim(victim->id, metrics_.steps, v->actual_target,
                           v->cost, omega_intervened, v->is_requester,
                           candidates.size());
        journal_->OnRollback(victim->id, metrics_.steps, v->actual_target,
                             v->cost, cause, v->actual_target == 0);
      }
      PARDB_RETURN_IF_ERROR(RollbackTxn(*victim, v->actual_target));
    }
  }
  return requester_rolled_back;
}

Status Engine::HandleWoundWait(TxnContext& requester, EntityId entity,
                               lock::LockMode mode) {
  // Preempt every younger blocker still in its growing phase; afterwards
  // the requester waits only for older (or shrinking) transactions, so
  // waits-for arcs point from younger to older only and cycles cannot
  // form. Re-check the blocker set after each wound: rollbacks shift the
  // queue.
  for (int guard = 0; guard < 1024; ++guard) {
    if (!locks_.IsWaiting(requester.id)) return Status::OK();  // granted
    TxnContext* victim = nullptr;
    for (TxnId b : locks_.BlockersOf(requester.id)) {
      TxnContext* blocker = Find(b);
      if (blocker == nullptr) {
        return Status::Internal("unknown blocker in wound-wait");
      }
      if (blocker->entry > requester.entry &&
          !blocker->in_shrinking_phase) {
        victim = blocker;
        break;
      }
    }
    if (victim == nullptr) return Status::OK();  // wait for elders only
    auto cand = MakeCandidate(*victim, {{entity, mode}}, false);
    if (!cand.ok()) return cand.status();
    ++metrics_.wounds;
    Emit(TraceEvent::Kind::kWound, *victim, entity,
         cand.value().actual_target, cand.value().cost);
    ++metrics_.preemptions;
    ++ColdOf(*victim).preempted;
    if (lineage_ != nullptr) {
      lineage_->OnPreemption(metrics_.steps, victim->id, requester.id,
                             cand.value().actual_target, cand.value().cost);
    }
    if (txnlife_ != nullptr) {
      txnlife_->OnRollback(victim->id, metrics_.steps,
                           obs::RollbackCause::kWoundWait, requester.id,
                           /*cycle=*/0, cand.value().cost);
    }
    if (journal_ != nullptr) {
      journal_->OnRollback(victim->id, metrics_.steps,
                           cand.value().actual_target, cand.value().cost,
                           obs::RollbackCause::kWoundWait,
                           cand.value().actual_target == 0);
    }
    metrics_.wasted_ops += cand.value().cost;
    metrics_.ideal_wasted_ops += cand.value().ideal_cost;
    PARDB_RETURN_IF_ERROR(RollbackTxn(*victim, cand.value().actual_target));
  }
  return Status::Internal("wound-wait did not converge");
}

Result<LockIndex> Engine::SelfRollbackTarget(
    const TxnContext& txn,
    const std::function<bool(const TxnContext&)>& relevant) {
  std::vector<std::pair<EntityId, lock::LockMode>> conflicts;
  for (const auto& [held_entity, held_mode] : locks_.HeldBy(txn.id)) {
    (void)held_mode;
    for (const auto& [waiter, wmode] : locks_.WaitQueue(held_entity)) {
      const TxnContext* w = Find(waiter);
      if (w == nullptr || !relevant(*w)) continue;
      conflicts.emplace_back(held_entity, wmode);
    }
  }
  auto cand = MakeCandidate(txn, conflicts, true);
  if (!cand.ok()) return cand.status();
  metrics_.wasted_ops += cand.value().cost;
  metrics_.ideal_wasted_ops += cand.value().ideal_cost;
  return cand.value().actual_target;
}

Result<bool> Engine::HandleWaitDie(TxnContext& requester, EntityId entity) {
  (void)entity;
  // The requester waits only if it is the oldest among its blockers;
  // otherwise it dies: it is rolled back to the latest lock state at which
  // it holds no lock that an *older* transaction is currently queued for —
  // locally available information only — and retries from there.
  TxnId older_blocker;
  for (TxnId b : locks_.BlockersOf(requester.id)) {
    const TxnContext* blocker = Find(b);
    if (blocker != nullptr && blocker->entry < requester.entry) {
      older_blocker = b;
      break;
    }
  }
  if (!older_blocker.valid()) return false;  // wait (old waits for young only)

  const Timestamp entry = requester.entry;
  auto target = SelfRollbackTarget(
      requester, [entry](const TxnContext& w) { return w.entry < entry; });
  if (!target.ok()) return target.status();
  ++metrics_.deaths;
  Emit(TraceEvent::Kind::kDeath, requester, entity, target.value());
  const std::uint64_t die_cost = RollbackCostOf(requester, target.value());
  if (txnlife_ != nullptr) {
    txnlife_->OnRollback(requester.id, metrics_.steps,
                         obs::RollbackCause::kWaitDie, older_blocker,
                         /*cycle=*/0, die_cost);
  }
  if (journal_ != nullptr) {
    journal_->OnRollback(requester.id, metrics_.steps, target.value(),
                         die_cost, obs::RollbackCause::kWaitDie,
                         target.value() == 0);
  }
  PARDB_RETURN_IF_ERROR(RollbackTxn(requester, target.value()));
  return true;
}

Status Engine::ExpireTimeouts() {
  // Collect first: rollbacks mutate the transactions' wait states.
  scratch_expired_.clear();
  for (std::uint64_t v = live_head_; v != kNoneIdx; v = live_next_[v]) {
    const TxnContext& ctx = txns_[v];
    if (ctx.status == TxnStatus::kWaiting &&
        metrics_.steps - ctx.wait_since > options_.wait_timeout_steps) {
      scratch_expired_.push_back(ctx.id);
    }
  }
  for (TxnId id : scratch_expired_) {
    TxnContext* ctx = Find(id);
    if (ctx == nullptr || ctx->status != TxnStatus::kWaiting) continue;
    auto target = SelfRollbackTarget(
        *ctx, [](const TxnContext&) { return true; });
    if (!target.ok()) return target.status();
    ++metrics_.timeouts;
    Emit(TraceEvent::Kind::kTimeout, *ctx, EntityId(), target.value());
    const std::uint64_t timeout_cost = RollbackCostOf(*ctx, target.value());
    if (txnlife_ != nullptr) {
      txnlife_->OnRollback(ctx->id, metrics_.steps,
                           obs::RollbackCause::kTimeout, TxnId(),
                           /*cycle=*/0, timeout_cost);
    }
    if (journal_ != nullptr) {
      journal_->OnRollback(ctx->id, metrics_.steps, target.value(),
                           timeout_cost, obs::RollbackCause::kTimeout,
                           target.value() == 0);
    }
    PARDB_RETURN_IF_ERROR(RollbackTxn(*ctx, target.value()));
  }
  return Status::OK();
}

Status Engine::PeriodicScan() {
  ++metrics_.periodic_scans;
  // One Tarjan sweep finds every deadlocked group at once (each cyclic
  // strongly connected component). Each group is handed to the standard
  // resolver with its youngest member as the pseudo-requester (the
  // transaction whose wait most recently could have closed the cycle), so
  // every victim policy keeps its meaning. Resolving one group can very
  // occasionally re-arrange another (grants shift queues), hence the outer
  // loop until acyclic.
  for (int guard = 0; guard < 4096; ++guard) {
    auto groups = waits_for_.CyclicComponents();
    if (groups.empty()) return Status::OK();
    for (const auto& group : groups) {
      TxnContext* pseudo = nullptr;
      for (graph::VertexId v : group) {
        TxnContext* member = Find(TxnId(v));
        if (member == nullptr) {
          return Status::Internal("cycle contains unknown transaction");
        }
        if (member->status != TxnStatus::kWaiting) {
          pseudo = nullptr;  // stale group: resolved by a previous round
          break;
        }
        if (pseudo == nullptr || member->entry > pseudo->entry) {
          pseudo = member;
        }
      }
      if (pseudo == nullptr) continue;
      auto pending = locks_.Waiting(pseudo->id);
      if (!pending.has_value()) {
        return Status::Internal("cycle member without a pending request");
      }
      PARDB_RETURN_IF_ERROR(
          DetectAndResolve(*pseudo, pending->entity).status());
    }
  }
  return Status::Internal("periodic scan did not converge");
}

std::uint64_t Engine::RollbackCostOf(const TxnContext& victim,
                                     LockIndex target) const {
  return victim.pc - (target < victim.granted.size()
                          ? victim.granted[target].op_index
                          : victim.pc);
}

Status Engine::RollbackTxn(TxnContext& victim, LockIndex target) {
  obs::ScopedTimer rollback_timer(
      probe_ != nullptr ? probe_->rollback_apply_ns : nullptr,
      probe_ != nullptr ? probe_->clock : nullptr);
  const std::uint64_t cost = RollbackCostOf(victim, target);
  Emit(TraceEvent::Kind::kRollback, victim, EntityId(), target, cost);
  if (rollback_costs_.size() < 65536) {
    rollback_costs_.push_back(static_cast<std::uint32_t>(cost));
  }
  ++metrics_.rollbacks;
  if (target == 0) {
    ++metrics_.total_rollbacks;
  } else {
    ++metrics_.partial_rollbacks;
  }
  SampleSpace(victim);

  // Cancel the victim's pending request (every victim is waiting).
  if (auto pending = locks_.Waiting(victim.id)) {
    scratch_grants_.clear();
    PARDB_RETURN_IF_ERROR(
        locks_.CancelWaitInto(victim.id, pending->entity, &scratch_grants_));
    for (const lock::Grant& g : scratch_grants_) {
      PARDB_RETURN_IF_ERROR(HandleGrant(g));
    }
    RefreshWaitEdges(pending->entity);
  }

  // Restore values.
  auto restored = victim.strategy->RestoreTo(target);
  if (!restored.ok()) return restored.status();

  // Undo lock requests with lock state >= target.
  if (target > victim.granted.size()) {
    return Status::Internal("rollback target beyond current lock state");
  }
  scratch_undone_.assign(victim.granted.begin() + target,
                         victim.granted.end());
  victim.granted.truncate(target);
  scratch_handled_.clear();
  for (auto it = scratch_undone_.rbegin(); it != scratch_undone_.rend();
       ++it) {
    const LockRecord& r = *it;
    if (std::find(scratch_handled_.begin(), scratch_handled_.end(),
                  r.entity) != scratch_handled_.end()) {
      continue;
    }
    scratch_handled_.push_back(r.entity);
    bool base_shared_kept = false;
    if (r.is_upgrade) {
      for (const LockRecord& kept : victim.granted) {
        if (kept.entity == r.entity) {
          base_shared_kept = true;
          break;
        }
      }
    }
    scratch_grants_.clear();
    PARDB_RETURN_IF_ERROR(
        base_shared_kept
            ? locks_.DowngradeInto(victim.id, r.entity, &scratch_grants_)
            : locks_.ReleaseInto(victim.id, r.entity, &scratch_grants_));
    for (const lock::Grant& g : scratch_grants_) {
      PARDB_RETURN_IF_ERROR(HandleGrant(g));
    }
    RefreshWaitEdges(r.entity);
  }

  // Reset the program counter to re-execute from lock request target+1.
  const std::size_t new_pc = scratch_undone_.empty()
                                 ? victim.pc
                                 : scratch_undone_.front().op_index;
  if (recorder_ != nullptr) recorder_->OnRollback(victim.id, new_pc);
  victim.pc = static_cast<std::uint32_t>(new_pc);
  victim.status = TxnStatus::kReady;
  MarkReadyDirty(victim);
  return Status::OK();
}

void Engine::Emit(TraceEvent::Kind kind, const TxnContext& ctx,
                  EntityId entity, LockIndex target, std::uint64_t cost) {
  if (trace_ == nullptr) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.step = metrics_.steps;
  ev.txn = ctx.id;
  ev.entity = entity;
  ev.pc = ctx.pc;
  ev.target = target;
  ev.cost = cost;
  trace_->OnEvent(ev);
}

void Engine::MaybeStampJournalEpoch() {
  if (journal_ == nullptr || (metrics_.steps & journal_epoch_mask_) != 0) {
    return;
  }
  // Keyed to the engine's own step counter, which StepQuantum keeps
  // invariant to quantum chopping — so the chain is identical across
  // schedulers, worker counts and quantum sizes.
  journal_->StampEpoch(metrics_.steps, StateDigest());
}

std::uint64_t Engine::StateDigest() const {
  // Every iteration source here is deterministic: live_ is id-ordered (and
  // entry carries each transaction's ω position), granted counts come from
  // per-context vectors, and the lock manager XOR-combines per-entity
  // digests so its hash-order iteration cannot leak through.
  std::uint64_t h = obs::kFnvOffsetBasis;
  for (std::uint64_t v = live_head_; v != kNoneIdx; v = live_next_[v]) {
    const TxnContext& ctx = txns_[v];
    h = obs::FnvMix64(h, v);
    h = obs::FnvMix64(h, ctx.entry);
    h = obs::FnvMix64(h, ctx.pc);
    h = obs::FnvMix64(h, static_cast<std::uint64_t>(ctx.status));
    h = obs::FnvMix64(h, ctx.granted.size());
  }
  h = obs::FnvMix64(h, locks_.StateDigest());
  return h;
}

void Engine::SampleSpace(const TxnContext& ctx) {
  rollback::SpaceStats s = ctx.strategy->Space();
  metrics_.max_entity_copies =
      std::max(metrics_.max_entity_copies, s.peak_entity_copies);
  metrics_.max_var_copies =
      std::max(metrics_.max_var_copies, s.peak_var_copies);
}

Result<std::optional<TxnId>> Engine::StepAny() {
  if (options_.handling == DeadlockHandling::kTimeout) {
    PARDB_RETURN_IF_ERROR(ExpireTimeouts());
  }
  const bool periodic =
      options_.handling == DeadlockHandling::kDetection &&
      options_.detection_mode == DetectionMode::kPeriodic;
  if (periodic && options_.detection_period > 0 &&
      metrics_.steps % options_.detection_period == 0) {
    PARDB_RETURN_IF_ERROR(PeriodicScan());
  }
  // With no holds active, ready_bits_ is authoritative: the live list
  // appends monotonically increasing indices and never reorders, so
  // ascending bit order is exactly the live-list scan order — the k-th set
  // bit is the same candidate the scan would have produced. Holds gate on
  // pc, which changes every step, so any active hold falls back to a full
  // scan into scratch_ready_ (in live order, like the bits).
  const bool use_bits = holds_active_ == 0;
  auto CollectReady = [this, use_bits]() {
    if (use_bits) return;
    scratch_ready_.clear();
    for (std::uint64_t v = live_head_; v != kNoneIdx; v = live_next_[v]) {
      const TxnContext& ctx = txns_[v];
      if (ctx.status != TxnStatus::kReady || ctx.backoff) continue;
      const std::size_t hold_pc = cold_[v].hold_pc;
      if (hold_pc != kNoHold && ctx.pc >= hold_pc) continue;
      scratch_ready_.push_back(ctx.id);
    }
  };
  auto ReadyCount = [this, use_bits]() {
    return use_bits ? ready_count_ : scratch_ready_.size();
  };
  CollectReady();
  if (ReadyCount() == 0 && periodic) {
    // Everyone is blocked: scan immediately instead of waiting out the
    // period (also the only way forward when the whole system deadlocks).
    PARDB_RETURN_IF_ERROR(PeriodicScan());
    CollectReady();
  }
  if (ReadyCount() == 0 &&
      options_.handling == DeadlockHandling::kTimeout) {
    // Everyone is blocked (e.g. an undetected deadlock): fast-forward the
    // logical clock with idle ticks until some wait expires and its owner
    // becomes runnable again.
    auto AnyWaiting = [this]() {
      for (std::uint64_t v = live_head_; v != kNoneIdx; v = live_next_[v]) {
        if (txns_[v].status == TxnStatus::kWaiting) return true;
      }
      return false;
    };
    for (std::uint64_t tick = 0;
         ReadyCount() == 0 && AnyWaiting() &&
         tick <= options_.wait_timeout_steps + 1;
         ++tick) {
      ++metrics_.steps;
      MaybeStampJournalEpoch();
      PARDB_RETURN_IF_ERROR(ExpireTimeouts());
      CollectReady();
    }
  }
  const std::size_t ready_n = ReadyCount();
  if (ready_n == 0) return std::optional<TxnId>();
  // Both draws go through the memoized division-free reducer: round-robin
  // is exactly `rr_cursor_ % ready_n`, and the kRandom draw replays
  // Rng::Uniform's rejection walk bit-for-bit (same threshold, same
  // remainder), so schedules — and therefore journal chains — are
  // unchanged while the per-step divides disappear.
  std::size_t at = 0;
  switch (options_.scheduler) {
    case SchedulerKind::kRoundRobin:
      at = static_cast<std::size_t>(FastModFor(ready_n).Mod(rr_cursor_++));
      break;
    case SchedulerKind::kRandom:
      at = static_cast<std::size_t>(rng_.UniformFast(FastModFor(ready_n)));
      break;
  }
  const TxnId pick =
      use_bits ? TxnId(SelectKthReady(at)) : scratch_ready_[at];
  auto outcome = StepTxn(pick);
  if (!outcome.ok()) return outcome.status();
  return std::optional<TxnId>(pick);
}

Result<QuantumResult> Engine::StepQuantum(std::uint64_t max_steps,
                                          bool stop_after_commit) {
  QuantumResult qr;
  while (qr.steps < max_steps && live_count_ != 0) {
    const std::uint64_t commits_before = metrics_.commits;
    auto stepped = StepAny();
    if (!stepped.ok()) return stepped.status();
    if (!stepped.value().has_value()) {
      qr.ran_dry = true;
      FlushProbes();
      return qr;
    }
    ++qr.steps;
    if (stop_after_commit && metrics_.commits > commits_before) {
      qr.committed = true;
      FlushProbes();
      return qr;
    }
  }
  FlushProbes();
  return qr;
}

Status Engine::RunToCompletion(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (AllCommitted()) {
      FlushProbes();
      return Status::OK();
    }
    auto stepped = StepAny();
    if (!stepped.ok()) return stepped.status();
    if (!stepped.value().has_value()) {
      if (options_.handling == DeadlockHandling::kTimeout) {
        bool any_waiting = false;
        for (std::uint64_t v = live_head_; v != kNoneIdx;
             v = live_next_[v]) {
          if (txns_[v].status == TxnStatus::kWaiting) {
            any_waiting = true;
            break;
          }
        }
        if (any_waiting) continue;  // idle ticks age the waits to expiry
      }
      FlushProbes();
      return Status::Internal(
          "no transaction is ready but not all have committed — lost wakeup "
          "or undetected deadlock:\n" +
          DumpState());
    }
  }
  FlushProbes();
  return Status::ResourceExhausted("max_steps exceeded");
}

bool Engine::AllCommitted() const {
  // The live list holds exactly the uncommitted transactions.
  return live_count_ == 0;
}

TxnStatus Engine::StatusOf(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? TxnStatus::kCommitted : ctx->status;
}

StateIndex Engine::StateIndexOf(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? 0 : ctx->pc;
}

LockIndex Engine::LockCountOf(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? 0 : ctx->granted.size();
}

Timestamp Engine::EntryOf(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? 0 : ctx->entry;
}

const rollback::RollbackStrategy* Engine::StrategyOf(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? nullptr : ctx->strategy;
}

Value Engine::VarValueOf(TxnId txn, txn::VarId var) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? 0 : ctx->strategy->VarValue(var);
}

std::uint64_t Engine::PreemptionCountOf(TxnId txn) const {
  const TxnContext* ctx = Find(txn);
  return ctx == nullptr ? 0 : ColdOf(*ctx).preempted;
}

obs::WaitsForSnapshot Engine::SnapshotWaitsFor() const {
  obs::WaitsForSnapshot snap;
  snap.step = metrics_.steps;
  snap.commits = metrics_.commits;
  for (std::uint64_t v = live_head_; v != kNoneIdx; v = live_next_[v]) {
    const TxnContext* ctx = &txns_[v];
    const TxnId id = ctx->id;
    obs::TxnSnapshot t;
    t.txn = id;
    t.entry = ctx->entry;
    switch (ctx->status) {
      case TxnStatus::kReady:
        t.status = "ready";
        break;
      case TxnStatus::kWaiting:
        t.status = "waiting";
        break;
      case TxnStatus::kCommitted:
        t.status = "committed";
        break;
    }
    t.state_index = ctx->pc;
    t.lock_count = ctx->granted.size();
    t.preemptions = ColdOf(*ctx).preempted;
    t.chain_len = lineage_ != nullptr ? lineage_->ChainLenOf(id) : 0;
    for (const auto& [e, m] : locks_.HeldBy(id)) {
      t.held.push_back(obs::LockGrantRef{e, lock::LockModeName(m)[0]});
    }
    const std::optional<lock::PendingRequest> pending = locks_.Waiting(id);
    if (pending.has_value()) {
      t.has_request = true;
      t.requested = obs::LockGrantRef{pending->entity,
                                      lock::LockModeName(pending->mode)[0]};
    }
    snap.txns.push_back(std::move(t));
  }
  for (const graph::Edge& e : waits_for_.Edges()) {
    // Edge: holder (from) -> waiter (to); the snapshot arc reads "waiter
    // waits for holder", matching the forensic dump's orientation.
    snap.arcs.push_back(
        obs::WaitsForArc{TxnId(e.to), TxnId(e.from), EntityId(e.label)});
  }
  snap.acyclic = waits_for_.IsAcyclic();
  snap.forest = waits_for_.IsForest();
  return snap;
}

CostDistribution ComputeCostDistribution(std::vector<std::uint32_t> costs) {
  CostDistribution d;
  if (costs.empty()) return d;
  std::sort(costs.begin(), costs.end());
  const std::uint64_t n = costs.size();
  // Nearest-rank: percentile P is sorted[ceil(n*P/100) - 1]. The old
  // `(n*95)/100 == n` guard was dead code (true only for n == 0), which
  // made p95 the 95.0th *floor* rank — one element short for n < 20 and
  // never the max even when P says it should be.
  auto Rank = [n, &costs](std::uint64_t p) {
    return costs[std::min<std::uint64_t>(n - 1, (n * p + 99) / 100 - 1)];
  };
  d.count = n;
  d.p50 = Rank(50);
  d.p95 = Rank(95);
  d.max = costs.back();
  std::uint64_t sum = 0;
  for (std::uint32_t c : costs) sum += c;
  d.mean = static_cast<double>(sum) / static_cast<double>(n);
  return d;
}

CostDistribution Engine::RollbackCostDistribution() const {
  return ComputeCostDistribution(rollback_costs_);
}

std::string Engine::DumpState() const {
  std::ostringstream os;
  os << "engine state (" << txns_.size() << " txns):\n";
  for (const TxnContext& ctx : txns_) {
    os << "  " << ctx.id << " pc=" << ctx.pc << "/" << ctx.size
       << " locks=" << ctx.granted.size() << " status="
       << (ctx.status == TxnStatus::kReady
               ? "ready"
               : ctx.status == TxnStatus::kWaiting ? "waiting" : "committed")
       << "\n";
  }
  os << "lock table:\n" << locks_.ToString();
  os << "waits-for:\n" << waits_for_.ToDot();
  return os.str();
}

}  // namespace pardb::core

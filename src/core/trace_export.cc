#include "core/trace_export.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace pardb::core {

namespace {

void AppendId(std::ostringstream& os, const char* key, TxnId id) {
  os << "\"" << key << "\":";
  if (id.valid()) {
    os << id.value();
  } else {
    os << "null";
  }
}

void AppendId(std::ostringstream& os, const char* key, EntityId id) {
  os << "\"" << key << "\":";
  if (id.valid()) {
    os << id.value();
  } else {
    os << "null";
  }
}

bool EndsWait(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kLockGranted:
    case TraceEvent::Kind::kRollback:
    case TraceEvent::Kind::kWound:
    case TraceEvent::Kind::kDeath:
    case TraceEvent::Kind::kTimeout:
    case TraceEvent::Kind::kCommit:
      return true;
    default:
      return false;
  }
}

bool IsRollbackFamily(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kRollback:
    case TraceEvent::Kind::kWound:
    case TraceEvent::Kind::kDeath:
    case TraceEvent::Kind::kTimeout:
      return true;
    default:
      return false;
  }
}

// One Chrome trace_event object. `extra` is injected verbatim after the
// common fields (must start with "," when non-empty).
void EmitEvent(std::ostringstream& os, bool& first, const char* ph,
               const std::string& name, const char* cat, std::uint64_t pid,
               std::uint64_t tid, std::uint64_t ts,
               const std::string& extra) {
  os << (first ? "" : ",") << "\n  {\"ph\":\"" << ph << "\",\"name\":\""
     << name << "\",\"cat\":\"" << cat << "\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":" << ts << extra << "}";
  first = false;
}

void EmitShard(std::ostringstream& os, bool& first, const ShardTrace& shard) {
  const std::uint64_t pid = shard.pid;
  os << (first ? "" : ",") << "\n  {\"ph\":\"M\",\"name\":\"process_name\","
     << "\"pid\":" << pid << ",\"tid\":0,\"args\":{\"name\":\""
     << (shard.name.empty() ? "pardb" : shard.name) << "\"}}";
  first = false;

  std::uint64_t last_step = 0;
  for (const TraceEvent& e : shard.events) last_step = std::max(last_step, e.step);

  // Open B slices (txn lifetimes) and open waits, keyed by txn id.
  std::unordered_map<std::uint64_t, std::uint64_t> open_txn;   // txn -> ts
  std::unordered_map<std::uint64_t, TraceEvent> open_wait;     // txn -> kBlocked

  auto CloseWait = [&](const TraceEvent& start, std::uint64_t end_step) {
    std::ostringstream extra;
    extra << ",\"dur\":" << (end_step - start.step) << ",\"args\":{";
    AppendId(extra, "entity", start.entity);
    extra << ",\"pc\":" << start.pc << "}";
    std::ostringstream name;
    name << "wait " << start.entity;
    EmitEvent(os, first, "X", name.str(), "lock", pid, start.txn.value(),
              start.step, extra.str());
  };

  for (const TraceEvent& e : shard.events) {
    const std::uint64_t tid = e.txn.valid() ? e.txn.value() : 0;
    if (EndsWait(e.kind)) {
      auto it = open_wait.find(tid);
      if (it != open_wait.end()) {
        CloseWait(it->second, e.step);
        open_wait.erase(it);
      }
    }
    switch (e.kind) {
      case TraceEvent::Kind::kSpawn: {
        open_txn[tid] = e.step;
        std::ostringstream name;
        name << e.txn;
        EmitEvent(os, first, "B", name.str(), "txn", pid, tid, e.step, "");
        break;
      }
      case TraceEvent::Kind::kCommit: {
        std::ostringstream name;
        name << e.txn;
        EmitEvent(os, first, "E", name.str(), "txn", pid, tid, e.step, "");
        open_txn.erase(tid);
        break;
      }
      case TraceEvent::Kind::kBlocked:
        open_wait[tid] = e;
        break;
      case TraceEvent::Kind::kLockGranted:
        break;  // visible as the end of the wait slice
      case TraceEvent::Kind::kDeadlock: {
        std::ostringstream name;
        name << "deadlock " << e.entity;
        std::ostringstream extra;
        extra << ",\"s\":\"p\",\"args\":{";
        AppendId(extra, "requester", e.txn);
        extra << ",";
        AppendId(extra, "entity", e.entity);
        extra << ",\"pc\":" << e.pc << "}";
        EmitEvent(os, first, "i", name.str(), "deadlock", pid, tid, e.step,
                  extra.str());
        break;
      }
      default: {
        if (!IsRollbackFamily(e.kind)) break;
        std::ostringstream extra;
        extra << ",\"s\":\"t\",\"args\":{\"target\":" << e.target
              << ",\"cost\":" << e.cost << ",\"pc\":" << e.pc << "}";
        EmitEvent(os, first, "i", std::string(TraceEventKindName(e.kind)),
                  "rollback", pid, tid, e.step, extra.str());
        break;
      }
    }
  }

  // Close dangling slices so partial runs still load cleanly.
  for (const auto& [tid, ev] : open_wait) CloseWait(ev, last_step);
  for (const auto& [tid, ts] : open_txn) {
    (void)ts;
    std::ostringstream name;
    name << "T" << tid;
    EmitEvent(os, first, "E", name.str(), "txn", pid, tid, last_step, "");
  }
}

}  // namespace

std::string TraceEventToJsonLine(const TraceEvent& event) {
  std::ostringstream os;
  os << "{\"kind\":\"" << TraceEventKindName(event.kind)
     << "\",\"step\":" << event.step << ",";
  AppendId(os, "txn", event.txn);
  os << ",";
  AppendId(os, "entity", event.entity);
  os << ",\"pc\":" << event.pc << ",\"target\":" << event.target
     << ",\"cost\":" << event.cost << "}";
  return os.str();
}

std::string ChromeTraceJson(const std::vector<ShardTrace>& shards) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ShardTrace& shard : shards) EmitShard(os, first, shard);
  os << "\n]}\n";
  return os.str();
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::string& process_name) {
  ShardTrace shard;
  shard.pid = 0;
  shard.name = process_name;
  shard.events = events;
  return ChromeTraceJson(std::vector<ShardTrace>{std::move(shard)});
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<ShardTrace>& shards) {
  std::ofstream out(path);
  if (!out) return false;
  out << ChromeTraceJson(shards);
  return static_cast<bool>(out);
}

}  // namespace pardb::core

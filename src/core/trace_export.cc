#include "core/trace_export.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace pardb::core {

namespace {

void AppendId(std::ostringstream& os, const char* key, TxnId id) {
  os << "\"" << key << "\":";
  if (id.valid()) {
    os << id.value();
  } else {
    os << "null";
  }
}

void AppendId(std::ostringstream& os, const char* key, EntityId id) {
  os << "\"" << key << "\":";
  if (id.valid()) {
    os << id.value();
  } else {
    os << "null";
  }
}

bool EndsWait(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kLockGranted:
    case TraceEvent::Kind::kRollback:
    case TraceEvent::Kind::kWound:
    case TraceEvent::Kind::kDeath:
    case TraceEvent::Kind::kTimeout:
    case TraceEvent::Kind::kCommit:
      return true;
    default:
      return false;
  }
}

bool IsRollbackFamily(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kRollback:
    case TraceEvent::Kind::kWound:
    case TraceEvent::Kind::kDeath:
    case TraceEvent::Kind::kTimeout:
      return true;
    default:
      return false;
  }
}

// One Chrome trace_event object. `extra` is injected verbatim after the
// common fields (must start with "," when non-empty).
void EmitEvent(std::ostringstream& os, bool& first, const char* ph,
               const std::string& name, const char* cat, std::uint64_t pid,
               std::uint64_t tid, std::uint64_t ts,
               const std::string& extra) {
  os << (first ? "" : ",") << "\n  {\"ph\":\"" << ph << "\",\"name\":\""
     << name << "\",\"cat\":\"" << cat << "\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":" << ts << extra << "}";
  first = false;
}

void EmitShard(std::ostringstream& os, bool& first, const ShardTrace& shard) {
  const std::uint64_t pid = shard.pid;
  os << (first ? "" : ",") << "\n  {\"ph\":\"M\",\"name\":\"process_name\","
     << "\"pid\":" << pid << ",\"tid\":0,\"args\":{\"name\":\""
     << (shard.name.empty() ? "pardb" : shard.name) << "\"}}";
  first = false;

  std::uint64_t last_step = 0;
  for (const TraceEvent& e : shard.events) last_step = std::max(last_step, e.step);

  // Open B slices (txn lifetimes) and open waits, keyed by txn id.
  std::unordered_map<std::uint64_t, std::uint64_t> open_txn;   // txn -> ts
  std::unordered_map<std::uint64_t, TraceEvent> open_wait;     // txn -> kBlocked

  auto CloseWait = [&](const TraceEvent& start, std::uint64_t end_step) {
    std::ostringstream extra;
    extra << ",\"dur\":" << (end_step - start.step) << ",\"args\":{";
    AppendId(extra, "entity", start.entity);
    extra << ",\"pc\":" << start.pc << "}";
    std::ostringstream name;
    name << "wait " << start.entity;
    EmitEvent(os, first, "X", name.str(), "lock", pid, start.txn.value(),
              start.step, extra.str());
  };

  for (const TraceEvent& e : shard.events) {
    const std::uint64_t tid = e.txn.valid() ? e.txn.value() : 0;
    if (EndsWait(e.kind)) {
      auto it = open_wait.find(tid);
      if (it != open_wait.end()) {
        CloseWait(it->second, e.step);
        open_wait.erase(it);
      }
    }
    switch (e.kind) {
      case TraceEvent::Kind::kSpawn: {
        open_txn[tid] = e.step;
        std::ostringstream name;
        name << e.txn;
        EmitEvent(os, first, "B", name.str(), "txn", pid, tid, e.step, "");
        break;
      }
      case TraceEvent::Kind::kCommit: {
        std::ostringstream name;
        name << e.txn;
        EmitEvent(os, first, "E", name.str(), "txn", pid, tid, e.step, "");
        open_txn.erase(tid);
        break;
      }
      case TraceEvent::Kind::kBlocked:
        open_wait[tid] = e;
        break;
      case TraceEvent::Kind::kLockGranted:
        break;  // visible as the end of the wait slice
      case TraceEvent::Kind::kDeadlock: {
        std::ostringstream name;
        name << "deadlock " << e.entity;
        std::ostringstream extra;
        extra << ",\"s\":\"p\",\"args\":{";
        AppendId(extra, "requester", e.txn);
        extra << ",";
        AppendId(extra, "entity", e.entity);
        extra << ",\"pc\":" << e.pc << "}";
        EmitEvent(os, first, "i", name.str(), "deadlock", pid, tid, e.step,
                  extra.str());
        break;
      }
      default: {
        if (!IsRollbackFamily(e.kind)) break;
        std::ostringstream extra;
        extra << ",\"s\":\"t\",\"args\":{\"target\":" << e.target
              << ",\"cost\":" << e.cost << ",\"pc\":" << e.pc << "}";
        EmitEvent(os, first, "i", std::string(TraceEventKindName(e.kind)),
                  "rollback", pid, tid, e.step, extra.str());
        break;
      }
    }
  }

  // Close dangling slices so partial runs still load cleanly.
  for (const auto& [tid, ev] : open_wait) CloseWait(ev, last_step);
  for (const auto& [tid, ts] : open_txn) {
    (void)ts;
    std::ostringstream name;
    name << "T" << tid;
    EmitEvent(os, first, "E", name.str(), "txn", pid, tid, last_step, "");
  }
}

// Flow arrows for cross-shard transactions: each global's slices (sorted
// by spawn step, ties by pid) chain through ph "s" -> "t"... -> "f" events
// sharing the global sequence number as the flow id. Each flow event binds
// to the enclosing txn slice on its (pid, tid) track at the slice's spawn
// step, which is where Perfetto anchors the arrow; bp:"e" makes the finish
// bind to the enclosing slice rather than the next one.
void EmitFlows(std::ostringstream& os, bool& first,
               const std::vector<ShardTrace>& shards,
               const std::vector<GlobalSlice>& flows) {
  if (flows.empty()) return;
  // (pid, tid) -> first spawn step in that shard's stream.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> spawn_step;
  for (const ShardTrace& shard : shards) {
    for (const TraceEvent& e : shard.events) {
      if (e.kind != TraceEvent::Kind::kSpawn || !e.txn.valid()) continue;
      spawn_step.try_emplace({shard.pid, e.txn.value()}, e.step);
    }
  }
  std::map<std::uint64_t, std::vector<GlobalSlice>> by_global;
  for (const GlobalSlice& s : flows) by_global[s.global].push_back(s);
  for (auto& [global, slices] : by_global) {
    struct Anchor {
      std::uint64_t pid, tid, ts;
    };
    std::vector<Anchor> anchors;
    for (const GlobalSlice& s : slices) {
      auto it = spawn_step.find({s.pid, s.tid});
      if (it == spawn_step.end()) continue;  // slice never spawned (trace cut)
      anchors.push_back(Anchor{s.pid, s.tid, it->second});
    }
    if (anchors.size() < 2) continue;  // nothing to link
    std::sort(anchors.begin(), anchors.end(), [](const Anchor& a,
                                                 const Anchor& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.pid < b.pid;
    });
    std::ostringstream name;
    name << "global G" << global;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const Anchor& a = anchors[i];
      const bool last = i + 1 == anchors.size();
      const char* ph = i == 0 ? "s" : (last ? "f" : "t");
      std::ostringstream extra;
      extra << ",\"id\":" << global;
      if (last) extra << ",\"bp\":\"e\"";
      EmitEvent(os, first, ph, name.str(), "xshard", a.pid, a.tid, a.ts,
                extra.str());
    }
  }
}

}  // namespace

std::string TraceEventToJsonLine(const TraceEvent& event) {
  std::ostringstream os;
  os << "{\"kind\":\"" << TraceEventKindName(event.kind)
     << "\",\"step\":" << event.step << ",";
  AppendId(os, "txn", event.txn);
  os << ",";
  AppendId(os, "entity", event.entity);
  os << ",\"pc\":" << event.pc << ",\"target\":" << event.target
     << ",\"cost\":" << event.cost << "}";
  return os.str();
}

std::string ChromeTraceJson(const std::vector<ShardTrace>& shards,
                            const std::vector<GlobalSlice>& flows) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ShardTrace& shard : shards) EmitShard(os, first, shard);
  EmitFlows(os, first, shards, flows);
  os << "\n]}\n";
  return os.str();
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::string& process_name) {
  ShardTrace shard;
  shard.pid = 0;
  shard.name = process_name;
  shard.events = events;
  return ChromeTraceJson(std::vector<ShardTrace>{std::move(shard)});
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<ShardTrace>& shards,
                          const std::vector<GlobalSlice>& flows) {
  std::ofstream out(path);
  if (!out) return false;
  out << ChromeTraceJson(shards, flows);
  return static_cast<bool>(out);
}

}  // namespace pardb::core

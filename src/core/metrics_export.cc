#include "core/metrics_export.h"

#include "obs/metric_names.h"

namespace pardb::core {

void ExportEngineMetrics(const Engine& engine, obs::MetricsRegistry* registry,
                         const obs::LabelSet& labels) {
  const EngineMetrics& m = engine.metrics();
  auto Add = [&](const char* name, std::uint64_t v) {
    registry->GetCounter(name, labels)->Inc(v);
  };
  Add(obs::kStepsTotal, m.steps);
  Add(obs::kOpsExecutedTotal, m.ops_executed);
  Add(obs::kCommitsTotal, m.commits);
  Add(obs::kLockWaitsTotal, m.lock_waits);
  Add(obs::kDeadlocksTotal, m.deadlocks);
  Add(obs::kRollbacksTotal, m.rollbacks);
  Add(obs::kPartialRollbacksTotal, m.partial_rollbacks);
  Add(obs::kTotalRollbacksTotal, m.total_rollbacks);
  Add(obs::kPreemptionsTotal, m.preemptions);
  Add(obs::kWoundsTotal, m.wounds);
  Add(obs::kDeathsTotal, m.deaths);
  Add(obs::kTimeoutsTotal, m.timeouts);
  Add(obs::kWastedOpsTotal, m.wasted_ops);
  Add(obs::kIdealWastedOpsTotal, m.ideal_wasted_ops);
  Add(obs::kCyclesFoundTotal, m.cycles_found);
  Add(obs::kPeriodicScansTotal, m.periodic_scans);
  Add(obs::kProgramCompileTotal, m.programs_compiled);
  Add(obs::kProgramCacheHitsTotal, m.compile_cache_hits);
  Add(obs::kCompiledBytesTotal, m.compiled_bytes);

  registry->GetGauge(obs::kMaxEntityCopies, labels)
      ->SetMax(static_cast<std::int64_t>(m.max_entity_copies));
  registry->GetGauge(obs::kMaxVarCopies, labels)
      ->SetMax(static_cast<std::int64_t>(m.max_var_copies));
  registry->GetGauge(obs::kLiveTxns, labels)
      ->Set(static_cast<std::int64_t>(engine.live_txn_count()));
  registry->GetGauge(obs::kWaitingTxns, labels)
      ->Set(static_cast<std::int64_t>(engine.lock_manager().WaitingCount()));

  obs::Histogram* costs = registry->GetHistogram(obs::kRollbackCostOps, labels);
  for (std::uint32_t c : engine.rollback_cost_samples()) costs->Record(c);
}

void EngineMetricsExporter::Export(const Engine& engine,
                                   obs::MetricsRegistry* registry,
                                   const obs::LabelSet& labels) {
  const EngineMetrics& m = engine.metrics();
  auto Add = [&](const char* name, std::uint64_t cur, std::uint64_t prev) {
    if (cur > prev) registry->GetCounter(name, labels)->Inc(cur - prev);
  };
  Add(obs::kStepsTotal, m.steps, last_.steps);
  Add(obs::kOpsExecutedTotal, m.ops_executed, last_.ops_executed);
  Add(obs::kCommitsTotal, m.commits, last_.commits);
  Add(obs::kLockWaitsTotal, m.lock_waits, last_.lock_waits);
  Add(obs::kDeadlocksTotal, m.deadlocks, last_.deadlocks);
  Add(obs::kRollbacksTotal, m.rollbacks, last_.rollbacks);
  Add(obs::kPartialRollbacksTotal, m.partial_rollbacks,
      last_.partial_rollbacks);
  Add(obs::kTotalRollbacksTotal, m.total_rollbacks, last_.total_rollbacks);
  Add(obs::kPreemptionsTotal, m.preemptions, last_.preemptions);
  Add(obs::kWoundsTotal, m.wounds, last_.wounds);
  Add(obs::kDeathsTotal, m.deaths, last_.deaths);
  Add(obs::kTimeoutsTotal, m.timeouts, last_.timeouts);
  Add(obs::kWastedOpsTotal, m.wasted_ops, last_.wasted_ops);
  Add(obs::kIdealWastedOpsTotal, m.ideal_wasted_ops, last_.ideal_wasted_ops);
  Add(obs::kCyclesFoundTotal, m.cycles_found, last_.cycles_found);
  Add(obs::kPeriodicScansTotal, m.periodic_scans, last_.periodic_scans);
  // Compile-cache series are created unconditionally (not through the
  // cur > prev guard): a zero-hit run must still expose the series so
  // consumers can distinguish "no hits" from "not instrumented".
  auto AddAlways = [&](const char* name, std::uint64_t cur,
                       std::uint64_t prev) {
    registry->GetCounter(name, labels)->Inc(cur - prev);
  };
  AddAlways(obs::kProgramCompileTotal, m.programs_compiled,
            last_.programs_compiled);
  AddAlways(obs::kProgramCacheHitsTotal, m.compile_cache_hits,
            last_.compile_cache_hits);
  AddAlways(obs::kCompiledBytesTotal, m.compiled_bytes, last_.compiled_bytes);

  registry->GetGauge(obs::kMaxEntityCopies, labels)
      ->SetMax(static_cast<std::int64_t>(m.max_entity_copies));
  registry->GetGauge(obs::kMaxVarCopies, labels)
      ->SetMax(static_cast<std::int64_t>(m.max_var_copies));
  registry->GetGauge(obs::kLiveTxns, labels)
      ->Set(static_cast<std::int64_t>(engine.live_txn_count()));
  registry->GetGauge(obs::kWaitingTxns, labels)
      ->Set(static_cast<std::int64_t>(engine.lock_manager().WaitingCount()));

  const std::vector<std::uint32_t>& samples = engine.rollback_cost_samples();
  obs::Histogram* costs = registry->GetHistogram(obs::kRollbackCostOps, labels);
  for (std::size_t i = cost_samples_exported_; i < samples.size(); ++i) {
    costs->Record(samples[i]);
  }
  cost_samples_exported_ = samples.size();
  last_ = m;
}

}  // namespace pardb::core

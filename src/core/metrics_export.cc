#include "core/metrics_export.h"

namespace pardb::core {

void ExportEngineMetrics(const Engine& engine, obs::MetricsRegistry* registry,
                         const obs::LabelSet& labels) {
  const EngineMetrics& m = engine.metrics();
  auto Add = [&](const char* name, std::uint64_t v) {
    registry->GetCounter(name, labels)->Inc(v);
  };
  Add("pardb_steps_total", m.steps);
  Add("pardb_ops_executed_total", m.ops_executed);
  Add("pardb_commits_total", m.commits);
  Add("pardb_lock_waits_total", m.lock_waits);
  Add("pardb_deadlocks_total", m.deadlocks);
  Add("pardb_rollbacks_total", m.rollbacks);
  Add("pardb_partial_rollbacks_total", m.partial_rollbacks);
  Add("pardb_total_rollbacks_total", m.total_rollbacks);
  Add("pardb_preemptions_total", m.preemptions);
  Add("pardb_wounds_total", m.wounds);
  Add("pardb_deaths_total", m.deaths);
  Add("pardb_timeouts_total", m.timeouts);
  Add("pardb_wasted_ops_total", m.wasted_ops);
  Add("pardb_ideal_wasted_ops_total", m.ideal_wasted_ops);
  Add("pardb_cycles_found_total", m.cycles_found);
  Add("pardb_periodic_scans_total", m.periodic_scans);

  registry->GetGauge("pardb_max_entity_copies", labels)
      ->SetMax(static_cast<std::int64_t>(m.max_entity_copies));
  registry->GetGauge("pardb_max_var_copies", labels)
      ->SetMax(static_cast<std::int64_t>(m.max_var_copies));
  registry->GetGauge("pardb_live_txns", labels)
      ->Set(static_cast<std::int64_t>(engine.live_txn_count()));

  obs::Histogram* costs =
      registry->GetHistogram("pardb_rollback_cost_ops", labels);
  for (std::uint32_t c : engine.rollback_cost_samples()) costs->Record(c);
}

}  // namespace pardb::core

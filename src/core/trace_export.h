#ifndef PARDB_CORE_TRACE_EXPORT_H_
#define PARDB_CORE_TRACE_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/trace.h"

namespace pardb::core {

// One engine event as a single-line JSON object:
//   {"kind":"block","step":12,"txn":2,"entity":5,"pc":3,"target":0,"cost":0}
// Invalid ids (entity on spawn/commit events) serialize as null.
std::string TraceEventToJsonLine(const TraceEvent& event);

// Streaming sink that writes one JSON object per event line (JSONL) to an
// ostream. The stream must outlive the sink.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream* out) : out_(out) {}

  void OnEvent(const TraceEvent& event) override {
    *out_ << TraceEventToJsonLine(event) << "\n";
  }

 private:
  std::ostream* out_;
};

// The event stream of one engine (one shard) destined for the Chrome
// trace: `pid` becomes the trace process id, `name` its process_name.
struct ShardTrace {
  std::uint64_t pid = 0;
  std::string name;
  std::vector<TraceEvent> events;  // in emission order
};

// One slice of a cross-shard (global) transaction: the shard-local
// transaction `tid` running on process `pid` belongs to the global
// transaction with sequence number `global`. The sharded driver fills
// these from the coordinator's slice index so the Chrome trace can draw
// flow arrows linking a split transaction's slices across shard tracks.
struct GlobalSlice {
  std::uint64_t global = 0;  // global sequence number (the flow id)
  std::uint64_t pid = 0;     // home shard of the slice
  std::uint64_t tid = 0;     // local txn id on that shard
};

// Renders engine events as a Chrome trace_event JSON document (loadable in
// Perfetto / about://tracing). Timestamps are engine steps expressed as
// microseconds; pid = shard, tid = transaction. Mapping:
//  * kSpawn/kCommit        -> B/E duration slice spanning the txn lifetime
//  * kBlocked              -> X slice "wait E<n>" lasting until the next
//                             grant or rollback-family event of that txn
//  * kDeadlock             -> instant "deadlock E<n>"
//  * kRollback/kWound/
//    kDeath/kTimeout       -> instant with target/cost args
//  * GlobalSlice groups    -> ph "s"/"t"/"f" flow events ("global G<seq>")
//                             binding the slices of one global transaction
//                             — and its 2PC prepare/resolve points — into
//                             one arrow chain across shard tracks, ordered
//                             by each slice's spawn step
// Slices left open at the end of a shard's stream are closed at its last
// step so partial runs still load.
std::string ChromeTraceJson(const std::vector<ShardTrace>& shards,
                            const std::vector<GlobalSlice>& flows = {});

// Convenience for a single-engine run.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::string& process_name = "pardb");

// Writes `ChromeTraceJson(shards, flows)` to `path`. Returns false on I/O
// failure.
bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<ShardTrace>& shards,
                          const std::vector<GlobalSlice>& flows = {});

}  // namespace pardb::core

#endif  // PARDB_CORE_TRACE_EXPORT_H_

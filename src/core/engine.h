#ifndef PARDB_CORE_ENGINE_H_
#define PARDB_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/history.h"
#include "common/arena.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/trace.h"
#include "obs/forensics.h"
#include "obs/journal.h"
#include "obs/lineage.h"
#include "obs/probe.h"
#include "obs/snapshot.h"
#include "obs/txnlife.h"
#include "core/victim_policy.h"
#include "graph/digraph.h"
#include "lock/lock_manager.h"
#include "rollback/strategy.h"
#include "storage/entity_store.h"
#include "txn/compiled.h"
#include "txn/program.h"

namespace pardb::core {

// How Run()/StepAny() pick the next ready transaction.
enum class SchedulerKind {
  kRoundRobin,  // rotate over ready transactions in id order
  kRandom,      // seeded uniform choice (deterministic per seed)
};

// How conflicts that cannot be granted are kept deadlock-free (§3.3). The
// paper's core machinery is kDetection — maintain the concurrency graph and
// intervene on cycles. Distributed systems often cannot afford the global
// graph; the classical alternative is timestamp-based *prevention*
// ([7,10]): decide wait-vs-rollback per conflict from entry timestamps
// alone. The paper notes these schemes "in no way invalidate the advantages
// of rolling a transaction back to the latest possible state" — both
// prevention modes here use the configured rollback strategy, so the
// classical abort becomes a partial rollback.
enum class DeadlockHandling {
  kDetection,  // waits-for graph + victim policy (centralized, §2/§3.1)
  // Wound-wait: a requester preempts ("wounds") every younger holder —
  // rolled back past its conflicting lock — and waits only for older ones.
  // Waits point young -> old only, so no cycle can form. Holders already in
  // their shrinking phase are never wounded (they cannot deadlock).
  kWoundWait,
  // Wait-die: a requester younger than any blocker "dies" — it is rolled
  // back to the latest lock state at which it holds nothing an *older*
  // transaction currently waits for (often a zero-cost cancel-and-retry),
  // and retries. Only the locally known wait queues are consulted: no
  // global information is needed.
  kWaitDie,
  // The crudest classical baseline: no graph at all; a transaction whose
  // wait exceeds EngineOptions::wait_timeout_steps engine steps is rolled
  // back (to the latest lock state at which it holds nothing anyone is
  // queued for) and retries. Breaks deadlocks eventually but also fires on
  // long waits that are not deadlocks. Timeouts are checked by StepAny()/
  // RunToCompletion(); purely manual StepTxn() driving never expires them.
  kTimeout,
};

std::string_view DeadlockHandlingName(DeadlockHandling handling);

// When the cycle detector runs (kDetection only). Continuous detection —
// the paper's model — checks at every wait response, exploiting that all
// new cycles pass through the requester. Periodic detection amortises the
// check over many steps at the price of transactions sitting in undetected
// deadlocks between scans.
enum class DetectionMode {
  kContinuous,
  kPeriodic,
};

struct EngineOptions {
  rollback::StrategyKind strategy = rollback::StrategyKind::kMcs;
  DeadlockHandling handling = DeadlockHandling::kDetection;
  VictimPolicyKind victim_policy = VictimPolicyKind::kMinCostOrdered;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  std::uint64_t seed = 42;
  // Lower each admitted program once into the flat µop stream the hot
  // execution path dispatches on (txn/compiled.h, DESIGN D16), cached per
  // unique op sequence. Off: every step decodes the AoS Op vector — the
  // fallback interpreter kept for differential testing and as the path for
  // programs the compiler rejects. Execution results, schedules, reports
  // and journal chains are bit-identical either way.
  bool compile_programs = true;
  // Default: strict FIFO lock queues with queue-aware waits-for arcs. The
  // paper's own grant rule (compatibility with holders only, §2) lets a
  // rolled-back victim's re-acquired shared locks bypass a queued writer
  // forever — writer starvation that presents as unbounded deadlock
  // recurrence (measured in bench_fig3_shared). The paper leaves fairness
  // out of scope; set {false, kHoldersOnly} to reproduce its exact model
  // (the figure scenarios do).
  lock::LockManager::Options lock_options{
      /*fifo_fairness=*/true,
      /*wait_edge_policy=*/lock::WaitEdgePolicy::kHoldersAndQueue};
  // §5 optimisation: once a transaction's statically known last lock
  // request is granted it can never be rolled back again, so its rollback
  // strategy stops recording history.
  bool use_last_lock_declaration = true;
  // Cap on simple-cycle enumeration per deadlock (shared locks can close
  // many cycles with one wait; all pass through the requester).
  std::size_t max_cycles_per_deadlock = 64;
  // Above this many distinct cut candidates the vertex-cut solver falls
  // back from exact branch-and-bound to greedy.
  std::size_t exact_cut_limit = 24;
  // When true and several cycles exist (shared locks), choose between the
  // requester and a minimum-cost vertex cut (§3.2). When false, multi-cycle
  // deadlocks always roll back the requester.
  bool optimize_vertex_cut = true;
  // Keep at most this many deadlock events for inspection.
  std::size_t max_recorded_events = 4096;
  // kTimeout only: a wait older than this many engine steps is expired.
  std::uint64_t wait_timeout_steps = 64;
  // kDetection only: continuous (at every wait) or periodic scans.
  DetectionMode detection_mode = DetectionMode::kContinuous;
  // kPeriodic only: scan cadence in engine steps (StepAny also scans
  // whenever every transaction is blocked).
  std::uint64_t detection_period = 32;
  // Decision-journal epoch cadence: with a journal installed, an epoch
  // checksum (StateDigest over lock table, live set and ω-order) is
  // stamped whenever the step counter crosses a multiple of this period
  // (rounded up to a power of two). Stamping is keyed to the engine's own
  // deterministic step count — never to scheduler quanta or wall time — so
  // the chain is invariant to quantum chopping, worker count and
  // scheduler. 0 disables engine-driven stamps.
  std::uint64_t journal_epoch_steps = 1024;
  // Test hook (determinism-forensics CI): when nonzero, the Nth *flippable*
  // single-cycle resolution (one cycle, >= 2 candidates) trades the victim
  // pick for another candidate, injecting exactly one divergent decision so
  // diff tooling can be exercised against a controlled break. Counted per
  // engine over flip opportunities — not raw deadlocks, which may route
  // through multi-cycle branches where no alternate pick exists. Never set
  // in production.
  std::uint64_t debug_flip_victim_deadlock = 0;
};

// One resolved deadlock, for tests/benches that assert the paper's figures.
struct DeadlockEvent {
  TxnId requester;
  EntityId requested_entity;
  std::size_t num_cycles = 0;
  std::vector<TxnId> cycle_txns;       // members of the first cycle found
  std::vector<EntityId> cycle_entities;  // entities on that cycle's arcs
  std::vector<VictimCandidate> candidates;
  std::vector<TxnId> victims;  // usually one; a vertex cut can have several
  // Summed over victims:
  std::uint64_t total_cost = 0;        // actually paid (strategy-coarsened)
  std::uint64_t total_ideal_cost = 0;  // what exact restoration would pay
};

struct EngineMetrics {
  std::uint64_t steps = 0;          // StepTxn calls that did work
  std::uint64_t ops_executed = 0;   // ops completed (incl. re-execution)
  std::uint64_t commits = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t rollbacks = 0;          // victims rolled back
  std::uint64_t partial_rollbacks = 0;  // target lock state > 0
  std::uint64_t total_rollbacks = 0;    // target lock state == 0
  std::uint64_t preemptions = 0;        // victim != requester
  std::uint64_t wounds = 0;             // wound-wait preemptions
  std::uint64_t deaths = 0;             // wait-die self-rollbacks
  std::uint64_t timeouts = 0;           // kTimeout wait expirations
  std::uint64_t wasted_ops = 0;         // sum of actual rollback costs
  std::uint64_t ideal_wasted_ops = 0;   // sum of ideal rollback costs
  std::uint64_t cycles_found = 0;
  std::uint64_t periodic_scans = 0;  // kPeriodic graph sweeps performed
  // Compile-cache telemetry (deterministic: a pure function of the admitted
  // program sequence, never of wall time). Excluded from report
  // serialization so pre-compilation goldens stay byte-identical.
  std::uint64_t programs_compiled = 0;    // distinct programs lowered
  std::uint64_t compile_cache_hits = 0;   // admissions served from cache
  std::uint64_t compiled_bytes = 0;       // µop bytes resident in the cache
  // Space accounting sampled at every rollback and commit.
  std::size_t max_entity_copies = 0;  // max per-transaction peak
  std::size_t max_var_copies = 0;
};

// Percentiles over the recorded per-rollback costs (lost state-index
// progress). Empty when no rollback happened.
struct CostDistribution {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
};

// Nearest-rank percentiles over a cost sample (the percentile-P value is
// sorted[ceil(n*P/100) - 1]). Shared by Engine::RollbackCostDistribution
// and by aggregators that merge samples from several engines.
CostDistribution ComputeCostDistribution(std::vector<std::uint32_t> costs);

// uint8-backed so a TxnContext status read touches one byte of the hot
// cache line (digests cast to uint64 — the values are unchanged).
enum class TxnStatus : std::uint8_t { kReady, kWaiting, kCommitted };

// What one StepQuantum call did and why it returned (see StepQuantum).
struct QuantumResult {
  std::uint64_t steps = 0;  // StepAny calls that stepped a transaction
  bool ran_dry = false;     // stopped early: no transaction was ready
  bool committed = false;   // stopped early: a step committed a transaction
                            // (only with stop_after_commit)
};

// What one StepTxn performed.
enum class StepOutcome {
  kExecuted,    // one op completed
  kBlocked,     // lock request queued; transaction now waits
  kRolledBack,  // lock request triggered a deadlock resolved against self
  kCommitted,   // transaction finished
  kIdle,        // transaction is waiting (or committed); nothing done
};

// The database engine of the paper's model: a two-phase-locking scheduler
// with continuous deadlock detection on the concurrency graph and partial
// rollback as the deadlock intervention (§2 response rules 1-3).
//
// Deterministic: given the same programs, spawn order, options and seed,
// every run produces the identical interleaving, deadlocks and metrics.
// Single-threaded by design — the paper's concurrency is the logical
// interleaving of transaction steps, which Run() drives.
class Engine {
 public:
  Engine(storage::EntityStore* store, EngineOptions options,
         analysis::HistoryRecorder* recorder = nullptr);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Admits a transaction (an execution instance of `program`). Entry order
  // defines the Theorem 2 ordering. Late admission is first-class: Spawn
  // may be called at any point between steps — mid-run admissions join the
  // StepAny/StepQuantum live set exactly as if present from the start,
  // which is what lets drivers stream arrivals in (closed-loop refill,
  // pipelined admission) without a pre-materialized workload.
  Result<TxnId> Spawn(txn::Program program);
  Result<TxnId> Spawn(std::shared_ptr<const txn::Program> program);

  // Cross-shard sub-transactions -------------------------------------------
  //
  // A shard-spanning transaction executes as one sub-transaction per home
  // shard, each an ordinary local transaction except for a *hold point*: the
  // program position (= its lock-acquisition count) at which it parks until
  // an external coordinator releases it. While parked the scheduler skips it
  // (it holds its locks but never runs), so the coordinator can line up the
  // global lock point across shards. Because a held sub might still be
  // rolled back by a *global* cycle, its §5 last-lock seal is deferred: the
  // strategy keeps recording past the last local lock grant and is sealed
  // only at ReleaseHold().

  // Spawns `program` as a sub-transaction that parks at pc == hold_pc.
  Result<TxnId> SpawnSub(txn::Program program, std::size_t hold_pc);

  // True iff txn is parked at its hold point (ready, pc >= hold_pc).
  bool AtHold(TxnId txn) const;

  // Clears the hold point, letting the scheduler run txn to completion, and
  // applies the deferred §5 seal (under detection the sub can no longer be
  // a rollback victim once the coordinator commits to the global order).
  Status ReleaseHold(TxnId txn);

  // Prices rolling txn back far enough to stop conflicting over `conflicts`
  // (the §3.1 candidate computation, exposed for a global victim search
  // across shards). Does not mutate anything.
  Result<VictimCandidate> PlanConflictRelease(
      TxnId txn,
      const std::vector<std::pair<EntityId, lock::LockMode>>& conflicts) const;

  // Executes a partial rollback decided by an external coordinator (the
  // distributed analogue of a detection victim): accounts the cost as a
  // preemption and rolls txn back to lock state `target`. The victim may be
  // parked at a hold point (not waiting) — its pending request, if any, is
  // cancelled like a local victim's.
  Status ApplyExternalRollback(TxnId txn, LockIndex target,
                               std::uint64_t cost, std::uint64_t ideal_cost);

  // Parks (`on`) or unparks a ready transaction without touching its locks:
  // while backed off the scheduler skips it, so it cannot re-request what a
  // rollback just released. The coordinator backs a distributed-rollback
  // victim off for one epoch so the cycle's beneficiaries make durable
  // progress before the victim re-contends (otherwise the coordinator and a
  // shard's local detection can re-create the identical cycle forever — the
  // cross-layer analogue of Figure 2's infinite mutual preemption).
  Status SetBackoff(TxnId txn, bool on);

  // Executes the next operation of `txn` (granting its pending lock counts
  // as progress only via HandleGrant on a release; a waiting transaction
  // returns kIdle).
  Result<StepOutcome> StepTxn(TxnId txn);

  // Steps one ready transaction chosen by the scheduler. Returns the
  // transaction stepped, or nullopt when none is ready.
  Result<std::optional<TxnId>> StepAny();

  // Runs up to `max_steps` scheduler steps (StepAny) as one bounded
  // quantum. Stops early when every spawned transaction has committed,
  // when no transaction is ready (`ran_dry` — a stall for a self-contained
  // engine), or, with `stop_after_commit`, right after any step that
  // commits a transaction (so a driver can refill its multiprogramming
  // level at exactly the points a per-step loop would). The engine keeps
  // no per-quantum state: chopping a run into quanta of any sizes yields
  // the identical step sequence as one unbounded quantum, which is what
  // lets the sharded driver time-slice shards across worker threads
  // without disturbing per-shard determinism.
  Result<QuantumResult> StepQuantum(std::uint64_t max_steps,
                                    bool stop_after_commit = false);

  // Runs until every spawned transaction commits; fails with
  // ResourceExhausted after max_steps or Internal if no transaction is
  // ready while some are unfinished.
  Status RunToCompletion(std::uint64_t max_steps = 100'000'000);

  bool AllCommitted() const;

  // Introspection ------------------------------------------------------------

  TxnStatus StatusOf(TxnId txn) const;
  // Current state index (program counter) — the paper's state numbering.
  StateIndex StateIndexOf(TxnId txn) const;
  // Number of granted lock requests (current lock index).
  LockIndex LockCountOf(TxnId txn) const;
  Timestamp EntryOf(TxnId txn) const;
  const rollback::RollbackStrategy* StrategyOf(TxnId txn) const;
  Value VarValueOf(TxnId txn, txn::VarId var) const;

  const graph::Digraph& waits_for() const { return waits_for_; }
  const lock::LockManager& lock_manager() const { return locks_; }
  const storage::EntityStore& store() const { return *store_; }
  const EngineMetrics& metrics() const { return metrics_; }
  const std::vector<DeadlockEvent>& deadlock_events() const {
    return deadlock_events_;
  }
  // Distribution of individual rollback costs (bounded sample of the most
  // recent 64k rollbacks).
  CostDistribution RollbackCostDistribution() const;
  // The raw bounded sample behind RollbackCostDistribution, for aggregators
  // that merge several engines' costs into one distribution.
  const std::vector<std::uint32_t>& rollback_cost_samples() const {
    return rollback_costs_;
  }
  const EngineOptions& options() const { return options_; }

  // Installs an event observer (nullptr to detach). Not owned; must
  // outlive the engine or be detached first.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  // Installs telemetry probes (nullptr to detach). The probe (and the
  // metrics behind it) must outlive the engine or be detached first. Also
  // hands the embedded lock probe to the lock manager.
  void set_probe(const obs::EngineProbe* probe) {
    probe_ = probe;
    locks_.set_probe(probe != nullptr ? &probe->lock : nullptr);
  }

  // Installs a deadlock forensics sink (nullptr to detach): one
  // DeadlockDump per resolved deadlock, emitted after victim selection and
  // before any rollback mutates the cycle.
  void set_forensics(obs::DeadlockDumpSink* sink) { forensics_ = sink; }

  // Installs a rollback-lineage tracker (nullptr to detach): fed one event
  // per preemption (detection victims and wound-wait wounds), an
  // ω-intervention whenever the ordered victim policy overrides the pure
  // min-cost choice, and a retirement per commit. Not owned; must outlive
  // the engine or be detached first.
  void set_lineage(obs::LineageTracker* lineage) { lineage_ = lineage; }

  // Installs a transaction-lifecycle book (nullptr to detach): stamped at
  // admit, every executed op, block/wake, cause-tagged rollback and commit.
  // Not owned; must outlive the engine or be detached first. Like lineage,
  // written only from the thread stepping this engine.
  void set_txnlife(obs::TxnLifeBook* book) { txnlife_ = book; }

  // Installs a decision journal (nullptr to detach): one compact record
  // per schedule-relevant decision plus an epoch checksum chain stamped at
  // deterministic step boundaries (see EngineOptions::journal_epoch_steps
  // and DESIGN D14). Observation-only — installing a journal never alters
  // any scheduling or victim decision. Not owned; must outlive the engine
  // or be detached first; written only from the thread stepping this
  // engine.
  void set_journal(obs::DecisionJournal* journal) { journal_ = journal; }

  // Deterministic FNV digest of the schedule-relevant engine state: the
  // live set in ω-order (entry, pc, status, granted-lock count per
  // transaction) folded with the lock manager's table digest. Two runs at
  // the same step with equal digests are in the same scheduling state.
  std::uint64_t StateDigest() const;

  // Materializes the full waits-for state at this instant: every live
  // transaction (status, ω position, state/lock indices, held and
  // requested locks, preemption lineage), every waits-for arc, and the
  // Theorem 1 structure flags. Called between steps — the engine is
  // single-threaded, so the snapshot is internally consistent; callers on
  // other threads receive a published copy (see obs::LiveHub), never this
  // engine.
  obs::WaitsForSnapshot SnapshotWaitsFor() const;

  // Transactions spawned but not yet committed — the scan set StepAny
  // schedules from.
  std::size_t live_txn_count() const { return live_count_; }

  // Capacity hint: pre-sizes the dense per-transaction arrays (and the
  // lock manager's) for `n` transactions, so admission never reallocates
  // mid-run. Purely an optimisation; the arrays grow on demand regardless.
  void ReserveTxns(std::size_t n);

  // Pushes locally batched telemetry (lock-probe counter deltas) into the
  // shared atomic registry. Called automatically at quantum boundaries and
  // commits; drivers call it before exporting a metrics snapshot. Flushed
  // totals are identical to what per-operation atomic updates would have
  // produced (DESIGN D15).
  void FlushProbes() { locks_.FlushProbe(); }

  // Per-transaction counters for preemption analysis (Figure 2): how many
  // times txn was rolled back as a victim of another's conflict.
  std::uint64_t PreemptionCountOf(TxnId txn) const;

  std::string DumpState() const;

 private:
  static constexpr std::size_t kNoHold = static_cast<std::size_t>(-1);

  struct LockRecord {
    EntityId entity;
    lock::LockMode mode;
    bool is_upgrade;
    std::size_t op_index;  // state index of this request's lock state
  };

  // Hot per-transaction state: everything the step/readiness path touches,
  // packed so it fits the first cache line (52 bytes before `granted`,
  // whose header starts within the line). Ownership and cold forensics
  // fields live in the parallel TxnCold side array (same dense index), so
  // a readiness scan or an op execution never drags telemetry-only bytes
  // through the cache.
  struct TxnContext {
    TxnId id;
    // Compiled µop stream cursor base (uops[pc] is the next op); nullptr
    // routes the transaction through the interpreted fallback. The stream
    // is owned (kept alive) by TxnCold::compiled / the compile cache.
    const txn::MicroOp* uops = nullptr;
    // Borrowed from TxnCold::strategy (which owns it).
    rollback::RollbackStrategy* strategy = nullptr;
    std::uint32_t pc = 0;
    std::uint32_t size = 0;  // program size (pc >= size <=> finished)
    Timestamp entry = 0;
    // Engine step at which the current wait began (kTimeout bookkeeping).
    std::uint64_t wait_since = 0;
    TxnStatus status = TxnStatus::kReady;
    bool in_shrinking_phase = false;
    // Defer the §5 last-lock seal until ReleaseHold (a held sub can still
    // be a distributed-rollback victim).
    bool seal_deferred = false;
    // Coordinator-imposed backoff (SetBackoff): the scheduler skips the
    // transaction so it cannot re-request the locks it just released.
    bool backoff = false;
    // granted[k] <-> lock state k. Inline capacity covers typical
    // workload programs; longer ones spill into the engine arena.
    SmallVec<LockRecord, 8> granted;
  };

  // Cold per-transaction state, indexed by the same dense id as txns_:
  // ownership handles plus fields only introspection, rollback planning or
  // the cross-shard protocol touch.
  struct TxnCold {
    std::shared_ptr<const txn::Program> program;
    std::shared_ptr<const txn::CompiledProgram> compiled;  // may be null
    std::unique_ptr<rollback::RollbackStrategy> strategy;
    std::uint64_t preempted = 0;
    // Cross-shard sub-transaction state (see SpawnSub): park at this pc
    // until ReleaseHold; kNoHold for ordinary transactions.
    std::size_t hold_pc = kNoHold;
  };

  // Op execution ------------------------------------------------------------

  Result<StepOutcome> ExecuteOp(TxnContext& ctx);
  // The pre-D16 per-step decoder, kept as the path for programs the
  // compiler rejects and for compile_programs == false (differential
  // testing). Bit-identical behavior to the compiled path.
  Result<StepOutcome> ExecuteOpInterpreted(TxnContext& ctx);
  Result<StepOutcome> ExecuteLock(TxnContext& ctx, EntityId entity,
                                  lock::LockMode mode);
  Status ExecuteUnlockOne(TxnContext& ctx, EntityId entity);
  Status ExecuteCommit(TxnContext& ctx);
  Value EvalOperand(const TxnContext& ctx, const txn::Operand& o) const;
  Result<Value> ReadEntityValue(const TxnContext& ctx, EntityId entity) const;

  // Called when the lock manager granted `g` during a release/cancel.
  Status HandleGrant(const lock::Grant& g);
  // Registers a granted lock in ctx (records, strategy callbacks).
  Status RegisterGrant(TxnContext& ctx, EntityId entity, lock::LockMode mode,
                       bool is_upgrade);

  // Deadlock machinery --------------------------------------------------------

  // Rebuilds waits-for arcs labeled by `entity` from the lock table.
  void RefreshWaitEdges(EntityId entity);
  // Detects and resolves any deadlock created by `requester`'s wait.
  // Returns true when the requester itself was rolled back.
  Result<bool> DetectAndResolve(TxnContext& requester, EntityId entity);
  // §3.3 prevention schemes, applied when the requester must wait.
  Status HandleWoundWait(TxnContext& requester, EntityId entity,
                         lock::LockMode mode);
  Result<bool> HandleWaitDie(TxnContext& requester, EntityId entity);
  // kTimeout: rolls back every transaction whose wait has expired.
  Status ExpireTimeouts();
  // kPeriodic: sweeps the whole waits-for graph and resolves every cycle.
  Status PeriodicScan();
  // Self-rollback target releasing everything a (conflicting) queued
  // transaction selected by `relevant` currently waits for; accumulates
  // the cost into the wasted-work metrics.
  Result<LockIndex> SelfRollbackTarget(
      const TxnContext& txn,
      const std::function<bool(const TxnContext&)>& relevant);
  // Builds the §3.1 candidate entry for cycle member `txn` that must stop
  // conflicting over the entities in `entities` with the given waiter
  // modes.
  Result<VictimCandidate> MakeCandidate(
      const TxnContext& member,
      const std::vector<std::pair<EntityId, lock::LockMode>>& conflicts,
      bool is_requester) const;
  // Ops lost by rolling `victim` back to lock state `target` (the redo a
  // rollback to that target pays).
  std::uint64_t RollbackCostOf(const TxnContext& victim,
                               LockIndex target) const;
  // Rolls `victim` back to lock state `target` (which its strategy can
  // restore exactly). Releases/downgrades undone locks, cancels its wait,
  // rewinds the recorder and resets the program counter.
  Status RollbackTxn(TxnContext& victim, LockIndex target);

  void SampleSpace(const TxnContext& ctx);
  void Emit(TraceEvent::Kind kind, const TxnContext& ctx,
            EntityId entity = EntityId(), LockIndex target = 0,
            std::uint64_t cost = 0);

  // Stamps a journal epoch checksum when the step counter sits on a
  // journal_epoch_steps boundary (called once per counted step).
  void MaybeStampJournalEpoch();

  TxnContext* Find(TxnId txn);
  const TxnContext* Find(TxnId txn) const;

  storage::EntityStore* store_;
  EngineOptions options_;
  analysis::HistoryRecorder* recorder_;       // may be null
  TraceSink* trace_ = nullptr;                // may be null
  const obs::EngineProbe* probe_ = nullptr;   // may be null
  obs::DeadlockDumpSink* forensics_ = nullptr;  // may be null
  obs::LineageTracker* lineage_ = nullptr;      // may be null
  obs::TxnLifeBook* txnlife_ = nullptr;         // may be null
  obs::DecisionJournal* journal_ = nullptr;     // may be null
  lock::LockManager locks_;
  graph::Digraph waits_for_;
  // Spill storage for per-transaction granted-lock records (DESIGN D15).
  // Declared before txns_ so it outlives every SmallVec pointing into it.
  Arena txn_arena_;
  // Dense by transaction id (Spawn assigns ids 0,1,2,...), so Find is an
  // index instead of a map walk. Committed contexts stay for
  // introspection; the live list below keeps the scheduler scan O(live).
  std::vector<TxnContext> txns_;
  // Cold side array parallel to txns_ (same index).
  std::vector<TxnCold> cold_;
  TxnCold& ColdOf(const TxnContext& ctx) { return cold_[ctx.id.value()]; }
  const TxnCold& ColdOf(const TxnContext& ctx) const {
    return cold_[ctx.id.value()];
  }
  // Per-engine µop cache (engines are single-threaded).
  txn::CompileCache compile_cache_;
  // Uncommitted transactions as an intrusive doubly-linked list over dense
  // ids (SoA; replaces std::set<TxnId>). Spawn appends at the tail and ids
  // increase monotonically, so traversal from live_head_ enumerates the
  // live set in id order — the same order the set gave — with O(1)
  // removal at commit.
  static constexpr std::uint64_t kNoneIdx = ~std::uint64_t{0};
  std::vector<std::uint64_t> live_next_;
  std::vector<std::uint64_t> live_prev_;
  std::uint64_t live_head_ = kNoneIdx;
  std::uint64_t live_tail_ = kNoneIdx;
  std::size_t live_count_ = 0;

  void LiveInsert(std::uint64_t v);
  void LiveRemove(std::uint64_t v);

  // Scratch buffers reused across steps so the grant/release/rollback fast
  // path performs no heap allocation at steady state. Each is cleared at
  // its single point of use; the call trees below them never touch the
  // same buffer reentrantly.
  std::vector<TxnId> scratch_ready_;        // StepAny candidate set
  // Readiness is tracked as a bitmap over dense admission indices,
  // maintained at every transition (spawn, block, grant, commit, rollback,
  // backoff). The live list appends monotonically increasing indices and
  // never reorders, so ascending bit order is exactly the live-list scan
  // order the scheduler always used — picking the k-th set bit yields the
  // identical candidate. Steps that merely advance a ready transaction's
  // pc touch nothing. Debug holds gate on pc, so any active hold falls
  // back to a full scan into scratch_ready_ (holds_active_ counts hold_pc
  // assignments, conservatively).
  std::vector<std::uint64_t> ready_bits_;
  std::size_t ready_count_ = 0;
  std::size_t ready_lo_ = 0;  // first possibly-nonzero word (monotone hint)
  std::uint64_t holds_active_ = 0;
  void MarkReadyDirty(const TxnContext& ctx);
  std::uint64_t SelectKthReady(std::size_t k);
  std::vector<lock::Grant> scratch_grants_;  // release/cancel grant batches
  std::vector<TxnId> scratch_blockers_;      // RefreshWaitEdges per waiter
  std::vector<LockRecord> scratch_undone_;   // RollbackTxn undo tail
  std::vector<EntityId> scratch_handled_;    // RollbackTxn entity dedup
  std::vector<EntityId> scratch_held_;       // ExecuteCommit release order
  std::vector<TxnId> scratch_expired_;       // ExpireTimeouts collection
  std::uint64_t lock_op_counter_ = 0;  // 1-in-16 sampling for lock_op_ns
  // journal_epoch_steps rounded up to a power of two, minus one (mask);
  // ~0 when engine-driven stamping is disabled.
  std::uint64_t journal_epoch_mask_ = ~0ULL;
  // Flippable single-cycle resolutions seen so far; compared against
  // EngineOptions::debug_flip_victim_deadlock (test hook).
  std::uint64_t debug_flip_opportunities_ = 0;
  EngineMetrics metrics_;
  std::vector<DeadlockEvent> deadlock_events_;
  std::vector<std::uint32_t> rollback_costs_;  // bounded sample
  Rng rng_;
  std::uint64_t next_txn_ = 0;
  Timestamp clock_ = 0;
  std::uint64_t rr_cursor_ = 0;  // round-robin position
  // Memoized division-free reduction per scheduler bound: the ready count
  // cycles through a handful of small values, so each bound's magic
  // constants are computed once and the per-step divide disappears (the
  // draws stay bit-identical — see common/random.h FastMod). Entry n is
  // the reducer for bound n; n == 0 in a slot means not yet initialized.
  std::vector<FastMod> fastmod_;
  const FastMod& FastModFor(std::size_t bound);
};

}  // namespace pardb::core

#endif  // PARDB_CORE_ENGINE_H_

#include "core/victim_policy.h"

#include <cassert>

namespace pardb::core {

std::string_view VictimPolicyKindName(VictimPolicyKind kind) {
  switch (kind) {
    case VictimPolicyKind::kMinCost:
      return "min-cost";
    case VictimPolicyKind::kMinCostOrdered:
      return "min-cost-ordered";
    case VictimPolicyKind::kYoungest:
      return "youngest";
    case VictimPolicyKind::kOldest:
      return "oldest";
    case VictimPolicyKind::kRequester:
      return "requester";
  }
  return "unknown";
}

namespace {

// Lexicographic (key, txn id) minimisation for determinism.
template <typename KeyFn>
const VictimCandidate* MinBy(const std::vector<VictimCandidate>& cs,
                             KeyFn key) {
  const VictimCandidate* best = nullptr;
  for (const VictimCandidate& c : cs) {
    if (best == nullptr || key(c) < key(*best) ||
        (key(c) == key(*best) && c.txn < best->txn)) {
      best = &c;
    }
  }
  return best;
}

}  // namespace

const VictimCandidate& ChooseVictim(
    VictimPolicyKind kind, const std::vector<VictimCandidate>& candidates,
    Timestamp requester_entry) {
  assert(!candidates.empty());
  switch (kind) {
    case VictimPolicyKind::kMinCost:
      return *MinBy(candidates,
                    [](const VictimCandidate& c) { return c.cost; });
    case VictimPolicyKind::kMinCostOrdered: {
      // Theorem 2: a conflict caused by T_j may only roll back transactions
      // ordered after T_j (here: strictly later entry). Preferring strict
      // preemption — never the requester itself while an eligible younger
      // member exists — is what breaks the paper's Figure 2 alternation,
      // where repeated cheapest self-rollbacks recreate the same deadlock
      // indefinitely. The requester is the fallback when every other cycle
      // member is older.
      std::vector<VictimCandidate> eligible;
      for (const VictimCandidate& c : candidates) {
        if (!c.is_requester && c.entry > requester_entry) {
          eligible.push_back(c);
        }
      }
      if (eligible.empty()) {
        for (const VictimCandidate& c : candidates) {
          if (c.is_requester) return c;
        }
        return *MinBy(candidates,
                      [](const VictimCandidate& c) { return c.cost; });
      }
      const VictimCandidate* best =
          MinBy(eligible, [](const VictimCandidate& c) { return c.cost; });
      // Return the corresponding entry of the original vector.
      for (const VictimCandidate& c : candidates) {
        if (c.txn == best->txn) return c;
      }
      return candidates.front();
    }
    case VictimPolicyKind::kYoungest: {
      const VictimCandidate* best = nullptr;
      for (const VictimCandidate& c : candidates) {
        if (best == nullptr || c.entry > best->entry ||
            (c.entry == best->entry && c.txn < best->txn)) {
          best = &c;
        }
      }
      return *best;
    }
    case VictimPolicyKind::kOldest:
      return *MinBy(candidates,
                    [](const VictimCandidate& c) { return c.entry; });
    case VictimPolicyKind::kRequester:
      for (const VictimCandidate& c : candidates) {
        if (c.is_requester) return c;
      }
      return candidates.front();
  }
  return candidates.front();
}

}  // namespace pardb::core

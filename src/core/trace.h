#ifndef PARDB_CORE_TRACE_H_
#define PARDB_CORE_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"

namespace pardb::core {

// One engine event, for observability. The engine emits protocol-level
// events (lock grants, waits, rollbacks, commits, deadlocks), not every
// arithmetic op — traces stay readable under load.
struct TraceEvent {
  enum class Kind {
    kSpawn,
    kLockGranted,
    kBlocked,
    kDeadlock,
    kRollback,
    kWound,
    kDeath,
    kTimeout,
    kCommit,
  };

  Kind kind;
  std::uint64_t step = 0;  // engine step counter at emission
  TxnId txn;               // subject transaction
  EntityId entity;         // lock target, when applicable
  StateIndex pc = 0;       // subject's state index at emission
  // Rollback details (kRollback/kWound/kDeath/kTimeout):
  LockIndex target = 0;
  std::uint64_t cost = 0;

  std::string ToString() const;
};

std::string_view TraceEventKindName(TraceEvent::Kind kind);

// Receiver interface. Implementations must not call back into the Engine.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Bounded in-memory trace: keeps the most recent `capacity` events plus
// total counts per kind. The default sink for tests and the CLI.
class RingTrace final : public TraceSink {
 public:
  explicit RingTrace(std::size_t capacity = 1024) : capacity_(capacity) {}

  void OnEvent(const TraceEvent& event) override;

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t CountOf(TraceEvent::Kind kind) const;
  std::uint64_t total_events() const { return total_; }
  // Events evicted (or never retained, with capacity 0) because the window
  // was full. total_events() - dropped_events() == events().size().
  std::uint64_t dropped_events() const { return dropped_; }

  // Formatted dump of the retained window, one event per line.
  std::string ToString() const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t counts_[16] = {};
};

// Unbounded collecting sink: retains every event in emission order. For
// export pipelines (JSONL / Chrome trace) that need the full run.
class VectorTrace final : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

// Events `sink` lost: RingTrace eviction count, 0 for every other sink
// (VectorTrace never drops) and for null. Lets exporters publish
// pardb_trace_dropped_total uniformly without knowing the sink type.
std::uint64_t TraceDropped(const TraceSink* sink);

}  // namespace pardb::core

#endif  // PARDB_CORE_TRACE_H_

#ifndef PARDB_CORE_VERTEX_CUT_H_
#define PARDB_CORE_VERTEX_CUT_H_

#include <cstdint>
#include <vector>

namespace pardb::core {

// Minimum-cost vertex cut-set for deadlock removal with shared locks
// (paper §3.2): given the cycles closed by one wait — all of which pass
// through the requesting transaction — find a set of member transactions
// whose combined rollback cost is minimal and whose removal breaks every
// cycle. The general problem is NP-complete (related to feedback vertex
// set); the instances here are small (cycles through one vertex), so an
// exact branch-and-bound is practical, with a greedy fallback beyond
// `exact_limit` distinct members.
//
// Inputs are index-based: `cycles[i]` lists member indices (into the
// caller's candidate array) on cycle i; `costs[m]` is the rollback cost of
// member m. The requester should be passed as a member of every cycle so
// the solver can weigh "roll back the requester" against multi-victim cuts.
struct VertexCutResult {
  std::vector<std::size_t> members;  // chosen member indices, ascending
  std::uint64_t total_cost = 0;
  bool exact = true;  // false when the greedy fallback was used
};

VertexCutResult SolveVertexCut(
    const std::vector<std::vector<std::size_t>>& cycles,
    const std::vector<std::uint64_t>& costs, std::size_t exact_limit = 24);

}  // namespace pardb::core

#endif  // PARDB_CORE_VERTEX_CUT_H_

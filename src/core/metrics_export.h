#ifndef PARDB_CORE_METRICS_EXPORT_H_
#define PARDB_CORE_METRICS_EXPORT_H_

#include "core/engine.h"
#include "obs/metrics.h"

namespace pardb::core {

// Mirrors an engine's end-of-run aggregates into `registry` under the
// canonical pardb_* names (counters for EngineMetrics, gauges for space
// high-water marks and live transactions, and the per-rollback cost sample
// as the step-valued histogram pardb_rollback_cost_ops). Call once per
// engine per registry — values are added, not overwritten, so a repeated
// call double-counts.
void ExportEngineMetrics(const Engine& engine, obs::MetricsRegistry* registry,
                         const obs::LabelSet& labels = {});

// Repeatable variant for live scraping: remembers what it already exported
// and advances each counter by the delta since the previous Export, so a
// shard can publish its engine aggregates at every hub-snapshot boundary
// and the totals stay exact (no double counting). Histogram samples are
// exported incrementally too — rollback_cost_samples() is append-only (a
// bounded sample retaining the first 65536 costs), so the next-index
// cursor never re-records a sample. Gauges are overwritten as in the
// one-shot export. One exporter per (engine, registry, labels) triple.
class EngineMetricsExporter {
 public:
  // Exports the delta since the previous call (everything, on the first).
  void Export(const Engine& engine, obs::MetricsRegistry* registry,
              const obs::LabelSet& labels = {});

 private:
  EngineMetrics last_;
  std::size_t cost_samples_exported_ = 0;
};

}  // namespace pardb::core

#endif  // PARDB_CORE_METRICS_EXPORT_H_

#ifndef PARDB_CORE_METRICS_EXPORT_H_
#define PARDB_CORE_METRICS_EXPORT_H_

#include "core/engine.h"
#include "obs/metrics.h"

namespace pardb::core {

// Mirrors an engine's end-of-run aggregates into `registry` under the
// canonical pardb_* names (counters for EngineMetrics, gauges for space
// high-water marks and live transactions, and the per-rollback cost sample
// as the step-valued histogram pardb_rollback_cost_ops). Call once per
// engine per registry — values are added, not overwritten, so a repeated
// call double-counts.
void ExportEngineMetrics(const Engine& engine, obs::MetricsRegistry* registry,
                         const obs::LabelSet& labels = {});

}  // namespace pardb::core

#endif  // PARDB_CORE_METRICS_EXPORT_H_

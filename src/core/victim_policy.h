#ifndef PARDB_CORE_VICTIM_POLICY_H_
#define PARDB_CORE_VICTIM_POLICY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace pardb::core {

// One transaction that could be rolled back to break a deadlock, with the
// paper's §3.1 cost model attached: cost = current state index minus the
// state index of the rollback target (lost progress in atomic operations).
struct VictimCandidate {
  TxnId txn;
  Timestamp entry = 0;        // entry timestamp (Theorem 2's ordering)
  LockIndex ideal_target = 0;  // latest lock state clearing the conflicts
  // What the transaction's rollback strategy can actually restore
  // (<= ideal_target; equal under MCS, 0 under total restart, the latest
  // well-defined state under SDG).
  LockIndex actual_target = 0;
  std::uint64_t cost = 0;        // state-index cost of actual_target
  std::uint64_t ideal_cost = 0;  // state-index cost of ideal_target
  bool is_requester = false;
};

// Victim selection rules (§3.1 and Theorem 2).
enum class VictimPolicyKind {
  // Paper §3.1: minimum rollback cost, unconstrained. Optimal per
  // deadlock, but susceptible to potentially infinite mutual preemption
  // (Figure 2).
  kMinCost,
  // Theorem 2: minimum cost among candidates that entered the system
  // strictly later than the requester; the requester itself is chosen only
  // when no such member exists. The entry order is a time-invariant total
  // order, so mutual preemption cannot recur indefinitely and the oldest
  // transaction is never preempted.
  kMinCostOrdered,
  // Classical baselines.
  kYoungest,   // most recent entry
  kOldest,     // earliest entry
  kRequester,  // always roll back the transaction that caused the conflict
};

std::string_view VictimPolicyKindName(VictimPolicyKind kind);

// Picks the victim among `candidates` (never empty; contains the requester).
// Deterministic: ties break toward the smaller transaction id.
const VictimCandidate& ChooseVictim(VictimPolicyKind kind,
                                    const std::vector<VictimCandidate>& candidates,
                                    Timestamp requester_entry);

}  // namespace pardb::core

#endif  // PARDB_CORE_VICTIM_POLICY_H_

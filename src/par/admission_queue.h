#ifndef PARDB_PAR_ADMISSION_QUEUE_H_
#define PARDB_PAR_ADMISSION_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "txn/program.h"

namespace pardb::par {

// Bounded single-producer/single-consumer admission queue: the conduit of
// the pipelined sharded driver. The generation thread pushes routed
// programs in (blocking while the queue is full — backpressure bounds the
// number of materialized-but-unadmitted programs), and the owning shard's
// quantum pops them out as its multiprogramming level drains. Close() is
// the explicit end-of-stream token: after the producer closes, the
// consumer drains whatever remains and then observes kClosed forever.
//
// "Single consumer" here means one quantum at a time: quanta migrate
// between pool workers, but a shard's ready-token discipline guarantees at
// most one is in flight, and the pool's queue transfer orders each
// quantum's pops before the next quantum's. A plain mutex + two condition
// variables is therefore enough; none of this is on the engine's step
// path (pops happen only at refill points).
//
// Abandon() handles consumer death (shard failure or an exhausted step
// budget): it turns Push into a discard so the producer can finish its
// deterministic generation sweep without blocking on a queue nobody will
// ever drain again.
class AdmissionQueue {
 public:
  enum class Pop {
    kItem,    // *out holds the next program
    kEmpty,   // queue drained but still open — more may arrive
    kClosed,  // drained and closed: end of stream
  };

  explicit AdmissionQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Optional depth gauge (pardb_admission_queue_depth{shard=k}), updated
  // on every push/pop. Set before the producer starts; not thread-safe
  // against concurrent Push/TryPop.
  void set_depth_gauge(obs::Gauge* gauge) { depth_gauge_ = gauge; }

  // Optional materialized-but-unclaimed program counter, shared across all
  // shard queues. Decremented inside the pop (and discard) critical
  // sections — not by the consumer afterwards — so the producer can never
  // observe a freed slot before the decrement: the counter's high-water
  // mark stays bounded by num_queues * capacity + 1 (the producer's hand).
  // The producer increments it before Push. Set before the producer
  // starts.
  void set_materialized_counter(std::atomic<std::int64_t>* counter) {
    materialized_ = counter;
  }

  // Clock behind the per-item queue-wait stamps (null = monotonic wall
  // clock). Stamps are taken and differenced inside the queue's own mutex —
  // the wait a pop reports never involves a cross-thread engine read. Set
  // before the producer starts.
  void set_clock(const obs::Clock* clock) {
    clock_ = clock != nullptr ? clock : obs::MonotonicClock::Global();
  }

  // Producer side. Push blocks while the queue is at capacity (unless
  // abandoned, in which case the program is dropped on the floor — the
  // producer still runs its full generation sweep so sibling shards see
  // their exact batch-identical streams). Close is the end-of-stream
  // token; Push after Close is a programming error.
  void Push(txn::Program program);
  void Close();

  // Consumer side. TryPop never blocks; WaitPop blocks up to `timeout`
  // for an item or the end-of-stream token (kEmpty on timeout), letting a
  // drained-but-open shard yield its quantum without hot-spinning. When
  // `wait_ns` is non-null a kItem pop writes the wall nanoseconds the item
  // spent queued (enqueue-to-pop), for the lifecycle book's queue-wait
  // component.
  Pop TryPop(txn::Program* out, std::uint64_t* wait_ns = nullptr);
  Pop WaitPop(txn::Program* out, std::chrono::microseconds timeout,
              std::uint64_t* wait_ns = nullptr);

  // Consumer gave up (failure path): unblocks and no-ops the producer.
  void Abandon();

  std::size_t depth() const;
  bool closed() const;

  // Producer-side counters (readable from any thread after the fact).
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t popped() const { return popped_.load(std::memory_order_relaxed); }
  // Times Push found the queue full and had to wait (backpressure events).
  std::uint64_t blocked_pushes() const {
    return blocked_pushes_.load(std::memory_order_relaxed);
  }

 private:
  void UpdateGauge(std::size_t depth) {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<std::int64_t>(depth));
    }
  }

  void DecrementMaterialized(std::int64_t n) {
    if (materialized_ != nullptr) {
      materialized_->fetch_sub(n, std::memory_order_relaxed);
    }
  }

  struct Item {
    txn::Program program;
    std::uint64_t enqueue_ns;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;   // producer waits here
  std::condition_variable not_empty_;  // consumer (WaitPop) waits here
  std::deque<Item> items_;
  const obs::Clock* clock_ = obs::MonotonicClock::Global();
  bool closed_ = false;
  bool abandoned_ = false;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> blocked_pushes_{0};
  obs::Gauge* depth_gauge_ = nullptr;
  std::atomic<std::int64_t>* materialized_ = nullptr;
};

}  // namespace pardb::par

#endif  // PARDB_PAR_ADMISSION_QUEUE_H_

#include "par/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pardb::par {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pardb::par

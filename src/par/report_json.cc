#include "par/report_json.h"

#include <cstdio>
#include <sstream>

namespace pardb::par {

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void AppendMetrics(std::ostringstream& os, const core::EngineMetrics& m) {
  os << "{\"steps\":" << m.steps << ",\"ops_executed\":" << m.ops_executed
     << ",\"commits\":" << m.commits << ",\"lock_waits\":" << m.lock_waits
     << ",\"deadlocks\":" << m.deadlocks << ",\"rollbacks\":" << m.rollbacks
     << ",\"partial_rollbacks\":" << m.partial_rollbacks
     << ",\"total_rollbacks\":" << m.total_rollbacks
     << ",\"preemptions\":" << m.preemptions << ",\"wounds\":" << m.wounds
     << ",\"deaths\":" << m.deaths << ",\"timeouts\":" << m.timeouts
     << ",\"wasted_ops\":" << m.wasted_ops
     << ",\"ideal_wasted_ops\":" << m.ideal_wasted_ops
     << ",\"cycles_found\":" << m.cycles_found << "}";
}

void AppendCosts(std::ostringstream& os, const core::CostDistribution& d) {
  os << "{\"count\":" << d.count << ",\"p50\":" << d.p50
     << ",\"p95\":" << d.p95 << ",\"max\":" << d.max
     << ",\"mean\":" << Num(d.mean) << "}";
}

}  // namespace

std::string ShardedReportToJson(const ShardedReport& report, int indent) {
  const std::string pad(indent, ' ');
  std::ostringstream os;
  os << pad << "{\"num_shards\":" << report.num_shards
     << ",\"committed\":" << report.committed
     << ",\"completed\":" << (report.completed ? "true" : "false")
     << ",\"serializable\":" << (report.serializable ? "true" : "false")
     << ",\"cross_shard_txns\":" << report.cross_shard_txns
     << ",\"cross_shard_fraction\":" << Num(report.cross_shard_fraction)
     << ",\"wasted_fraction\":" << Num(report.wasted_fraction)
     << ",\"goodput\":" << Num(report.goodput)
     << ",\"global_serializable\":"
     << (report.global_serializable ? "true" : "false") << ",\n"
     << pad << " \"xshard\":";
  {
    const xshard::XShardStats& x = report.xshard;
    os << "{\"mode\":\"" << (report.xshard_locks ? "locks" : "replica")
       << "\",\"epochs\":" << x.epochs << ",\"global_txns\":" << x.global_txns
       << ",\"sub_txns\":" << x.sub_txns
       << ",\"sub_commits\":" << x.sub_commits
       << ",\"global_commits\":" << x.global_commits
       << ",\"merges\":" << x.merges
       << ",\"global_cycles\":" << x.global_cycles
       << ",\"distributed_rollbacks\":" << x.distributed_rollbacks
       << ",\"omega_exclusions\":" << x.omega_exclusions
       << ",\"prepares\":" << x.prepares << ",\"resolves\":" << x.resolves
       << ",\"messages\":" << x.messages << "}";
  }
  os << ",\n" << pad << " \"aggregate\":";
  AppendMetrics(os, report.aggregate);
  os << ",\n" << pad << " \"rollback_costs\":";
  AppendCosts(os, report.rollback_costs);
  os << ",\n" << pad << " \"shards\":[";
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    const ShardResult& s = report.shards[i];
    os << (i == 0 ? "" : ",") << "\n"
       << pad << "  {\"shard\":" << s.shard << ",\"assigned\":" << s.assigned
       << ",\"committed\":" << s.committed
       << ",\"completed\":" << (s.completed ? "true" : "false")
       << ",\"serializable\":" << (s.serializable ? "true" : "false")
       << ",\"metrics\":";
    AppendMetrics(os, s.metrics);
    os << ",\"rollback_costs\":";
    AppendCosts(os, s.rollback_costs);
    os << "}";
  }
  os << "\n" << pad << " ]}";
  return os.str();
}

}  // namespace pardb::par

#ifndef PARDB_PAR_XSHARD_SPLIT_H_
#define PARDB_PAR_XSHARD_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "txn/program.h"

namespace pardb::par::xshard {

// One per-shard slice of a cross-shard transaction. The slice is a valid
// stand-alone program: it locks the global transaction's entities that live
// on `shard`, then (after the global lock point) performs the accesses to
// those entities, then commits. `hold_pc` is the program counter at which
// the slice has acquired every lock it will ever request — the engine parks
// the sub-transaction there until the cross-shard coordinator has seen all
// sibling slices reach their own hold points (the 2PC prepare), at which
// point the holds are released together (the resolve) and the slices run
// their bodies and commit independently.
struct SubProgram {
  std::uint32_t shard = 0;
  txn::Program program;
  std::size_t hold_pc = 0;
};

// Splits `program` into per-shard sub-programs under the
// dist::SiteOfEntity partition. Each sub keeps the original relative order
// of its lock requests and of its body operations, so the global lock
// acquisition order (the concatenation of the per-shard prefixes) is a
// reordering of the original only across shards — never within one.
//
// Requirements (all hold for sim::Workload-generated programs):
//  * no kUnlock ops (strict 2PL: everything releases at commit);
//  * every local variable flows within one shard — a var read from an
//    entity on shard A must not be written to an entity on shard B, since
//    the slices execute on engines with disjoint stores. Violations return
//    InvalidArgument.
//
// Deferring the body to after the hold point is semantics-preserving under
// 2PL: every entity the body touches is locked by the slice's prefix, so
// its value cannot change between the original position and the deferred
// one. Returns the slices ordered by shard id; a program whose footprint
// lives on a single shard yields one slice (callers should route that case
// directly instead).
Result<std::vector<SubProgram>> SplitProgram(const txn::Program& program,
                                             std::uint32_t num_shards);

}  // namespace pardb::par::xshard

#endif  // PARDB_PAR_XSHARD_SPLIT_H_

#include "par/xshard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace pardb::par::xshard {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Records wall time into `hist` when the caller registered one; the
// deterministic report never includes these samples.
class PhaseTimer {
 public:
  explicit PhaseTimer(obs::Histogram* hist)
      : hist_(hist), start_(hist ? NowNs() : 0) {}
  ~PhaseTimer() {
    if (hist_ != nullptr) hist_->Record(NowNs() - start_);
  }

 private:
  obs::Histogram* hist_;
  std::uint64_t start_;
};

}  // namespace

Coordinator::Coordinator(std::vector<core::Engine*> engines, Options options)
    : engines_(std::move(engines)),
      options_(options),
      sub_commits_by_shard_(options.num_shards, 0) {}

Result<std::uint64_t> Coordinator::Admit(txn::Program program) {
  auto subs = SplitProgram(program, options_.num_shards);
  if (!subs.ok()) return subs.status();
  const std::uint64_t seq = txns_.size();
  GlobalTxn g;
  g.seq = seq;
  g.participants.reserve(subs.value().size());
  for (SubProgram& sub : subs.value()) {
    auto id = engines_[sub.shard]->SpawnSub(std::move(sub.program),
                                            sub.hold_pc);
    if (!id.ok()) return id.status();
    g.participants.push_back({sub.shard, id.value(), false});
    sub_index_[{sub.shard, id.value().value()}] = seq;
  }
  stats_.global_txns += 1;
  stats_.sub_txns += g.participants.size();
  // Dispatch round: one request + ack per participating shard.
  stats_.messages += 2 * g.participants.size();
  if (options_.journal != nullptr) {
    options_.journal->OnAdmit(TxnId(seq), decision_seq_++);
  }
  active_.push_back(seq);
  txns_.push_back(std::move(g));
  return seq;
}

Result<std::uint64_t> Coordinator::Poll() {
  std::uint64_t transitions = 0;
  std::vector<std::uint64_t> still_active;
  still_active.reserve(active_.size());
  for (std::uint64_t seq : active_) {
    GlobalTxn& g = txns_[seq];
    if (g.phase == Phase::kAcquiring) {
      bool all_hold = true;
      {
        PhaseTimer timer(options_.prepare_ns);
        for (const Participant& p : g.participants) {
          if (!engines_[p.shard]->AtHold(p.txn)) {
            all_hold = false;
            break;
          }
        }
      }
      if (all_hold) {
        // Global lock point: every slice holds all its locks. Prepare
        // (unanimous hold votes) then resolve by releasing the holds —
        // past this point the global transaction cannot be rolled back
        // (the distributed analogue of the §5 last-lock declaration, and
        // exactly when each slice's seal is applied).
        stats_.prepares += g.participants.size();
        stats_.messages += 2 * g.participants.size();
        {
          PhaseTimer timer(options_.resolve_ns);
          for (const Participant& p : g.participants) {
            auto st = engines_[p.shard]->ReleaseHold(p.txn);
            if (!st.ok()) return st;
          }
        }
        stats_.resolves += g.participants.size();
        stats_.messages += 2 * g.participants.size();
        // The global lock point is the 2PC epoch boundary the coordinator
        // journal stamps on; the release record marks it in the stream.
        if (options_.journal != nullptr) {
          options_.journal->OnRelease(TxnId(seq), decision_seq_++);
        }
        g.phase = Phase::kReleased;
        ++transitions;
      }
    }
    if (g.phase == Phase::kReleased) {
      bool all_committed = true;
      for (Participant& p : g.participants) {
        if (!p.committed &&
            engines_[p.shard]->StatusOf(p.txn) == core::TxnStatus::kCommitted) {
          p.committed = true;
          ++stats_.sub_commits;
          ++sub_commits_by_shard_[p.shard];
        }
        all_committed = all_committed && p.committed;
      }
      if (all_committed) {
        ++stats_.global_commits;
        stats_.messages += 2 * g.participants.size();  // commit-ack round
        if (options_.journal != nullptr) {
          options_.journal->OnCommit(TxnId(seq), decision_seq_++,
                                     g.participants.size());
        }
        ++transitions;
        continue;  // retired: drop from the active list
      }
    }
    still_active.push_back(seq);
  }
  active_ = std::move(still_active);
  return transitions;
}

std::optional<std::uint64_t> Coordinator::GlobalOf(std::uint32_t shard,
                                                   TxnId txn) const {
  auto it = sub_index_.find({shard, txn.value()});
  if (it == sub_index_.end()) return std::nullopt;
  return it->second;
}

Status Coordinator::ResolveComponent(
    const MergedGraph& merged, const std::vector<graph::VertexId>& component,
    bool* resolved) {
  *resolved = false;
  std::vector<std::uint64_t> globals;
  for (graph::VertexId v : component) {
    if (IsGlobalNode(v)) globals.push_back(v);
  }
  if (globals.empty()) return Status::OK();  // a shard-local matter
  ++stats_.global_cycles;
  if (options_.journal != nullptr) {
    // requester = the ω-senior global in the component; b = cycle ordinal.
    options_.journal->OnCycle(TxnId(globals.front()), decision_seq_++,
                              EntityId(0), stats_.global_cycles);
  }

  const std::set<graph::VertexId> members(component.begin(), component.end());

  // Cost every global member: the distributed partial rollback that would
  // release, on each shard where the global blocks a cycle member, exactly
  // those conflicts (paper §3.1's candidate construction, summed over the
  // participating shards).
  struct ShardPlan {
    std::uint32_t shard;
    TxnId txn;
    core::VictimCandidate plan;
  };
  struct GlobalCandidate {
    std::uint64_t seq = 0;
    std::uint64_t total_cost = 0;
    std::vector<ShardPlan> plans;
  };
  std::vector<GlobalCandidate> candidates;
  {
    PhaseTimer timer(options_.prepare_ns);
    for (std::uint64_t seq : globals) {
      std::map<std::uint32_t,
               std::vector<std::pair<EntityId, lock::LockMode>>>
          conflicts;
      for (const MergedEdge& e : merged.edges) {
        if (e.from != GlobalNode(seq) || members.count(e.to) == 0) continue;
        auto pending = engines_[e.shard]->lock_manager().Waiting(e.waiter);
        if (!pending.has_value()) {
          return Status::Internal(
              "xshard: merged wait edge without a pending request");
        }
        conflicts[e.shard].push_back({e.entity, pending->mode});
      }
      if (conflicts.empty()) continue;
      GlobalCandidate cand;
      cand.seq = seq;
      for (const auto& [shard, entries] : conflicts) {
        const GlobalTxn& g = txns_[seq];
        auto part = std::find_if(
            g.participants.begin(), g.participants.end(),
            [shard = shard](const Participant& p) { return p.shard == shard; });
        if (part == g.participants.end()) {
          return Status::Internal("xshard: conflict on a non-participant shard");
        }
        auto plan = engines_[shard]->PlanConflictRelease(part->txn, entries);
        if (!plan.ok()) return plan.status();
        cand.total_cost += plan.value().cost;
        cand.plans.push_back({shard, part->txn, plan.value()});
      }
      candidates.push_back(std::move(cand));
    }
  }
  if (candidates.empty()) {
    return Status::Internal("xshard: global cycle with no rollback candidate");
  }

  // Theorem 2: the ω-senior global (least admission sequence — `globals`
  // and `candidates` are ascending) is exempt from preemption so some
  // transaction always finishes. Pick the cheapest of the rest; fall back
  // to the senior only when it is the sole candidate.
  auto best = [](const GlobalCandidate* a, const GlobalCandidate* b) {
    if (b == nullptr) return a;
    if (a == nullptr) return b;
    if (a->total_cost != b->total_cost) {
      return a->total_cost < b->total_cost ? a : b;
    }
    return a->seq < b->seq ? a : b;
  };
  const GlobalCandidate* chosen = nullptr;
  const GlobalCandidate* unconstrained = nullptr;
  for (const GlobalCandidate& cand : candidates) {
    unconstrained = best(&cand, unconstrained);
    if (cand.seq != candidates.front().seq || candidates.size() == 1) {
      chosen = best(&cand, chosen);
    }
  }
  if (unconstrained->total_cost < chosen->total_cost) {
    ++stats_.omega_exclusions;
  }
  if (options_.journal != nullptr) {
    options_.journal->OnVictim(
        TxnId(chosen->seq), decision_seq_++, /*target=*/chosen->plans.size(),
        chosen->total_cost,
        /*omega_constrained=*/unconstrained->total_cost < chosen->total_cost,
        /*is_requester=*/false, candidates.size());
  }
  // Distributed partial rollback: prepare (ship the per-shard targets) and
  // resolve (apply + ack) on every conflicted shard. The victim's slices
  // then back off until the next merge — released locks flow to the cycle's
  // other members, and the victim cannot instantly re-request them and
  // re-create the same cycle (Figure 2's mutual preemption, replayed
  // between this coordinator and a shard's local detection).
  stats_.prepares += chosen->plans.size();
  stats_.resolves += chosen->plans.size();
  stats_.messages += 4 * chosen->plans.size();
  {
    PhaseTimer timer(options_.resolve_ns);
    for (const ShardPlan& sp : chosen->plans) {
      auto st = engines_[sp.shard]->ApplyExternalRollback(
          sp.txn, sp.plan.actual_target, sp.plan.cost, sp.plan.ideal_cost);
      if (!st.ok()) return st;
      st = engines_[sp.shard]->SetBackoff(sp.txn, true);
      if (!st.ok()) return st;
      backed_off_.push_back({sp.shard, sp.txn});
    }
  }
  ++stats_.distributed_rollbacks;
  *resolved = true;
  return Status::OK();
}

Status Coordinator::MergeAndResolve() {
  ++stats_.merges;
  // Victims backed off by the previous merge have had a full epoch of
  // uncontended progress behind them; let them re-contend.
  for (const auto& [shard, txn] : backed_off_) {
    auto st = engines_[shard]->SetBackoff(txn, false);
    if (!st.ok()) return st;
  }
  backed_off_.clear();
  // One status exchange per shard to collect the wait graphs.
  stats_.messages += 2 * engines_.size();
  std::vector<const graph::Digraph*> graphs;
  graphs.reserve(engines_.size());
  for (core::Engine* e : engines_) graphs.push_back(&e->waits_for());
  // A resolved cycle can unblock waiters everywhere (grant cascades), so
  // re-merge after each rollback instead of resolving a stale snapshot.
  for (int round = 0; round < 64; ++round) {
    MergedGraph merged = MergeWaitsFor(graphs, *this);
    bool resolved_any = false;
    for (const auto& component : merged.graph.CyclicComponents()) {
      bool resolved = false;
      auto st = ResolveComponent(merged, component, &resolved);
      if (!st.ok()) return st;
      if (resolved) {
        resolved_any = true;
        break;
      }
    }
    if (!resolved_any) return Status::OK();
  }
  return Status::Internal("xshard: global cycle resolution did not converge");
}

}  // namespace pardb::par::xshard

#include "par/xshard/global_graph.h"

namespace pardb::par::xshard {

MergedGraph MergeWaitsFor(
    const std::vector<const graph::Digraph*>& shard_graphs,
    const SubResolver& resolver) {
  MergedGraph merged;
  for (std::uint32_t s = 0; s < shard_graphs.size(); ++s) {
    for (const graph::Edge& e : shard_graphs[s]->Edges()) {
      const TxnId blocker(e.from);
      const TxnId waiter(e.to);
      const auto gb = resolver.GlobalOf(s, blocker);
      const auto gw = resolver.GlobalOf(s, waiter);
      MergedEdge edge;
      edge.from = gb.has_value() ? GlobalNode(*gb) : LocalNode(s, blocker);
      edge.to = gw.has_value() ? GlobalNode(*gw) : LocalNode(s, waiter);
      edge.shard = s;
      edge.entity = EntityId(e.label);
      edge.waiter = waiter;
      // The shard tag in the label keeps parallel waits on the same entity
      // id distinct in the Digraph's edge set.
      merged.graph.AddEdge(edge.from, edge.to,
                           (static_cast<graph::EdgeLabel>(s) << 48) | e.label);
      merged.edges.push_back(edge);
    }
  }
  return merged;
}

}  // namespace pardb::par::xshard

#ifndef PARDB_PAR_XSHARD_GLOBAL_GRAPH_H_
#define PARDB_PAR_XSHARD_GLOBAL_GRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "graph/digraph.h"

namespace pardb::par::xshard {

// Union-of-forests merge (DESIGN D12). Each shard's exclusive waits-for
// graph is a forest while the shard resolves its own cycles (Theorem 1 +
// continuous local detection), so a global deadlock can only close through
// vertices that appear on more than one shard — the cross-shard
// transactions. The merge renames each shard's vertices into one id space,
// fusing the per-shard sub-transactions of a global transaction into a
// single vertex, and looks for cycles in the union.

// Vertex ids in the merged graph: a global transaction is its global
// sequence number; a shard-local transaction is tagged with the shard so
// ids never collide across shards (engine txn ids stay below 2^48 by
// construction — they are dense spawn counters).
constexpr graph::VertexId kLocalNodeBit = 1ull << 63;

inline graph::VertexId LocalNode(std::uint32_t shard, TxnId txn) {
  return kLocalNodeBit | (static_cast<graph::VertexId>(shard) << 48) |
         txn.value();
}

inline graph::VertexId GlobalNode(std::uint64_t global_seq) {
  return global_seq;
}

inline bool IsGlobalNode(graph::VertexId v) {
  return (v & kLocalNodeBit) == 0;
}

// One merged edge with its per-shard provenance, kept alongside the
// Digraph (whose labels cannot carry both shard and entity for the
// conflict lookup). Orientation follows the engine graph: from = blocker,
// to = waiter ("to waits for from").
struct MergedEdge {
  graph::VertexId from = 0;
  graph::VertexId to = 0;
  std::uint32_t shard = 0;
  EntityId entity;
  TxnId waiter;  // shard-local id of the waiting transaction
};

struct MergedGraph {
  graph::Digraph graph;
  std::vector<MergedEdge> edges;
};

// Interface the merge uses to rename a shard-local txn id: returns the
// global sequence number when (shard, txn) is a sub-transaction of an
// active global transaction, or nullopt for purely local transactions.
class SubResolver {
 public:
  virtual ~SubResolver() = default;
  virtual std::optional<std::uint64_t> GlobalOf(std::uint32_t shard,
                                               TxnId txn) const = 0;
};

// Builds the union of the given per-shard waits-for graphs under the
// resolver's renaming. `shard_graphs[s]` is engine s's waits_for().
MergedGraph MergeWaitsFor(const std::vector<const graph::Digraph*>& shard_graphs,
                          const SubResolver& resolver);

}  // namespace pardb::par::xshard

#endif  // PARDB_PAR_XSHARD_GLOBAL_GRAPH_H_

#include "par/xshard/split.h"

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/status.h"
#include "dist/distributed.h"

namespace pardb::par::xshard {

namespace {

constexpr std::uint32_t kUnowned = static_cast<std::uint32_t>(-1);

// Owner shard of an operand's variable, or kUnowned for immediates and
// variables nothing has assigned yet.
std::uint32_t OperandOwner(const txn::Operand& operand,
                           const std::vector<std::uint32_t>& var_owner) {
  if (operand.kind != txn::Operand::Kind::kVar) return kUnowned;
  if (operand.var >= var_owner.size()) return kUnowned;
  return var_owner[operand.var];
}

}  // namespace

Result<std::vector<SubProgram>> SplitProgram(const txn::Program& program,
                                             std::uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("SplitProgram: num_shards must be > 0");
  }
  // Shard of every op, in program order. Commit is per-sub and skipped.
  // Variables are pinned to the shard of the entity they first flow from
  // (or to); a variable bridging two shards would need a value shipped
  // between engines with disjoint stores, which the slices cannot do.
  std::vector<std::uint32_t> var_owner(program.num_vars(), kUnowned);
  const std::uint32_t fallback_shard =
      program.NumLockRequests() == 0
          ? 0
          : dist::SiteOfEntity(
                program.op(program.LockRequestPositions().front()).entity,
                num_shards);
  struct Classified {
    std::size_t index;
    std::uint32_t shard;
    bool is_lock;
  };
  std::vector<Classified> classified;
  classified.reserve(program.size());
  for (std::size_t i = 0; i < program.size(); ++i) {
    const txn::Op& op = program.op(i);
    std::uint32_t shard = kUnowned;
    bool is_lock = false;
    switch (op.code) {
      case txn::OpCode::kLockShared:
      case txn::OpCode::kLockExclusive:
        shard = dist::SiteOfEntity(op.entity, num_shards);
        is_lock = true;
        break;
      case txn::OpCode::kUnlock:
        return Status::InvalidArgument(
            "SplitProgram: early unlock is not splittable (the hold point "
            "must dominate every release)");
      case txn::OpCode::kRead: {
        shard = dist::SiteOfEntity(op.entity, num_shards);
        if (op.dst < var_owner.size()) {
          if (var_owner[op.dst] != kUnowned && var_owner[op.dst] != shard) {
            return Status::InvalidArgument(
                "SplitProgram: variable flows across shards");
          }
          var_owner[op.dst] = shard;
        }
        break;
      }
      case txn::OpCode::kWrite: {
        shard = dist::SiteOfEntity(op.entity, num_shards);
        const std::uint32_t src = OperandOwner(op.a, var_owner);
        if (src != kUnowned && src != shard) {
          return Status::InvalidArgument(
              "SplitProgram: variable flows across shards");
        }
        break;
      }
      case txn::OpCode::kCompute: {
        const std::uint32_t a = OperandOwner(op.a, var_owner);
        const std::uint32_t b = OperandOwner(op.b, var_owner);
        const std::uint32_t dst =
            op.dst < var_owner.size() ? var_owner[op.dst] : kUnowned;
        for (std::uint32_t owner : {a, b, dst}) {
          if (owner == kUnowned) continue;
          if (shard == kUnowned) {
            shard = owner;
          } else if (shard != owner) {
            return Status::InvalidArgument(
                "SplitProgram: variable flows across shards");
          }
        }
        if (shard == kUnowned) shard = fallback_shard;
        if (op.dst < var_owner.size()) var_owner[op.dst] = shard;
        break;
      }
      case txn::OpCode::kCommit:
        continue;
    }
    classified.push_back({i, shard, is_lock});
  }

  // Assemble one slice per touched shard: locks in original order, then the
  // body in original order, then Commit.
  std::map<std::uint32_t, std::pair<std::vector<std::size_t>,
                                    std::vector<std::size_t>>>
      by_shard;
  for (const Classified& c : classified) {
    auto& bucket = by_shard[c.shard];
    (c.is_lock ? bucket.first : bucket.second).push_back(c.index);
  }

  std::vector<SubProgram> subs;
  subs.reserve(by_shard.size());
  for (const auto& [shard, bucket] : by_shard) {
    txn::ProgramBuilder builder(
        program.name() + "/s" + std::to_string(shard), program.num_vars());
    for (std::size_t v = 0; v < program.initial_vars().size(); ++v) {
      builder.InitVar(static_cast<txn::VarId>(v), program.initial_vars()[v]);
    }
    for (std::size_t i : bucket.first) {
      const txn::Op& op = program.op(i);
      if (op.code == txn::OpCode::kLockShared) {
        builder.LockShared(op.entity);
      } else {
        builder.LockExclusive(op.entity);
      }
    }
    for (std::size_t i : bucket.second) {
      const txn::Op& op = program.op(i);
      switch (op.code) {
        case txn::OpCode::kRead:
          builder.Read(op.entity, op.dst);
          break;
        case txn::OpCode::kWrite:
          builder.Write(op.entity, op.a);
          break;
        case txn::OpCode::kCompute:
          builder.Compute(op.dst, op.a, op.arith, op.b);
          break;
        default:
          return Status::Internal("SplitProgram: unexpected body op");
      }
    }
    builder.Commit();
    auto built = builder.Build();
    if (!built.ok()) return built.status();
    SubProgram sub;
    sub.shard = shard;
    sub.hold_pc = bucket.first.size();
    sub.program = std::move(built.value());
    subs.push_back(std::move(sub));
  }
  return subs;
}

}  // namespace pardb::par::xshard

#ifndef PARDB_PAR_XSHARD_COORDINATOR_H_
#define PARDB_PAR_XSHARD_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/engine.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "par/xshard/global_graph.h"
#include "par/xshard/split.h"
#include "txn/program.h"

namespace pardb::par::xshard {

// Deterministic counters for the cross-shard layer. These feed the
// xshard section of the sharded report, so every field must be a pure
// function of (options, workload seed) — wall-clock time lives in the
// optional histograms on Coordinator::Options instead.
struct XShardStats {
  std::uint64_t epochs = 0;           // driver epochs run (set by the driver)
  std::uint64_t global_txns = 0;      // cross-shard transactions admitted
  std::uint64_t sub_txns = 0;         // per-shard slices spawned
  std::uint64_t sub_commits = 0;      // slice commits observed
  std::uint64_t global_commits = 0;   // globals with every slice committed
  std::uint64_t merges = 0;           // union-of-forests merges run
  std::uint64_t global_cycles = 0;    // cycles found only in the union
  std::uint64_t distributed_rollbacks = 0;  // global victims rolled back
  std::uint64_t omega_exclusions = 0;  // Theorem 2 overrode the min-cost pick
  std::uint64_t prepares = 0;         // 2PC prepare exchanges (per shard)
  std::uint64_t resolves = 0;         // 2PC resolve exchanges (per shard)
  std::uint64_t messages = 0;         // simulated coordinator<->shard messages
};

// Lifecycle coordinator for shard-spanning transactions (DESIGN D12).
//
// A global transaction is split into per-shard slices that share one
// global sequence number — the transaction's ω-order position (Theorem 2).
// Each slice acquires its locks on its home engine and parks at its hold
// point; when every slice holds (the global lock point), a 2PC-style
// prepare/resolve exchange releases them together and they commit
// independently. Until that point the global transaction is distributed
// and rollbackable, and a cycle through two or more globals in the merged
// waits-for union is removed by *distributed partial rollback*: the
// min-cost non-ω-senior victim is rolled back, on exactly the shards where
// it blocks a cycle member, to the latest lock state that releases those
// conflicts.
//
// All methods run on the driver's coordinate phase (single-threaded, the
// shard engines quiescent), so the coordinator needs no locking and its
// decisions are deterministic.
class Coordinator : public SubResolver {
 public:
  struct Options {
    std::uint32_t num_shards = 1;
    // Globals concurrently in flight; bounds coordinator admission the way
    // ShardedOptions::concurrency_per_shard bounds local admission.
    std::uint32_t max_active_globals = 8;
    // Wall-clock 2PC phase timers (registry histograms, nanoseconds); both
    // optional and excluded from deterministic reports.
    obs::Histogram* prepare_ns = nullptr;
    obs::Histogram* resolve_ns = nullptr;
    // Borrowed decision journal for coordinator-level decisions (global
    // admit, lock-point release, retire, global cycle + victim). The
    // journal's "step" is the coordinator's own decision ordinal, so the
    // record stream is deterministic regardless of epoch timing.
    obs::DecisionJournal* journal = nullptr;
  };

  Coordinator(std::vector<core::Engine*> engines, Options options);

  // True when another global transaction may be admitted now.
  bool CanAdmit() const { return active_.size() < options_.max_active_globals; }

  // Splits `program` and spawns its slices (held at their lock points).
  // Returns the global sequence number.
  Result<std::uint64_t> Admit(txn::Program program);

  // One coordination round: advances every active global's 2PC state
  // machine (prepare when all slices hold, resolve by releasing the holds,
  // retire when all slices committed). Returns the number of state
  // transitions, the coordinator's contribution to the epoch progress
  // signal.
  Result<std::uint64_t> Poll();

  // Union-of-forests merge + distributed partial rollback, repeated until
  // the merged graph has no cycle through a global transaction.
  Status MergeAndResolve();

  bool AllDone() const { return active_.empty(); }
  std::size_t active() const { return active_.size(); }
  const XShardStats& stats() const { return stats_; }
  XShardStats& mutable_stats() { return stats_; }
  // Slice commits observed on `shard` so far — what the driver subtracts
  // from the engine's commit counter to recover its *local* commit count
  // for admission-level accounting.
  std::uint64_t sub_commits_on(std::uint32_t shard) const {
    return sub_commits_by_shard_[shard];
  }

  // (shard, local txn id) -> global sequence number, for every slice ever
  // spawned. The merged-history checker uses this to fuse per-shard commit
  // logs under global keys.
  const std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>&
  sub_index() const {
    return sub_index_;
  }

  // SubResolver: renames slices of *live* globals during the merge.
  std::optional<std::uint64_t> GlobalOf(std::uint32_t shard,
                                        TxnId txn) const override;

 private:
  enum class Phase { kAcquiring, kReleased };

  struct Participant {
    std::uint32_t shard = 0;
    TxnId txn;
    bool committed = false;
  };

  struct GlobalTxn {
    std::uint64_t seq = 0;
    Phase phase = Phase::kAcquiring;
    std::vector<Participant> participants;
  };

  Status ResolveComponent(const MergedGraph& merged,
                          const std::vector<graph::VertexId>& component,
                          bool* resolved);

  std::vector<core::Engine*> engines_;
  Options options_;
  XShardStats stats_;
  std::uint64_t decision_seq_ = 0;  // journal "step" for coordinator records
  std::vector<GlobalTxn> txns_;        // indexed by seq
  std::vector<std::uint64_t> active_;  // seqs still in flight, ascending
  std::vector<std::uint64_t> sub_commits_by_shard_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> sub_index_;
  // Slices of distributed-rollback victims backed off until the next merge
  // (one epoch): re-running them immediately lets the coordinator and a
  // shard's local detection re-create the identical cycle forever.
  std::vector<std::pair<std::uint32_t, TxnId>> backed_off_;
};

}  // namespace pardb::par::xshard

#endif  // PARDB_PAR_XSHARD_COORDINATOR_H_

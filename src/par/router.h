#ifndef PARDB_PAR_ROUTER_H_
#define PARDB_PAR_ROUTER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "txn/program.h"

namespace pardb::par {

// Routing of whole transactions over engine shards. The entity partition
// is the same hash the distributed analysis uses (dist::SiteOfEntity), so
// "shard" here is the execution analogue of §3.3's "site": a transaction
// whose footprint stays on one shard is the cheap local case, and one that
// spans shards is the case that would need cross-site coordination — here
// it is serialized through a designated coordinator shard instead.

// Distinct entities locked by `program`, in first-lock order.
std::vector<EntityId> EntityFootprint(const txn::Program& program);

struct Route {
  std::uint32_t shard = 0;
  // True when the footprint spans more than one shard (the transaction was
  // sent to the coordinator, not to a home shard).
  bool cross_shard = false;
};

// Shard that owns every entity in `program`'s footprint, or the
// coordinator when the footprint spans shards. Lock-free programs touch
// nothing, so any placement is correct — they are spread by a hash of
// `txn_seq` (their admission sequence number) rather than piled onto the
// coordinator, which is the busiest shard.
Route RouteProgram(const txn::Program& program, std::uint32_t num_shards,
                   std::uint32_t coordinator_shard,
                   std::uint64_t txn_seq = 0);

// Partition of the dense entity range [0, num_entities) into per-shard
// pools under dist::SiteOfEntity. Every entity appears in exactly one
// pool; pools can be empty for small databases.
std::vector<std::vector<EntityId>> ShardEntityUniverses(
    std::uint64_t num_entities, std::uint32_t num_shards);

}  // namespace pardb::par

#endif  // PARDB_PAR_ROUTER_H_

#ifndef PARDB_PAR_SHARDED_DRIVER_H_
#define PARDB_PAR_SHARDED_DRIVER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/trace.h"
#include "core/trace_export.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/serve/hub.h"
#include "obs/txnlife.h"
#include "par/xshard/coordinator.h"
#include "sim/workload.h"

namespace pardb::par {

// Sharded parallel execution: the first step from the paper's
// single-threaded model toward multi-core execution. A generated workload
// is partitioned by entity-footprint hash (dist::SiteOfEntity) into N
// independent core::Engine shards; each shard is a complete engine —
// store, lock manager, waits-for graph, rollback machinery — that stays
// single-threaded and deterministic under its own derived seed, and the
// shards run concurrently on a ThreadPool. A transaction whose footprint
// spans shards is routed to one designated coordinator shard, so no
// engine is ever touched by two threads and no locking is added to the
// engine itself.
//
// The model matches §3.3's observation: conflicts confined to one site
// are cheap, and only cross-site transactions need coordination. How a
// cross-shard transaction is coordinated is XShardMode's choice: the
// default (kLocks) splits it into per-shard sub-transactions that really
// lock their slices on their home shards, with a union-of-forests merge
// detecting global deadlocks and removing them by distributed partial
// rollback (DESIGN D12) — serializability is then a *global* property,
// checked over the merged commit log. The legacy mode (kReplica) keeps
// the old shortcut — the coordinator executes cross-shard transactions
// against its own replica — which is measurably non-serializable across
// shards and is retained as the regression baseline.

// How shard work is laid onto worker threads.
enum class ShardScheduler {
  // One run-to-completion task per shard: a worker picks a shard and keeps
  // it until it finishes. Simple, but under load skew the hottest shard
  // pins one worker while the rest go idle once the light shards drain.
  kRunToCompletion,
  // Cooperative time-slicing on a work-stealing pool: each shard advances
  // in bounded quanta (at most quantum_steps engine steps), each quantum is
  // one task, and a shard's next quantum is submitted only after the
  // previous one returns — the in-flight task is the shard's ready token,
  // so no engine is ever touched by two threads. Idle workers steal queued
  // quanta, so shards migrate between workers and oversharding
  // (num_shards > num_threads) load-balances instead of queueing. Because
  // a shard's step sequence is independent of where its quanta run, the
  // report stays bit-identical to kRunToCompletion.
  kTimeSlice,
};

// How shard-spanning transactions execute.
enum class XShardMode {
  // Genuine distributed execution: per-shard sub-transactions under one
  // global ω position, global cycles removed by distributed partial
  // rollback. Requires engine.handling == kDetection, runs phase 1 in
  // batch mode (pipeline is ignored), and drives the shards in epochs —
  // a single-threaded coordinate step followed by a parallel quantum per
  // shard — so the report is bit-identical across worker counts.
  kLocks,
  // Legacy shortcut: the coordinator shard executes cross-shard
  // transactions against its own full replica. Fast, but globally
  // non-serializable (the replica's writes diverge from the home
  // shards'); kept for comparison and as the regression witness.
  kReplica,
};

struct ShardedOptions {
  std::uint32_t num_shards = 4;
  // Shard that executes cross-shard transactions (must be < num_shards).
  std::uint32_t coordinator_shard = 0;
  // Cross-shard execution mode (see XShardMode). With a single shard the
  // modes coincide and the driver uses the plain path.
  XShardMode xshard = XShardMode::kLocks;
  // kLocks epoch shape: engine steps per shard per epoch, union-merge
  // cadence in epochs, and the cap on globals concurrently in flight. All
  // three are part of the deterministic report's identity.
  std::uint64_t xshard_epoch_steps = 256;
  std::uint64_t xshard_merge_period = 1;
  std::uint32_t xshard_max_active_globals = 8;
  // Template for every shard's engine; engine.seed is overridden with
  // DeriveShardSeed(seed, shard).
  core::EngineOptions engine;
  sim::WorkloadOptions workload;
  // Fraction of generated transactions drawn from the full entity universe
  // (these typically span shards and land on the coordinator); the rest
  // draw their footprint from a single shard's entity pool. The *actual*
  // cross-shard fraction is measured by routing and reported.
  double cross_shard_fraction = 0.05;
  // Total multiprogramming level, split as evenly as possible over shards
  // (every shard gets at least 1).
  std::uint32_t concurrency = 16;
  std::uint64_t total_txns = 400;
  std::uint64_t max_steps_per_shard = 20'000'000;
  std::uint64_t seed = 1;
  // Worker threads; 0 means one per shard.
  std::size_t num_threads = 0;
  bool check_serializability = true;
  Value initial_value = 100;

  // Scheduling. None of these affect the report's contents (shard step
  // sequences are quantum-invariant) — only wall-clock behaviour.
  ShardScheduler scheduler = ShardScheduler::kTimeSlice;
  // kTimeSlice: upper bound on engine steps per quantum.
  std::uint64_t quantum_steps = 256;
  // kTimeSlice: scale each shard's quantum by mean/own of the online
  // per-shard step-time EWMAs, so hot shards (slow steps) run shorter
  // quanta and return to the queue while stealable work is still
  // available. Clamped to [min_quantum_steps, quantum_steps].
  bool adaptive_quantum = true;
  std::uint64_t min_quantum_steps = 32;

  // Streaming admission (pipelined phase 1): generation + routing run on a
  // producer thread that feeds per-shard bounded SPSC queues while shard
  // quanta execute, so the formerly-serial phase 1 overlaps with phase 2.
  // The producer blocks when a shard's queue is full (backpressure bounds
  // materialized-but-unadmitted programs to num_shards *
  // admission_queue_capacity) and closes every queue when the sweep ends
  // (the end-of-stream token); a shard whose queue is drained-but-open
  // yields its quantum instead of stepping, which is exactly what keeps
  // the report byte-identical to the batch path (see DESIGN D11): a shard
  // steps only when its multiprogramming level is topped up or the stream
  // has ended, the same rule the batch refill loop enforces.
  bool pipeline = true;
  std::size_t admission_queue_capacity = 32;  // clamped to >= 1

  // Workload skew: when true, a shard-local transaction's home shard is
  // the home of an entity drawn Zipf(workload.zipf_theta)-distributed from
  // the full universe, so traffic concentrates on the shards that own the
  // hot keys (the hot-key skew regime work stealing targets). When false
  // (default), local transactions spread uniformly over populated shards.
  // zipf_theta = 0 makes both modes uniform.
  bool hot_shard_routing = false;

  // Telemetry. With `instrument`, every shard engine runs fully probed
  // against a private registry labeled {{"shard","k"}}; the snapshots land
  // in ShardedReport::metrics (per-shard) and merged_metrics (labels folded
  // out). Timings never enter ShardedReportToJson, which determinism tests
  // compare byte-for-byte.
  bool instrument = true;
  // Per-transaction lifecycle timelines (DESIGN D13): one TxnLifeBook per
  // shard engine, stamped on the shard's own thread, digested to the hub at
  // snapshot cadence. Drives the per-cause wasted-work ledger, the latency
  // component histograms and the /debug/txn endpoints. Off only for
  // overhead measurements.
  bool txnlife = true;
  // Decision journal (DESIGN D14): one DecisionJournal per shard engine,
  // recording every schedule-relevant decision plus an epoch checksum
  // chain at engine.journal_epoch_steps cadence; the kLocks path adds a
  // coordinator journal with a 2PC-epoch stamp per merge round. Off only
  // for overhead measurements.
  bool journal = true;
  // Non-empty: record with unbounded rings and write each shard's journal
  // binary to "<journal_out>.shard<k>.jrnl" (kLocks adds
  // "<journal_out>.coord.jrnl") at the end — the `pardb journal` recording
  // mode.
  std::string journal_out;
  // Test hook: perturb every shard journal's state digest at this epoch
  // ordinal (~0 = off), simulating an ω-order drift for bisection tests.
  std::uint64_t journal_perturb_epoch = ~0ULL;
  // Retain each shard's full trace-event stream (for Chrome/JSONL export).
  bool collect_traces = false;
  // Keep deadlock forensic dumps, up to max_forensics_dumps per shard.
  bool collect_forensics = false;
  std::size_t max_forensics_dumps = 16;

  // Live introspection rendezvous (see obs::LiveHub; borrowed, must outlive
  // the run). When set and `instrument` is on, each shard's registry is
  // owned by the hub and registered before the pool starts, so an HTTP
  // server scraping the hub sees live counters while the run is in flight;
  // shards additionally publish waits-for snapshots at step boundaries
  // (every `hub_snapshot_period` steps and once at the end), feed the
  // per-shard step-time EWMAs behind pardb_shard_load_skew, and route
  // deadlock dumps into the hub's ring. nullptr: no live introspection, no
  // extra work on the step loop.
  obs::LiveHub* hub = nullptr;
  std::uint64_t hub_snapshot_period = 512;  // rounded up to a power of two
};

// Deterministic per-shard seed: shards must not share RNG streams, and the
// assignment must not depend on thread scheduling.
std::uint64_t DeriveShardSeed(std::uint64_t seed, std::uint32_t shard);

struct ShardResult {
  std::uint32_t shard = 0;
  std::uint64_t assigned = 0;  // transactions routed to this shard
  std::uint64_t committed = 0;
  bool completed = true;
  bool serializable = true;
  core::EngineMetrics metrics;
  core::CostDistribution rollback_costs;
  // Per-cause wasted-work ledger from the shard's lifecycle book (all zero
  // when ShardedOptions::txnlife is off). Excluded from ShardedReportToJson
  // — live visibility goes through pardb_wasted_steps_total{cause}.
  std::array<std::uint64_t, obs::kNumRollbackCauses> wasted_by_cause{};
  std::array<std::uint64_t, obs::kNumRollbackCauses> rollbacks_by_cause{};
  // Decision-journal epoch checksum chain and totals (empty/zero when
  // ShardedOptions::journal is off). Excluded from ShardedReportToJson —
  // the chain is what determinism tests compare across schedulers and
  // worker counts, never part of the byte-compared report.
  std::vector<std::uint64_t> journal_chain;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_dropped = 0;
};

// How the run was scheduled onto workers. Timing-dependent by nature, so
// it is excluded from ShardedReportToJson and ToString (which determinism
// tests byte-compare); it still lands in the metrics registry
// (pardb_steals_total, pardb_worker_utilization, pardb_quantum_steps).
struct SchedulerStats {
  std::size_t num_workers = 0;
  std::uint64_t steals = 0;   // quanta executed on a non-owning worker
  std::uint64_t quanta = 0;   // scheduling tasks executed in total
  // busy/wall per worker, then averaged / min'd over workers.
  double mean_worker_utilization = 0.0;
  double min_worker_utilization = 0.0;
  // Deterministic makespan model, in engine steps: greedy list-schedule of
  // the actual submission order over the realized per-shard step counts on
  // num_workers virtual workers (each shard is a sequential chain, so a
  // worker runs it start to finish; the next shard goes to the
  // earliest-free worker — exactly the pool's pull semantics with one real
  // core per worker). Unlike the wall-clock fields this is bit-reproducible
  // on any machine, so bench baselines pin scheduler comparisons on it.
  std::uint64_t virtual_makespan_steps = 0;
};

// How admission was pipelined. The wall-clock fields are timing-dependent
// and excluded from ShardedReportToJson / ToString (byte-compared by the
// determinism tests); overlap_fraction and peak_materialized_programs in
// *batch* mode are deterministic, and in pipelined mode overlap_fraction
// still is (it depends only on routing counts and the queue capacity).
struct AdmissionStats {
  bool pipelined = false;
  std::size_t queue_capacity = 0;
  double generate_seconds = 0.0;  // producer thread active (wall)
  double execute_seconds = 0.0;   // pool start to pool join (wall)
  // Deterministic lower bound on the fraction of generation work that
  // overlapped with execution: sum over shards of max(0, assigned -
  // capacity) / total. Program j >= capacity can only enter shard s's
  // queue after program j - capacity was popped, i.e. after s started
  // executing — so at least that much of the sweep ran concurrently with
  // phase 2. Batch mode: 0.
  double overlap_fraction = 0.0;
  // High-water mark of programs generated but not yet admitted to an
  // engine. Batch mode materializes everything: total_txns. Pipelined:
  // bounded by num_shards * queue_capacity (+1 in the producer's hand).
  std::uint64_t peak_materialized_programs = 0;
  // Producer pushes that found a full queue and waited (backpressure).
  std::uint64_t producer_blocked_pushes = 0;
};

struct ShardedReport {
  std::uint32_t num_shards = 1;
  std::vector<ShardResult> shards;

  // Sums over shards (max for the per-transaction space peaks).
  core::EngineMetrics aggregate;
  // Merged over every shard's bounded cost sample.
  core::CostDistribution rollback_costs;
  std::uint64_t committed = 0;
  bool completed = true;    // every shard finished within its step budget
  bool serializable = true;  // every shard's history is serializable

  // Routing analysis — the execution analogue of
  // DistReport::multi_site_fraction: share of transactions whose footprint
  // spans more than one shard (they serialize through the coordinator).
  std::uint64_t cross_shard_txns = 0;
  double cross_shard_fraction = 0.0;

  // Cross-shard execution (see XShardMode / xshard::Coordinator). In
  // kLocks mode `committed` above counts whole transactions (a global
  // transaction counts once, not once per slice); per-shard
  // ShardResult::committed still counts engine commits, slices included.
  bool xshard_locks = false;
  xshard::XShardStats xshard;
  // kLocks only: the coordinator journal's 2PC-epoch checksum chain (one
  // link per merge round, folding every shard's state digest). Excluded
  // from ShardedReportToJson like the per-shard chains.
  std::vector<std::uint64_t> coord_journal_chain;
  // Conflict-serializability of the *merged* committed projection across
  // shards (analysis::GlobalHistory); computed whenever
  // check_serializability is on. kLocks keeps it true; kReplica fails it
  // as soon as the coordinator's replica writes diverge from a home
  // shard's.
  bool global_serializable = true;

  double wasted_fraction = 0.0;
  double goodput = 0.0;

  // Summed per-cause wasted-work ledger over shards (see ShardResult).
  std::array<std::uint64_t, obs::kNumRollbackCauses> wasted_by_cause{};
  std::array<std::uint64_t, obs::kNumRollbackCauses> rollbacks_by_cause{};

  // Telemetry (populated per ShardedOptions::instrument/collect_*).
  // `metrics` carries every shard's registry snapshot side by side
  // (distinguished by the "shard" label); `merged_metrics` folds the shard
  // label out, summing counters and merging histograms bucket-wise.
  obs::RegistrySnapshot metrics;
  obs::RegistrySnapshot merged_metrics;
  // One event stream per shard, in shard order (empty without
  // collect_traces).
  std::vector<std::vector<core::TraceEvent>> shard_traces;
  // Cross-shard slice index for Chrome-trace flow arrows: every (global
  // seq, shard, local txn) slice the coordinator ever spawned. kLocks mode
  // with collect_traces only; empty otherwise.
  std::vector<core::GlobalSlice> flow_slices;
  // Deadlock dumps across shards, in shard order (empty without
  // collect_forensics).
  std::vector<obs::DeadlockDump> forensics;

  SchedulerStats scheduler;
  AdmissionStats admission;

  std::string ToString() const;
};

// Generates the workload, routes it, runs the shards concurrently and
// aggregates. The report is bit-identical across repeated runs with the
// same options (thread scheduling cannot affect it: shards share nothing
// and each is internally deterministic).
Result<ShardedReport> RunSharded(const ShardedOptions& options);

}  // namespace pardb::par

#endif  // PARDB_PAR_SHARDED_DRIVER_H_

#include "par/admission_queue.h"

#include <cassert>
#include <utility>

namespace pardb::par {

void AdmissionQueue::Push(txn::Program program) {
  std::unique_lock<std::mutex> lock(mu_);
  assert(!closed_ && "Push after Close");
  if (items_.size() >= capacity_ && !abandoned_) {
    blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || abandoned_; });
  }
  if (abandoned_) {  // consumer is gone; discard
    DecrementMaterialized(1);
    return;
  }
  items_.push_back(Item{std::move(program), clock_->NowNanos()});
  pushed_.fetch_add(1, std::memory_order_relaxed);
  UpdateGauge(items_.size());
  lock.unlock();
  not_empty_.notify_one();
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!closed_ && "Close called twice");
    closed_ = true;
  }
  not_empty_.notify_all();
}

AdmissionQueue::Pop AdmissionQueue::TryPop(txn::Program* out,
                                           std::uint64_t* wait_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  if (items_.empty()) return closed_ ? Pop::kClosed : Pop::kEmpty;
  Item item = std::move(items_.front());
  items_.pop_front();
  *out = std::move(item.program);
  if (wait_ns != nullptr) {
    const std::uint64_t now = clock_->NowNanos();
    *wait_ns = now > item.enqueue_ns ? now - item.enqueue_ns : 0;
  }
  popped_.fetch_add(1, std::memory_order_relaxed);
  UpdateGauge(items_.size());
  DecrementMaterialized(1);
  lock.unlock();
  not_full_.notify_one();
  return Pop::kItem;
}

AdmissionQueue::Pop AdmissionQueue::WaitPop(txn::Program* out,
                                            std::chrono::microseconds timeout,
                                            std::uint64_t* wait_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait_for(lock, timeout,
                      [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return closed_ ? Pop::kClosed : Pop::kEmpty;
  Item item = std::move(items_.front());
  items_.pop_front();
  *out = std::move(item.program);
  if (wait_ns != nullptr) {
    const std::uint64_t now = clock_->NowNanos();
    *wait_ns = now > item.enqueue_ns ? now - item.enqueue_ns : 0;
  }
  popped_.fetch_add(1, std::memory_order_relaxed);
  UpdateGauge(items_.size());
  DecrementMaterialized(1);
  lock.unlock();
  not_full_.notify_one();
  return Pop::kItem;
}

void AdmissionQueue::Abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned_ = true;
    DecrementMaterialized(static_cast<std::int64_t>(items_.size()));
    items_.clear();
    UpdateGauge(0);
  }
  not_full_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace pardb::par

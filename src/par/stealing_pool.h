#ifndef PARDB_PAR_STEALING_POOL_H_
#define PARDB_PAR_STEALING_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pardb::par {

// Work-stealing worker pool. Each worker owns a deque: it pops its own
// work LIFO (the task it just produced is hot in cache), takes external
// submissions from a shared injection queue FIFO, and when both are empty
// steals FIFO from another worker's deque — the oldest task, the one its
// owner would reach last. Tasks are independent closures, like ThreadPool's;
// the difference is that a task submitted from inside a running task lands
// on the submitting worker's own deque, so a chain of self-resubmitting
// tasks (the sharded driver's per-shard quantum chain) stays on one worker
// until some idle worker steals it — which is exactly the migration the
// scheduler wants under load skew.
//
// Wait() blocks until every task submitted so far has finished (queues
// drained AND nothing still executing); the pool is reusable afterwards.
// Correctness-first synchronization: each deque has its own mutex, taken
// once per task — quantum tasks run hundreds of engine steps, so the lock
// is noise. Counters (steals, per-worker busy time and task counts) are
// relaxed atomics, safe to read live from a metrics scraper.
class StealingPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit StealingPool(std::size_t num_threads);

  StealingPool(const StealingPool&) = delete;
  StealingPool& operator=(const StealingPool&) = delete;

  // Drains outstanding tasks, then joins the workers.
  ~StealingPool();

  // From a non-worker thread: pushes onto the shared injection queue.
  // From a worker of this pool: pushes onto that worker's own deque.
  void Submit(std::function<void()> task);

  // Always pushes onto the shared injection queue, even from a worker.
  // For tasks that made no progress and expect some *other* task to
  // unblock them (a pipelined shard yielding on a drained-but-open
  // admission queue): the worker's own-deque LIFO pop would run the
  // resubmitted task again immediately, starving the sibling chains —
  // including the one the producer is blocked on — whereas the injection
  // queue is FIFO, so every runnable chain gets a turn first.
  void SubmitGlobal(std::function<void()> task);

  // Blocks until all tasks submitted so far have completed.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

  // Index of the calling worker in [0, num_threads), or -1 when the caller
  // is not one of this pool's workers.
  int current_worker() const;

  // Tasks taken from another worker's deque (not injection-queue pops).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_executed(std::size_t worker) const {
    return slots_[worker]->executed.load(std::memory_order_relaxed);
  }
  // Wall time worker `worker` spent inside tasks, accumulated at task end.
  std::uint64_t busy_nanos(std::size_t worker) const {
    return slots_[worker]->busy_ns.load(std::memory_order_relaxed);
  }
  // Nanoseconds since the pool started — the utilization denominator.
  std::uint64_t uptime_nanos() const;

 private:
  struct Slot {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void WorkerLoop(std::size_t self);
  // Own deque (LIFO), then injection (FIFO), then steal (FIFO). Decrements
  // queued_ on success.
  bool TryPop(std::size_t self, std::function<void()>& task);

  std::mutex mu_;                      // guards sleep/wake and stopping_
  std::condition_variable work_cv_;    // queued_ > 0 or stopping_
  std::condition_variable all_done_;   // in_flight_ == 0
  bool stopping_ = false;
  std::atomic<std::size_t> queued_{0};     // tasks sitting in some queue
  std::atomic<std::size_t> in_flight_{0};  // queued + currently executing
  std::atomic<std::uint64_t> steals_{0};

  std::mutex inject_mu_;
  std::deque<std::function<void()>> inject_;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pardb::par

#endif  // PARDB_PAR_STEALING_POOL_H_

#include "par/router.h"

#include <algorithm>
#include <set>

#include "dist/distributed.h"

namespace pardb::par {

std::vector<EntityId> EntityFootprint(const txn::Program& program) {
  std::vector<EntityId> footprint;
  std::set<EntityId> seen;
  for (const txn::Op& op : program.ops()) {
    if (op.code != txn::OpCode::kLockShared &&
        op.code != txn::OpCode::kLockExclusive) {
      continue;
    }
    if (seen.insert(op.entity).second) footprint.push_back(op.entity);
  }
  return footprint;
}

namespace {

// splitmix64 finalizer: a cheap deterministic spread for footprint-free
// programs, which any shard may execute correctly.
std::uint32_t HashShard(std::uint64_t txn_seq, std::uint32_t num_shards) {
  std::uint64_t z = txn_seq + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z % num_shards);
}

}  // namespace

Route RouteProgram(const txn::Program& program, std::uint32_t num_shards,
                   std::uint32_t coordinator_shard, std::uint64_t txn_seq) {
  if (num_shards <= 1) return Route{0, false};
  bool first = true;
  std::uint32_t home = 0;
  for (EntityId e : EntityFootprint(program)) {
    const std::uint32_t s = dist::SiteOfEntity(e, num_shards);
    if (first) {
      home = s;
      first = false;
    } else if (s != home) {
      return Route{coordinator_shard, true};
    }
  }
  if (first) {
    // Lock-free program: no footprint constrains it. Hashing the admission
    // sequence keeps the placement deterministic without loading the
    // coordinator (the busiest shard under any cross-shard traffic).
    return Route{HashShard(txn_seq, num_shards), false};
  }
  return Route{home, false};
}

std::vector<std::vector<EntityId>> ShardEntityUniverses(
    std::uint64_t num_entities, std::uint32_t num_shards) {
  std::vector<std::vector<EntityId>> universes(
      std::max<std::uint32_t>(1, num_shards));
  for (std::uint64_t e = 0; e < num_entities; ++e) {
    EntityId id(e);
    universes[dist::SiteOfEntity(id, num_shards)].push_back(id);
  }
  return universes;
}

}  // namespace pardb::par

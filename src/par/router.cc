#include "par/router.h"

#include <algorithm>
#include <set>

#include "dist/distributed.h"

namespace pardb::par {

std::vector<EntityId> EntityFootprint(const txn::Program& program) {
  std::vector<EntityId> footprint;
  std::set<EntityId> seen;
  for (const txn::Op& op : program.ops()) {
    if (op.code != txn::OpCode::kLockShared &&
        op.code != txn::OpCode::kLockExclusive) {
      continue;
    }
    if (seen.insert(op.entity).second) footprint.push_back(op.entity);
  }
  return footprint;
}

Route RouteProgram(const txn::Program& program, std::uint32_t num_shards,
                   std::uint32_t coordinator_shard) {
  Route route{coordinator_shard, false};
  if (num_shards <= 1) return Route{0, false};
  bool first = true;
  std::uint32_t home = coordinator_shard;
  for (EntityId e : EntityFootprint(program)) {
    const std::uint32_t s = dist::SiteOfEntity(e, num_shards);
    if (first) {
      home = s;
      first = false;
    } else if (s != home) {
      return Route{coordinator_shard, true};
    }
  }
  if (!first) route.shard = home;
  return route;
}

std::vector<std::vector<EntityId>> ShardEntityUniverses(
    std::uint64_t num_entities, std::uint32_t num_shards) {
  std::vector<std::vector<EntityId>> universes(
      std::max<std::uint32_t>(1, num_shards));
  for (std::uint64_t e = 0; e < num_entities; ++e) {
    EntityId id(e);
    universes[dist::SiteOfEntity(id, num_shards)].push_back(id);
  }
  return universes;
}

}  // namespace pardb::par

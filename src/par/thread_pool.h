#ifndef PARDB_PAR_THREAD_POOL_H_
#define PARDB_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pardb::par {

// Fixed-size worker pool. Tasks are independent closures; Wait() blocks
// until every submitted task has finished (queue drained AND no task still
// executing), after which the pool is reusable for another batch.
//
// Deliberately minimal: no futures, no task return values, no exceptions
// across the boundary (tasks report failure through state they own — see
// RunSharded, where each shard task writes only its own result slot).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  void Submit(std::function<void()> task);

  // Blocks until all tasks submitted so far have completed.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pardb::par

#endif  // PARDB_PAR_THREAD_POOL_H_

#include "par/sharded_driver.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "analysis/history.h"
#include "common/random.h"
#include "core/metrics_export.h"
#include "obs/lineage.h"
#include "obs/metric_names.h"
#include "par/router.h"
#include "par/thread_pool.h"
#include "storage/entity_store.h"

namespace pardb::par {

namespace {

// splitmix64 finalizer: decorrelates the per-shard engine/workload streams
// from the top-level seed and from each other.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

core::EngineMetrics SumMetrics(const std::vector<ShardResult>& shards) {
  core::EngineMetrics m;
  for (const ShardResult& s : shards) {
    const core::EngineMetrics& a = s.metrics;
    m.steps += a.steps;
    m.ops_executed += a.ops_executed;
    m.commits += a.commits;
    m.lock_waits += a.lock_waits;
    m.deadlocks += a.deadlocks;
    m.rollbacks += a.rollbacks;
    m.partial_rollbacks += a.partial_rollbacks;
    m.total_rollbacks += a.total_rollbacks;
    m.preemptions += a.preemptions;
    m.wounds += a.wounds;
    m.deaths += a.deaths;
    m.timeouts += a.timeouts;
    m.wasted_ops += a.wasted_ops;
    m.ideal_wasted_ops += a.ideal_wasted_ops;
    m.cycles_found += a.cycles_found;
    m.periodic_scans += a.periodic_scans;
    m.max_entity_copies = std::max(m.max_entity_copies, a.max_entity_copies);
    m.max_var_copies = std::max(m.max_var_copies, a.max_var_copies);
  }
  return m;
}

struct ShardRun {
  std::vector<txn::Program> programs;
  std::uint32_t concurrency = 1;
  Status status = Status::OK();
  ShardResult result;
  std::vector<std::uint32_t> cost_samples;
  obs::RegistrySnapshot metrics;  // labeled {{"shard","k"}}
  std::vector<core::TraceEvent> trace_events;
  std::vector<obs::DeadlockDump> forensics;
  // Hub-owned registry when live introspection is on (so /metrics outlives
  // the run); null otherwise — RunOneShard then uses a local registry.
  obs::MetricsRegistry* registry = nullptr;
  // Hub-owned ring sink, installed alongside any collecting sink.
  obs::DeadlockDumpSink* hub_sink = nullptr;
};

// Closed-loop execution of one shard's assigned transactions on its own
// engine. Runs entirely on one pool thread; touches only `run`.
void RunOneShard(const ShardedOptions& options, std::uint32_t shard,
                 ShardRun& run) {
  run.result.shard = shard;
  run.result.assigned = run.programs.size();

  storage::EntityStore store;
  store.CreateMany(options.workload.num_entities, options.initial_value);
  analysis::HistoryRecorder recorder;
  core::EngineOptions eopt = options.engine;
  eopt.seed = DeriveShardSeed(options.seed, shard);
  core::Engine engine(&store, eopt,
                      options.check_serializability ? &recorder : nullptr);

  // Per-shard telemetry. Without a hub the registry is private to this
  // thread and merged after the pool joins; with one it is hub-owned and
  // scraped live (its counters are lock-free atomics, so the serving thread
  // reads it safely while this thread writes).
  const obs::LabelSet labels{{obs::kShardLabel, std::to_string(shard)}};
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& registry =
      run.registry != nullptr ? *run.registry : local_registry;
  obs::LiveHub* hub = options.hub;
  obs::EngineProbe probe;
  obs::Histogram* step_ns = nullptr;
  obs::LineageTracker lineage;
  if (options.instrument) {
    probe = obs::MakeEngineProbe(&registry, labels);
    engine.set_probe(&probe);
    step_ns = registry.GetHistogram(obs::kShardStepNs, labels);
    lineage.AttachMetrics(&registry, labels);
    engine.set_lineage(&lineage);
  }
  core::VectorTrace trace;
  if (options.collect_traces) engine.set_trace(&trace);
  obs::CollectingDeadlockSink forensics(options.max_forensics_dumps);
  obs::FanOutDeadlockSink fanout(&forensics, run.hub_sink);
  if (options.collect_forensics && run.hub_sink != nullptr) {
    engine.set_forensics(&fanout);
  } else if (options.collect_forensics) {
    engine.set_forensics(&forensics);
  } else if (run.hub_sink != nullptr) {
    engine.set_forensics(run.hub_sink);
  }
  const std::uint64_t snap_mask =
      options.hub_snapshot_period == 0 ? 511 : options.hub_snapshot_period - 1;

  const std::uint64_t total = run.programs.size();
  std::uint64_t spawned = 0;
  std::uint64_t steps = 0;
  bool completed = true;
  while (engine.metrics().commits < total) {
    if (++steps > options.max_steps_per_shard) {
      completed = false;
      break;
    }
    while (spawned < total &&
           spawned - engine.metrics().commits < run.concurrency) {
      auto id = engine.Spawn(std::move(run.programs[spawned]));
      if (!id.ok()) {
        run.status = id.status();
        return;
      }
      ++spawned;
    }
    // Sampled step-loop timing: every 64th iteration, cheap enough to stay
    // within the instrumentation overhead budget.
    const bool time_step = step_ns != nullptr && (steps & 0x3F) == 0;
    const std::uint64_t t0 =
        time_step ? probe.EffectiveClock()->NowNanos() : 0;
    auto stepped = engine.StepAny();
    if (time_step) {
      const std::uint64_t dt = probe.EffectiveClock()->NowNanos() - t0;
      step_ns->Record(dt);
      if (hub != nullptr) hub->RecordShardStep(shard, dt);
    }
    if (hub != nullptr && (steps & snap_mask) == 0) {
      obs::WaitsForSnapshot snap = engine.SnapshotWaitsFor();
      snap.shard = shard;
      hub->PublishSnapshot(std::move(snap));
    }
    if (!stepped.ok()) {
      run.status = stepped.status();
      return;
    }
    if (!stepped.value().has_value()) {
      run.status = Status::Internal("shard " + std::to_string(shard) +
                                    " stalled:\n" + engine.DumpState());
      return;
    }
  }

  run.result.committed = engine.metrics().commits;
  run.result.completed = completed;
  run.result.serializable = !options.check_serializability ||
                            recorder.IsConflictSerializable();
  run.result.metrics = engine.metrics();
  run.result.rollback_costs = engine.RollbackCostDistribution();
  run.cost_samples = engine.rollback_cost_samples();
  if (hub != nullptr) {
    // Final snapshot: the post-run server shows the end state (normally an
    // empty graph — every transaction committed).
    obs::WaitsForSnapshot snap = engine.SnapshotWaitsFor();
    snap.shard = shard;
    hub->PublishSnapshot(std::move(snap));
  }
  if (options.instrument) {
    core::ExportEngineMetrics(engine, &registry, labels);
    registry.GetCounter(obs::kTraceDroppedTotal, labels)
        ->Inc(core::TraceDropped(options.collect_traces ? &trace : nullptr));
    run.metrics = registry.Snapshot();
  }
  if (options.collect_traces) run.trace_events = trace.events();
  if (options.collect_forensics) run.forensics = forensics.dumps();
}

}  // namespace

std::uint64_t DeriveShardSeed(std::uint64_t seed, std::uint32_t shard) {
  return Mix(seed ^ Mix(0x5eed0000ULL + shard));
}

std::string ShardedReport::ToString() const {
  std::ostringstream os;
  os << "shards=" << num_shards << " committed=" << committed
     << (completed ? "" : " (INCOMPLETE)")
     << " cross_shard=" << cross_shard_txns
     << " (frac=" << cross_shard_fraction << ")"
     << " deadlocks=" << aggregate.deadlocks
     << " rollbacks=" << aggregate.rollbacks
     << " wasted=" << aggregate.wasted_ops
     << " wasted_frac=" << wasted_fraction << " goodput=" << goodput
     << " serializable=" << (serializable ? "yes" : "NO");
  return os.str();
}

Result<ShardedReport> RunSharded(const ShardedOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.coordinator_shard >= options.num_shards) {
    return Status::InvalidArgument("coordinator_shard out of range");
  }
  if (options.workload.num_entities == 0) {
    return Status::InvalidArgument("workload needs at least one entity");
  }
  const std::uint32_t n = options.num_shards;
  if (options.hub != nullptr) options.hub->SetPhase(obs::RunPhase::kGenerating);

  // Phase 1 (serial, deterministic): generate and route the workload.
  // Local transactions draw from one shard's entity pool; with probability
  // cross_shard_fraction a transaction draws from the full universe. The
  // authoritative routing decision is always the footprint hash.
  auto universes = ShardEntityUniverses(options.workload.num_entities, n);
  std::vector<std::uint32_t> populated;
  std::vector<std::unique_ptr<sim::WorkloadGenerator>> local(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (universes[s].empty()) continue;
    sim::WorkloadOptions w = options.workload;
    w.entity_universe = universes[s];
    local[s] = std::make_unique<sim::WorkloadGenerator>(
        w, DeriveShardSeed(options.seed, 0x10000u + s));
    populated.push_back(s);
  }
  sim::WorkloadGenerator global(options.workload,
                                DeriveShardSeed(options.seed, 0x20000u));
  Rng route_rng(DeriveShardSeed(options.seed, 0x30000u));

  std::vector<ShardRun> runs(n);
  ShardedReport report;
  report.num_shards = n;
  for (std::uint64_t t = 0; t < options.total_txns; ++t) {
    const bool want_cross = populated.empty() ||
                            route_rng.Bernoulli(options.cross_shard_fraction);
    sim::WorkloadGenerator& gen =
        want_cross ? global
                   : *local[populated[route_rng.Uniform(populated.size())]];
    auto program = gen.Next();
    if (!program.ok()) return program.status();
    const Route route =
        RouteProgram(program.value(), n, options.coordinator_shard);
    if (route.cross_shard) ++report.cross_shard_txns;
    runs[route.shard].programs.push_back(std::move(program).value());
  }

  // Multiprogramming level: split over shards, at least 1 each.
  const std::uint32_t base = options.concurrency / n;
  const std::uint32_t rem = options.concurrency % n;
  for (std::uint32_t s = 0; s < n; ++s) {
    runs[s].concurrency = std::max<std::uint32_t>(1, base + (s < rem ? 1 : 0));
  }

  // Live introspection: hand each shard a hub-owned registry and a ring
  // sink *before* the pool starts (hub registration is not safe mid-run),
  // so the serving thread scrapes live counters while shards execute.
  if (options.hub != nullptr && options.instrument) {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].registry =
          options.hub->AddOwnedRegistry(std::make_unique<obs::MetricsRegistry>());
    }
  }
  if (options.hub != nullptr) {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].hub_sink = options.hub->MakeDeadlockSink(s);
    }
    options.hub->SetPhase(obs::RunPhase::kRunning);
  }

  // Phase 2 (parallel): one task per shard; each task reads the shared
  // options and writes only its own ShardRun. ThreadPool::Wait gives the
  // aggregation phase a happens-before edge over every task.
  {
    ThreadPool pool(options.num_threads == 0 ? n : options.num_threads);
    for (std::uint32_t s = 0; s < n; ++s) {
      pool.Submit([&options, s, &runs] { RunOneShard(options, s, runs[s]); });
    }
    pool.Wait();
  }
  if (options.hub != nullptr) {
    options.hub->SetPhase(obs::RunPhase::kAggregating);
  }

  std::vector<std::uint32_t> merged_costs;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!runs[s].status.ok()) return runs[s].status;
    report.shards.push_back(runs[s].result);
    merged_costs.insert(merged_costs.end(), runs[s].cost_samples.begin(),
                        runs[s].cost_samples.end());
    report.metrics.MergeFrom(runs[s].metrics);
    if (options.collect_traces) {
      report.shard_traces.push_back(std::move(runs[s].trace_events));
    }
    for (obs::DeadlockDump& d : runs[s].forensics) {
      report.forensics.push_back(std::move(d));
    }
  }
  if (options.instrument) {
    report.merged_metrics = report.metrics.WithoutLabel("shard");
  }
  report.aggregate = SumMetrics(report.shards);
  report.rollback_costs = core::ComputeCostDistribution(std::move(merged_costs));
  report.committed = report.aggregate.commits;
  for (const ShardResult& s : report.shards) {
    report.completed = report.completed && s.completed;
    report.serializable = report.serializable && s.serializable;
  }
  report.cross_shard_fraction =
      SafeRatio(report.cross_shard_txns, options.total_txns);
  report.wasted_fraction =
      SafeRatio(report.aggregate.wasted_ops, report.aggregate.ops_executed);
  report.goodput =
      SafeRatio(report.committed, report.aggregate.ops_executed);
  if (options.hub != nullptr) options.hub->SetPhase(obs::RunPhase::kDone);
  return report;
}

}  // namespace pardb::par

#include "par/sharded_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/global_history.h"
#include "analysis/history.h"
#include "common/bits.h"
#include "common/random.h"
#include "core/metrics_export.h"
#include "dist/distributed.h"
#include "obs/lineage.h"
#include "obs/metric_names.h"
#include "par/admission_queue.h"
#include "par/router.h"
#include "par/stealing_pool.h"
#include "par/xshard/global_graph.h"
#include "storage/entity_store.h"

namespace pardb::par {

namespace {

// splitmix64 finalizer: decorrelates the per-shard engine/workload streams
// from the top-level seed and from each other.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

core::EngineMetrics SumMetrics(const std::vector<ShardResult>& shards) {
  core::EngineMetrics m;
  for (const ShardResult& s : shards) {
    const core::EngineMetrics& a = s.metrics;
    m.steps += a.steps;
    m.ops_executed += a.ops_executed;
    m.commits += a.commits;
    m.lock_waits += a.lock_waits;
    m.deadlocks += a.deadlocks;
    m.rollbacks += a.rollbacks;
    m.partial_rollbacks += a.partial_rollbacks;
    m.total_rollbacks += a.total_rollbacks;
    m.preemptions += a.preemptions;
    m.wounds += a.wounds;
    m.deaths += a.deaths;
    m.timeouts += a.timeouts;
    m.wasted_ops += a.wasted_ops;
    m.ideal_wasted_ops += a.ideal_wasted_ops;
    m.cycles_found += a.cycles_found;
    m.periodic_scans += a.periodic_scans;
    m.max_entity_copies = std::max(m.max_entity_copies, a.max_entity_copies);
    m.max_var_copies = std::max(m.max_var_copies, a.max_var_copies);
  }
  return m;
}

void SumLedgers(ShardedReport& report) {
  for (const ShardResult& s : report.shards) {
    for (std::size_t c = 0; c < obs::kNumRollbackCauses; ++c) {
      report.wasted_by_cause[c] += s.wasted_by_cause[c];
      report.rollbacks_by_cause[c] += s.rollbacks_by_cause[c];
    }
  }
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Seconds(std::uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-9;
}

// Materialized-but-unadmitted program accounting: the producer increments
// on generate, and each shard's AdmissionQueue decrements inside its pop
// critical section (set_materialized_counter) — so a freed slot is never
// visible to the producer before the decrement, and the high-water mark
// is bounded by num_shards * capacity + 1. The peak is a producer-side
// high-water mark: only the producer writes it, right after its own
// increment.
struct AdmissionShared {
  std::atomic<std::int64_t> materialized{0};
  std::atomic<std::int64_t> peak{0};
};

// Per-shard state that persists across quanta: the engine and everything
// wired into it. Exactly one quantum task per shard is ever in flight (the
// task is the shard's ready token), so although quanta migrate between
// workers, this struct is only ever touched by one thread at a time, and
// the pool's queue transfer orders each quantum's writes before the next
// quantum's reads.
struct ShardExec {
  ShardExec(std::size_t max_dumps, obs::DeadlockDumpSink* hub_sink,
            obs::DecisionJournal::Options journal_options)
      : journal(journal_options),
        forensics(max_dumps),
        fanout(&forensics, hub_sink) {}

  storage::EntityStore store;
  analysis::HistoryRecorder recorder;
  obs::MetricsRegistry local_registry;
  obs::EngineProbe probe;
  obs::LineageTracker lineage;
  obs::TxnLifeBook txnlife;
  obs::DecisionJournal journal;
  core::VectorTrace trace;
  obs::CollectingDeadlockSink forensics;
  obs::FanOutDeadlockSink fanout;
  std::unique_ptr<core::Engine> engine;
  obs::MetricsRegistry* registry = nullptr;  // hub-owned or &local_registry
  obs::Histogram* step_ns = nullptr;
  obs::LabelSet labels;
  // Delta exporter behind the interim (hub-cadence) and final engine
  // aggregate publications — repeated exports never double-count.
  core::EngineMetricsExporter exporter;

  std::uint64_t spawned = 0;
  std::uint64_t steps = 0;         // engine steps consumed (budget account)
  std::uint64_t next_snap_at = 0;  // steps threshold for next hub snapshot
  bool eos = false;  // pipelined: end-of-stream token observed
};

struct ShardRun {
  // Batch mode: the shard's routed programs, materialized up front.
  std::vector<txn::Program> programs;
  // Pipelined mode: programs stream through this queue instead (programs
  // stays empty); null in batch mode.
  std::unique_ptr<AdmissionQueue> queue;
  std::uint32_t concurrency = 1;
  Status status = Status::OK();
  ShardResult result;
  std::vector<std::uint32_t> cost_samples;
  obs::RegistrySnapshot metrics;  // labeled {{"shard","k"}}
  std::vector<core::TraceEvent> trace_events;
  std::vector<obs::DeadlockDump> forensics;
  // Hub-owned registry when live introspection is on (so /metrics outlives
  // the run); null otherwise — the shard then uses its exec's local
  // registry.
  obs::MetricsRegistry* registry = nullptr;
  // Hub-owned ring sink, installed alongside any collecting sink.
  obs::DeadlockDumpSink* hub_sink = nullptr;
  std::unique_ptr<ShardExec> exec;
};

// Builds the shard's engine and telemetry wiring; runs on whichever worker
// executes the shard's first quantum.
void InitShardExec(const ShardedOptions& options, std::uint32_t shard,
                   ShardRun& run) {
  run.result.shard = shard;
  // Recording mode (journal_out set) keeps every record so written files
  // are complete; otherwise a bounded ring with counted evictions.
  run.exec = std::make_unique<ShardExec>(
      options.max_forensics_dumps, run.hub_sink,
      obs::DecisionJournal::Options{
          options.journal_out.empty() ? std::size_t{65536} : std::size_t{0}});
  ShardExec& ex = *run.exec;
  ex.store.CreateMany(options.workload.num_entities, options.initial_value);
  core::EngineOptions eopt = options.engine;
  eopt.seed = DeriveShardSeed(options.seed, shard);
  ex.engine = std::make_unique<core::Engine>(
      &ex.store, eopt, options.check_serializability ? &ex.recorder : nullptr);
  core::Engine& engine = *ex.engine;
  // Pre-size the txn-indexed tables with the whole run's upper bound so
  // shard admission never pays a rehash or reallocation mid-flight.
  engine.ReserveTxns(options.total_txns);

  // Per-shard telemetry. Without a hub the registry is private to this
  // shard and merged after the pool joins; with one it is hub-owned and
  // scraped live (its counters are lock-free atomics, so the serving thread
  // reads it safely while a worker writes).
  ex.labels = obs::LabelSet{{obs::kShardLabel, std::to_string(shard)}};
  const obs::LabelSet& labels = ex.labels;
  ex.registry = run.registry != nullptr ? run.registry : &ex.local_registry;
  if (options.instrument) {
    ex.probe = obs::MakeEngineProbe(ex.registry, labels);
    engine.set_probe(&ex.probe);
    ex.step_ns = ex.registry->GetHistogram(obs::kShardStepNs, labels);
    ex.lineage.AttachMetrics(ex.registry, labels);
    engine.set_lineage(&ex.lineage);
  }
  if (options.txnlife) {
    if (options.instrument) ex.txnlife.AttachMetrics(ex.registry, labels);
    engine.set_txnlife(&ex.txnlife);
  }
  if (options.journal) {
    ex.journal.set_perturb_epoch_for_test(options.journal_perturb_epoch);
    if (options.instrument) ex.journal.AttachMetrics(ex.registry, labels);
    engine.set_journal(&ex.journal);
  }
  if (options.collect_traces) engine.set_trace(&ex.trace);
  if (options.collect_forensics && run.hub_sink != nullptr) {
    engine.set_forensics(&ex.fanout);
  } else if (options.collect_forensics) {
    engine.set_forensics(&ex.forensics);
  } else if (run.hub_sink != nullptr) {
    engine.set_forensics(run.hub_sink);
  }
  // Rounded up so callers may pass any cadence (it used to be masked as
  // period-1 and silently misbehaved for non-powers-of-two).
  ex.next_snap_at = RoundUpPowerOfTwo(
      options.hub_snapshot_period == 0 ? 512 : options.hub_snapshot_period);
}

// Finalizes the shard's slice of the report once it committed everything
// (or exhausted its step budget).
void FinishShard(const ShardedOptions& options, std::uint32_t shard,
                 ShardRun& run, bool completed) {
  ShardExec& ex = *run.exec;
  core::Engine& engine = *ex.engine;
  run.result.committed = engine.metrics().commits;
  run.result.completed = completed;
  run.result.serializable =
      !options.check_serializability || ex.recorder.IsConflictSerializable();
  run.result.metrics = engine.metrics();
  run.result.rollback_costs = engine.RollbackCostDistribution();
  run.cost_samples = engine.rollback_cost_samples();
  if (options.txnlife) {
    run.result.wasted_by_cause = ex.txnlife.wasted_by_cause();
    run.result.rollbacks_by_cause = ex.txnlife.rollbacks_by_cause();
    if (options.hub != nullptr) {
      options.hub->PublishTxnLife(ex.txnlife.Digest(shard));
    }
  }
  if (options.journal) {
    run.result.journal_chain = ex.journal.ChainValues();
    run.result.journal_records = ex.journal.total_records();
    run.result.journal_dropped = ex.journal.dropped_records();
    if (options.hub != nullptr) {
      options.hub->PublishJournal(ex.journal.Digest(shard));
    }
    if (!options.journal_out.empty() && run.status.ok()) {
      run.status = ex.journal.WriteFile(
          options.journal_out + ".shard" + std::to_string(shard) + ".jrnl",
          shard, options.seed);
    }
  }
  if (options.hub != nullptr) {
    // Final snapshot: the post-run server shows the end state (normally an
    // empty graph — every transaction committed).
    obs::WaitsForSnapshot snap = engine.SnapshotWaitsFor();
    snap.shard = shard;
    options.hub->PublishSnapshot(std::move(snap));
  }
  if (options.instrument) {
    const obs::LabelSet& labels = ex.labels;
    // Final delta on top of any interim (hub-cadence) exports: the
    // registry ends at exactly the engine's aggregates.
    ex.exporter.Export(engine, ex.registry, labels);
    ex.registry->GetCounter(obs::kTraceDroppedTotal, labels)
        ->Inc(core::TraceDropped(options.collect_traces ? &ex.trace : nullptr));
    run.metrics = ex.registry->Snapshot();
  }
  if (options.collect_traces) run.trace_events = ex.trace.events();
  if (options.collect_forensics) run.forensics = ex.forensics.dumps();
}

// Shared scheduler state: the pool, the per-shard step-time EWMAs feeding
// adaptive quantum sizing, and the scheduler's own metrics. EWMA slots are
// written only by the owning shard's quantum (single writer) and read by
// every shard when sizing a quantum — hence atomics, relaxed.
struct SchedulerCtx {
  const ShardedOptions* options = nullptr;
  std::vector<ShardRun>* runs = nullptr;
  StealingPool* pool = nullptr;
  std::uint32_t num_shards = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> ewma_ns;

  obs::Histogram* quantum_hist = nullptr;  // null when !instrument
  obs::Counter* steals_counter = nullptr;
  std::vector<obs::Gauge*> util_gauges;
  std::atomic<std::uint64_t> steals_published{0};
  std::atomic<std::uint64_t> quanta{0};

  void UpdateEwma(std::uint32_t shard, std::uint64_t v) {
    std::atomic<std::uint64_t>& slot = ewma_ns[shard];
    const std::uint64_t old = slot.load(std::memory_order_relaxed);
    if (old == 0) {
      slot.store(std::max<std::uint64_t>(1, v), std::memory_order_relaxed);
      return;
    }
    const std::int64_t delta =
        (static_cast<std::int64_t>(v) - static_cast<std::int64_t>(old)) / 8;
    const std::int64_t next = static_cast<std::int64_t>(old) + delta;
    slot.store(next > 0 ? static_cast<std::uint64_t>(next) : 1,
               std::memory_order_relaxed);
  }

  // Quantum size for the shard's next slice. Hot shards (step EWMA above
  // the mean) get proportionally shorter quanta, so they come back to the
  // queue while there is still stealable work behind them; cold shards run
  // the full quantum.
  std::uint64_t QuantumFor(std::uint32_t shard) const {
    const ShardedOptions& o = *options;
    if (o.scheduler == ShardScheduler::kRunToCompletion) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    const std::uint64_t base = std::max<std::uint64_t>(1, o.quantum_steps);
    if (!o.adaptive_quantum) return base;
    const std::uint64_t own = ewma_ns[shard].load(std::memory_order_relaxed);
    if (own == 0) return base;
    std::uint64_t sum = 0, reporting = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const std::uint64_t v = ewma_ns[s].load(std::memory_order_relaxed);
      if (v > 0) {
        sum += v;
        ++reporting;
      }
    }
    if (reporting == 0) return base;
    const std::uint64_t mean = std::max<std::uint64_t>(1, sum / reporting);
    const std::uint64_t lo = std::min(
        std::max<std::uint64_t>(1, o.min_quantum_steps), base);
    return std::clamp(base * mean / own, lo, base);
  }

  // Publishes live scheduler metrics: the steal counter advances by the
  // delta since the last publication (CAS winner increments its range, so
  // concurrent refreshers never double-count) and per-worker utilization
  // gauges are recomputed as busy/wall, scaled by 1000.
  void RefreshSchedulerMetrics() {
    if (steals_counter != nullptr) {
      std::uint64_t cur = pool->steals();
      std::uint64_t prev = steals_published.load(std::memory_order_relaxed);
      while (prev < cur) {
        if (steals_published.compare_exchange_weak(
                prev, cur, std::memory_order_relaxed)) {
          steals_counter->Inc(cur - prev);
          break;
        }
      }
    }
    if (!util_gauges.empty()) {
      const std::uint64_t up = pool->uptime_nanos();
      if (up == 0) return;
      for (std::size_t w = 0; w < util_gauges.size(); ++w) {
        util_gauges[w]->Set(static_cast<std::int64_t>(
            pool->busy_nanos(w) / (up / 1000 + 1)));
      }
    }
  }
};

// What a quantum left behind: more work queued (reschedule), a yield
// (pipelined shard drained-but-open below its multiprogramming level —
// reschedule, but nothing useful could run), or done (finished or failed).
enum class QuantumOutcome { kMore, kYield, kDone };

// Advances shard by at most `max_q` engine steps. The step sequence this
// produces is identical for every chopping of the run into quanta:
// spawning tops the multiprogramming level up at exactly the points a
// per-step loop would (quantum start and after every commit — between
// commits the refill condition cannot change).
//
// The pipelined path preserves that sequence against a stream that
// materializes over time by one rule: the shard steps only when its level
// is topped up or the end-of-stream token arrived. Below level with the
// queue open-but-empty, the batch path would have admitted more programs
// before stepping — so the shard yields its quantum instead of stepping
// early, and the admission order plus every refill point land exactly
// where the batch run put them.
QuantumOutcome RunShardQuantum(const ShardedOptions& options,
                               std::uint32_t shard, ShardRun& run,
                               SchedulerCtx& ctx, std::uint64_t max_q) {
  if (run.exec == nullptr) InitShardExec(options, shard, run);
  ShardExec& ex = *run.exec;
  core::Engine& engine = *ex.engine;
  obs::LiveHub* hub = options.hub;
  AdmissionQueue* queue = run.queue.get();
  const std::uint64_t total = run.programs.size();  // batch mode only
  const std::uint64_t t0 = NowNanos();
  std::uint64_t q_steps = 0;
  bool completed = true;
  bool finished = false;
  bool yielded = false;
  auto fail = [&](Status status) {
    run.status = std::move(status);
    if (queue != nullptr) queue->Abandon();
    return QuantumOutcome::kDone;
  };
  while (q_steps < max_q) {
    // Terminal check: batch knows the shard's total up front; pipelined
    // knows it once the end-of-stream token has been observed.
    if (queue == nullptr ? engine.metrics().commits >= total
                         : (ex.eos && engine.metrics().commits >= ex.spawned)) {
      finished = true;
      break;
    }
    if (ex.steps >= options.max_steps_per_shard) {
      completed = false;
      finished = true;
      break;
    }
    if (queue == nullptr) {
      while (ex.spawned < total &&
             ex.spawned - engine.metrics().commits < run.concurrency) {
        auto id = engine.Spawn(std::move(run.programs[ex.spawned]));
        if (!id.ok()) return fail(id.status());
        ++ex.spawned;
      }
    } else {
      while (!ex.eos &&
             ex.spawned - engine.metrics().commits < run.concurrency) {
        txn::Program program;
        std::uint64_t queue_wait_ns = 0;
        AdmissionQueue::Pop r = queue->TryPop(&program, &queue_wait_ns);
        if (r == AdmissionQueue::Pop::kEmpty && q_steps == 0) {
          // Nothing ran this quantum yet: give the producer a moment
          // before yielding, so a starved shard doesn't cycle through the
          // scheduler at full speed doing nothing.
          r = queue->WaitPop(&program, std::chrono::microseconds(200),
                             &queue_wait_ns);
        }
        if (r == AdmissionQueue::Pop::kClosed) {
          ex.eos = true;
          break;
        }
        if (r == AdmissionQueue::Pop::kEmpty) {
          yielded = true;
          break;
        }
        // materialized was already decremented inside the pop — under the
        // queue mutex, so the producer can't refill the slot first and
        // push the high-water mark past num_shards * capacity + 1.
        auto id = engine.Spawn(std::move(program));
        if (!id.ok()) return fail(id.status());
        // Queue-wait stamp: measured by the queue under its own mutex,
        // carried to the book here on the shard thread (wall clock only —
        // never enters the deterministic report).
        if (options.txnlife) {
          ex.txnlife.RecordQueueWait(id.value(), queue_wait_ns);
        }
        ++ex.spawned;
      }
      if (yielded) break;
      if (ex.eos && engine.metrics().commits >= ex.spawned) {
        // The token arrived mid-refill with nothing left to run; the
        // batch loop exits at its terminal check without stepping here.
        finished = true;
        break;
      }
    }
    const std::uint64_t budget =
        std::min(max_q - q_steps, options.max_steps_per_shard - ex.steps);
    auto quantum = engine.StepQuantum(budget, /*stop_after_commit=*/true);
    if (!quantum.ok()) return fail(quantum.status());
    q_steps += quantum.value().steps;
    ex.steps += quantum.value().steps;
    // ran_dry: a step found no ready transaction. steps == 0 without a
    // commit: every live transaction terminated yet more remain. Both mean
    // the shard can make no further progress. (A yield never reaches this
    // point — the pipelined refill breaks out before stepping.)
    if (quantum.value().ran_dry ||
        (quantum.value().steps == 0 && !quantum.value().committed)) {
      return fail(Status::Internal("shard " + std::to_string(shard) +
                                   " stalled:\n" + engine.DumpState()));
    }
    if (hub != nullptr && ex.steps >= ex.next_snap_at) {
      obs::WaitsForSnapshot snap = engine.SnapshotWaitsFor();
      snap.shard = shard;
      hub->PublishSnapshot(std::move(snap));
      // Publish the engine aggregates (including any new rollback-cost
      // samples) at the same cadence, so /metrics histogram quantiles are
      // live during the run instead of end-of-run only. The exporter
      // advances by deltas; the final FinishShard export stays exact.
      if (options.instrument) {
        ex.exporter.Export(engine, ex.registry, ex.labels);
      }
      if (options.txnlife) hub->PublishTxnLife(ex.txnlife.Digest(shard));
      if (options.journal) hub->PublishJournal(ex.journal.Digest(shard));
      const std::uint64_t period = RoundUpPowerOfTwo(
          options.hub_snapshot_period == 0 ? 512
                                           : options.hub_snapshot_period);
      ex.next_snap_at = (ex.steps / period + 1) * period;
    }
  }
  // Quantum-granularity timing: one clock pair per quantum (cheaper than
  // the old 1-in-64 per-step sampling) whose per-step mean feeds the
  // pardb_shard_step_ns histogram, the hub's skew EWMAs, and the adaptive
  // quantum sizing.
  if (q_steps > 0) {
    const std::uint64_t per_step = (NowNanos() - t0) / q_steps;
    ctx.UpdateEwma(shard, per_step);
    if (ex.step_ns != nullptr) ex.step_ns->Record(per_step);
    if (hub != nullptr) hub->RecordShardStep(shard, per_step);
  }
  // Yield quanta stay out of the histogram: a starved shard would flood
  // the distribution with zeros that say nothing about quantum sizing.
  if (ctx.quantum_hist != nullptr && !yielded) ctx.quantum_hist->Record(q_steps);
  if (finished) {
    FinishShard(options, shard, run, completed);
    // Normally the queue is already drained+closed; on a step-budget
    // overrun it is not, and the producer must not block on it forever.
    if (queue != nullptr) queue->Abandon();
    return QuantumOutcome::kDone;
  }
  return yielded ? QuantumOutcome::kYield : QuantumOutcome::kMore;
}

// Deterministic makespan of greedy list scheduling: each job (a shard's
// whole step chain — chains are sequential and cannot be split across
// workers) goes to the earliest-free virtual worker, in submission order.
// This is what the pool's pull semantics converge to with one core per
// worker, so it models multi-core wall-clock while staying bit-identical
// across machines and runs.
std::uint64_t VirtualMakespanSteps(const std::vector<std::uint64_t>& costs,
                                   const std::vector<std::uint32_t>& order,
                                   std::size_t workers) {
  if (order.empty() || workers == 0) return 0;
  std::vector<std::uint64_t> busy(workers, 0);
  for (std::uint32_t job : order) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < workers; ++i) {
      if (busy[i] < busy[w]) w = i;
    }
    busy[w] += costs[job];
  }
  return *std::max_element(busy.begin(), busy.end());
}

// Phase 1: the deterministic generation + routing sweep, shared verbatim
// by the batch and pipelined paths — same seeded generators, same routing
// draws, same emission order, so the per-shard program streams are
// identical by construction and only *where* a program lands (the shard's
// materialized vector vs its admission queue) differs between modes.
// `cross_shard_txns` and `routed` are written only by the calling thread.
// Local transactions draw from one shard's entity pool; with probability
// cross_shard_fraction a transaction draws from the full universe. The
// authoritative routing decision is always the footprint hash. `emit`
// receives (shard, spans_shards, program); the xshard locks path diverts
// spanning programs to the global admission queue instead of a shard.
Status GenerateAndRoute(
    const ShardedOptions& options, std::uint32_t n,
    std::uint64_t* cross_shard_txns, std::vector<std::uint64_t>* routed,
    const std::function<void(std::uint32_t, bool, txn::Program)>& emit) {
  auto universes = ShardEntityUniverses(options.workload.num_entities, n);
  std::vector<std::uint32_t> populated;
  std::vector<std::unique_ptr<sim::WorkloadGenerator>> local(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (universes[s].empty()) continue;
    sim::WorkloadOptions w = options.workload;
    w.entity_universe = universes[s];
    local[s] = std::make_unique<sim::WorkloadGenerator>(
        w, DeriveShardSeed(options.seed, 0x10000u + s));
    populated.push_back(s);
  }
  sim::WorkloadGenerator global(options.workload,
                                DeriveShardSeed(options.seed, 0x20000u));
  Rng route_rng(DeriveShardSeed(options.seed, 0x30000u));
  // Hot-shard routing: home a local transaction where a global
  // Zipf-distributed entity draw lives, so load follows the hot keys'
  // placement instead of spreading uniformly.
  ZipfianGenerator home_zipf(options.workload.num_entities,
                             options.workload.zipf_theta);
  for (std::uint64_t t = 0; t < options.total_txns; ++t) {
    const bool want_cross = populated.empty() ||
                            route_rng.Bernoulli(options.cross_shard_fraction);
    sim::WorkloadGenerator* gen = &global;
    if (!want_cross) {
      std::uint32_t home = 0;
      if (options.hot_shard_routing) {
        home = dist::SiteOfEntity(EntityId(home_zipf.Next(route_rng)), n);
        if (local[home] == nullptr) {
          home = populated[route_rng.Uniform(populated.size())];
        }
      } else {
        home = populated[route_rng.Uniform(populated.size())];
      }
      gen = local[home].get();
    }
    auto program = gen->Next();
    if (!program.ok()) return program.status();
    const Route route =
        RouteProgram(program.value(), n, options.coordinator_shard, t);
    if (route.cross_shard) ++*cross_shard_txns;
    ++(*routed)[route.shard];
    emit(route.shard, route.cross_shard, std::move(program).value());
  }
  return Status::OK();
}

// Submits the shard's next quantum. The submitted task is the shard's
// ready token: a successor is only scheduled after the current quantum
// returns, so a shard can never run on two workers at once, while the
// task itself may be stolen onto any worker.
void ScheduleShard(SchedulerCtx* ctx, std::uint32_t shard,
                   bool yielded = false) {
  auto task = [ctx, shard] {
    const QuantumOutcome out = RunShardQuantum(*ctx->options, shard,
                                               (*ctx->runs)[shard], *ctx,
                                               ctx->QuantumFor(shard));
    const std::uint64_t q =
        ctx->quanta.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((q & 31) == 0) ctx->RefreshSchedulerMetrics();
    if (out != QuantumOutcome::kDone) {
      ScheduleShard(ctx, shard, out == QuantumOutcome::kYield);
    }
  };
  // A yielded quantum made no progress and is waiting on the producer; it
  // must go to the global FIFO, not the worker's own LIFO deque, or the
  // worker would pop it right back and starve the sibling chains — one of
  // which may be the very shard the producer is blocked pushing to.
  if (yielded) {
    ctx->pool->SubmitGlobal(std::move(task));
  } else {
    ctx->pool->Submit(std::move(task));
  }
}

// Merged-history conflict-serializability (the global invariant): every
// shard's committed log, renamed into one key space. With a coordinator
// the slices of each global transaction fuse under its global sequence
// number; without one (the replica path) every transaction keeps a
// shard-qualified key and the check fails on replica divergence.
bool CheckGlobalSerializability(const std::vector<ShardRun>& runs,
                                std::uint32_t n,
                                const xshard::Coordinator* coord) {
  analysis::GlobalHistory merged;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (runs[s].exec == nullptr) continue;
    for (const auto& c : runs[s].exec->recorder.CommittedLog()) {
      std::uint64_t key = analysis::GlobalHistory::LocalKey(s, c.txn);
      if (coord != nullptr) {
        if (auto g = coord->GlobalOf(s, c.txn); g.has_value()) {
          key = analysis::GlobalHistory::GlobalKey(*g);
        }
      }
      merged.Add(key, c.events);
    }
  }
  return merged.IsConflictSerializable();
}

// Publishes the union-of-forests view for /debug/waits-for?scope=global:
// global transactions appear under their global sequence number, purely
// local transactions under a shard-tagged id (bit 63 set, shard in bits
// 48..62 — the xshard::LocalNode encoding).
void PublishGlobalWaitsFor(obs::LiveHub* hub, const xshard::Coordinator& coord,
                           const std::vector<core::Engine*>& engines,
                           std::uint64_t epoch) {
  std::vector<const graph::Digraph*> graphs;
  graphs.reserve(engines.size());
  for (const core::Engine* e : engines) graphs.push_back(&e->waits_for());
  const xshard::MergedGraph merged = xshard::MergeWaitsFor(graphs, coord);
  obs::WaitsForSnapshot snap;
  snap.shard = 0;  // scope=global; the shard field is not meaningful here
  snap.step = epoch;
  snap.commits = coord.stats().global_commits;
  std::map<graph::VertexId, bool> waits;  // vertex -> has an incoming wait
  for (const xshard::MergedEdge& e : merged.edges) {
    snap.arcs.push_back(obs::WaitsForArc{TxnId(e.to), TxnId(e.from), e.entity});
    waits.try_emplace(e.from, false);
    waits[e.to] = true;
  }
  for (const auto& [vertex, waiting] : waits) {
    obs::TxnSnapshot txn;
    txn.txn = TxnId(vertex);
    txn.entry = xshard::IsGlobalNode(vertex) ? vertex : 0;
    txn.status = waiting ? "waiting" : "ready";
    snap.txns.push_back(std::move(txn));
  }
  snap.acyclic = merged.graph.IsAcyclic();
  snap.forest = merged.graph.IsForest();
  hub->PublishGlobalSnapshot(std::move(snap));
}

// The kLocks execution path: epochs of a single-threaded coordinate phase
// (2PC polling, admission, union merge + distributed partial rollback)
// followed by one parallel quantum per shard. Epoch content is a pure
// function of the options and each shard's deterministic state, so the
// report is bit-identical across runs and worker counts.
Result<ShardedReport> RunShardedLocks(const ShardedOptions& options) {
  const std::uint32_t n = options.num_shards;
  std::vector<ShardRun> runs(n);
  ShardedReport report;
  report.num_shards = n;
  report.xshard_locks = true;
  // Phase 1 always runs in batch mode here: the coordinate phase admits
  // from materialized queues, which is what makes every epoch's admission
  // deterministic. (Streaming admission would tie epoch content to
  // producer timing.)
  report.admission.pipelined = false;
  report.admission.queue_capacity = 0;

  const std::uint32_t base = options.concurrency / n;
  const std::uint32_t rem = options.concurrency % n;
  for (std::uint32_t s = 0; s < n; ++s) {
    runs[s].concurrency = std::max<std::uint32_t>(1, base + (s < rem ? 1 : 0));
  }

  obs::MetricsRegistry sched_local;
  obs::MetricsRegistry* sched_registry = nullptr;
  if (options.hub != nullptr && options.instrument) {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].registry = options.hub->AddOwnedRegistry(
          std::make_unique<obs::MetricsRegistry>());
    }
    sched_registry = options.hub->AddOwnedRegistry(
        std::make_unique<obs::MetricsRegistry>());
  } else if (options.instrument) {
    sched_registry = &sched_local;
  }
  if (options.hub != nullptr) {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].hub_sink = options.hub->MakeDeadlockSink(s);
    }
    options.hub->SetPhase(obs::RunPhase::kGenerating);
  }

  // Phase 1: generation + routing, spanning programs diverted to the
  // global admission queue (in generation order — their ω order).
  std::vector<std::uint64_t> routed(n, 0);
  std::uint64_t cross_txns = 0;
  std::vector<txn::Program> globals;
  const std::uint64_t g0 = NowNanos();
  Status gen = GenerateAndRoute(
      options, n, &cross_txns, &routed,
      [&runs, &globals](std::uint32_t shard, bool cross,
                        txn::Program program) {
        if (cross) {
          globals.push_back(std::move(program));
        } else {
          runs[shard].programs.push_back(std::move(program));
        }
      });
  if (!gen.ok()) return gen;
  report.admission.generate_seconds = Seconds(NowNanos() - g0);
  report.admission.peak_materialized_programs = options.total_txns;
  report.cross_shard_txns = cross_txns;
  if (options.hub != nullptr) options.hub->SetPhase(obs::RunPhase::kRunning);

  // Shard engines, built up front on this thread (their seeds and state
  // never depend on construction order, but serial init keeps the hub
  // registration story identical to the replica path).
  for (std::uint32_t s = 0; s < n; ++s) InitShardExec(options, s, runs[s]);
  std::vector<core::Engine*> engines;
  engines.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    engines.push_back(runs[s].exec->engine.get());
  }

  // Coordinator decision journal: global admits, lock-point releases,
  // retires, global cycles and distributed-rollback victims, plus one
  // kTwoPC checksum stamp per merge round folding every shard's state
  // digest. Published to the hub as pseudo-shard n.
  obs::DecisionJournal coord_journal(obs::DecisionJournal::Options{
      options.journal_out.empty() ? std::size_t{65536} : std::size_t{0}});
  if (options.journal && sched_registry != nullptr) {
    coord_journal.AttachMetrics(sched_registry,
                                {{obs::kShardLabel, "coord"}});
  }

  xshard::Coordinator::Options copt;
  copt.num_shards = n;
  copt.max_active_globals =
      std::max<std::uint32_t>(1, options.xshard_max_active_globals);
  if (sched_registry != nullptr) {
    copt.prepare_ns = sched_registry->GetHistogram(obs::kXShardPrepareNs);
    copt.resolve_ns = sched_registry->GetHistogram(obs::kXShardResolveNs);
  }
  if (options.journal) copt.journal = &coord_journal;
  xshard::Coordinator coord(engines, copt);

  const std::uint64_t epoch_steps =
      std::max<std::uint64_t>(1, options.xshard_epoch_steps);
  const std::uint64_t merge_period =
      std::max<std::uint64_t>(1, options.xshard_merge_period);
  std::vector<std::uint64_t> next_local(n, 0);
  std::vector<std::uint64_t> spawned_local(n, 0);
  std::size_t next_global = 0;
  std::uint64_t epoch = 0;
  int zero_epochs = 0;
  bool completed = true;
  Status run_status = Status::OK();

  const std::size_t workers =
      options.num_threads == 0 ? n : options.num_threads;
  const std::uint64_t e0 = NowNanos();
  {
    StealingPool pool(workers);
    std::vector<std::uint64_t> epoch_shard_steps(n, 0);
    for (;; ++epoch) {
      // ---- Coordinate (single-threaded; every engine is quiescent) ----
      auto polled = coord.Poll();
      if (!polled.ok()) {
        run_status = polled.status();
        break;
      }
      std::uint64_t progress = polled.value();
      // Local admission: top each shard's level up from its queue. Slice
      // commits are subtracted out so subs never consume local slots.
      for (std::uint32_t s = 0; s < n && run_status.ok(); ++s) {
        const std::uint64_t local_commits =
            engines[s]->metrics().commits - coord.sub_commits_on(s);
        std::uint64_t live_locals = spawned_local[s] - local_commits;
        while (next_local[s] < runs[s].programs.size() &&
               live_locals < runs[s].concurrency) {
          auto id =
              engines[s]->Spawn(std::move(runs[s].programs[next_local[s]]));
          if (!id.ok()) {
            run_status = id.status();
            break;
          }
          ++next_local[s];
          ++spawned_local[s];
          ++live_locals;
          ++progress;
        }
      }
      if (!run_status.ok()) break;
      // Global admission, in ω order.
      while (next_global < globals.size() && coord.CanAdmit()) {
        auto seq = coord.Admit(std::move(globals[next_global]));
        if (!seq.ok()) {
          run_status = seq.status();
          break;
        }
        ++next_global;
        ++progress;
      }
      if (!run_status.ok()) break;
      // Union merge + distributed partial rollback: on the configured
      // cadence, and forced after a zero-progress epoch — the only benign
      // reason nothing moved is a global cycle awaiting the next merge.
      if (epoch % merge_period == 0 || zero_epochs > 0) {
        auto merged = coord.MergeAndResolve();
        if (!merged.ok()) {
          run_status = merged;
          break;
        }
        // 2PC-epoch checksum: every engine is quiescent in the coordinate
        // phase, so folding the shard state digests here is deterministic
        // (a pure function of the options and the epoch ordinal).
        if (options.journal) {
          std::uint64_t fold = obs::kFnvOffsetBasis;
          for (std::uint32_t s = 0; s < n; ++s) {
            fold = obs::FnvMix64(fold, engines[s]->StateDigest());
          }
          coord_journal.StampEpoch(epoch, fold, obs::EpochKind::kTwoPC);
        }
        if (options.hub != nullptr) {
          PublishGlobalWaitsFor(options.hub, coord, engines, epoch);
          for (std::uint32_t s = 0; s < n; ++s) {
            obs::WaitsForSnapshot snap = engines[s]->SnapshotWaitsFor();
            snap.shard = s;
            options.hub->PublishSnapshot(std::move(snap));
            // Coordinate phase: every engine (and its book) is quiescent,
            // so the single-threaded digest is safe here.
            if (options.txnlife) {
              options.hub->PublishTxnLife(runs[s].exec->txnlife.Digest(s));
            }
            if (options.journal) {
              options.hub->PublishJournal(runs[s].exec->journal.Digest(s));
            }
          }
          if (options.journal) {
            options.hub->PublishJournal(coord_journal.Digest(n));
          }
        }
      }
      // Termination: everything admitted, every global retired, every
      // engine drained.
      bool done = next_global == globals.size() && coord.AllDone();
      for (std::uint32_t s = 0; done && s < n; ++s) {
        done = next_local[s] == runs[s].programs.size() &&
               engines[s]->live_txn_count() == 0;
      }
      if (done) break;
      bool budget_left = false;
      for (std::uint32_t s = 0; s < n; ++s) {
        budget_left =
            budget_left || runs[s].exec->steps < options.max_steps_per_shard;
      }
      if (!budget_left) {
        completed = false;
        break;
      }
      // ---- Step (parallel): one bounded quantum per shard ----
      for (std::uint32_t s = 0; s < n; ++s) {
        epoch_shard_steps[s] = 0;
        ShardExec& ex = *runs[s].exec;
        if (ex.steps >= options.max_steps_per_shard ||
            engines[s]->live_txn_count() == 0) {
          continue;
        }
        const std::uint64_t budget = std::min(
            epoch_steps, options.max_steps_per_shard - ex.steps);
        obs::LiveHub* hub = options.hub;
        pool.Submit([s, budget, hub, &runs, &engines, &epoch_shard_steps] {
          // ran_dry is routine here (a shard whose transactions all wait
          // on another shard has nothing to do this epoch); real stalls
          // are caught by the zero-progress counter below.
          const std::uint64_t t0 = NowNanos();
          auto q = engines[s]->StepQuantum(budget, /*stop_after_commit=*/false);
          if (!q.ok()) {
            runs[s].status = q.status();
            return;
          }
          epoch_shard_steps[s] = q.value().steps;
          runs[s].exec->steps += q.value().steps;
          // Feed the hub's skew EWMAs (wall clock: gauges only, never the
          // deterministic report).
          if (hub != nullptr && q.value().steps > 0) {
            hub->RecordShardStep(s, (NowNanos() - t0) / q.value().steps);
          }
        });
      }
      pool.Wait();
      for (std::uint32_t s = 0; s < n; ++s) {
        if (!runs[s].status.ok()) run_status = runs[s].status;
        progress += epoch_shard_steps[s];
      }
      if (!run_status.ok()) break;
      if (progress == 0) {
        // One grace epoch: the first zero-progress epoch forces a merge
        // above; a second in a row means nothing can ever move again.
        if (++zero_epochs >= 2) {
          std::ostringstream os;
          os << "xshard run stalled at epoch " << epoch << " ("
             << coord.active() << " globals in flight)";
          for (std::uint32_t s = 0; s < n; ++s) {
            os << "\n--- shard " << s << " ---\n" << engines[s]->DumpState();
          }
          run_status = Status::Internal(os.str());
          break;
        }
      } else {
        zero_epochs = 0;
      }
    }
    if (run_status.ok()) {
      // Observe the final slice commits (the loop may exit right after the
      // step phase that committed them).
      auto polled = coord.Poll();
      if (!polled.ok()) run_status = polled.status();
    }
    report.scheduler.num_workers = pool.num_threads();
    report.scheduler.steals = pool.steals();
    report.scheduler.quanta = epoch * n;
    const std::uint64_t up = pool.uptime_nanos();
    if (up > 0) {
      double sum = 0.0, lo = 1.0;
      for (std::size_t w = 0; w < pool.num_threads(); ++w) {
        const double u =
            static_cast<double>(pool.busy_nanos(w)) / static_cast<double>(up);
        sum += u;
        lo = std::min(lo, u);
      }
      report.scheduler.mean_worker_utilization =
          sum / static_cast<double>(pool.num_threads());
      report.scheduler.min_worker_utilization = lo;
    }
  }
  report.admission.execute_seconds = Seconds(NowNanos() - e0);
  if (!run_status.ok()) return run_status;
  if (options.hub != nullptr) {
    options.hub->SetPhase(obs::RunPhase::kAggregating);
  }

  report.xshard = coord.stats();
  report.xshard.epochs = epoch;
  if (options.journal) {
    report.coord_journal_chain = coord_journal.ChainValues();
    if (options.hub != nullptr) {
      options.hub->PublishJournal(coord_journal.Digest(n));
    }
    if (!options.journal_out.empty()) {
      PARDB_RETURN_IF_ERROR(coord_journal.WriteFile(
          options.journal_out + ".coord.jrnl", n, options.seed));
    }
  }
  if (sched_registry != nullptr) {
    const xshard::XShardStats& xs = report.xshard;
    auto Set = [&](const char* name, std::uint64_t v) {
      sched_registry->GetCounter(name)->Inc(v);
    };
    Set(obs::kXShardGlobalTxnsTotal, xs.global_txns);
    Set(obs::kXShardSubTxnsTotal, xs.sub_txns);
    Set(obs::kXShardGlobalCommitsTotal, xs.global_commits);
    Set(obs::kXShardMergesTotal, xs.merges);
    Set(obs::kXShardGlobalCyclesTotal, xs.global_cycles);
    Set(obs::kXShardDistributedRollbacksTotal, xs.distributed_rollbacks);
    Set(obs::kXShardOmegaExclusionsTotal, xs.omega_exclusions);
    Set(obs::kXShardPreparesTotal, xs.prepares);
    Set(obs::kXShardResolvesTotal, xs.resolves);
    Set(obs::kXShardMessagesTotal, xs.messages);
    sched_registry->GetGauge(obs::kXShardEpochs)
        ->Set(static_cast<std::int64_t>(xs.epochs));
    auto PhaseGauge = [&sched_registry](const char* phase) {
      return sched_registry->GetGauge(obs::kPhaseSeconds,
                                      {{obs::kPhaseLabel, phase}});
    };
    PhaseGauge("generate")->Set(static_cast<std::int64_t>(
        report.admission.generate_seconds * 1000.0));
    PhaseGauge("execute")->Set(static_cast<std::int64_t>(
        report.admission.execute_seconds * 1000.0));
  }

  std::vector<std::uint32_t> merged_costs;
  for (std::uint32_t s = 0; s < n; ++s) {
    FinishShard(options, s, runs[s], completed);
    if (!runs[s].status.ok()) return runs[s].status;
    runs[s].result.assigned = routed[s];
    report.shards.push_back(runs[s].result);
    merged_costs.insert(merged_costs.end(), runs[s].cost_samples.begin(),
                        runs[s].cost_samples.end());
    report.metrics.MergeFrom(runs[s].metrics);
    if (options.collect_traces) {
      report.shard_traces.push_back(std::move(runs[s].trace_events));
    }
    for (obs::DeadlockDump& d : runs[s].forensics) {
      report.forensics.push_back(std::move(d));
    }
  }
  if (options.collect_traces) {
    // Slice index for the Chrome trace's flow arrows: one entry per slice
    // the coordinator ever spawned, under its global sequence number.
    for (const auto& [key, seq] : coord.sub_index()) {
      report.flow_slices.push_back(
          core::GlobalSlice{seq, key.first, key.second});
    }
  }
  if (sched_registry != nullptr) {
    report.metrics.MergeFrom(sched_registry->Snapshot());
  }
  if (options.instrument) {
    report.merged_metrics = report.metrics.WithoutLabel("shard");
  }
  report.aggregate = SumMetrics(report.shards);
  SumLedgers(report);
  report.rollback_costs =
      core::ComputeCostDistribution(std::move(merged_costs));
  // Whole transactions: a global's slices collapse into one commit.
  report.committed = report.aggregate.commits - report.xshard.sub_commits +
                     report.xshard.global_commits;
  for (const ShardResult& s : report.shards) {
    report.completed = report.completed && s.completed;
    report.serializable = report.serializable && s.serializable;
  }
  std::uint64_t routed_total = 0;
  for (std::uint64_t r : routed) routed_total += r;
  report.cross_shard_fraction = SafeRatio(report.cross_shard_txns, routed_total);
  report.wasted_fraction =
      SafeRatio(report.aggregate.wasted_ops, report.aggregate.ops_executed);
  report.goodput = SafeRatio(report.committed, report.aggregate.ops_executed);
  if (options.check_serializability) {
    report.global_serializable = CheckGlobalSerializability(runs, n, &coord);
    report.serializable = report.serializable && report.global_serializable;
  }
  if (options.hub != nullptr) options.hub->SetPhase(obs::RunPhase::kDone);
  return report;
}

}  // namespace

std::uint64_t DeriveShardSeed(std::uint64_t seed, std::uint32_t shard) {
  return Mix(seed ^ Mix(0x5eed0000ULL + shard));
}

std::string ShardedReport::ToString() const {
  std::ostringstream os;
  os << "shards=" << num_shards << " committed=" << committed
     << (completed ? "" : " (INCOMPLETE)")
     << " cross_shard=" << cross_shard_txns
     << " (frac=" << cross_shard_fraction << ")"
     << " deadlocks=" << aggregate.deadlocks
     << " rollbacks=" << aggregate.rollbacks
     << " wasted=" << aggregate.wasted_ops
     << " wasted_frac=" << wasted_fraction << " goodput=" << goodput
     << " serializable=" << (serializable ? "yes" : "NO");
  return os.str();
}

Result<ShardedReport> RunSharded(const ShardedOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.coordinator_shard >= options.num_shards) {
    return Status::InvalidArgument("coordinator_shard out of range");
  }
  if (options.workload.num_entities == 0) {
    return Status::InvalidArgument("workload needs at least one entity");
  }
  if (options.xshard == XShardMode::kLocks && options.num_shards > 1) {
    // Distributed partial rollback rides on the detection machinery (the
    // union merge extends it across shards); the other handling modes have
    // no notion of an externally chosen victim.
    if (options.engine.handling != core::DeadlockHandling::kDetection) {
      return Status::InvalidArgument(
          "xshard=locks requires engine.handling == kDetection");
    }
    return RunShardedLocks(options);
  }
  const std::uint32_t n = options.num_shards;

  std::vector<ShardRun> runs(n);
  ShardedReport report;
  report.num_shards = n;
  const std::size_t queue_capacity =
      std::max<std::size_t>(1, options.admission_queue_capacity);
  report.admission.pipelined = options.pipeline;
  report.admission.queue_capacity = options.pipeline ? queue_capacity : 0;

  // Multiprogramming level: split over shards, at least 1 each. Needed
  // before phase 1 now — pipelined consumers start while it runs.
  const std::uint32_t base = options.concurrency / n;
  const std::uint32_t rem = options.concurrency % n;
  for (std::uint32_t s = 0; s < n; ++s) {
    runs[s].concurrency = std::max<std::uint32_t>(1, base + (s < rem ? 1 : 0));
  }

  // Live introspection: hand each shard a hub-owned registry and a ring
  // sink *before* the pool starts (hub registration is not safe mid-run),
  // so the serving thread scrapes live counters while shards execute.
  obs::MetricsRegistry sched_local;
  obs::MetricsRegistry* sched_registry = nullptr;
  if (options.hub != nullptr && options.instrument) {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].registry =
          options.hub->AddOwnedRegistry(std::make_unique<obs::MetricsRegistry>());
    }
    sched_registry =
        options.hub->AddOwnedRegistry(std::make_unique<obs::MetricsRegistry>());
  } else if (options.instrument) {
    sched_registry = &sched_local;
  }
  if (options.hub != nullptr) {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].hub_sink = options.hub->MakeDeadlockSink(s);
    }
  }

  // Phase 1: generation + routing. Batch mode runs the sweep serially up
  // front (the legacy design the pipeline is measured against); pipelined
  // mode defers it to a producer thread that overlaps with phase 2,
  // feeding per-shard bounded queues created here.
  std::vector<std::uint64_t> routed(n, 0);
  std::uint64_t cross_txns = 0;
  AdmissionShared admission_shared;
  Status producer_status = Status::OK();
  double generate_seconds = 0.0;
  std::thread producer;
  if (!options.pipeline) {
    if (options.hub != nullptr) {
      options.hub->SetPhase(obs::RunPhase::kGenerating);
    }
    const std::uint64_t g0 = NowNanos();
    Status gen = GenerateAndRoute(
        options, n, &cross_txns, &routed,
        [&runs](std::uint32_t shard, bool, txn::Program program) {
          runs[shard].programs.push_back(std::move(program));
        });
    if (!gen.ok()) return gen;
    generate_seconds = Seconds(NowNanos() - g0);
    // Everything exists at once before any engine runs.
    report.admission.peak_materialized_programs = options.total_txns;
  } else {
    for (std::uint32_t s = 0; s < n; ++s) {
      runs[s].queue = std::make_unique<AdmissionQueue>(queue_capacity);
      runs[s].queue->set_materialized_counter(&admission_shared.materialized);
      if (sched_registry != nullptr) {
        runs[s].queue->set_depth_gauge(sched_registry->GetGauge(
            obs::kAdmissionQueueDepth,
            {{obs::kShardLabel, std::to_string(s)}}));
      }
    }
  }
  if (options.hub != nullptr) options.hub->SetPhase(obs::RunPhase::kRunning);

  // Phase 2 (parallel): each shard advances as a chain of quantum tasks on
  // a work-stealing pool (one chain link in flight per shard — the ready
  // token). Pool Wait gives the aggregation phase a happens-before edge
  // over every quantum.
  const std::size_t workers =
      options.num_threads == 0 ? n : options.num_threads;
  const std::uint64_t e0 = NowNanos();
  {
    StealingPool pool(workers);
    SchedulerCtx ctx;
    ctx.options = &options;
    ctx.runs = &runs;
    ctx.pool = &pool;
    ctx.num_shards = n;
    ctx.ewma_ns =
        std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      ctx.ewma_ns[s].store(0, std::memory_order_relaxed);
    }
    if (sched_registry != nullptr) {
      ctx.quantum_hist = sched_registry->GetHistogram(obs::kQuantumSteps);
      ctx.steals_counter = sched_registry->GetCounter(obs::kStealsTotal);
      for (std::size_t w = 0; w < pool.num_threads(); ++w) {
        ctx.util_gauges.push_back(sched_registry->GetGauge(
            obs::kWorkerUtilization,
            {{obs::kWorkerLabel, std::to_string(w)}}));
      }
    }
    if (options.pipeline) {
      // The producer is phase 1, running concurrently with the pool. It
      // pushes every routed program in generation order (blocking on full
      // queues — backpressure) and then delivers the end-of-stream token
      // to every shard, on every exit path: a consumer waits for its token
      // even when generation failed, and a dead consumer's queue is
      // abandoned rather than blocking, so neither side can wedge the
      // other.
      producer = std::thread([&options, &runs, &routed, &cross_txns,
                              &admission_shared, &producer_status,
                              &generate_seconds, n] {
        const std::uint64_t g0 = NowNanos();
        Status gen = GenerateAndRoute(
            options, n, &cross_txns, &routed,
            [&runs, &admission_shared](std::uint32_t shard, bool,
                                       txn::Program program) {
              const std::int64_t now =
                  admission_shared.materialized.fetch_add(
                      1, std::memory_order_relaxed) +
                  1;
              if (now >
                  admission_shared.peak.load(std::memory_order_relaxed)) {
                admission_shared.peak.store(now, std::memory_order_relaxed);
              }
              runs[shard].queue->Push(std::move(program));
            });
        for (std::uint32_t s = 0; s < n; ++s) runs[s].queue->Close();
        producer_status = std::move(gen);
        generate_seconds = Seconds(NowNanos() - g0);
      });
    }
    // Submission order is the scheduler's list order. kRunToCompletion
    // keeps shard order (the legacy driver's semantics, and the skew
    // pathology: a heavy late shard starts only after a light wave).
    // Batch kTimeSlice submits longest-assigned-first — routing already
    // told us each shard's work, so this is LPT list scheduling, with
    // stealing absorbing whatever per-transaction variance LPT cannot see.
    // Pipelined mode cannot know assignments up front (programs is empty,
    // so the sort is a stable no-op and shards submit in shard order);
    // stealing plus time-slicing carries the load balancing alone. Order
    // never affects report contents, only wall-clock.
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t s = 0; s < n; ++s) order[s] = s;
    if (options.scheduler == ShardScheduler::kTimeSlice) {
      std::stable_sort(order.begin(), order.end(),
                       [&runs](std::uint32_t a, std::uint32_t b) {
                         return runs[a].programs.size() >
                                runs[b].programs.size();
                       });
    }
    for (std::uint32_t s : order) ScheduleShard(&ctx, s);
    pool.Wait();
    if (producer.joinable()) producer.join();
    ctx.RefreshSchedulerMetrics();

    std::vector<std::uint64_t> step_costs(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      step_costs[s] = runs[s].result.metrics.steps;
    }
    report.scheduler.virtual_makespan_steps =
        VirtualMakespanSteps(step_costs, order, workers);
    report.scheduler.num_workers = pool.num_threads();
    report.scheduler.steals = pool.steals();
    report.scheduler.quanta = ctx.quanta.load(std::memory_order_relaxed);
    const std::uint64_t up = pool.uptime_nanos();
    if (up > 0) {
      double sum = 0.0, lo = 1.0;
      for (std::size_t w = 0; w < pool.num_threads(); ++w) {
        const double u =
            static_cast<double>(pool.busy_nanos(w)) / static_cast<double>(up);
        sum += u;
        lo = std::min(lo, u);
      }
      report.scheduler.mean_worker_utilization =
          sum / static_cast<double>(pool.num_threads());
      report.scheduler.min_worker_utilization = lo;
    }
  }
  const double execute_seconds = Seconds(NowNanos() - e0);
  if (!producer_status.ok()) return producer_status;
  if (options.hub != nullptr) {
    options.hub->SetPhase(obs::RunPhase::kAggregating);
  }

  report.cross_shard_txns = cross_txns;
  report.admission.generate_seconds = generate_seconds;
  report.admission.execute_seconds = execute_seconds;
  if (options.pipeline) {
    report.admission.peak_materialized_programs =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, admission_shared.peak.load(std::memory_order_relaxed)));
    // Deterministic overlap lower bound: shard s's program j >= capacity
    // can only be pushed after program j - capacity was popped, i.e. after
    // execution on s began, so at least routed[s] - capacity of its
    // generation work overlapped with phase 2.
    std::uint64_t overlapped = 0;
    std::uint64_t blocked = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
      overlapped +=
          routed[s] > queue_capacity ? routed[s] - queue_capacity : 0;
      blocked += runs[s].queue->blocked_pushes();
    }
    report.admission.producer_blocked_pushes = blocked;
    report.admission.overlap_fraction =
        SafeRatio(overlapped, options.total_txns);
  }
  if (sched_registry != nullptr) {
    auto PhaseGauge = [&sched_registry](const char* phase) {
      return sched_registry->GetGauge(obs::kPhaseSeconds,
                                      {{obs::kPhaseLabel, phase}});
    };
    // Gauges are integral, so seconds are scaled by 1000 (milliseconds) —
    // the pardb_worker_utilization convention.
    PhaseGauge("generate")
        ->Set(static_cast<std::int64_t>(generate_seconds * 1000.0));
    PhaseGauge("execute")
        ->Set(static_cast<std::int64_t>(execute_seconds * 1000.0));
    sched_registry->GetGauge(obs::kOverlapFraction)
        ->Set(static_cast<std::int64_t>(
            report.admission.overlap_fraction * 1000.0));
    sched_registry->GetCounter(obs::kAdmissionBlockedTotal)
        ->Inc(report.admission.producer_blocked_pushes);
  }

  const std::uint64_t a0 = NowNanos();
  std::vector<std::uint32_t> merged_costs;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!runs[s].status.ok()) return runs[s].status;
    runs[s].result.assigned = routed[s];
    report.shards.push_back(runs[s].result);
    merged_costs.insert(merged_costs.end(), runs[s].cost_samples.begin(),
                        runs[s].cost_samples.end());
    report.metrics.MergeFrom(runs[s].metrics);
    if (options.collect_traces) {
      report.shard_traces.push_back(std::move(runs[s].trace_events));
    }
    for (obs::DeadlockDump& d : runs[s].forensics) {
      report.forensics.push_back(std::move(d));
    }
  }
  if (sched_registry != nullptr) {
    sched_registry
        ->GetGauge(obs::kPhaseSeconds, {{obs::kPhaseLabel, "aggregate"}})
        ->Set(static_cast<std::int64_t>(Seconds(NowNanos() - a0) * 1000.0));
    report.metrics.MergeFrom(sched_registry->Snapshot());
  }
  if (options.instrument) {
    report.merged_metrics = report.metrics.WithoutLabel("shard");
  }
  report.aggregate = SumMetrics(report.shards);
  SumLedgers(report);
  report.rollback_costs = core::ComputeCostDistribution(std::move(merged_costs));
  report.committed = report.aggregate.commits;
  for (const ShardResult& s : report.shards) {
    report.completed = report.completed && s.completed;
    report.serializable = report.serializable && s.serializable;
  }
  // Denominator: what routing actually processed, not the requested total
  // — the two differ when admission aborts early (abandoned queues).
  std::uint64_t routed_total = 0;
  for (std::uint64_t r : routed) routed_total += r;
  report.cross_shard_fraction = SafeRatio(report.cross_shard_txns, routed_total);
  report.wasted_fraction =
      SafeRatio(report.aggregate.wasted_ops, report.aggregate.ops_executed);
  report.goodput =
      SafeRatio(report.committed, report.aggregate.ops_executed);
  if (options.check_serializability) {
    report.global_serializable =
        CheckGlobalSerializability(runs, n, /*coord=*/nullptr);
  }
  if (options.hub != nullptr) options.hub->SetPhase(obs::RunPhase::kDone);
  return report;
}

}  // namespace pardb::par

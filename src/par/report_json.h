#ifndef PARDB_PAR_REPORT_JSON_H_
#define PARDB_PAR_REPORT_JSON_H_

#include <string>

#include "par/sharded_driver.h"

namespace pardb::par {

// Machine-readable form of a ShardedReport (hand-rolled writer; the repo
// takes no JSON dependency). Deterministic: fixed key order and fixed
// 6-decimal formatting for doubles, so two identical runs serialize to
// byte-identical strings — the determinism tests compare these directly.
std::string ShardedReportToJson(const ShardedReport& report, int indent = 0);

}  // namespace pardb::par

#endif  // PARDB_PAR_REPORT_JSON_H_

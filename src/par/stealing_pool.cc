#include "par/stealing_pool.h"

#include <algorithm>
#include <utility>

namespace pardb::par {

namespace {

// Identifies the worker a thread belongs to, so Submit from inside a task
// can target the worker's own deque. A thread belongs to at most one pool.
struct WorkerIdentity {
  const StealingPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StealingPool::StealingPool(std::size_t num_threads)
    : start_(std::chrono::steady_clock::now()) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StealingPool::~StealingPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int StealingPool::current_worker() const {
  return tls_worker.pool == this ? static_cast<int>(tls_worker.index) : -1;
}

std::uint64_t StealingPool::uptime_nanos() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void StealingPool::Submit(std::function<void()> task) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);
  const int self = current_worker();
  if (self >= 0) {
    Slot& slot = *slots_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    inject_.push_back(std::move(task));
  }
  // Notify under the sleep mutex: a worker that observed empty queues
  // cannot slip between our queued_ bump and this notification.
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_all();
}

void StealingPool::SubmitGlobal(std::function<void()> task) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    inject_.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_all();
}

void StealingPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

bool StealingPool::TryPop(std::size_t self, std::function<void()>& task) {
  {  // Own deque, newest first: the self-resubmitted continuation.
    Slot& slot = *slots_[self];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (!slot.deque.empty()) {
      task = std::move(slot.deque.back());
      slot.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  {  // External submissions, oldest first.
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!inject_.empty()) {
      task = std::move(inject_.front());
      inject_.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal, oldest first, scanning victims from our right neighbour.
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    Slot& victim = *slots_[(self + i) % slots_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.deque.empty()) {
      task = std::move(victim.deque.front());
      victim.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void StealingPool::WorkerLoop(std::size_t self) {
  tls_worker = WorkerIdentity{this, self};
  Slot& slot = *slots_[self];
  for (;;) {
    std::function<void()> task;
    if (!TryPop(self, task)) {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || queued_.load(std::memory_order_relaxed) > 0;
      });
      if (stopping_ && queued_.load(std::memory_order_relaxed) == 0) return;
      continue;
    }
    const std::uint64_t t0 = NowNanos();
    task();
    task = nullptr;  // destroy captures before accounting the task done
    slot.busy_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
    slot.executed.fetch_add(1, std::memory_order_relaxed);
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      all_done_.notify_all();
    }
  }
}

}  // namespace pardb::par

#ifndef PARDB_COMMON_RESULT_H_
#define PARDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pardb {

// Holds either a value of type T or a non-OK Status. Analogous to
// absl::StatusOr<T>.
//
//   Result<Value> r = store.Read(entity);
//   if (!r.ok()) return r.status();
//   Use(r.value());
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is engaged
};

// Propagates the error of a Result expression, otherwise binds the value.
#define PARDB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto PARDB_CONCAT_(_pardb_res, __LINE__) = (expr); \
  if (!PARDB_CONCAT_(_pardb_res, __LINE__).ok())     \
    return PARDB_CONCAT_(_pardb_res, __LINE__).status(); \
  lhs = std::move(PARDB_CONCAT_(_pardb_res, __LINE__)).value()

#define PARDB_CONCAT_INNER_(a, b) a##b
#define PARDB_CONCAT_(a, b) PARDB_CONCAT_INNER_(a, b)

}  // namespace pardb

#endif  // PARDB_COMMON_RESULT_H_

#ifndef PARDB_COMMON_LOGGING_H_
#define PARDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pardb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Process-wide log threshold; messages below it are discarded. Defaults to
// kWarning so that library users see nothing unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" / "info" / "warning" / "error" / "off" (case-sensitive).
// Returns false and leaves *level untouched on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* level);

namespace internal_logging {

// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define PARDB_LOG(level)                                              \
  (::pardb::LogLevel::k##level < ::pardb::GetLogLevel())              \
      ? void(0)                                                       \
      : ::pardb::internal_logging::Voidify() &                        \
            ::pardb::internal_logging::LogMessage(                    \
                ::pardb::LogLevel::k##level, __FILE__, __LINE__)

namespace internal_logging {
// Lets the ternary above have type void on both arms.
struct Voidify {
  void operator&(LogMessage&) {}
};
}  // namespace internal_logging

}  // namespace pardb

#endif  // PARDB_COMMON_LOGGING_H_

#ifndef PARDB_COMMON_RANDOM_H_
#define PARDB_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace pardb {

// Deterministic 64-bit PRNG (xoshiro256**). Workloads and simulations must
// be reproducible bit-for-bit from a seed, so std::mt19937 (whose
// distributions are implementation-defined) is not used.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform in [0, 2^64).
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  // the distribution is exactly uniform.
  std::uint64_t Uniform(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

// Zipfian distribution over {0, ..., n-1} with skew theta (theta = 0 is
// uniform; typical hotspot workloads use 0.7-0.99). Uses the Gray et al.
// rejection-free method with precomputed constants, matching YCSB's
// generator semantics.
class ZipfianGenerator {
 public:
  // n >= 1, theta in [0, 1). theta == 0 degenerates to uniform.
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t Next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace pardb

#endif  // PARDB_COMMON_RANDOM_H_

#ifndef PARDB_COMMON_RANDOM_H_
#define PARDB_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace pardb {

// Precomputed division-free reduction modulo a fixed bound. `Mod` returns
// exactly `x % n` for every x — same result as the hardware divide, via a
// 64x64->128 multiply by floor(2^64 / n) and one conditional correction —
// so callers that memoize one FastMod per bound (schedulers draw from the
// same small ready-counts over and over) drop the per-step divide without
// changing a single result.
struct FastMod {
  std::uint64_t n = 0;
  std::uint64_t magic = 0;      // floor(2^64 / n), n >= 2
  std::uint64_t threshold = 0;  // 2^64 mod n (the Rng::Uniform reject bound)

  void Init(std::uint64_t bound) {
    assert(bound > 0);
    n = bound;
    if (bound == 1) {
      magic = 0;
      threshold = 0;
      return;
    }
    // 2^64 = q*n + r with 0 <= r < n: (2^64 - n)/n = q - 1 in u64, and
    // 0 - q*n = 2^64 - q*n = r (mod 2^64), which is also -n % n.
    magic = (0 - bound) / bound + 1;
    threshold = 0 - magic * bound;
  }

  std::uint64_t Mod(std::uint64_t x) const {
    if (n <= 1) return 0;
    // quot is floor(x * magic / 2^64) which is floor(x/n) or one less;
    // a single conditional subtract lands on the exact remainder.
    const std::uint64_t quot = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * magic) >> 64);
    std::uint64_t rem = x - quot * n;
    if (rem >= n) rem -= n;
    return rem;
  }
};

// Deterministic 64-bit PRNG (xoshiro256**). Workloads and simulations must
// be reproducible bit-for-bit from a seed, so std::mt19937 (whose
// distributions are implementation-defined) is not used.
//
// The generator and the bounded draws are header-inline: schedulers call
// Next()/Uniform() once per step, and an out-of-line call plus two hardware
// divides (the old Uniform) measurably dominates a ~100ns step budget.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
    // All-zero state would be a fixed point; SplitMix64 cannot produce four
    // zeros from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  // Uniform in [0, 2^64).
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  // the distribution is exactly uniform.
  std::uint64_t Uniform(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Exactly Uniform(fm.n) — same rejection decisions (FastMod::threshold
  // equals -n % n) and the same remainder, so the draw sequence is
  // bit-identical — but with the divides replaced by fm's multiply.
  std::uint64_t UniformFast(const FastMod& fm) {
    for (;;) {
      std::uint64_t r = Next();
      if (r >= fm.threshold) return fm.Mod(r);
    }
  }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(Next());  // full range
    return lo + static_cast<std::int64_t>(Uniform(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    // 53 high bits -> [0,1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  // Fisher-Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  // SplitMix64, used to expand the seed into xoshiro state.
  static std::uint64_t SplitMix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

// Zipfian distribution over {0, ..., n-1} with skew theta (theta = 0 is
// uniform; typical hotspot workloads use 0.7-0.99). Uses the Gray et al.
// rejection-free method with precomputed constants, matching YCSB's
// generator semantics.
class ZipfianGenerator {
 public:
  // n >= 1, theta in [0, 1). theta == 0 degenerates to uniform.
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t Next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace pardb

#endif  // PARDB_COMMON_RANDOM_H_

#ifndef PARDB_COMMON_BITS_H_
#define PARDB_COMMON_BITS_H_

#include <cstdint>

namespace pardb {

// Smallest power of two >= x (0 maps to 1). Saturates at 2^63 for inputs
// above it, so the result is always a power of two and `result - 1` is
// always a valid all-ones mask. Callers that need "period & (period - 1)"
// masking (the hub snapshot cadence in the sim and sharded drivers) round
// through this instead of assuming the configured value is a power of two.
constexpr std::uint64_t RoundUpPowerOfTwo(std::uint64_t x) {
  if (x <= 1) return 1;
  if (x > (1ULL << 63)) return 1ULL << 63;
  std::uint64_t p = x - 1;
  p |= p >> 1;
  p |= p >> 2;
  p |= p >> 4;
  p |= p >> 8;
  p |= p >> 16;
  p |= p >> 32;
  return p + 1;
}

}  // namespace pardb

#endif  // PARDB_COMMON_BITS_H_

#ifndef PARDB_COMMON_STATUS_H_
#define PARDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pardb {

// Error categories used throughout the library. The public API never throws;
// every fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller violated a documented precondition
  kNotFound,          // entity / transaction / lock state does not exist
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// operation illegal in the current protocol phase
  kProtocolViolation, // two-phase locking rule broken by a program
  kDeadlock,          // operation would deadlock and no victim was available
  kAborted,           // transaction was removed (total rollback)
  kResourceExhausted, // configured limits exceeded
  kInternal,          // invariant violation inside the library (a bug)
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// Value-type status word. Cheap to copy in the OK case (no allocation).
//
//   Status s = engine.Submit(program);
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ProtocolViolation(std::string msg) {
    return Status(StatusCode::kProtocolViolation, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Propagates a non-OK status to the caller.
#define PARDB_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::pardb::Status _pardb_status = (expr);         \
    if (!_pardb_status.ok()) return _pardb_status;  \
  } while (false)

}  // namespace pardb

#endif  // PARDB_COMMON_STATUS_H_

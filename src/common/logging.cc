#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace pardb {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else if (name == "off") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace pardb

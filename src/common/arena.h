#ifndef PARDB_COMMON_ARENA_H_
#define PARDB_COMMON_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace pardb {

// Slab/bump allocator for the hot-path containers (DESIGN D15).
//
// Blocks are carved out of geometrically growing chunks and handed back
// through per-size-class free lists, so a steady-state workload recycles
// the same few blocks forever: after warm-up, lock-queue and holder-list
// spill storage performs zero calls into the global heap. Blocks are
// never returned to the system until the arena dies (chunks are owned),
// which is exactly the lifetime the per-engine lock table wants — one
// arena per LockManager, dropped wholesale with it.
//
// Not thread-safe by design: each engine (and its lock manager) is
// single-threaded, so the arena inherits that discipline.
class Arena {
 public:
  // `max_bytes` caps total chunk memory; TryAllocate returns nullptr once
  // a new chunk would exceed it (the OOM path under test). 0 = unlimited.
  explicit Arena(std::size_t initial_chunk_bytes = 4096,
                 std::size_t max_bytes = 0)
      : next_chunk_bytes_(initial_chunk_bytes < kMinChunk ? kMinChunk
                                                          : initial_chunk_bytes),
        max_bytes_(max_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Allocates `bytes` rounded up to its power-of-two size class, aligned
  // to at least `alignof(std::max_align_t)`. Returns nullptr when the
  // `max_bytes` cap would be exceeded. The returned block stays valid
  // until FreeBlock or arena destruction.
  void* TryAllocate(std::size_t bytes) {
    const unsigned cls = SizeClass(bytes);
    if (cls < free_lists_.size() && free_lists_[cls] != nullptr) {
      FreeNode* node = free_lists_[cls];
      free_lists_[cls] = node->next;
      ++reused_blocks_;
      return node;
    }
    return BumpAllocate(std::size_t{1} << cls);
  }

  // Returns a block obtained from TryAllocate(bytes) to its size-class
  // free list for reuse. `bytes` must be the original request size.
  void FreeBlock(void* ptr, std::size_t bytes) {
    if (ptr == nullptr) return;
    const unsigned cls = SizeClass(bytes);
    if (free_lists_.size() <= cls) free_lists_.resize(cls + 1, nullptr);
    FreeNode* node = static_cast<FreeNode*>(ptr);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  // Total bytes reserved from the system (chunk footprint).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  // Blocks served from a free list instead of fresh chunk space.
  std::uint64_t reused_blocks() const { return reused_blocks_; }

 private:
  static constexpr std::size_t kMinChunk = 256;
  // Smallest class holds a free-list pointer; alignment of every class is
  // a power of two >= 16, satisfying max_align_t on mainstream ABIs.
  static constexpr unsigned kMinClass = 4;  // 16 bytes

  struct FreeNode {
    FreeNode* next;
  };

  static unsigned SizeClass(std::size_t bytes) {
    unsigned cls = kMinClass;
    while ((std::size_t{1} << cls) < bytes) ++cls;
    return cls;
  }

  void* BumpAllocate(std::size_t bytes) {
    if (bump_remaining_ < bytes) {
      std::size_t chunk = next_chunk_bytes_;
      while (chunk < bytes) chunk *= 2;
      if (max_bytes_ != 0 && bytes_reserved_ + chunk > max_bytes_) {
        return nullptr;
      }
      chunks_.push_back(std::make_unique<std::byte[]>(chunk));
      bump_ = chunks_.back().get();
      bump_remaining_ = chunk;
      bytes_reserved_ += chunk;
      next_chunk_bytes_ = chunk * 2;
    }
    void* out = bump_;
    bump_ += bytes;
    bump_remaining_ -= bytes;
    return out;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* bump_ = nullptr;
  std::size_t bump_remaining_ = 0;
  std::size_t next_chunk_bytes_;
  std::size_t max_bytes_;
  std::size_t bytes_reserved_ = 0;
  std::uint64_t reused_blocks_ = 0;
  std::vector<FreeNode*> free_lists_;
};

// Vector with inline capacity N whose spill storage comes from an Arena
// when one is attached (heap otherwise). Restricted to trivially copyable
// element types — everything on the lock-table hot path (holder entries,
// waiters, lock records) qualifies — so growth is a memcpy and
// destruction never runs element destructors.
//
// An attached arena must outlive the vector. Copy construction/assignment
// are deleted (accidental copies of hot-path state are bugs); moves
// transfer ownership of the spill block.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially copyable hot-path types");

 public:
  SmallVec() = default;
  explicit SmallVec(Arena* arena) : arena_(arena) {}

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  SmallVec(SmallVec&& other) noexcept { MoveFrom(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      ReleaseSpill();
      MoveFrom(other);
    }
    return *this;
  }

  ~SmallVec() { ReleaseSpill(); }

  void set_arena(Arena* arena) {
    assert(data_ == inline_storage() && "attach the arena before spilling");
    arena_ = arena;
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool spilled() const { return data_ != inline_storage(); }

  void clear() { size_ = 0; }

  // Drops elements past `n` (no-op when already <= n). Keeps capacity.
  void truncate(std::size_t n) {
    if (n < size_) size_ = n;
  }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }

  void pop_back() { --size_; }

  // Inserts at `index`, shifting the tail right (queues are short; the
  // O(n) memmove beats a deque's node hops).
  void insert_at(std::size_t index, const T& v) {
    if (size_ == capacity_) Grow();
    std::memmove(data_ + index + 1, data_ + index,
                 (size_ - index) * sizeof(T));
    data_[index] = v;
    ++size_;
  }

  // Removes the element at `index`, shifting the tail left (stable order).
  void erase_at(std::size_t index) {
    std::memmove(data_ + index, data_ + index + 1,
                 (size_ - index - 1) * sizeof(T));
    --size_;
  }

  // Removes elements [first, last), shifting the tail left (stable order).
  void erase_range(std::size_t first, std::size_t last) {
    std::memmove(data_ + first, data_ + last, (size_ - last) * sizeof(T));
    size_ -= last - first;
  }

  void reserve(std::size_t cap) {
    while (capacity_ < cap) Grow();
  }

 private:
  T* inline_storage() { return reinterpret_cast<T*>(inline_); }
  const T* inline_storage() const { return reinterpret_cast<const T*>(inline_); }

  void Grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* fresh;
    if (arena_ != nullptr) {
      void* block = arena_->TryAllocate(new_cap * sizeof(T));
      if (block == nullptr) throw std::bad_alloc();
      fresh = static_cast<T*>(block);
    } else {
      fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    }
    std::memcpy(fresh, data_, size_ * sizeof(T));
    ReleaseSpill();
    data_ = fresh;
    capacity_ = new_cap;
  }

  void ReleaseSpill() {
    if (!spilled()) return;
    if (arena_ != nullptr) {
      arena_->FreeBlock(data_, capacity_ * sizeof(T));
    } else {
      ::operator delete(data_);
    }
    data_ = inline_storage();
    capacity_ = N;
  }

  void MoveFrom(SmallVec& other) {
    arena_ = other.arena_;
    size_ = other.size_;
    if (other.spilled()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_storage();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      data_ = inline_storage();
      capacity_ = N;
      std::memcpy(data_, other.data_, size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* data_ = inline_storage();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
  Arena* arena_ = nullptr;
};

}  // namespace pardb

#endif  // PARDB_COMMON_ARENA_H_

#include "common/flags.h"

#include <cstdlib>

namespace pardb {

Result<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // boolean "--name".
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[i + 1];
      ++i;
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return it->second;
}

Result<std::int64_t> Flags::GetInt(const std::string& name,
                                   std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got \"" +
                                   it->second + "\"");
  }
  return v;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got \"" + it->second +
                                   "\"");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!used_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace pardb

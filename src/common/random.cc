#include "common/random.h"

#include <cmath>

namespace pardb {

namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) return rng.Uniform(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace pardb

#include "common/random.h"

#include <cmath>

namespace pardb {

namespace {

// SplitMix64, used to expand the seed into xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) return rng.Uniform(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace pardb

#include "common/status.h"

namespace pardb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kProtocolViolation:
      return "ProtocolViolation";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace pardb

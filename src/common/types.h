#ifndef PARDB_COMMON_TYPES_H_
#define PARDB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>

namespace pardb {

// Strongly typed integer identifiers. Each Tag instantiation is a distinct
// type, so a TxnId cannot be passed where an EntityId is expected.
template <typename Tag>
class TypedId {
 public:
  using underlying_type = std::uint64_t;

  constexpr TypedId() : v_(kInvalidValue) {}
  constexpr explicit TypedId(underlying_type v) : v_(v) {}

  static constexpr TypedId Invalid() { return TypedId(); }

  constexpr bool valid() const { return v_ != kInvalidValue; }
  constexpr underlying_type value() const { return v_; }

  friend constexpr bool operator==(TypedId a, TypedId b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(TypedId a, TypedId b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(TypedId a, TypedId b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(TypedId a, TypedId b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(TypedId a, TypedId b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(TypedId a, TypedId b) { return a.v_ >= b.v_; }

 private:
  static constexpr underlying_type kInvalidValue =
      std::numeric_limits<underlying_type>::max();
  underlying_type v_;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, TypedId<Tag> id) {
  if (!id.valid()) return os << Tag::Prefix() << "<invalid>";
  return os << Tag::Prefix() << id.value();
}

struct TxnTag {
  static const char* Prefix() { return "T"; }
};
struct EntityTag {
  static const char* Prefix() { return "E"; }
};

// Identifies one concurrently executing transaction (an execution instance
// of a program, in the paper's terms).
using TxnId = TypedId<TxnTag>;

// Identifies one global data entity in the database.
using EntityId = TypedId<EntityTag>;

// The paper indexes a transaction's states by the number of states preceding
// them; `StateIndex` counts atomic operations executed so far.
using StateIndex = std::uint64_t;

// The paper's "lock index": number of lock states preceding a state/op. The
// k-th lock request creates lock state k (0-based).
using LockIndex = std::uint64_t;

constexpr LockIndex kNoLockIndex = std::numeric_limits<LockIndex>::max();

// Entity values. The paper treats values abstractly; 64-bit integers are
// enough to make every read/write observable in tests.
using Value = std::int64_t;

// Logical time for entry ordering (Theorem 2's partial order omega).
using Timestamp = std::uint64_t;

// num/den as a double, 0.0 when den == 0. Report fractions (goodput,
// wasted work, multi-site share) divide by counters that are legitimately
// zero for empty or stalled workloads; reports must stay finite so they
// can be serialized and compared.
constexpr double SafeRatio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace pardb

namespace std {
template <typename Tag>
struct hash<pardb::TypedId<Tag>> {
  size_t operator()(pardb::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>()(id.value());
  }
};
}  // namespace std

#endif  // PARDB_COMMON_TYPES_H_

#ifndef PARDB_COMMON_FLAGS_H_
#define PARDB_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pardb {

// Minimal command-line flag parser for the CLI tools: accepts
// --name=value, --name value, and bare --name (boolean true). Positional
// arguments are collected in order.
class Flags {
 public:
  // Parses argv (excluding argv[0]). Fails on malformed input like "--".
  static Result<Flags> Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  Result<std::int64_t> GetInt(const std::string& name,
                              std::int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names that were provided but never read — typo detection.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace pardb

#endif  // PARDB_COMMON_FLAGS_H_

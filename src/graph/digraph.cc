#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

namespace pardb::graph {

bool Cycle::Contains(VertexId v) const {
  return std::find(vertices.begin(), vertices.end(), v) != vertices.end();
}

std::string Cycle::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (i) os << " -> ";
    os << vertices[i];
  }
  if (!vertices.empty()) os << " -> " << vertices[0];
  return os.str();
}

void Digraph::AddVertex(VertexId v) {
  adj_.try_emplace(v);
  radj_.try_emplace(v);
}

void Digraph::RemoveVertex(VertexId v) {
  auto it = adj_.find(v);
  if (it == adj_.end()) return;
  // Drop outgoing edges from reverse adjacency.
  for (const auto& [to, labels] : it->second) {
    edge_count_ -= labels.size();
    radj_[to].erase(v);
  }
  // Drop incoming edges from forward adjacency.
  for (const auto& [from, labels] : radj_[v]) {
    edge_count_ -= labels.size();
    adj_[from].erase(v);
  }
  adj_.erase(v);
  radj_.erase(v);
}

bool Digraph::HasVertex(VertexId v) const { return adj_.count(v) > 0; }

std::vector<VertexId> Digraph::Vertices() const {
  std::vector<VertexId> out;
  out.reserve(adj_.size());
  for (const auto& [v, _] : adj_) out.push_back(v);
  return out;
}

void Digraph::AddEdge(VertexId from, VertexId to, EdgeLabel label) {
  AddVertex(from);
  AddVertex(to);
  if (adj_[from][to].insert(label).second) {
    radj_[to][from].insert(label);
    ++edge_count_;
  }
}

void Digraph::RemoveEdge(VertexId from, VertexId to, EdgeLabel label) {
  auto fit = adj_.find(from);
  if (fit == adj_.end()) return;
  auto tit = fit->second.find(to);
  if (tit == fit->second.end()) return;
  if (tit->second.erase(label) == 0) return;
  --edge_count_;
  if (tit->second.empty()) fit->second.erase(tit);
  auto& rlabels = radj_[to][from];
  rlabels.erase(label);
  if (rlabels.empty()) radj_[to].erase(from);
}

void Digraph::RemoveEdgesBetween(VertexId from, VertexId to) {
  auto fit = adj_.find(from);
  if (fit == adj_.end()) return;
  auto tit = fit->second.find(to);
  if (tit == fit->second.end()) return;
  edge_count_ -= tit->second.size();
  fit->second.erase(tit);
  radj_[to].erase(from);
}

void Digraph::RemoveEdgesLabeled(EdgeLabel label) {
  for (auto& [from, tos] : adj_) {
    for (auto tit = tos.begin(); tit != tos.end();) {
      if (tit->second.erase(label)) {
        --edge_count_;
        auto& rlabels = radj_[tit->first][from];
        rlabels.erase(label);
        if (rlabels.empty()) radj_[tit->first].erase(from);
      }
      if (tit->second.empty()) {
        tit = tos.erase(tit);
      } else {
        ++tit;
      }
    }
  }
}

bool Digraph::HasEdge(VertexId from, VertexId to) const {
  auto fit = adj_.find(from);
  if (fit == adj_.end()) return false;
  auto tit = fit->second.find(to);
  return tit != fit->second.end() && !tit->second.empty();
}

bool Digraph::HasEdge(VertexId from, VertexId to, EdgeLabel label) const {
  auto fit = adj_.find(from);
  if (fit == adj_.end()) return false;
  auto tit = fit->second.find(to);
  return tit != fit->second.end() && tit->second.count(label) > 0;
}

std::vector<Edge> Digraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (const auto& [from, tos] : adj_) {
    for (const auto& [to, labels] : tos) {
      for (EdgeLabel l : labels) out.push_back(Edge{from, to, l});
    }
  }
  return out;
}

std::vector<VertexId> Digraph::Successors(VertexId v) const {
  std::vector<VertexId> out;
  auto it = adj_.find(v);
  if (it == adj_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [to, _] : it->second) out.push_back(to);
  return out;
}

std::vector<VertexId> Digraph::Predecessors(VertexId v) const {
  std::vector<VertexId> out;
  auto it = radj_.find(v);
  if (it == radj_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [from, _] : it->second) out.push_back(from);
  return out;
}

std::size_t Digraph::InDegree(VertexId v) const {
  auto it = radj_.find(v);
  if (it == radj_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [_, labels] : it->second) n += labels.size();
  return n;
}

std::size_t Digraph::OutDegree(VertexId v) const {
  auto it = adj_.find(v);
  if (it == adj_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [_, labels] : it->second) n += labels.size();
  return n;
}

bool Digraph::HasPath(VertexId from, VertexId to) const {
  if (!HasVertex(from) || !HasVertex(to)) return false;
  if (from == to) return true;
  std::deque<VertexId> frontier{from};
  std::set<VertexId> seen{from};
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    auto it = adj_.find(v);
    if (it == adj_.end()) continue;
    for (const auto& [next, _] : it->second) {
      if (next == to) return true;
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

bool Digraph::WouldCreateCycle(VertexId from, VertexId to) const {
  if (!HasVertex(from) || !HasVertex(to)) return false;
  return HasPath(to, from);
}

std::optional<Cycle> Digraph::FindCycleThrough(VertexId v) const {
  std::optional<Cycle> found;
  EnumerateCyclesThrough(v, 1, [&found](const Cycle& c) {
    found = c;
    return false;
  });
  return found;
}

std::size_t Digraph::EnumerateCyclesThrough(
    VertexId v, std::size_t limit,
    const std::function<bool(const Cycle&)>& cb) const {
  if (!HasVertex(v) || limit == 0) return 0;
  // DFS over simple paths starting at v; every edge closing back to v is a
  // simple cycle through v. Paths never revisit a vertex, so this is
  // Johnson-style enumeration restricted to a single root — sufficient
  // because in deadlock resolution all new cycles pass through the
  // requester (paper §3.2).
  std::size_t produced = 0;
  std::vector<VertexId> path{v};
  std::vector<Edge> path_edges;
  std::set<VertexId> on_path{v};
  bool stop = false;

  // Explicit stack DFS to avoid recursion-depth limits on long chains.
  struct Frame {
    VertexId vertex;
    std::vector<std::pair<VertexId, EdgeLabel>> out;  // remaining edges
    std::size_t next = 0;
  };
  auto MakeFrame = [this](VertexId u) {
    Frame f;
    f.vertex = u;
    auto it = adj_.find(u);
    if (it != adj_.end()) {
      for (const auto& [to, labels] : it->second) {
        // One representative label per neighbour is enough for victim
        // selection, but report each label so callers see every entity
        // involved in the cycle arc.
        for (EdgeLabel l : labels) f.out.emplace_back(to, l);
      }
    }
    return f;
  };

  std::vector<Frame> stack;
  stack.push_back(MakeFrame(v));
  while (!stack.empty() && !stop) {
    Frame& f = stack.back();
    if (f.next >= f.out.size()) {
      stack.pop_back();
      if (!stack.empty()) {
        on_path.erase(path.back());
        path.pop_back();
        path_edges.pop_back();
      }
      continue;
    }
    auto [to, label] = f.out[f.next++];
    if (to == v) {
      Cycle c;
      c.vertices = path;
      c.edges = path_edges;
      c.edges.push_back(Edge{f.vertex, v, label});
      ++produced;
      if (!cb(c) || produced >= limit) stop = true;
      continue;
    }
    if (on_path.count(to)) continue;
    on_path.insert(to);
    path.push_back(to);
    path_edges.push_back(Edge{f.vertex, to, label});
    stack.push_back(MakeFrame(to));
  }
  return produced;
}

bool Digraph::IsAcyclic() const {
  // Kahn's algorithm over distinct-neighbour in-degrees.
  std::map<VertexId, std::size_t> indeg;
  for (const auto& [v, _] : adj_) indeg[v] = 0;
  for (const auto& [v, tos] : adj_) {
    (void)v;
    for (const auto& [to, _] : tos) ++indeg[to];
  }
  std::deque<VertexId> ready;
  for (const auto& [v, d] : indeg) {
    if (d == 0) ready.push_back(v);
  }
  std::size_t removed = 0;
  while (!ready.empty()) {
    VertexId v = ready.front();
    ready.pop_front();
    ++removed;
    auto it = adj_.find(v);
    if (it == adj_.end()) continue;
    for (const auto& [to, _] : it->second) {
      if (--indeg[to] == 0) ready.push_back(to);
    }
  }
  return removed == adj_.size();
}

std::vector<std::vector<VertexId>> Digraph::StronglyConnectedComponents()
    const {
  // Iterative Tarjan.
  struct NodeState {
    int index = -1;
    int lowlink = 0;
    bool on_stack = false;
  };
  std::map<VertexId, NodeState> state;
  std::vector<VertexId> stack;
  std::vector<std::vector<VertexId>> components;
  int next_index = 0;

  struct Frame {
    VertexId v;
    std::vector<VertexId> succ;
    std::size_t next = 0;
  };

  for (const auto& [root, _] : adj_) {
    if (state[root].index != -1) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{root, Successors(root), 0});
    state[root].index = state[root].lowlink = next_index++;
    state[root].on_stack = true;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ.size()) {
        VertexId w = f.succ[f.next++];
        NodeState& ws = state[w];
        if (ws.index == -1) {
          ws.index = ws.lowlink = next_index++;
          ws.on_stack = true;
          stack.push_back(w);
          frames.push_back(Frame{w, Successors(w), 0});
        } else if (ws.on_stack) {
          state[f.v].lowlink = std::min(state[f.v].lowlink, ws.index);
        }
        continue;
      }
      // Post-visit.
      VertexId v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        state[frames.back().v].lowlink =
            std::min(state[frames.back().v].lowlink, state[v].lowlink);
      }
      if (state[v].lowlink == state[v].index) {
        std::vector<VertexId> component;
        for (;;) {
          VertexId w = stack.back();
          stack.pop_back();
          state[w].on_stack = false;
          component.push_back(w);
          if (w == v) break;
        }
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
      }
    }
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return components;
}

std::vector<std::vector<VertexId>> Digraph::CyclicComponents() const {
  std::vector<std::vector<VertexId>> out;
  for (auto& c : StronglyConnectedComponents()) {
    // A singleton component is cyclic only via a self-loop (impossible in
    // waits-for graphs, but the digraph is generic).
    if (c.size() >= 2 || HasEdge(c[0], c[0])) out.push_back(std::move(c));
  }
  return out;
}

bool Digraph::IsForest() const {
  for (const auto& [v, _] : radj_) {
    // Forest of out-trees: at most one distinct predecessor per vertex.
    if (radj_.at(v).size() > 1) return false;
  }
  return IsAcyclic();
}

std::string Digraph::ToDot(
    const std::function<std::string(VertexId)>& vertex_name,
    const std::function<std::string(EdgeLabel)>& label_name) const {
  auto vname = [&](VertexId v) {
    if (vertex_name) return vertex_name(v);
    return "v" + std::to_string(v);
  };
  auto lname = [&](EdgeLabel l) {
    if (label_name) return label_name(l);
    return std::to_string(l);
  };
  std::ostringstream os;
  os << "digraph G {\n";
  for (const auto& [v, _] : adj_) {
    os << "  \"" << vname(v) << "\";\n";
  }
  for (const Edge& e : Edges()) {
    os << "  \"" << vname(e.from) << "\" -> \"" << vname(e.to)
       << "\" [label=\"" << lname(e.label) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pardb::graph

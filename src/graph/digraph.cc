#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

namespace pardb::graph {

namespace {

using AdjList = SmallVec<Arc, 2>;

// Sorted-list helpers. Adjacency lists are kept sorted by (vertex,
// label), so membership and erase are binary searches and iteration is
// deterministic by construction.
Arc* FindPair(AdjList& list, VertexId v, EdgeLabel l) {
  auto* it = std::lower_bound(list.begin(), list.end(), Arc{v, l});
  if (it != list.end() && it->first == v && it->second == l) return it;
  return list.end();
}

void ErasePair(AdjList& list, VertexId v, EdgeLabel l) {
  auto* it = FindPair(list, v, l);
  assert(it != list.end());
  if (it != list.end()) {
    list.erase_at(static_cast<std::size_t>(it - list.begin()));
  }
}

}  // namespace

bool Cycle::Contains(VertexId v) const {
  return std::find(vertices.begin(), vertices.end(), v) != vertices.end();
}

std::string Cycle::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (i) os << " -> ";
    os << vertices[i];
  }
  if (!vertices.empty()) os << " -> " << vertices[0];
  return os.str();
}

void Digraph::AddVertex(VertexId v) { verts_.try_emplace(v); }

void Digraph::RemoveVertex(VertexId v) {
  auto it = verts_.find(v);
  if (it == verts_.end()) return;
  VertexRec& rec = it->second;
  // Drop outgoing edges from the targets' in-lists (this also clears any
  // self-loop's in-entry, so the second pass never sees `v` itself).
  edge_count_ -= rec.out.size();
  for (const auto& [to, l] : rec.out) {
    EraseLabelPair(l, v, to);
    ErasePair(verts_[to].in, v, l);
  }
  // Drop incoming edges from the sources' out-lists.
  edge_count_ -= rec.in.size();
  for (const auto& [from, l] : rec.in) {
    EraseLabelPair(l, from, v);
    ErasePair(verts_[from].out, v, l);
  }
  verts_.erase(it);
}

bool Digraph::HasVertex(VertexId v) const { return verts_.count(v) > 0; }

std::vector<VertexId> Digraph::Vertices() const {
  std::vector<VertexId> out;
  out.reserve(verts_.size());
  for (const auto& [v, _] : verts_) out.push_back(v);
  return out;
}

void Digraph::AddEdge(VertexId from, VertexId to, EdgeLabel label) {
  VertexRec& fr = verts_[from];
  VertexRec& tr = verts_[to];
  auto* it = std::lower_bound(fr.out.begin(), fr.out.end(),
                              Arc{to, label});
  if (it != fr.out.end() && it->first == to && it->second == label) return;
  fr.out.insert_at(static_cast<std::size_t>(it - fr.out.begin()),
                   Arc{to, label});
  auto* in_it = std::lower_bound(tr.in.begin(), tr.in.end(),
                                 Arc{from, label});
  tr.in.insert_at(static_cast<std::size_t>(in_it - tr.in.begin()),
                  Arc{from, label});
  label_index_[label].emplace_back(from, to);
  ++edge_count_;
}

void Digraph::EraseLabelPair(EdgeLabel label, VertexId from, VertexId to) {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return;
  auto& pairs = it->second;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].first == from && pairs[i].second == to) {
      pairs[i] = pairs.back();
      pairs.pop_back();
      return;
    }
  }
}

void Digraph::RemoveEdge(VertexId from, VertexId to, EdgeLabel label) {
  auto fit = verts_.find(from);
  if (fit == verts_.end()) return;
  auto* it = FindPair(fit->second.out, to, label);
  if (it == fit->second.out.end()) return;
  fit->second.out.erase_at(
      static_cast<std::size_t>(it - fit->second.out.begin()));
  --edge_count_;
  EraseLabelPair(label, from, to);
  ErasePair(verts_[to].in, from, label);
}

void Digraph::RemoveEdgesBetween(VertexId from, VertexId to) {
  auto fit = verts_.find(from);
  if (fit == verts_.end()) return;
  auto& out = fit->second.out;
  auto* lo = std::lower_bound(out.begin(), out.end(),
                              Arc{to, EdgeLabel{0}});
  auto* hi = lo;
  while (hi != out.end() && hi->first == to) ++hi;
  if (lo == hi) return;
  auto& tin = verts_[to].in;
  for (auto* it = lo; it != hi; ++it) {
    EraseLabelPair(it->second, from, to);
    ErasePair(tin, from, it->second);
  }
  edge_count_ -= static_cast<std::size_t>(hi - lo);
  out.erase_range(static_cast<std::size_t>(lo - out.begin()),
                  static_cast<std::size_t>(hi - out.begin()));
}

void Digraph::RemoveEdgesLabeled(EdgeLabel label) {
  auto lit = label_index_.find(label);
  if (lit == label_index_.end() || lit->second.empty()) return;
  // Copy the pair list into reusable scratch so the targeted RemoveEdge
  // calls below scan an empty index entry instead of the list being
  // consumed (and the per-grant sweep stays allocation-free once warm).
  scratch_pairs_.assign(lit->second.begin(), lit->second.end());
  lit->second.clear();
  for (const auto& [from, to] : scratch_pairs_) RemoveEdge(from, to, label);
}

bool Digraph::HasEdge(VertexId from, VertexId to) const {
  auto fit = verts_.find(from);
  if (fit == verts_.end()) return false;
  const auto& out = fit->second.out;
  auto it = std::lower_bound(out.begin(), out.end(),
                             Arc{to, EdgeLabel{0}});
  return it != out.end() && it->first == to;
}

bool Digraph::HasEdge(VertexId from, VertexId to, EdgeLabel label) const {
  auto fit = verts_.find(from);
  if (fit == verts_.end()) return false;
  const auto& out = fit->second.out;
  auto it = std::lower_bound(out.begin(), out.end(),
                             Arc{to, label});
  return it != out.end() && it->first == to && it->second == label;
}

std::vector<Edge> Digraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (const auto& [from, rec] : verts_) {
    for (const auto& [to, l] : rec.out) out.push_back(Edge{from, to, l});
  }
  return out;
}

std::vector<VertexId> Digraph::Successors(VertexId v) const {
  std::vector<VertexId> out;
  auto it = verts_.find(v);
  if (it == verts_.end()) return out;
  out.reserve(it->second.out.size());
  for (const auto& [to, _] : it->second.out) {
    if (out.empty() || out.back() != to) out.push_back(to);
  }
  return out;
}

std::vector<VertexId> Digraph::Predecessors(VertexId v) const {
  std::vector<VertexId> out;
  auto it = verts_.find(v);
  if (it == verts_.end()) return out;
  out.reserve(it->second.in.size());
  for (const auto& [from, _] : it->second.in) {
    if (out.empty() || out.back() != from) out.push_back(from);
  }
  return out;
}

std::size_t Digraph::InDegree(VertexId v) const {
  auto it = verts_.find(v);
  return it == verts_.end() ? 0 : it->second.in.size();
}

std::size_t Digraph::OutDegree(VertexId v) const {
  auto it = verts_.find(v);
  return it == verts_.end() ? 0 : it->second.out.size();
}

bool Digraph::HasPath(VertexId from, VertexId to) const {
  if (!HasVertex(from) || !HasVertex(to)) return false;
  if (from == to) return true;
  // BFS over reusable scratch; `seen` is a linear-scanned vector — the
  // waits-for graphs this guards are at most a few dozen vertices deep.
  scratch_frontier_.clear();
  scratch_seen_.clear();
  scratch_frontier_.push_back(from);
  scratch_seen_.push_back(from);
  for (std::size_t head = 0; head < scratch_frontier_.size(); ++head) {
    auto it = verts_.find(scratch_frontier_[head]);
    if (it == verts_.end()) continue;
    for (const auto& [next, _] : it->second.out) {
      if (next == to) return true;
      if (std::find(scratch_seen_.begin(), scratch_seen_.end(), next) ==
          scratch_seen_.end()) {
        scratch_seen_.push_back(next);
        scratch_frontier_.push_back(next);
      }
    }
  }
  return false;
}

bool Digraph::WouldCreateCycle(VertexId from, VertexId to) const {
  if (!HasVertex(from) || !HasVertex(to)) return false;
  return HasPath(to, from);
}

std::optional<Cycle> Digraph::FindCycleThrough(VertexId v) const {
  std::optional<Cycle> found;
  EnumerateCyclesThrough(v, 1, [&found](const Cycle& c) {
    found = c;
    return false;
  });
  return found;
}

std::size_t Digraph::EnumerateCyclesThrough(
    VertexId v, std::size_t limit,
    const std::function<bool(const Cycle&)>& cb) const {
  if (!HasVertex(v) || limit == 0) return 0;
  // DFS over simple paths starting at v; every edge closing back to v is a
  // simple cycle through v. Paths never revisit a vertex, so this is
  // Johnson-style enumeration restricted to a single root — sufficient
  // because in deadlock resolution all new cycles pass through the
  // requester (paper §3.2).
  std::size_t produced = 0;
  // The DFS state lives in reusable scratch members: this probe runs on
  // every blocked lock request, so it must not touch the heap once warm.
  // Path membership is a linear scan of the path itself — simple cycles
  // in a waits-for graph are a handful of vertices long.
  std::vector<VertexId>& path = scratch_path_;
  std::vector<Edge>& path_edges = scratch_path_edges_;
  std::vector<DfsFrame>& stack = scratch_stack_;
  path.clear();
  path_edges.clear();
  stack.clear();
  path.push_back(v);
  bool stop = false;

  // Explicit stack DFS to avoid recursion-depth limits on long chains.
  // Frames borrow the adjacency lists in place — the graph is not mutated
  // during enumeration, so no per-frame copy is needed.
  static const AdjList kNoEdges{};
  auto MakeFrame = [this](VertexId u) {
    auto it = verts_.find(u);
    return DfsFrame{u, it == verts_.end() ? &kNoEdges : &it->second.out, 0};
  };

  stack.push_back(MakeFrame(v));
  while (!stack.empty() && !stop) {
    DfsFrame& f = stack.back();
    if (f.next >= f.out->size()) {
      stack.pop_back();
      if (!stack.empty()) {
        path.pop_back();
        path_edges.pop_back();
      }
      continue;
    }
    auto [to, label] = (*f.out)[f.next++];
    if (to == v) {
      Cycle c;
      c.vertices = path;
      c.edges = path_edges;
      c.edges.push_back(Edge{f.vertex, v, label});
      ++produced;
      if (!cb(c) || produced >= limit) stop = true;
      continue;
    }
    if (std::find(path.begin(), path.end(), to) != path.end()) continue;
    path.push_back(to);
    path_edges.push_back(Edge{f.vertex, to, label});
    stack.push_back(MakeFrame(to));
  }
  return produced;
}

bool Digraph::IsAcyclic() const {
  // Kahn's algorithm over distinct-neighbour in-degrees. Adjacency lists
  // are sorted, so parallel labels to the same neighbour are adjacent and
  // skipped with a previous-value check.
  std::map<VertexId, std::size_t> indeg;
  for (const auto& [v, _] : verts_) indeg[v] = 0;
  for (const auto& [v, rec] : verts_) {
    (void)v;
    const auto& out = rec.out;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (i > 0 && out[i].first == out[i - 1].first) continue;
      ++indeg[out[i].first];
    }
  }
  std::deque<VertexId> ready;
  for (const auto& [v, d] : indeg) {
    if (d == 0) ready.push_back(v);
  }
  std::size_t removed = 0;
  while (!ready.empty()) {
    VertexId v = ready.front();
    ready.pop_front();
    ++removed;
    auto it = verts_.find(v);
    if (it == verts_.end()) continue;
    const auto& out = it->second.out;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (i > 0 && out[i].first == out[i - 1].first) continue;
      if (--indeg[out[i].first] == 0) ready.push_back(out[i].first);
    }
  }
  return removed == verts_.size();
}

std::vector<std::vector<VertexId>> Digraph::StronglyConnectedComponents()
    const {
  // Iterative Tarjan.
  struct NodeState {
    int index = -1;
    int lowlink = 0;
    bool on_stack = false;
  };
  std::map<VertexId, NodeState> state;
  std::vector<VertexId> stack;
  std::vector<std::vector<VertexId>> components;
  int next_index = 0;

  struct Frame {
    VertexId v;
    std::vector<VertexId> succ;
    std::size_t next = 0;
  };

  for (const auto& [root, _] : verts_) {
    if (state[root].index != -1) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{root, Successors(root), 0});
    state[root].index = state[root].lowlink = next_index++;
    state[root].on_stack = true;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ.size()) {
        VertexId w = f.succ[f.next++];
        NodeState& ws = state[w];
        if (ws.index == -1) {
          ws.index = ws.lowlink = next_index++;
          ws.on_stack = true;
          stack.push_back(w);
          frames.push_back(Frame{w, Successors(w), 0});
        } else if (ws.on_stack) {
          state[f.v].lowlink = std::min(state[f.v].lowlink, ws.index);
        }
        continue;
      }
      // Post-visit.
      VertexId v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        state[frames.back().v].lowlink =
            std::min(state[frames.back().v].lowlink, state[v].lowlink);
      }
      if (state[v].lowlink == state[v].index) {
        std::vector<VertexId> component;
        for (;;) {
          VertexId w = stack.back();
          stack.pop_back();
          state[w].on_stack = false;
          component.push_back(w);
          if (w == v) break;
        }
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
      }
    }
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return components;
}

std::vector<std::vector<VertexId>> Digraph::CyclicComponents() const {
  std::vector<std::vector<VertexId>> out;
  for (auto& c : StronglyConnectedComponents()) {
    // A singleton component is cyclic only via a self-loop (impossible in
    // waits-for graphs, but the digraph is generic).
    if (c.size() >= 2 || HasEdge(c[0], c[0])) out.push_back(std::move(c));
  }
  return out;
}

bool Digraph::IsForest() const {
  for (const auto& [v, rec] : verts_) {
    (void)v;
    // Forest of out-trees: at most one distinct predecessor per vertex.
    const auto& in = rec.in;
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (i > 0 && in[i].first == in[i - 1].first) continue;
      if (++distinct > 1) return false;
    }
  }
  return IsAcyclic();
}

std::string Digraph::ToDot(
    const std::function<std::string(VertexId)>& vertex_name,
    const std::function<std::string(EdgeLabel)>& label_name) const {
  auto vname = [&](VertexId v) {
    if (vertex_name) return vertex_name(v);
    return "v" + std::to_string(v);
  };
  auto lname = [&](EdgeLabel l) {
    if (label_name) return label_name(l);
    return std::to_string(l);
  };
  std::ostringstream os;
  os << "digraph G {\n";
  for (const auto& [v, _] : verts_) {
    os << "  \"" << vname(v) << "\";\n";
  }
  for (const Edge& e : Edges()) {
    os << "  \"" << vname(e.from) << "\" -> \"" << vname(e.to)
       << "\" [label=\"" << lname(e.label) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pardb::graph

#ifndef PARDB_GRAPH_DIGRAPH_H_
#define PARDB_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/status.h"

namespace pardb::graph {

// Vertex and edge-label key types. The concurrency graph instantiates
// vertices with transaction ids and labels with entity ids; the graph layer
// itself is domain-agnostic.
using VertexId = std::uint64_t;
using EdgeLabel = std::uint64_t;

// One arc of a labeled digraph. The paper's labeled concurrency graph
// G_L(T) labels arc <T_j, T_i> with the entity A for which T_i waits on
// T_j (paper §3.0).
struct Edge {
  VertexId from;
  VertexId to;
  EdgeLabel label;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.from == b.from && a.to == b.to && a.label == b.label;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.label < b.label;
  }
};

// One sorted adjacency entry: (neighbour, label). A plain struct rather
// than std::pair because pair's user-provided assignment operators make it
// non-trivially-copyable, which would bar it from SmallVec storage.
struct Arc {
  VertexId first;   // neighbour vertex
  EdgeLabel second;  // edge label

  friend bool operator==(const Arc& a, const Arc& b) {
    return a.first == b.first && a.second == b.second;
  }
  friend bool operator<(const Arc& a, const Arc& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  }
};

// A cycle through the graph: vertices[0] -> vertices[1] -> ... ->
// vertices[k-1] -> vertices[0], with edges[i] the arc from vertices[i] to
// vertices[(i+1) % k].
struct Cycle {
  std::vector<VertexId> vertices;
  std::vector<Edge> edges;

  bool Contains(VertexId v) const;
  std::string ToString() const;
};

// Labeled multidigraph with explicit vertex membership. Deterministic: all
// iteration orders are sorted, so algorithms return the same cycle for the
// same graph regardless of insertion order.
class Digraph {
 public:
  Digraph() = default;

  // Vertices ---------------------------------------------------------------

  // Adds v if absent; idempotent.
  void AddVertex(VertexId v);
  // Removes v and all incident edges. No-op when absent.
  void RemoveVertex(VertexId v);
  bool HasVertex(VertexId v) const;
  std::size_t VertexCount() const { return verts_.size(); }
  std::vector<VertexId> Vertices() const;

  // Edges ------------------------------------------------------------------

  // Adds the arc (from, to, label); creates missing endpoints. Duplicate
  // (from, to, label) triples are ignored (set semantics).
  void AddEdge(VertexId from, VertexId to, EdgeLabel label);
  // Removes the exact arc; no-op when absent.
  void RemoveEdge(VertexId from, VertexId to, EdgeLabel label);
  // Removes every arc from `from` to `to` regardless of label.
  void RemoveEdgesBetween(VertexId from, VertexId to);
  // Removes every arc whose label is `label`. O(edges with that label),
  // via the label index — O(1) when there are none, which is the common
  // case on the per-lock-op wait-edge refresh.
  void RemoveEdgesLabeled(EdgeLabel label);
  // True iff any arc carries `label`. Allocation-free fast-path guard.
  bool HasEdgesLabeled(EdgeLabel label) const {
    auto it = label_index_.find(label);
    return it != label_index_.end() && !it->second.empty();
  }
  bool HasEdge(VertexId from, VertexId to) const;
  bool HasEdge(VertexId from, VertexId to, EdgeLabel label) const;
  std::size_t EdgeCount() const { return edge_count_; }
  std::vector<Edge> Edges() const;
  // Out-neighbours of v (each listed once even with parallel labels).
  std::vector<VertexId> Successors(VertexId v) const;
  std::vector<VertexId> Predecessors(VertexId v) const;
  std::size_t InDegree(VertexId v) const;
  std::size_t OutDegree(VertexId v) const;

  // Queries ----------------------------------------------------------------

  // True iff a directed path from `from` to `to` exists (including length
  // 0 when from == to and both exist).
  bool HasPath(VertexId from, VertexId to) const;

  // True iff adding arc (from, to) would close a directed cycle, i.e. a
  // path to -> ... -> from already exists. This is the paper's wait-time
  // deadlock test: a wait response creates a deadlock iff the requested
  // entity "is already locked by a descendant" in the concurrency graph.
  bool WouldCreateCycle(VertexId from, VertexId to) const;

  // Finds one directed cycle through v, if any. With exclusive locks only
  // the deadlock-free graph is a forest (Theorem 1) and a single wait can
  // close at most one cycle, which this returns.
  std::optional<Cycle> FindCycleThrough(VertexId v) const;

  // Enumerates all simple directed cycles through v, invoking cb for each;
  // stops early when cb returns false or `limit` cycles were produced.
  // Returns the number of cycles reported. Used for shared+exclusive
  // systems where one wait may close many cycles (paper §3.2), all of which
  // provably pass through the requester.
  std::size_t EnumerateCyclesThrough(
      VertexId v, std::size_t limit,
      const std::function<bool(const Cycle&)>& cb) const;

  // True iff the digraph is acyclic.
  bool IsAcyclic() const;

  // Strongly connected components (Tarjan), each sorted ascending; the
  // component list is ordered by smallest member. Components of size >= 2
  // are exactly the vertex sets involved in directed cycles, which is how
  // the periodic deadlock scan finds every deadlock in one sweep.
  std::vector<std::vector<VertexId>> StronglyConnectedComponents() const;

  // Components of size >= 2 only (the cyclic ones).
  std::vector<std::vector<VertexId>> CyclicComponents() const;

  // Theorem 1 structure check: with exclusive locks only, a deadlock-free
  // concurrency graph is a forest of out-trees — every vertex has in-degree
  // <= 1 and there is no cycle.
  bool IsForest() const;

  // Graphviz rendering; `vertex_name` / `label_name` may be null for
  // numeric output.
  std::string ToDot(
      const std::function<std::string(VertexId)>& vertex_name = nullptr,
      const std::function<std::string(EdgeLabel)>& label_name = nullptr) const;

 private:
  // Adjacency storage: sorted (neighbour, label) pairs with two inline
  // slots — waits-for vertices typically carry one or two arcs, so most
  // vertices never touch the heap for their lists.
  using AdjList = SmallVec<Arc, 2>;

  void EraseLabelPair(EdgeLabel label, VertexId from, VertexId to);

  // One DFS frame of the cycle enumeration; lives in a reusable scratch
  // stack so the per-block deadlock probe allocates nothing after warm-up.
  struct DfsFrame {
    VertexId vertex;
    const AdjList* out;
    std::size_t next;
  };

  // Per-vertex adjacency as (neighbour, label) pairs kept sorted — the
  // same iteration order the old map-of-sets produced, at a fraction of
  // the allocation cost: an edge insert is a binary-searched inline-array
  // insert instead of two tree-node allocations per direction. Waits-for
  // graphs are small and edge-churn-heavy (every block/wake rewrites a
  // handful of arcs), which is exactly the shape sorted small-vectors
  // win at.
  struct VertexRec {
    AdjList out;
    AdjList in;
  };
  // Outer std::map keeps vertex iteration deterministic (sorted).
  std::map<VertexId, VertexRec> verts_;
  // label -> (from, to) pairs carrying it; order-insensitive (only
  // consulted for membership and bulk label removal).
  std::unordered_map<EdgeLabel, std::vector<std::pair<VertexId, VertexId>>>
      label_index_;
  std::size_t edge_count_ = 0;

  // Scratch buffers for the hot queries (per-block cycle probe, per-grant
  // label sweep, prevention-mode path test). Cleared, never shrunk: after
  // warm-up these paths perform zero heap allocations. `mutable` because
  // the queries are logically const; the digraph is single-threaded like
  // the engine that owns it.
  mutable std::vector<VertexId> scratch_path_;
  mutable std::vector<Edge> scratch_path_edges_;
  mutable std::vector<DfsFrame> scratch_stack_;
  mutable std::vector<VertexId> scratch_frontier_;
  mutable std::vector<VertexId> scratch_seen_;
  std::vector<std::pair<VertexId, VertexId>> scratch_pairs_;
};

}  // namespace pardb::graph

#endif  // PARDB_GRAPH_DIGRAPH_H_

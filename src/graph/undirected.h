#ifndef PARDB_GRAPH_UNDIRECTED_H_
#define PARDB_GRAPH_UNDIRECTED_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pardb::graph {

// Simple undirected graph used for the paper's state-dependency graphs
// (§4.0): vertices are lock states, edges connect consecutive lock states
// and join each write's "index of restorability" to the lock state after
// which the write occurred. Corollary 1 characterises well-defined
// (recreatable) lock states as articulation points, which this class
// computes with Hopcroft–Tarjan. The production SDG tracker
// (rollback/sdg_strategy) uses an equivalent interval-coverage method; this
// class cross-validates it in tests and renders figures.
class UndirectedGraph {
 public:
  using VertexId = std::uint64_t;

  void AddVertex(VertexId v);
  // Adds {a, b}; creates missing endpoints; self-loops are ignored (they
  // never affect connectivity or articulation points).
  void AddEdge(VertexId a, VertexId b);
  bool HasVertex(VertexId v) const;
  bool HasEdge(VertexId a, VertexId b) const;
  std::size_t VertexCount() const { return adj_.size(); }
  std::size_t EdgeCount() const { return edge_count_; }
  std::vector<VertexId> Vertices() const;
  std::vector<VertexId> Neighbors(VertexId v) const;

  // All articulation points (cut vertices), sorted ascending.
  std::vector<VertexId> ArticulationPoints() const;

  bool IsConnected() const;

  std::string ToDot() const;

 private:
  std::map<VertexId, std::set<VertexId>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace pardb::graph

#endif  // PARDB_GRAPH_UNDIRECTED_H_

#include "graph/undirected.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace pardb::graph {

void UndirectedGraph::AddVertex(VertexId v) { adj_.try_emplace(v); }

void UndirectedGraph::AddEdge(VertexId a, VertexId b) {
  AddVertex(a);
  AddVertex(b);
  if (a == b) return;
  if (adj_[a].insert(b).second) {
    adj_[b].insert(a);
    ++edge_count_;
  }
}

bool UndirectedGraph::HasVertex(VertexId v) const { return adj_.count(v) > 0; }

bool UndirectedGraph::HasEdge(VertexId a, VertexId b) const {
  auto it = adj_.find(a);
  return it != adj_.end() && it->second.count(b) > 0;
}

std::vector<UndirectedGraph::VertexId> UndirectedGraph::Vertices() const {
  std::vector<VertexId> out;
  out.reserve(adj_.size());
  for (const auto& [v, _] : adj_) out.push_back(v);
  return out;
}

std::vector<UndirectedGraph::VertexId> UndirectedGraph::Neighbors(
    VertexId v) const {
  std::vector<VertexId> out;
  auto it = adj_.find(v);
  if (it == adj_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::vector<UndirectedGraph::VertexId> UndirectedGraph::ArticulationPoints()
    const {
  // Iterative Hopcroft–Tarjan. disc/low arrays keyed by vertex id.
  std::unordered_map<VertexId, int> disc;
  std::unordered_map<VertexId, int> low;
  std::set<VertexId> cut;
  int timer = 0;

  struct Frame {
    VertexId v;
    VertexId parent;
    std::vector<VertexId> nbrs;
    std::size_t next = 0;
    int child_count = 0;
  };

  for (const auto& [root, _] : adj_) {
    if (disc.count(root)) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{root, root, Neighbors(root), 0, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.nbrs.size()) {
        VertexId u = f.nbrs[f.next++];
        if (u == f.parent && f.v != root) continue;
        auto dit = disc.find(u);
        if (dit != disc.end()) {
          low[f.v] = std::min(low[f.v], dit->second);
        } else {
          ++f.child_count;
          disc[u] = low[u] = timer++;
          stack.push_back(Frame{u, f.v, Neighbors(u), 0, 0});
        }
      } else {
        // Post-visit: propagate low to parent and test the cut condition.
        VertexId v = f.v;
        int children = f.child_count;
        stack.pop_back();
        if (v == root) {
          if (children > 1) cut.insert(v);
          continue;
        }
        Frame& pf = stack.back();
        low[pf.v] = std::min(low[pf.v], low[v]);
        // A non-root parent is a cut vertex when no back edge from v's
        // subtree reaches above it; the root is a cut vertex iff it has
        // more than one DFS child (tested at its own post-visit).
        if (pf.v != root && low[v] >= disc[pf.v]) cut.insert(pf.v);
      }
    }
  }
  return std::vector<VertexId>(cut.begin(), cut.end());
}

bool UndirectedGraph::IsConnected() const {
  if (adj_.empty()) return true;
  std::set<VertexId> seen;
  std::vector<VertexId> stack{adj_.begin()->first};
  seen.insert(stack.back());
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId u : adj_.at(v)) {
      if (seen.insert(u).second) stack.push_back(u);
    }
  }
  return seen.size() == adj_.size();
}

std::string UndirectedGraph::ToDot() const {
  std::ostringstream os;
  os << "graph G {\n";
  for (const auto& [v, _] : adj_) os << "  " << v << ";\n";
  for (const auto& [a, nbrs] : adj_) {
    for (VertexId b : nbrs) {
      if (a < b) os << "  " << a << " -- " << b << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace pardb::graph

// Transaction design for cheap rollbacks (paper §5).
//
// The same business logic — read three records, update them, write them
// back — written three ways:
//   * scattered: updates interleaved with later lock requests (Figure 4
//     style);
//   * clustered: each record finished before the next lock (Figure 5
//     style);
//   * three-phase: acquire all locks, then update, then release.
// The example prints each program's state-dependency graph statistics and
// then measures the real effect under contention with the single-copy SDG
// rollback strategy.
//
// Build & run:  ./build/examples/transaction_design

#include <cstdio>

#include "rollback/sdg.h"
#include "sim/driver.h"
#include "storage/entity_store.h"
#include "txn/program.h"

using namespace pardb;

namespace {

txn::Program MakeScattered(const std::vector<EntityId>& e) {
  txn::ProgramBuilder b("scattered", 3);
  b.LockExclusive(e[0]).Read(e[0], 0);
  b.LockExclusive(e[1]).Read(e[1], 1);
  // Update of record 0 happens *after* locking record 1: a later write
  // destroys the intermediate lock states.
  b.Compute(0, txn::Operand::Var(0), txn::ArithOp::kAdd, txn::Operand::Imm(1));
  b.WriteVar(e[0], 0);
  b.LockExclusive(e[2]).Read(e[2], 2);
  b.Compute(1, txn::Operand::Var(1), txn::ArithOp::kAdd, txn::Operand::Imm(1));
  b.WriteVar(e[1], 1);
  b.WriteVar(e[0], 0);  // touch record 0 again, even later
  b.Compute(2, txn::Operand::Var(2), txn::ArithOp::kAdd, txn::Operand::Imm(1));
  b.WriteVar(e[2], 2);
  b.Commit();
  auto p = b.Build();
  if (!p.ok()) std::abort();
  return std::move(p).value();
}

txn::Program MakeClustered(const std::vector<EntityId>& e) {
  txn::ProgramBuilder b("clustered", 3);
  for (int i = 0; i < 3; ++i) {
    const auto var = static_cast<txn::VarId>(i);
    b.LockExclusive(e[i]).Read(e[i], var);
    b.Compute(var, txn::Operand::Var(var), txn::ArithOp::kAdd,
              txn::Operand::Imm(1));
    b.WriteVar(e[i], var);
    if (i == 0) b.WriteVar(e[i], var);  // the repeat write stays clustered
  }
  b.Commit();
  auto p = b.Build();
  if (!p.ok()) std::abort();
  return std::move(p).value();
}

txn::Program MakeThreePhase(const std::vector<EntityId>& e) {
  txn::ProgramBuilder b("three-phase", 3);
  for (int i = 0; i < 3; ++i) b.LockExclusive(e[i]);
  for (int i = 0; i < 3; ++i) {
    const auto var = static_cast<txn::VarId>(i);
    b.Read(e[i], var);
    b.Compute(var, txn::Operand::Var(var), txn::ArithOp::kAdd,
              txn::Operand::Imm(1));
    b.WriteVar(e[i], var);
  }
  b.Commit();
  auto p = b.Build();
  if (!p.ok()) std::abort();
  return std::move(p).value();
}

void Analyze(const txn::Program& p) {
  auto sdg = rollback::BuildSdgForProgram(p);
  auto wd = sdg.WellDefinedStates();
  std::printf("%-12s lock states=%zu  well-defined=%zu  write-spread=%llu  "
              "three-phase=%s\n",
              p.name().c_str(), sdg.NumLockStates(), wd.size(),
              (unsigned long long)p.WriteSpreadScore(),
              p.IsThreePhase() ? "yes" : "no");
}

void Simulate(sim::WritePattern pattern, const char* label) {
  sim::SimOptions opt;
  opt.engine.strategy = rollback::StrategyKind::kSdg;
  opt.workload.num_entities = 8;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 5;
  opt.workload.ops_per_entity = 2;
  opt.workload.pattern = pattern;
  opt.concurrency = 8;
  opt.total_txns = 300;
  opt.seed = 5;
  opt.check_serializability = false;
  auto rep = sim::RunSimulation(opt);
  if (!rep.ok()) {
    std::fprintf(stderr, "sim failed: %s\n", rep.status().ToString().c_str());
    return;
  }
  std::printf("%-12s deadlocks=%llu  ideal lost=%llu  actually lost=%llu  "
              "overshoot=%llu ops\n",
              label, (unsigned long long)rep->metrics.deadlocks,
              (unsigned long long)rep->metrics.ideal_wasted_ops,
              (unsigned long long)rep->metrics.wasted_ops,
              (unsigned long long)(rep->metrics.wasted_ops -
                                   rep->metrics.ideal_wasted_ops));
}

}  // namespace

int main() {
  storage::EntityStore store;
  auto entities = store.CreateMany(3, 100);

  std::printf("static structure (same logic, three shapes):\n");
  Analyze(MakeScattered(entities));
  Analyze(MakeClustered(entities));
  Analyze(MakeThreePhase(entities));

  std::printf("\nunder contention with single-copy (SDG) rollback:\n");
  Simulate(sim::WritePattern::kScattered, "scattered");
  Simulate(sim::WritePattern::kClustered, "clustered");
  Simulate(sim::WritePattern::kThreePhase, "three-phase");

  std::printf(
      "\nTakeaway (paper §5): cluster each object's writes, or better, use\n"
      "an acquire/update/release structure — every lock state stays\n"
      "well-defined, so a deadlock rollback never loses more progress than\n"
      "strictly necessary, and after the last lock request monitoring can\n"
      "stop entirely.\n");
  return 0;
}

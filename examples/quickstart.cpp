// Quickstart: two transactions deadlock over a pair of accounts; the engine
// detects the cycle at wait time and removes it with a *partial* rollback —
// the victim keeps its first lock and loses only the progress made since the
// conflicting lock request (Fussell, Kedem & Silberschatz, SIGMOD 1981).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "storage/entity_store.h"
#include "txn/program.h"

using namespace pardb;  // examples favor brevity

int main() {
  // A database of two entities.
  storage::EntityStore store;
  const EntityId a(0), b(1);
  (void)store.Create(a, 100);
  (void)store.Create(b, 200);

  // Engine with the paper's configuration: MCS rollback state (every lock
  // state restorable) and cost-optimal victim choice constrained by the
  // entry order (Theorem 2).
  core::EngineOptions options;
  options.strategy = rollback::StrategyKind::kMcs;
  options.victim_policy = core::VictimPolicyKind::kMinCostOrdered;
  core::Engine engine(&store, options);

  // T0: a += 1, then b += 1 (locks a then b).
  auto p0 = txn::ProgramBuilder("transfer-ab", 1)
                .LockExclusive(a)
                .Read(a, 0)
                .Compute(0, txn::Operand::Var(0), txn::ArithOp::kAdd,
                         txn::Operand::Imm(1))
                .WriteVar(a, 0)
                .LockExclusive(b)
                .Read(b, 0)
                .Compute(0, txn::Operand::Var(0), txn::ArithOp::kAdd,
                         txn::Operand::Imm(1))
                .WriteVar(b, 0)
                .Commit()
                .Build();
  // T1: b += 10, then a += 10 (locks b then a -> deadlock-prone order).
  auto p1 = txn::ProgramBuilder("transfer-ba", 1)
                .LockExclusive(b)
                .Read(b, 0)
                .Compute(0, txn::Operand::Var(0), txn::ArithOp::kAdd,
                         txn::Operand::Imm(10))
                .WriteVar(b, 0)
                .LockExclusive(a)
                .Read(a, 0)
                .Compute(0, txn::Operand::Var(0), txn::ArithOp::kAdd,
                         txn::Operand::Imm(10))
                .WriteVar(a, 0)
                .Commit()
                .Build();
  if (!p0.ok() || !p1.ok()) {
    std::fprintf(stderr, "program build failed\n");
    return 1;
  }

  auto t0 = engine.Spawn(std::move(p0).value());
  auto t1 = engine.Spawn(std::move(p1).value());
  if (!t0.ok() || !t1.ok()) {
    std::fprintf(stderr, "spawn failed\n");
    return 1;
  }

  Status s = engine.RunToCompletion();
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const auto& m = engine.metrics();
  std::printf("both transactions committed.\n");
  std::printf("deadlocks detected : %llu\n",
              static_cast<unsigned long long>(m.deadlocks));
  std::printf("partial rollbacks  : %llu\n",
              static_cast<unsigned long long>(m.partial_rollbacks));
  std::printf("total rollbacks    : %llu\n",
              static_cast<unsigned long long>(m.total_rollbacks));
  std::printf("ops lost to rollback: %llu\n",
              static_cast<unsigned long long>(m.wasted_ops));
  for (const auto& ev : engine.deadlock_events()) {
    std::printf("deadlock: requester T%llu over E%llu, victim T%llu, cost %llu\n",
                static_cast<unsigned long long>(ev.requester.value()),
                static_cast<unsigned long long>(ev.requested_entity.value()),
                static_cast<unsigned long long>(ev.victims.front().value()),
                static_cast<unsigned long long>(ev.total_cost));
  }
  std::printf("final a=%lld b=%lld (serial orders give 111/211)\n",
              static_cast<long long>(store.Get(a).value().value),
              static_cast<long long>(store.Get(b).value().value));
  return 0;
}

// Walkthrough of the paper's worked figures, printed as Graphviz DOT plus
// commentary. Pipe any block into `dot -Tpng` to render the same drawings
// the paper shows.
//
// Build & run:  ./build/examples/figures_walkthrough

#include <cstdio>
#include <iostream>

#include "rollback/sdg.h"
#include "sim/scenario.h"
#include "storage/entity_store.h"

using namespace pardb;

namespace {

core::EngineOptions MinCostOptions() {
  core::EngineOptions opt;
  opt.victim_policy = core::VictimPolicyKind::kMinCost;
  opt.strategy = rollback::StrategyKind::kMcs;
  return opt;
}

std::string TxnName(graph::VertexId v) { return "T" + std::to_string(v + 1); }

void Figure1() {
  std::printf("--- Figure 1(a): the exclusive-lock deadlock ---\n");
  auto fig = sim::BuildFigure1(MinCostOptions());
  if (!fig.ok()) return;
  auto& engine = fig->runner->engine();
  auto entity_name = [&](graph::EdgeLabel l) {
    switch (l - fig->b.value()) {
      case 0:
        return std::string("b");
      case 1:
        return std::string("c");
      case 2:
        return std::string("e");
      case 3:
        return std::string("f");
      default:
        return "h" + std::to_string(l + 1);
    }
  };
  // Trigger and show both states.
  std::cout << "before T2 requests e:\n"
            << engine.waits_for().ToDot(TxnName, entity_name);
  (void)fig->TriggerDeadlock();
  const auto& ev = engine.deadlock_events().at(0);
  std::printf("deadlock: cycle of %zu transactions; candidate costs:\n",
              ev.cycle_txns.size());
  for (const auto& c : ev.candidates) {
    std::printf("  T%llu: roll back to lock state %llu, cost %llu ops\n",
                (unsigned long long)c.txn.value() + 1,
                (unsigned long long)c.ideal_target,
                (unsigned long long)c.cost);
  }
  std::printf("victim: T%llu (cost %llu)\n\n",
              (unsigned long long)ev.victims[0].value() + 1,
              (unsigned long long)ev.total_cost);
  std::cout << "Figure 1(b), after the partial rollback of T2:\n"
            << engine.waits_for().ToDot(TxnName, entity_name) << "\n";
}

void Figure2() {
  std::printf("--- Figure 2: potentially infinite mutual preemption ---\n");
  auto out = sim::RunFigure2MutualPreemption(MinCostOptions(), 3);
  if (!out.ok()) return;
  std::printf(
      "min-cost victims over 3 driven rounds:");
  for (TxnId v : out->victims) {
    std::printf(" T%llu", (unsigned long long)v.value() + 1);
  }
  std::printf("\nFigure 1(a) configuration recurred %d times; %s\n\n",
              out->recurrences,
              out->pattern_sustained
                  ? "the alternation would continue forever"
                  : "the alternation broke");
}

void Figure3() {
  std::printf("--- Figure 3: shared + exclusive locks ---\n");
  auto a = sim::BuildFigure3a(MinCostOptions());
  if (a.ok()) {
    std::cout << "(a) acyclic but not a forest:\n"
              << a->runner->engine().waits_for().ToDot(TxnName);
  }
  auto c = sim::BuildFigure3c(MinCostOptions());
  if (c.ok()) {
    (void)c->TriggerDeadlock();
    const auto& ev = c->runner->engine().deadlock_events().at(0);
    std::printf("(c) T1's request closed %zu cycles; victims:", ev.num_cycles);
    for (TxnId v : ev.victims) {
      std::printf(" T%llu", (unsigned long long)v.value() + 1);
    }
    std::printf(" (rolling back T1 alone would also clear every cycle)\n\n");
  }
}

void Figures4And5() {
  std::printf("--- Figures 4 and 5: state-dependency graphs ---\n");
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  auto p4 = sim::MakeFigure4Program(ids, false);
  auto sdg4 = rollback::BuildSdgForProgram(p4);
  std::printf("scattered transaction (Figure 4):\n%s", p4.ToString().c_str());
  std::cout << sdg4.ToUndirectedGraph().ToDot();
  std::printf("well-defined lock states:");
  for (LockIndex q : sdg4.WellDefinedStates()) {
    std::printf(" %llu", (unsigned long long)q);
  }
  std::printf("  (only the trivial ones)\n\n");

  auto p5 = sim::MakeFigure5Program(ids);
  auto sdg5 = rollback::BuildSdgForProgram(p5);
  std::printf("the same operations clustered (Figure 5):\n");
  std::printf("well-defined lock states:");
  for (LockIndex q : sdg5.WellDefinedStates()) {
    std::printf(" %llu", (unsigned long long)q);
  }
  std::printf("  (every lock state)\n");
}

}  // namespace

int main() {
  Figure1();
  Figure2();
  Figure3();
  Figures4And5();
  return 0;
}

// Banking example: concurrent account transfers under two-phase locking.
//
// Transfers lock two accounts in arbitrary order, so deadlocks are
// frequent. The example runs the same workload under the classical
// remove-and-restart baseline and under the paper's partial-rollback
// strategies, verifies that money is conserved either way, and shows how
// much executed work each approach throws away.
//
// Build & run:  ./build/examples/banking

#include <cstdio>
#include <numeric>

#include "analysis/history.h"
#include "common/random.h"
#include "core/engine.h"
#include "storage/entity_store.h"
#include "txn/program.h"

using namespace pardb;

namespace {

constexpr int kAccounts = 16;
constexpr Value kInitialBalance = 1000;
constexpr int kTransfers = 200;
constexpr int kConcurrency = 8;

// A chained transfer a -> b -> c: locks three accounts one by one (in
// arbitrary order across transactions, so deadlocks happen) and moves
// `amount` along the chain, doing its per-account bookkeeping right after
// each lock. With three locks and clustered updates, a deadlock over a
// later account costs only the progress since that account's lock — the
// partial-rollback sweet spot.
txn::Program MakeTransfer(EntityId a, EntityId b, EntityId c, Value amount,
                          int id) {
  txn::ProgramBuilder pb("transfer-" + std::to_string(id), 3);
  pb.LockExclusive(a)
      .Read(a, 0)
      .Compute(0, txn::Operand::Var(0), txn::ArithOp::kSub,
               txn::Operand::Imm(amount))
      .WriteVar(a, 0)
      .LockExclusive(b)
      .Read(b, 1)
      .Compute(1, txn::Operand::Var(1), txn::ArithOp::kAdd,
               txn::Operand::Imm(amount))
      .Compute(1, txn::Operand::Var(1), txn::ArithOp::kSub,
               txn::Operand::Imm(amount / 2))
      .WriteVar(b, 1)
      .LockExclusive(c)
      .Read(c, 2)
      .Compute(2, txn::Operand::Var(2), txn::ArithOp::kAdd,
               txn::Operand::Imm(amount / 2))
      .WriteVar(c, 2)
      .Commit();
  auto p = pb.Build();
  if (!p.ok()) {
    std::fprintf(stderr, "bad program: %s\n", p.status().ToString().c_str());
    std::abort();
  }
  return std::move(p).value();
}

struct RunResult {
  core::EngineMetrics metrics;
  Value total_balance = 0;
  bool serializable = false;
};

RunResult RunWorkload(rollback::StrategyKind strategy) {
  storage::EntityStore store;
  auto accounts = store.CreateMany(kAccounts, kInitialBalance);

  analysis::HistoryRecorder recorder;
  core::EngineOptions options;
  options.strategy = strategy;
  options.victim_policy = core::VictimPolicyKind::kMinCostOrdered;
  options.scheduler = core::SchedulerKind::kRandom;
  options.seed = 2026;
  core::Engine engine(&store, options, &recorder);

  Rng rng(7);  // same transfer sequence for every strategy
  int spawned = 0;
  auto SpawnNext = [&]() {
    // Three distinct accounts.
    std::uint64_t a = rng.Uniform(kAccounts);
    std::uint64_t b = rng.Uniform(kAccounts - 1);
    if (b >= a) ++b;
    std::uint64_t c;
    do {
      c = rng.Uniform(kAccounts);
    } while (c == a || c == b);
    Value amount = static_cast<Value>(2 + 2 * rng.Uniform(25));
    auto t = engine.Spawn(MakeTransfer(accounts[a], accounts[b], accounts[c],
                                       amount, spawned));
    if (!t.ok()) std::abort();
    ++spawned;
  };

  while (engine.metrics().commits < kTransfers) {
    while (spawned < kTransfers &&
           spawned - static_cast<int>(engine.metrics().commits) <
               kConcurrency) {
      SpawnNext();
    }
    auto stepped = engine.StepAny();
    if (!stepped.ok() || !stepped.value().has_value()) {
      std::fprintf(stderr, "engine stalled:\n%s\n",
                   engine.DumpState().c_str());
      std::abort();
    }
  }

  RunResult result;
  result.metrics = engine.metrics();
  for (EntityId acc : accounts) {
    result.total_balance += store.Get(acc).value().value;
  }
  result.serializable = recorder.IsConflictSerializable();
  return result;
}

void Report(const char* name, const RunResult& r) {
  std::printf("%-14s commits=%llu deadlocks=%llu rollbacks=%llu "
              "wasted_ops=%llu (ideal %llu)  money=%lld (%s)  %s\n",
              name, (unsigned long long)r.metrics.commits,
              (unsigned long long)r.metrics.deadlocks,
              (unsigned long long)r.metrics.rollbacks,
              (unsigned long long)r.metrics.wasted_ops,
              (unsigned long long)r.metrics.ideal_wasted_ops,
              (long long)r.total_balance,
              r.total_balance == kAccounts * kInitialBalance ? "conserved"
                                                             : "LOST!",
              r.serializable ? "serializable" : "NOT SERIALIZABLE");
}

}  // namespace

int main() {
  std::printf("%d transfers over %d accounts, %d concurrent (same seed):\n\n",
              kTransfers, kAccounts, kConcurrency);
  Report("total-restart", RunWorkload(rollback::StrategyKind::kTotalRestart));
  Report("partial (SDG)", RunWorkload(rollback::StrategyKind::kSdg));
  Report("partial (MCS)", RunWorkload(rollback::StrategyKind::kMcs));
  std::printf(
      "\nThe same deadlocks, less work re-executed: partial rollback "
      "restarts each victim at the\nconflicting lock request instead of "
      "from scratch (the gap grows with transaction length\nand "
      "contention — see bench_partial_vs_total). SDG matches MCS here "
      "because the transfers\ncluster their writes, so every lock state "
      "is well-defined (paper §5).\n");
  return 0;
}

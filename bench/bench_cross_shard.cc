// Cross-shard execution cost: goodput of par::RunSharded in locks mode
// (XShardMode::kLocks — true shard-spanning transactions with distributed
// partial rollback, DESIGN D12) as the cross-shard fraction sweeps
// {0, 0.05, 0.2} at 4 shards.
//
// Two deterministic signals ride along for the regression gate:
//  - goodput (committed / ops executed) per fraction — the price of
//    global cycles is paid in wasted operations, not in lost commits;
//  - byte-identical report JSON across repeated runs AND across worker
//    counts (1 vs 4) — the epoch-barrier driver's determinism contract.
//
// Besides the table, the run writes machine-readable BENCH_cross_shard.json
// (array of per-fraction objects embedding the full sharded report).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/table_util.h"
#include "par/report_json.h"
#include "par/sharded_driver.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;

par::ShardedOptions Base(double cross_fraction) {
  par::ShardedOptions opt;
  opt.num_shards = 4;
  // Small enough an entity pool that the 0.2 sweep point actually forms
  // global cycles (so the sweep exercises distributed partial rollback),
  // large enough that every transaction still commits.
  opt.workload.num_entities = 64;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.workload.ops_per_entity = 2;
  opt.workload.zipf_theta = 0.2;
  opt.cross_shard_fraction = cross_fraction;
  opt.concurrency = 16;
  opt.total_txns = 800;
  opt.seed = 33;
  opt.xshard = par::XShardMode::kLocks;
  return opt;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void PrintCrossShardSweep() {
  Section("Cross-shard locks mode: goodput vs cross-shard fraction "
          "(4 shards, 800 txns)");
  Table t({"cross frac", "committed", "globals", "global cycles",
           "dist rollbacks", "goodput", "elapsed (s)", "txns/s",
           "global serializable", "report deterministic"});
  std::ofstream json("BENCH_cross_shard.json");
  json << "[\n";
  bool first = true;
  for (double cross : {0.0, 0.05, 0.2}) {
    const auto opt = Base(cross);
    (void)par::RunSharded(opt);  // warm-up
    std::vector<double> times;
    Result<par::ShardedReport> rep = Status::Internal("no rounds");
    for (int round = 0; round < 3; ++round) {
      const auto start = std::chrono::steady_clock::now();
      rep = par::RunSharded(opt);
      times.push_back(Seconds(start, std::chrono::steady_clock::now()));
    }
    if (!rep.ok()) {
      std::cerr << "sharded run failed: " << rep.status() << "\n";
      continue;
    }
    std::sort(times.begin(), times.end());
    const double elapsed = times[times.size() / 2];
    // Determinism contract: the report must not depend on the run or on
    // how many workers stepped the shards.
    const std::string canonical = par::ShardedReportToJson(rep.value());
    bool deterministic = true;
    for (std::uint32_t workers : {1u, 4u}) {
      auto wopt = opt;
      wopt.num_threads = workers;
      auto wrep = par::RunSharded(wopt);
      const std::string got =
          wrep.ok() ? par::ShardedReportToJson(wrep.value()) : "{}";
      if (!wrep.ok() || got != canonical) {
        deterministic = false;
        // Leave both sides on disk so the regression gate can report the
        // first differing key path instead of a bare boolean.
        std::ofstream("BENCH_cross_shard_report_expected.json") << canonical;
        std::ofstream("BENCH_cross_shard_report_actual.json") << got;
      }
    }
    const auto& x = rep->xshard;
    t.AddRow(cross, rep->committed, x.global_txns, x.global_cycles,
             x.distributed_rollbacks, rep->goodput, elapsed,
             elapsed > 0 ? static_cast<double>(rep->committed) / elapsed : 0.0,
             rep->global_serializable ? "yes" : "NO",
             deterministic ? "yes" : "NO");
    json << (first ? "" : ",\n") << " {\"cross_shard_fraction\":" << cross
         << ",\"elapsed_seconds\":" << elapsed << ",\"txns_per_second\":"
         << (elapsed > 0 ? static_cast<double>(rep->committed) / elapsed : 0.0)
         << ",\"goodput\":" << rep->goodput
         << ",\"report_deterministic\":" << (deterministic ? "true" : "false")
         << ",\n  \"report\":\n" << par::ShardedReportToJson(rep.value(), 2)
         << "}";
    first = false;
  }
  json << "\n]\n";
  t.Print();
  std::cout << "(wrote BENCH_cross_shard.json; goodput, commit counts and "
               "the xshard counters are deterministic — only the timings "
               "vary)\n";
}

void BM_CrossShardLocks(benchmark::State& state) {
  const double cross = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto rep = par::RunSharded(Base(cross));
    if (!rep.ok()) state.SkipWithError("sharded run failed");
    benchmark::DoNotOptimize(rep->committed);
  }
  state.counters["cross_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CrossShardLocks)->Arg(0)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintCrossShardSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

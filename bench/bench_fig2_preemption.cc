// E2/E5 — Figure 2 and Theorem 2: potentially infinite mutual preemption.
//
// Part 1 replays the paper's Figure 1 -> Figure 2 alternation: under the
// unconstrained min-cost policy the exact Figure 1(a) configuration recurs
// round after round (we drive 25 rounds; it would continue forever) while
// the Theorem 2 entry-ordered policy breaks the loop at the first
// resolution and every transaction commits.
//
// Part 2 measures the phenomenon statistically on random high-contention
// workloads: repeated-preemption tails with and without the ordering.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "sim/driver.h"
#include "sim/scenario.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using core::EngineOptions;
using core::VictimPolicyKind;

EngineOptions Options(VictimPolicyKind policy) {
  EngineOptions opt;
  opt.victim_policy = policy;
  return opt;
}

void PrintReproduction() {
  Section("Figure 2: the adversarial alternation (25 driven rounds)");
  Table t({"policy", "fig-1(a) recurrences", "deadlocks", "rollbacks",
           "T2..T4 committed", "loop broken"});
  for (auto policy :
       {VictimPolicyKind::kMinCost, VictimPolicyKind::kMinCostOrdered}) {
    auto out = sim::RunFigure2MutualPreemption(Options(policy), 25);
    if (!out.ok()) {
      std::cerr << "scenario failed: " << out.status() << "\n";
      continue;
    }
    const auto& m = out->runner->engine().metrics();
    t.AddRow(std::string(core::VictimPolicyKindName(policy)),
             out->recurrences, m.deadlocks, m.rollbacks,
             out->all_committed ? "yes" : "no",
             out->pattern_sustained ? "no (runs forever)" : "yes");
  }
  t.Print();
  std::cout << "(paper claim: without an ordering the scenario \"has the "
               "potential to continue to occur indefinitely\"; Theorem 2's "
               "partial order eliminates it)\n";

  Section("Random contention: repeated-preemption tail, 300 txns");
  Table r({"policy", "deadlocks", "preemptions", "max preemptions of one txn",
           "wasted ops", "completed"});
  for (auto policy :
       {VictimPolicyKind::kMinCost, VictimPolicyKind::kMinCostOrdered,
        VictimPolicyKind::kYoungest, VictimPolicyKind::kRequester}) {
    sim::SimOptions opt;
    opt.engine.victim_policy = policy;
    opt.engine.scheduler = core::SchedulerKind::kRandom;
    opt.workload.num_entities = 6;
    opt.workload.min_locks = 3;
    opt.workload.max_locks = 5;
    opt.concurrency = 8;
    opt.total_txns = 300;
    opt.max_steps = 4'000'000;
    opt.seed = 4242;
    opt.check_serializability = false;
    auto rep = sim::RunSimulation(opt);
    if (!rep.ok()) {
      r.AddRow(std::string(core::VictimPolicyKindName(policy)), "-", "-", "-",
               "-", std::string("error: ") + rep.status().ToString());
      continue;
    }
    r.AddRow(std::string(core::VictimPolicyKindName(policy)),
             rep->metrics.deadlocks, rep->metrics.preemptions,
             rep->max_preemptions_single_txn, rep->metrics.wasted_ops,
             rep->completed
                 ? "yes"
                 : "NO (livelocked, " +
                       std::to_string(rep->committed) + "/300)");
  }
  r.Print();
}

void BM_Figure2RoundsMinCost(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto out = sim::RunFigure2MutualPreemption(
        Options(VictimPolicyKind::kMinCost), rounds);
    if (!out.ok()) state.SkipWithError("scenario failed");
    benchmark::DoNotOptimize(out->recurrences);
  }
  state.counters["recurrences"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Figure2RoundsMinCost)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

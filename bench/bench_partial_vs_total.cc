// E9 — the paper's §1 motivation: as concurrency rises, deadlocks become
// common and total removal-and-restart becomes burdensome; partial rollback
// loses far less progress.
//
// Series: multiprogramming level (concurrency) x rollback strategy
// (total-restart baseline vs MCS partial vs SDG single-copy partial), all
// under the Theorem 2 ordered min-cost policy. Reported per cell: deadlock
// frequency, work lost to rollbacks, wasted fraction and goodput
// (commits per executed op). Expected shape per the paper: deadlocks/txn
// grows with concurrency; partial rollback's wasted work is a small
// fraction of total restart's at every level; SDG sits between MCS and
// total restart.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "obs/txnlife.h"
#include "sim/driver.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using rollback::StrategyKind;

sim::SimOptions BaseOptions(StrategyKind strategy, std::uint32_t concurrency,
                            std::uint64_t seed) {
  sim::SimOptions opt;
  opt.engine.strategy = strategy;
  opt.engine.victim_policy = core::VictimPolicyKind::kMinCostOrdered;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  opt.engine.seed = seed;
  opt.workload.num_entities = 24;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 6;
  opt.workload.ops_per_entity = 3;
  opt.workload.zipf_theta = 0.6;  // hotspot contention
  opt.concurrency = concurrency;
  opt.total_txns = 600;
  opt.seed = seed;
  opt.check_serializability = false;
  return opt;
}

void PrintReproduction() {
  Section("Concurrency sweep: partial vs total rollback (600 txns each)");
  Table t({"concurrency", "strategy", "deadlocks/txn", "rollbacks",
           "ops wasted", "wasted fraction", "cost p50/p95/max", "goodput"});
  for (std::uint32_t mpl : {2, 4, 8, 16, 32}) {
    for (auto strategy : {StrategyKind::kTotalRestart, StrategyKind::kSdg,
                          StrategyKind::kMcs}) {
      auto rep = sim::RunSimulation(BaseOptions(strategy, mpl, 12345));
      if (!rep.ok()) {
        std::cerr << "sim failed: " << rep.status() << "\n";
        continue;
      }
      const auto& cd = rep->rollback_costs;
      t.AddRow(mpl, std::string(rollback::StrategyKindName(strategy)),
               rep->deadlocks_per_txn, rep->metrics.rollbacks,
               rep->metrics.wasted_ops, rep->wasted_fraction,
               std::to_string(cd.p50) + "/" + std::to_string(cd.p95) + "/" +
                   std::to_string(cd.max),
               rep->goodput);
    }
  }
  t.Print();
  std::cout
      << "(paper claim: with rising concurrency deadlocks become a common\n"
         " occurrence and \"such expensive means of handling the problem\"\n"
         " — total removal — \"will become more burdensome\"; partial\n"
         " rollback wastes a fraction of the work at every level)\n";

  // D13 wasted-work ledger: every wasted step attributed to the decision
  // that caused the loss. Under the ordered min-cost policy the causes are
  // deadlock victims, ω-preemptions and requester self-rollbacks; the table
  // shows where each strategy's loss actually comes from, not just its sum.
  Section("Wasted-work attribution by cause (concurrency 16, 600 txns)");
  Table w({"strategy", "cause", "rollbacks", "wasted steps", "share"});
  for (auto strategy : {StrategyKind::kTotalRestart, StrategyKind::kSdg,
                        StrategyKind::kMcs}) {
    auto rep = sim::RunSimulation(BaseOptions(strategy, 16, 12345));
    if (!rep.ok()) {
      std::cerr << "sim failed: " << rep.status() << "\n";
      continue;
    }
    std::uint64_t total_wasted = 0;
    for (std::uint64_t v : rep->wasted_by_cause) total_wasted += v;
    for (std::size_t c = 0; c < obs::kNumRollbackCauses; ++c) {
      if (rep->rollbacks_by_cause[c] == 0 && rep->wasted_by_cause[c] == 0) {
        continue;
      }
      w.AddRow(std::string(rollback::StrategyKindName(strategy)),
               std::string(obs::RollbackCauseName(
                   static_cast<obs::RollbackCause>(c))),
               rep->rollbacks_by_cause[c], rep->wasted_by_cause[c],
               total_wasted == 0
                   ? 0.0
                   : static_cast<double>(rep->wasted_by_cause[c]) /
                         static_cast<double>(total_wasted));
    }
  }
  w.Print();
  std::cout
      << "(wasted steps = ops executed and then rolled back, attributed to\n"
         " the rollback's cause; partial rollback shrinks every cause's\n"
         " loss because victims back off to an intermediate state instead\n"
         " of restarting)\n";

  Section("Victim-policy ablation at concurrency 16 (MCS strategy)");
  Table p({"policy", "deadlocks", "preemptions", "ops wasted",
           "wasted fraction", "completed"});
  for (auto policy :
       {core::VictimPolicyKind::kMinCostOrdered,
        core::VictimPolicyKind::kYoungest, core::VictimPolicyKind::kOldest,
        core::VictimPolicyKind::kRequester, core::VictimPolicyKind::kMinCost}) {
    auto opt = BaseOptions(StrategyKind::kMcs, 16, 777);
    opt.engine.victim_policy = policy;
    opt.max_steps = 3'000'000;
    auto rep = sim::RunSimulation(opt);
    if (!rep.ok()) continue;
    p.AddRow(std::string(core::VictimPolicyKindName(policy)),
             rep->metrics.deadlocks, rep->metrics.preemptions,
             rep->metrics.wasted_ops, rep->wasted_fraction,
             rep->completed ? "yes" : "NO (livelock)");
  }
  p.Print();
}

void BM_SimulationThroughput(benchmark::State& state) {
  const auto strategy = static_cast<StrategyKind>(state.range(0));
  const auto mpl = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t committed = 0;
  for (auto _ : state) {
    auto opt = BaseOptions(strategy, mpl, 42);
    opt.total_txns = 200;
    auto rep = sim::RunSimulation(opt);
    if (!rep.ok()) state.SkipWithError("sim failed");
    committed += rep->committed;
    benchmark::DoNotOptimize(rep->metrics.ops_executed);
  }
  state.counters["txns"] =
      benchmark::Counter(static_cast<double>(committed),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulationThroughput)
    ->ArgsProduct({{static_cast<int>(StrategyKind::kTotalRestart),
                    static_cast<int>(StrategyKind::kMcs),
                    static_cast<int>(StrategyKind::kSdg)},
                   {4, 16}});

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E6 — Theorem 3: MCS storage overhead.
//
// "There can be at most n(n+1)/2 local copies of global entities and n*|L|
// copies of local variables associated with T using MCS."
//
// Reproduces the bound with the worst-case adversarial transaction (write
// every held entity between every pair of lock requests), shows the bound
// is attained exactly when monitoring stops at the declared last lock
// request (§5) and only slightly exceeded without the declaration, and
// contrasts MCS's quadratic growth with the constant single-copy footprint
// of the total-restart and SDG strategies.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "rollback/mcs_strategy.h"
#include "rollback/sdg_strategy.h"
#include "rollback/strategy.h"
#include "rollback/total_restart.h"
#include "txn/program.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using rollback::RollbackStrategy;
using rollback::StrategyKind;

txn::Program DummyProgram(std::uint32_t num_vars) {
  txn::ProgramBuilder b("space", num_vars);
  b.LockExclusive(EntityId(0));
  b.Commit();
  auto p = b.Build();
  return std::move(p).value();
}

// Drives a strategy through the Theorem 3 worst case with n locks:
// after the i-th lock request, write every held entity once.
rollback::SpaceStats WorstCase(StrategyKind kind, std::size_t n,
                               bool declare_last_lock) {
  txn::Program program = DummyProgram(4);
  auto strategy = rollback::MakeStrategy(kind, program);
  for (std::size_t i = 0; i < n; ++i) {
    strategy->OnLockGranted(i, EntityId(i), lock::LockMode::kExclusive,
                            Value(i), false);
    if (declare_last_lock && i == n - 1) strategy->OnLastLockGranted();
    for (std::size_t j = 0; j <= i; ++j) {
      strategy->OnEntityWrite(EntityId(j), Value(100 * i + j),
                              LockIndex(i + 1));
    }
    for (txn::VarId v = 0; v < 4; ++v) {
      strategy->OnVarWrite(v, Value(i), LockIndex(i + 1));
    }
  }
  return strategy->Space();
}

void PrintReproduction() {
  Section("Theorem 3: MCS entity copies vs n (worst-case transaction)");
  Table t({"n (locks held)", "bound n(n+1)/2", "MCS (with last-lock decl)",
           "MCS (without)", "total-restart", "sdg"});
  for (std::size_t n : {2, 4, 8, 16, 32, 64}) {
    auto mcs_decl = WorstCase(StrategyKind::kMcs, n, true);
    auto mcs_plain = WorstCase(StrategyKind::kMcs, n, false);
    auto total = WorstCase(StrategyKind::kTotalRestart, n, false);
    auto sdg = WorstCase(StrategyKind::kSdg, n, false);
    t.AddRow(n, n * (n + 1) / 2, mcs_decl.entity_copies,
             mcs_plain.entity_copies, total.entity_copies, sdg.entity_copies);
  }
  t.Print();
  std::cout << "(with the §5 last-lock declaration the worst case attains "
               "the paper's bound exactly; without it, writes after the "
               "final lock request add one more copy per entity)\n";

  Section("Variable copies vs n (|L| = 4)");
  Table v({"n", "bound n*|L|", "MCS", "total-restart", "sdg"});
  for (std::size_t n : {2, 4, 8, 16, 32}) {
    auto mcs = WorstCase(StrategyKind::kMcs, n, true);
    auto total = WorstCase(StrategyKind::kTotalRestart, n, true);
    auto sdg = WorstCase(StrategyKind::kSdg, n, true);
    v.AddRow(n, n * 4, mcs.var_copies, total.var_copies, sdg.var_copies);
  }
  v.Print();

  Section("SDG metadata (write-log entries) — bookkeeping, not copies");
  Table s({"n", "sdg metadata entries", "sdg entity copies"});
  for (std::size_t n : {4, 16, 64}) {
    auto sdg = WorstCase(StrategyKind::kSdg, n, false);
    s.AddRow(n, sdg.metadata_entries, sdg.entity_copies);
  }
  s.Print();
  std::cout << "(paper: the SDG implementation needs \"no more storage "
               "overhead than that required for total removal and "
               "restart\")\n";
}

void BM_McsWorstCase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto stats = WorstCase(StrategyKind::kMcs, n, true);
    benchmark::DoNotOptimize(stats.entity_copies);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_McsWorstCase)->Range(4, 128)->Complexity();

void BM_SdgWorstCase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto stats = WorstCase(StrategyKind::kSdg, n, true);
    benchmark::DoNotOptimize(stats.entity_copies);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SdgWorstCase)->Range(4, 128)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

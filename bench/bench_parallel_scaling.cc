// Sharded parallel scaling: aggregate throughput of par::RunSharded at
// 1/2/4/8 shards on a low-cross-shard workload.
//
// The speedup has two sources. On multi-core hardware the shards run
// concurrently. Independently of core count, a single engine's per-step
// cost grows with its transaction population (scheduler scans, lock
// table, waits-for graph), so splitting one 2400-transaction run into
// four 600-transaction shards does strictly less work even serialized —
// the same observation that makes Brook-2PL structure execution around
// partitions.
//
// Besides the table, the run writes machine-readable BENCH_parallel.json
// (array of per-shard-count objects with elapsed time, throughput,
// speedup and the full sharded report).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/table_util.h"
#include "par/report_json.h"
#include "par/sharded_driver.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;

par::ShardedOptions Base(std::uint32_t shards, std::uint64_t total_txns) {
  par::ShardedOptions opt;
  opt.num_shards = shards;
  opt.workload.num_entities = 256;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.workload.ops_per_entity = 2;
  opt.workload.zipf_theta = 0.2;
  opt.cross_shard_fraction = 0.05;  // low-cross-shard regime
  opt.concurrency = 32;
  opt.total_txns = total_txns;
  opt.seed = 21;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  // Baselines predate locks-mode cross-shard execution; pin the original
  // replica routing (bench_cross_shard covers the locks path).
  opt.xshard = par::XShardMode::kReplica;
  return opt;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void PrintReproduction() {
  Section("Aggregate throughput vs shard count (2400 txns, 5% cross-shard)");
  Table t({"shards", "committed", "cross-shard frac", "deadlocks",
           "rollbacks", "elapsed (s)", "txns/s", "speedup vs 1"});
  std::ofstream json("BENCH_parallel.json");
  json << "[\n";
  double base_elapsed = 0.0;
  bool first = true;
  for (std::uint32_t shards : {1, 2, 4, 8}) {
    const auto opt = Base(shards, 2400);
    // Median of 3: the speedup gate in check_bench_regression.py compares
    // single numbers, and one descheduled run would dominate a lone sample.
    std::vector<double> times;
    Result<par::ShardedReport> rep = par::RunSharded(opt);
    for (int round = 0; round < 3; ++round) {
      const auto start = std::chrono::steady_clock::now();
      rep = par::RunSharded(opt);
      times.push_back(Seconds(start, std::chrono::steady_clock::now()));
    }
    if (!rep.ok()) {
      std::cerr << "sharded run failed: " << rep.status() << "\n";
      continue;
    }
    std::sort(times.begin(), times.end());
    const double elapsed = times[times.size() / 2];
    if (shards == 1) base_elapsed = elapsed;
    const double speedup = elapsed > 0 ? base_elapsed / elapsed : 0.0;
    t.AddRow(shards, rep->committed, rep->cross_shard_fraction,
             rep->aggregate.deadlocks, rep->aggregate.rollbacks, elapsed,
             elapsed > 0 ? static_cast<double>(rep->committed) / elapsed : 0.0,
             speedup);
    json << (first ? "" : ",\n") << " {\"shards\":" << shards
         << ",\"elapsed_seconds\":" << elapsed << ",\"txns_per_second\":"
         << (elapsed > 0 ? static_cast<double>(rep->committed) / elapsed : 0.0)
         << ",\"speedup_vs_1\":" << speedup << ",\n  \"report\":\n"
         << par::ShardedReportToJson(rep.value(), 2) << "}";
    first = false;
  }
  json << "\n]\n";
  t.Print();
  std::cout << "(wrote BENCH_parallel.json; per-shard determinism means the "
               "report part is identical across repeated runs — only the "
               "timings vary)\n";
}

// Pipelined admission vs batch phase 1 at 8 shards: generation + routing
// stream into per-shard bounded queues while the shards execute, instead
// of materializing all 2400 programs first. Wall-clock speedup needs
// enough cores to give the producer its own CPU; the deterministic
// signals — byte-identical report JSON and the overlap fraction (the
// share of generation work provably emitted after execution started,
// sum_s max(0, assigned_s - capacity) / total) — hold on any host and
// are what check_bench_regression.py gates on single-CPU runners.
void PrintPipelineComparison() {
  constexpr int kRounds = 3;
  struct ModeResult {
    double elapsed = 0.0;
    std::uint64_t committed = 0;
    par::AdmissionStats admission;
    std::string report_json;
    bool ok = false;
  };
  auto run = [](bool pipeline) {
    ModeResult r;
    auto opt = Base(8, 2400);
    opt.pipeline = pipeline;
    (void)par::RunSharded(opt);  // warm-up
    std::vector<double> times;
    Result<par::ShardedReport> rep = Status::Internal("no rounds");
    for (int round = 0; round < kRounds; ++round) {
      const auto start = std::chrono::steady_clock::now();
      rep = par::RunSharded(opt);
      times.push_back(Seconds(start, std::chrono::steady_clock::now()));
      if (!rep.ok()) return r;
    }
    std::sort(times.begin(), times.end());
    r.elapsed = times[times.size() / 2];
    r.committed = rep->committed;
    r.admission = rep->admission;  // overlap/peak deterministic across rounds
    r.report_json = par::ShardedReportToJson(rep.value());
    r.ok = true;
    return r;
  };
  const ModeResult batch = run(false);
  const ModeResult piped = run(true);
  if (!batch.ok || !piped.ok) {
    std::cerr << "pipeline comparison failed\n";
    return;
  }
  const double speedup =
      piped.elapsed > 0 ? batch.elapsed / piped.elapsed : 0.0;
  const bool identical = batch.report_json == piped.report_json;
  if (!identical) {
    // Leave both sides on disk so the regression gate can report the first
    // differing key path instead of a bare boolean.
    std::ofstream("BENCH_parallel_pipeline_report_batch.json")
        << batch.report_json;
    std::ofstream("BENCH_parallel_pipeline_report_pipelined.json")
        << piped.report_json;
  }

  Section("Pipelined admission vs batch generation (8 shards, 2400 txns)");
  Table t({"mode", "committed", "elapsed (s)", "generate (s)", "execute (s)",
           "overlap frac", "peak materialized", "speedup vs batch"});
  t.AddRow("batch", batch.committed, batch.elapsed,
           batch.admission.generate_seconds, batch.admission.execute_seconds,
           batch.admission.overlap_fraction,
           batch.admission.peak_materialized_programs, 1.0);
  t.AddRow("pipelined", piped.committed, piped.elapsed,
           piped.admission.generate_seconds, piped.admission.execute_seconds,
           piped.admission.overlap_fraction,
           piped.admission.peak_materialized_programs, speedup);
  t.Print();
  std::cout << "(report JSON identical to batch: " << (identical ? "yes" : "NO")
            << "; overlap fraction and peak materialized are deterministic, "
               "timings vary with the host)\n";

  std::ofstream json("BENCH_parallel_pipeline.json");
  json << "{\"shards\":8,\"total_txns\":2400,\"queue_capacity\":"
       << piped.admission.queue_capacity
       << ",\n \"batch\":{\"elapsed_seconds\":" << batch.elapsed
       << ",\"generate_seconds\":" << batch.admission.generate_seconds
       << ",\"execute_seconds\":" << batch.admission.execute_seconds
       << ",\"committed\":" << batch.committed
       << ",\"peak_materialized_programs\":"
       << batch.admission.peak_materialized_programs
       << ",\"overlap_fraction\":" << batch.admission.overlap_fraction
       << "},\n \"pipelined\":{\"elapsed_seconds\":" << piped.elapsed
       << ",\"generate_seconds\":" << piped.admission.generate_seconds
       << ",\"execute_seconds\":" << piped.admission.execute_seconds
       << ",\"committed\":" << piped.committed
       << ",\"peak_materialized_programs\":"
       << piped.admission.peak_materialized_programs
       << ",\"overlap_fraction\":" << piped.admission.overlap_fraction
       << ",\"producer_blocked_pushes\":"
       << piped.admission.producer_blocked_pushes
       << "},\n \"speedup_vs_batch\":" << speedup
       << ",\"report_json_identical_to_batch\":"
       << (identical ? "true" : "false") << "}\n";
}

// Telemetry overhead: the same 4-shard run with the metric probes attached
// (counters, sampled timers — trace sink disabled, the production default)
// against ShardedOptions::instrument = false, plus a third variant adding
// the D13 lifecycle timelines on top of the instrumented run, plus a
// fourth adding the D14 decision journal on top of that (the shipping
// default). Medians of `kRounds` alternating runs keep scheduler noise out
// of the comparison. The budget is 5% for each increment;
// BENCH_parallel_overhead.json records all verdicts and
// check_bench_regression.py gates on them.
void PrintInstrumentationOverhead() {
  constexpr int kRounds = 5;
  auto once = [](bool instrument, bool txnlife, bool journal) {
    auto opt = Base(4, 2400);
    opt.instrument = instrument;
    opt.txnlife = txnlife;
    opt.journal = journal;
    const auto start = std::chrono::steady_clock::now();
    auto rep = par::RunSharded(opt);
    const double elapsed = Seconds(start, std::chrono::steady_clock::now());
    if (!rep.ok()) {
      std::cerr << "sharded run failed: " << rep.status() << "\n";
      return -1.0;
    }
    return elapsed;
  };
  (void)once(false, false, false);  // warm-up
  std::vector<double> off, on, life, jrnl;
  for (int i = 0; i < kRounds; ++i) {
    off.push_back(once(false, false, false));
    on.push_back(once(true, false, false));
    life.push_back(once(true, true, false));
    jrnl.push_back(once(true, true, true));
  }
  // Minimum, not median: host interference only ever adds time, so the
  // fastest round is the least-contaminated estimate of each variant's
  // true cost and the overhead ratios stay stable on noisy CI runners.
  const double base = *std::min_element(off.begin(), off.end());
  const double instr = *std::min_element(on.begin(), on.end());
  const double timeline = *std::min_element(life.begin(), life.end());
  const double journal = *std::min_element(jrnl.begin(), jrnl.end());
  const double overhead_pct =
      base > 0 ? (instr - base) / base * 100.0 : 0.0;
  // Timeline increment against the instrumented run it rides on, not the
  // bare baseline — the question is what the D13 stamps add.
  const double timeline_overhead_pct =
      instr > 0 ? (timeline - instr) / instr * 100.0 : 0.0;
  // Journal increment against the timeline run it rides on, likewise:
  // what do the D14 decision records + epoch checksums add to the
  // shipping-default observer stack?
  const double journal_overhead_pct =
      timeline > 0 ? (journal - timeline) / timeline * 100.0 : 0.0;

  Section("Telemetry overhead (4 shards, min of 5)");
  Table t({"variant", "elapsed (s)", "overhead (%)"});
  t.AddRow("instrument=off", base, 0.0);
  t.AddRow("instrument=on", instr, overhead_pct);
  t.AddRow("  + txnlife", timeline, timeline_overhead_pct);
  t.AddRow("  + journal", journal, journal_overhead_pct);
  t.Print();
  std::cout << "(budget: 5% per increment; trace collection stays off in "
               "all variants; txnlife overhead is measured against the "
               "instrumented run, journal overhead against the txnlife "
               "run)\n";

  std::ofstream json("BENCH_parallel_overhead.json");
  json << "{\"baseline_seconds\":" << base
       << ",\"instrumented_seconds\":" << instr
       << ",\"overhead_pct\":" << overhead_pct
       << ",\"timeline_seconds\":" << timeline
       << ",\"timeline_overhead_pct\":" << timeline_overhead_pct
       << ",\"journal_seconds\":" << journal
       << ",\"journal_overhead_pct\":" << journal_overhead_pct
       << ",\"budget_pct\":5}\n";
}

// Skew-adaptive scheduling: time-slicing + stealing + LPT submission
// against legacy run-to-completion on a skewed 8-shard / 4-worker
// workload. Two hot shards arise naturally: shard 0 homes the
// Zipf(0.9)-hot keys (hot_shard_routing) and shard 7 is the coordinator
// for a 20% cross-shard mix. Run-to-completion pulls shards in index
// order, so the heavy coordinator starts only after a wave of light
// shards — the Graham list-scheduling pathology. The comparison is pinned
// on SchedulerStats::virtual_makespan_steps, which is bit-deterministic
// on any machine (wall-clock is reported for information; on few-core
// hosts it mostly reflects the serial step total, which both schedulers
// share exactly). A uniform low-cross-shard config guards the other
// side: time-slicing's quantum bookkeeping must not cost wall time.
par::ShardedOptions SkewBase(double zipf_theta, par::ShardScheduler sched) {
  auto opt = Base(8, 2400);
  // Batch admission: the LPT (longest-assigned-first) submission order this
  // comparison was pinned with needs the full routing counts up front,
  // which only the batch path has. Streaming admission submits shards in
  // index order as their queues fill.
  opt.pipeline = false;
  opt.num_threads = 4;
  opt.workload.zipf_theta = zipf_theta;
  opt.cross_shard_fraction = 0.2;
  opt.coordinator_shard = 7;
  opt.hot_shard_routing = true;
  opt.scheduler = sched;
  return opt;
}

void PrintSkewComparison() {
  Section(
      "Skew-adaptive scheduler vs run-to-completion (8 shards / 4 workers)");
  Table t({"zipf", "scheduler", "committed", "virtual makespan (steps)",
           "virtual speedup", "elapsed (s)", "steals"});
  std::ofstream json("BENCH_parallel_skew.json");
  json << "[\n";
  bool first = true;
  for (double zipf : {0.0, 0.9}) {
    std::uint64_t rtc_makespan = 0;
    for (auto sched : {par::ShardScheduler::kRunToCompletion,
                       par::ShardScheduler::kTimeSlice}) {
      const bool rtc = sched == par::ShardScheduler::kRunToCompletion;
      const auto opt = SkewBase(zipf, sched);
      const auto start = std::chrono::steady_clock::now();
      auto rep = par::RunSharded(opt);
      const double elapsed = Seconds(start, std::chrono::steady_clock::now());
      if (!rep.ok()) {
        std::cerr << "sharded run failed: " << rep.status() << "\n";
        continue;
      }
      const std::uint64_t makespan = rep->scheduler.virtual_makespan_steps;
      if (rtc) rtc_makespan = makespan;
      const double speedup =
          makespan > 0 ? static_cast<double>(rtc_makespan) /
                             static_cast<double>(makespan)
                       : 0.0;
      t.AddRow(zipf, rtc ? "run-to-completion" : "timeslice+steal",
               rep->committed, makespan, speedup, elapsed,
               rep->scheduler.steals);
      json << (first ? "" : ",\n") << " {\"zipf_theta\":" << zipf
           << ",\"scheduler\":\"" << (rtc ? "rtc" : "timeslice") << "\""
           << ",\"committed\":" << rep->committed
           << ",\"virtual_makespan_steps\":" << makespan
           << ",\"virtual_speedup_vs_rtc\":" << speedup
           << ",\"elapsed_seconds\":" << elapsed
           << ",\"steals\":" << rep->scheduler.steals << "}";
      first = false;
    }
  }
  json << "\n]\n";
  t.Print();
  std::cout << "(wrote BENCH_parallel_skew.json; committed counts and "
               "virtual makespans are deterministic — elapsed and steals "
               "vary with the host)\n";
}

void BM_ShardedThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto rep = par::RunSharded(Base(shards, 400));
    if (!rep.ok()) state.SkipWithError("sharded run failed");
    benchmark::DoNotOptimize(rep->committed);
  }
  state.counters["shards"] = shards;
}
BENCHMARK(BM_ShardedThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  PrintPipelineComparison();
  PrintSkewComparison();
  PrintInstrumentationOverhead();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

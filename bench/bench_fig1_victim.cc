// E1 — Figure 1: cost-optimal victim selection with exclusive locks.
//
// Reproduces the paper's worked example exactly (rollback costs 12-8=4 for
// T2, 11-5=6 for T3, 15-10=5 for T4; T2 chosen; T1 stops waiting for T2),
// sweeps the victim policy to show what each would have chosen, and then
// times deadlock detection+resolution on the scenario.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench/table_util.h"
#include "core/engine.h"
#include "sim/scenario.h"

namespace {

using namespace pardb;  // bench binaries favor brevity
using bench::Section;
using bench::Table;
using core::EngineOptions;
using core::VictimPolicyKind;
using sim::BuildFigure1;

EngineOptions Options(VictimPolicyKind policy,
                      rollback::StrategyKind strategy =
                          rollback::StrategyKind::kMcs) {
  EngineOptions opt;
  opt.victim_policy = policy;
  opt.strategy = strategy;
  return opt;
}

void PrintReproduction() {
  Section("Figure 1(a): rollback costs and chosen victim (min-cost, MCS)");
  auto fig = BuildFigure1(Options(VictimPolicyKind::kMinCost));
  if (!fig.ok()) {
    std::cerr << "scenario failed: " << fig.status() << "\n";
    return;
  }
  (void)fig->TriggerDeadlock();
  const auto& ev = fig->runner->engine().deadlock_events().at(0);

  Table t({"txn", "holds", "waits (state)", "locked at state", "cost",
           "paper"});
  std::map<TxnId, const core::VictimCandidate*> by_txn;
  for (const auto& c : ev.candidates) by_txn[c.txn] = &c;
  t.AddRow("T2", "b", "e (12)", 8, by_txn[fig->t2]->cost, "12-8=4");
  t.AddRow("T3", "c", "b (11)", 5, by_txn[fig->t3]->cost, "11-5=6");
  t.AddRow("T4", "e", "c (15)", 10, by_txn[fig->t4]->cost, "15-10=5");
  t.Print();
  std::cout << "victim: T" << ev.victims.at(0).value() - fig->t1.value() + 1
            << " (paper: T2), rolled back to state "
            << fig->runner->engine().StateIndexOf(fig->t2)
            << " (paper: 8)\n";
  std::cout << "T1 waiting after rollback: "
            << (fig->runner->engine().StatusOf(fig->t1) ==
                        core::TxnStatus::kReady
                    ? "no (paper: no)"
                    : "YES — MISMATCH")
            << "\n";

  Section("Victim-policy sweep on the same deadlock");
  Table p({"policy", "victim", "cost paid", "total rollback?"});
  for (auto policy :
       {VictimPolicyKind::kMinCost, VictimPolicyKind::kMinCostOrdered,
        VictimPolicyKind::kYoungest, VictimPolicyKind::kOldest,
        VictimPolicyKind::kRequester}) {
    auto f = BuildFigure1(Options(policy));
    if (!f.ok()) continue;
    (void)f->TriggerDeadlock();
    const auto& e = f->runner->engine().deadlock_events().at(0);
    std::string victim = "T" + std::to_string(e.victims.at(0).value() + 1);
    p.AddRow(std::string(core::VictimPolicyKindName(policy)), victim,
             e.total_cost,
             f->runner->engine().metrics().total_rollbacks > 0 ? "yes" : "no");
  }
  p.Print();

  Section("Rollback-strategy sweep (min-cost policy)");
  Table s({"strategy", "victim", "cost paid", "ideal cost",
           "overshoot (ops)"});
  for (auto strategy :
       {rollback::StrategyKind::kMcs, rollback::StrategyKind::kSdg,
        rollback::StrategyKind::kTotalRestart}) {
    auto f = BuildFigure1(Options(VictimPolicyKind::kMinCost, strategy));
    if (!f.ok()) continue;
    (void)f->TriggerDeadlock();
    const auto& e = f->runner->engine().deadlock_events().at(0);
    s.AddRow(std::string(rollback::StrategyKindName(strategy)),
             "T" + std::to_string(e.victims.at(0).value() + 1), e.total_cost,
             e.total_ideal_cost, e.total_cost - e.total_ideal_cost);
  }
  s.Print();
  std::cout << "\n(paper claim: partial rollback loses only the progress "
               "since the conflicting lock; total restart loses everything)\n";
}

void BM_Figure1BuildAndResolve(benchmark::State& state) {
  for (auto _ : state) {
    auto fig = BuildFigure1(Options(VictimPolicyKind::kMinCost));
    if (!fig.ok()) state.SkipWithError("scenario failed");
    benchmark::DoNotOptimize(fig->TriggerDeadlock());
  }
}
BENCHMARK(BM_Figure1BuildAndResolve);

void BM_Figure1ResolutionOnly(benchmark::State& state) {
  // Isolate detection+resolution by rebuilding outside the timed region.
  for (auto _ : state) {
    state.PauseTiming();
    auto fig = BuildFigure1(Options(VictimPolicyKind::kMinCost));
    if (!fig.ok()) state.SkipWithError("scenario failed");
    state.ResumeTiming();
    benchmark::DoNotOptimize(fig->TriggerDeadlock());
  }
}
BENCHMARK(BM_Figure1ResolutionOnly);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E12 — §3.3: partial rollback in distributed systems.
//
// The paper: global deadlock detection needs cross-site communication;
// timestamp schemes (an a priori ordering deciding wait-vs-rollback per
// conflict) avoid it, and "these mechanisms in no way invalidate the
// advantages of rolling a transaction back to the latest possible state in
// which the conflict necessitating the rollback no longer exists".
//
// Table 1: what global detection would cost — the fraction of real
// deadlocks whose cycle spans multiple sites (undetectable locally).
// Table 2: prevention schemes (wound-wait, wait-die) with total vs partial
// rollback extents: the partial variants resolve the same conflicts while
// re-executing far less work, reproducing the paper's claim.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "dist/distributed.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using core::DeadlockHandling;
using rollback::StrategyKind;

dist::DistOptions Base(std::uint64_t seed) {
  dist::DistOptions opt;
  opt.num_sites = 4;
  opt.workload.num_entities = 24;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 6;
  opt.workload.ops_per_entity = 3;
  opt.workload.zipf_theta = 0.6;
  opt.concurrency = 12;
  opt.total_txns = 400;
  opt.seed = seed;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  opt.engine.seed = seed;
  return opt;
}

void PrintReproduction() {
  Section("Deadlock locality under global detection (4 sites, 400 txns)");
  {
    Table t({"num sites", "deadlocks", "local", "multi-site",
             "multi-site fraction", "widest (sites)"});
    for (std::uint32_t sites : {1, 2, 4, 8}) {
      auto opt = Base(31);
      opt.num_sites = sites;
      opt.engine.handling = DeadlockHandling::kDetection;
      auto rep = dist::RunDistributed(opt);
      if (!rep.ok()) {
        std::cerr << "sim failed: " << rep.status() << "\n";
        continue;
      }
      t.AddRow(sites, rep->metrics.deadlocks, rep->deadlocks_local,
               rep->deadlocks_multi_site, rep->multi_site_fraction,
               rep->max_sites_in_deadlock);
    }
    t.Print();
    std::cout << "(paper: \"the occurrence of deadlocks involving a number "
                 "of sites cannot be detected\" without communicating the "
                 "concurrency graph)\n";
  }

  Section("Prevention schemes x rollback extent (same workload)");
  {
    Table t({"scheme", "rollback", "preempts (wound/die)", "rollbacks",
             "ops wasted", "wasted fraction", "goodput"});
    struct Row {
      DeadlockHandling handling;
      StrategyKind strategy;
    };
    const Row rows[] = {
        {DeadlockHandling::kDetection, StrategyKind::kMcs},
        {DeadlockHandling::kWoundWait, StrategyKind::kTotalRestart},
        {DeadlockHandling::kWoundWait, StrategyKind::kSdg},
        {DeadlockHandling::kWoundWait, StrategyKind::kMcs},
        {DeadlockHandling::kWaitDie, StrategyKind::kTotalRestart},
        {DeadlockHandling::kWaitDie, StrategyKind::kSdg},
        {DeadlockHandling::kWaitDie, StrategyKind::kMcs},
    };
    for (const Row& row : rows) {
      auto opt = Base(31);
      opt.engine.handling = row.handling;
      opt.engine.strategy = row.strategy;
      auto rep = dist::RunDistributed(opt);
      if (!rep.ok()) {
        std::cerr << "sim failed: " << rep.status() << "\n";
        continue;
      }
      t.AddRow(std::string(core::DeadlockHandlingName(row.handling)),
               std::string(rollback::StrategyKindName(row.strategy)),
               rep->metrics.wounds + rep->metrics.deaths,
               rep->metrics.rollbacks, rep->metrics.wasted_ops,
               rep->wasted_fraction, rep->goodput);
    }
    t.Print();
    std::cout << "(paper claim preserved: the timestamp schemes benefit "
                 "from partial rollback exactly as detection does — same "
                 "conflicts, far less re-executed work)\n";
  }
}

void BM_DistributedScheme(benchmark::State& state) {
  const auto handling = static_cast<DeadlockHandling>(state.range(0));
  for (auto _ : state) {
    auto opt = Base(7);
    opt.engine.handling = handling;
    opt.total_txns = 120;
    auto rep = dist::RunDistributed(opt);
    if (!rep.ok()) state.SkipWithError("sim failed");
    benchmark::DoNotOptimize(rep->metrics.wasted_ops);
  }
}
BENCHMARK(BM_DistributedScheme)
    ->Arg(static_cast<int>(DeadlockHandling::kDetection))
    ->Arg(static_cast<int>(DeadlockHandling::kWoundWait))
    ->Arg(static_cast<int>(DeadlockHandling::kWaitDie));

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

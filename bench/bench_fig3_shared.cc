// E3/E11 — Figure 3 and §3.2: shared+exclusive locks.
//
// Reproduces the three worked graphs: (a) an acyclic concurrency graph that
// is not a forest; (b) one request closing two cycles where either the
// requester or T2 clears everything; (c) two cycles whose only
// single-victim cut is the requester, otherwise both shared holders must
// roll back. Then ablates the §3.2 cut optimisation (exact branch-and-bound
// vs greedy vs requester-always) on random multi-cycle instances — the
// problem the paper observes to be NP-complete.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "common/random.h"
#include "core/vertex_cut.h"
#include "sim/driver.h"
#include "sim/scenario.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using core::EngineOptions;
using core::VictimPolicyKind;

EngineOptions Options(VictimPolicyKind policy, bool cut = true) {
  EngineOptions opt;
  opt.victim_policy = policy;
  opt.optimize_vertex_cut = cut;
  return opt;
}

std::string VictimNames(const std::vector<TxnId>& victims) {
  std::string out;
  for (TxnId v : victims) {
    if (!out.empty()) out += "+";
    out += "T" + std::to_string(v.value() + 1);
  }
  return out;
}

void PrintReproduction() {
  Section("Figure 3(a): acyclic concurrency graph that is not a forest");
  {
    auto fig = sim::BuildFigure3a(Options(VictimPolicyKind::kMinCost));
    if (!fig.ok()) {
      std::cerr << "scenario failed: " << fig.status() << "\n";
    } else {
      const auto& g = fig->runner->engine().waits_for();
      Table t({"property", "measured", "paper"});
      t.AddRow("acyclic", g.IsAcyclic() ? "yes" : "no", "yes (no deadlock)");
      t.AddRow("forest", g.IsForest() ? "yes" : "no",
               "no (T3 waits for two holders)");
      t.AddRow("T3 in-degree", g.InDegree(fig->t3.value()), "2");
      t.Print();
    }
  }

  Section("Figure 3(b): one wait closes two cycles — victim choices");
  {
    Table t({"policy", "cycles", "victims", "cost", "all commit after"});
    for (auto policy :
         {VictimPolicyKind::kRequester, VictimPolicyKind::kMinCost}) {
      auto fig = sim::BuildFigure3b(Options(policy));
      if (!fig.ok()) continue;
      (void)fig->TriggerDeadlock();
      const auto& ev = fig->runner->engine().deadlock_events().at(0);
      bool done = fig->runner->FinishAll().ok();
      t.AddRow(std::string(core::VictimPolicyKindName(policy)), ev.num_cycles,
               VictimNames(ev.victims), ev.total_cost, done ? "yes" : "no");
    }
    t.Print();
    std::cout << "(paper: all cycles include T1; rollback of T1 or of T2 "
                 "removes every deadlock)\n";
  }

  Section("Figure 3(c): requester vs both shared holders");
  {
    Table t({"mode", "cycles", "victims", "cost"});
    {
      auto fig = sim::BuildFigure3c(Options(VictimPolicyKind::kMinCost));
      if (fig.ok()) {
        (void)fig->TriggerDeadlock();
        const auto& ev = fig->runner->engine().deadlock_events().at(0);
        t.AddRow("min-cost vertex cut", ev.num_cycles,
                 VictimNames(ev.victims), ev.total_cost);
      }
    }
    {
      auto fig = sim::BuildFigure3c(
          Options(VictimPolicyKind::kMinCost, /*cut=*/false));
      if (fig.ok()) {
        (void)fig->TriggerDeadlock();
        const auto& ev = fig->runner->engine().deadlock_events().at(0);
        t.AddRow("requester only", ev.num_cycles, VictimNames(ev.victims),
                 ev.total_cost);
      }
    }
    t.Print();
    std::cout << "(paper: \"in 3(c) both T2 and T3 would need to be rolled "
                 "back if T1 is not\")\n";
  }

  Section("Cut ablation on a shared-lock workload (200 txns, 50% shared)");
  {
    Table t({"mode", "deadlocks", "rollbacks", "wasted ops",
             "wasted fraction"});
    for (bool cut : {true, false}) {
      sim::SimOptions opt;
      opt.engine.victim_policy = VictimPolicyKind::kMinCostOrdered;
      opt.engine.optimize_vertex_cut = cut;
      opt.workload.num_entities = 8;
      opt.workload.min_locks = 3;
      opt.workload.max_locks = 5;
      opt.workload.shared_fraction = 0.5;
      opt.concurrency = 8;
      opt.total_txns = 200;
      opt.seed = 99;
      opt.check_serializability = false;
      auto rep = sim::RunSimulation(opt);
      if (!rep.ok()) {
        std::cerr << "sim failed: " << rep.status() << "\n";
        continue;
      }
      t.AddRow(cut ? "vertex-cut optimised" : "requester-always",
               rep->metrics.deadlocks, rep->metrics.rollbacks,
               rep->metrics.wasted_ops, rep->wasted_fraction);
    }
    t.Print();
  }
}

// Exact vs greedy hitting-set cost/latency on random instances shaped like
// §3.2 deadlocks: k cycles all sharing member 0 (the requester).
void MakeInstance(std::size_t k, std::size_t members_per_cycle,
                  std::uint64_t seed,
                  std::vector<std::vector<std::size_t>>* cycles,
                  std::vector<std::uint64_t>* costs) {
  Rng rng(seed);
  const std::size_t universe = 1 + k * members_per_cycle;
  costs->clear();
  for (std::size_t i = 0; i < universe; ++i) {
    costs->push_back(1 + rng.Uniform(40));
  }
  cycles->clear();
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<std::size_t> cyc{0};  // the requester is on every cycle
    for (std::size_t m = 0; m < members_per_cycle; ++m) {
      cyc.push_back(1 + rng.Uniform(universe - 1));
    }
    std::sort(cyc.begin(), cyc.end());
    cyc.erase(std::unique(cyc.begin(), cyc.end()), cyc.end());
    cycles->push_back(std::move(cyc));
  }
}

void BM_VertexCutExact(benchmark::State& state) {
  std::vector<std::vector<std::size_t>> cycles;
  std::vector<std::uint64_t> costs;
  MakeInstance(static_cast<std::size_t>(state.range(0)), 3, 7, &cycles,
               &costs);
  std::uint64_t total = 0;
  for (auto _ : state) {
    auto r = core::SolveVertexCut(cycles, costs, /*exact_limit=*/1024);
    total = r.total_cost;
    benchmark::DoNotOptimize(r);
  }
  state.counters["cut_cost"] = static_cast<double>(total);
}
BENCHMARK(BM_VertexCutExact)->Arg(2)->Arg(4)->Arg(8);

void BM_VertexCutGreedy(benchmark::State& state) {
  std::vector<std::vector<std::size_t>> cycles;
  std::vector<std::uint64_t> costs;
  MakeInstance(static_cast<std::size_t>(state.range(0)), 3, 7, &cycles,
               &costs);
  std::uint64_t total = 0;
  for (auto _ : state) {
    auto r = core::SolveVertexCut(cycles, costs, /*exact_limit=*/0);
    total = r.total_cost;
    benchmark::DoNotOptimize(r);
  }
  state.counters["cut_cost"] = static_cast<double>(total);
}
BENCHMARK(BM_VertexCutGreedy)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

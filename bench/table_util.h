#ifndef PARDB_BENCH_TABLE_UTIL_H_
#define PARDB_BENCH_TABLE_UTIL_H_

// Aligned-column table printer for the paper-reproduction sections of the
// benchmark binaries. Each bench prints the rows/series the paper reports
// before running its google-benchmark timings.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pardb::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Ts>
  void AddRow(const Ts&... cells) {
    std::vector<std::string> row;
    (row.push_back(ToCell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    // GFM pipe table: every row line is `| cell | cell |` with cells
    // padded to the column width, and the separator carries exactly the
    // same width in dashes (width + 2 for the padding spaces), so the
    // pipes line up even when a data cell is wider than its header.
    auto PrintRow = [&](const std::vector<std::string>& row) {
      os << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
           << (i < row.size() ? row[i] : "") << " |";
      }
      os << "\n";
    };
    PrintRow(headers_);
    os << "|";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  template <typename T>
  static std::string ToCell(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return v;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << v;
      return os.str();
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace pardb::bench

#endif  // PARDB_BENCH_TABLE_UTIL_H_

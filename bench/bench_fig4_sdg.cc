// E7 — Figure 4 and Theorem 4: the state-dependency graph and well-defined
// states.
//
// Reproduces the paper's example: a six-lock transaction with scattered
// writes has *no* nontrivial well-defined state (every interior lock state
// is destroyed by a straddling write), and deleting a single local-variable
// write (the paper's "C <- K") makes lock states 4 and 5 well-defined.
// Cross-checks the interval implementation against the literal
// articulation-point formulation of Corollary 1, and times both.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "common/random.h"
#include "graph/undirected.h"
#include "rollback/sdg.h"
#include "sim/scenario.h"
#include "storage/entity_store.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using rollback::StateDependencyGraph;

std::string StatesToString(const std::vector<LockIndex>& states) {
  std::string out = "{";
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(states[i]);
  }
  return out + "}";
}

void PrintReproduction() {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);

  Section("Figure 4: well-defined states of the scattered transaction");
  Table t({"program", "lock states", "well-defined states", "paper"});
  {
    auto p = sim::MakeFigure4Program(ids, /*omit_second_var_write=*/false);
    auto sdg = rollback::BuildSdgForProgram(p);
    t.AddRow("T1 (scattered)", sdg.NumLockStates(),
             StatesToString(sdg.WellDefinedStates()),
             "only trivial states");
  }
  {
    auto p = sim::MakeFigure4Program(ids, /*omit_second_var_write=*/true);
    auto sdg = rollback::BuildSdgForProgram(p);
    t.AddRow("T1 minus \"C <- K\"", sdg.NumLockStates(),
             StatesToString(sdg.WellDefinedStates()),
             "lock state 4 becomes well-defined");
  }
  {
    auto p = sim::MakeFigure5Program(ids);
    auto sdg = rollback::BuildSdgForProgram(p);
    t.AddRow("T2 (Figure 5, clustered)", sdg.NumLockStates(),
             StatesToString(sdg.WellDefinedStates()), "every state");
  }
  t.Print();

  Section("State-dependency graph of T1 (paper Figure 4(b), DOT)");
  auto p = sim::MakeFigure4Program(ids, false);
  auto sdg = rollback::BuildSdgForProgram(p);
  std::cout << sdg.ToUndirectedGraph().ToDot();

  Section("Corollary 1 cross-check: interval method == articulation points");
  Rng rng(5);
  std::size_t checked = 0, mismatches = 0;
  for (int trial = 0; trial < 500; ++trial) {
    StateDependencyGraph g;
    const LockIndex n = 3 + rng.Uniform(12);
    for (LockIndex q = 0; q < n; ++q) g.AddLockState(q);
    LockIndex m = 1;
    while (m < n) {
      if (rng.Bernoulli(0.5)) g.RecordWrite(rng.Uniform(m + 1), m);
      if (rng.Bernoulli(0.5)) ++m;
    }
    auto cuts = g.ToUndirectedGraph().ArticulationPoints();
    std::set<LockIndex> cut_set(cuts.begin(), cuts.end());
    for (LockIndex q = 1; q + 1 < n; ++q) {
      ++checked;
      if (g.IsWellDefined(q) != (cut_set.count(q) > 0)) ++mismatches;
    }
  }
  std::cout << checked << " interior states checked across 500 random "
            << "graphs, " << mismatches << " mismatches\n";
}

// Timing: maintaining the SDG (the paper claims "the overhead in
// maintaining a state dependency graph is clearly very low").
void BM_SdgMaintainAndQuery(benchmark::State& state) {
  const LockIndex n = static_cast<LockIndex>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    StateDependencyGraph g;
    for (LockIndex q = 0; q < n; ++q) {
      g.AddLockState(q);
      if (q > 0 && rng.Bernoulli(0.7)) {
        g.RecordWrite(rng.Uniform(q + 1), q);
      }
    }
    benchmark::DoNotOptimize(g.LatestWellDefinedAtOrBefore(n - 1));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SdgMaintainAndQuery)->Range(8, 512)->Complexity();

// The literal articulation-point recomputation, for comparison.
void BM_SdgArticulationRecompute(benchmark::State& state) {
  const LockIndex n = static_cast<LockIndex>(state.range(0));
  Rng rng(11);
  StateDependencyGraph g;
  for (LockIndex q = 0; q < n; ++q) {
    g.AddLockState(q);
    if (q > 0 && rng.Bernoulli(0.7)) g.RecordWrite(rng.Uniform(q + 1), q);
  }
  for (auto _ : state) {
    auto ug = g.ToUndirectedGraph();
    benchmark::DoNotOptimize(ug.ArticulationPoints());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SdgArticulationRecompute)->Range(8, 512)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Single-engine hot-path benchmark for the data-oriented rewrite (D15).
//
// Four measurements, all on one shard / one thread:
//
//   1. lock/release micro — raw LockManager Request/ReleaseInto ops/sec on
//      disjoint exclusive locks, with a heap-allocation counter proving the
//      warm grant/release fast path performs zero allocations per op.
//   2. rollback micro — deterministic two-transaction deadlock pairs
//      (T_a: LX e0, LX e1; T_b: LX e1, LX e0 under round-robin stepping),
//      measuring full detect+rollback+re-execute cycles per second.
//   3. end-to-end — the pinned 1-shard workload of bench_parallel_scaling
//      (256 entities, zipf 0.2, concurrency 32, 2400 txns, seed 21) with
//      programs pre-generated outside the timed region, so the number is
//      engine execution throughput, not workload generation. Median of 3.
//   4. steady-state allocation audit — a warm engine stepping lock-only
//      transactions; allocations per step in the counted window must be 0.
//
// Deterministic fields (committed/steps/rollbacks and the per-op counts)
// are identical on every host and every run; only the timings vary. The
// run writes BENCH_hotpath.json and tools/check_bench_regression.py gates
// on the deterministic fields, the zero-allocation invariants and the
// end-to-end throughput floor against bench/baselines/BENCH_hotpath.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/table_util.h"
#include "core/engine.h"
#include "lock/lock_manager.h"
#include "sim/workload.h"
#include "storage/entity_store.h"
#include "txn/compiled.h"
#include "txn/program.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing operator new/delete in the benchmark
// binary lets the fast-path sections assert "zero heap allocations per op"
// directly instead of inferring it from profiles.
// ---------------------------------------------------------------------------

static std::atomic<std::uint64_t> g_heap_allocs{0};

static void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;

std::uint64_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// --no-compile-cache: run the engine sections on the fallback interpreter
// instead of compiled µop streams (the D16 ablation; results are
// bit-identical, only the timings move). The regression gate reads the
// "enabled" field and skips the compile-cost checks on the off leg.
bool g_compile_programs = true;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ---------------------------------------------------------------------------
// 1. Lock/release micro.
// ---------------------------------------------------------------------------

struct LockMicroResult {
  std::uint64_t ops = 0;
  double elapsed = 0.0;
  double ops_per_second = 0.0;
  double allocs_per_op = 0.0;  // must be exactly 0 on the warm fast path
};

LockMicroResult RunLockReleaseMicro() {
  constexpr std::size_t kTxns = 64;
  constexpr std::size_t kLocksPerTxn = 4;
  constexpr std::size_t kRounds = 4000;

  lock::LockManager lm;
  lm.ReserveEntities(kTxns * kLocksPerTxn);
  lm.ReserveTxns(kTxns);
  std::vector<lock::Grant> grants;
  grants.reserve(kLocksPerTxn);

  auto Round = [&]() {
    for (std::size_t t = 0; t < kTxns; ++t) {
      for (std::size_t k = 0; k < kLocksPerTxn; ++k) {
        auto r = lm.Request(TxnId(t), EntityId(t * kLocksPerTxn + k),
                            lock::LockMode::kExclusive);
        if (!r.ok() || !r.value().granted) std::abort();
      }
    }
    for (std::size_t t = 0; t < kTxns; ++t) {
      for (std::size_t k = 0; k < kLocksPerTxn; ++k) {
        grants.clear();
        Status s = lm.ReleaseInto(TxnId(t), EntityId(t * kLocksPerTxn + k),
                                  &grants);
        if (!s.ok()) std::abort();
      }
    }
  };

  Round();  // warm: first-touch growth of the flat table and queues
  std::vector<double> times;
  times.reserve(3);  // keep the harness's own bookkeeping out of the count
  std::uint64_t allocs = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t a0 = HeapAllocs();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRounds; ++i) Round();
    const auto stop = std::chrono::steady_clock::now();
    allocs = HeapAllocs() - a0;  // identical every rep; keep the last
    times.push_back(Seconds(start, stop));
  }

  LockMicroResult r;
  r.ops = static_cast<std::uint64_t>(kRounds) * kTxns * kLocksPerTxn * 2;
  r.elapsed = Median(times);
  r.ops_per_second = r.elapsed > 0 ? r.ops / r.elapsed : 0.0;
  r.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(r.ops);
  return r;
}

// ---------------------------------------------------------------------------
// 2. Rollback micro.
// ---------------------------------------------------------------------------

struct RollbackMicroResult {
  std::uint64_t pairs = 0;
  std::uint64_t rollbacks = 0;  // deterministic
  std::uint64_t deadlocks = 0;  // deterministic
  double elapsed = 0.0;
  double rollbacks_per_second = 0.0;
};

RollbackMicroResult RunRollbackMicro() {
  constexpr std::uint64_t kPairs = 1000;

  // Pre-build the programs once; each pair gets a disjoint entity pair and
  // opposite acquisition order, so round-robin stepping deadlocks every
  // pair exactly once, deterministically.
  std::vector<std::shared_ptr<const txn::Program>> programs;
  programs.reserve(2 * kPairs);
  for (std::uint64_t i = 0; i < kPairs; ++i) {
    const EntityId e0(2 * i), e1(2 * i + 1);
    txn::ProgramBuilder a("dl_a");
    auto pa = a.LockExclusive(e0).LockExclusive(e1).Commit().Build();
    txn::ProgramBuilder b("dl_b");
    auto pb = b.LockExclusive(e1).LockExclusive(e0).Commit().Build();
    if (!pa.ok() || !pb.ok()) std::abort();
    programs.push_back(
        std::make_shared<const txn::Program>(std::move(pa).value()));
    programs.push_back(
        std::make_shared<const txn::Program>(std::move(pb).value()));
  }

  RollbackMicroResult r;
  r.pairs = kPairs;
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) {
    storage::EntityStore store;
    store.CreateMany(2 * kPairs, 0);
    core::EngineOptions eopt;
    eopt.scheduler = core::SchedulerKind::kRoundRobin;
    eopt.compile_programs = g_compile_programs;
    core::Engine engine(&store, eopt, nullptr);
    engine.ReserveTxns(2 * kPairs);
    for (const auto& p : programs) {
      if (!engine.Spawn(p).ok()) std::abort();
    }
    const auto start = std::chrono::steady_clock::now();
    if (!engine.RunToCompletion().ok()) std::abort();
    times.push_back(Seconds(start, std::chrono::steady_clock::now()));
    if (rep > 0 && (engine.metrics().rollbacks != r.rollbacks ||
                    engine.metrics().deadlocks != r.deadlocks)) {
      std::cerr << "rollback micro: nondeterministic metrics\n";
      std::abort();
    }
    r.rollbacks = engine.metrics().rollbacks;
    r.deadlocks = engine.metrics().deadlocks;
  }
  r.elapsed = Median(times);
  r.rollbacks_per_second = r.elapsed > 0 ? r.rollbacks / r.elapsed : 0.0;
  return r;
}

// ---------------------------------------------------------------------------
// 2b. Compile micro: admission-time lowering cost (D16).
// ---------------------------------------------------------------------------

struct CompileMicroResult {
  bool enabled = true;
  std::uint64_t programs = 0;       // deterministic
  std::uint64_t compiles = 0;       // deterministic
  std::uint64_t hits = 0;           // deterministic
  std::uint64_t compiled_bytes = 0; // deterministic
  double elapsed = 0.0;
  double us_per_program = 0.0;      // cold: hash + lower + insert
  double hit_us_per_program = 0.0;  // warm: hash + probe only
};

CompileMicroResult RunCompileMicro(
    const std::vector<std::shared_ptr<const txn::Program>>& programs) {
  CompileMicroResult r;
  r.enabled = g_compile_programs;
  r.programs = programs.size();
  if (!g_compile_programs) return r;

  std::vector<double> cold_times, warm_times;
  for (int rep = 0; rep < 3; ++rep) {
    txn::CompileCache cache;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& p : programs) cache.Get(p);
    const auto mid = std::chrono::steady_clock::now();
    for (const auto& p : programs) cache.Get(p);
    const auto stop = std::chrono::steady_clock::now();
    cold_times.push_back(Seconds(start, mid));
    warm_times.push_back(Seconds(mid, stop));
    r.compiles = cache.stats().compiles;
    r.hits = cache.stats().hits;
    r.compiled_bytes = cache.stats().compiled_bytes;
  }
  r.elapsed = Median(cold_times);
  r.us_per_program = r.programs > 0 ? r.elapsed * 1e6 / r.programs : 0.0;
  r.hit_us_per_program =
      r.programs > 0 ? Median(warm_times) * 1e6 / r.programs : 0.0;
  return r;
}

// ---------------------------------------------------------------------------
// 3. End-to-end pinned workload (engine execution only).
// ---------------------------------------------------------------------------

struct EndToEndResult {
  std::uint64_t txns = 0;
  std::uint64_t committed = 0;  // deterministic
  std::uint64_t steps = 0;      // deterministic
  std::uint64_t rollbacks = 0;  // deterministic
  double elapsed = 0.0;
  double txns_per_second = 0.0;
};

constexpr std::uint64_t kE2eTxns = 2400;
constexpr std::uint64_t kE2eEntities = 256;

// The exact 1-shard workload bench_parallel_scaling pins, generated once
// outside the timed regions: the e2e measurement is lock/schedule/execute
// throughput, not program generation, and the compile micro lowers the
// same program population the engine admits.
std::vector<std::shared_ptr<const txn::Program>> PinnedWorkloadPrograms() {
  sim::WorkloadOptions w;
  w.num_entities = kE2eEntities;
  w.min_locks = 2;
  w.max_locks = 4;
  w.ops_per_entity = 2;
  w.zipf_theta = 0.2;
  sim::WorkloadGenerator gen(w, 21);
  std::vector<std::shared_ptr<const txn::Program>> programs;
  programs.reserve(kE2eTxns);
  for (std::uint64_t i = 0; i < kE2eTxns; ++i) {
    auto p = gen.Next();
    if (!p.ok()) std::abort();
    programs.push_back(
        std::make_shared<const txn::Program>(std::move(p).value()));
  }
  return programs;
}

EndToEndResult RunEndToEnd(
    const std::vector<std::shared_ptr<const txn::Program>>& programs) {
  constexpr std::uint64_t kTxns = kE2eTxns;
  constexpr std::size_t kConcurrency = 32;

  auto Once = [&](EndToEndResult* out) {
    storage::EntityStore store;
    store.CreateMany(kE2eEntities, 0);
    core::EngineOptions eopt;
    eopt.scheduler = core::SchedulerKind::kRandom;
    eopt.seed = 21;
    eopt.compile_programs = g_compile_programs;
    core::Engine engine(&store, eopt, nullptr);
    engine.ReserveTxns(kTxns);
    std::size_t spawned = 0;
    std::uint64_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    while (engine.metrics().commits < kTxns) {
      while (spawned < kTxns &&
             spawned - engine.metrics().commits < kConcurrency) {
        if (!engine.Spawn(programs[spawned]).ok()) std::abort();
        ++spawned;
      }
      auto r = engine.StepQuantum(256, false);
      if (!r.ok()) std::abort();
      steps += r.value().steps;
    }
    const double elapsed = Seconds(start, std::chrono::steady_clock::now());
    out->txns = kTxns;
    out->committed = engine.metrics().commits;
    out->steps = steps;
    out->rollbacks = engine.metrics().rollbacks;
    out->elapsed = elapsed;
  };

  EndToEndResult r;
  Once(&r);  // warm-up (page cache, allocator arenas)
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) {
    EndToEndResult cur;
    Once(&cur);
    if (cur.committed != r.committed || cur.steps != r.steps ||
        cur.rollbacks != r.rollbacks) {
      std::cerr << "end-to-end: nondeterministic run\n";
      std::abort();
    }
    times.push_back(cur.elapsed);
  }
  r.elapsed = Median(times);
  r.txns_per_second = r.elapsed > 0 ? r.txns / r.elapsed : 0.0;
  return r;
}

// ---------------------------------------------------------------------------
// 4. Steady-state allocation audit.
// ---------------------------------------------------------------------------

struct SteadyAllocResult {
  std::uint64_t steps = 0;
  std::uint64_t allocs = 0;
  double allocs_per_step = 0.0;  // must be exactly 0
};

SteadyAllocResult RunSteadyStateAllocAudit() {
  constexpr std::size_t kBatchTxns = 64;
  constexpr std::size_t kLocksPerTxn = 4;
  constexpr int kBatches = 8;

  // Disjoint-entity lock-only programs: every step is a grant, a release
  // (via commit) or bookkeeping — the exact fast path the rewrite targets.
  std::vector<std::shared_ptr<const txn::Program>> programs;
  programs.reserve(kBatchTxns);
  for (std::size_t t = 0; t < kBatchTxns; ++t) {
    txn::ProgramBuilder b("steady");
    for (std::size_t k = 0; k < kLocksPerTxn; ++k) {
      b.LockExclusive(EntityId(t * kLocksPerTxn + k));
    }
    auto p = b.Commit().Build();
    if (!p.ok()) std::abort();
    programs.push_back(
        std::make_shared<const txn::Program>(std::move(p).value()));
  }

  storage::EntityStore store;
  store.CreateMany(kBatchTxns * kLocksPerTxn, 0);
  core::EngineOptions eopt;
  eopt.scheduler = core::SchedulerKind::kRoundRobin;
  eopt.compile_programs = g_compile_programs;
  core::Engine engine(&store, eopt, nullptr);
  engine.ReserveTxns(kBatchTxns * (kBatches + 2));

  // Admission (Spawn) is allowed to allocate — it builds per-transaction
  // state. The audit counts only the stepping loop: every grant, release,
  // commit and scheduler decision in the counted window must come from
  // reused capacity.
  SteadyAllocResult r;
  std::uint64_t counted_allocs = 0;
  auto RunBatch = [&](bool counted) {
    for (const auto& p : programs) {
      if (!engine.Spawn(p).ok()) std::abort();
    }
    std::uint64_t steps = 0;
    const std::uint64_t a0 = HeapAllocs();
    while (engine.live_txn_count() > 0) {
      auto sr = engine.StepQuantum(256, false);
      if (!sr.ok()) std::abort();
      steps += sr.value().steps;
    }
    if (counted) counted_allocs += HeapAllocs() - a0;
    return steps;
  };

  // Two warm batches grow every pool (txn slots, arena blocks, lock table,
  // scratch vectors) to steady state; the counted batches must then run
  // entirely out of reused capacity.
  RunBatch(false);
  RunBatch(false);

  for (int b = 0; b < kBatches; ++b) r.steps += RunBatch(true);
  r.allocs = counted_allocs;
  r.allocs_per_step =
      r.steps > 0 ? static_cast<double>(r.allocs) / r.steps : 0.0;
  return r;
}

// ---------------------------------------------------------------------------

void PrintReproduction() {
  const auto programs = PinnedWorkloadPrograms();
  const LockMicroResult lock = RunLockReleaseMicro();
  const RollbackMicroResult rb = RunRollbackMicro();
  const CompileMicroResult comp = RunCompileMicro(programs);
  const EndToEndResult e2e = RunEndToEnd(programs);
  const SteadyAllocResult steady = RunSteadyStateAllocAudit();

  Section(std::string("Single-engine hot path (1 shard, median of 3, ") +
          (g_compile_programs ? "compiled µops)" : "interpreter)"));
  Table t({"section", "ops", "elapsed (s)", "rate (/s)", "allocs/op"});
  t.AddRow("lock+release micro", lock.ops, lock.elapsed, lock.ops_per_second,
           lock.allocs_per_op);
  t.AddRow("rollback micro", rb.rollbacks, rb.elapsed,
           rb.rollbacks_per_second, "-");
  if (comp.enabled) {
    t.AddRow("program compile micro", comp.compiles, comp.elapsed,
             comp.elapsed > 0 ? comp.compiles / comp.elapsed : 0.0, "-");
  }
  t.AddRow("end-to-end (pinned workload)", e2e.txns, e2e.elapsed,
           e2e.txns_per_second, "-");
  t.AddRow("steady-state step audit", steady.steps, "-", "-",
           steady.allocs_per_step);
  t.Print();
  if (comp.enabled) {
    std::cout << "(compile micro: " << comp.compiles << " distinct programs, "
              << comp.us_per_program << " us/program cold, "
              << comp.hit_us_per_program << " us/program on cache hits, "
              << comp.compiled_bytes << " uop bytes)\n";
  }
  std::cout << "(end-to-end deterministic fields: committed=" << e2e.committed
            << " steps=" << e2e.steps << " rollbacks=" << e2e.rollbacks
            << "; rollback micro: " << rb.deadlocks << " deadlocks over "
            << rb.pairs << " pairs; allocation counts must be exactly 0 on "
            << "the warm fast path)\n";

  std::ofstream json("BENCH_hotpath.json");
  json << "{\n"
       << " \"compile\":{\"enabled\":" << (comp.enabled ? 1 : 0)
       << ",\"programs\":" << comp.programs
       << ",\"compiles\":" << comp.compiles << ",\"hits\":" << comp.hits
       << ",\"compiled_bytes\":" << comp.compiled_bytes
       << ",\"elapsed_seconds\":" << comp.elapsed
       << ",\"us_per_program\":" << comp.us_per_program
       << ",\"hit_us_per_program\":" << comp.hit_us_per_program << "},\n"
       << " \"lock_release\":{\"ops\":" << lock.ops
       << ",\"elapsed_seconds\":" << lock.elapsed
       << ",\"ops_per_second\":" << lock.ops_per_second
       << ",\"allocs_per_op\":" << lock.allocs_per_op << "},\n"
       << " \"rollback\":{\"pairs\":" << rb.pairs
       << ",\"rollbacks\":" << rb.rollbacks
       << ",\"deadlocks\":" << rb.deadlocks
       << ",\"elapsed_seconds\":" << rb.elapsed
       << ",\"rollbacks_per_second\":" << rb.rollbacks_per_second << "},\n"
       << " \"end_to_end\":{\"txns\":" << e2e.txns
       << ",\"committed\":" << e2e.committed << ",\"steps\":" << e2e.steps
       << ",\"rollbacks\":" << e2e.rollbacks
       << ",\"elapsed_seconds\":" << e2e.elapsed
       << ",\"txns_per_second\":" << e2e.txns_per_second << "},\n"
       << " \"steady_state\":{\"steps\":" << steady.steps
       << ",\"allocs\":" << steady.allocs
       << ",\"allocs_per_step\":" << steady.allocs_per_step << "}\n"
       << "}\n";
  std::cout << "(wrote BENCH_hotpath.json; committed/steps/rollbacks and "
               "both allocation counters are deterministic — only the "
               "timings vary)\n";
}

void BM_EndToEndPinnedWorkload(benchmark::State& state) {
  const auto programs = PinnedWorkloadPrograms();
  for (auto _ : state) {
    EndToEndResult r = RunEndToEnd(programs);
    benchmark::DoNotOptimize(r.committed);
  }
}
BENCHMARK(BM_EndToEndPinnedWorkload)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-compile-cache") {
      g_compile_programs = false;
      // Hide the flag from google-benchmark's parser.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

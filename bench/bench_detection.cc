// E4 (Theorem 1): with exclusive locks only, the deadlock-free concurrency
// graph is a forest and a wait can close at most one cycle, so detection is
// a single descendant check. This bench measures the cost of the wait-time
// cycle check on forests of increasing size, and of the general
// multi-cycle enumeration used for shared+exclusive graphs.

#include <benchmark/benchmark.h>
#include <cstdint>

#include <iostream>

#include "bench/table_util.h"
#include "common/random.h"
#include "graph/digraph.h"
#include "sim/driver.h"

namespace {

using pardb::Rng;
using pardb::graph::Digraph;

// Continuous wait-time detection (the paper's model) vs periodic scans vs
// timeout expiry, on the same contended workload. Continuous pays a cycle
// check per wait but resolves instantly; periodic amortises the check at
// the price of transactions sitting in undetected deadlocks; timeout needs
// no graph at all but fires on long non-deadlocked waits too.
void PrintDetectionModeComparison() {
  pardb::bench::Section(
      "Detection cadence on one workload (400 txns, concurrency 12)");
  pardb::bench::Table t({"mode", "deadlocks", "scans", "timeouts",
                         "ops wasted", "ops executed", "goodput"});
  auto Run = [&](const std::string& label, pardb::core::EngineOptions eopt) {
    pardb::sim::SimOptions opt;
    opt.engine = eopt;
    opt.engine.scheduler = pardb::core::SchedulerKind::kRandom;
    opt.workload.num_entities = 16;
    opt.workload.min_locks = 3;
    opt.workload.max_locks = 6;
    opt.concurrency = 12;
    opt.total_txns = 400;
    opt.seed = 77;
    opt.check_serializability = false;
    auto rep = pardb::sim::RunSimulation(opt);
    if (!rep.ok()) {
      std::cerr << label << " failed: " << rep.status() << "\n";
      return;
    }
    t.AddRow(label, rep->metrics.deadlocks, rep->metrics.periodic_scans,
             rep->metrics.timeouts, rep->metrics.wasted_ops,
             rep->metrics.ops_executed, rep->goodput);
  };
  {
    pardb::core::EngineOptions e;
    Run("continuous", e);
  }
  for (std::uint64_t period : {8, 64, 256}) {
    pardb::core::EngineOptions e;
    e.detection_mode = pardb::core::DetectionMode::kPeriodic;
    e.detection_period = period;
    Run("periodic/" + std::to_string(period), e);
  }
  for (std::uint64_t to : {16, 128}) {
    pardb::core::EngineOptions e;
    e.handling = pardb::core::DeadlockHandling::kTimeout;
    e.wait_timeout_steps = to;
    Run("timeout/" + std::to_string(to), e);
  }
  t.Print();
}

// Builds a random forest of out-trees with n vertices (every vertex except
// roots has exactly one predecessor), modeling an X-only waits-for graph.
Digraph MakeForest(std::size_t n, std::uint64_t seed) {
  Digraph g;
  Rng rng(seed);
  for (std::size_t v = 0; v < n; ++v) {
    g.AddVertex(v);
    if (v > 0 && rng.Bernoulli(0.9)) {
      // Parent chosen among earlier vertices: guaranteed acyclic, in-degree 1.
      g.AddEdge(rng.Uniform(v), v, v);
    }
  }
  return g;
}

void BM_WouldCreateCycle_Forest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Digraph g = MakeForest(n, 42);
  Rng rng(7);
  for (auto _ : state) {
    const std::size_t a = rng.Uniform(n);
    const std::size_t b = rng.Uniform(n);
    benchmark::DoNotOptimize(g.WouldCreateCycle(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WouldCreateCycle_Forest)->Range(16, 4096)->Complexity();

void BM_FindCycleThrough_Forest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Digraph g = MakeForest(n, 42);
  // Close one cycle.
  g.AddEdge(n - 1, 0, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.FindCycleThrough(0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FindCycleThrough_Forest)->Range(16, 4096)->Complexity();

// Shared locks: dense waits-for DAG with many short cycles through one
// requester (the paper's §3.2 worst case for enumeration).
void BM_EnumerateCycles_SharedLocks(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Digraph g;
  // Requester 0 waits on k holders; each holder waits back on 0 through a
  // private chain of length 2: k distinct cycles through 0.
  for (std::size_t i = 1; i <= k; ++i) {
    g.AddEdge(i, 0, i);          // holder i blocks requester 0
    g.AddEdge(0, k + i, k + i);  // 0 holds something k+i waits for
    g.AddEdge(k + i, i, 2 * k + i);
  }
  std::size_t found = 0;
  for (auto _ : state) {
    found = g.EnumerateCyclesThrough(
        0, 1u << 20, [](const pardb::graph::Cycle&) { return true; });
    benchmark::DoNotOptimize(found);
  }
  state.counters["cycles"] = static_cast<double>(found);
}
BENCHMARK(BM_EnumerateCycles_SharedLocks)->RangeMultiplier(2)->Range(2, 64);

}  // namespace

int main(int argc, char** argv) {
  PrintDetectionModeComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

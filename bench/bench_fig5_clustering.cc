// E8/E10 — Figure 5 and §5: transaction structure vs rollback efficiency.
//
// The paper's claim: clustering each object's writes (few lock states
// between successive writes) maximises well-defined states, so single-copy
// (SDG) rollbacks overshoot less and MCS keeps fewer copies; the strict
// three-phase structure (acquire / update / release) is best of all — after
// the last lock request monitoring stops entirely.
//
// Series reported per write pattern: fraction of well-defined lock states,
// SDG rollback overshoot (actual - ideal cost), wasted work, MCS copy
// peaks.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/table_util.h"
#include "rollback/sdg.h"
#include "sim/driver.h"
#include "sim/workload.h"
#include "txn/optimizer.h"

namespace {

using namespace pardb;
using bench::Section;
using bench::Table;
using sim::WritePattern;

double WellDefinedFraction(const txn::Program& p) {
  auto sdg = rollback::BuildSdgForProgram(p);
  if (sdg.NumLockStates() == 0) return 1.0;
  return static_cast<double>(sdg.WellDefinedStates().size()) /
         static_cast<double>(sdg.NumLockStates());
}

void PrintReproduction() {
  Section("Static structure analysis (1000 generated programs per pattern)");
  Table t({"pattern", "write spread (avg)", "well-defined fraction",
           "three-phase"});
  for (auto pattern : {WritePattern::kScattered, WritePattern::kClustered,
                       WritePattern::kThreePhase}) {
    sim::WorkloadOptions wopt;
    wopt.num_entities = 32;
    wopt.min_locks = 4;
    wopt.max_locks = 8;
    wopt.ops_per_entity = 3;
    wopt.pattern = pattern;
    sim::WorkloadGenerator gen(wopt, 1);
    double spread = 0, wd = 0;
    int three_phase = 0;
    const int kN = 1000;
    for (int i = 0; i < kN; ++i) {
      auto p = gen.Next();
      if (!p.ok()) continue;
      spread += static_cast<double>(p.value().WriteSpreadScore());
      wd += WellDefinedFraction(p.value());
      three_phase += p.value().IsThreePhase() ? 1 : 0;
    }
    t.AddRow(std::string(WritePatternName(pattern)), spread / kN, wd / kN,
             std::to_string(100 * three_phase / kN) + "%");
  }
  t.Print();
  std::cout << "(paper: T2-style clustering leaves every state well-defined;"
               " T1-style scattering only the trivial ones)\n";

  Section("§5 future work, implemented: compile-time write clustering");
  {
    sim::WorkloadOptions wopt;
    wopt.num_entities = 32;
    wopt.min_locks = 4;
    wopt.max_locks = 8;
    wopt.ops_per_entity = 3;
    wopt.pattern = WritePattern::kScattered;
    sim::WorkloadGenerator gen(wopt, 2);
    double spread_before = 0, spread_after = 0;
    double wd_before = 0, wd_after = 0;
    const int kN = 1000;
    int transformed_ok = 0;
    for (int i = 0; i < kN; ++i) {
      auto p = gen.Next();
      if (!p.ok()) continue;
      auto c = txn::ClusterWrites(p.value());
      if (!c.ok()) continue;
      ++transformed_ok;
      spread_before += static_cast<double>(p.value().WriteSpreadScore());
      spread_after += static_cast<double>(c->WriteSpreadScore());
      wd_before += WellDefinedFraction(p.value());
      wd_after += WellDefinedFraction(c.value());
    }
    Table o({"", "write spread (avg)", "well-defined fraction"});
    o.AddRow("scattered, as written", spread_before / transformed_ok,
             wd_before / transformed_ok);
    o.AddRow("after ClusterWrites()", spread_after / transformed_ok,
             wd_after / transformed_ok);
    o.Print();
    std::cout << "(" << transformed_ok << "/" << kN
              << " programs transformed; solo semantics preserved — see "
                 "optimizer_test)\n";
  }

  Section("Dynamic effect under the SDG strategy (400 txns, contended)");
  Table d({"pattern", "deadlocks", "rollbacks", "ideal lost ops",
           "actual lost ops", "overshoot", "goodput"});
  for (auto pattern : {WritePattern::kScattered, WritePattern::kClustered,
                       WritePattern::kThreePhase}) {
    sim::SimOptions opt;
    opt.engine.strategy = rollback::StrategyKind::kSdg;
    opt.engine.victim_policy = core::VictimPolicyKind::kMinCostOrdered;
    opt.workload.num_entities = 10;
    opt.workload.min_locks = 3;
    opt.workload.max_locks = 6;
    opt.workload.ops_per_entity = 3;
    opt.workload.pattern = pattern;
    opt.concurrency = 10;
    opt.total_txns = 400;
    opt.seed = 7;
    opt.check_serializability = false;
    auto rep = sim::RunSimulation(opt);
    if (!rep.ok()) {
      std::cerr << "sim failed: " << rep.status() << "\n";
      continue;
    }
    d.AddRow(std::string(WritePatternName(pattern)), rep->metrics.deadlocks,
             rep->metrics.rollbacks, rep->metrics.ideal_wasted_ops,
             rep->metrics.wasted_ops,
             rep->metrics.wasted_ops - rep->metrics.ideal_wasted_ops,
             rep->goodput);
  }
  d.Print();
  std::cout << "(overshoot = extra progress lost because the ideal target "
               "state was not well-defined)\n";

  Section("MCS copy peaks by structure (same workloads, MCS strategy)");
  Table m({"pattern", "max entity copies (one txn)", "max var copies"});
  for (auto pattern : {WritePattern::kScattered, WritePattern::kClustered,
                       WritePattern::kThreePhase}) {
    sim::SimOptions opt;
    opt.engine.strategy = rollback::StrategyKind::kMcs;
    opt.workload.num_entities = 10;
    opt.workload.min_locks = 3;
    opt.workload.max_locks = 6;
    opt.workload.ops_per_entity = 3;
    opt.workload.pattern = pattern;
    opt.concurrency = 10;
    opt.total_txns = 400;
    opt.seed = 7;
    opt.check_serializability = false;
    auto rep = sim::RunSimulation(opt);
    if (!rep.ok()) continue;
    m.AddRow(std::string(WritePatternName(pattern)),
             rep->metrics.max_entity_copies, rep->metrics.max_var_copies);
  }
  m.Print();
  std::cout << "(paper §5: clustering \"is also efficient for the MCS "
               "implementation as it minimizes the number of copies\")\n";
}

void BM_SimulationByPattern(benchmark::State& state) {
  const auto pattern = static_cast<WritePattern>(state.range(0));
  for (auto _ : state) {
    sim::SimOptions opt;
    opt.engine.strategy = rollback::StrategyKind::kSdg;
    opt.workload.num_entities = 10;
    opt.workload.pattern = pattern;
    opt.concurrency = 8;
    opt.total_txns = 100;
    opt.seed = 3;
    opt.check_serializability = false;
    auto rep = sim::RunSimulation(opt);
    if (!rep.ok()) state.SkipWithError("sim failed");
    benchmark::DoNotOptimize(rep->metrics.wasted_ops);
  }
}
BENCHMARK(BM_SimulationByPattern)
    ->Arg(static_cast<int>(WritePattern::kScattered))
    ->Arg(static_cast<int>(WritePattern::kClustered))
    ->Arg(static_cast<int>(WritePattern::kThreePhase));

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

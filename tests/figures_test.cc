// Exact reproductions of the paper's worked figures (1 and 3; 4 and 5 are
// covered in sdg_test.cc). Every state index, rollback cost and victim
// matches the numbers printed in the paper.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sim/scenario.h"

namespace pardb::sim {
namespace {

using core::EngineOptions;
using core::StepOutcome;
using core::TxnStatus;
using core::VictimPolicyKind;
using rollback::StrategyKind;

EngineOptions Fig1Options(VictimPolicyKind policy = VictimPolicyKind::kMinCost,
                          StrategyKind strategy = StrategyKind::kMcs) {
  EngineOptions opt;
  opt.victim_policy = policy;
  opt.strategy = strategy;
  return opt;
}

TEST(Figure1Test, GraphBeforeDeadlockMatchesPaper) {
  auto fig = BuildFigure1(Fig1Options());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  auto& engine = fig->runner->engine();
  const auto& g = engine.waits_for();

  // Arcs: T2 -b-> T1, T2 -b-> T3, T3 -c-> T4; T2 is still running.
  EXPECT_TRUE(g.HasEdge(fig->t2.value(), fig->t1.value(), fig->b.value()));
  EXPECT_TRUE(g.HasEdge(fig->t2.value(), fig->t3.value(), fig->b.value()));
  EXPECT_TRUE(g.HasEdge(fig->t3.value(), fig->t4.value(), fig->c.value()));
  EXPECT_TRUE(g.IsAcyclic());
  // Theorem 1: exclusive locks only, deadlock-free => forest.
  EXPECT_TRUE(g.IsForest());

  // State indices as printed in the figure.
  EXPECT_EQ(engine.StateIndexOf(fig->t2), 12u);
  EXPECT_EQ(engine.StateIndexOf(fig->t3), 11u);
  EXPECT_EQ(engine.StateIndexOf(fig->t4), 15u);
  EXPECT_EQ(engine.StateIndexOf(fig->t1), 3u);
}

TEST(Figure1Test, CostsAndVictimMatchPaper) {
  auto fig = BuildFigure1(Fig1Options());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  auto outcome = fig->TriggerDeadlock();
  ASSERT_TRUE(outcome.ok());
  // T2 (the requester) is the min-cost victim: it rolled itself back.
  EXPECT_EQ(outcome.value(), StepOutcome::kRolledBack);

  auto& engine = fig->runner->engine();
  ASSERT_EQ(engine.deadlock_events().size(), 1u);
  const auto& ev = engine.deadlock_events()[0];
  EXPECT_EQ(ev.requester, fig->t2);
  EXPECT_EQ(ev.num_cycles, 1u);

  // Candidate costs 4 (T2), 6 (T3), 5 (T4) — the paper's 12-8, 11-5, 15-10.
  ASSERT_EQ(ev.candidates.size(), 3u);
  std::map<TxnId, std::uint64_t> costs;
  for (const auto& c : ev.candidates) costs[c.txn] = c.cost;
  EXPECT_EQ(costs[fig->t2], 4u);
  EXPECT_EQ(costs[fig->t3], 6u);
  EXPECT_EQ(costs[fig->t4], 5u);

  ASSERT_EQ(ev.victims.size(), 1u);
  EXPECT_EQ(ev.victims[0], fig->t2);
  EXPECT_EQ(ev.total_cost, 4u);

  // T2 resumed at state 8 (just before locking b).
  EXPECT_EQ(engine.StateIndexOf(fig->t2), 8u);
  EXPECT_EQ(engine.StatusOf(fig->t2), TxnStatus::kReady);
}

TEST(Figure1Test, PostRollbackGraphMatchesFigure1b) {
  auto fig = BuildFigure1(Fig1Options());
  ASSERT_TRUE(fig.ok());
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  auto& engine = fig->runner->engine();
  const auto& g = engine.waits_for();

  // "T1 no longer waits for T2": b was granted to T1 (first in queue).
  EXPECT_EQ(engine.StatusOf(fig->t1), TxnStatus::kReady);
  EXPECT_FALSE(g.HasEdge(fig->t2.value(), fig->t1.value(), fig->b.value()));
  // T3 now waits for the new holder T1.
  EXPECT_TRUE(g.HasEdge(fig->t1.value(), fig->t3.value(), fig->b.value()));
  // T4 still waits for T3.
  EXPECT_TRUE(g.HasEdge(fig->t3.value(), fig->t4.value(), fig->c.value()));
  EXPECT_TRUE(g.IsForest());

  // T1 runs to completion as in the figure. (The remaining transactions
  // cannot all commit under unconstrained min-cost: this very scenario is
  // the paper's Figure 2 mutual-preemption loop, asserted separately.)
  auto done1 = fig->runner->StepUntilBlocked(fig->t1);
  ASSERT_TRUE(done1.ok());
  EXPECT_EQ(done1.value(), StepOutcome::kCommitted);
  EXPECT_TRUE(fig->runner->recorder().IsConflictSerializable());
}

TEST(Figure1Test, OrderedPolicyPreemptsCheapestYoungerMember) {
  // Under the Theorem 2 ordered policy a conflict caused by T2 may only
  // roll back transactions that entered later: T3 (cost 6) or T4 (cost 5).
  // T4 is preempted even though T2's own rollback (cost 4) would be
  // cheaper — the price of immunity from infinite mutual preemption.
  auto fig = BuildFigure1(Fig1Options(VictimPolicyKind::kMinCostOrdered));
  ASSERT_TRUE(fig.ok());
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  const auto& ev = fig->runner->engine().deadlock_events().at(0);
  EXPECT_EQ(ev.victims, std::vector<TxnId>{fig->t4});
  EXPECT_EQ(ev.total_cost, 5u);
  ASSERT_TRUE(fig->runner->FinishAll().ok());
  EXPECT_TRUE(fig->runner->recorder().IsConflictSerializable());
}

TEST(Figure2Test, MinCostSustainsMutualPreemptionForever) {
  // The paper's Figure 1 -> Figure 2 alternation: under unconstrained
  // min-cost the exact Figure 1(a) configuration recurs every round and no
  // one in {T2, T3, T4} ever commits.
  auto out =
      RunFigure2MutualPreemption(Fig1Options(VictimPolicyKind::kMinCost), 5);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->pattern_sustained);
  EXPECT_EQ(out->recurrences, 5);
  EXPECT_FALSE(out->all_committed);
  // Victims alternate T2, T3, T2, T3, ...
  ASSERT_GE(out->victims.size(), 4u);
  for (std::size_t i = 0; i < out->victims.size(); ++i) {
    EXPECT_EQ(out->victims[i], i % 2 == 0 ? out->t2 : out->t3) << i;
  }
  // T2 and T3 were each rolled back repeatedly without progress.
  EXPECT_GE(out->runner->engine().metrics().deadlocks, 12u);
  EXPECT_EQ(out->runner->engine().metrics().commits, 1u);  // only T1
}

TEST(Figure2Test, OrderedPolicyBreaksTheLoop) {
  // Theorem 2: with victims restricted to later entries the very first
  // resolution preempts T4 instead of T2 and every transaction commits.
  auto out = RunFigure2MutualPreemption(
      Fig1Options(VictimPolicyKind::kMinCostOrdered), 5);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->pattern_sustained);
  EXPECT_EQ(out->recurrences, 0);
  EXPECT_TRUE(out->all_committed);
  ASSERT_FALSE(out->victims.empty());
  EXPECT_EQ(out->victims[0], out->t4);
}

TEST(Figure1Test, TotalRestartPaysFullCost) {
  // Same scenario, total-restart state: the victim still minimises over
  // *achievable* rollbacks, which all reach back to state 0.
  auto fig = BuildFigure1(
      Fig1Options(VictimPolicyKind::kMinCost, StrategyKind::kTotalRestart));
  ASSERT_TRUE(fig.ok());
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  auto& engine = fig->runner->engine();
  const auto& ev = engine.deadlock_events().at(0);
  // All candidates cost their full progress: T2=12, T3=11, T4=15 (rolling
  // to state index 0 = position of the first lock request).
  std::map<TxnId, std::uint64_t> costs;
  for (const auto& c : ev.candidates) costs[c.txn] = c.cost;
  EXPECT_EQ(costs[fig->t2], 12u);
  EXPECT_EQ(costs[fig->t3], 11u);
  EXPECT_EQ(costs[fig->t4], 15u);
  // Ideal (partial) costs are still reported for comparison.
  std::map<TxnId, std::uint64_t> ideal;
  for (const auto& c : ev.candidates) ideal[c.txn] = c.ideal_cost;
  EXPECT_EQ(ideal[fig->t2], 4u);
  EXPECT_EQ(ideal[fig->t3], 6u);
  EXPECT_EQ(ideal[fig->t4], 5u);
  // Victim is T3 (11 < 12 < 15) under total restart!
  EXPECT_EQ(ev.victims, std::vector<TxnId>{fig->t3});
  EXPECT_EQ(engine.metrics().total_rollbacks, 1u);
  ASSERT_TRUE(fig->runner->FinishAll().ok());
}

TEST(Figure3Test, FigureAIsAcyclicButNotForest) {
  auto fig = BuildFigure3a(Fig1Options());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  const auto& g = fig->runner->engine().waits_for();
  // T3 waits for both shared holders of c: in-degree 2.
  EXPECT_TRUE(g.HasEdge(fig->t1.value(), fig->t3.value(), fig->c.value()));
  EXPECT_TRUE(g.HasEdge(fig->t2.value(), fig->t3.value(), fig->c.value()));
  EXPECT_TRUE(g.HasEdge(fig->t1.value(), fig->t2.value(), fig->a.value()));
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_FALSE(g.IsForest());
  EXPECT_EQ(fig->runner->engine().metrics().deadlocks, 0u);
  ASSERT_TRUE(fig->runner->FinishAll().ok());
}

TEST(Figure3Test, FigureBOneRequestClosesTwoCycles) {
  auto fig = BuildFigure3b(Fig1Options(VictimPolicyKind::kRequester));
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  auto& engine = fig->runner->engine();
  ASSERT_EQ(engine.deadlock_events().size(), 1u);
  const auto& ev = engine.deadlock_events()[0];
  EXPECT_EQ(ev.requester, fig->t1);
  EXPECT_EQ(ev.num_cycles, 2u);
  // Rolling back the requester removes all cycles at once.
  EXPECT_EQ(ev.victims, std::vector<TxnId>{fig->t1});
  ASSERT_TRUE(fig->runner->FinishAll().ok());
  EXPECT_TRUE(fig->runner->recorder().IsConflictSerializable());
}

TEST(Figure3Test, FigureBMinCostCanPickT2) {
  // {T2} is also a cut (both cycles pass through it). T1's rollback costs
  // 4 (filler), T2's costs 3: the vertex-cut optimiser picks T2.
  auto fig = BuildFigure3b(Fig1Options(VictimPolicyKind::kMinCost));
  ASSERT_TRUE(fig.ok());
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  const auto& ev = fig->runner->engine().deadlock_events().at(0);
  EXPECT_EQ(ev.num_cycles, 2u);
  EXPECT_EQ(ev.victims, std::vector<TxnId>{fig->t2});
  ASSERT_TRUE(fig->runner->FinishAll().ok());
}

TEST(Figure3Test, FigureCNeedsBothSharedHoldersIfNotRequester) {
  // T1's rollback is expensive (8 ops); T2+T3 together cost 2: the
  // optimiser rolls back the pair, exactly the paper's "both T2 and T3
  // would need to be rolled back if T1 is not".
  auto fig = BuildFigure3c(Fig1Options(VictimPolicyKind::kMinCost));
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  auto& engine = fig->runner->engine();
  const auto& ev = engine.deadlock_events().at(0);
  EXPECT_EQ(ev.requester, fig->t1);
  EXPECT_EQ(ev.num_cycles, 2u);
  std::vector<TxnId> expected{fig->t2, fig->t3};
  EXPECT_EQ(ev.victims, expected);
  ASSERT_TRUE(fig->runner->FinishAll().ok());
  EXPECT_TRUE(fig->runner->recorder().IsConflictSerializable());
}

TEST(Figure3Test, FigureCRequesterOnlyModeRollsBackT1) {
  auto opt = Fig1Options(VictimPolicyKind::kMinCost);
  opt.optimize_vertex_cut = false;
  auto fig = BuildFigure3c(opt);
  ASSERT_TRUE(fig.ok());
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  const auto& ev = fig->runner->engine().deadlock_events().at(0);
  EXPECT_EQ(ev.victims, std::vector<TxnId>{fig->t1});
  ASSERT_TRUE(fig->runner->FinishAll().ok());
}

}  // namespace
}  // namespace pardb::sim

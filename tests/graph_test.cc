#include <algorithm>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/digraph.h"
#include "graph/undirected.h"

namespace pardb::graph {
namespace {

TEST(DigraphTest, AddRemoveVertices) {
  Digraph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(1);  // idempotent
  EXPECT_EQ(g.VertexCount(), 2u);
  EXPECT_TRUE(g.HasVertex(1));
  g.RemoveVertex(1);
  EXPECT_FALSE(g.HasVertex(1));
  EXPECT_EQ(g.VertexCount(), 1u);
}

TEST(DigraphTest, EdgesWithLabels) {
  Digraph g;
  g.AddEdge(1, 2, 100);
  g.AddEdge(1, 2, 101);  // parallel with a different label
  g.AddEdge(1, 2, 100);  // duplicate ignored
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(1, 2, 100));
  EXPECT_FALSE(g.HasEdge(2, 1));
  g.RemoveEdge(1, 2, 100);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 2, 101));
  g.RemoveEdgesBetween(1, 2);
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(DigraphTest, RemoveVertexDropsIncidentEdges) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 1);
  g.AddEdge(3, 1, 2);
  g.RemoveVertex(2);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_TRUE(g.HasEdge(3, 1));
}

TEST(DigraphTest, RemoveEdgesLabeled) {
  Digraph g;
  g.AddEdge(1, 2, 7);
  g.AddEdge(2, 3, 7);
  g.AddEdge(3, 4, 8);
  g.RemoveEdgesLabeled(7);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_TRUE(g.HasEdge(3, 4, 8));
}

TEST(DigraphTest, DegreesAndNeighbors) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(1, 3, 1);
  g.AddEdge(4, 1, 2);
  EXPECT_EQ(g.OutDegree(1), 2u);
  EXPECT_EQ(g.InDegree(1), 1u);
  auto succ = g.Successors(1);
  EXPECT_EQ(succ, (std::vector<VertexId>{2, 3}));
  auto pred = g.Predecessors(1);
  EXPECT_EQ(pred, (std::vector<VertexId>{4}));
}

TEST(DigraphTest, HasPath) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 0);
  g.AddEdge(3, 4, 0);
  EXPECT_TRUE(g.HasPath(1, 4));
  EXPECT_TRUE(g.HasPath(2, 2));
  EXPECT_FALSE(g.HasPath(4, 1));
  EXPECT_FALSE(g.HasPath(1, 99));
}

TEST(DigraphTest, WouldCreateCycle) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 0);
  EXPECT_TRUE(g.WouldCreateCycle(3, 1));   // 1->2->3 then 3->1 closes
  EXPECT_FALSE(g.WouldCreateCycle(1, 3));  // parallel path, no cycle
}

TEST(DigraphTest, FindCycleThrough) {
  Digraph g;
  g.AddEdge(1, 2, 10);
  g.AddEdge(2, 3, 11);
  g.AddEdge(3, 1, 12);
  g.AddEdge(3, 4, 13);  // dangling tail
  auto cycle = g.FindCycleThrough(1);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->vertices.size(), 3u);
  EXPECT_TRUE(cycle->Contains(1));
  EXPECT_TRUE(cycle->Contains(2));
  EXPECT_TRUE(cycle->Contains(3));
  EXPECT_FALSE(cycle->Contains(4));
  EXPECT_EQ(cycle->edges.size(), 3u);
  EXPECT_FALSE(g.FindCycleThrough(4).has_value());
}

TEST(DigraphTest, EnumerateMultipleCyclesThroughVertex) {
  // Two cycles through 1: 1->2->1 and 1->2->3->1 (the paper's Figure 3(b)
  // shape).
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 1, 1);
  g.AddEdge(2, 3, 2);
  g.AddEdge(3, 1, 3);
  std::vector<Cycle> cycles;
  std::size_t n = g.EnumerateCyclesThrough(1, 10, [&](const Cycle& c) {
    cycles.push_back(c);
    return true;
  });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(cycles.size(), 2u);
  std::vector<std::size_t> sizes{cycles[0].vertices.size(),
                                 cycles[1].vertices.size()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 3}));
}

TEST(DigraphTest, EnumerateHonorsLimit) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 1, 1);
  g.AddEdge(2, 3, 2);
  g.AddEdge(3, 1, 3);
  std::size_t n = g.EnumerateCyclesThrough(1, 1, [](const Cycle&) {
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(DigraphTest, IsAcyclic) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 0);
  EXPECT_TRUE(g.IsAcyclic());
  g.AddEdge(3, 1, 0);
  EXPECT_FALSE(g.IsAcyclic());
}

TEST(DigraphTest, ForestProperty) {
  // Theorem 1: X-only deadlock-free graphs are forests of out-trees.
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(1, 3, 1);  // branching out is fine
  g.AddEdge(3, 4, 2);
  EXPECT_TRUE(g.IsForest());
  g.AddEdge(5, 4, 3);  // 4 now has two predecessors: not a forest
  EXPECT_FALSE(g.IsForest());
}

TEST(DigraphTest, CycleBreaksForest) {
  Digraph g;
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 1, 1);
  EXPECT_FALSE(g.IsForest());
}

TEST(DigraphTest, ToDotMentionsEdges) {
  Digraph g;
  g.AddEdge(1, 2, 5);
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("\"v1\" -> \"v2\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"5\""), std::string::npos);
}

TEST(DigraphTest, StronglyConnectedComponents) {
  Digraph g;
  // Two cycles {1,2,3} and {5,6}, plus singletons 4 and 7.
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 0);
  g.AddEdge(3, 1, 0);
  g.AddEdge(3, 4, 0);
  g.AddEdge(5, 6, 0);
  g.AddEdge(6, 5, 0);
  g.AddVertex(7);
  auto sccs = g.StronglyConnectedComponents();
  ASSERT_EQ(sccs.size(), 4u);
  EXPECT_EQ(sccs[0], (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(sccs[1], (std::vector<VertexId>{4}));
  EXPECT_EQ(sccs[2], (std::vector<VertexId>{5, 6}));
  EXPECT_EQ(sccs[3], (std::vector<VertexId>{7}));
  auto cyclic = g.CyclicComponents();
  ASSERT_EQ(cyclic.size(), 2u);
  EXPECT_EQ(cyclic[0], (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(cyclic[1], (std::vector<VertexId>{5, 6}));
}

TEST(DigraphTest, SccAgreesWithAcyclicity) {
  pardb::Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    Digraph g;
    const std::size_t n = 2 + rng.Uniform(8);
    for (std::size_t v = 0; v < n; ++v) g.AddVertex(v);
    const std::size_t edges = rng.Uniform(2 * n);
    for (std::size_t e = 0; e < edges; ++e) {
      g.AddEdge(rng.Uniform(n), rng.Uniform(n), e);
    }
    EXPECT_EQ(g.CyclicComponents().empty(), g.IsAcyclic()) << trial;
  }
}

// Cross-check EnumerateCyclesThrough against brute-force permutation
// search on small random graphs.
TEST(DigraphTest, EnumerationMatchesBruteForce) {
  pardb::Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    Digraph g;
    const std::size_t n = 3 + rng.Uniform(4);  // 3..6 vertices
    for (std::size_t v = 0; v < n; ++v) g.AddVertex(v);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a != b && rng.Bernoulli(0.3)) g.AddEdge(a, b, a * n + b);
      }
    }
    const VertexId root = 0;
    // Brute force: all simple vertex sequences starting at root that close
    // a cycle, canonicalised as sorted vertex sets with order.
    std::set<std::vector<VertexId>> expected;
    std::vector<VertexId> path{root};
    std::set<VertexId> used{root};
    std::function<void()> Dfs = [&]() {
      VertexId last = path.back();
      for (VertexId next = 0; next < n; ++next) {
        if (!g.HasEdge(last, next)) continue;
        if (next == root) expected.insert(path);
        if (used.count(next)) continue;
        used.insert(next);
        path.push_back(next);
        Dfs();
        path.pop_back();
        used.erase(next);
      }
    };
    Dfs();
    std::set<std::vector<VertexId>> found;
    g.EnumerateCyclesThrough(root, 100000, [&](const Cycle& c) {
      found.insert(c.vertices);
      return true;
    });
    EXPECT_EQ(found, expected) << "trial " << trial;
  }
}

TEST(CycleTest, ToStringFormatsLoop) {
  Cycle c;
  c.vertices = {1, 2, 3};
  EXPECT_EQ(c.ToString(), "1 -> 2 -> 3 -> 1");
}

TEST(UndirectedTest, BasicOps) {
  UndirectedGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(2, 2);  // self-loop ignored
  EXPECT_EQ(g.VertexCount(), 3u);
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_EQ(g.Neighbors(2), (std::vector<UndirectedGraph::VertexId>{1, 3}));
}

TEST(UndirectedTest, PathArticulationPoints) {
  // 0-1-2-3: interior vertices are articulation points.
  UndirectedGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  auto cuts = g.ArticulationPoints();
  EXPECT_EQ(cuts, (std::vector<UndirectedGraph::VertexId>{1, 2}));
}

TEST(UndirectedTest, ChordRemovesArticulationPoints) {
  // Path 0..4 plus chord {0,4}: a ring, no articulation points.
  UndirectedGraph g;
  for (int i = 0; i < 4; ++i) g.AddEdge(i, i + 1);
  g.AddEdge(0, 4);
  EXPECT_TRUE(g.ArticulationPoints().empty());
}

TEST(UndirectedTest, PartialChord) {
  // Path 0..5 with chord {1,4}: articulation points are 1, 4 and 5's
  // neighbor 4 (interior vertices 2,3 are inside the ring).
  UndirectedGraph g;
  for (int i = 0; i < 5; ++i) g.AddEdge(i, i + 1);
  g.AddEdge(1, 4);
  auto cuts = g.ArticulationPoints();
  EXPECT_EQ(cuts, (std::vector<UndirectedGraph::VertexId>{1, 4}));
}

TEST(UndirectedTest, TwoComponents) {
  UndirectedGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(10, 11);
  EXPECT_FALSE(g.IsConnected());
  auto cuts = g.ArticulationPoints();
  EXPECT_EQ(cuts, (std::vector<UndirectedGraph::VertexId>{1}));
}

TEST(UndirectedTest, RootWithTwoChildren) {
  // Star: center is the only articulation point.
  UndirectedGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  auto cuts = g.ArticulationPoints();
  EXPECT_EQ(cuts, (std::vector<UndirectedGraph::VertexId>{0}));
}

TEST(UndirectedTest, ConnectedAndDot) {
  UndirectedGraph g;
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.IsConnected());
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
}

}  // namespace
}  // namespace pardb::graph

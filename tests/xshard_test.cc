// Tests for the cross-shard transaction layer (DESIGN D12): program
// splitting, lock-free routing, the merged-history global
// serializability checker, the engine's sub-transaction hold protocol,
// and the locks-mode sharded driver end to end — including the
// regression witness that the legacy coordinator-replica shortcut is
// *not* globally serializable.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/global_history.h"
#include "core/engine.h"
#include "dist/distributed.h"
#include "obs/serve/hub.h"
#include "par/report_json.h"
#include "par/router.h"
#include "par/sharded_driver.h"
#include "par/xshard/split.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb {
namespace {

using analysis::AccessEvent;
using analysis::GlobalHistory;
using par::RouteProgram;
using par::RunSharded;
using par::ShardedOptions;
using par::ShardedReportToJson;
using par::XShardMode;
using par::xshard::SplitProgram;
using par::xshard::SubProgram;
using txn::Operand;
using txn::ProgramBuilder;

// First entity owned by `shard` under the dist::SiteOfEntity partition.
EntityId EntityOn(std::uint32_t shard, std::uint32_t num_shards,
                  EntityId after = EntityId(0)) {
  for (std::uint64_t e = after.value();; ++e) {
    if (dist::SiteOfEntity(EntityId(e), num_shards) == shard) {
      return EntityId(e);
    }
  }
}

// ---------------------------------------------------------------------------
// SplitProgram
// ---------------------------------------------------------------------------

TEST(SplitProgramTest, SplitsFootprintByEntityOwner) {
  const EntityId a = EntityOn(0, 2);
  const EntityId b = EntityOn(1, 2);
  auto p = ProgramBuilder("t")
               .LockExclusive(a)
               .LockExclusive(b)
               .WriteImm(a, 1)
               .WriteImm(b, 2)
               .Commit()
               .Build();
  ASSERT_TRUE(p.ok());
  auto subs = SplitProgram(p.value(), 2);
  ASSERT_TRUE(subs.ok()) << subs.status().ToString();
  ASSERT_EQ(subs->size(), 2u);
  // Slices come back in shard order; each is [its locks | its body | Commit]
  // and holds at the end of its lock prefix.
  EXPECT_EQ((*subs)[0].shard, 0u);
  EXPECT_EQ((*subs)[1].shard, 1u);
  for (const SubProgram& sub : subs.value()) {
    ASSERT_EQ(sub.program.ops().size(), 3u);
    EXPECT_EQ(sub.hold_pc, 1u);
    EXPECT_EQ(sub.program.ops()[0].code, txn::OpCode::kLockExclusive);
    EXPECT_EQ(sub.program.ops()[1].code, txn::OpCode::kWrite);
    EXPECT_EQ(sub.program.ops()[2].code, txn::OpCode::kCommit);
  }
  EXPECT_EQ((*subs)[0].program.ops()[0].entity, a);
  EXPECT_EQ((*subs)[1].program.ops()[0].entity, b);
}

TEST(SplitProgramTest, SingleShardFootprintYieldsOneSlice) {
  const EntityId a = EntityOn(1, 4);
  const EntityId b = EntityOn(1, 4, EntityId(a.value() + 1));
  auto p = ProgramBuilder("t")
               .LockExclusive(a)
               .LockExclusive(b)
               .WriteImm(b, 7)
               .Commit()
               .Build();
  ASSERT_TRUE(p.ok());
  auto subs = SplitProgram(p.value(), 4);
  ASSERT_TRUE(subs.ok());
  ASSERT_EQ(subs->size(), 1u);
  EXPECT_EQ((*subs)[0].shard, 1u);
  EXPECT_EQ((*subs)[0].hold_pc, 2u);
}

TEST(SplitProgramTest, ComputeWithImmediateOperandsFollowsFirstLock) {
  const EntityId a = EntityOn(0, 2);
  const EntityId b = EntityOn(1, 2);
  auto p = ProgramBuilder("t", 1)
               .InitVar(0, 0)
               .LockExclusive(b)  // first lock: shard 1 is the fallback owner
               .LockExclusive(a)
               .Compute(0, Operand::Imm(2), txn::ArithOp::kAdd,
                        Operand::Imm(3))
               .WriteVar(b, 0)
               .WriteImm(a, 1)
               .Commit()
               .Build();
  ASSERT_TRUE(p.ok());
  auto subs = SplitProgram(p.value(), 2);
  ASSERT_TRUE(subs.ok()) << subs.status().ToString();
  ASSERT_EQ(subs->size(), 2u);
  // The imm-only compute has no operand owner, so it rides with the shard
  // of the first lock request (shard 1), where its result is consumed.
  EXPECT_EQ((*subs)[0].program.ops().size(), 3u);  // lock a, write a, commit
  EXPECT_EQ((*subs)[1].program.ops().size(), 4u);  // lock b, compute, write b
}

TEST(SplitProgramTest, RejectsCrossShardVarFlow) {
  const EntityId a = EntityOn(0, 2);
  const EntityId b = EntityOn(1, 2);
  auto p = ProgramBuilder("t", 1)
               .InitVar(0, 0)
               .LockExclusive(a)
               .LockExclusive(b)
               .Read(a, 0)      // var 0 is produced on shard 0...
               .WriteVar(b, 0)  // ...and consumed on shard 1: slices cannot
               .Commit()        // exchange values.
               .Build();
  ASSERT_TRUE(p.ok());
  auto subs = SplitProgram(p.value(), 2);
  ASSERT_FALSE(subs.ok());
  EXPECT_EQ(subs.status().code(), StatusCode::kInvalidArgument);
}

TEST(SplitProgramTest, RejectsEarlyUnlock) {
  const EntityId a = EntityOn(0, 2);
  const EntityId b = EntityOn(1, 2);
  auto p = ProgramBuilder("t")
               .LockExclusive(a)
               .LockExclusive(b)
               .WriteImm(a, 1)
               .Unlock(a)
               .WriteImm(b, 2)
               .Commit()
               .Build();
  ASSERT_TRUE(p.ok());
  auto subs = SplitProgram(p.value(), 2);
  ASSERT_FALSE(subs.ok());
  EXPECT_EQ(subs.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// RouteProgram: lock-free programs
// ---------------------------------------------------------------------------

TEST(RouterTest, LockFreeProgramsSpreadBySequenceHash) {
  auto p = ProgramBuilder("noop").Commit().Build();
  ASSERT_TRUE(p.ok());
  std::set<std::uint32_t> shards;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    const par::Route r = RouteProgram(p.value(), 4, 0, seq);
    EXPECT_FALSE(r.cross_shard);
    EXPECT_LT(r.shard, 4u);
    // Deterministic: the same admission sequence number always lands on
    // the same shard.
    EXPECT_EQ(RouteProgram(p.value(), 4, 0, seq).shard, r.shard);
    shards.insert(r.shard);
  }
  // The old behaviour piled every lock-free program onto shard 0 (the
  // coordinator, the busiest shard). The hash must actually spread them.
  EXPECT_EQ(shards.size(), 4u);
}

// ---------------------------------------------------------------------------
// GlobalHistory: the merged-commit-log checker
// ---------------------------------------------------------------------------

AccessEvent Rd(std::uint64_t entity, std::uint64_t version) {
  return AccessEvent{EntityId(entity), version, StateIndex(0), false};
}
AccessEvent Wr(std::uint64_t entity, std::uint64_t version) {
  return AccessEvent{EntityId(entity), version, StateIndex(0), true};
}

TEST(GlobalHistoryTest, CleanMergedOrderIsSerializable) {
  GlobalHistory h;
  h.Add(GlobalHistory::GlobalKey(1), {Wr(5, 1)});
  h.Add(GlobalHistory::LocalKey(0, TxnId(2)), {Rd(5, 1), Wr(5, 2)});
  EXPECT_FALSE(h.HasReplicaDivergence());
  EXPECT_TRUE(h.IsConflictSerializable());
  EXPECT_TRUE(h.WitnessCycle().empty());
}

TEST(GlobalHistoryTest, DetectsCrossShardCycle) {
  // T1 reads x before T2 writes it; T2 reads y before T1 writes it. Each
  // per-shard projection is serializable; only the merged view exposes the
  // r->w / r->w cycle.
  GlobalHistory h;
  h.Add(GlobalHistory::GlobalKey(1), {Rd(10, 0), Wr(20, 1)});
  h.Add(GlobalHistory::GlobalKey(2), {Rd(20, 0), Wr(10, 1)});
  EXPECT_FALSE(h.HasReplicaDivergence());
  EXPECT_FALSE(h.IsConflictSerializable());
  EXPECT_FALSE(h.WitnessCycle().empty());
}

TEST(GlobalHistoryTest, DetectsReplicaDivergence) {
  // Two distinct merged transactions publish the same version of the same
  // entity: two stores evolved it independently (the kReplica hole).
  GlobalHistory h;
  h.Add(GlobalHistory::LocalKey(0, TxnId(1)), {Wr(5, 1)});
  h.Add(GlobalHistory::LocalKey(1, TxnId(9)), {Wr(5, 1)});
  EXPECT_TRUE(h.HasReplicaDivergence());
  EXPECT_FALSE(h.IsConflictSerializable());
}

TEST(GlobalHistoryTest, SameKeyMayAddDisjointSlices) {
  GlobalHistory h;
  h.Add(GlobalHistory::GlobalKey(3), {Wr(1, 1)});
  h.Add(GlobalHistory::GlobalKey(3), {Wr(2, 1)});
  EXPECT_EQ(h.size(), 1u);
  EXPECT_FALSE(h.HasReplicaDivergence());
  EXPECT_TRUE(h.IsConflictSerializable());
}

// ---------------------------------------------------------------------------
// Engine: the sub-transaction hold protocol
// ---------------------------------------------------------------------------

TEST(EngineSubTxnTest, HoldReleaseLifecycle) {
  storage::EntityStore store;
  store.CreateMany(4, 0);
  core::EngineOptions opt;
  core::Engine engine(&store, opt);
  auto p = ProgramBuilder("sub")
               .LockExclusive(EntityId(1))
               .WriteImm(EntityId(1), 42)
               .Commit()
               .Build();
  ASSERT_TRUE(p.ok());
  auto id = engine.SpawnSub(std::move(p).value(), /*hold_pc=*/1);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // The slice acquires its lock and parks at the hold point; StepAny must
  // not advance it past the hold.
  for (int i = 0; i < 10 && !engine.AtHold(id.value()); ++i) {
    ASSERT_TRUE(engine.StepAny().ok());
  }
  ASSERT_TRUE(engine.AtHold(id.value()));
  for (int i = 0; i < 5; ++i) {
    auto s = engine.StepAny();
    ASSERT_TRUE(s.ok());
    EXPECT_FALSE(s.value()) << "held sub-transaction must not be stepped";
  }
  EXPECT_EQ(engine.StatusOf(id.value()), core::TxnStatus::kReady);

  ASSERT_TRUE(engine.ReleaseHold(id.value()).ok());
  while (engine.live_txn_count() > 0) {
    ASSERT_TRUE(engine.StepAny().ok());
  }
  EXPECT_EQ(engine.StatusOf(id.value()), core::TxnStatus::kCommitted);
  EXPECT_EQ(engine.metrics().commits, 1u);
}

// ---------------------------------------------------------------------------
// RunSharded in kLocks mode
// ---------------------------------------------------------------------------

ShardedOptions LocksOptions(double cross, std::uint64_t seed) {
  ShardedOptions opt;
  opt.xshard = XShardMode::kLocks;
  opt.num_shards = 4;
  opt.workload.num_entities = 64;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.workload.ops_per_entity = 2;
  opt.cross_shard_fraction = cross;
  opt.concurrency = 8;
  opt.total_txns = 160;
  opt.seed = seed;
  return opt;
}

class LocksModeTest : public ::testing::TestWithParam<double> {};

TEST_P(LocksModeTest, CommitsAllAndStaysGloballySerializable) {
  auto rep = RunSharded(LocksOptions(GetParam(), 11));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->committed, 160u);
  EXPECT_TRUE(rep->completed);
  EXPECT_TRUE(rep->serializable);
  EXPECT_TRUE(rep->global_serializable);
  EXPECT_TRUE(rep->xshard_locks);
  // Every admitted global retired: all slices spawned were committed.
  EXPECT_EQ(rep->xshard.global_txns, rep->cross_shard_txns);
  EXPECT_EQ(rep->xshard.global_commits, rep->xshard.global_txns);
  EXPECT_EQ(rep->xshard.sub_commits, rep->xshard.sub_txns);
  if (GetParam() > 0.0) {
    EXPECT_GT(rep->xshard.global_txns, 0u);
    // Every global splits into at least two slices.
    EXPECT_GE(rep->xshard.sub_txns, 2 * rep->xshard.global_txns);
    EXPECT_GT(rep->xshard.prepares, 0u);
    EXPECT_EQ(rep->xshard.prepares, rep->xshard.resolves);
  } else {
    EXPECT_EQ(rep->cross_shard_txns, 0u);
    EXPECT_EQ(rep->xshard.global_txns, 0u);
  }
  EXPECT_GT(rep->xshard.epochs, 0u);
  EXPECT_GT(rep->xshard.merges, 0u);
}

INSTANTIATE_TEST_SUITE_P(CrossFractions, LocksModeTest,
                         ::testing::Values(0.0, 0.05, 0.2));

TEST(LocksModeTest, ReportBitIdenticalAcrossRunsAndWorkerCounts) {
  auto opt = LocksOptions(0.2, 7);
  auto a = RunSharded(opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  const std::string ja = ShardedReportToJson(a.value());
  EXPECT_NE(ja.find("\"mode\":\"locks\""), std::string::npos);
  for (std::size_t workers : {1u, 2u, 7u}) {
    opt.num_threads = workers;
    auto b = RunSharded(opt);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(ja, ShardedReportToJson(b.value())) << "workers=" << workers;
  }
}

// Contested configuration: a small entity universe with a high cross-shard
// fraction, so slices of different globals block each other on several
// shards at once and union-only cycles actually form.
ShardedOptions ContestedLocksOptions(std::uint64_t seed) {
  ShardedOptions opt;
  opt.xshard = XShardMode::kLocks;
  opt.num_shards = 4;
  opt.workload.num_entities = 24;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.workload.ops_per_entity = 2;
  opt.cross_shard_fraction = 0.4;
  opt.concurrency = 16;
  opt.total_txns = 300;
  opt.seed = seed;
  return opt;
}

TEST(LocksModeTest, ResolvesGlobalCyclesByDistributedPartialRollback) {
  auto rep = RunSharded(ContestedLocksOptions(5));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->committed, 300u);
  EXPECT_TRUE(rep->completed);
  EXPECT_TRUE(rep->global_serializable);
  // The point of the configuration: at least one cycle existed only in the
  // union of the per-shard forests, and distributed partial rollback
  // removed it (while the run still commits everything).
  EXPECT_GE(rep->xshard.global_cycles, 1u);
  EXPECT_GE(rep->xshard.distributed_rollbacks, 1u);
  // 2PC accounting covers at least every slice of every global.
  EXPECT_GE(rep->xshard.messages,
            2 * (rep->xshard.prepares + rep->xshard.resolves));
}

TEST(LocksModeTest, ReplicaModeIsFlaggedGloballyNonSerializable) {
  // The regression witness for the hole this layer closes: the legacy
  // coordinator-replica shortcut executes cross-shard transactions against
  // the coordinator's private replica, so its writes diverge from the home
  // shards' stores. Per-shard histories stay serializable — only the
  // merged checker sees the hole.
  auto opt = ContestedLocksOptions(5);
  opt.xshard = XShardMode::kReplica;
  auto rep = RunSharded(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->serializable);  // every per-shard projection: fine
  EXPECT_FALSE(rep->xshard_locks);
  EXPECT_FALSE(rep->global_serializable) << "the replica shortcut must be "
                                            "flagged by the merged checker";
}

TEST(LocksModeTest, RequiresDeadlockDetection) {
  auto opt = LocksOptions(0.2, 3);
  opt.engine.handling = core::DeadlockHandling::kWoundWait;
  auto rep = RunSharded(opt);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
}

TEST(LocksModeTest, PublishesGlobalWaitsForSnapshotToHub) {
  obs::LiveHub hub;
  auto opt = ContestedLocksOptions(9);
  opt.hub = &hub;
  auto rep = RunSharded(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto snap = hub.GlobalSnapshot();
  ASSERT_TRUE(snap.has_value());
  // The final published union view is post-resolution: no global cycle
  // survives a merge round.
  EXPECT_TRUE(snap->acyclic);
  // Per-shard snapshots are published at merge cadence too.
  EXPECT_EQ(hub.Snapshots().size(), opt.num_shards);
}

}  // namespace
}  // namespace pardb

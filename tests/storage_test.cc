#include <gtest/gtest.h>

#include "storage/entity_store.h"

namespace pardb::storage {
namespace {

TEST(EntityStoreTest, CreateAndGet) {
  EntityStore store;
  ASSERT_TRUE(store.Create(EntityId(1), 42).ok());
  auto r = store.Get(EntityId(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, 42);
  EXPECT_EQ(r.value().version, 0u);
}

TEST(EntityStoreTest, CreateDuplicateFails) {
  EntityStore store;
  ASSERT_TRUE(store.Create(EntityId(1), 0).ok());
  Status s = store.Create(EntityId(1), 1);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(EntityStoreTest, CreateInvalidIdFails) {
  EntityStore store;
  EXPECT_EQ(store.Create(EntityId(), 0).code(), StatusCode::kInvalidArgument);
}

TEST(EntityStoreTest, GetMissingFails) {
  EntityStore store;
  EXPECT_TRUE(store.Get(EntityId(9)).status().IsNotFound());
}

TEST(EntityStoreTest, PublishBumpsVersion) {
  EntityStore store;
  ASSERT_TRUE(store.Create(EntityId(3), 5).ok());
  auto v1 = store.Publish(EntityId(3), 10);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 1u);
  auto v2 = store.Publish(EntityId(3), 20);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 2u);
  auto r = store.Get(EntityId(3));
  EXPECT_EQ(r.value().value, 20);
  EXPECT_EQ(r.value().version, 2u);
}

TEST(EntityStoreTest, PublishMissingFails) {
  EntityStore store;
  EXPECT_TRUE(store.Publish(EntityId(1), 0).status().IsNotFound());
}

TEST(EntityStoreTest, ResetValueKeepsVersion) {
  EntityStore store;
  ASSERT_TRUE(store.Create(EntityId(1), 5).ok());
  ASSERT_TRUE(store.Publish(EntityId(1), 6).ok());
  ASSERT_TRUE(store.ResetValue(EntityId(1), 7).ok());
  auto r = store.Get(EntityId(1));
  EXPECT_EQ(r.value().value, 7);
  EXPECT_EQ(r.value().version, 1u);
}

TEST(EntityStoreTest, CreateManyAssignsFreshIds) {
  EntityStore store;
  auto ids = store.CreateMany(5, 9);
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(store.Contains(ids[i]));
    EXPECT_EQ(store.Get(ids[i]).value().value, 9);
  }
  // More entities continue after explicit creations.
  ASSERT_TRUE(store.Create(EntityId(100), 1).ok());
  auto more = store.CreateMany(2);
  EXPECT_EQ(more[0].value(), 101u);
  EXPECT_EQ(more[1].value(), 102u);
  EXPECT_EQ(store.size(), 8u);
}

TEST(EntityStoreTest, SnapshotSortedByEntity) {
  EntityStore store;
  ASSERT_TRUE(store.Create(EntityId(5), 50).ok());
  ASSERT_TRUE(store.Create(EntityId(2), 20).ok());
  ASSERT_TRUE(store.Create(EntityId(9), 90).ok());
  auto snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, EntityId(2));
  EXPECT_EQ(snap[1].first, EntityId(5));
  EXPECT_EQ(snap[2].first, EntityId(9));
  EXPECT_EQ(snap[2].second, 90);
}

}  // namespace
}  // namespace pardb::storage

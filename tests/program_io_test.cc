#include <gtest/gtest.h>

#include "sim/workload.h"
#include "txn/program_io.h"

namespace pardb::txn {
namespace {

TEST(ParseProgramTest, FullFeaturedProgram) {
  const char* text = R"(
# a transfer between two accounts
program transfer
var v0 = 5
var v1 10
lockx E0
read E0 v0
locks E2          # read-only side input
read E2 v1
lockx E1
add v0 v0 v1
sub v1 v1 1
mul v1 v1 2
write E0 v0
write E1 42
unlock E2
commit
)";
  auto p = ParseProgram(text);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->name(), "transfer");
  EXPECT_EQ(p->num_vars(), 2u);
  EXPECT_EQ(p->initial_vars()[0], 5);
  EXPECT_EQ(p->initial_vars()[1], 10);
  EXPECT_EQ(p->NumLockRequests(), 3u);
  EXPECT_EQ(p->CountOps(OpCode::kCompute), 3u);
  EXPECT_EQ(p->CountOps(OpCode::kWrite), 2u);
  EXPECT_EQ(p->CountOps(OpCode::kUnlock), 1u);
  EXPECT_EQ(p->CountOps(OpCode::kCommit), 1u);
}

TEST(ParseProgramTest, ImplicitVariableDeclaration) {
  auto p = ParseProgram("lockx E0\nread E0 v3\ncommit\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->num_vars(), 4u);  // v0..v3
  EXPECT_EQ(p->initial_vars()[3], 0);
}

TEST(ParseProgramTest, ErrorsCarryLineNumbers) {
  auto bad_op = ParseProgram("lockx E0\nfrobnicate E0\n");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_NE(bad_op.status().message().find("line 2"), std::string::npos);

  auto bad_entity = ParseProgram("lockx Q0\n");
  ASSERT_FALSE(bad_entity.ok());
  EXPECT_NE(bad_entity.status().message().find("line 1"), std::string::npos);

  auto bad_var = ParseProgram("var vx = 3\n");
  EXPECT_FALSE(bad_var.ok());

  auto bad_write = ParseProgram("lockx E0\nwrite E0\n");
  EXPECT_FALSE(bad_write.ok());

  auto bad_commit = ParseProgram("commit now\n");
  EXPECT_FALSE(bad_commit.ok());
}

TEST(ParseProgramTest, ValidationStillApplies) {
  // Parses fine but violates two-phase locking.
  auto p = ParseProgram("lockx E0\nunlock E0\nlockx E1\n");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kProtocolViolation);
}

TEST(ParseProgramTest, EmptyAndCommentsOnly) {
  auto p = ParseProgram("# nothing here\n\n   \n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 0u);
}

TEST(FormatProgramTest, RoundTripsHandWrittenProgram) {
  ProgramBuilder b("rt", 2);
  b.InitVar(0, 7).InitVar(1, -3);
  b.LockExclusive(EntityId(4))
      .Read(EntityId(4), 0)
      .LockShared(EntityId(2))
      .Compute(1, Operand::Var(0), ArithOp::kMul, Operand::Imm(-2))
      .WriteVar(EntityId(4), 1)
      .Unlock(EntityId(2))
      .Commit();
  auto built = b.Build();
  ASSERT_TRUE(built.ok());
  const std::string text = FormatProgram(built.value());
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(FormatProgram(reparsed.value()), text);
  EXPECT_EQ(reparsed->ToString(), built.value().ToString());
}

TEST(FormatProgramTest, RoundTripsGeneratedWorkloads) {
  sim::WorkloadOptions opt;
  opt.num_entities = 12;
  opt.min_locks = 2;
  opt.max_locks = 5;
  opt.shared_fraction = 0.4;
  sim::WorkloadGenerator gen(opt, 99);
  for (int i = 0; i < 40; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    auto reparsed = ParseProgram(FormatProgram(p.value()));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(reparsed->ToString(), p.value().ToString());
    EXPECT_EQ(reparsed->name(), p.value().name());
    EXPECT_EQ(reparsed->initial_vars(), p.value().initial_vars());
  }
}

}  // namespace
}  // namespace pardb::txn

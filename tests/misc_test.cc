// Cross-cutting coverage: trace events from prevention schemes, SDG
// monitoring shutdown, distributed report formatting, and workload naming.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/trace.h"
#include "dist/distributed.h"
#include "rollback/sdg_strategy.h"
#include "sim/driver.h"
#include "sim/workload.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb {
namespace {

using core::DeadlockHandling;
using core::Engine;
using core::EngineOptions;
using core::RingTrace;
using core::TraceEvent;
using txn::ProgramBuilder;

txn::Program TwoLock(EntityId e1, EntityId e2, const std::string& name) {
  ProgramBuilder b(name, 1);
  b.LockExclusive(e1).LockExclusive(e2).WriteImm(e2, 1).Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(TraceIntegrationTest, WoundEventEmitted) {
  storage::EntityStore store;
  auto ids = store.CreateMany(4, 0);
  EngineOptions opt;
  opt.handling = DeadlockHandling::kWoundWait;
  Engine engine(&store, opt);
  RingTrace trace;
  engine.set_trace(&trace);
  auto t0 = engine.Spawn(TwoLock(ids[0], ids[1], "old"));
  auto t1 = engine.Spawn(TwoLock(ids[0], ids[2], "young"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(engine.StepTxn(t1.value()).ok());   // young locks 0
  ASSERT_TRUE(engine.StepTxn(t0.value()).ok());   // old wounds young
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kWound), 1u);
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kRollback), 1u);
  ASSERT_TRUE(engine.RunToCompletion().ok());
}

TEST(TraceIntegrationTest, DeathAndTimeoutEventsEmitted) {
  {
    storage::EntityStore store;
    auto ids = store.CreateMany(4, 0);
    EngineOptions opt;
    opt.handling = DeadlockHandling::kWaitDie;
    Engine engine(&store, opt);
    RingTrace trace;
    engine.set_trace(&trace);
    auto t0 = engine.Spawn(TwoLock(ids[0], ids[1], "old"));
    auto t1 = engine.Spawn(TwoLock(ids[0], ids[2], "young"));
    ASSERT_TRUE(t0.ok());
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(engine.StepTxn(t0.value()).ok());  // old locks 0
    ASSERT_TRUE(engine.StepTxn(t1.value()).ok());  // young dies
    EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kDeath), 1u);
    ASSERT_TRUE(engine.RunToCompletion().ok());
  }
  {
    storage::EntityStore store;
    auto ids = store.CreateMany(4, 0);
    EngineOptions opt;
    opt.handling = DeadlockHandling::kTimeout;
    opt.wait_timeout_steps = 4;
    Engine engine(&store, opt);
    RingTrace trace;
    engine.set_trace(&trace);
    ASSERT_TRUE(engine.Spawn(TwoLock(ids[0], ids[1], "a")).ok());
    ASSERT_TRUE(engine.Spawn(TwoLock(ids[1], ids[0], "b")).ok());
    ASSERT_TRUE(engine.RunToCompletion().ok());
    EXPECT_GE(trace.CountOf(TraceEvent::Kind::kTimeout), 1u);
  }
}

TEST(SdgMonitoringTest, LastLockDeclarationStopsRecording) {
  ProgramBuilder b("p", 1);
  b.LockExclusive(EntityId(0)).WriteImm(EntityId(0), 1).Commit();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  rollback::SdgStrategy s(program.value());
  s.OnLockGranted(0, EntityId(0), lock::LockMode::kExclusive, 7, false);
  s.OnLastLockGranted();
  // Writes after the declaration leave no trace in the graph.
  s.OnEntityWrite(EntityId(0), 1, 1);
  s.OnVarWrite(0, 2, 1);
  EXPECT_EQ(s.sdg().NumRecordedWrites(), 0u);
  EXPECT_EQ(s.LocalValue(EntityId(0)), std::optional<Value>(1));
  EXPECT_EQ(s.VarValue(0), 2);
}

TEST(DistReportTest, ToStringAndFractionBounds) {
  dist::DistOptions opt;
  opt.num_sites = 3;
  opt.workload.num_entities = 6;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.concurrency = 5;
  opt.total_txns = 40;
  opt.seed = 21;
  auto rep = dist::RunDistributed(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_GE(rep->multi_site_fraction, 0.0);
  EXPECT_LE(rep->multi_site_fraction, 1.0);
  std::string s = rep->ToString();
  EXPECT_NE(s.find("committed=40"), std::string::npos);
  EXPECT_NE(s.find("serializable=yes"), std::string::npos);
}

TEST(WorkloadNamingTest, PatternAndHandlingNames) {
  EXPECT_EQ(sim::WritePatternName(sim::WritePattern::kScattered),
            "scattered");
  EXPECT_EQ(sim::WritePatternName(sim::WritePattern::kClustered),
            "clustered");
  EXPECT_EQ(sim::WritePatternName(sim::WritePattern::kThreePhase),
            "three-phase");
  EXPECT_EQ(core::DeadlockHandlingName(DeadlockHandling::kDetection),
            "detection");
  EXPECT_EQ(core::DeadlockHandlingName(DeadlockHandling::kWoundWait),
            "wound-wait");
  EXPECT_EQ(core::DeadlockHandlingName(DeadlockHandling::kWaitDie),
            "wait-die");
  EXPECT_EQ(core::DeadlockHandlingName(DeadlockHandling::kTimeout),
            "timeout");
}

TEST(SimReportTest, RollbackCostsPopulated) {
  sim::SimOptions opt;
  opt.workload.num_entities = 4;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 4;
  opt.concurrency = 6;
  opt.total_txns = 60;
  opt.seed = 19;
  opt.check_serializability = false;
  auto rep = sim::RunSimulation(opt);
  ASSERT_TRUE(rep.ok());
  ASSERT_GT(rep->metrics.rollbacks, 0u);
  EXPECT_EQ(rep->rollback_costs.count, rep->metrics.rollbacks);
  EXPECT_LE(rep->rollback_costs.p50, rep->rollback_costs.p95);
  EXPECT_LE(rep->rollback_costs.p95, rep->rollback_costs.max);
}

}  // namespace
}  // namespace pardb

#include <gtest/gtest.h>

#include "analysis/history.h"

namespace pardb::analysis {
namespace {

const TxnId kT1(1), kT2(2), kT3(3);
const EntityId kA(10), kB(11);

TEST(HistoryTest, EmptyHistorySerializable) {
  HistoryRecorder h;
  EXPECT_TRUE(h.IsConflictSerializable());
  EXPECT_TRUE(h.WitnessCycle().empty());
  EXPECT_TRUE(h.SerialOrder().ok());
}

TEST(HistoryTest, SingleWriterSerializable) {
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnRead(kT1, kA, 0, 1);
  h.OnPublish(kT1, kA, 1, 3);
  h.OnCommit(kT1);
  EXPECT_TRUE(h.IsConflictSerializable());
  auto order = h.SerialOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), std::vector<TxnId>{kT1});
}

TEST(HistoryTest, WriteWriteOrderRespected) {
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  h.OnPublish(kT1, kA, 1, 2);
  h.OnPublish(kT2, kA, 2, 2);
  h.OnCommit(kT1);
  h.OnCommit(kT2);
  EXPECT_TRUE(h.IsConflictSerializable());
  auto order = h.SerialOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<TxnId>{kT1, kT2}));
}

TEST(HistoryTest, ClassicNonSerializableCycleDetected) {
  // T1 reads A(v0) then publishes B; T2 reads B(v0) then publishes A.
  // r1(A) w2(A) and r2(B) w1(B): T1 < T2 (A) and T2 < T1 (B): cycle.
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  h.OnRead(kT1, kA, 0, 1);
  h.OnRead(kT2, kB, 0, 1);
  h.OnPublish(kT2, kA, 1, 3);
  h.OnPublish(kT1, kB, 1, 3);
  h.OnCommit(kT1);
  h.OnCommit(kT2);
  EXPECT_FALSE(h.IsConflictSerializable());
  auto cycle = h.WitnessCycle();
  EXPECT_GE(cycle.size(), 2u);
  EXPECT_FALSE(h.SerialOrder().ok());
}

TEST(HistoryTest, ReadersOrderAgainstLaterWriters) {
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  h.OnRead(kT2, kA, 0, 1);      // reads initial version
  h.OnPublish(kT1, kA, 1, 2);   // later writer
  h.OnCommit(kT1);
  h.OnCommit(kT2);
  auto order = h.SerialOrder();
  ASSERT_TRUE(order.ok());
  // T2 read the pre-T1 version, so T2 must precede T1.
  EXPECT_EQ(order.value(), (std::vector<TxnId>{kT2, kT1}));
}

TEST(HistoryTest, ReaderAfterWriterOrdersForward) {
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  h.OnPublish(kT1, kA, 1, 2);
  h.OnRead(kT2, kA, 1, 1);  // reads T1's version
  h.OnCommit(kT1);
  h.OnCommit(kT2);
  auto order = h.SerialOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<TxnId>{kT1, kT2}));
}

TEST(HistoryTest, RollbackErasesUndoneReads) {
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  // T1 reads A's initial version at state 5, then is rolled back to state
  // 2: the read never happened.
  h.OnRead(kT1, kA, 0, 5);
  h.OnRollback(kT1, 2);
  h.OnPublish(kT2, kA, 1, 1);
  h.OnCommit(kT2);
  // T1 re-executes and reads T2's version.
  h.OnRead(kT1, kA, 1, 5);
  h.OnPublish(kT1, kB, 1, 7);
  h.OnCommit(kT1);
  EXPECT_TRUE(h.IsConflictSerializable());
  auto order = h.SerialOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<TxnId>{kT2, kT1}));
}

TEST(HistoryTest, UncommittedTransactionsExcluded) {
  HistoryRecorder h;
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  h.OnRead(kT1, kA, 0, 1);
  h.OnRead(kT2, kB, 0, 1);
  h.OnPublish(kT2, kA, 1, 3);
  h.OnPublish(kT1, kB, 1, 3);
  h.OnCommit(kT1);
  // T2 never commits: the committed projection is the single T1.
  EXPECT_TRUE(h.IsConflictSerializable());
  EXPECT_EQ(h.committed_count(), 1u);
}

TEST(HistoryTest, ThreeTxnCycle) {
  HistoryRecorder h;
  const EntityId kC(12);
  h.OnBegin(kT1, 0);
  h.OnBegin(kT2, 1);
  h.OnBegin(kT3, 2);
  h.OnRead(kT1, kA, 0, 1);
  h.OnPublish(kT2, kA, 1, 2);  // T1 < T2
  h.OnRead(kT2, kB, 0, 1);
  h.OnPublish(kT3, kB, 1, 2);  // T2 < T3
  h.OnRead(kT3, kC, 0, 1);
  h.OnPublish(kT1, kC, 1, 2);  // T3 < T1
  h.OnCommit(kT1);
  h.OnCommit(kT2);
  h.OnCommit(kT3);
  EXPECT_FALSE(h.IsConflictSerializable());
  EXPECT_EQ(h.WitnessCycle().size(), 3u);
}

}  // namespace
}  // namespace pardb::analysis

#include <gtest/gtest.h>

#include "lock/lock_manager.h"
#include "lock/lock_mode.h"

namespace pardb::lock {
namespace {

const TxnId kT1(1), kT2(2), kT3(3);
const EntityId kA(10), kB(11);

TEST(LockModeTest, CompatibilityMatrix) {
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kShared, LockMode::kExclusive));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kExclusive));
}

TEST(LockManagerTest, GrantOnFreeEntity) {
  LockManager lm;
  auto r = lm.Request(kT1, kA, LockMode::kExclusive);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().granted);
  EXPECT_EQ(lm.HeldMode(kT1, kA), LockMode::kExclusive);
  EXPECT_EQ(lm.HeldCount(kT1), 1u);
}

TEST(LockManagerTest, SharedCoexists) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_TRUE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  auto holders = lm.Holders(kA);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0].first, kT1);
  EXPECT_EQ(holders[1].first, kT2);
}

TEST(LockManagerTest, ExclusiveBlocksAndReportsHolders) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  auto r = lm.Request(kT2, kA, LockMode::kExclusive);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().granted);
  ASSERT_EQ(r.value().blockers.size(), 1u);
  EXPECT_EQ(r.value().blockers[0], kT1);
  EXPECT_TRUE(lm.IsWaiting(kT2));
  auto pending = lm.Waiting(kT2);
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->entity, kA);
  EXPECT_EQ(pending->mode, LockMode::kExclusive);
}

TEST(LockManagerTest, SharedRequestBlockedByExclusiveHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  auto r = lm.Request(kT2, kA, LockMode::kShared);
  EXPECT_FALSE(r.value().granted);
  EXPECT_EQ(r.value().blockers, std::vector<TxnId>{kT1});
}

TEST(LockManagerTest, XRequestOnSharedReportsAllHolders) {
  // The paper's Type 2 conflict: a waiter can wait for several holders.
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_TRUE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  auto r = lm.Request(kT3, kA, LockMode::kExclusive);
  EXPECT_FALSE(r.value().granted);
  EXPECT_EQ(r.value().blockers, (std::vector<TxnId>{kT1, kT2}));
}

TEST(LockManagerTest, ReleaseGrantsFifo) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT3, kA, LockMode::kExclusive).value().granted);
  auto grants = lm.Release(kT1, kA);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 1u);
  EXPECT_EQ(grants.value()[0].txn, kT2);  // first waiter wins
  EXPECT_EQ(lm.HeldMode(kT2, kA), LockMode::kExclusive);
  EXPECT_TRUE(lm.IsWaiting(kT3));
}

TEST(LockManagerTest, ReleaseGrantsSharedBatch) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm.Request(kT3, kA, LockMode::kShared).value().granted);
  auto grants = lm.Release(kT1, kA);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(grants.value().size(), 2u);  // both shared waiters together
  EXPECT_EQ(lm.HeldMode(kT2, kA), LockMode::kShared);
  EXPECT_EQ(lm.HeldMode(kT3, kA), LockMode::kShared);
}

TEST(LockManagerTest, SharedBypassInPaperModel) {
  // Default (no FIFO fairness): a shared request compatible with all
  // holders is granted even while an exclusive request waits.
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  auto r = lm.Request(kT3, kA, LockMode::kShared);
  EXPECT_TRUE(r.value().granted);
}

TEST(LockManagerTest, FifoFairnessBlocksBypass) {
  LockManager::Options opt;
  opt.fifo_fairness = true;
  opt.wait_edge_policy = WaitEdgePolicy::kHoldersAndQueue;
  LockManager lm(opt);
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  auto r = lm.Request(kT3, kA, LockMode::kShared);
  EXPECT_FALSE(r.value().granted);
  // Blockers include the incompatible waiter ahead.
  EXPECT_EQ(r.value().blockers, std::vector<TxnId>{kT2});
}

TEST(LockManagerTest, DoubleLockIsProtocolViolation) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  auto r = lm.Request(kT1, kA, LockMode::kExclusive);
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolViolation);
  auto r2 = lm.Request(kT1, kA, LockMode::kShared);
  EXPECT_EQ(r2.status().code(), StatusCode::kProtocolViolation);
}

TEST(LockManagerTest, UpgradeSoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  auto r = lm.Request(kT1, kA, LockMode::kExclusive);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().granted);
  EXPECT_TRUE(r.value().is_upgrade);
  EXPECT_EQ(lm.HeldMode(kT1, kA), LockMode::kExclusive);
}

TEST(LockManagerTest, UpgradeWaitsForOtherHolders) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_TRUE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  auto r = lm.Request(kT1, kA, LockMode::kExclusive);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().granted);
  EXPECT_TRUE(r.value().is_upgrade);
  EXPECT_EQ(r.value().blockers, std::vector<TxnId>{kT2});
  // Still holds its shared lock while waiting.
  EXPECT_EQ(lm.HeldMode(kT1, kA), LockMode::kShared);
  // Other holder releases: the upgrade is granted.
  auto grants = lm.Release(kT2, kA);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 1u);
  EXPECT_EQ(grants.value()[0].txn, kT1);
  EXPECT_TRUE(grants.value()[0].was_upgrade);
  EXPECT_EQ(lm.HeldMode(kT1, kA), LockMode::kExclusive);
}

TEST(LockManagerTest, UpgradeJumpsQueue) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_TRUE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm.Request(kT3, kA, LockMode::kExclusive).value().granted);
  // T1's upgrade goes to the queue front, ahead of T3.
  ASSERT_FALSE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  auto q = lm.WaitQueue(kA);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].first, kT1);
  auto grants = lm.Release(kT2, kA);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 1u);
  EXPECT_EQ(grants.value()[0].txn, kT1);
}

TEST(LockManagerTest, DowngradeToShared) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  auto grants = lm.Downgrade(kT1, kA);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 1u);
  EXPECT_EQ(grants.value()[0].txn, kT2);
  EXPECT_EQ(lm.HeldMode(kT1, kA), LockMode::kShared);
  EXPECT_EQ(lm.HeldMode(kT2, kA), LockMode::kShared);
}

TEST(LockManagerTest, DowngradeRequiresExclusive) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  EXPECT_TRUE(lm.Downgrade(kT1, kA).status().IsNotFound());
  EXPECT_TRUE(lm.Downgrade(kT2, kB).status().IsNotFound());
}

TEST(LockManagerTest, CancelWaitUnblocksQueue) {
  // FIFO mode queues T3's shared request behind T2's exclusive one;
  // cancelling T2 unblocks T3.
  LockManager::Options opt;
  opt.fifo_fairness = true;
  LockManager lm2(opt);
  ASSERT_TRUE(lm2.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm2.Request(kT2, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm2.Request(kT3, kA, LockMode::kShared).value().granted);
  auto grants = lm2.CancelWait(kT2, kA);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 1u);
  EXPECT_EQ(grants.value()[0].txn, kT3);
  EXPECT_FALSE(lm2.IsWaiting(kT2));
}

TEST(LockManagerTest, ReleaseWhileOwnUpgradeQueuedDemotesIt) {
  // Regression (found by fuzzing): T1 and T2 both hold S and both queue
  // upgrades; if T1 then releases its S lock, its queued upgrade must
  // become a plain X request or it could never be granted.
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kShared).value().granted);
  ASSERT_TRUE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  // T1 abandons its shared lock (e.g. a rollback released it).
  auto grants = lm.Release(kT1, kA);
  ASSERT_TRUE(grants.ok());
  // T2, now the sole holder, gets its upgrade.
  ASSERT_EQ(grants.value().size(), 1u);
  EXPECT_EQ(grants.value()[0].txn, kT2);
  EXPECT_TRUE(grants.value()[0].was_upgrade);
  // T1 still waits, but as a plain X request that is eventually granted.
  EXPECT_TRUE(lm.IsWaiting(kT1));
  auto g2 = lm.Release(kT2, kA);
  ASSERT_TRUE(g2.ok());
  ASSERT_EQ(g2.value().size(), 1u);
  EXPECT_EQ(g2.value()[0].txn, kT1);
  EXPECT_FALSE(g2.value()[0].was_upgrade);
  EXPECT_EQ(lm.HeldMode(kT1, kA), LockMode::kExclusive);
}

TEST(LockManagerTest, CancelWaitNotWaiting) {
  LockManager lm;
  EXPECT_TRUE(lm.CancelWait(kT1, kA).status().IsNotFound());
}

TEST(LockManagerTest, ReleaseNotHeld) {
  LockManager lm;
  EXPECT_TRUE(lm.Release(kT1, kA).status().IsNotFound());
}

TEST(LockManagerTest, SecondRequestWhileWaitingFails) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  auto r = lm.Request(kT2, kB, LockMode::kExclusive);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LockManagerTest, ReleaseAllCoversHeldAndWaiting) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_TRUE(lm.Request(kT1, kB, LockMode::kShared).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  auto grants = lm.ReleaseAll(kT1);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, kT2);
  EXPECT_EQ(lm.HeldCount(kT1), 0u);
  EXPECT_TRUE(lm.Holders(kB).empty());
}

TEST(LockManagerTest, HeldByListsEntities) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kB, LockMode::kShared).value().granted);
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  auto held = lm.HeldBy(kT1);
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[0].first, kA);  // sorted by entity
  EXPECT_EQ(held[0].second, LockMode::kExclusive);
  EXPECT_EQ(held[1].first, kB);
}

TEST(LockManagerTest, BlockersOfWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kExclusive).value().granted);
  EXPECT_EQ(lm.BlockersOf(kT2), std::vector<TxnId>{kT1});
  EXPECT_TRUE(lm.BlockersOf(kT1).empty());
}

TEST(LockManagerTest, ToStringMentionsHoldersAndQueue) {
  LockManager lm;
  ASSERT_TRUE(lm.Request(kT1, kA, LockMode::kExclusive).value().granted);
  ASSERT_FALSE(lm.Request(kT2, kA, LockMode::kShared).value().granted);
  std::string s = lm.ToString();
  EXPECT_NE(s.find("T1:X"), std::string::npos);
  EXPECT_NE(s.find("T2:S"), std::string::npos);
}

}  // namespace
}  // namespace pardb::lock

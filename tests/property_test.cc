// Property-based tests over random workloads: the paper's §2 claim that
// partial rollback never compromises two-phase locking's serializability,
// the Theorem 2 ordering invariant, the Theorem 1 forest invariant and the
// Theorem 3 space bound, all checked across every strategy/policy
// combination.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/history.h"
#include "core/engine.h"
#include "sim/driver.h"
#include "sim/workload.h"
#include "storage/entity_store.h"

namespace pardb {
namespace {

using core::Engine;
using core::EngineOptions;
using core::SchedulerKind;
using core::VictimPolicyKind;
using rollback::StrategyKind;
using sim::WorkloadGenerator;
using sim::WorkloadOptions;

struct Config {
  StrategyKind strategy;
  VictimPolicyKind policy;
  core::DeadlockHandling handling = core::DeadlockHandling::kDetection;
};

std::vector<Config> AllConfigs() {
  std::vector<Config> out;
  // Detection with every victim policy.
  for (auto s : {StrategyKind::kTotalRestart, StrategyKind::kMcs,
                 StrategyKind::kSdg}) {
    for (auto p :
         {VictimPolicyKind::kMinCost, VictimPolicyKind::kMinCostOrdered,
          VictimPolicyKind::kYoungest, VictimPolicyKind::kOldest,
          VictimPolicyKind::kRequester}) {
      out.push_back({s, p});
    }
  }
  // Prevention/timeout schemes with every rollback strategy.
  for (auto s : {StrategyKind::kTotalRestart, StrategyKind::kMcs,
                 StrategyKind::kSdg}) {
    for (auto h :
         {core::DeadlockHandling::kWoundWait, core::DeadlockHandling::kWaitDie,
          core::DeadlockHandling::kTimeout}) {
      out.push_back({s, VictimPolicyKind::kMinCostOrdered, h});
    }
  }
  return out;
}

class PropertyTest : public ::testing::TestWithParam<Config> {};

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PropertyTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name(core::DeadlockHandlingName(info.param.handling));
      name += "_";
      name += rollback::StrategyKindName(info.param.strategy);
      if (info.param.handling == core::DeadlockHandling::kDetection) {
        name += "_";
        name += core::VictimPolicyKindName(info.param.policy);
      }
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST_P(PropertyTest, ContendedRunsStaySerializable) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::SimOptions opt;
    opt.engine.strategy = GetParam().strategy;
    opt.engine.victim_policy = GetParam().policy;
    opt.engine.handling = GetParam().handling;
    opt.engine.scheduler = SchedulerKind::kRandom;
    opt.engine.seed = seed;
    opt.workload.num_entities = 5;  // heavy contention
    opt.workload.min_locks = 2;
    opt.workload.max_locks = 4;
    opt.workload.ops_per_entity = 2;
    opt.concurrency = 5;
    opt.total_txns = 50;
    opt.max_steps = 2'000'000;
    opt.seed = seed * 100;
    auto report = sim::RunSimulation(opt);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (GetParam().policy == VictimPolicyKind::kMinCost &&
        GetParam().handling == core::DeadlockHandling::kDetection) {
      // Unconstrained min-cost may livelock — the paper's potentially
      // infinite mutual preemption (Figure 2). Whatever committed must
      // still be serializable.
      EXPECT_TRUE(report->serializable) << report->ToString();
    } else {
      EXPECT_TRUE(report->completed) << report->ToString();
      EXPECT_EQ(report->committed, 50u);
      EXPECT_TRUE(report->serializable)
          << "seed " << seed << ": " << report->ToString();
    }
    EXPECT_LE(report->metrics.ideal_wasted_ops, report->metrics.wasted_ops);
  }
}

TEST_P(PropertyTest, SharedLockRunsStaySerializable) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::SimOptions opt;
    opt.engine.strategy = GetParam().strategy;
    opt.engine.victim_policy = GetParam().policy;
    opt.engine.handling = GetParam().handling;
    opt.engine.scheduler = SchedulerKind::kRandom;
    opt.engine.seed = seed;
    opt.workload.num_entities = 6;
    opt.workload.min_locks = 2;
    opt.workload.max_locks = 4;
    opt.workload.shared_fraction = 0.5;
    opt.concurrency = 5;
    opt.total_txns = 40;
    opt.max_steps = 2'000'000;
    opt.seed = seed * 31;
    auto report = sim::RunSimulation(opt);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->serializable) << report->ToString();
    if (GetParam().policy != VictimPolicyKind::kMinCost ||
        GetParam().handling != core::DeadlockHandling::kDetection) {
      EXPECT_TRUE(report->completed) << report->ToString();
    }
  }
}

// The concurrent outcome must equal SOME serial execution of the same
// programs (view of final database state) — stronger than the precedence
// check, verified by brute force over all permutations of 3 transactions.
TEST_P(PropertyTest, FinalStateMatchesSomeSerialOrder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadOptions wopt;
    wopt.num_entities = 4;
    wopt.min_locks = 2;
    wopt.max_locks = 3;
    wopt.ops_per_entity = 2;
    WorkloadGenerator gen(wopt, seed);
    std::vector<txn::Program> programs;
    for (int i = 0; i < 3; ++i) {
      auto p = gen.Next();
      ASSERT_TRUE(p.ok());
      programs.push_back(std::move(p).value());
    }

    // Concurrent run.
    storage::EntityStore store;
    store.CreateMany(wopt.num_entities, 100);
    EngineOptions eopt;
    eopt.strategy = GetParam().strategy;
    eopt.victim_policy = GetParam().policy;
    eopt.handling = GetParam().handling;
    eopt.scheduler = SchedulerKind::kRandom;
    eopt.seed = seed;
    Engine engine(&store, eopt);
    for (const auto& p : programs) {
      ASSERT_TRUE(engine.Spawn(p).ok());
    }
    Status run = engine.RunToCompletion(2'000'000);
    if (!run.ok() && run.code() == StatusCode::kResourceExhausted &&
        GetParam().policy == VictimPolicyKind::kMinCost &&
        GetParam().handling == core::DeadlockHandling::kDetection) {
      continue;  // documented min-cost livelock; nothing to compare
    }
    ASSERT_TRUE(run.ok()) << run << "\n" << engine.DumpState();
    auto concurrent = store.Snapshot();

    // All serial orders.
    std::vector<int> perm{0, 1, 2};
    bool matched = false;
    do {
      storage::EntityStore serial_store;
      serial_store.CreateMany(wopt.num_entities, 100);
      Engine serial(&serial_store, EngineOptions{});
      bool ok = true;
      for (int i : perm) {
        auto t = serial.Spawn(programs[i]);
        ok = ok && t.ok() && serial.RunToCompletion().ok();
      }
      ASSERT_TRUE(ok);
      if (serial_store.Snapshot() == concurrent) {
        matched = true;
        break;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_TRUE(matched) << "no serial order matches, seed " << seed;
  }
}

// Theorem 2's invariant under the ordered policy: a preempted victim is
// always younger (later entry) than the requester that caused the
// preemption.
TEST(OrderedPolicyPropertyTest, VictimsNeverOlderThanRequester) {
  sim::SimOptions opt;
  opt.engine.victim_policy = VictimPolicyKind::kMinCostOrdered;
  opt.engine.scheduler = SchedulerKind::kRandom;
  opt.workload.num_entities = 5;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.concurrency = 6;
  opt.total_txns = 80;
  opt.seed = 3;

  storage::EntityStore store;
  store.CreateMany(opt.workload.num_entities, 100);
  Engine engine(&store, opt.engine);
  WorkloadGenerator gen(opt.workload, opt.seed);
  std::uint64_t spawned = 0;
  while (engine.metrics().commits < opt.total_txns) {
    while (spawned < opt.total_txns &&
           spawned - engine.metrics().commits < opt.concurrency) {
      auto p = gen.Next();
      ASSERT_TRUE(p.ok());
      ASSERT_TRUE(engine.Spawn(std::move(p).value()).ok());
      ++spawned;
    }
    auto stepped = engine.StepAny();
    ASSERT_TRUE(stepped.ok());
    ASSERT_TRUE(stepped.value().has_value());
  }
  for (const auto& ev : engine.deadlock_events()) {
    for (TxnId v : ev.victims) {
      if (v == ev.requester) continue;
      EXPECT_GT(engine.EntryOf(v), engine.EntryOf(ev.requester))
          << "older transaction preempted under the ordered policy";
    }
  }
}

// Theorem 1: with exclusive locks only, the waits-for graph is a forest at
// every step (checked between scheduler steps on a contended workload).
// Uses the paper's own grant model — with holder-only arcs a waiter waits
// for exactly one exclusive holder.
TEST(ForestPropertyTest, XOnlyGraphAlwaysForest) {
  storage::EntityStore store;
  store.CreateMany(5, 100);
  EngineOptions eopt;
  eopt.scheduler = SchedulerKind::kRandom;
  eopt.seed = 5;
  eopt.lock_options.fifo_fairness = false;
  eopt.lock_options.wait_edge_policy = lock::WaitEdgePolicy::kHoldersOnly;
  Engine engine(&store, eopt);
  WorkloadOptions wopt;
  wopt.num_entities = 5;
  wopt.min_locks = 2;
  wopt.max_locks = 4;
  WorkloadGenerator gen(wopt, 21);
  for (int i = 0; i < 8; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(engine.Spawn(std::move(p).value()).ok());
  }
  int guard = 200000;
  while (!engine.AllCommitted() && guard-- > 0) {
    auto stepped = engine.StepAny();
    ASSERT_TRUE(stepped.ok());
    ASSERT_TRUE(stepped.value().has_value());
    EXPECT_TRUE(engine.waits_for().IsForest())
        << engine.waits_for().ToDot();
  }
  EXPECT_TRUE(engine.AllCommitted());
}

// Theorem 3: the engine-observed peak MCS copies never exceed n(n+1)/2
// entity copies and n*|L| variable copies for n = max locks per txn.
TEST(McsSpacePropertyTest, EngineRunsRespectTheorem3Bound) {
  sim::SimOptions opt;
  opt.engine.strategy = StrategyKind::kMcs;
  opt.workload.num_entities = 8;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 6;
  opt.workload.ops_per_entity = 3;
  opt.workload.pattern = sim::WritePattern::kScattered;
  opt.concurrency = 5;
  opt.total_txns = 60;
  opt.seed = 7;
  auto report = sim::RunSimulation(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::size_t n = opt.workload.max_locks;
  EXPECT_LE(report->metrics.max_entity_copies, n * (n + 1) / 2);
  // |L| = one var per locked entity in the generator.
  EXPECT_LE(report->metrics.max_var_copies, n * opt.workload.max_locks);
}

// Strategy comparison on identical workloads: single-copy strategies can
// only lose MORE progress than MCS's exact restoration would, never less
// (per-event; aggregate across a run is measured in the benches).
TEST(StrategyComparisonTest, ActualCostNeverBelowIdeal) {
  for (auto strategy :
       {StrategyKind::kTotalRestart, StrategyKind::kMcs, StrategyKind::kSdg}) {
    sim::SimOptions opt;
    opt.engine.strategy = strategy;
    opt.workload.num_entities = 5;
    opt.workload.min_locks = 2;
    opt.workload.max_locks = 4;
    opt.concurrency = 5;
    opt.total_txns = 40;
    opt.seed = 23;
    auto report = sim::RunSimulation(opt);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->metrics.wasted_ops, report->metrics.ideal_wasted_ops);
    if (strategy == StrategyKind::kMcs) {
      EXPECT_EQ(report->metrics.wasted_ops, report->metrics.ideal_wasted_ops);
    }
  }
}

}  // namespace
}  // namespace pardb

#include "bench/table_util.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace pardb::bench {
namespace {

std::vector<std::string> Lines(const Table& t) {
  std::ostringstream os;
  t.Print(os);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(os.str());
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TableUtilTest, ColumnsAlignWhenCellExceedsHeaderWidth) {
  Table t({"rate", "ok"});
  // 7-digit cell, far wider than its 4-char header: the separator and
  // every row must still pad to the widest cell in the column.
  t.AddRow(std::uint64_t{1234567}, "y");
  t.AddRow(std::uint64_t{9}, "n");
  const auto lines = Lines(t);
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << line;
    EXPECT_EQ(line.front(), '|') << line;
    EXPECT_EQ(line.back(), '|') << line;  // no trailing whitespace
  }
  // Pipes must sit in the same columns on every line.
  for (std::size_t c = 0; c < lines[0].size(); ++c) {
    if (lines[0][c] != '|') continue;
    for (const auto& line : lines) EXPECT_EQ(line[c], '|') << line;
  }
  EXPECT_EQ(lines[0], "| rate    | ok |");
  EXPECT_EQ(lines[1], "|---------|----|");
  EXPECT_EQ(lines[2], "| 1234567 | y  |");
  EXPECT_EQ(lines[3], "| 9       | n  |");
}

TEST(TableUtilTest, SeparatorMatchesHeaderDrivenWidths) {
  Table t({"section", "n"});
  t.AddRow("a", std::uint64_t{1});
  const auto lines = Lines(t);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "| section | n |");
  EXPECT_EQ(lines[1], "|---------|---|");
  EXPECT_EQ(lines[2], "| a       | 1 |");
}

TEST(TableUtilTest, ShortRowsPadMissingCells) {
  Table t({"a", "bb", "ccc"});
  t.AddRow("x");
  const auto lines = Lines(t);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "| x |    |     |");
}

TEST(TableUtilTest, FloatingPointCellsUseFixedPrecision) {
  Table t({"v"});
  t.AddRow(1.5);
  const auto lines = Lines(t);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "| 1.500 |");
}

}  // namespace
}  // namespace pardb::bench

// Tests for the §3.3 distributed substrate: timestamp prevention schemes
// (wound-wait / wait-die) built on partial rollback, and per-site deadlock
// accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "dist/distributed.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb::dist {
namespace {

using core::DeadlockHandling;
using core::Engine;
using core::EngineOptions;
using core::StepOutcome;
using core::TxnStatus;
using txn::Operand;
using txn::ProgramBuilder;

txn::Program TwoLock(EntityId e1, EntityId e2, const std::string& name,
                     int fillers = 0) {
  ProgramBuilder b(name, 1);
  b.LockExclusive(e1);
  for (int i = 0; i < fillers; ++i) {
    b.Compute(0, Operand::Var(0), txn::ArithOp::kAdd, Operand::Imm(1));
  }
  b.LockExclusive(e2);
  b.WriteImm(e1, 1).WriteImm(e2, 2).Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(SitePartitionTest, StableAndInRange) {
  for (std::uint64_t e = 0; e < 100; ++e) {
    std::uint32_t s = SiteOfEntity(EntityId(e), 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, SiteOfEntity(EntityId(e), 4));
  }
  EXPECT_EQ(SiteOfEntity(EntityId(5), 0), 0u);
  EXPECT_EQ(SiteOfEntity(EntityId(5), 1), 0u);
}

TEST(SitePartitionTest, SpreadsOverSites) {
  std::set<std::uint32_t> seen;
  for (std::uint64_t e = 0; e < 64; ++e) {
    seen.insert(SiteOfEntity(EntityId(e), 4));
  }
  EXPECT_EQ(seen.size(), 4u);
}

class PreventionTest : public ::testing::Test {
 protected:
  void Init(DeadlockHandling handling) {
    ids_ = store_.CreateMany(4, 100);
    EngineOptions opt;
    opt.handling = handling;
    engine_ = std::make_unique<Engine>(&store_, opt);
  }
  storage::EntityStore store_;
  std::unique_ptr<Engine> engine_;
  std::vector<EntityId> ids_;
};

TEST_F(PreventionTest, WoundWaitOlderPreemptsYoungerHolder) {
  Init(DeadlockHandling::kWoundWait);
  // t0 (older) and t1 (younger) conflict on entity 0; t1 holds it when t0
  // requests: t1 is wounded even though no deadlock exists yet.
  auto t0 = engine_->Spawn(TwoLock(ids_[0], ids_[1], "old"));
  auto t1 = engine_->Spawn(TwoLock(ids_[0], ids_[2], "young"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // t1 locks 0
  auto outcome = engine_->StepTxn(t0.value());     // t0 requests 0 -> wound
  ASSERT_TRUE(outcome.ok());
  // t1 was rolled back past its lock on 0; t0 holds it now.
  EXPECT_EQ(outcome.value(), StepOutcome::kExecuted);
  EXPECT_EQ(engine_->metrics().wounds, 1u);
  EXPECT_EQ(engine_->PreemptionCountOf(t1.value()), 1u);
  EXPECT_EQ(engine_->lock_manager().HeldMode(t0.value(), ids_[0]),
            lock::LockMode::kExclusive);
  EXPECT_EQ(engine_->StateIndexOf(t1.value()), 0u);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(PreventionTest, WoundWaitYoungerWaitsForOlder) {
  Init(DeadlockHandling::kWoundWait);
  auto t0 = engine_->Spawn(TwoLock(ids_[0], ids_[1], "old"));
  auto t1 = engine_->Spawn(TwoLock(ids_[0], ids_[2], "young"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // t0 (older) locks 0
  auto outcome = engine_->StepTxn(t1.value());     // t1 requests 0 -> waits
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), StepOutcome::kBlocked);
  EXPECT_EQ(engine_->metrics().wounds, 0u);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(PreventionTest, WoundWaitNeverWoundsShrinkingHolder) {
  Init(DeadlockHandling::kWoundWait);
  // Younger t1 holds entity 0 and has already unlocked entity 2: it is in
  // its shrinking phase and cannot deadlock, so the older t0 simply waits.
  ProgramBuilder b("young-shrinking", 1);
  b.LockExclusive(ids_[2]).LockExclusive(ids_[0]);
  b.WriteImm(ids_[2], 9).Unlock(ids_[2]);
  b.WriteImm(ids_[0], 8).Commit();
  auto py = b.Build();
  ASSERT_TRUE(py.ok());
  auto t0 = engine_->Spawn(TwoLock(ids_[0], ids_[1], "old"));
  auto t1 = engine_->Spawn(std::move(py).value());
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // through the unlock
  }
  auto outcome = engine_->StepTxn(t0.value());  // t0 requests 0
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), StepOutcome::kBlocked);
  EXPECT_EQ(engine_->metrics().wounds, 0u);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(PreventionTest, WaitDieYoungerRequesterDies) {
  Init(DeadlockHandling::kWaitDie);
  auto t0 = engine_->Spawn(TwoLock(ids_[0], ids_[1], "old"));
  auto t1 = engine_->Spawn(TwoLock(ids_[0], ids_[2], "young"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // t0 (older) locks 0
  auto outcome = engine_->StepTxn(t1.value());     // t1 requests 0 -> dies
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), StepOutcome::kRolledBack);
  EXPECT_EQ(engine_->metrics().deaths, 1u);
  // Nothing held an older transaction was queued for: a zero-cost
  // cancel-and-retry.
  EXPECT_EQ(engine_->metrics().wasted_ops, 0u);
  EXPECT_EQ(engine_->StatusOf(t1.value()), TxnStatus::kReady);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(PreventionTest, WaitDieOlderRequesterWaits) {
  Init(DeadlockHandling::kWaitDie);
  auto t0 = engine_->Spawn(TwoLock(ids_[0], ids_[1], "old"));
  auto t1 = engine_->Spawn(TwoLock(ids_[0], ids_[2], "young"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // t1 (younger) locks 0
  auto outcome = engine_->StepTxn(t0.value());     // t0 requests 0 -> waits
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), StepOutcome::kBlocked);
  EXPECT_EQ(engine_->metrics().deaths, 0u);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(PreventionTest, WaitDieReleasesLocksOlderTransactionsNeed) {
  Init(DeadlockHandling::kWaitDie);
  // t1 (young) holds entity 1 with 3 ops of progress; t0 (old) queues for
  // it; when t1 then dies against t0's hold on entity 0, its rollback must
  // reach back past entity 1 so t0 can proceed.
  auto t0 = engine_->Spawn(TwoLock(ids_[0], ids_[1], "old"));
  auto t1 = engine_->Spawn(TwoLock(ids_[1], ids_[0], "young", 3));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // lock 1 + fillers
  }
  ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // t0 locks 0
  auto w0 = engine_->StepTxn(t0.value());          // t0 queues for 1 (waits)
  ASSERT_TRUE(w0.ok());
  EXPECT_EQ(w0.value(), StepOutcome::kBlocked);
  auto died = engine_->StepTxn(t1.value());  // t1 requests 0 -> dies
  ASSERT_TRUE(died.ok());
  EXPECT_EQ(died.value(), StepOutcome::kRolledBack);
  EXPECT_EQ(engine_->metrics().deaths, 1u);
  EXPECT_GT(engine_->metrics().wasted_ops, 0u);  // real progress lost
  // t0 got entity 1.
  EXPECT_EQ(engine_->lock_manager().HeldMode(t0.value(), ids_[1]),
            lock::LockMode::kExclusive);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST(PreventionLivenessTest, BothSchemesCompleteContendedWorkloads) {
  for (auto handling :
       {DeadlockHandling::kWoundWait, DeadlockHandling::kWaitDie}) {
    for (auto strategy : {rollback::StrategyKind::kTotalRestart,
                          rollback::StrategyKind::kMcs,
                          rollback::StrategyKind::kSdg}) {
      DistOptions opt;
      opt.engine.handling = handling;
      opt.engine.strategy = strategy;
      opt.engine.scheduler = core::SchedulerKind::kRandom;
      opt.workload.num_entities = 6;
      opt.workload.min_locks = 2;
      opt.workload.max_locks = 4;
      opt.concurrency = 6;
      opt.total_txns = 60;
      opt.seed = 5;
      auto rep = RunDistributed(opt);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      EXPECT_TRUE(rep->completed) << rep->ToString();
      EXPECT_EQ(rep->committed, 60u);
      EXPECT_TRUE(rep->serializable) << rep->ToString();
      // Prevention never runs the cycle detector.
      EXPECT_EQ(rep->metrics.deadlocks, 0u);
      if (handling == DeadlockHandling::kWoundWait) {
        EXPECT_EQ(rep->metrics.deaths, 0u);
      } else {
        EXPECT_EQ(rep->metrics.wounds, 0u);
      }
    }
  }
}

TEST(PreventionLivenessTest, SharedLockWorkloadsComplete) {
  for (auto handling :
       {DeadlockHandling::kWoundWait, DeadlockHandling::kWaitDie}) {
    DistOptions opt;
    opt.engine.handling = handling;
    opt.workload.num_entities = 6;
    opt.workload.shared_fraction = 0.5;
    opt.concurrency = 6;
    opt.total_txns = 60;
    opt.seed = 11;
    auto rep = RunDistributed(opt);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_TRUE(rep->completed) << rep->ToString();
    EXPECT_TRUE(rep->serializable);
  }
}

TEST(DistributedReportTest, DetectionModeClassifiesDeadlockSites) {
  DistOptions opt;
  opt.num_sites = 4;
  opt.engine.handling = DeadlockHandling::kDetection;
  opt.workload.num_entities = 8;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 5;
  opt.concurrency = 8;
  opt.total_txns = 120;
  opt.seed = 3;
  auto rep = RunDistributed(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep->completed);
  EXPECT_GT(rep->metrics.deadlocks, 0u);
  EXPECT_EQ(rep->deadlocks_local + rep->deadlocks_multi_site,
            rep->metrics.deadlocks);
  // With 8 entities hashed over 4 sites, most 2+-entity cycles span sites.
  EXPECT_GT(rep->deadlocks_multi_site, 0u);
  EXPECT_GE(rep->max_sites_in_deadlock, 2u);
  std::string s = rep->ToString();
  EXPECT_NE(s.find("multi-site="), std::string::npos);
}

TEST(DistributedReportTest, PreventionCostsMoreRollbacksButNoGraph) {
  // Same workload under detection and wound-wait: prevention needs no
  // cycle enumeration but preempts on conflicts, not deadlocks, so it
  // rolls back at least as often.
  DistOptions base;
  base.workload.num_entities = 8;
  base.workload.min_locks = 3;
  base.workload.max_locks = 5;
  base.concurrency = 8;
  base.total_txns = 120;
  base.seed = 9;

  auto detect = base;
  detect.engine.handling = DeadlockHandling::kDetection;
  auto dr = RunDistributed(detect);
  ASSERT_TRUE(dr.ok());

  auto wound = base;
  wound.engine.handling = DeadlockHandling::kWoundWait;
  auto wr = RunDistributed(wound);
  ASSERT_TRUE(wr.ok());

  EXPECT_GE(wr->metrics.rollbacks, dr->metrics.rollbacks);
  EXPECT_EQ(wr->metrics.cycles_found, 0u);
  EXPECT_GT(dr->metrics.cycles_found, 0u);
}

TEST(DistributedReportTest, EmptyWorkloadReportStaysFinite) {
  // Zero transactions -> zero commits and zero executed ops. Every report
  // fraction must degrade to a finite 0.0, never NaN/inf.
  DistOptions opt;
  opt.total_txns = 0;
  auto rep = RunDistributed(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->committed, 0u);
  EXPECT_EQ(rep->metrics.ops_executed, 0u);
  EXPECT_TRUE(std::isfinite(rep->wasted_fraction));
  EXPECT_TRUE(std::isfinite(rep->goodput));
  EXPECT_TRUE(std::isfinite(rep->multi_site_fraction));
  EXPECT_EQ(rep->wasted_fraction, 0.0);
  EXPECT_EQ(rep->goodput, 0.0);
  EXPECT_EQ(rep->multi_site_fraction, 0.0);
}

}  // namespace
}  // namespace pardb::dist

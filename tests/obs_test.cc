// Telemetry subsystem: metrics registry, phase timers, trace export and
// deadlock forensics — plus the engine live-set and RingTrace eviction
// regressions that ride along with it.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "core/engine.h"
#include "core/metrics_export.h"
#include "core/trace.h"
#include "core/trace_export.h"
#include "obs/clock.h"
#include "obs/forensics.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/phase_timer.h"
#include "obs/probe.h"
#include "sim/scenario.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb {
namespace {

using core::TraceEvent;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::LabelSet;
using obs::MetricSnapshot;
using obs::MetricsRegistry;
using obs::RegistrySnapshot;
using txn::ArithOp;
using txn::Operand;
using txn::ProgramBuilder;

// ---------------------------------------------------------------------------
// Registry basics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameIdentityReturnsSameObject) {
  MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("pardb_x_total");
  obs::Counter* b = reg.GetCounter("pardb_x_total");
  EXPECT_EQ(a, b);
  a->Inc();
  b->Inc(2);
  EXPECT_EQ(a->value(), 3u);

  // Different labels are different instances.
  obs::Counter* s0 = reg.GetCounter("pardb_x_total", {{"shard", "0"}});
  EXPECT_NE(a, s0);
  EXPECT_EQ(s0->value(), 0u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("pardb_thing"), nullptr);
  EXPECT_EQ(reg.GetGauge("pardb_thing"), nullptr);
  EXPECT_EQ(reg.GetHistogram("pardb_thing"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotFindAndWriters) {
  MetricsRegistry reg;
  reg.GetCounter("pardb_b_total", {{"shard", "1"}})->Inc(7);
  reg.GetGauge("pardb_a_gauge")->Set(-3);
  reg.GetHistogram("pardb_c_ns")->Record(5);

  RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  // Sorted by (name, labels).
  EXPECT_EQ(snap.metrics[0].name, "pardb_a_gauge");
  EXPECT_EQ(snap.metrics[1].name, "pardb_b_total");
  EXPECT_EQ(snap.metrics[2].name, "pardb_c_ns");

  const MetricSnapshot* c = snap.Find("pardb_b_total", {{"shard", "1"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->counter, 7u);
  EXPECT_EQ(snap.Find("pardb_b_total"), nullptr);  // unlabeled: absent

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"pardb_a_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":\"1\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string prom = snap.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE pardb_b_total counter"), std::string::npos);
  EXPECT_NE(prom.find("pardb_b_total{shard=\"1\"} 7"), std::string::npos);
  EXPECT_NE(prom.find("pardb_c_ns_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, MergeSumsAndWithoutLabelFolds) {
  MetricsRegistry r0;
  r0.GetCounter("pardb_x_total", {{"shard", "0"}})->Inc(3);
  MetricsRegistry r1;
  r1.GetCounter("pardb_x_total", {{"shard", "1"}})->Inc(4);

  RegistrySnapshot merged = r0.Snapshot();
  merged.MergeFrom(r1.Snapshot());
  ASSERT_EQ(merged.metrics.size(), 2u);  // side by side, distinct labels

  RegistrySnapshot folded = merged.WithoutLabel("shard");
  ASSERT_EQ(folded.metrics.size(), 1u);
  EXPECT_TRUE(folded.metrics[0].labels.empty());
  EXPECT_EQ(folded.metrics[0].counter, 7u);
}

// ---------------------------------------------------------------------------
// Histogram quantiles: merging per-shard histograms must agree with a
// histogram of the pooled samples at every exported quantile rank, and both
// must follow core::ComputeCostDistribution's nearest-rank convention.
// ---------------------------------------------------------------------------

TEST(HistogramTest, QuantileFollowsNearestRank) {
  // Samples sit exactly on bucket bounds (powers of two), so the bucket
  // upper bound IS the sample and the histogram quantile must equal the
  // exact nearest-rank percentile.
  std::vector<std::uint32_t> samples;
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t v = 1u << (i % 7);  // 1..64
    samples.push_back(v);
    h.Record(v);
  }
  const core::CostDistribution exact =
      core::ComputeCostDistribution(samples);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.Quantile(50), exact.p50);
  EXPECT_EQ(snap.Quantile(95), exact.p95);
  EXPECT_EQ(snap.Quantile(100), exact.max);
  EXPECT_EQ(snap.max, exact.max);
}

TEST(HistogramTest, MergedShardsEqualPooledAtEveryExportedQuantile) {
  // Three "shards" with very different distributions; bounds identical
  // (DefaultBounds), so bucket-wise merging is exact.
  const std::vector<std::vector<std::uint64_t>> shard_samples = {
      {1, 2, 2, 4, 8, 8, 8, 16},
      {1024, 2048, 2048, 4096},
      {32, 32, 64, 128, 256, 512, 1u << 20, 1u << 30},
  };
  std::vector<Histogram> shards(shard_samples.size());
  Histogram pooled;
  for (std::size_t s = 0; s < shard_samples.size(); ++s) {
    for (std::uint64_t v : shard_samples[s]) {
      shards[s].Record(v);
      pooled.Record(v);
    }
  }
  HistogramSnapshot merged = shards[0].Snapshot();
  ASSERT_TRUE(merged.MergeFrom(shards[1].Snapshot()));
  ASSERT_TRUE(merged.MergeFrom(shards[2].Snapshot()));

  const HistogramSnapshot want = pooled.Snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.max, want.max);
  ASSERT_EQ(merged.counts, want.counts);
  for (std::uint64_t p : {50u, 95u, 99u, 100u}) {
    EXPECT_EQ(merged.Quantile(p), want.Quantile(p)) << "p" << p;
  }
  for (std::uint64_t pm : {500u, 990u, 999u}) {
    EXPECT_EQ(merged.QuantilePerMille(pm), want.QuantilePerMille(pm))
        << "p" << pm;
  }
}

TEST(HistogramTest, TailQuantilesFollowNearestRankAtSmallN) {
  // n = 1: every quantile, including p999, is the lone sample.
  {
    Histogram h;
    h.Record(32);
    const HistogramSnapshot s = h.Snapshot();
    EXPECT_EQ(s.Quantile(50), 32u);
    EXPECT_EQ(s.Quantile(99), 32u);
    EXPECT_EQ(s.QuantilePerMille(999), 32u);
  }
  // Distinct powers of two sit exactly on DefaultBounds, so the histogram
  // quantile must equal the exact nearest-rank value sorted[ceil(n*q)-1].
  // n = 19: p99 rank ceil(18.81) = 19 — already the max, one sample early.
  // n = 20: p99 rank ceil(19.8) = 20 and p999 rank ceil(19.98) = 20 — the
  // tail quantiles saturate at the max until n is large enough to shed it.
  for (std::size_t n : {std::size_t{19}, std::size_t{20}}) {
    Histogram h;
    for (std::size_t i = 0; i < n; ++i) h.Record(1ULL << i);
    const HistogramSnapshot s = h.Snapshot();
    const auto nearest = [n](std::uint64_t pm) {
      const std::size_t rank = (n * pm + 999) / 1000;  // ceil
      return 1ULL << (rank - 1);
    };
    EXPECT_EQ(s.Quantile(50), nearest(500)) << "n=" << n;
    EXPECT_EQ(s.Quantile(99), nearest(990)) << "n=" << n;
    EXPECT_EQ(s.QuantilePerMille(999), nearest(999)) << "n=" << n;
    EXPECT_EQ(s.QuantilePerMille(999), s.max) << "n=" << n;
  }
  // n = 100: p99 detaches from the max (rank 99 of 100) while p999 still
  // saturates (rank ceil(99.9) = 100).
  {
    Histogram h;
    std::vector<std::uint64_t> sorted;
    for (std::size_t i = 0; i < 100; ++i) {
      const std::uint64_t v = 1ULL << (i % 20);
      h.Record(v);
      sorted.push_back(v);
    }
    std::sort(sorted.begin(), sorted.end());
    const HistogramSnapshot s = h.Snapshot();
    EXPECT_EQ(s.Quantile(50), sorted[49]);
    EXPECT_EQ(s.Quantile(99), sorted[98]);
    EXPECT_EQ(s.QuantilePerMille(999), sorted[99]);
    EXPECT_EQ(s.QuantilePerMille(999), s.max);
  }
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a({1, 2, 4});
  Histogram b({1, 3, 9});
  a.Record(2);
  b.Record(3);
  HistogramSnapshot sa = a.Snapshot();
  EXPECT_FALSE(sa.MergeFrom(b.Snapshot()));
  EXPECT_EQ(sa.count, 1u);  // untouched on failure
}

// ---------------------------------------------------------------------------
// Phase timers on the deterministic clock.
// ---------------------------------------------------------------------------

TEST(ScopedTimerTest, RecordsManualClockDelta) {
  obs::ManualClock clock(1000);
  Histogram h;
  {
    obs::ScopedTimer t(&h, &clock);
    clock.AdvanceNanos(640);
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 640u);
  EXPECT_EQ(snap.max, 640u);
}

TEST(ScopedTimerTest, StopIsIdempotentAndCancelDiscards) {
  obs::ManualClock clock;
  Histogram h;
  obs::ScopedTimer t(&h, &clock);
  clock.AdvanceNanos(5);
  t.Stop();
  clock.AdvanceNanos(50);
  t.Stop();  // no second sample
  obs::ScopedTimer cancelled(&h, &clock);
  cancelled.Cancel();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 5u);
}

TEST(ScopedTimerTest, NullHistogramNeverReadsClock) {
  // A poisoned clock proves the disabled path takes no time measurement.
  class PoisonClock final : public obs::Clock {
   public:
    std::uint64_t NowNanos() const override {
      ADD_FAILURE() << "clock read on disabled timer";
      return 0;
    }
  };
  PoisonClock clock;
  obs::ScopedTimer t(nullptr, &clock);
  t.Stop();
}

// ---------------------------------------------------------------------------
// RingTrace eviction accounting (satellite: dropped_events).
// ---------------------------------------------------------------------------

TraceEvent MakeEvent(std::uint64_t step) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kLockGranted;
  e.step = step;
  e.txn = TxnId(1);
  e.entity = EntityId(2);
  return e;
}

TEST(RingTraceTest, CapacityEvictionIncrementsDropped) {
  core::RingTrace ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.OnEvent(MakeEvent(i));
  EXPECT_EQ(ring.total_events(), 10u);
  EXPECT_EQ(ring.dropped_events(), 6u);
  EXPECT_EQ(ring.events().size(), 4u);
  EXPECT_EQ(ring.total_events() - ring.dropped_events(), ring.events().size());
  // The retained window is the most recent suffix.
  EXPECT_EQ(ring.events().front().step, 6u);
}

TEST(RingTraceTest, ZeroCapacityDropsEverything) {
  core::RingTrace ring(0);
  for (std::uint64_t i = 0; i < 3; ++i) ring.OnEvent(MakeEvent(i));
  EXPECT_EQ(ring.total_events(), 3u);
  EXPECT_EQ(ring.dropped_events(), 3u);
  EXPECT_TRUE(ring.events().empty());
  // Per-kind counts still accumulate even when nothing is retained.
  EXPECT_EQ(ring.CountOf(TraceEvent::Kind::kLockGranted), 3u);
}

// ---------------------------------------------------------------------------
// Trace export: JSONL lines and the Chrome trace document.
// ---------------------------------------------------------------------------

TEST(TraceExportTest, JsonLineShape) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kRollback;
  e.step = 42;
  e.txn = TxnId(3);
  e.entity = EntityId();  // invalid -> null
  e.pc = 12;
  e.target = 8;
  e.cost = 4;
  EXPECT_EQ(core::TraceEventToJsonLine(e),
            "{\"kind\":\"rollback\",\"step\":42,\"txn\":3,\"entity\":null,"
            "\"pc\":12,\"target\":8,\"cost\":4}");
}

TEST(TraceExportTest, JsonlSinkWritesOneLinePerEvent) {
  std::ostringstream out;
  core::JsonlTraceSink sink(&out);
  sink.OnEvent(MakeEvent(1));
  sink.OnEvent(MakeEvent(2));
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"kind\":\"grant\""), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceCarriesDeadlockInstant) {
  auto fig = sim::BuildFigure1({});
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  core::VectorTrace trace;
  fig->runner->engine().set_trace(&trace);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());

  const std::string json = core::ChromeTraceJson(trace.events(), "test");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process_name
  EXPECT_NE(json.find("\"cat\":\"deadlock\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"rollback\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy (the CI smoke
  // job json.load()s the real artifact).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------------------------------------------------------------------------
// Deadlock forensics on the paper's Figure 1.
// ---------------------------------------------------------------------------

core::EngineOptions MinCostOptions() {
  core::EngineOptions opt;
  opt.victim_policy = core::VictimPolicyKind::kMinCost;
  return opt;
}

TEST(ForensicsTest, Figure1DumpShowsCycleCostsAndMinCostVictim) {
  auto fig = sim::BuildFigure1(MinCostOptions());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  obs::CollectingDeadlockSink sink;
  fig->runner->engine().set_forensics(&sink);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());

  ASSERT_EQ(sink.dumps().size(), 1u);
  EXPECT_EQ(sink.total_seen(), 1u);
  const obs::DeadlockDump& dump = sink.dumps()[0];
  EXPECT_EQ(dump.requester, fig->t2);
  EXPECT_EQ(dump.requested_entity, fig->e);
  EXPECT_EQ(dump.num_cycles, 1u);
  EXPECT_EQ(dump.policy, "min-cost");

  // The paper's costs: T2=4, T3=6, T4=5; victim T2 (also the requester).
  std::map<TxnId, const obs::DeadlockParticipant*> by_txn;
  for (const auto& p : dump.participants) by_txn[p.txn] = &p;
  ASSERT_EQ(by_txn.size(), 3u);
  EXPECT_EQ(by_txn.at(fig->t2)->cost, 4u);
  EXPECT_EQ(by_txn.at(fig->t3)->cost, 6u);
  EXPECT_EQ(by_txn.at(fig->t4)->cost, 5u);
  EXPECT_TRUE(by_txn.at(fig->t2)->is_requester);
  EXPECT_TRUE(by_txn.at(fig->t2)->is_victim);
  EXPECT_FALSE(by_txn.at(fig->t3)->is_victim);
  EXPECT_FALSE(by_txn.at(fig->t4)->is_victim);
  EXPECT_EQ(dump.victims, std::vector<TxnId>{fig->t2});

  // The cycle arrives intact (waiter -> holder): T2 waits for T4 on e,
  // T4 waits for T3 on c, T3 waits for T2 on b.
  ASSERT_EQ(dump.arcs.size(), 3u);
  std::map<TxnId, TxnId> waits_for;
  for (const auto& a : dump.arcs) waits_for.emplace(a.waiter, a.holder);
  EXPECT_EQ(waits_for.at(fig->t2), fig->t4);
  EXPECT_EQ(waits_for.at(fig->t4), fig->t3);
  EXPECT_EQ(waits_for.at(fig->t3), fig->t2);
}

TEST(ForensicsTest, Figure1DotRendering) {
  auto fig = sim::BuildFigure1(MinCostOptions());
  ASSERT_TRUE(fig.ok());
  obs::CollectingDeadlockSink sink;
  fig->runner->engine().set_forensics(&sink);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  ASSERT_EQ(sink.dumps().size(), 1u);

  const std::string dot = obs::DeadlockDumpToDot(sink.dumps()[0]);
  auto node = [&](TxnId t) { return "T" + std::to_string(t.value()); };
  EXPECT_NE(dot.find("digraph deadlock_step"), std::string::npos);
  // Per-participant costs.
  EXPECT_NE(dot.find("cost=4"), std::string::npos);
  EXPECT_NE(dot.find("cost=6"), std::string::npos);
  EXPECT_NE(dot.find("cost=5"), std::string::npos);
  // The chosen minimum-cost victim is highlighted.
  EXPECT_NE(dot.find(node(fig->t2) + " [shape=box,style=filled,"
                     "fillcolor=salmon"),
            std::string::npos);
  EXPECT_NE(dot.find("VICTIM"), std::string::npos);
  // The cycle's arcs, waiter -> holder, labeled with the entity.
  EXPECT_NE(dot.find(node(fig->t2) + " -> " + node(fig->t4)),
            std::string::npos);
  EXPECT_NE(dot.find(node(fig->t4) + " -> " + node(fig->t3)),
            std::string::npos);
  EXPECT_NE(dot.find(node(fig->t3) + " -> " + node(fig->t2)),
            std::string::npos);
  EXPECT_EQ(sink.dumps()[0].victims.size(), 1u);
}

// ---------------------------------------------------------------------------
// Engine probe + metrics export end to end on Figure 1.
// ---------------------------------------------------------------------------

TEST(EngineProbeTest, Figure1CountsLandInRegistry) {
  MetricsRegistry reg;
  obs::ManualClock clock;
  obs::EngineProbe probe = obs::MakeEngineProbe(&reg, {}, &clock);

  auto fig = sim::BuildFigure1(MinCostOptions());
  ASSERT_TRUE(fig.ok());
  fig->runner->engine().set_probe(&probe);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  core::ExportEngineMetrics(fig->runner->engine(), &reg);

  RegistrySnapshot snap = reg.Snapshot();
  const MetricSnapshot* deadlocks = snap.Find("pardb_deadlocks_total");
  ASSERT_NE(deadlocks, nullptr);
  EXPECT_EQ(deadlocks->counter, 1u);
  // The min-cost victim was the requester itself.
  EXPECT_EQ(snap.Find("pardb_victims_requester_total")->counter, 1u);
  EXPECT_EQ(snap.Find("pardb_victims_preempted_total")->counter, 0u);
  // Rollback cost histogram carries the paper's cost-4 rollback.
  const MetricSnapshot* cost = snap.Find("pardb_rollback_cost_ops");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->hist.count, 1u);
  EXPECT_EQ(cost->hist.sum, 4u);
  // The detection phase timer fired (ManualClock: zero-length but counted).
  EXPECT_GE(snap.Find("pardb_detection_ns")->hist.count, 1u);
  EXPECT_EQ(snap.Find("pardb_rollback_apply_ns")->hist.count, 1u);
}

// ---------------------------------------------------------------------------
// Engine live-set regression (satellite: StepAny scan set shrinks).
// ---------------------------------------------------------------------------

txn::Program TouchProgram(EntityId e) {
  ProgramBuilder b("touch", 1);
  auto p = b.LockExclusive(e)
               .Read(e, 0)
               .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(1))
               .WriteVar(e, 0)
               .Commit()
               .Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(EngineLiveSetTest, CommittedTxnsLeaveTheScanSet) {
  storage::EntityStore store;
  auto ids = store.CreateMany(4, 100);
  core::Engine engine(&store, {});
  // Disjoint footprints: transactions commit one after another without
  // conflicts, so the live set must shrink monotonically.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Spawn(TouchProgram(ids[i])).ok());
  }
  EXPECT_EQ(engine.live_txn_count(), 4u);

  std::size_t prev = 4;
  while (!engine.AllCommitted()) {
    auto stepped = engine.StepAny();
    ASSERT_TRUE(stepped.ok());
    ASSERT_TRUE(stepped.value().has_value());
    const std::size_t live = engine.live_txn_count();
    EXPECT_LE(live, prev);
    prev = live;
  }
  EXPECT_EQ(engine.live_txn_count(), 0u);
  EXPECT_EQ(engine.metrics().commits, 4u);
  // AllCommitted is now a live-set check, not a full-map scan.
  EXPECT_TRUE(engine.AllCommitted());
}

TEST(EngineMetricsExporterTest, RepeatedDeltaExportsLandOnExactTotals) {
  // The stateful exporter is called mid-run at the hub snapshot cadence
  // and once at the end; counters must advance by deltas so the final
  // registry equals the engine totals, not a multiple of them.
  storage::EntityStore store;
  auto ids = store.CreateMany(4, 100);
  core::Engine engine(&store, {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Spawn(TouchProgram(ids[i])).ok());
  }
  MetricsRegistry reg;
  core::EngineMetricsExporter exporter;
  while (!engine.AllCommitted()) {
    auto stepped = engine.StepAny();
    ASSERT_TRUE(stepped.ok());
    ASSERT_TRUE(stepped.value().has_value());
    exporter.Export(engine, &reg);  // export after *every* step
  }
  exporter.Export(engine, &reg);  // final export: must be a no-op delta
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Find("pardb_steps_total")->counter, engine.metrics().steps);
  EXPECT_EQ(snap.Find("pardb_commits_total")->counter,
            engine.metrics().commits);
  EXPECT_EQ(snap.Find("pardb_ops_executed_total")->counter,
            engine.metrics().ops_executed);
  const MetricSnapshot* cost = snap.Find("pardb_rollback_cost_ops");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->hist.count, engine.rollback_cost_samples().size());
}

// ---------------------------------------------------------------------------
// Live waits-for snapshots vs the post-mortem forensic record.
// ---------------------------------------------------------------------------

// Captures a live engine snapshot from inside the deadlock sink — the
// engine has recorded the closing arc but not yet rolled anyone back, so
// the capture sees the exact instant the forensic dump describes.
class LiveCaptureSink final : public obs::DeadlockDumpSink {
 public:
  explicit LiveCaptureSink(core::Engine* engine) : engine_(engine) {}

  void OnDeadlock(const obs::DeadlockDump& dump) override {
    dump_ = dump;
    std::vector<TxnId> members;
    for (const auto& p : dump.participants) members.push_back(p.txn);
    full_ = engine_->SnapshotWaitsFor();
    restricted_ = full_.Restricted(members);
    fired_ = true;
  }

  bool fired() const { return fired_; }
  const obs::DeadlockDump& dump() const { return dump_; }
  const obs::WaitsForSnapshot& full() const { return full_; }
  const obs::WaitsForSnapshot& restricted() const { return restricted_; }

 private:
  core::Engine* engine_;
  obs::DeadlockDump dump_;
  obs::WaitsForSnapshot full_;
  obs::WaitsForSnapshot restricted_;
  bool fired_ = false;
};

TEST(SnapshotTest, Figure1SnapshotShowsWaitersLocksAndForestShape) {
  // Before the deadlock trigger: T1 and T3 wait for b (held by T2), T4
  // waits for c (held by T3). Acyclic, and with exclusive locks only the
  // graph is a forest (Theorem 1).
  auto fig = sim::BuildFigure1(MinCostOptions());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  auto snap = fig->runner->engine().SnapshotWaitsFor();

  EXPECT_TRUE(snap.acyclic);
  EXPECT_TRUE(snap.forest);
  ASSERT_EQ(snap.txns.size(), 4u);
  std::map<TxnId, const obs::TxnSnapshot*> by_txn;
  for (const auto& t : snap.txns) by_txn[t.txn] = &t;
  EXPECT_EQ(by_txn.at(fig->t2)->status, "ready");
  EXPECT_EQ(by_txn.at(fig->t3)->status, "waiting");
  ASSERT_TRUE(by_txn.at(fig->t3)->has_request);
  EXPECT_EQ(by_txn.at(fig->t3)->requested.entity, fig->b);
  EXPECT_EQ(by_txn.at(fig->t3)->requested.mode, 'X');
  ASSERT_FALSE(by_txn.at(fig->t2)->held.empty());
  for (const auto& grant : by_txn.at(fig->t2)->held) {
    EXPECT_EQ(grant.mode, 'X');
  }

  std::map<TxnId, TxnId> waits;
  for (const auto& a : snap.arcs) waits[a.waiter] = a.holder;
  EXPECT_EQ(waits.at(fig->t1), fig->t2);
  EXPECT_EQ(waits.at(fig->t3), fig->t2);
  EXPECT_EQ(waits.at(fig->t4), fig->t3);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"acyclic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"forest\":true"), std::string::npos);
  const std::string dot = snap.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("T" + std::to_string(fig->t2.value())),
            std::string::npos);
}

TEST(SnapshotTest, LiveCaptureByteMatchesForensicCycleDot) {
  // The live /debug/waits-for view of a deadlock instant, restricted to
  // the cycle members, renders byte-identically to the post-mortem
  // forensic record of the same instant: both funnel through
  // WaitsForGraphToDot with the same nodes, entries and arcs.
  auto fig = sim::BuildFigure1(MinCostOptions());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  core::Engine& engine = fig->runner->engine();
  LiveCaptureSink sink(&engine);
  engine.set_forensics(&sink);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  ASSERT_TRUE(sink.fired());

  // The capture really was mid-deadlock: the full graph held the cycle.
  EXPECT_FALSE(sink.full().acyclic);
  ASSERT_EQ(sink.restricted().txns.size(), 3u);
  ASSERT_EQ(sink.restricted().arcs.size(), 3u);

  const std::string live = obs::SnapshotCycleDot(sink.restricted());
  const std::string forensic = obs::DeadlockDumpToCycleDot(sink.dump());
  EXPECT_EQ(live, forensic);
  EXPECT_NE(live.find("digraph waits_for_cycle"), std::string::npos);

  // After resolution the engine's own snapshot is clean again.
  EXPECT_TRUE(engine.SnapshotWaitsFor().acyclic);
}

TEST(SnapshotTest, ChainLenSurfacesInSnapshotWhenLineageAttached) {
  // The ordered policy preempts T4 on the Figure 1 cycle; with a lineage
  // tracker attached the live snapshot reports T4's chain depth.
  core::EngineOptions opt;
  opt.victim_policy = core::VictimPolicyKind::kMinCostOrdered;
  auto fig = sim::BuildFigure1(opt);
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  obs::LineageTracker lineage;
  fig->runner->engine().set_lineage(&lineage);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());

  auto snap = fig->runner->engine().SnapshotWaitsFor();
  std::map<TxnId, const obs::TxnSnapshot*> by_txn;
  for (const auto& t : snap.txns) by_txn[t.txn] = &t;
  ASSERT_TRUE(by_txn.count(fig->t4));
  EXPECT_EQ(by_txn.at(fig->t4)->chain_len, 1u);
  EXPECT_EQ(by_txn.at(fig->t4)->preemptions, 1u);
  EXPECT_EQ(by_txn.at(fig->t2)->chain_len, 0u);
}

}  // namespace
}  // namespace pardb
